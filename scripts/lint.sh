#!/usr/bin/env bash
# clang-tidy runner for elephantbench.
#
# Usage: scripts/lint.sh [build-dir]
#
# Needs a configured build tree with compile_commands.json (CMake
# exports it by default here). Uses run-clang-tidy when available,
# otherwise falls back to invoking clang-tidy per file. Exits 0 with a
# notice when clang-tidy is not installed, so local environments
# without LLVM tooling are not blocked; CI installs clang-tidy and this
# script is a BLOCKING step there (see .github/workflows/ci.yml) —
# .clang-tidy sets WarningsAsErrors '*', so fix or NOLINT every finding.
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found on PATH; skipping (install LLVM tools to run the linter)"
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing; configure first:"
  echo "  cmake -B ${BUILD_DIR} -S ."
  exit 1
fi

# First-party translation units only (the compilation database also
# lists nothing else, but be explicit about intent).
mapfile -t FILES < <(git ls-files 'src/*.cc' 'tests/*.cc' 'bench/*.cc' 'examples/*.cc')

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "${BUILD_DIR}" -quiet "${FILES[@]}"
else
  status=0
  for f in "${FILES[@]}"; do
    clang-tidy -p "${BUILD_DIR}" --quiet "$f" || status=1
  done
  exit "${status}"
fi
