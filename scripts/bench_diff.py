#!/usr/bin/env python3
"""Compares two BENCH_*.json files and flags >10% regressions.

Usage: bench_diff.py BASELINE.json CURRENT.json [--threshold=0.10]

Cells are matched by their identifying fields (everything except the
metric fields below). For time-like metrics (seconds / ms) a regression
is current > baseline * (1 + threshold); for throughput metrics it is
current < baseline * (1 - threshold). Exits 1 when any regression is
found, so CI can gate on it.
"""

import json
import sys

# metric name -> True when higher is better.
METRICS = {
    "hive_seconds": False,
    "pdw_seconds": False,
    "wall_ms": False,
    "achieved_ops_per_sec": True,
    "events_per_sec": True,
    # Operator-kernel throughput (bench_exec_kernels).
    "rows_per_sec": True,
    # Fault-tolerance counters (zero on no-fault runs; the b <= 0 guard
    # below skips them there, so adding the fields is not a cell-identity
    # or comparison change for historical baselines).
    "retries": False,
    "errors": False,
}


def cell_key(cell):
    return tuple(
        sorted((k, str(v)) for k, v in cell.items() if k not in METRICS))


def load(path):
    with open(path) as f:
        doc = json.load(f)
    cells = {}
    for cell in doc.get("cells", []):
        cells[cell_key(cell)] = cell
    return doc, cells


def load_baseline(path):
    """Loads the baseline, returning None when there is nothing usable.

    The first CI run of a new benchmark has no baseline artifact yet;
    a missing, unparsable, or cell-less baseline is not a regression —
    the current run simply becomes the first recording.
    """
    try:
        doc, cells = load(path)
    except (OSError, ValueError):
        return None
    if not cells:
        return None
    return doc, cells


def main(argv):
    threshold = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = load_baseline(paths[0])
    if baseline is None:
        print(f"no baseline at {paths[0]}: recording first run, "
              "nothing to compare")
        return 0
    base_doc, base_cells = baseline
    cur_doc, cur_cells = load(paths[1])
    print(f"baseline: {paths[0]} (git {base_doc.get('git_sha', '?')}, "
          f"{base_doc.get('threads', '?')} threads)")
    print(f"current:  {paths[1]} (git {cur_doc.get('git_sha', '?')}, "
          f"{cur_doc.get('threads', '?')} threads)")

    regressions = []
    compared = 0
    for key, base in base_cells.items():
        cur = cur_cells.get(key)
        if cur is None:
            continue
        for metric, higher_is_better in METRICS.items():
            if metric not in base or metric not in cur:
                continue
            b, c = float(base[metric]), float(cur[metric])
            if b <= 0:
                continue
            compared += 1
            ratio = c / b
            regressed = (ratio < 1 - threshold if higher_is_better
                         else ratio > 1 + threshold)
            if regressed:
                ident = {k: v for k, v in base.items() if k not in METRICS}
                regressions.append(
                    f"  {ident}: {metric} {b:g} -> {c:g} "
                    f"({(ratio - 1) * 100:+.1f}%)")

    missing = len(base_cells.keys() - cur_cells.keys())
    print(f"compared {compared} metrics across "
          f"{len(base_cells.keys() & cur_cells.keys())} matched cells"
          + (f" ({missing} baseline cells missing from current)"
             if missing else ""))
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{threshold * 100:.0f}%:")
        for line in regressions:
            print(line)
        return 1
    print("no regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
