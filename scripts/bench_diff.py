#!/usr/bin/env python3
"""Compares two BENCH_*.json files and flags regressions.

Usage: bench_diff.py BASELINE.json CURRENT.json [--threshold=0.10]

Cells are matched by their identifying fields (everything except the
metric fields below). For time-like metrics (seconds / ms) a regression
is current > baseline * (1 + threshold); for throughput metrics it is
current < baseline * (1 - threshold). Each metric may carry its own
threshold (overriding the global/--threshold one) and may be marked
non-gating: informational metrics (the fused planner's chunk counters)
are reported when they shift but never fail the run. A metric present
in the current run but absent from a matched baseline cell is a
per-metric first run — reported and recorded, never a failure — so a
benchmark can grow new metrics without invalidating its baseline.
Exits 1 when any gating regression is found, so CI can gate on it.
"""

import json
import sys


def metric(higher_is_better, gating=True, threshold=None):
    return {"higher": higher_is_better, "gating": gating,
            "threshold": threshold}


# metric name -> comparison config.
METRICS = {
    "hive_seconds": metric(False),
    "pdw_seconds": metric(False),
    "wall_ms": metric(False),
    "achieved_ops_per_sec": metric(True),
    "events_per_sec": metric(True),
    # Operator-kernel throughput (bench_exec_kernels).
    "rows_per_sec": metric(True),
    # Fault-tolerance counters (zero on no-fault runs; the b <= 0 guard
    # below skips them there, so adding the fields is not a cell-identity
    # or comparison change for historical baselines).
    "retries": metric(False),
    "errors": metric(False),
    # Fused-scan planner counters: deterministic descriptions of how a
    # scan was executed (chunks skipped, emitted whole, or scanned).
    # Informational — a plan-shape change shows up here first, but the
    # gate is the throughput it produces, not the counter itself.
    "chunks_pruned": metric(True, gating=False),
    "chunks_full_match": metric(True, gating=False),
    "chunks_scanned": metric(False, gating=False),
    "rows_scanned": metric(False, gating=False),
    "sorted_bounded": metric(True, gating=False),
    # Direct-on-encoded scan counters (bench_exec_kernels): how many
    # chunks were evaluated on their encoded bytes vs decoded first,
    # and the work shape inside them (RLE runs judged once, packed
    # 64-bit words swept). Plan descriptions, not gates — the gate is
    # the rows_per_sec they produce.
    "chunks_direct": metric(True, gating=False),
    "chunks_decoded": metric(False, gating=False),
    "runs_evaluated": metric(False, gating=False),
    "words_scanned": metric(False, gating=False),
    # Peak RSS is a process-wide high-water mark: noisier than wall
    # time, so it gates at a looser per-metric threshold.
    "peak_rss_bytes": metric(False, threshold=0.30),
    # Compression (bench_exec_kernels): the ratio gates — a codec-choice
    # regression surfaces as less compression on the same column — while
    # the encode/decode throughputs ride along informationally (they are
    # already covered by the wall-time gates where they matter).
    "compressed_ratio": metric(True, threshold=0.10),
    "encode_gbps": metric(True, gating=False),
    "decode_gbps": metric(True, gating=False),
    # Out-of-core accounting (the spill sweep): deterministic
    # descriptions of how a memory budget was met. A plan change shows
    # up here first, but the gate is the wall time it produces.
    "spills": metric(False, gating=False),
    "spill_bytes": metric(False, gating=False),
    "segcache_evictions": metric(False, gating=False),
    # Saturation sweep (bench_sweep): the knee location and the tail at
    # the knee gate; per-step percentiles and utilizations ride along
    # informationally (the knee summary is the stable signal — a step's
    # raw p99 right at the knee is bimodal by nature).
    "knee_offered_rate": metric(True),
    "p99_at_knee_ms": metric(False, threshold=0.25),
    "knee_step": metric(True, gating=False),
    "idle_p99_ms": metric(False, gating=False),
    "p50_ms": metric(False, gating=False),
    "p95_ms": metric(False, gating=False),
    "p99_ms": metric(False, gating=False),
    "p999_ms": metric(False, gating=False),
    "util_cpu": metric(False, gating=False),
    "util_disk": metric(False, gating=False),
    "util_log_disk": metric(False, gating=False),
    "util_nic_tx": metric(False, gating=False),
    "util_nic_rx": metric(False, gating=False),
    "lock_wait": metric(False, gating=False),
    "shed": metric(False, gating=False),
    "queue_wait_ms": metric(False, gating=False),
    "peak_inflight": metric(False, gating=False),
}

# Fields that are neither metrics nor identity: a fingerprint names the
# exact bits a cell produced, so treating it as identity would silently
# unmatch every cell (and skip every gate) whenever the model changes.
NON_IDENTITY = {"fingerprint"}


def cell_key(cell):
    return tuple(
        sorted((k, str(v)) for k, v in cell.items()
               if k not in METRICS and k not in NON_IDENTITY))


def load(path):
    with open(path) as f:
        doc = json.load(f)
    cells = {}
    for cell in doc.get("cells", []):
        cells[cell_key(cell)] = cell
    return doc, cells


def load_baseline(path):
    """Loads the baseline, returning None when there is nothing usable.

    The first CI run of a new benchmark has no baseline artifact yet;
    a missing, unparsable, or cell-less baseline is not a regression —
    the current run simply becomes the first recording.
    """
    try:
        doc, cells = load(path)
    except (OSError, ValueError):
        return None
    if not cells:
        return None
    return doc, cells


def main(argv):
    threshold = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = load_baseline(paths[0])
    if baseline is None:
        print(f"no baseline at {paths[0]}: recording first run, "
              "nothing to compare")
        return 0
    base_doc, base_cells = baseline
    cur_doc, cur_cells = load(paths[1])
    print(f"baseline: {paths[0]} (git {base_doc.get('git_sha', '?')}, "
          f"{base_doc.get('threads', '?')} threads)")
    print(f"current:  {paths[1]} (git {cur_doc.get('git_sha', '?')}, "
          f"{cur_doc.get('threads', '?')} threads)")

    regressions = []
    infos = []
    first_runs = []
    compared = 0
    for key, base in base_cells.items():
        cur = cur_cells.get(key)
        if cur is None:
            continue
        for name, cfg in METRICS.items():
            if name not in cur:
                continue
            if name not in base:
                # A metric the baseline predates (the cell matched, so
                # the benchmark itself is not new — only this metric
                # is). Its first value is a recording, not a
                # regression; the next baseline refresh picks it up.
                ident = {k: v for k, v in cur.items()
                         if k not in METRICS and k not in NON_IDENTITY}
                first_runs.append(
                    f"  {ident}: {name} = {float(cur[name]):g} "
                    "(absent from baseline, recording first run)")
                continue
            b, c = float(base[name]), float(cur[name])
            if b <= 0:
                continue
            compared += 1
            ratio = c / b
            gate = (cfg["threshold"] if cfg["threshold"] is not None
                    else threshold)
            regressed = (ratio < 1 - gate if cfg["higher"]
                         else ratio > 1 + gate)
            if regressed:
                ident = {k: v for k, v in base.items()
                         if k not in METRICS and k not in NON_IDENTITY}
                line = (f"  {ident}: {name} {b:g} -> {c:g} "
                        f"({(ratio - 1) * 100:+.1f}%)")
                (regressions if cfg["gating"] else infos).append(line)

    missing = len(base_cells.keys() - cur_cells.keys())
    print(f"compared {compared} metrics across "
          f"{len(base_cells.keys() & cur_cells.keys())} matched cells"
          + (f" ({missing} baseline cells missing from current)"
             if missing else ""))
    if first_runs:
        print(f"\n{len(first_runs)} metric(s) recording a first run "
              "(absent from baseline), not gated:")
        for line in first_runs:
            print(line)
    if infos:
        print(f"\n{len(infos)} informational shift(s), not gated:")
        for line in infos:
            print(line)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{threshold * 100:.0f}%:")
        for line in regressions:
            print(line)
        return 1
    print("no regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
