#!/usr/bin/env python3
"""Unit tests for scripts/elephant_lint.py.

Each rule gets a firing case and a non-firing case, plus coverage of
the allow-marker escape hatch (same line and line above), the
string/comment stripping, and the real-repo smoke check (the tree this
test ships with must lint clean — the linter is a blocking CI step).

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(SCRIPT_DIR)
sys.path.insert(0, SCRIPT_DIR)

import elephant_lint  # noqa: E402


def lint_source(source, rel="src/sample.cc"):
    """Lints a source snippet as if it lived at `rel` in the repo.
    Returns the list of rule names that fired."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "sample.cc")
        with open(path, "w") as f:
            f.write(source)
        findings = elephant_lint.lint_file(path, rel)
    return [rule for (_, _, rule, _) in findings]


class WallClockRule(unittest.TestCase):
    def test_system_clock_fires_everywhere(self):
        src = "auto t = std::chrono::system_clock::now();\n"
        self.assertEqual(lint_source(src, "src/a.cc"), ["wall-clock"])
        self.assertEqual(lint_source(src, "bench/a.cc"), ["wall-clock"])

    def test_gettimeofday_fires(self):
        self.assertEqual(
            lint_source("gettimeofday(&tv, nullptr);\n"), ["wall-clock"])

    def test_steady_clock_fires_only_under_src(self):
        src = "auto t = std::chrono::steady_clock::now();\n"
        self.assertEqual(lint_source(src, "src/sim/a.cc"), ["wall-clock"])
        self.assertEqual(lint_source(src, "bench/a.cc"), [])
        self.assertEqual(lint_source(src, "tests/a.cc"), [])

    def test_sim_time_is_fine(self):
        self.assertEqual(lint_source("SimTime t = sim->now();\n"), [])


class RawRandRule(unittest.TestCase):
    def test_mt19937_fires(self):
        self.assertEqual(
            lint_source("std::mt19937 gen(42);\n"), ["raw-rand"])

    def test_random_device_fires(self):
        self.assertEqual(
            lint_source("std::random_device rd;\n"), ["raw-rand"])

    def test_repo_rng_is_fine(self):
        self.assertEqual(lint_source("Rng rng(42);\n"), [])

    def test_operand_named_rand_is_fine(self):
        # \b guards: 'operand(' and 'brand' must not match.
        self.assertEqual(lint_source("int x = operand(1);\n"), [])


class UnorderedIterationRule(unittest.TestCase):
    def test_range_for_over_unordered_map_fires(self):
        src = ("std::unordered_map<int, int> m;\n"
               "for (const auto& [k, v] : m) {\n")
        self.assertEqual(lint_source(src), ["unordered-iteration"])

    def test_member_access_iteration_fires(self):
        src = ("std::unordered_set<int> keys_;\n"
               "for (int k : state->keys_) {\n")
        self.assertEqual(lint_source(src), ["unordered-iteration"])

    def test_ordered_map_is_fine(self):
        src = ("std::map<int, int> m;\n"
               "for (const auto& [k, v] : m) {\n")
        self.assertEqual(lint_source(src), [])

    def test_vector_with_same_name_elsewhere_not_declared_unordered(self):
        src = ("std::vector<int> rows;\n"
               "for (int r : rows) {\n")
        self.assertEqual(lint_source(src), [])


class PointerKeyedRule(unittest.TestCase):
    def test_pointer_keyed_map_fires(self):
        self.assertEqual(
            lint_source("std::map<Node*, int> owners;\n"),
            ["pointer-keyed"])

    def test_pointer_keyed_set_fires(self):
        self.assertEqual(
            lint_source("std::set<sim::Task*> live;\n"), ["pointer-keyed"])

    def test_value_keyed_is_fine(self):
        self.assertEqual(
            lint_source("std::map<uint64_t, Node*> by_id;\n"), [])


class StdFunctionInSimRule(unittest.TestCase):
    def test_fires_only_in_src_sim(self):
        src = "std::function<void()> cb;\n"
        self.assertEqual(
            lint_source(src, "src/sim/event.h"), ["std-function-in-sim"])
        self.assertEqual(lint_source(src, "src/ycsb/driver.h"), [])

    def test_inline_callback_header_exempt(self):
        src = "std::function<void()> cb;\n"
        self.assertEqual(
            lint_source(src, "src/sim/inline_callback.h"), [])


class DiscardedStatusRule(unittest.TestCase):
    def test_void_cast_call_fires(self):
        self.assertEqual(
            lint_source("(void)driver.Prepare();\n"), ["discarded-status"])

    def test_void_cast_free_function_fires(self):
        self.assertEqual(
            lint_source("(void)ns::DoThing(x);\n"), ["discarded-status"])

    def test_unused_parameter_silencer_is_fine(self):
        self.assertEqual(lint_source("(void)argc;\n"), [])

    def test_check_ok_is_fine(self):
        self.assertEqual(
            lint_source("ELEPHANT_CHECK_OK(driver.Prepare());\n"), [])


class FusedMaterializeRule(unittest.TestCase):
    FUSED = "src/exec/fused.cc"

    def test_materializing_call_fires_only_in_fused_cc(self):
        src = "Table f = Filter(t, pred);\n"
        self.assertEqual(lint_source(src, self.FUSED),
                         ["fused-materialize"])
        self.assertEqual(lint_source(src, "src/exec/operators.cc"), [])
        self.assertEqual(lint_source(src, "src/tpch/queries.cc"), [])

    def test_each_banned_operator_fires(self):
        for call in ("GatherRows(t, sel)", "GatherSelection(t, sel)",
                     "Project(t, exprs)", "ProjectColumns(t, cols)",
                     "HashAggregateOn(t, g, aggs)",
                     "HashAggregate(t, g, aggs)"):
            self.assertEqual(
                lint_source("auto out = %s;\n" % call, self.FUSED),
                ["fused-materialize"], call)

    def test_fused_twins_do_not_fire(self):
        # FusedFilter is not Filter; HashAggregateSelected feeds the
        # selection straight into the kernel without materializing.
        src = ("Table a = FusedFilter(t, spec);\n"
               "Table b = HashAggregateSelected(t, sel, g, aggs);\n"
               "auto s = FusedSelect(t, spec);\n")
        self.assertEqual(lint_source(src, self.FUSED), [])

    def test_allow_marker_suppresses(self):
        src = ("// elephant-lint: allow(fused-materialize)\n"
               "return HashAggregateOn(filtered, group_cols, aggs);\n")
        self.assertEqual(lint_source(src, self.FUSED), [])

    def test_mention_in_comment_does_not_fire(self):
        self.assertEqual(
            lint_source("// same table Filter(t, pred) builds\n",
                        self.FUSED), [])


class AllowMarkers(unittest.TestCase):
    SRC = "std::mt19937 gen(42);"

    def test_same_line_marker_suppresses(self):
        src = self.SRC + "  // elephant-lint: allow(raw-rand)\n"
        self.assertEqual(lint_source(src), [])

    def test_line_above_marker_suppresses(self):
        src = "// elephant-lint: allow(raw-rand)\n" + self.SRC + "\n"
        self.assertEqual(lint_source(src), [])

    def test_marker_two_lines_above_does_not_suppress(self):
        src = ("// elephant-lint: allow(raw-rand)\n\n" + self.SRC + "\n")
        self.assertEqual(lint_source(src), ["raw-rand"])

    def test_marker_for_other_rule_does_not_suppress(self):
        src = self.SRC + "  // elephant-lint: allow(wall-clock)\n"
        self.assertEqual(lint_source(src), ["raw-rand"])

    def test_comma_separated_rules(self):
        src = ("std::mt19937 gen(std::chrono::system_clock::now()"
               ".time_since_epoch().count());"
               "  // elephant-lint: allow(raw-rand, wall-clock)\n")
        self.assertEqual(lint_source(src), [])


class StringAndCommentStripping(unittest.TestCase):
    def test_pattern_inside_string_literal_ignored(self):
        self.assertEqual(
            lint_source('printf("never call std::rand()\\n");\n'), [])

    def test_pattern_inside_comment_ignored(self):
        self.assertEqual(
            lint_source("// std::mt19937 would break replay here\n"), [])

    def test_code_before_comment_still_checked(self):
        self.assertEqual(
            lint_source("std::mt19937 g;  // legacy\n"), ["raw-rand"])


class CommandLine(unittest.TestCase):
    def _run(self, *args):
        return subprocess.run(
            [sys.executable,
             os.path.join(SCRIPT_DIR, "elephant_lint.py")] + list(args),
            capture_output=True, text=True)

    def test_whole_repo_is_clean(self):
        proc = self._run()
        self.assertEqual(proc.returncode, 0,
                         "repo must lint clean (blocking CI step):\n"
                         + proc.stdout + proc.stderr)

    def test_dirty_file_exits_nonzero_and_reports_location(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cc", dir=REPO_ROOT, delete=False) as f:
            f.write("int main() {\n  std::srand(42);\n  return 0;\n}\n")
            path = f.name
        try:
            proc = self._run(path)
            self.assertEqual(proc.returncode, 1)
            self.assertIn(":2: [raw-rand]", proc.stdout)
        finally:
            os.unlink(path)

    def test_non_cxx_arguments_are_skipped(self):
        proc = self._run(os.path.join(SCRIPT_DIR, "elephant_lint.py"))
        self.assertEqual(proc.returncode, 0)


if __name__ == "__main__":
    unittest.main()
