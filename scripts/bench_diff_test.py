#!/usr/bin/env python3
"""Unit tests for bench_diff.py, focused on the baseline-bootstrap path.

Run directly (python3 scripts/bench_diff_test.py) or via ctest.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def write_json(dirname, name, doc):
    path = os.path.join(dirname, name)
    with open(path, "w") as f:
        json.dump(doc, f)
    return path


def doc(cells):
    return {"bench": "sim_core", "git_sha": "abc", "threads": 1,
            "harness_wall_ms": 1.0, "cells": cells}


CELL = {"scenario": "storm", "events": 1000, "wall_ms": 10.0,
        "events_per_sec": 100000.0}


class BaselineBootstrapTest(unittest.TestCase):
    """A missing/empty/corrupt baseline records a first run: exit 0."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.current = write_json(self.dir.name, "current.json", doc([CELL]))

    def tearDown(self):
        self.dir.cleanup()

    def run_main(self, baseline_path):
        return bench_diff.main(["bench_diff.py", baseline_path, self.current])

    def test_missing_baseline_exits_zero(self):
        missing = os.path.join(self.dir.name, "nonexistent.json")
        self.assertEqual(self.run_main(missing), 0)

    def test_empty_file_baseline_exits_zero(self):
        path = os.path.join(self.dir.name, "empty.json")
        open(path, "w").close()  # zero bytes: not valid JSON
        self.assertEqual(self.run_main(path), 0)

    def test_no_cells_baseline_exits_zero(self):
        path = write_json(self.dir.name, "nocells.json", doc([]))
        self.assertEqual(self.run_main(path), 0)

    def test_corrupt_baseline_exits_zero(self):
        path = os.path.join(self.dir.name, "corrupt.json")
        with open(path, "w") as f:
            f.write("{not json")
        self.assertEqual(self.run_main(path), 0)

    def test_missing_current_is_still_an_error(self):
        base = write_json(self.dir.name, "base.json", doc([CELL]))
        missing = os.path.join(self.dir.name, "nonexistent.json")
        with self.assertRaises(OSError):
            bench_diff.main(["bench_diff.py", base, missing])


class ComparisonTest(unittest.TestCase):
    """The regression gate still works once a baseline exists."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def run_main(self, base_cells, cur_cells, *extra):
        base = write_json(self.dir.name, "base.json", doc(base_cells))
        cur = write_json(self.dir.name, "cur.json", doc(cur_cells))
        return bench_diff.main(["bench_diff.py", base, cur, *extra])

    def test_identical_runs_pass(self):
        self.assertEqual(self.run_main([CELL], [dict(CELL)]), 0)

    def test_throughput_drop_is_a_regression(self):
        slow = dict(CELL, events_per_sec=50000.0)
        self.assertEqual(self.run_main([CELL], [slow]), 1)

    def test_throughput_gain_passes(self):
        fast = dict(CELL, events_per_sec=250000.0)
        self.assertEqual(self.run_main([CELL], [fast]), 0)

    def test_wall_ms_increase_is_a_regression(self):
        slow = dict(CELL, wall_ms=20.0)
        self.assertEqual(self.run_main([CELL], [slow]), 1)

    def test_threshold_flag_loosens_the_gate(self):
        slow = dict(CELL, wall_ms=11.0)  # +10%: beyond 0.05, within 0.5
        self.assertEqual(self.run_main([CELL], [slow], "--threshold=0.5"), 0)
        self.assertEqual(self.run_main([CELL], [slow], "--threshold=0.05"), 1)

    def test_bad_usage_exits_two(self):
        self.assertEqual(bench_diff.main(["bench_diff.py", "only-one"]), 2)


FUSED_CELL = {"kernel": "scan_sorted", "layout": "fused",
              "selectivity": 1, "rows": 100000, "wall_ms": 2.0,
              "rows_per_sec": 50000000.0, "chunks_pruned": 140,
              "chunks_full_match": 5, "chunks_scanned": 2,
              "rows_scanned": 8000, "peak_rss_bytes": 100000000}


class PerMetricConfigTest(unittest.TestCase):
    """Informational counters never gate; peak RSS gates at its own
    looser threshold; old baselines without the new fields still
    match and compare on the metrics they do carry."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def run_main(self, base_cells, cur_cells, *extra):
        base = write_json(self.dir.name, "base.json", doc(base_cells))
        cur = write_json(self.dir.name, "cur.json", doc(cur_cells))
        return bench_diff.main(["bench_diff.py", base, cur, *extra])

    def test_counter_shift_alone_does_not_gate(self):
        worse = dict(FUSED_CELL, chunks_pruned=0, chunks_scanned=147,
                     rows_scanned=600000)
        self.assertEqual(self.run_main([FUSED_CELL], [worse]), 0)

    def test_throughput_drop_still_gates_on_fused_cells(self):
        slow = dict(FUSED_CELL, rows_per_sec=10000000.0)
        self.assertEqual(self.run_main([FUSED_CELL], [slow]), 1)

    def test_peak_rss_uses_its_own_threshold(self):
        # +20% RSS: within the 30% per-metric gate even when the global
        # threshold is tighter; +50% trips it.
        mild = dict(FUSED_CELL, peak_rss_bytes=120000000)
        self.assertEqual(self.run_main([FUSED_CELL], [mild]), 0)
        heavy = dict(FUSED_CELL, peak_rss_bytes=150000000)
        self.assertEqual(self.run_main([FUSED_CELL], [heavy]), 1)

    def test_old_baseline_without_new_fields_still_compares(self):
        old = {k: v for k, v in FUSED_CELL.items()
               if k in ("kernel", "layout", "selectivity", "rows",
                        "wall_ms", "rows_per_sec")}
        slow = dict(FUSED_CELL, wall_ms=5.0)
        self.assertEqual(self.run_main([old], [FUSED_CELL]), 0)
        self.assertEqual(self.run_main([old], [slow]), 1)


COMPRESS_CELL = {"kernel": "compress_column", "layout": "auto",
                 "column": "lineitem.l_shipdate", "rows": 120000,
                 "compressed_ratio": 5.0, "encode_gbps": 2.5,
                 "decode_gbps": 4.0}

SPILL_CELL = {"kernel": "spill_sweep", "layout": "columnar",
              "budget_pct": 10, "rows": 120000, "wall_ms": 250.0,
              "spills": 3, "spill_bytes": 2000000,
              "segcache_evictions": 20, "peak_rss_bytes": 100000000}


class OutOfCoreMetricsTest(unittest.TestCase):
    """compressed_ratio gates at 10%; codec throughputs and the spill
    accounting are informational and never fail the run."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def run_main(self, base_cells, cur_cells, *extra):
        base = write_json(self.dir.name, "base.json", doc(base_cells))
        cur = write_json(self.dir.name, "cur.json", doc(cur_cells))
        return bench_diff.main(["bench_diff.py", base, cur, *extra])

    def test_ratio_drop_is_a_regression(self):
        worse = dict(COMPRESS_CELL, compressed_ratio=4.0)
        self.assertEqual(self.run_main([COMPRESS_CELL], [worse]), 1)

    def test_small_ratio_drift_passes(self):
        drift = dict(COMPRESS_CELL, compressed_ratio=4.8)
        self.assertEqual(self.run_main([COMPRESS_CELL], [drift]), 0)

    def test_ratio_gate_ignores_a_looser_global_threshold(self):
        # The per-metric 10% gate holds even when --threshold is loose.
        worse = dict(COMPRESS_CELL, compressed_ratio=4.0)
        self.assertEqual(self.run_main([COMPRESS_CELL], [worse],
                                       "--threshold=0.50"), 1)

    def test_codec_throughput_drop_does_not_gate(self):
        slower = dict(COMPRESS_CELL, encode_gbps=0.5, decode_gbps=0.5)
        self.assertEqual(self.run_main([COMPRESS_CELL], [slower]), 0)

    def test_spill_accounting_shift_does_not_gate(self):
        churny = dict(SPILL_CELL, spills=9, spill_bytes=9000000,
                      segcache_evictions=400)
        self.assertEqual(self.run_main([SPILL_CELL], [churny]), 0)

    def test_spill_sweep_wall_time_still_gates(self):
        slow = dict(SPILL_CELL, wall_ms=400.0)
        self.assertEqual(self.run_main([SPILL_CELL], [slow]), 1)


ENCODED_CELL = {"kernel": "encoded_scan", "layout": "direct",
                "case": "q6_range", "sf": 0.1, "rows": 600000,
                "wall_ms": 12.0, "rows_per_sec": 50000000.0,
                "chunks_direct": 441, "runs_evaluated": 0,
                "words_scanned": 18000, "peak_rss_bytes": 100000000,
                "fingerprint": "00d1c5a9e3b70f42"}


class PerMetricFirstRunTest(unittest.TestCase):
    """A metric the baseline predates is a first run for that metric:
    reported, recorded, never a failure — and never identity, so
    counter drift cannot unmatch the cell and skip the real gates."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def run_main(self, base_cells, cur_cells, *extra):
        base = write_json(self.dir.name, "base.json", doc(base_cells))
        cur = write_json(self.dir.name, "cur.json", doc(cur_cells))
        return bench_diff.main(["bench_diff.py", base, cur, *extra])

    def test_metric_absent_from_baseline_records_first_run(self):
        old = {k: v for k, v in ENCODED_CELL.items()
               if k not in ("chunks_direct", "runs_evaluated",
                            "words_scanned", "peak_rss_bytes")}
        self.assertEqual(self.run_main([old], [ENCODED_CELL]), 0)

    def test_shared_metrics_still_gate_alongside_first_runs(self):
        old = {k: v for k, v in ENCODED_CELL.items()
               if k not in ("chunks_direct", "runs_evaluated",
                            "words_scanned")}
        slow = dict(ENCODED_CELL, wall_ms=30.0)
        self.assertEqual(self.run_main([old], [slow]), 1)

    def test_encoded_counters_are_metrics_not_identity(self):
        # If the counters leaked into the cell key, this drifted run
        # would silently unmatch and the wall_ms regression would never
        # fire.
        drifted = dict(ENCODED_CELL, wall_ms=30.0, chunks_direct=12,
                       runs_evaluated=900, words_scanned=0)
        self.assertEqual(self.run_main([ENCODED_CELL], [drifted]), 1)

    def test_encoded_counter_shift_alone_does_not_gate(self):
        drifted = dict(ENCODED_CELL, chunks_direct=12, runs_evaluated=900,
                       words_scanned=0)
        self.assertEqual(self.run_main([ENCODED_CELL], [drifted]), 0)

    def test_whole_new_cell_in_current_records_first_run(self):
        # A brand-new benchmark cell has no baseline twin at all; the
        # run records it and passes.
        self.assertEqual(self.run_main([CELL], [dict(CELL), ENCODED_CELL]),
                         0)


KNEE_CELL = {"system": "SQL-CS", "workload": "B", "cell": "knee",
             "knee_step": 3, "knee_offered_rate": 40000.0,
             "p99_at_knee_ms": 60.0, "idle_p99_ms": 8.0,
             "fingerprint": "00d1c5a9e3b70f42"}

STEP_CELL = {"system": "SQL-CS", "workload": "B", "step": 2,
             "offered_rate": 16000.0, "achieved_ops_per_sec": 15800.0,
             "p50_ms": 2.0, "p95_ms": 6.0, "p99_ms": 11.0,
             "p999_ms": 25.0, "util_cpu": 0.4, "util_disk": 0.7,
             "util_log_disk": 0.2, "util_nic_tx": 0.1,
             "util_nic_rx": 0.1, "lock_wait": 0.5, "shed": 0,
             "peak_inflight": 120, "queue_wait_ms": 40.0,
             "fingerprint": "5ce0f7a1b2938d64"}


class SweepMetricsTest(unittest.TestCase):
    """The knee location and its p99 gate; per-step percentiles and
    utilizations ride along informationally; fingerprints are neither
    identity nor metrics, so a model change (new fingerprint) still
    matches cells and the gates still fire."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def run_main(self, base_cells, cur_cells, *extra):
        base = write_json(self.dir.name, "base.json", doc(base_cells))
        cur = write_json(self.dir.name, "cur.json", doc(cur_cells))
        return bench_diff.main(["bench_diff.py", base, cur, *extra])

    def test_knee_moving_earlier_is_a_regression(self):
        earlier = dict(KNEE_CELL, knee_step=2, knee_offered_rate=16000.0)
        self.assertEqual(self.run_main([KNEE_CELL], [earlier]), 1)

    def test_knee_moving_later_passes(self):
        later = dict(KNEE_CELL, knee_step=4, knee_offered_rate=80000.0)
        self.assertEqual(self.run_main([KNEE_CELL], [later]), 0)

    def test_p99_at_knee_gates_at_its_own_threshold(self):
        # +20% tail at the knee: inside the 25% per-metric gate; +50%
        # trips it even when the global threshold is looser.
        mild = dict(KNEE_CELL, p99_at_knee_ms=72.0)
        self.assertEqual(self.run_main([KNEE_CELL], [mild]), 0)
        heavy = dict(KNEE_CELL, p99_at_knee_ms=90.0)
        self.assertEqual(self.run_main([KNEE_CELL], [heavy],
                                       "--threshold=0.50"), 1)

    def test_step_tail_shift_alone_does_not_gate(self):
        worse = dict(STEP_CELL, p99_ms=30.0, p999_ms=80.0, util_disk=0.95,
                     lock_wait=3.0, queue_wait_ms=400.0, peak_inflight=512)
        self.assertEqual(self.run_main([STEP_CELL], [worse]), 0)

    def test_step_throughput_drop_still_gates(self):
        slow = dict(STEP_CELL, achieved_ops_per_sec=9000.0)
        self.assertEqual(self.run_main([STEP_CELL], [slow]), 1)

    def test_fingerprint_change_does_not_unmatch_cells(self):
        # A model change rewrites every fingerprint; the cells must
        # still match on their real identity so the gates keep firing.
        slow = dict(STEP_CELL, achieved_ops_per_sec=9000.0,
                    fingerprint="ffffffffffffffff")
        self.assertEqual(self.run_main([STEP_CELL], [slow]), 1)

    def test_missing_sweep_baseline_records_first_run(self):
        missing = os.path.join(self.dir.name, "nonexistent.json")
        cur = write_json(self.dir.name, "cur.json", doc([KNEE_CELL]))
        self.assertEqual(
            bench_diff.main(["bench_diff.py", missing, cur]), 0)


if __name__ == "__main__":
    unittest.main()
