#!/usr/bin/env python3
"""Fast repo-idiom linter for the elephant codebase (DESIGN.md §13).

The simulator's contract is bit-identical determinism: every modeled
result must be a pure function of its seed. These rules ban the C++
idioms that historically break that contract, plus silent Status
discards. Pure-regex and dependency-free, it runs in milliseconds as a
blocking ctest/CI step (unlike clang-tidy, which needs a compile
database and a toolchain CI installs separately).

Rules
-----
wall-clock            Wall-clock time sources (std::chrono::system_clock,
                      high_resolution_clock, gettimeofday, clock_gettime,
                      localtime) anywhere; steady_clock additionally
                      banned under src/ (harness timing in bench/tests
                      is fine, modeled code must use sim time).
raw-rand              rand()/srand()/std::random_device/std::mt19937:
                      all randomness goes through common/rng.h so seeds
                      replay.
unordered-iteration   Range-for over a container declared
                      std::unordered_{map,set} in the same file:
                      iteration order is hash-dependent and must not
                      feed fingerprints, reports, or event schedules.
                      Sort first, or allow-mark a provably
                      order-insensitive loop.
pointer-keyed         std::map/std::set keyed on a pointer type:
                      ordering depends on the allocator, which varies
                      run to run.
std-function-in-sim   std::function in src/sim/ (except
                      inline_callback.h, which exists to replace it):
                      type-erasure allocations on the hot event path.
discarded-status      A call result cast away with (void): Status and
                      Result must flow through ELEPHANT_CHECK_OK /
                      ELEPHANT_RETURN_NOT_OK or be allow-marked.
                      ((void)identifier; for unused parameters is fine.)
fused-materialize     A materializing operator (GatherRows, Filter,
                      Project, HashAggregate, ...) called inside
                      src/exec/fused.cc: fused pipelines must not
                      build intermediate Tables. The two legitimate
                      materialization points (the pipeline's final
                      gather and the oracle path behind the fused
                      knob) carry allow markers.

Suppression: append  // elephant-lint: allow(<rule>)  to the offending
line or the line directly above it. Every marker should say why in the
surrounding comment.

Usage: elephant_lint.py [file...]   (no args: lints the whole repo)
Exit status 1 when any finding survives suppression.
"""

import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")
LINT_DIRS = ("src/", "bench/", "tests/", "examples/")

ALLOW_RE = re.compile(r"//\s*elephant-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::system_clock|std::chrono::high_resolution_clock"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\blocaltime(_r)?\s*\("
)
STEADY_CLOCK_RE = re.compile(r"std::chrono::steady_clock")
RAW_RAND_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|std::random_device|std::mt19937"
)
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)<.*?>\s+(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*\*?(?:\w+(?:\.|->|::))*(\w+)\s*\)")
POINTER_KEYED_RE = re.compile(r"std::(?:map|set)<\s*[\w:]+\s*\*")
STD_FUNCTION_RE = re.compile(r"std::function\s*<")
# (void)Foo(...), (void)obj.Method(...), (void)ns::fn(...) — but not
# (void)identifier; which is the idiomatic unused-parameter silencer.
DISCARDED_STATUS_RE = re.compile(
    r"\(void\)\s*[A-Za-z_][\w.:\->]*[\w>]\s*\("
)
# Materializing operators banned inside the fused-pipeline translation
# unit. Word-bounded and suffix-anchored on '(' so FusedFilter( and
# HashAggregateSelected( (the selection-aware kernel) do not fire.
FUSED_MATERIALIZE_RE = re.compile(
    r"\b(?:GatherRows|GatherSelection|ProjectColumns|Project|Filter"
    r"|HashAggregateOn|HashAggregate)\s*\("
)


def strip_strings_and_comments(line):
    """Removes string/char literals and // comments so patterns inside
    them (e.g. in lint rule docs or log messages) do not fire."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote + quote)
        else:
            out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(lines, idx):
    """Rules suppressed on line idx (0-based): markers on the line
    itself or the line directly above."""
    rules = set()
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = ALLOW_RE.search(lines[probe])
        if m:
            rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lint_file(path, rel):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [(rel, 0, "io", str(e))]

    in_src = rel.startswith("src/")
    in_sim = rel.startswith("src/sim/")
    sim_exempt = rel.endswith("inline_callback.h")
    in_fused = rel == "src/exec/fused.cc"

    lines = [strip_strings_and_comments(l) for l in raw_lines]

    # Pass 1: names of unordered containers declared in this file.
    unordered_names = set()
    for line in lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group(1))

    findings = []

    def report(idx, rule, message):
        if rule in allowed_rules(raw_lines, idx):
            return
        findings.append((rel, idx + 1, rule, message))

    for idx, line in enumerate(lines):
        if WALL_CLOCK_RE.search(line):
            report(idx, "wall-clock",
                   "wall-clock time source; modeled code uses sim time, "
                   "harness timing uses steady_clock outside src/")
        elif in_src and STEADY_CLOCK_RE.search(line):
            report(idx, "wall-clock",
                   "steady_clock under src/; modeled code must use "
                   "virtual time (sim->now())")
        if RAW_RAND_RE.search(line):
            report(idx, "raw-rand",
                   "raw randomness; use common/rng.h so seeds replay")
        if POINTER_KEYED_RE.search(line):
            report(idx, "pointer-keyed",
                   "pointer-keyed ordered container; iteration order "
                   "depends on the allocator")
        if in_sim and not sim_exempt and STD_FUNCTION_RE.search(line):
            report(idx, "std-function-in-sim",
                   "std::function in the simulator core; use "
                   "InlineCallback (sim/inline_callback.h)")
        if DISCARDED_STATUS_RE.search(line):
            report(idx, "discarded-status",
                   "call result discarded with (void); route Status "
                   "through ELEPHANT_CHECK_OK or allow-mark it")
        if in_fused and FUSED_MATERIALIZE_RE.search(line):
            report(idx, "fused-materialize",
                   "materializing operator inside a fused pipeline; "
                   "fuse it or allow-mark a deliberate "
                   "materialization point")
        for m in RANGE_FOR_RE.finditer(line):
            if m.group(1) in unordered_names:
                report(idx, "unordered-iteration",
                       "range-for over unordered container '%s'; "
                       "hash order is nondeterministic — sort first"
                       % m.group(1))
    return findings


def default_files():
    try:
        out = subprocess.run(
            ["git", "ls-files"] +
            ["*" + e for e in CXX_EXTENSIONS],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True)
        files = out.stdout.splitlines()
    except (subprocess.CalledProcessError, OSError):
        files = []
        for lint_dir in LINT_DIRS:
            for root, _, names in os.walk(os.path.join(REPO_ROOT,
                                                       lint_dir)):
                for name in names:
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.relpath(
                            os.path.join(root, name), REPO_ROOT))
    return [f for f in files if f.startswith(LINT_DIRS)]


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("-")]
    if args:
        targets = []
        for a in args:
            rel = os.path.relpath(os.path.abspath(a), REPO_ROOT)
            targets.append(rel.replace(os.sep, "/"))
    else:
        targets = default_files()

    findings = []
    for rel in targets:
        if not rel.endswith(CXX_EXTENSIONS):
            continue
        findings.extend(lint_file(os.path.join(REPO_ROOT, rel), rel))

    for rel, lineno, rule, message in findings:
        print("%s:%d: [%s] %s" % (rel, lineno, rule, message))
    if findings:
        print("elephant_lint: %d finding(s) in %d file(s) checked"
              % (len(findings), len(targets)), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
