#include "common/task_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace elephant {

namespace {

/// Identifies the pool/worker owning the current thread (nullptr/-1 on
/// external threads), so RunOneTask can prefer the thread's own deque.
thread_local TaskPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

}  // namespace

TaskPool::TaskPool(int num_threads) : workers_(kMaxWorkers) {
  EnsureThreads(num_threads);
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_release);
  idle_cv_.NotifyAll();
  int n = num_workers_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    if (workers_[i]->thread.joinable()) workers_[i]->thread.join();
  }
}

void TaskPool::EnsureThreads(int n) {
  n = std::clamp(n, 1, kMaxWorkers);
  if (num_workers_.load(std::memory_order_acquire) >= n) return;
  MutexLock lock(&grow_mu_);
  int cur = num_workers_.load(std::memory_order_acquire);
  for (int i = cur; i < n; ++i) {
    workers_[i] = std::make_unique<Worker>();
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
    // Publish the new worker only after its slot is fully constructed;
    // stealers iterate indices below this count.
    num_workers_.store(i + 1, std::memory_order_release);
  }
}

void TaskPool::Submit(std::function<void()> fn) {
  ELEPHANT_DCHECK(fn != nullptr) << "null task";
  uint64_t slot = next_worker_.fetch_add(1, std::memory_order_relaxed);
  int n = num_workers_.load(std::memory_order_acquire);
  Worker& w = *workers_[slot % static_cast<uint64_t>(n)];
  {
    MutexLock lock(&w.mu);
    w.tasks.push_back(std::move(fn));
  }
  queued_.fetch_add(1, std::memory_order_release);
  idle_cv_.NotifyAll();
}

bool TaskPool::PopOwn(int worker_index, std::function<void()>* out) {
  Worker& w = *workers_[worker_index];
  MutexLock lock(&w.mu);
  if (w.tasks.empty()) return false;
  *out = std::move(w.tasks.back());
  w.tasks.pop_back();
  return true;
}

bool TaskPool::Steal(std::function<void()>* out) {
  int n = num_workers_.load(std::memory_order_acquire);
  // Start at a rotating offset so thieves spread across victims.
  uint64_t start = next_worker_.fetch_add(1, std::memory_order_relaxed);
  for (int k = 0; k < n; ++k) {
    Worker& w = *workers_[(start + static_cast<uint64_t>(k)) %
                          static_cast<uint64_t>(n)];
    MutexLock lock(&w.mu);
    if (!w.tasks.empty()) {
      *out = std::move(w.tasks.front());
      w.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void TaskPool::Execute(std::function<void()> task) {
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  task();
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    idle_cv_.NotifyAll();
  }
}

bool TaskPool::RunOneTask() {
  std::function<void()> task;
  if (tls_pool == this && tls_worker >= 0 && PopOwn(tls_worker, &task)) {
    Execute(std::move(task));
    return true;
  }
  if (Steal(&task)) {
    Execute(std::move(task));
    return true;
  }
  return false;
}

void TaskPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker = index;
  while (!stop_.load(std::memory_order_acquire)) {
    if (RunOneTask()) continue;
    MutexLock lock(&idle_mu_);
    idle_cv_.WaitFor(lock, std::chrono::milliseconds(50), [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
  tls_pool = nullptr;
  tls_worker = -1;
}

void TaskPool::WaitIdle() {
  while (queued_.load(std::memory_order_acquire) > 0 ||
         inflight_.load(std::memory_order_acquire) > 0) {
    if (RunOneTask()) continue;
    MutexLock lock(&idle_mu_);
    idle_cv_.WaitFor(lock, std::chrono::milliseconds(1));
  }
}

namespace {

/// Shared state of one ParallelFor: a chunk cursor claimed by all
/// participants plus first-exception capture.
struct ForJob {
  size_t begin = 0;
  size_t end = 0;
  size_t morsel = 1;
  size_t nchunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::atomic<int> outstanding{0};  ///< helper tasks not yet finished
  Mutex error_mu;
  std::exception_ptr error ELEPHANT_GUARDED_BY(error_mu);

  void RunChunks() {
    for (;;) {
      if (cancelled.load(std::memory_order_acquire)) return;
      size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      size_t lo = begin + c * morsel;
      size_t hi = std::min(end, lo + morsel);
      try {
        (*body)(lo, hi);
      } catch (...) {
        MutexLock lock(&error_mu);
        if (!error) error = std::current_exception();
        cancelled.store(true, std::memory_order_release);
      }
    }
  }
};

}  // namespace

void TaskPool::ParallelFor(size_t begin, size_t end, size_t morsel,
                           const std::function<void(size_t, size_t)>& body,
                           int parallelism) {
  if (end <= begin) return;
  ELEPHANT_CHECK(morsel > 0) << "morsel size must be positive";
  size_t nchunks = (end - begin + morsel - 1) / morsel;
  int workers = num_threads();
  int participants = parallelism > 0 ? std::min(parallelism, workers + 1)
                                     : workers;
  participants =
      std::min<size_t>(static_cast<size_t>(participants), nchunks);
  if (participants <= 1 || nchunks == 1) {
    for (size_t c = 0; c < nchunks; ++c) {
      size_t lo = begin + c * morsel;
      body(lo, std::min(end, lo + morsel));
    }
    return;
  }

  auto job = std::make_shared<ForJob>();
  job->begin = begin;
  job->end = end;
  job->morsel = morsel;
  job->nchunks = nchunks;
  job->body = &body;
  int helpers = participants - 1;  // the caller is a participant too
  job->outstanding.store(helpers, std::memory_order_release);
  for (int i = 0; i < helpers; ++i) {
    Submit([job] {
      job->RunChunks();
      job->outstanding.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  job->RunChunks();
  // Helpers may still be inside their last morsel (or still queued).
  // Keep draining pool tasks while waiting so nested ParallelFor calls
  // whose helper tasks sit behind us cannot deadlock.
  while (job->outstanding.load(std::memory_order_acquire) > 0) {
    if (RunOneTask()) continue;
    MutexLock lock(&idle_mu_);
    idle_cv_.WaitFor(lock, std::chrono::microseconds(200));
  }
  // Helpers are drained: no thread can touch job->error any more, and
  // the outstanding-counter acquire pairs with their final release.
  MutexLock lock(&job->error_mu);
  if (job->error) std::rethrow_exception(job->error);
}

TaskPool& TaskPool::Global(int min_threads) {
  static TaskPool pool(std::max(DefaultThreadCount(), 1));
  if (min_threads > 0) pool.EnsureThreads(min_threads);
  return pool;
}

int DefaultThreadCount() {
  static const int threads = [] {
    const char* env = std::getenv("ELEPHANT_THREADS");
    if (env == nullptr) return 1;
    int n = std::atoi(env);
    return n >= 1 ? n : 1;
  }();
  return threads;
}

}  // namespace elephant
