#ifndef ELEPHANT_COMMON_STRING_UTIL_H_
#define ELEPHANT_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace elephant {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins pieces with a separator: {"a","b"} + "," -> "a,b".
std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& s, char delim);

/// "1.5 GB", "337 MB", "42 KB", "17 B".
std::string HumanBytes(int64_t bytes);

/// "2512 min", "86.4 s", "12.3 ms" from microseconds.
std::string HumanMicros(int64_t micros);

/// Left-pads with '0' to `width` — the YCSB key format the paper uses
/// ("the string representation of the integer prefixed with a sequence of
/// '0' so the total length of the key is 24 bytes").
std::string ZeroPadKey(uint64_t n, int width);

}  // namespace elephant

#endif  // ELEPHANT_COMMON_STRING_UTIL_H_
