#ifndef ELEPHANT_COMMON_DISTRIBUTIONS_H_
#define ELEPHANT_COMMON_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace elephant {

/// Key-request distribution interface, matching the generator family used
/// by the YCSB benchmark (Cooper et al., SoCC 2010) that the paper's OLTP
/// evaluation is built on.
class IntegerGenerator {
 public:
  virtual ~IntegerGenerator() = default;

  /// Draws the next value.
  virtual uint64_t Next(Rng* rng) = 0;

  /// Informs the generator that keys [0, max] now exist (used by
  /// insert-following distributions such as Latest).
  virtual void SetLastValue(uint64_t max) { (void)max; }

  virtual std::string name() const = 0;
};

/// Uniform over [lo, hi].
class UniformGenerator : public IntegerGenerator {
 public:
  UniformGenerator(uint64_t lo, uint64_t hi) : lo_(lo), hi_(hi) {}
  uint64_t Next(Rng* rng) override {
    return lo_ + rng->Uniform(hi_ - lo_ + 1);
  }
  void SetLastValue(uint64_t max) override { hi_ = max; }
  std::string name() const override { return "uniform"; }

 private:
  uint64_t lo_;
  uint64_t hi_;
};

/// Zipfian over [0, n) with the YCSB incremental-zeta algorithm
/// (Gray et al., "Quickly Generating Billion-Record Synthetic Databases").
/// Item 0 is the most popular.
class ZipfianGenerator : public IntegerGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  explicit ZipfianGenerator(uint64_t n, double theta = kDefaultTheta);

  uint64_t Next(Rng* rng) override;
  void SetLastValue(uint64_t max) override;
  std::string name() const override { return "zipfian"; }

  uint64_t item_count() const { return n_; }

 private:
  static double Zeta(uint64_t from, uint64_t to, double theta, double seed);
  void Recompute();

  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
  uint64_t computed_n_;  ///< n the zetan_ was computed for
};

/// Zipfian popularity spread over the whole keyspace via hashing, so hot
/// keys are scattered instead of clustered at the low end. This is YCSB's
/// default request distribution for workloads A, B, C and E.
class ScrambledZipfianGenerator : public IntegerGenerator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t n,
                                     double theta = ZipfianGenerator::kDefaultTheta);
  uint64_t Next(Rng* rng) override;
  void SetLastValue(uint64_t max) override;
  std::string name() const override { return "scrambled_zipfian"; }

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

/// "Latest" distribution: recently inserted keys are most popular
/// (workload D's read side). Draws a zipfian-distributed distance from the
/// most recent insert.
class LatestGenerator : public IntegerGenerator {
 public:
  explicit LatestGenerator(uint64_t n,
                           double theta = ZipfianGenerator::kDefaultTheta);
  uint64_t Next(Rng* rng) override;
  void SetLastValue(uint64_t max) override;
  std::string name() const override { return "latest"; }

 private:
  uint64_t last_;
  ZipfianGenerator zipf_;
};

/// Uniform scan-length generator for workload E (YCSB default: uniform in
/// [1, max_len]; the paper caps scans at 1000 records).
class ScanLengthGenerator {
 public:
  explicit ScanLengthGenerator(uint64_t max_len) : max_len_(max_len) {}
  uint64_t Next(Rng* rng) { return 1 + rng->Uniform(max_len_); }
  uint64_t max_len() const { return max_len_; }

 private:
  uint64_t max_len_;
};

/// Weighted choice over a small fixed set of operation types.
class DiscreteGenerator {
 public:
  void Add(int value, double weight);
  int Next(Rng* rng) const;
  double WeightOf(int value) const;

 private:
  std::vector<std::pair<int, double>> entries_;
  double total_ = 0;
};

}  // namespace elephant

#endif  // ELEPHANT_COMMON_DISTRIBUTIONS_H_
