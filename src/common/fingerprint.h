#ifndef ELEPHANT_COMMON_FINGERPRINT_H_
#define ELEPHANT_COMMON_FINGERPRINT_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace elephant {

/// Order-sensitive 64-bit FNV-1a accumulator used to fingerprint
/// simulation outcomes. Two runs of the same workload with the same seed
/// must produce bit-identical fingerprints; the determinism checker
/// (tests/determinism_test.cc) runs every path twice and compares.
///
/// Doubles are mixed by bit pattern, not value, so even an ULP of
/// nondeterminism (e.g. an accidental iteration over pointer-keyed maps)
/// changes the fingerprint.
class Fingerprint {
 public:
  Fingerprint& Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= kPrime;
    }
    return *this;
  }
  Fingerprint& Mix(int64_t v) { return Mix(static_cast<uint64_t>(v)); }
  Fingerprint& Mix(int v) { return Mix(static_cast<uint64_t>(v)); }
  Fingerprint& Mix(bool v) { return Mix(static_cast<uint64_t>(v)); }
  Fingerprint& Mix(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return Mix(bits);
  }
  Fingerprint& Mix(std::string_view s) {
    for (char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kPrime;
    }
    return Mix(static_cast<uint64_t>(s.size()));
  }

  uint64_t value() const { return hash_; }

 private:
  static constexpr uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001b3ULL;
  uint64_t hash_ = kOffset;
};

}  // namespace elephant

#endif  // ELEPHANT_COMMON_FINGERPRINT_H_
