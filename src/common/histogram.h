#ifndef ELEPHANT_COMMON_HISTOGRAM_H_
#define ELEPHANT_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace elephant {

/// Log-linear latency histogram (HdrHistogram-style), recording int64
/// values (we use microseconds). Constant memory, O(1) record, percentile
/// queries by bucket walk. Bucket boundaries grow ~12.5% per step.
class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const { return count_ ? min_ : 0; }
  int64_t max() const { return max_; }
  double Mean() const;
  double StdDev() const;
  /// Value at percentile p in [0, 100].
  int64_t Percentile(double p) const;
  int64_t Median() const { return Percentile(50.0); }

  /// The tail quantiles the serving sweep reports per step, computed in
  /// one bucket walk instead of four.
  struct Quantiles {
    int64_t p50 = 0;
    int64_t p95 = 0;
    int64_t p99 = 0;
    int64_t p999 = 0;
  };
  Quantiles SummaryQuantiles() const;

  /// Multi-line summary ("count=... mean=... p50=... p99=...").
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 512;
  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int bucket);

  std::vector<int64_t> buckets_;
  int64_t count_;
  int64_t min_;
  int64_t max_;
  double sum_;
  double sum_squares_;
};

/// Accumulates a mean and its standard error across fixed windows — the
/// paper reports "average values over the last 10 minutes of execution,
/// measured every 10 second interval" with standard errors across the 60
/// measurements. WindowedSeries captures exactly that protocol.
class WindowedSeries {
 public:
  void AddWindow(double value) { values_.push_back(value); }

  size_t size() const { return values_.size(); }

  /// Mean over the last `n` windows (all windows if n >= size).
  double MeanOfLast(size_t n) const;

  /// Standard error of the mean over the last `n` windows.
  double StdErrorOfLast(size_t n) const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace elephant

#endif  // ELEPHANT_COMMON_HISTOGRAM_H_
