#ifndef ELEPHANT_COMMON_RNG_H_
#define ELEPHANT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>

namespace elephant {

/// Splits a 64-bit seed into a well-mixed stream (Steele et al.,
/// SplitMix64). Used to seed other generators deterministically.
uint64_t SplitMix64(uint64_t* state);

/// General-purpose deterministic PRNG (xoshiro256**). All randomized
/// behaviour in the library flows from explicitly seeded instances of this
/// class so that every benchmark and test is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean);

 private:
  uint64_t s_[4];
};

/// The TPC-H dbgen random stream: a 48-bit linear congruential generator
/// equivalent to the one shipped with dbgen. Each column has its own
/// stream; dbgen advances streams deterministically so that rows can be
/// generated independently and in parallel.
class TpchRandom {
 public:
  explicit TpchRandom(uint64_t seed) : seed_(seed & kMask48) {}

  /// dbgen's RANDOM(low, high): uniform integer in [low, high], computed
  /// with *32-bit* range arithmetic. At TPC-H scale factor 16000 the
  /// partkey/custkey ranges exceed INT32_MAX and this overflows to
  /// negative values — the exact bug the paper reports in §3.3.1.
  int32_t Random32(int64_t low, int64_t high);

  /// The paper's RANDOM64 fix: same stream, 64-bit range arithmetic; never
  /// overflows for TPC-H ranges.
  int64_t Random64(int64_t low, int64_t high);

  /// Advances the stream by `count` values without generating them
  /// (dbgen's row-skipping used for parallel generation).
  void Advance(int64_t count);

  uint64_t seed() const { return seed_; }

 private:
  static constexpr uint64_t kMask48 = (1ULL << 48) - 1;
  static constexpr uint64_t kMultiplier = 0x5DEECE66DULL;
  static constexpr uint64_t kIncrement = 0xBULL;

  uint64_t NextBits();

  uint64_t seed_;
};

/// 64-bit FNV-1a, the hash used for client-side sharding (SQL-CS and
/// Mongo-CS home-node selection) and for Hive bucket assignment.
uint64_t Fnv1a64(const void* data, size_t len);
uint64_t Fnv1a64(uint64_t value);

}  // namespace elephant

#endif  // ELEPHANT_COMMON_RNG_H_
