#ifndef ELEPHANT_COMMON_STATUS_H_
#define ELEPHANT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace elephant {

/// Error categories used across the library. Modeled on the
/// Arrow/RocksDB convention: functions that can fail return a Status (or a
/// Result<T>) instead of throwing; exceptions never cross the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,  ///< e.g. Hive map-join heap failure, full disk
  kFailedPrecondition,
  kAborted,            ///< lock conflicts, deadlock victims
  kUnimplemented,
  kInternal,
  kIOError,
  kTimedOut,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. The type is [[nodiscard]]: every call site must consume the
/// Status (propagate it, branch on it, or assert with ELEPHANT_CHECK_OK).
/// Usage:
///
///   Status s = table.Insert(row);
///   if (!s.ok()) return s;
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK Status to the caller; evaluates `expr` once.
#define ELEPHANT_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::elephant::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace elephant

#endif  // ELEPHANT_COMMON_STATUS_H_
