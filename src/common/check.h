#ifndef ELEPHANT_COMMON_CHECK_H_
#define ELEPHANT_COMMON_CHECK_H_

#include <ostream>
#include <sstream>

#include "common/status.h"

/// Runtime invariant checking for the elephant codebase.
///
/// Three macros, modeled on the glog/absl conventions:
///
///   ELEPHANT_CHECK(cond)    — always-on assertion. On failure prints
///                             "CHECK failed: <cond> (file:line) <msg>"
///                             plus a stack trace, then aborts. Streams:
///                               ELEPHANT_CHECK(n > 0) << "got " << n;
///   ELEPHANT_DCHECK(cond)   — same, but compiled out (condition not
///                             evaluated) when NDEBUG is defined. Use on
///                             hot paths where the check would cost.
///   ELEPHANT_CHECK_OK(expr) — asserts a Status/Result-returning
///                             expression is ok(); prints the status on
///                             failure. Evaluates `expr` once.
///
/// Invariant validators (`ValidateInvariants()` on the storage
/// structures) return Status so tests can assert on the failure message;
/// the macros here are for conditions that indicate memory corruption or
/// logic bugs where continuing would poison every later measurement.

namespace elephant::internal {

/// Accumulates the user-streamed message for a failed check and aborts
/// (with a stack trace) in its destructor.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  ~CheckFailure();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Lowers the stream expression to void so the ternary in
/// ELEPHANT_CHECK type-checks. operator& binds looser than operator<<.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace elephant::internal

#define ELEPHANT_CHECK(cond)                                       \
  (cond) ? (void)0                                                 \
         : ::elephant::internal::Voidify() &                       \
               ::elephant::internal::CheckFailure(__FILE__, __LINE__, #cond) \
                   .stream()

#ifdef NDEBUG
// Compiled out: the condition and streamed operands still type-check but
// are never evaluated.
#define ELEPHANT_DCHECK(cond) \
  while (false) ELEPHANT_CHECK(cond)
#else
#define ELEPHANT_DCHECK(cond) ELEPHANT_CHECK(cond)
#endif

#define ELEPHANT_CHECK_OK(expr)                                     \
  do {                                                              \
    const ::elephant::Status _elephant_check_st = (expr);           \
    ELEPHANT_CHECK(_elephant_check_st.ok())                         \
        << "status = " << _elephant_check_st.ToString();            \
  } while (0)

#ifdef NDEBUG
#define ELEPHANT_DCHECK_OK(expr) \
  while (false) ELEPHANT_CHECK_OK(expr)
#else
#define ELEPHANT_DCHECK_OK(expr) ELEPHANT_CHECK_OK(expr)
#endif

#endif  // ELEPHANT_COMMON_CHECK_H_
