#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace elephant {

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Reset(); }

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = INT64_MAX;
  max_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  // First 64 buckets are linear [0..64), then log-linear: 8 sub-buckets
  // per power of two.
  if (value < 64) return static_cast<int>(value);
  int log2 = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  int sub = static_cast<int>((value >> (log2 - 3)) & 7);
  int bucket = 64 + (log2 - 6) * 8 + sub;
  return std::min(bucket, kNumBuckets - 1);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < 64) return bucket;
  int idx = bucket - 64;
  int log2 = idx / 8 + 6;
  int sub = idx % 8;
  return (1LL << log2) + static_cast<int64_t>(sub + 1) * (1LL << (log2 - 3)) -
         1;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)]++;
  count_++;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  double v = static_cast<double>(value);
  sum_ += v;
  sum_squares_ += v * v;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ < 2) return 0.0;
  double n = static_cast<double>(count_);
  double var = (sum_squares_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  double target = p / 100.0 * static_cast<double>(count_);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

Histogram::Quantiles Histogram::SummaryQuantiles() const {
  Quantiles q;
  if (count_ == 0) return q;
  // One pass: each quantile resolves at the first bucket whose running
  // count reaches its target, so results match Percentile() bit-exactly.
  const double targets[4] = {50.0, 95.0, 99.0, 99.9};
  int64_t* out[4] = {&q.p50, &q.p95, &q.p99, &q.p999};
  int next = 0;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets && next < 4; ++i) {
    seen += buckets_[i];
    while (next < 4 &&
           static_cast<double>(seen) >=
               targets[next] / 100.0 * static_cast<double>(count_)) {
      *out[next] = std::min(BucketUpperBound(i), max_);
      next++;
    }
  }
  for (; next < 4; ++next) *out[next] = max_;
  return q;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " min=" << min()
     << " max=" << max_ << " p50=" << Percentile(50) << " p95="
     << Percentile(95) << " p99=" << Percentile(99);
  return os.str();
}

double WindowedSeries::MeanOfLast(size_t n) const {
  if (values_.empty()) return 0.0;
  size_t start = values_.size() > n ? values_.size() - n : 0;
  double sum = 0;
  for (size_t i = start; i < values_.size(); ++i) sum += values_[i];
  return sum / static_cast<double>(values_.size() - start);
}

double WindowedSeries::StdErrorOfLast(size_t n) const {
  if (values_.empty()) return 0.0;
  size_t start = values_.size() > n ? values_.size() - n : 0;
  size_t m = values_.size() - start;
  if (m < 2) return 0.0;
  double mean = MeanOfLast(n);
  double ss = 0;
  for (size_t i = start; i < values_.size(); ++i) {
    double d = values_[i] - mean;
    ss += d * d;
  }
  double var = ss / static_cast<double>(m - 1);
  return std::sqrt(var / static_cast<double>(m));
}

}  // namespace elephant
