#ifndef ELEPHANT_COMMON_RESULT_H_
#define ELEPHANT_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace elephant {

/// Holds either a value of type T or a non-OK Status. [[nodiscard]] like
/// Status: call sites must consume the Result.
///
///   Result<int> r = ParsePort(text);
///   if (!r.ok()) return r.status();
///   int port = r.value();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit by design, mirroring
  /// arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Calling this with an OK status is a
  /// programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    ELEPHANT_DCHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from an OK status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error (or OK if a value is held).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accessors abort (always, even in Release) when no value is held:
  /// silently reading a corrupt variant would skew every figure
  /// downstream of it.
  const T& value() const& {
    ELEPHANT_CHECK(ok()) << "Result::value() on error: "
                         << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    ELEPHANT_CHECK(ok()) << "Result::value() on error: "
                         << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    ELEPHANT_CHECK(ok()) << "Result::value() on error: "
                         << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates the error of a Result expression, otherwise assigns its
/// value to `lhs` (which must be a declaration or lvalue).
#define ELEPHANT_CONCAT_INNER_(a, b) a##b
#define ELEPHANT_CONCAT_(a, b) ELEPHANT_CONCAT_INNER_(a, b)
#define ELEPHANT_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto&& var = (expr);                                  \
  if (!var.ok()) return var.status();                   \
  lhs = std::move(var).value();
#define ELEPHANT_ASSIGN_OR_RETURN(lhs, expr) \
  ELEPHANT_ASSIGN_OR_RETURN_IMPL_(ELEPHANT_CONCAT_(_res_, __LINE__), lhs, \
                                  expr)

}  // namespace elephant

#endif  // ELEPHANT_COMMON_RESULT_H_
