#include "common/rng.h"

#include <cmath>
#include <cstring>

namespace elephant {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

uint64_t TpchRandom::NextBits() {
  seed_ = (seed_ * kMultiplier + kIncrement) & kMask48;
  return seed_;
}

int32_t TpchRandom::Random32(int64_t low, int64_t high) {
  // Reproduces dbgen's RANDOM: the range (high - low + 1) is held in a
  // 32-bit signed int, so ranges above INT32_MAX wrap to negative values
  // and the resulting "uniform" draw can be negative. This is the bug the
  // paper observed for partkey/custkey in mk_order at SF 16000.
  int32_t range = static_cast<int32_t>(high - low + 1);
  uint64_t bits = NextBits() >> 16;  // top 32 bits of the 48-bit state
  if (range <= 0) {
    // Overflowed range: dbgen computes (seed % range) with range negative
    // or zero, producing garbage. We model the observable symptom the
    // paper reports: negative key values.
    uint32_t m = static_cast<uint32_t>(-static_cast<int64_t>(range));
    if (m == 0) m = 1;
    return -static_cast<int32_t>(bits % m) - 1;
  }
  return static_cast<int32_t>(low + static_cast<int64_t>(
                                        bits % static_cast<uint32_t>(range)));
}

int64_t TpchRandom::Random64(int64_t low, int64_t high) {
  uint64_t range = static_cast<uint64_t>(high - low + 1);
  // One 48-bit draw, passed through a finalizer: the raw LCG's low bits
  // have tiny periods, which would skew `% range` badly.
  uint64_t state = NextBits();
  uint64_t bits = SplitMix64(&state);
  return low + static_cast<int64_t>(bits % range);
}

void TpchRandom::Advance(int64_t count) {
  // O(log n) LCG skip-ahead via modular exponentiation of the update.
  uint64_t mult = kMultiplier;
  uint64_t add = kIncrement;
  uint64_t n = static_cast<uint64_t>(count);
  uint64_t acc_mult = 1;
  uint64_t acc_add = 0;
  while (n > 0) {
    if (n & 1) {
      acc_mult = (acc_mult * mult) & kMask48;
      acc_add = (acc_add * mult + add) & kMask48;
    }
    add = ((mult + 1) * add) & kMask48;
    mult = (mult * mult) & kMask48;
    n >>= 1;
  }
  seed_ = (acc_mult * seed_ + acc_add) & kMask48;
}

uint64_t Fnv1a64(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t Fnv1a64(uint64_t value) {
  return Fnv1a64(&value, sizeof(value));
}

}  // namespace elephant
