#include "common/distributions.h"

#include <cmath>

#include "common/check.h"

namespace elephant {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta), computed_n_(0) {
  ELEPHANT_CHECK(n > 0) << "zipfian over an empty domain";
  Recompute();
}

double ZipfianGenerator::Zeta(uint64_t from, uint64_t to, double theta,
                              double seed) {
  double sum = seed;
  for (uint64_t i = from; i < to; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

void ZipfianGenerator::Recompute() {
  if (computed_n_ == 0) {
    zetan_ = Zeta(0, n_, theta_, 0.0);
  } else if (n_ > computed_n_) {
    zetan_ = Zeta(computed_n_, n_, theta_, zetan_);
  } else if (n_ < computed_n_) {
    zetan_ = Zeta(0, n_, theta_, 0.0);
  }
  computed_n_ = n_;
  zeta2_ = Zeta(0, 2, theta_, 0.0);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng* rng) {
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

void ZipfianGenerator::SetLastValue(uint64_t max) {
  if (max + 1 != n_) {
    n_ = max + 1;
    Recompute();
  }
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(uint64_t n,
                                                     double theta)
    : n_(n), zipf_(n, theta) {}

uint64_t ScrambledZipfianGenerator::Next(Rng* rng) {
  uint64_t rank = zipf_.Next(rng);
  return Fnv1a64(rank) % n_;
}

void ScrambledZipfianGenerator::SetLastValue(uint64_t max) {
  n_ = max + 1;
  // YCSB keeps the zipfian over the original item count and only expands
  // the hash range; we follow the same approach for stability.
}

LatestGenerator::LatestGenerator(uint64_t n, double theta)
    : last_(n - 1), zipf_(n, theta) {}

uint64_t LatestGenerator::Next(Rng* rng) {
  uint64_t offset = zipf_.Next(rng);
  if (offset > last_) return 0;
  return last_ - offset;
}

void LatestGenerator::SetLastValue(uint64_t max) {
  // Completions can arrive out of order; only ever grow (shrinking
  // would also force a full zeta recomputation).
  if (max <= last_) return;
  last_ = max;
  zipf_.SetLastValue(max);
}

void DiscreteGenerator::Add(int value, double weight) {
  if (weight <= 0) return;
  entries_.emplace_back(value, weight);
  total_ += weight;
}

int DiscreteGenerator::Next(Rng* rng) const {
  ELEPHANT_CHECK(!entries_.empty())
      << "DiscreteGenerator::Next with no entries";
  double u = rng->NextDouble() * total_;
  for (const auto& [value, weight] : entries_) {
    if (u < weight) return value;
    u -= weight;
  }
  return entries_.back().first;
}

double DiscreteGenerator::WeightOf(int value) const {
  for (const auto& [v, w] : entries_) {
    if (v == value) return w / total_;
  }
  return 0.0;
}

}  // namespace elephant
