#ifndef ELEPHANT_COMMON_TASK_POOL_H_
#define ELEPHANT_COMMON_TASK_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace elephant {

/// Morsel-driven work-stealing task scheduler (Hyrise/HyPer style).
///
/// Fixed worker threads, one deque per worker: an owner pushes and pops
/// at the back (LIFO, cache-friendly for nested spawns) while idle
/// workers steal from the front (FIFO, oldest-first). `ParallelFor`
/// splits an index range into fixed-size morsels that participants
/// claim from a shared atomic cursor; the calling thread always
/// participates and drains queued tasks while it waits, so a nested
/// `ParallelFor` issued from inside a task makes progress even when
/// every worker is busy (nested-submission safe, no deadlock). The
/// first exception thrown by a morsel body is captured and rethrown on
/// the calling thread after the loop drains.
///
/// Determinism contract: morsel decomposition depends only on
/// (begin, end, morsel), never on the worker count or interleaving, so
/// parallel code that writes per-morsel slots and concatenates them in
/// morsel order produces output independent of the thread count.
class TaskPool {
 public:
  /// Spawns `num_threads` workers (clamped to [1, kMaxWorkers]).
  explicit TaskPool(int num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `fn` for asynchronous execution. `fn` must not throw.
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far (including tasks those
  /// tasks submitted) has finished; the caller helps run them.
  void WaitIdle();

  /// Runs `body(lo, hi)` over [begin, end) split into `morsel`-sized
  /// chunks. The caller participates; up to `parallelism - 1` workers
  /// help (0 = use every worker). Rethrows the first body exception.
  void ParallelFor(size_t begin, size_t end, size_t morsel,
                   const std::function<void(size_t, size_t)>& body,
                   int parallelism = 0);

  /// Grows the worker set to at least `n` threads (never shrinks).
  void EnsureThreads(int n);

  int num_threads() const {
    return num_workers_.load(std::memory_order_acquire);
  }

  /// Process-wide pool, created on first use and grown (never shrunk)
  /// to the largest requested size. Safe to call concurrently.
  static TaskPool& Global(int min_threads = 0);

  static constexpr int kMaxWorkers = 64;

 private:
  struct Worker {
    Mutex mu;
    std::deque<std::function<void()>> tasks ELEPHANT_GUARDED_BY(mu);
    std::thread thread;  // set once under grow_mu_, joined in ~TaskPool
  };

  void WorkerLoop(int index);
  /// Runs one queued task if any is available (own deque first when the
  /// current thread is a worker of this pool, then steal). Returns
  /// false when every deque was empty.
  bool RunOneTask();
  bool PopOwn(int worker_index, std::function<void()>* out);
  bool Steal(std::function<void()>* out);
  void Execute(std::function<void()> task);

  /// Worker slots. The vector itself is sized once in the constructor
  /// and never reallocated; slot i is written under grow_mu_ and
  /// published through the num_workers_ release store, so readers that
  /// loaded num_workers_ (acquire) > i may touch workers_[i] without a
  /// lock. TSA cannot express this publish-once protocol, so the field
  /// is not GUARDED_BY — EnsureThreads is the only writer.
  std::vector<std::unique_ptr<Worker>> workers_;  // kMaxWorkers slots
  std::atomic<int> num_workers_{0};
  Mutex grow_mu_;
  std::atomic<uint64_t> next_worker_{0};
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> inflight_{0};
  std::atomic<bool> stop_{false};
  Mutex idle_mu_;
  CondVar idle_cv_;
};

/// Thread count requested via the ELEPHANT_THREADS environment
/// variable; 1 (the serial oracle path) when unset or unparsable.
int DefaultThreadCount();

}  // namespace elephant

#endif  // ELEPHANT_COMMON_TASK_POOL_H_
