#ifndef ELEPHANT_COMMON_DATE_H_
#define ELEPHANT_COMMON_DATE_H_

#include <cstdint>
#include <string>

namespace elephant {

/// Calendar dates stored as days since 1970-01-01 (can be negative).
/// TPC-H data spans 1992-01-01 .. 1998-12-31; queries do date arithmetic
/// in days, months and years.
using DateCode = int32_t;

/// days_from_civil (Hinnant's algorithm): y/m/d -> days since epoch.
DateCode MakeDate(int year, int month, int day);

/// Inverse of MakeDate.
void CivilFromDate(DateCode date, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD".
DateCode ParseDate(const std::string& s);

/// Formats as "YYYY-MM-DD".
std::string FormatDate(DateCode date);

/// Adds calendar months, clamping the day to the target month's length
/// (SQL interval semantics: 1996-01-31 + 1 month = 1996-02-29).
DateCode AddMonths(DateCode date, int months);

/// Adds calendar years.
DateCode AddYears(DateCode date, int years);

/// Extracts the year.
int YearOf(DateCode date);

}  // namespace elephant

#endif  // ELEPHANT_COMMON_DATE_H_
