#include "common/stats.h"

#include <cmath>

namespace elephant {

double ArithmeticMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double GeometricMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0;
  for (double x : xs) {
    if (x <= 0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  sum_ += x;
  count_++;
}

}  // namespace elephant
