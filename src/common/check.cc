#include "common/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace elephant::internal {

namespace {

/// Best-effort stack dump to stderr (glibc only; symbol quality depends
/// on -rdynamic / frame pointers, which the sanitizer builds keep).
void DumpStack() {
#if defined(__GLIBC__)
  void* frames[64];
  int depth = backtrace(frames, 64);
  // Skip the two innermost frames (DumpStack, ~CheckFailure).
  int skip = depth > 2 ? 2 : 0;
  backtrace_symbols_fd(frames + skip, depth - skip, /*fd=*/2);
#endif
}

}  // namespace

CheckFailure::CheckFailure(const char* file, int line,
                           const char* condition) {
  stream_ << "CHECK failed: " << condition << " (" << file << ":" << line
          << ") ";
}

CheckFailure::~CheckFailure() {
  std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  DumpStack();
  std::fflush(stderr);
  std::abort();
}

}  // namespace elephant::internal
