#ifndef ELEPHANT_COMMON_UNITS_H_
#define ELEPHANT_COMMON_UNITS_H_

#include <cstdint>

namespace elephant {

/// Simulated time is measured in integer microseconds from simulation
/// start. All engine models and the DES kernel use this type.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

/// Converts seconds (possibly fractional) to SimTime.
constexpr SimTime SecondsToSimTime(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

/// Converts SimTime to fractional seconds.
constexpr double SimTimeToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts SimTime to fractional milliseconds.
constexpr double SimTimeToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

constexpr int64_t kKB = 1024;
constexpr int64_t kMB = 1024 * kKB;
constexpr int64_t kGB = 1024 * kMB;
constexpr int64_t kTB = 1024 * kGB;

}  // namespace elephant

#endif  // ELEPHANT_COMMON_UNITS_H_
