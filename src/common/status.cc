#include "common/status.h"

namespace elephant {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kTimedOut:
      return "TimedOut";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace elephant
