#ifndef ELEPHANT_COMMON_STATS_H_
#define ELEPHANT_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace elephant {

/// Arithmetic mean of a sample. Returns 0 for an empty sample.
double ArithmeticMean(const std::vector<double>& xs);

/// Geometric mean of a positive sample. Returns 0 for an empty sample.
/// Used for Table 3's GM rows (computed in log space for stability).
double GeometricMean(const std::vector<double>& xs);

/// Simple online accumulator for count/mean/min/max.
class RunningStat {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace elephant

#endif  // ELEPHANT_COMMON_STATS_H_
