#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace elephant {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    vsnprintf(out.data(), static_cast<size_t>(len) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string HumanBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 5) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StrFormat("%lld B", static_cast<long long>(bytes));
  return StrFormat("%.1f %s", v, units[u]);
}

std::string HumanMicros(int64_t micros) {
  if (micros >= 60LL * 1000 * 1000) {
    return StrFormat("%.1f min",
                     static_cast<double>(micros) / (60.0 * 1e6));
  }
  if (micros >= 1000 * 1000) {
    return StrFormat("%.1f s", static_cast<double>(micros) / 1e6);
  }
  if (micros >= 1000) {
    return StrFormat("%.1f ms", static_cast<double>(micros) / 1e3);
  }
  return StrFormat("%lld us", static_cast<long long>(micros));
}

std::string ZeroPadKey(uint64_t n, int width) {
  std::string digits = std::to_string(n);
  if (static_cast<int>(digits.size()) >= width) return digits;
  return std::string(static_cast<size_t>(width) - digits.size(), '0') +
         digits;
}

}  // namespace elephant
