#ifndef ELEPHANT_COMMON_THREAD_ANNOTATIONS_H_
#define ELEPHANT_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Clang Thread Safety Analysis adoption (DESIGN.md §13).
///
/// These macros wrap Clang's capability attributes so that every field
/// shared between *real* threads (TaskPool deques, Table's lazy
/// row/column caches, bench/test accumulators) names the mutex that
/// guards it, and `-Werror=thread-safety` proves at compile time that
/// no access happens without that mutex held. The attributes compile
/// away to nothing on GCC (and on Clangs without the attribute), so the
/// default build is unchanged; the dedicated CI job builds with
///   cmake -DELEPHANT_THREAD_SAFETY=ON -DCMAKE_CXX_COMPILER=clang++
/// which adds -Werror=thread-safety.
///
/// This layer covers host-thread mutexes only. The *modeled* locks the
/// simulation coroutines take (sqlkv row locks, mongod's global lock)
/// are invisible to TSA and TSan alike; those are checked in virtual
/// time by sim::LocksetChecker (sim/lockset.h).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ELEPHANT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ELEPHANT_THREAD_ANNOTATION
#define ELEPHANT_THREAD_ANNOTATION(x)  // not Clang: attributes vanish
#endif

/// Declares a class to be a lockable capability ("mutex").
#define ELEPHANT_CAPABILITY(x) ELEPHANT_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define ELEPHANT_SCOPED_CAPABILITY ELEPHANT_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define ELEPHANT_GUARDED_BY(x) ELEPHANT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field annotation: the pointed-to data requires holding `x`.
#define ELEPHANT_PT_GUARDED_BY(x) ELEPHANT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotations: the function acquires/releases the capability.
#define ELEPHANT_ACQUIRE(...) \
  ELEPHANT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ELEPHANT_ACQUIRE_SHARED(...) \
  ELEPHANT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ELEPHANT_RELEASE(...) \
  ELEPHANT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ELEPHANT_RELEASE_SHARED(...) \
  ELEPHANT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define ELEPHANT_TRY_ACQUIRE(...) \
  ELEPHANT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must hold the capability (exclusively / at least shared).
#define ELEPHANT_REQUIRES(...) \
  ELEPHANT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ELEPHANT_REQUIRES_SHARED(...) \
  ELEPHANT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (deadlock prevention).
#define ELEPHANT_EXCLUDES(...) \
  ELEPHANT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define ELEPHANT_RETURN_CAPABILITY(x) \
  ELEPHANT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot model (publish-once
/// double-checked paths, condition-variable internals). Every use must
/// carry a comment explaining why the access is safe.
#define ELEPHANT_NO_THREAD_SAFETY_ANALYSIS \
  ELEPHANT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace elephant {

class CondVar;

/// Annotated std::mutex wrapper: the capability the analysis tracks.
/// Use with MutexLock; prefer this over raw std::mutex for any state
/// shared between host threads so GUARDED_BY fields are enforceable.
class ELEPHANT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ELEPHANT_ACQUIRE() { mu_.lock(); }
  void Unlock() ELEPHANT_RELEASE() { mu_.unlock(); }
  bool TryLock() ELEPHANT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex (std::lock_guard with capability
/// tracking). Not copyable or movable; lives on the stack.
class ELEPHANT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ELEPHANT_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() ELEPHANT_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
};

/// Condition variable paired with Mutex. WaitFor releases the mutex for
/// the duration of the wait and reacquires before returning, exactly
/// like std::condition_variable — the analysis is told nothing changes
/// because the capability is held again by the time control returns.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Waits until `pred()` or the timeout. The caller holds `lock`'s
  /// mutex on entry and on return (the wait itself unlocks/relocks, an
  /// exchange the analysis cannot see — hence the annotation opt-out).
  template <typename Rep, typename Period, typename Pred>
  void WaitFor(MutexLock& lock, std::chrono::duration<Rep, Period> timeout,
               Pred pred) ELEPHANT_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait_for(lock.mu_->mu_, timeout, std::move(pred));
  }
  template <typename Rep, typename Period>
  void WaitFor(MutexLock& lock, std::chrono::duration<Rep, Period> timeout)
      ELEPHANT_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait_for(lock.mu_->mu_, timeout);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace elephant

#endif  // ELEPHANT_COMMON_THREAD_ANNOTATIONS_H_
