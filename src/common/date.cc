#include "common/date.h"

#include <cstdio>

namespace elephant {

namespace {

bool IsLeap(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

DateCode MakeDate(int y, int m, int d) {
  // Howard Hinnant's days_from_civil.
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<DateCode>(era * 146097 + static_cast<int>(doe) -
                               719468);
}

void CivilFromDate(DateCode date, int* year, int* month, int* day) {
  // Howard Hinnant's civil_from_days.
  int z = date + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

DateCode ParseDate(const std::string& s) {
  int y = 0, m = 0, d = 0;
  sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d);
  return MakeDate(y, m, d);
}

std::string FormatDate(DateCode date) {
  int y, m, d;
  CivilFromDate(date, &y, &m, &d);
  char buf[32];
  snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

DateCode AddMonths(DateCode date, int months) {
  int y, m, d;
  CivilFromDate(date, &y, &m, &d);
  int total = (y * 12 + (m - 1)) + months;
  int ny = total / 12;
  int nm = total % 12 + 1;
  if (nm <= 0) {
    nm += 12;
    ny -= 1;
  }
  int nd = d;
  int dim = DaysInMonth(ny, nm);
  if (nd > dim) nd = dim;
  return MakeDate(ny, nm, nd);
}

DateCode AddYears(DateCode date, int years) {
  return AddMonths(date, years * 12);
}

int YearOf(DateCode date) {
  int y, m, d;
  CivilFromDate(date, &y, &m, &d);
  return y;
}

}  // namespace elephant
