#include "cluster/cluster.h"

#include "common/string_util.h"

namespace elephant::cluster {

DiskGroup::DiskGroup(sim::Simulation* sim, const sim::Disk::Config& config,
                     int num_disks, std::string name)
    : config_(config),
      num_disks_(num_disks),
      server_(sim, num_disks, std::move(name)) {}

SimTime DiskGroup::ServiceTime(int64_t bytes, bool sequential) const {
  double transfer_s = static_cast<double>(bytes) / (config_.seq_mbps * 1e6);
  SimTime t = SecondsToSimTime(transfer_s);
  if (!sequential) t += config_.position_time;
  return t;
}

sim::Server::Awaiter DiskGroup::RandomRead(int64_t bytes) {
  bytes_read_ += bytes;
  return server_.Acquire(ServiceTime(bytes, /*sequential=*/false));
}

sim::Server::Awaiter DiskGroup::RandomWrite(int64_t bytes) {
  bytes_written_ += bytes;
  return server_.Acquire(ServiceTime(bytes, /*sequential=*/false));
}

sim::Server::Awaiter DiskGroup::SeqRead(int64_t bytes) {
  bytes_read_ += bytes;
  return server_.Acquire(ServiceTime(bytes, /*sequential=*/true));
}

sim::Server::Awaiter DiskGroup::SeqWrite(int64_t bytes) {
  bytes_written_ += bytes;
  return server_.Acquire(ServiceTime(bytes, /*sequential=*/true));
}

sim::Server::CheckedAwaiter DiskGroup::RandomReadChecked(int64_t bytes) {
  bytes_read_ += bytes;
  return server_.AcquireChecked(ServiceTime(bytes, /*sequential=*/false));
}

sim::Server::CheckedAwaiter DiskGroup::SeqReadChecked(int64_t bytes) {
  bytes_read_ += bytes;
  return server_.AcquireChecked(ServiceTime(bytes, /*sequential=*/true));
}

double DiskGroup::AggregateSeqBytesPerSec() const {
  return config_.seq_mbps * 1e6 * num_disks_;
}

double DiskGroup::AggregateRandomIops(int64_t bytes) const {
  double per_req_s = SimTimeToSeconds(ServiceTime(bytes, false));
  return num_disks_ / per_req_s;
}

Node::Node(sim::Simulation* sim, int id, const NodeConfig& config)
    : id_(id),
      config_(config),
      cpu_(sim, config.hardware_threads, StrFormat("node%d.cpu", id)),
      data_disks_(sim, config.disk, config.data_disks,
                  StrFormat("node%d.data", id)),
      log_disk_(sim, config.disk, StrFormat("node%d.log", id)),
      nic_tx_(sim, config.nic, StrFormat("node%d.tx", id)),
      nic_rx_(sim, config.nic, StrFormat("node%d.rx", id)) {}

Cluster::Cluster(sim::Simulation* sim, int num_nodes,
                 const NodeConfig& config)
    : sim_(sim), config_(config) {
  nodes_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, i, config));
  }
}

sim::Task Cluster::Transfer(int from, int to, int64_t bytes,
                            sim::Latch* done) {
  if (from != to) {
    co_await nodes_[from]->nic_tx().Send(bytes);
    co_await nodes_[to]->nic_rx().server().Acquire(
        nodes_[to]->nic_rx().TransferTime(bytes) -
        config_.nic.per_message_latency);
  }
  done->CountDown();
}

SimTime Cluster::ShuffleTime(int64_t total_bytes, int participants) const {
  if (participants <= 1) return 0;
  // Each node sends total/n bytes, of which (n-1)/n crosses the network;
  // egress and ingress proceed in parallel, so per-node NIC drain time is
  // the bound.
  double per_node_bytes = static_cast<double>(total_bytes) / participants *
                          (participants - 1) / participants;
  double seconds = per_node_bytes * 8.0 / (config_.nic.gbps * 1e9);
  return SecondsToSimTime(seconds);
}

SimTime Cluster::BroadcastTime(int64_t bytes, int participants) const {
  if (participants <= 1) return 0;
  double seconds = static_cast<double>(bytes) * (participants - 1) * 8.0 /
                   (config_.nic.gbps * 1e9);
  return SecondsToSimTime(seconds);
}

std::vector<sim::NodeFaultSurface> FaultSurfaces(Cluster* cluster) {
  std::vector<sim::NodeFaultSurface> surfaces;
  surfaces.reserve(cluster->num_nodes());
  for (int i = 0; i < cluster->num_nodes(); ++i) {
    Node& node = cluster->node(i);
    sim::NodeFaultSurface s;
    s.data_disk = &node.data_disks().server();
    s.log_disk = &node.log_disk().server();
    s.nic_tx = &node.nic_tx().server();
    s.nic_rx = &node.nic_rx().server();
    surfaces.push_back(s);
  }
  return surfaces;
}

}  // namespace elephant::cluster
