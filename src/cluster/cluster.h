#ifndef ELEPHANT_CLUSTER_CLUSTER_H_
#define ELEPHANT_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/fault.h"
#include "sim/resources.h"
#include "sim/simulation.h"

namespace elephant::cluster {

/// Hardware description of one node. Defaults reproduce the paper's
/// testbed (§3.1): dual Intel Xeon L5630 quad-core @ 2.13 GHz
/// (16 hyper-threads), 32 GB RAM, 10 SAS 10K RPM disks of which 8 hold
/// data, 1 GbE through an HP Procurve switch.
struct NodeConfig {
  int hardware_threads = 16;
  int64_t memory_bytes = 32LL * kGB;
  int data_disks = 8;
  sim::Disk::Config disk;        ///< per-spindle characteristics
  sim::Link::Config nic;         ///< one direction of the full-duplex NIC
  /// Relative CPU speed multiplier (1.0 = the paper's 2.13 GHz Xeon).
  double cpu_speed = 1.0;
};

/// A group of identical spindles treated as one storage volume. With
/// `data_disks` spindles, up to that many requests are in service
/// concurrently, so aggregate sequential bandwidth is
/// data_disks * seq_mbps (the paper: 8 disks ≈ 800 MB/s aggregate).
/// Covers both the RAID-0 layout (Hive/MongoDB) and the
/// one-volume-per-disk layout (PDW/SQL Server): both expose the same
/// spindle-level parallelism to the model.
class DiskGroup {
 public:
  DiskGroup(sim::Simulation* sim, const sim::Disk::Config& config,
            int num_disks, std::string name);

  /// Random-access read/write of one request of `bytes`.
  sim::Server::Awaiter RandomRead(int64_t bytes);
  sim::Server::Awaiter RandomWrite(int64_t bytes);
  /// Streaming read/write of `bytes` as one request (no positioning).
  sim::Server::Awaiter SeqRead(int64_t bytes);
  sim::Server::Awaiter SeqWrite(int64_t bytes);

  /// Checked variants: the completion carries a Status that is IOError
  /// when the volume's injected transient-error budget fired (see
  /// sim::Server::AcquireChecked). Timing is identical to the unchecked
  /// calls.
  sim::Server::CheckedAwaiter RandomReadChecked(int64_t bytes);
  sim::Server::CheckedAwaiter SeqReadChecked(int64_t bytes);

  /// Aggregate sequential bandwidth in bytes/sec.
  double AggregateSeqBytesPerSec() const;
  /// Aggregate random-read throughput in requests/sec for `bytes` pages.
  double AggregateRandomIops(int64_t bytes) const;

  sim::Server& server() { return server_; }
  int num_disks() const { return num_disks_; }
  int64_t bytes_read() const { return bytes_read_; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  SimTime ServiceTime(int64_t bytes, bool sequential) const;

  sim::Disk::Config config_;
  int num_disks_;
  sim::Server server_;
  int64_t bytes_read_ = 0;
  int64_t bytes_written_ = 0;
};

/// One simulated machine: CPU slots, memory accounting, a data volume, a
/// dedicated log disk, and a full-duplex NIC.
class Node {
 public:
  Node(sim::Simulation* sim, int id, const NodeConfig& config);

  int id() const { return id_; }
  const NodeConfig& config() const { return config_; }

  /// CPU: capacity = hardware threads; Acquire with the work's duration.
  sim::Server& cpu() { return cpu_; }
  /// Scales a CPU-work duration by this node's speed.
  SimTime CpuWork(SimTime work) const {
    return static_cast<SimTime>(static_cast<double>(work) /
                                config_.cpu_speed);
  }

  DiskGroup& data_disks() { return data_disks_; }
  sim::Disk& log_disk() { return log_disk_; }
  sim::Link& nic_tx() { return nic_tx_; }
  sim::Link& nic_rx() { return nic_rx_; }

  int64_t memory_bytes() const { return config_.memory_bytes; }

 private:
  int id_;
  NodeConfig config_;
  sim::Server cpu_;
  DiskGroup data_disks_;
  sim::Disk log_disk_;
  sim::Link nic_tx_;
  sim::Link nic_rx_;
};

/// A rack of nodes behind one non-blocking switch (the paper's HP
/// Procurve 2510G); each node's ingress/egress is limited by its own
/// 1 Gb/s NIC.
class Cluster {
 public:
  Cluster(sim::Simulation* sim, int num_nodes, const NodeConfig& config);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return *nodes_[i]; }
  sim::Simulation* simulation() { return sim_; }
  const NodeConfig& node_config() const { return config_; }

  /// Point-to-point message: charges the sender's egress and the
  /// receiver's ingress. Returns a coroutine task completing the latch
  /// when both directions have drained.
  sim::Task Transfer(int from, int to, int64_t bytes, sim::Latch* done);

  /// Analytical time for an all-to-all shuffle of `total_bytes` spread
  /// evenly over the participating nodes (every node both sends and
  /// receives total/n bytes; bottleneck is the per-node NIC).
  SimTime ShuffleTime(int64_t total_bytes, int participants) const;

  /// Analytical time to broadcast `bytes` from one node to all others
  /// (sender NIC-bound: (n-1) * bytes / bandwidth).
  SimTime BroadcastTime(int64_t bytes, int participants) const;

 private:
  sim::Simulation* sim_;
  NodeConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// One fault surface per node of the cluster, for sim::FaultInjector:
/// the data volume, the log spindle, and both NIC directions.
std::vector<sim::NodeFaultSurface> FaultSurfaces(Cluster* cluster);

}  // namespace elephant::cluster

#endif  // ELEPHANT_CLUSTER_CLUSTER_H_
