#ifndef ELEPHANT_SQL_AST_H_
#define ELEPHANT_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace elephant::sql {

/// Expression node kinds.
enum class ExprKind {
  kLiteralInt,
  kLiteralDouble,
  kLiteralString,
  kColumn,
  kBinary,    ///< op in {+,-,*,/,=,<>,<,<=,>,>=,AND,OR}
  kNot,
  kLike,      ///< column-ish LIKE 'pattern' (% wildcards)
  kBetween,   ///< expr BETWEEN lo AND hi
  kAggregate, ///< SUM/AVG/MIN/MAX/COUNT over an argument
};

enum class AggFunc { kSum, kAvg, kMin, kMax, kCount, kCountDistinct };

/// A parsed SQL expression (owning tree).
struct Expr {
  ExprKind kind;
  // Literals.
  int64_t int_value = 0;
  double double_value = 0;
  std::string str_value;   // string literal / column name / binary op
  // Children: binary -> {lhs, rhs}; not -> {child}; like -> {child}
  // (pattern in str_value2); between -> {value, lo, hi};
  // aggregate -> {arg} (empty for COUNT(*)).
  std::vector<std::unique_ptr<Expr>> children;
  std::string str_value2;  // LIKE pattern
  AggFunc agg = AggFunc::kCount;
  bool agg_distinct = false;
};

/// One item of the SELECT list.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  ///< empty = derived from the expression
};

/// FROM clause: first table plus zero or more equi-joins.
struct JoinClause {
  std::string table;
  std::string left_column;   ///< column from the tables joined so far
  std::string right_column;  ///< column of `table`
};

struct OrderItem {
  std::string column;  ///< output-column name (or select alias)
  bool ascending = true;
};

/// A parsed SELECT statement.
struct SelectStatement {
  bool select_star = false;             ///< SELECT *
  std::vector<SelectItem> select_list;
  std::string from_table;
  std::vector<JoinClause> joins;
  std::unique_ptr<Expr> where;          // may be null
  std::vector<std::string> group_by;    // column names
  /// HAVING over the aggregate output; reference aggregates by their
  /// SELECT aliases (dialect restriction).
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;                   // -1 = no limit
};

}  // namespace elephant::sql

#endif  // ELEPHANT_SQL_AST_H_
