#ifndef ELEPHANT_SQL_ENGINE_H_
#define ELEPHANT_SQL_ENGINE_H_

#include <map>
#include <string>

#include "common/check.h"
#include "common/result.h"
#include "exec/table.h"
#include "sql/ast.h"

namespace elephant::sql {

/// A name -> table catalog plus a SQL query runner over the exec
/// operator library. This is the front door a library user queries mini
/// datasets through:
///
///   sql::Database db;
///   db.Register("lineitem", &tpch_db.lineitem);
///   auto result = db.Query("SELECT l_returnflag, SUM(l_quantity) "
///                          "FROM lineitem GROUP BY l_returnflag");
///
/// Tables are borrowed, not owned; they must outlive the Database.
class Database {
 public:
  /// Registers a table under a (case-sensitive) name.
  Status Register(const std::string& name, const exec::Table* table);

  /// Registers all eight tables of a TPC-H database under their
  /// standard names. `db` must outlive this Database.
  /// The eight standard names are distinct, so registration cannot
  /// fail; a duplicate would mean a corrupted caller and aborts.
  template <typename TpchDatabaseT>
  void RegisterTpch(const TpchDatabaseT& db) {
    ELEPHANT_CHECK_OK(Register("region", &db.region));
    ELEPHANT_CHECK_OK(Register("nation", &db.nation));
    ELEPHANT_CHECK_OK(Register("supplier", &db.supplier));
    ELEPHANT_CHECK_OK(Register("part", &db.part));
    ELEPHANT_CHECK_OK(Register("partsupp", &db.partsupp));
    ELEPHANT_CHECK_OK(Register("customer", &db.customer));
    ELEPHANT_CHECK_OK(Register("orders", &db.orders));
    ELEPHANT_CHECK_OK(Register("lineitem", &db.lineitem));
  }

  /// Parses and executes a SELECT statement.
  Result<exec::Table> Query(const std::string& sql) const;

  /// Executes an already-parsed statement.
  Result<exec::Table> Execute(const SelectStatement& stmt) const;

  const exec::Table* Find(const std::string& name) const;

 private:
  std::map<std::string, const exec::Table*> tables_;
};

/// SQL LIKE with % wildcards (exposed for tests).
bool LikeMatch(const std::string& value, const std::string& pattern);

}  // namespace elephant::sql

#endif  // ELEPHANT_SQL_ENGINE_H_
