#include "sql/engine.h"

#include <functional>
#include <vector>

#include "common/string_util.h"
#include "exec/operators.h"
#include "sql/parser.h"

namespace elephant::sql {

namespace {

using exec::AsDouble;
using exec::AsString;
using exec::Row;
using exec::Table;
using exec::Value;

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kAggregate) return true;
  for (const auto& c : e.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

/// Compiles an AST expression (without aggregates) into an executor
/// closure over `table`'s schema. Booleans are 1.0 / 0.0 doubles.
Result<exec::Expr> Compile(const Expr& e, const Table& table) {
  switch (e.kind) {
    case ExprKind::kLiteralInt: {
      Value v{e.int_value};
      return exec::Expr([v](const Row&) { return v; });
    }
    case ExprKind::kLiteralDouble: {
      Value v{e.double_value};
      return exec::Expr([v](const Row&) { return v; });
    }
    case ExprKind::kLiteralString: {
      Value v{e.str_value};
      return exec::Expr([v](const Row&) { return v; });
    }
    case ExprKind::kColumn: {
      int idx = table.FindCol(e.str_value);
      if (idx < 0) {
        return Status::InvalidArgument("unknown column " + e.str_value);
      }
      return exec::Expr([idx](const Row& row) { return row[idx]; });
    }
    case ExprKind::kNot: {
      ELEPHANT_ASSIGN_OR_RETURN(auto child, Compile(*e.children[0], table));
      return exec::Expr([child](const Row& row) {
        return Value{AsDouble(child(row)) != 0.0 ? 0.0 : 1.0};
      });
    }
    case ExprKind::kLike: {
      ELEPHANT_ASSIGN_OR_RETURN(auto child, Compile(*e.children[0], table));
      std::string pattern = e.str_value2;
      return exec::Expr([child, pattern](const Row& row) {
        return Value{LikeMatch(AsString(child(row)), pattern) ? 1.0 : 0.0};
      });
    }
    case ExprKind::kBetween: {
      ELEPHANT_ASSIGN_OR_RETURN(auto value, Compile(*e.children[0], table));
      ELEPHANT_ASSIGN_OR_RETURN(auto lo, Compile(*e.children[1], table));
      ELEPHANT_ASSIGN_OR_RETURN(auto hi, Compile(*e.children[2], table));
      return exec::Expr([value, lo, hi](const Row& row) {
        Value v = value(row);
        return Value{exec::CompareValues(v, lo(row)) >= 0 &&
                             exec::CompareValues(v, hi(row)) <= 0
                         ? 1.0
                         : 0.0};
      });
    }
    case ExprKind::kBinary: {
      ELEPHANT_ASSIGN_OR_RETURN(auto lhs, Compile(*e.children[0], table));
      ELEPHANT_ASSIGN_OR_RETURN(auto rhs, Compile(*e.children[1], table));
      const std::string& op = e.str_value;
      if (op == "+") {
        return exec::Expr([lhs, rhs](const Row& r) {
          return Value{AsDouble(lhs(r)) + AsDouble(rhs(r))};
        });
      }
      if (op == "-") {
        return exec::Expr([lhs, rhs](const Row& r) {
          return Value{AsDouble(lhs(r)) - AsDouble(rhs(r))};
        });
      }
      if (op == "*") {
        return exec::Expr([lhs, rhs](const Row& r) {
          return Value{AsDouble(lhs(r)) * AsDouble(rhs(r))};
        });
      }
      if (op == "/") {
        return exec::Expr([lhs, rhs](const Row& r) {
          double d = AsDouble(rhs(r));
          return Value{d == 0 ? 0.0 : AsDouble(lhs(r)) / d};
        });
      }
      if (op == "AND") {
        return exec::Expr([lhs, rhs](const Row& r) {
          return Value{AsDouble(lhs(r)) != 0.0 && AsDouble(rhs(r)) != 0.0
                           ? 1.0
                           : 0.0};
        });
      }
      if (op == "OR") {
        return exec::Expr([lhs, rhs](const Row& r) {
          return Value{AsDouble(lhs(r)) != 0.0 || AsDouble(rhs(r)) != 0.0
                           ? 1.0
                           : 0.0};
        });
      }
      // Comparisons.
      int want_lo = 0, want_hi = 0;
      if (op == "=") {
        want_lo = want_hi = 0;
      } else if (op == "<>") {
        return exec::Expr([lhs, rhs](const Row& r) {
          return Value{exec::CompareValues(lhs(r), rhs(r)) != 0 ? 1.0 : 0.0};
        });
      } else if (op == "<") {
        want_lo = want_hi = -1;
      } else if (op == ">") {
        want_lo = want_hi = 1;
      } else if (op == "<=") {
        want_lo = -1;
        want_hi = 0;
      } else if (op == ">=") {
        want_lo = 0;
        want_hi = 1;
      } else {
        return Status::InvalidArgument("unknown operator " + op);
      }
      return exec::Expr([lhs, rhs, want_lo, want_hi](const Row& r) {
        int c = exec::CompareValues(lhs(r), rhs(r));
        return Value{c == want_lo || c == want_hi ? 1.0 : 0.0};
      });
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument(
          "aggregate in a non-aggregate position");
  }
  return Status::Internal("unhandled expression kind");
}

exec::AggKind ToExecAgg(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return exec::AggKind::kSum;
    case AggFunc::kAvg:
      return exec::AggKind::kAvg;
    case AggFunc::kMin:
      return exec::AggKind::kMin;
    case AggFunc::kMax:
      return exec::AggKind::kMax;
    case AggFunc::kCount:
      return exec::AggKind::kCount;
    case AggFunc::kCountDistinct:
      return exec::AggKind::kCountDistinct;
  }
  return exec::AggKind::kCount;
}

const char* AggName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCount:
    case AggFunc::kCountDistinct:
      return "count";
  }
  return "agg";
}

}  // namespace

bool LikeMatch(const std::string& value, const std::string& pattern) {
  // Dynamic programming over value x pattern with '%' matching any run.
  size_t v = 0, p = 0, star_p = std::string::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == value[v] || pattern[p] == '_')) {
      v++;
      p++;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') p++;
  return p == pattern.size();
}

Status Database::Register(const std::string& name,
                          const exec::Table* table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (!tables_.emplace(name, table).second) {
    return Status::AlreadyExists(name);
  }
  return Status::OK();
}

const exec::Table* Database::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

Result<exec::Table> Database::Query(const std::string& sql) const {
  ELEPHANT_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  return Execute(stmt);
}

Result<exec::Table> Database::Execute(const SelectStatement& stmt) const {
  // --- FROM: base table + equi-joins ---
  const Table* base = Find(stmt.from_table);
  if (base == nullptr) {
    return Status::NotFound("table " + stmt.from_table);
  }
  Table current = *base;
  for (const JoinClause& join : stmt.joins) {
    const Table* right = Find(join.table);
    if (right == nullptr) return Status::NotFound("table " + join.table);
    if (current.FindCol(join.left_column) < 0) {
      return Status::InvalidArgument("unknown join column " +
                                     join.left_column);
    }
    if (right->FindCol(join.right_column) < 0) {
      return Status::InvalidArgument("unknown join column " +
                                     join.right_column);
    }
    current = exec::HashJoinOn(current, *right, {join.left_column},
                               {join.right_column});
  }

  // --- WHERE ---
  if (stmt.where != nullptr) {
    ELEPHANT_ASSIGN_OR_RETURN(auto pred, Compile(*stmt.where, current));
    current = exec::Filter(current, [pred](const Row& row) {
      return AsDouble(pred(row)) != 0.0;
    });
  }

  // --- SELECT / GROUP BY ---
  if (stmt.select_star) {
    if (!stmt.group_by.empty()) {
      return Status::InvalidArgument("SELECT * cannot be aggregated");
    }
    Table output = current;
    if (!stmt.order_by.empty()) {
      std::vector<exec::SortKey> keys;
      for (const OrderItem& item : stmt.order_by) {
        int idx = output.FindCol(item.column);
        if (idx < 0) {
          return Status::InvalidArgument("unknown ORDER BY column " +
                                         item.column);
        }
        keys.push_back({idx, item.ascending});
      }
      output = exec::SortBy(output, keys);
    }
    if (stmt.limit >= 0) {
      output = exec::Limit(output, static_cast<size_t>(stmt.limit));
    }
    return output;
  }

  bool has_aggregates = false;
  for (const SelectItem& item : stmt.select_list) {
    if (ContainsAggregate(*item.expr)) has_aggregates = true;
  }

  Table output;
  if (has_aggregates || !stmt.group_by.empty()) {
    // Aggregate path: each select item is either a group column or a
    // top-level aggregate call.
    std::vector<exec::AggExpr> aggs;
    struct OutputRef {
      bool is_group_col;
      std::string source;  // group column or generated agg name
      std::string name;    // output name
    };
    std::vector<OutputRef> refs;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const SelectItem& item = stmt.select_list[i];
      if (item.expr->kind == ExprKind::kColumn) {
        refs.push_back({true, item.expr->str_value,
                        item.alias.empty() ? item.expr->str_value
                                           : item.alias});
        continue;
      }
      if (item.expr->kind != ExprKind::kAggregate) {
        return Status::Unimplemented(
            "select items must be group columns or aggregates when "
            "aggregating");
      }
      exec::AggExpr agg;
      agg.kind = ToExecAgg(item.expr->agg);
      agg.type = agg.kind == exec::AggKind::kCount ||
                         agg.kind == exec::AggKind::kCountDistinct
                     ? exec::ValueType::kInt
                     : exec::ValueType::kDouble;
      std::string name = item.alias.empty()
                             ? StrFormat("%s_%zu", AggName(item.expr->agg), i)
                             : item.alias;
      agg.name = name;
      if (!item.expr->children.empty()) {
        ELEPHANT_ASSIGN_OR_RETURN(
            auto compiled, Compile(*item.expr->children[0], current));
        agg.arg = compiled;
      }
      aggs.push_back(std::move(agg));
      refs.push_back({false, name, name});
    }
    for (const std::string& g : stmt.group_by) {
      if (current.FindCol(g) < 0) {
        return Status::InvalidArgument("unknown group column " + g);
      }
    }
    Table aggregated = exec::HashAggregateOn(current, stmt.group_by, aggs);
    // Re-project into the select order with the requested names.
    std::vector<exec::NamedExpr> projected;
    for (const OutputRef& ref : refs) {
      int idx = aggregated.FindCol(ref.source);
      if (idx < 0) {
        return Status::InvalidArgument(
            "select column " + ref.source +
            " is not in GROUP BY and not an aggregate");
      }
      projected.push_back({ref.name, aggregated.columns()[idx].type,
                           [idx](const Row& r) { return r[idx]; }});
    }
    output = exec::Project(aggregated, projected);
    if (stmt.having != nullptr) {
      ELEPHANT_ASSIGN_OR_RETURN(auto pred, Compile(*stmt.having, output));
      output = exec::Filter(output, [pred](const Row& row) {
        return AsDouble(pred(row)) != 0.0;
      });
    }
  } else {
    // Plain projection.
    std::vector<exec::NamedExpr> projected;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const SelectItem& item = stmt.select_list[i];
      ELEPHANT_ASSIGN_OR_RETURN(auto compiled, Compile(*item.expr, current));
      std::string name = item.alias;
      exec::ValueType type = exec::ValueType::kDouble;
      if (item.expr->kind == ExprKind::kColumn) {
        if (name.empty()) name = item.expr->str_value;
        type = current.columns()[current.ColIndex(item.expr->str_value)].type;
      } else if (item.expr->kind == ExprKind::kLiteralString) {
        type = exec::ValueType::kString;
      }
      if (name.empty()) name = StrFormat("expr_%zu", i);
      projected.push_back({name, type, compiled});
    }
    output = exec::Project(current, projected);
  }

  // --- ORDER BY / LIMIT ---
  if (!stmt.order_by.empty()) {
    std::vector<exec::SortKey> keys;
    for (const OrderItem& item : stmt.order_by) {
      int idx = output.FindCol(item.column);
      if (idx < 0) {
        return Status::InvalidArgument("unknown ORDER BY column " +
                                       item.column);
      }
      keys.push_back({idx, item.ascending});
    }
    output = exec::SortBy(output, keys);
  }
  if (stmt.limit >= 0) {
    output = exec::Limit(output, static_cast<size_t>(stmt.limit));
  }
  return output;
}

}  // namespace elephant::sql
