#include "sql/parser.h"

#include <cctype>
#include <utility>

#include "common/date.h"
#include "common/string_util.h"

namespace elephant::sql {

namespace {

enum class TokenType {
  kIdent,
  kInt,
  kDouble,
  kString,
  kSymbol,  // punctuation / operator
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // uppercased for idents/keywords
  std::string raw;    // original spelling (string literals)
  int64_t int_value = 0;
  double double_value = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        pos_++;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(Identifier());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        tokens.push_back(Number());
        continue;
      }
      if (c == '\'') {
        ELEPHANT_ASSIGN_OR_RETURN(Token t, StringLiteral());
        tokens.push_back(std::move(t));
        continue;
      }
      Token t;
      t.type = TokenType::kSymbol;
      // Two-character operators.
      if (pos_ + 1 < input_.size()) {
        std::string two = input_.substr(pos_, 2);
        if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
          t.text = two == "!=" ? "<>" : two;
          pos_ += 2;
          tokens.push_back(std::move(t));
          continue;
        }
      }
      static const std::string kSingles = "(),=<>+-*/.";
      if (kSingles.find(c) == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at %zu", c, pos_));
      }
      t.text = std::string(1, c);
      pos_++;
      tokens.push_back(std::move(t));
    }
    tokens.push_back(Token{});  // kEnd
    return tokens;
  }

 private:
  Token Identifier() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      pos_++;
    }
    Token t;
    t.type = TokenType::kIdent;
    t.raw = input_.substr(start, pos_ - start);
    t.text = t.raw;
    for (char& ch : t.text) ch = static_cast<char>(std::toupper(ch));
    return t;
  }

  Token Number() {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.')) {
      if (input_[pos_] == '.') is_double = true;
      pos_++;
    }
    Token t;
    t.raw = input_.substr(start, pos_ - start);
    if (is_double) {
      t.type = TokenType::kDouble;
      t.double_value = atof(t.raw.c_str());
    } else {
      t.type = TokenType::kInt;
      t.int_value = atoll(t.raw.c_str());
    }
    return t;
  }

  Result<Token> StringLiteral() {
    pos_++;  // opening quote
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != '\'') pos_++;
    if (pos_ >= input_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    Token t;
    t.type = TokenType::kString;
    t.raw = input_.substr(start, pos_ - start);
    pos_++;  // closing quote
    return t;
  }

  const std::string& input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelect() {
    SelectStatement stmt;
    ELEPHANT_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    // Select list ('*' or expressions).
    if (AcceptSymbol("*")) {
      stmt.select_star = true;
    } else {
      do {
        SelectItem item;
        ELEPHANT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          if (Peek().type != TokenType::kIdent) {
            return Status::InvalidArgument("expected alias after AS");
          }
          item.alias = Next().raw;
        }
        stmt.select_list.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }

    ELEPHANT_RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kIdent) {
      return Status::InvalidArgument("expected table name after FROM");
    }
    stmt.from_table = Next().raw;
    while (AcceptKeyword("JOIN")) {
      JoinClause join;
      if (Peek().type != TokenType::kIdent) {
        return Status::InvalidArgument("expected table name after JOIN");
      }
      join.table = Next().raw;
      ELEPHANT_RETURN_NOT_OK(ExpectKeyword("ON"));
      ELEPHANT_ASSIGN_OR_RETURN(join.left_column, ParseColumnName());
      if (!AcceptSymbol("=")) {
        return Status::InvalidArgument("JOIN ON requires col = col");
      }
      ELEPHANT_ASSIGN_OR_RETURN(join.right_column, ParseColumnName());
      stmt.joins.push_back(std::move(join));
    }

    if (AcceptKeyword("WHERE")) {
      ELEPHANT_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      ELEPHANT_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        ELEPHANT_ASSIGN_OR_RETURN(std::string col, ParseColumnName());
        stmt.group_by.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("HAVING")) {
      if (stmt.group_by.empty()) {
        return Status::InvalidArgument("HAVING requires GROUP BY");
      }
      ELEPHANT_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      ELEPHANT_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OrderItem item;
        ELEPHANT_ASSIGN_OR_RETURN(item.column, ParseColumnName());
        if (AcceptKeyword("DESC")) {
          item.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInt) {
        return Status::InvalidArgument("expected integer after LIMIT");
      }
      stmt.limit = Next().int_value;
    }
    if (Peek().type != TokenType::kEnd) {
      return Status::InvalidArgument("trailing tokens after statement: " +
                                     Peek().text);
    }
    return stmt;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Next() { return tokens_[pos_++]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kIdent && Peek().text == kw) {
      pos_++;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const std::string& s) {
    if (Peek().type == TokenType::kSymbol && Peek().text == s) {
      pos_++;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + ", found '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }

  Result<std::string> ParseColumnName() {
    if (Peek().type != TokenType::kIdent) {
      return Status::InvalidArgument("expected column name, found '" +
                                     Peek().text + "'");
    }
    return Next().raw;
  }

  // Precedence climbing: OR < AND < NOT < comparison < additive <
  // multiplicative < primary.
  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    ELEPHANT_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      ELEPHANT_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    ELEPHANT_ASSIGN_OR_RETURN(auto lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      ELEPHANT_ASSIGN_OR_RETURN(auto rhs, ParseNot());
      lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (AcceptKeyword("NOT")) {
      ELEPHANT_ASSIGN_OR_RETURN(auto child, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kNot;
      e->children.push_back(std::move(child));
      return e;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    ELEPHANT_ASSIGN_OR_RETURN(auto lhs, ParseAdditive());
    if (AcceptKeyword("BETWEEN")) {
      ELEPHANT_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
      ELEPHANT_RETURN_NOT_OK(ExpectKeyword("AND"));
      ELEPHANT_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(lo));
      e->children.push_back(std::move(hi));
      return e;
    }
    bool negated = false;
    if (Peek().type == TokenType::kIdent && Peek().text == "NOT" &&
        Peek(1).type == TokenType::kIdent && Peek(1).text == "LIKE") {
      pos_ += 1;
      negated = true;
    }
    if (AcceptKeyword("LIKE")) {
      if (Peek().type != TokenType::kString) {
        return Status::InvalidArgument("LIKE requires a string pattern");
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLike;
      e->children.push_back(std::move(lhs));
      e->str_value2 = Next().raw;
      if (!negated) return e;
      auto n = std::make_unique<Expr>();
      n->kind = ExprKind::kNot;
      n->children.push_back(std::move(e));
      return n;
    }
    for (const char* op : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (AcceptSymbol(op)) {
        ELEPHANT_ASSIGN_OR_RETURN(auto rhs, ParseAdditive());
        return MakeBinary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    ELEPHANT_ASSIGN_OR_RETURN(auto lhs, ParseMultiplicative());
    for (;;) {
      if (AcceptSymbol("+")) {
        ELEPHANT_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
        lhs = MakeBinary("+", std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("-")) {
        ELEPHANT_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
        lhs = MakeBinary("-", std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    ELEPHANT_ASSIGN_OR_RETURN(auto lhs, ParsePrimary());
    for (;;) {
      if (AcceptSymbol("*")) {
        ELEPHANT_ASSIGN_OR_RETURN(auto rhs, ParsePrimary());
        lhs = MakeBinary("*", std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("/")) {
        ELEPHANT_ASSIGN_OR_RETURN(auto rhs, ParsePrimary());
        lhs = MakeBinary("/", std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    auto e = std::make_unique<Expr>();
    switch (t.type) {
      case TokenType::kInt:
        e->kind = ExprKind::kLiteralInt;
        e->int_value = Next().int_value;
        return e;
      case TokenType::kDouble:
        e->kind = ExprKind::kLiteralDouble;
        e->double_value = Next().double_value;
        return e;
      case TokenType::kString:
        e->kind = ExprKind::kLiteralString;
        e->str_value = Next().raw;
        return e;
      case TokenType::kSymbol:
        if (AcceptSymbol("(")) {
          ELEPHANT_ASSIGN_OR_RETURN(auto inner, ParseExpr());
          if (!AcceptSymbol(")")) {
            return Status::InvalidArgument("missing )");
          }
          return inner;
        }
        if (AcceptSymbol("-")) {  // unary minus
          ELEPHANT_ASSIGN_OR_RETURN(auto inner, ParsePrimary());
          auto zero = std::make_unique<Expr>();
          zero->kind = ExprKind::kLiteralInt;
          zero->int_value = 0;
          return MakeBinary("-", std::move(zero), std::move(inner));
        }
        return Status::InvalidArgument("unexpected symbol '" + t.text + "'");
      case TokenType::kIdent:
        break;
      case TokenType::kEnd:
        return Status::InvalidArgument("unexpected end of statement");
    }

    // DATE 'YYYY-MM-DD' literal -> integer day code.
    if (t.text == "DATE" && Peek(1).type == TokenType::kString) {
      Next();
      e->kind = ExprKind::kLiteralInt;
      e->int_value = ParseDate(Next().raw);
      return e;
    }
    // Aggregates.
    static const std::pair<const char*, AggFunc> kAggs[] = {
        {"SUM", AggFunc::kSum},   {"AVG", AggFunc::kAvg},
        {"MIN", AggFunc::kMin},   {"MAX", AggFunc::kMax},
        {"COUNT", AggFunc::kCount}};
    for (const auto& [name, func] : kAggs) {
      if (t.text == name && Peek(1).type == TokenType::kSymbol &&
          Peek(1).text == "(") {
        Next();  // agg name
        Next();  // (
        e->kind = ExprKind::kAggregate;
        e->agg = func;
        if (func == AggFunc::kCount && AcceptSymbol("*")) {
          // COUNT(*)
        } else {
          if (func == AggFunc::kCount && AcceptKeyword("DISTINCT")) {
            e->agg = AggFunc::kCountDistinct;
          }
          ELEPHANT_ASSIGN_OR_RETURN(auto arg, ParseExpr());
          e->children.push_back(std::move(arg));
        }
        if (!AcceptSymbol(")")) {
          return Status::InvalidArgument("missing ) after aggregate");
        }
        return e;
      }
    }
    // Plain column reference.
    e->kind = ExprKind::kColumn;
    e->str_value = Next().raw;
    return e;
  }

  static std::unique_ptr<Expr> MakeBinary(const std::string& op,
                                          std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->str_value = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> Parse(const std::string& sql) {
  Lexer lexer(sql);
  ELEPHANT_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace elephant::sql
