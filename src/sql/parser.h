#ifndef ELEPHANT_SQL_PARSER_H_
#define ELEPHANT_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace elephant::sql {

/// Parses one SELECT statement of the dialect the library's query layer
/// executes (a HiveQL/SQL-92 subset):
///
///   SELECT expr [AS name], ...
///   FROM table [JOIN table ON col = col]...
///   [WHERE predicate]
///   [GROUP BY col, ...]
///   [ORDER BY name [ASC|DESC], ...]
///   [LIMIT n]
///
/// Expressions: integer/decimal/'string'/DATE 'YYYY-MM-DD' literals,
/// column references, + - * /, comparisons (= <> < <= > >=), AND/OR/NOT,
/// BETWEEN, LIKE with % wildcards, and the aggregates SUM, AVG, MIN,
/// MAX, COUNT(*), COUNT(DISTINCT expr).
Result<SelectStatement> Parse(const std::string& sql);

}  // namespace elephant::sql

#endif  // ELEPHANT_SQL_PARSER_H_
