#ifndef ELEPHANT_DFS_DFS_H_
#define ELEPHANT_DFS_DFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"

namespace elephant::dfs {

/// HDFS-style configuration. Defaults match the paper's Hadoop setup
/// (§3.2.1): 256 MB block size, replication factor 3.
struct DfsOptions {
  int64_t block_size = 256 * kMB;
  int replication = 3;
};

/// One block of a file: its size and the nodes holding replicas.
struct BlockInfo {
  int64_t bytes = 0;
  std::vector<int> replicas;
};

/// File metadata as kept by the namenode.
struct FileInfo {
  std::string path;
  int64_t bytes = 0;
  std::vector<BlockInfo> blocks;
};

/// A simulated distributed filesystem: namenode metadata plus the cost
/// model for reads/writes. Placement is round-robin with the pipeline
/// write pattern (first replica local, remaining on other nodes), which
/// matches the write amplification Hadoop pays during loads: every byte
/// is written to `replication` disks and crosses the network
/// `replication - 1` times.
class DistributedFileSystem {
 public:
  DistributedFileSystem(cluster::Cluster* cluster, const DfsOptions& options);

  /// Creates a file of `bytes`, placing blocks round-robin starting at
  /// `writer_node` (-1 = spread the first replica too).
  Status CreateFile(const std::string& path, int64_t bytes,
                    int writer_node = -1);

  /// Creates one file per node, each of `bytes_per_node` (parallel load
  /// pattern: each node copies its local chunk into HDFS).
  Status CreateDistributedFiles(const std::string& prefix,
                                int64_t bytes_per_node);

  Status DeleteFile(const std::string& path);
  Result<FileInfo> GetFile(const std::string& path) const;
  bool Exists(const std::string& path) const;

  /// Splits for a MapReduce job: one per block (Hadoop's default
  /// FileInputFormat). Zero-byte files still produce one (empty) split —
  /// the source of the paper's empty-bucket map tasks.
  std::vector<BlockInfo> Splits(const std::string& path) const;

  int64_t TotalBytes() const { return total_bytes_; }
  int64_t used_capacity_bytes() const {
    return total_bytes_ * options_.replication;
  }

  /// Analytical write time for loading `bytes` spread evenly over all
  /// nodes in parallel: each node writes its share to the local disk and
  /// pipelines replication-1 copies through its NIC.
  SimTime ParallelWriteTime(int64_t bytes) const;

  /// Analytical time for all nodes reading `bytes` total, data-local
  /// (aggregate disk bandwidth of the cluster).
  SimTime ParallelReadTime(int64_t bytes) const;

  const DfsOptions& options() const { return options_; }
  cluster::Cluster* cluster() { return cluster_; }

 private:
  cluster::Cluster* cluster_;
  DfsOptions options_;
  std::map<std::string, FileInfo> files_;
  int64_t total_bytes_ = 0;
  int next_node_ = 0;
};

}  // namespace elephant::dfs

#endif  // ELEPHANT_DFS_DFS_H_
