#include "dfs/dfs.h"

#include <algorithm>

#include "common/string_util.h"

namespace elephant::dfs {

DistributedFileSystem::DistributedFileSystem(cluster::Cluster* cluster,
                                             const DfsOptions& options)
    : cluster_(cluster), options_(options) {}

Status DistributedFileSystem::CreateFile(const std::string& path,
                                         int64_t bytes, int writer_node) {
  if (files_.count(path)) {
    return Status::AlreadyExists(path);
  }
  FileInfo info;
  info.path = path;
  info.bytes = bytes;
  int n = cluster_->num_nodes();
  int64_t remaining = bytes;
  do {
    BlockInfo block;
    block.bytes = std::min(remaining, options_.block_size);
    int first = writer_node >= 0 ? writer_node : next_node_++ % n;
    for (int r = 0; r < std::min(options_.replication, n); ++r) {
      block.replicas.push_back((first + r * (1 + next_node_ % (n - 1 > 0
                                                                   ? n - 1
                                                                   : 1))) %
                               n);
    }
    std::sort(block.replicas.begin(), block.replicas.end());
    block.replicas.erase(
        std::unique(block.replicas.begin(), block.replicas.end()),
        block.replicas.end());
    info.blocks.push_back(std::move(block));
    remaining -= block.bytes;
  } while (remaining > 0);
  total_bytes_ += bytes;
  files_.emplace(path, std::move(info));
  return Status::OK();
}

Status DistributedFileSystem::CreateDistributedFiles(
    const std::string& prefix, int64_t bytes_per_node) {
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    ELEPHANT_RETURN_NOT_OK(CreateFile(
        StrFormat("%s.part%03d", prefix.c_str(), i), bytes_per_node, i));
  }
  return Status::OK();
}

Status DistributedFileSystem::DeleteFile(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  total_bytes_ -= it->second.bytes;
  files_.erase(it);
  return Status::OK();
}

Result<FileInfo> DistributedFileSystem::GetFile(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  return it->second;
}

bool DistributedFileSystem::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

std::vector<BlockInfo> DistributedFileSystem::Splits(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return {};
  return it->second.blocks;
}

SimTime DistributedFileSystem::ParallelWriteTime(int64_t bytes) const {
  int n = cluster_->num_nodes();
  double per_node = static_cast<double>(bytes) / n;
  const cluster::NodeConfig& cfg = cluster_->node_config();
  // Disk: each node writes `replication` copies' worth spread over the
  // cluster; per node that is replication * share.
  double disk_bytes = per_node * options_.replication;
  double disk_s =
      disk_bytes / (cfg.disk.seq_mbps * 1e6 * cfg.data_disks);
  // Network: replication-1 copies leave each node.
  double net_bytes = per_node * (options_.replication - 1);
  double net_s = net_bytes * 8.0 / (cfg.nic.gbps * 1e9);
  return SecondsToSimTime(std::max(disk_s, net_s));
}

SimTime DistributedFileSystem::ParallelReadTime(int64_t bytes) const {
  int n = cluster_->num_nodes();
  const cluster::NodeConfig& cfg = cluster_->node_config();
  double per_node = static_cast<double>(bytes) / n;
  double disk_s = per_node / (cfg.disk.seq_mbps * 1e6 * cfg.data_disks);
  return SecondsToSimTime(disk_s);
}

}  // namespace elephant::dfs
