#ifndef ELEPHANT_HIVE_ENGINE_H_
#define ELEPHANT_HIVE_ENGINE_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "hive/catalog.h"
#include "mapreduce/mapreduce.h"

namespace elephant::hive {

/// Hive session configuration. The defaults are the paper's tuned setup
/// (§3.2.1): map-side aggregation, map joins and bucketed map joins
/// enabled, 128 reducers per job so all reducers finish in one round,
/// GZIP RCFile storage, LZO map-output compression.
struct HiveOptions {
  bool map_side_aggregation = true;
  bool map_join = true;
  /// §3.2.1 enables bucketed map joins; the published script plans end
  /// up taking common joins at the tested scales anyway (as the paper's
  /// analyses observe), so this knob is configuration fidelity.
  bool bucketed_map_join = true;
  int reducers_per_job = 128;
  /// Effective in-memory blow-up of a map-join hash table versus the raw
  /// bytes (Java object headers, boxing). Hash sides larger than
  /// mr.map_join_memory * this fail with heap errors and fall back to a
  /// common join after `map_join_failure_time`.
  double java_hash_blowup = 4.0;
  SimTime map_join_failure_time = 400 * kSecond;  // §3.3.4.2, Q22
  /// Scratch space left for intermediates (map spills, reduce merges,
  /// temp tables) after the database, OS and source text occupy the
  /// cluster's 38.4 TB of raw disk. Queries whose intermediates exceed
  /// it fail — at SF 16000 this reproduces Q9's out-of-disk abort
  /// (§3.3.4, Table 3).
  int64_t scratch_bytes = 10LL * 1024 * kGB;
  mapreduce::MrConfig mr;
};

/// Result of one MapReduce job within a query.
struct HiveJobResult {
  std::string name;
  mapreduce::JobStats stats;
};

/// Result of a full HiveQL query (a DAG of MR jobs, run serially as the
/// Hive driver does for the TPC-H scripts).
struct HiveQueryResult {
  int query = 0;
  SimTime total = 0;
  /// Bytes of scratch the query needs: map spills + reduce-side merge
  /// copies (2x each shuffle) plus replicated temp-table outputs.
  int64_t intermediate_bytes = 0;
  /// True when intermediate_bytes exceeded the configured scratch space
  /// (the paper's Q9-at-16TB "did not complete ... due to lack of disk
  /// space").
  bool failed_out_of_disk = false;
  std::vector<HiveJobResult> jobs;

  /// Sum of job totals whose name starts with `prefix` (used for the
  /// Table 5 sub-query breakdown).
  SimTime TimeOfJobsWithPrefix(const std::string& prefix) const;
};

/// Executable model of Hive 0.7.1 running the TPC-H scripts of HIVE-600
/// as tuned by the paper. Each query is compiled to the published
/// script's stage structure — fixed join order (no cost-based
/// optimization), common joins repartitioning both inputs, map joins
/// with heap-failure fallback, map-side pre-aggregation — and each stage
/// is costed by the MapReduce engine model.
class HiveEngine {
 public:
  HiveEngine(cluster::Cluster* cluster, dfs::DistributedFileSystem* fs,
             const HiveOptions& options);

  /// Runs TPC-H query `q` (1..22) at scale factor `sf` (in GB, e.g. 250).
  HiveQueryResult RunQuery(int q, double sf) const;

  /// Table 2: load = parallel text copy into HDFS + conversion job into
  /// compressed RCFile.
  SimTime LoadTime(double sf) const;

  const HiveOptions& options() const { return options_; }
  const HiveCatalog& catalog() const { return catalog_; }
  const mapreduce::MrEngine& mr() const { return mr_; }

 private:
  cluster::Cluster* cluster_;
  dfs::DistributedFileSystem* fs_;
  HiveOptions options_;
  HiveCatalog catalog_;
  mapreduce::MrEngine mr_;
};

/// Builds the MR job DAG for a query (exposed for tests and ablations).
std::vector<mapreduce::JobSpec> BuildHiveJobs(int q, double sf,
                                              const HiveCatalog& catalog,
                                              const HiveOptions& options);

}  // namespace elephant::hive

#endif  // ELEPHANT_HIVE_ENGINE_H_
