#ifndef ELEPHANT_HIVE_CATALOG_H_
#define ELEPHANT_HIVE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/mapreduce.h"
#include "tpch/schema.h"

namespace elephant::hive {

/// How a Hive table is laid out in HDFS (the paper's Table 1): an
/// optional partition column (one HDFS directory per value) and an
/// optional bucket count (one file per bucket, rows assigned by hash).
struct HiveTableLayout {
  tpch::TableId table;
  std::string partition_column;  ///< empty = unpartitioned
  int num_partitions = 1;
  std::string bucket_column;     ///< empty = unbucketed
  int num_buckets = 1;           ///< per partition
  /// Files that actually contain rows. For lineitem/orders, hashing the
  /// sparse orderkey (only 8 of every 32 key values exist) leaves 384 of
  /// the 512 bucket files empty — §3.3.4.2 of the paper.
  int nonempty_files = 1;

  int total_files() const { return num_partitions * num_buckets; }
};

/// RCFile storage model: per-table GZIP compression ratios
/// (uncompressed:compressed). Columnar layout compresses the long
/// numeric lineitem rows far better than the text-heavy customer rows;
/// ratios are fitted to the per-task input sizes the paper reports
/// (Q1: 512 lineitem splits at SF 250, 768 at SF 1000; Q22: 9.4 MB
/// customer splits at SF 250, 3 blocks per bucket at SF 16000).
double RcfileCompressionRatio(tpch::TableId table);

/// The Hive warehouse catalog for the TPC-H layout of the paper.
class HiveCatalog {
 public:
  explicit HiveCatalog(int64_t hdfs_block_size = 256 * kMB);

  const HiveTableLayout& layout(tpch::TableId table) const;

  /// Uncompressed (text) bytes of a table at a scale factor.
  int64_t TextBytes(tpch::TableId table, double sf) const;
  /// On-disk compressed RCFile bytes.
  int64_t CompressedBytes(tpch::TableId table, double sf) const;

  /// Per-file compressed sizes for a full scan, including the zero-byte
  /// files of sparsely populated bucketed tables.
  std::vector<int64_t> ScanFileSizes(tpch::TableId table, double sf) const;

  /// Map tasks for scanning a table: one per HDFS block of each file
  /// (empty files still cost one task). `selected_fraction` scales the
  /// map output (predicate + projection applied in the mapper).
  std::vector<mapreduce::MapTaskSpec> ScanTasks(
      tpch::TableId table, double sf, double output_bytes_per_input_byte)
      const;

  /// Map tasks for scanning an intermediate (temp) table of `bytes`
  /// compressed bytes (temp tables are RCFile too).
  std::vector<mapreduce::MapTaskSpec> TempScanTasks(
      int64_t compressed_bytes, double uncompress_ratio,
      double output_bytes_per_input_byte) const;

  int64_t block_size() const { return block_size_; }

 private:
  int64_t block_size_;
  std::vector<HiveTableLayout> layouts_;
};

}  // namespace elephant::hive

#endif  // ELEPHANT_HIVE_CATALOG_H_
