// The TPC-H query plans as Hive 0.7.1 runs the published HIVE-600
// scripts (with the paper's tuning: map-side aggregation, map joins,
// 128 reducers). Each query is a fixed-order list of MapReduce jobs —
// there is no cost-based optimizer, so join order follows the script
// text, common joins repartition both inputs, and map joins fall back to
// common joins when the hash side overflows the task heap (§3.3.4).
//
// Stage volumes are expressed per unit scale factor (GB of uncompressed
// data per SF = 1) and derived from TPC-H selectivities; tests validate
// key fractions against the real executor at mini scale.

#include <algorithm>
#include <string>
#include <vector>

#include "hive/engine.h"
#include "common/check.h"

namespace elephant::hive {

namespace {

using mapreduce::JobSpec;
using mapreduce::MapTaskSpec;
using tpch::TableId;

constexpr double kGB = 1e9;

/// CPU throughput (MB/s per slot) of the different mapper kinds.
constexpr double kScanAggMapMbps = 20.0;   // scan + filter + map-side agg
constexpr double kJoinMapMbps = 8.0;       // common-join mapper (tag+LZO)
constexpr double kReduceOutCompression = 0.5;  // LZO on map outputs

/// Builds a Hive query's MR job list.
class PlanBuilder {
 public:
  PlanBuilder(int query, double sf, const HiveCatalog& catalog,
              const HiveOptions& options)
      : query_(query), sf_(sf), catalog_(catalog), options_(options) {}

  /// Uncompressed GB of a base table at this scale factor.
  double TableGb(TableId t) const {
    return static_cast<double>(catalog_.TextBytes(t, sf_)) / kGB;
  }

  /// Map tasks scanning a base table. `out_ratio` = map-output bytes per
  /// uncompressed input byte (projection x selectivity, LZO'd).
  std::vector<MapTaskSpec> Scan(TableId t, double out_ratio,
                                double cpu_mbps) const {
    auto tasks = catalog_.ScanTasks(t, sf_, out_ratio * kReduceOutCompression);
    for (auto& task : tasks) task.cpu_mbps = cpu_mbps;
    return tasks;
  }

  /// Map tasks scanning a temp table of `gb` uncompressed GB (temps are
  /// RCFile at ~2:1).
  std::vector<MapTaskSpec> Temp(double gb, double out_ratio,
                                double cpu_mbps) const {
    auto tasks = catalog_.TempScanTasks(
        static_cast<int64_t>(gb * sf_ * kGB / 2.0), 2.0,
        out_ratio * kReduceOutCompression);
    for (auto& task : tasks) task.cpu_mbps = cpu_mbps;
    return tasks;
  }

  static std::vector<MapTaskSpec> Concat(
      std::initializer_list<std::vector<MapTaskSpec>> lists) {
    std::vector<MapTaskSpec> all;
    for (const auto& l : lists) all.insert(all.end(), l.begin(), l.end());
    return all;
  }

  /// A common-join or shuffle-aggregate job: shuffle = sum of map
  /// outputs, reduce writes `out_gb` (per SF) as a replicated temp.
  void Job(const std::string& stage, std::vector<MapTaskSpec> tasks,
           double out_gb) {
    JobSpec job;
    job.name = Name(stage);
    job.map_tasks = std::move(tasks);
    job.reduce.num_reducers = options_.reducers_per_job;
    for (const auto& t : job.map_tasks) {
      job.reduce.shuffle_bytes += t.output_bytes;
    }
    job.reduce.output_bytes = Gb(out_gb);
    jobs_.push_back(std::move(job));
  }

  /// A map-only job (e.g. a chain of successful map joins): output is
  /// written directly by the mappers.
  void MapOnly(const std::string& stage, std::vector<MapTaskSpec> tasks) {
    JobSpec job;
    job.name = Name(stage);
    job.map_tasks = std::move(tasks);
    jobs_.push_back(std::move(job));
  }

  /// A map-join attempt: the hash side (`hash_gb` uncompressed per SF)
  /// is built on the Hive client and distributed; if the in-memory blow
  /// up exceeds the task heap, the job fails after
  /// `map_join_failure_time` and a backup common join runs instead —
  /// exactly Q22 sub-query 4's behaviour.
  void MapJoin(const std::string& stage, std::vector<MapTaskSpec> stream,
               double hash_gb, double out_gb) {
    double hash_bytes = Gb(hash_gb) * options_.java_hash_blowup;
    bool fits = options_.map_join &&
                hash_bytes <= static_cast<double>(
                                  options_.mr.map_join_memory);
    if (fits) {
      // Each map task reloads the hash table from the distributed cache.
      JobSpec job;
      job.name = Name(stage + "_mapjoin");
      job.map_tasks = std::move(stream);
      SimTime load = SecondsToSimTime(static_cast<double>(Gb(hash_gb)) /
                                      (200.0 * 1e6));
      for (auto& t : job.map_tasks) t.input_bytes += Gb(hash_gb) / 4;
      job.fixed_overhead = load;
      jobs_.push_back(std::move(job));
      return;
    }
    // Failed attempt + backup common join shuffling both sides.
    std::vector<MapTaskSpec> tasks = std::move(stream);
    std::vector<MapTaskSpec> hash_scan =
        Temp(hash_gb, /*out_ratio=*/1.0, kJoinMapMbps);
    tasks.insert(tasks.end(), hash_scan.begin(), hash_scan.end());
    JobSpec job;
    job.name = Name(stage + "_backup_join");
    job.map_tasks = std::move(tasks);
    job.reduce.num_reducers = options_.reducers_per_job;
    for (const auto& t : job.map_tasks) {
      job.reduce.shuffle_bytes += t.output_bytes;
    }
    job.reduce.output_bytes = Gb(out_gb);
    job.fixed_overhead =
        options_.map_join ? options_.map_join_failure_time : 0;
    jobs_.push_back(std::move(job));
  }

  /// A small housekeeping job (global aggregation, order-by, filesystem
  /// consolidation) over final-result-sized data: one short map wave plus
  /// one reducer. `abs_gb` is absolute (result sizes do not scale with
  /// SF the way base tables do).
  void Tiny(const std::string& stage, double abs_gb = 1e-4) {
    JobSpec job;
    job.name = Name(stage);
    job.map_tasks = Temp(sf_ > 0 ? abs_gb / sf_ : abs_gb, 0.5,
                         kScanAggMapMbps);
    job.reduce.num_reducers = 1;
    for (const auto& t : job.map_tasks) {
      job.reduce.shuffle_bytes += t.output_bytes;
    }
    job.reduce.output_bytes = Gb(1e-6);
    jobs_.push_back(std::move(job));
  }

  /// Effective map-output ratio for a map-side aggregation: near zero
  /// when enabled, full selected volume when disabled (ablation).
  double AggOut(double selected_ratio) const {
    return options_.map_side_aggregation ? std::min(selected_ratio, 1e-4)
                                         : selected_ratio;
  }

  int64_t Gb(double gb) const {
    return static_cast<int64_t>(std::max(gb, 0.0) * sf_ * kGB);
  }

  std::vector<JobSpec> Take() { return std::move(jobs_); }

 private:
  std::string Name(const std::string& stage) const {
    return "q" + std::to_string(query_) + "_" + stage;
  }

  int query_;
  double sf_;
  const HiveCatalog& catalog_;
  const HiveOptions& options_;
  std::vector<JobSpec> jobs_;
};

}  // namespace

std::vector<JobSpec> BuildHiveJobs(int q, double sf,
                                   const HiveCatalog& catalog,
                                   const HiveOptions& options) {
  PlanBuilder b(q, sf, catalog, options);
  const double A = kScanAggMapMbps;
  const double J = kJoinMapMbps;
  using T = TableId;

  switch (q) {
    case 1:
      // One scan+aggregate job over lineitem, then a tiny order-by.
      b.Job("scan_agg", b.Scan(T::kLineitem, b.AggOut(0.6), A), 1e-6);
      b.Tiny("orderby");
      break;

    case 2:
      // Sub-queries: EU offers, min cost per part, final join, sort.
      b.Job("cj_ps_supplier",
            PlanBuilder::Concat({b.Scan(T::kPartsupp, 0.45, J),
                                 b.Scan(T::kSupplier, 0.6, J)}),
            0.0115);
      b.Job("min_cost", b.Temp(0.0115, b.AggOut(0.6), A), 0.006);
      b.Job("cj_final",
            PlanBuilder::Concat({b.Temp(0.0115, 1.0, J), b.Temp(0.006, 1.0, J),
                                 b.Scan(T::kPart, 0.01, J)}),
            0.0002);
      b.Tiny("orderby", 0.05);
      break;

    case 3:
      b.Job("cj_customer_orders",
            PlanBuilder::Concat({b.Scan(T::kCustomer, 0.06, J),
                                 b.Scan(T::kOrders, 0.14, J)}),
            0.0044);
      b.Job("cj_lineitem",
            PlanBuilder::Concat({b.Temp(0.0044, 1.0, J),
                                 b.Scan(T::kLineitem, 0.135, 11)}),
            0.0046);
      b.Tiny("orderby", 0.6);
      break;

    case 4:
      b.Job("cj_orders_lineitem",
            PlanBuilder::Concat({b.Scan(T::kOrders, 0.011, J),
                                 b.Scan(T::kLineitem, 0.13, 18)}),
            1e-5);
      b.Tiny("orderby");
      break;

    case 5:
      // The paper's §3.3.4.1 plan: map joins build N⋈R then ⋈S; common
      // join with lineitem (the monster); then orders; then customer.
      b.MapJoin("mj_nation_region_supplier", b.Scan(T::kSupplier, 0.2, A),
                1e-6, 0.0003);
      b.Job("cj_lineitem",
            PlanBuilder::Concat({b.Temp(0.0003, 1.0, J),
                                 b.Scan(T::kLineitem, 0.3, J)}),
            0.048);
      b.Job("cj_orders",
            PlanBuilder::Concat({b.Temp(0.048, 1.0, J),
                                 b.Scan(T::kOrders, 0.3, J)}),
            0.0082);
      b.Job("cj_customer",
            PlanBuilder::Concat({b.Temp(0.0082, 1.0, J),
                                 b.Scan(T::kCustomer, 0.15, J)}),
            1e-5);
      b.Tiny("global_agg");
      b.Tiny("orderby");
      break;

    case 6:
      b.Job("scan_agg", b.Scan(T::kLineitem, b.AggOut(0.02), 45), 1e-6);
      break;

    case 7:
      b.MapJoin("mj_supplier_nation", b.Scan(T::kSupplier, 0.08, A), 1e-6,
                0.0001);
      b.Job("cj_lineitem",
            PlanBuilder::Concat({b.Temp(0.0001, 1.0, J),
                                 b.Scan(T::kLineitem, 0.107, 6)}),
            0.0066);
      b.Job("cj_orders",
            PlanBuilder::Concat({b.Temp(0.0066, 1.0, J),
                                 b.Scan(T::kOrders, 0.2, J)}),
            0.0074);
      b.Job("cj_customer",
            PlanBuilder::Concat({b.Temp(0.0074, 1.0, J),
                                 b.Scan(T::kCustomer, 0.15, J)}),
            1e-5);
      b.Tiny("agg");
      b.Tiny("orderby");
      break;

    case 8:
      b.Job("cj_lineitem_part",
            PlanBuilder::Concat({b.Scan(T::kLineitem, 0.3, J),
                                 b.Scan(T::kPart, 0.003, J)}),
            0.002);
      b.Job("cj_orders",
            PlanBuilder::Concat({b.Temp(0.002, 1.0, J),
                                 b.Scan(T::kOrders, 0.3, J)}),
            0.0007);
      b.Job("cj_customer",
            PlanBuilder::Concat({b.Temp(0.0007, 1.0, J),
                                 b.Scan(T::kCustomer, 0.15, J)}),
            0.0003);
      b.Job("cj_supplier",
            PlanBuilder::Concat({b.Temp(0.0003, 1.0, J),
                                 b.Scan(T::kSupplier, 0.5, J)}),
            1e-5);
      b.Tiny("agg");
      b.Tiny("orderby");
      break;

    case 9:
      // Heaviest query: full lineitem, partsupp and orders repartitions
      // plus large replicated temps (this is the query that exhausted
      // Hive's disk at SF 16000 in the paper).
      b.Job("cj_lineitem_part",
            PlanBuilder::Concat({b.Scan(T::kLineitem, 0.42, 2),
                                 b.Scan(T::kPart, 0.1, J)}),
            0.045);
      b.Job("cj_partsupp",
            PlanBuilder::Concat({b.Temp(0.045, 1.0, 4),
                                 b.Scan(T::kPartsupp, 0.5, 2)}),
            0.05);
      b.Job("cj_orders",
            PlanBuilder::Concat({b.Temp(0.05, 1.0, 4),
                                 b.Scan(T::kOrders, 0.25, 2)}),
            0.055);
      b.Job("cj_supplier",
            PlanBuilder::Concat({b.Temp(0.055, 1.0, J),
                                 b.Scan(T::kSupplier, 0.5, J)}),
            1e-5);
      b.Tiny("agg");
      b.Tiny("orderby");
      break;

    case 10:
      b.Job("cj_customer_orders",
            PlanBuilder::Concat({b.Scan(T::kCustomer, 0.6, J),
                                 b.Scan(T::kOrders, 0.01, J)}),
            0.0068);
      b.Job("cj_lineitem",
            PlanBuilder::Concat({b.Temp(0.0068, 1.0, J),
                                 b.Scan(T::kLineitem, 0.074, J)}),
            0.005);
      b.Tiny("orderby", 0.6);
      break;

    case 11:
      b.MapJoin("mj_supplier_nation", b.Scan(T::kSupplier, 0.012, A), 1e-6,
                2e-5);
      b.Job("cj_partsupp",
            PlanBuilder::Concat({b.Temp(2e-5, 1.0, J),
                                 b.Scan(T::kPartsupp, 0.4, J)}),
            0.00064);
      b.Tiny("having_sort", 0.1);
      break;

    case 12:
      b.Job("cj_lineitem_orders",
            PlanBuilder::Concat({b.Scan(T::kLineitem, 0.002, 25),
                                 b.Scan(T::kOrders, 0.25, J)}),
            1e-5);
      b.Tiny("agg");
      break;

    case 13:
      b.Job("oj_customer_orders",
            PlanBuilder::Concat({b.Scan(T::kCustomer, 0.5, J),
                                 b.Scan(T::kOrders, 0.3, J)}),
            0.0018);
      b.Job("distribution", b.Temp(0.0018, b.AggOut(0.8), A), 1e-5);
      b.Tiny("orderby");
      break;

    case 14:
      b.Job("cj_lineitem_part",
            PlanBuilder::Concat({b.Scan(T::kLineitem, 0.004, 40),
                                 b.Scan(T::kPart, 0.35, J)}),
            1e-5);
      b.Tiny("agg");
      break;

    case 15:
      b.Job("revenue_view", b.Scan(T::kLineitem, b.AggOut(0.0075), 35),
            0.0003);
      b.Tiny("max_revenue", 0.05);
      b.Job("join_supplier",
            PlanBuilder::Concat({b.Temp(0.0003, 1.0, J),
                                 b.Scan(T::kSupplier, 0.6, J)}),
            1e-5);
      b.Tiny("orderby");
      break;

    case 16:
      b.Job("cj_partsupp_part",
            PlanBuilder::Concat({b.Scan(T::kPartsupp, 0.35, 5.5),
                                 b.Scan(T::kPart, 0.06, 5.5)}),
            0.006);
      b.Job("agg_distinct", b.Temp(0.006, 0.9, A), 0.003);
      b.Tiny("orderby", 0.4);
      break;

    case 17:
      b.Job("avg_qty_per_part", b.Scan(T::kLineitem, b.AggOut(0.2), 12),
            0.004);
      b.Job("cj_lineitem_part_avg",
            PlanBuilder::Concat({b.Scan(T::kLineitem, 0.25, 6),
                                 b.Scan(T::kPart, 0.001, J),
                                 b.Temp(0.004, 1.0, J)}),
            1e-5);
      b.Tiny("agg");
      break;

    case 18:
      b.Job("qty_per_order", b.Scan(T::kLineitem, 0.1, 6), 0.024);
      b.Job("cj_orders_customer",
            PlanBuilder::Concat({b.Temp(0.024, 1.0, J),
                                 b.Scan(T::kOrders, 0.35, J),
                                 b.Scan(T::kCustomer, 0.3, J)}),
            1e-5);
      b.Tiny("orderby");
      break;

    case 19:
      // §3.3.4.1: Hive redistributes both part and lineitem through a
      // common join (a map join would not fit the task heap).
      b.Job("cj_lineitem_part",
            PlanBuilder::Concat({b.Scan(T::kLineitem, 0.032, 6.5),
                                 b.Scan(T::kPart, 0.5, 6.5)}),
            1e-5);
      b.Tiny("global_agg");
      break;

    case 20:
      b.Job("shipped_qty", b.Scan(T::kLineitem, b.AggOut(0.038), A),
            0.0175);
      b.Job("cj_partsupp_part",
            PlanBuilder::Concat({b.Scan(T::kPartsupp, 0.4, 7),
                                 b.Scan(T::kPart, 0.006, 7)}),
            0.0013);
      b.Job("cj_surplus",
            PlanBuilder::Concat({b.Temp(0.0013, 1.0, J),
                                 b.Temp(0.0175, 1.0, J)}),
            0.0001);
      b.Tiny("join_supplier_sort", 0.02);
      break;

    case 21:
      // Three passes over lineitem: the longest Hive query in the paper.
      b.Job("cj_l1_orders",
            PlanBuilder::Concat({b.Scan(T::kLineitem, 0.125, J),
                                 b.Scan(T::kOrders, 0.097, J)}),
            0.044);
      b.Job("cj_exists_l2",
            PlanBuilder::Concat({b.Temp(0.044, 1.0, J),
                                 b.Scan(T::kLineitem, 0.15, J)}),
            0.044);
      b.Job("cj_notexists_l3",
            PlanBuilder::Concat({b.Temp(0.044, 1.0, J),
                                 b.Scan(T::kLineitem, 0.075, J)}),
            0.02);
      b.Job("cj_supplier",
            PlanBuilder::Concat({b.Temp(0.02, 1.0, J),
                                 b.Scan(T::kSupplier, 0.5, J)}),
            1e-5);
      b.Tiny("agg");
      b.Tiny("orderby");
      break;

    case 22: {
      // Four sub-queries (Table 5 of the paper).
      // Sub-query 1: map-only selection on customer + a filesystem job
      // that consolidates the many small output files.
      b.MapOnly("sq1_scan_customer", b.Scan(T::kCustomer, 0.084, A));
      b.Tiny("sq1_fs_job", 0.5);
      // Sub-query 2: average balance of the selected customers.
      b.Job("sq2_avg_balance", b.Temp(0.0021, b.AggOut(0.9), A), 1e-6);
      // Sub-query 3: orders scanned (512 bucket files, 384 empty).
      b.Job("sq3_orders_per_cust", b.Scan(T::kOrders, b.AggOut(0.15), 12),
            0.0016);
      // Sub-query 4: map join always fails -> 400 s penalty + backup
      // common join; then the second join, group-by and order-by.
      b.MapJoin("sq4_join1", b.Temp(0.0016, 1.0, J), 0.0021, 0.001);
      b.MapJoin("sq4_join2", b.Temp(0.001, 1.0, J), 1e-6, 0.0005);
      b.Tiny("sq4_groupby", 0.1);
      b.Tiny("sq4_orderby");
      break;
    }

    default:
      ELEPHANT_CHECK(false) << "query " << q << " out of range";
  }
  return b.Take();
}

}  // namespace elephant::hive
