#include "hive/engine.h"

#include <algorithm>

namespace elephant::hive {

SimTime HiveQueryResult::TimeOfJobsWithPrefix(
    const std::string& prefix) const {
  SimTime sum = 0;
  for (const auto& j : jobs) {
    if (j.name.rfind(prefix, 0) == 0) sum += j.stats.total;
  }
  return sum;
}

HiveEngine::HiveEngine(cluster::Cluster* cluster,
                       dfs::DistributedFileSystem* fs,
                       const HiveOptions& options)
    : cluster_(cluster),
      fs_(fs),
      options_(options),
      catalog_(fs->options().block_size),
      mr_(cluster, fs, options.mr) {}

HiveQueryResult HiveEngine::RunQuery(int q, double sf) const {
  HiveQueryResult result;
  result.query = q;
  std::vector<mapreduce::JobSpec> jobs =
      BuildHiveJobs(q, sf, catalog_, options_);
  // The Hive driver runs the script's stages serially.
  for (const auto& job : jobs) {
    mapreduce::JobStats stats = mr_.RunJob(job);
    result.total += stats.total;
    result.jobs.push_back({job.name, stats});
    // Scratch accounting: each shuffled byte hits local disk twice (map
    // spill, reduce merge); temp outputs are RCFile (~2:1) replicated 3x.
    result.intermediate_bytes +=
        2 * job.reduce.shuffle_bytes +
        job.reduce.output_bytes / 2 * fs_->options().replication;
  }
  result.failed_out_of_disk =
      result.intermediate_bytes > options_.scratch_bytes;
  return result;
}

SimTime HiveEngine::LoadTime(double sf) const {
  // Phase 1: each node copies its locally generated text chunk into HDFS
  // (replicated 3x). The source text lives on one dedicated disk per
  // node, so reads are bounded by a single spindle.
  int64_t text_bytes = 0;
  for (int t = 0; t < tpch::kNumTables; ++t) {
    text_bytes += catalog_.TextBytes(static_cast<tpch::TableId>(t), sf);
  }
  const cluster::NodeConfig& node = cluster_->node_config();
  double per_node = static_cast<double>(text_bytes) / cluster_->num_nodes();
  double source_read_s = per_node / (node.disk.seq_mbps * 1e6);
  SimTime copy = std::max(SecondsToSimTime(source_read_s),
                          fs_->ParallelWriteTime(text_bytes));

  // Phase 2: INSERT ... SELECT conversion into GZIP'd RCFile. The writer
  // (deflate at max compression inside the RCFile serializer) is the
  // bottleneck; throughput per map slot is low.
  constexpr double kRcfileWriteMbps = 1.4;
  int slots = mr_.total_map_slots();
  double convert_s = static_cast<double>(text_bytes) /
                     (kRcfileWriteMbps * 1e6 * slots);
  // Compressed output is written back to HDFS with replication.
  int64_t compressed = 0;
  for (int t = 0; t < tpch::kNumTables; ++t) {
    compressed += catalog_.CompressedBytes(static_cast<tpch::TableId>(t), sf);
  }
  SimTime convert = std::max(SecondsToSimTime(convert_s),
                             fs_->ParallelWriteTime(compressed));
  return copy + convert;
}

}  // namespace elephant::hive
