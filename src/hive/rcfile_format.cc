#include "hive/rcfile_format.h"

#include <cmath>
#include <cstring>
#include <map>
#include <unordered_map>

#include "common/string_util.h"

namespace elephant::hive {

namespace {

using exec::Row;
using exec::StringPool;
using exec::Table;
using exec::Value;
using exec::ValueType;

// ---- primitive encoders ----------------------------------------------

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const std::string& in, size_t* pos, uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (*pos < in.size()) {
    uint8_t b = static_cast<uint8_t>(in[(*pos)++]);
    *v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
    shift += 7;
    if (shift > 63) return false;
  }
  return false;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Byte-level run-length pass: (literal-len, bytes) / (0, run-len, byte).
std::string RlePack(const std::string& in) {
  std::string out;
  size_t i = 0;
  while (i < in.size()) {
    // Find a run.
    size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < 0x7FFF) {
      run++;
    }
    if (run >= 4) {
      out.push_back('\0');
      PutVarint(&out, run);
      out.push_back(in[i]);
      i += run;
      continue;
    }
    // Literal stretch until the next long run.
    size_t lit_start = i;
    while (i < in.size()) {
      size_t r = 1;
      while (i + r < in.size() && in[i + r] == in[i] && r < 4) r++;
      if (r >= 4) break;
      i += 1;
      if (i - lit_start >= 0x7FFF) break;
    }
    size_t lit_len = i - lit_start;
    PutVarint(&out, lit_len);
    out.append(in, lit_start, lit_len);
  }
  return out;
}

Result<std::string> RleUnpack(const std::string& in, size_t* pos,
                              size_t packed_len) {
  std::string out;
  size_t end = *pos + packed_len;
  while (*pos < end) {
    uint64_t head = 0;
    if (!GetVarint(in, pos, &head)) {
      return Status::InvalidArgument("truncated RLE stream");
    }
    if (head == 0) {
      uint64_t run = 0;
      if (!GetVarint(in, pos, &run) || *pos >= in.size()) {
        return Status::InvalidArgument("truncated RLE run");
      }
      out.append(static_cast<size_t>(run), in[(*pos)++]);
    } else {
      if (*pos + head > in.size()) {
        return Status::InvalidArgument("truncated RLE literal");
      }
      out.append(in, *pos, static_cast<size_t>(head));
      *pos += head;
    }
  }
  return out;
}

// ---- column encoders ---------------------------------------------------

std::string EncodeIntColumn(const Table& t, int col, size_t begin,
                            size_t end) {
  std::string out;
  const int64_t* data = t.IntData(col).data();
  int64_t prev = 0;
  for (size_t r = begin; r < end; ++r) {
    int64_t v = data[r];
    PutVarint(&out, ZigZag(v - prev));
    prev = v;
  }
  return out;
}

std::string EncodeDoubleColumn(const Table& t, int col, size_t begin,
                               size_t end) {
  // TPC-H money/decimal columns are hundredths: when every value in the
  // group is an integral number of cents, store zigzag-delta varints of
  // the scaled value (flag 1); otherwise raw 8-byte doubles (flag 0).
  const double* data = t.DoubleData(col).data();
  bool all_cents = true;
  for (size_t r = begin; r < end; ++r) {
    double cents = data[r] * 100.0;
    if (std::abs(cents - std::llround(cents)) > 1e-6 ||
        std::abs(cents) > 9e15) {
      all_cents = false;
      break;
    }
  }
  std::string out;
  out.push_back(all_cents ? 1 : 0);
  if (all_cents) {
    int64_t prev = 0;
    for (size_t r = begin; r < end; ++r) {
      int64_t cents = std::llround(data[r] * 100.0);
      PutVarint(&out, ZigZag(cents - prev));
      prev = cents;
    }
  } else {
    out.reserve(1 + (end - begin) * 8);
    for (size_t r = begin; r < end; ++r) {
      double v = data[r];
      char buf[8];
      std::memcpy(buf, &v, 8);
      out.append(buf, 8);
    }
  }
  return out;
}

int BitsFor(uint64_t n) {
  int bits = 1;
  while ((1ULL << bits) < n) bits++;
  return bits;
}

void PackBits(std::string* out, const std::vector<uint64_t>& values,
              int bits) {
  uint64_t acc = 0;
  int filled = 0;
  for (uint64_t v : values) {
    acc |= v << filled;
    filled += bits;
    while (filled >= 8) {
      out->push_back(static_cast<char>(acc & 0xFF));
      acc >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) out->push_back(static_cast<char>(acc & 0xFF));
}

std::string EncodeStringColumn(const Table& t, int col, size_t begin,
                               size_t end) {
  // Per group: dictionary + bit-packed indexes when the column repeats
  // (flag 1), plain length-prefixed strings otherwise (flag 0). The
  // group dictionary is built over the table's interned codes, so
  // first-seen order (and thus the encoded bytes) matches the old
  // string-keyed build while deduplication is an O(1) code lookup.
  const uint32_t* codes = t.StrCodes(col).data();
  const StringPool& pool = t.pool();
  std::unordered_map<uint32_t, uint64_t> dict;
  std::vector<uint32_t> order;
  for (size_t r = begin; r < end; ++r) {
    if (dict.emplace(codes[r], dict.size()).second) {
      order.push_back(codes[r]);
    }
  }
  std::string out;
  size_t rows = end - begin;
  if (dict.size() > rows / 2) {
    out.push_back(0);
    for (size_t r = begin; r < end; ++r) {
      const std::string& s = pool.Get(codes[r]);
      PutVarint(&out, s.size());
      out += s;
    }
    return out;
  }
  out.push_back(1);
  PutVarint(&out, dict.size());
  for (uint32_t code : order) {
    const std::string& s = pool.Get(code);
    PutVarint(&out, s.size());
    out += s;
  }
  int bits = BitsFor(dict.size());
  out.push_back(static_cast<char>(bits));
  std::vector<uint64_t> indexes;
  indexes.reserve(rows);
  for (size_t r = begin; r < end; ++r) {
    indexes.push_back(dict[codes[r]]);
  }
  PackBits(&out, indexes, bits);
  return out;
}

}  // namespace

int64_t FlatTextBytes(const Table& table) {
  int64_t bytes = 0;
  if (!table.EnsureColumnar()) {
    // Heterogeneous fallback: walk the rows.
    for (const Row& row : table.rows()) {
      for (const Value& v : row) {
        if (const auto* i = std::get_if<int64_t>(&v)) {
          bytes += static_cast<int64_t>(std::to_string(*i).size());
        } else if (const auto* d = std::get_if<double>(&v)) {
          bytes += static_cast<int64_t>(StrFormat("%.2f", *d).size());
        } else {
          bytes += static_cast<int64_t>(std::get<std::string>(v).size());
        }
        bytes += 1;  // '|' separator / row terminator
      }
    }
    return bytes;
  }
  size_t n = table.num_rows();
  for (int c = 0; c < table.num_cols(); ++c) {
    switch (table.columns()[c].type) {
      case exec::ValueType::kInt:
        for (int64_t v : table.IntData(c)) {
          bytes += static_cast<int64_t>(std::to_string(v).size());
        }
        break;
      case exec::ValueType::kDouble:
        for (double v : table.DoubleData(c)) {
          bytes += static_cast<int64_t>(StrFormat("%.2f", v).size());
        }
        break;
      case exec::ValueType::kString: {
        // Each distinct string's length is needed once; rows just sum
        // their code's length.
        const StringPool& pool = table.pool();
        for (uint32_t code : table.StrCodes(c)) {
          bytes += static_cast<int64_t>(pool.Get(code).size());
        }
        break;
      }
    }
    bytes += static_cast<int64_t>(n);  // '|' separator / row terminator
  }
  return bytes;
}

std::string RcfileEncode(const Table& table, int rows_per_group,
                         RcfileWriteStats* stats) {
  std::string out;
  // Header: column count, then (type, name) per column, then row count.
  PutVarint(&out, static_cast<uint64_t>(table.num_cols()));
  for (const auto& col : table.columns()) {
    out.push_back(static_cast<char>(col.type));
    PutVarint(&out, col.name.size());
    out += col.name;
  }
  PutVarint(&out, table.num_rows());
  PutVarint(&out, static_cast<uint64_t>(rows_per_group));

  int64_t groups = 0;
  for (size_t begin = 0; begin < table.num_rows();
       begin += static_cast<size_t>(rows_per_group)) {
    size_t end = std::min(table.num_rows(),
                          begin + static_cast<size_t>(rows_per_group));
    groups++;
    for (int c = 0; c < table.num_cols(); ++c) {
      std::string raw;
      switch (table.columns()[c].type) {
        case ValueType::kInt:
          raw = EncodeIntColumn(table, c, begin, end);
          break;
        case ValueType::kDouble:
          raw = EncodeDoubleColumn(table, c, begin, end);
          break;
        case ValueType::kString:
          raw = EncodeStringColumn(table, c, begin, end);
          break;
      }
      std::string packed = RlePack(raw);
      PutVarint(&out, packed.size());
      out += packed;
    }
  }

  if (stats != nullptr) {
    stats->rows = static_cast<int64_t>(table.num_rows());
    stats->row_groups = groups;
    stats->text_bytes = FlatTextBytes(table);
    stats->compressed_bytes = static_cast<int64_t>(out.size());
  }
  return out;
}

Result<exec::Table> RcfileDecode(const std::string& bytes) {
  size_t pos = 0;
  uint64_t num_cols = 0;
  if (!GetVarint(bytes, &pos, &num_cols) || num_cols == 0 ||
      num_cols > 4096) {
    return Status::InvalidArgument("bad column count");
  }
  std::vector<exec::Column> columns;
  for (uint64_t c = 0; c < num_cols; ++c) {
    if (pos >= bytes.size()) {
      return Status::InvalidArgument("truncated schema");
    }
    auto type = static_cast<ValueType>(bytes[pos++]);
    uint64_t name_len = 0;
    if (!GetVarint(bytes, &pos, &name_len) ||
        pos + name_len > bytes.size()) {
      return Status::InvalidArgument("truncated column name");
    }
    columns.push_back({bytes.substr(pos, name_len), type});
    pos += name_len;
  }
  uint64_t num_rows = 0, rows_per_group = 0;
  if (!GetVarint(bytes, &pos, &num_rows) ||
      !GetVarint(bytes, &pos, &rows_per_group) || rows_per_group == 0) {
    return Status::InvalidArgument("truncated row counts");
  }

  Table table(columns);
  table.Reserve(num_rows);
  std::vector<Row> rows(num_rows);
  for (auto& r : rows) r.reserve(num_cols);

  for (uint64_t begin = 0; begin < num_rows; begin += rows_per_group) {
    uint64_t end = std::min(num_rows, begin + rows_per_group);
    for (uint64_t c = 0; c < num_cols; ++c) {
      uint64_t packed_len = 0;
      if (!GetVarint(bytes, &pos, &packed_len) ||
          pos + packed_len > bytes.size()) {
        return Status::InvalidArgument("truncated column chunk");
      }
      ELEPHANT_ASSIGN_OR_RETURN(std::string raw,
                                RleUnpack(bytes, &pos, packed_len));
      size_t rpos = 0;
      switch (columns[c].type) {
        case ValueType::kInt: {
          int64_t prev = 0;
          for (uint64_t r = begin; r < end; ++r) {
            uint64_t zz = 0;
            if (!GetVarint(raw, &rpos, &zz)) {
              return Status::InvalidArgument("truncated int column");
            }
            prev += UnZigZag(zz);
            rows[r].push_back(Value{prev});
          }
          break;
        }
        case ValueType::kDouble: {
          if (rpos >= raw.size()) {
            return Status::InvalidArgument("truncated double flag");
          }
          bool cents = raw[rpos++] == 1;
          if (cents) {
            int64_t prev = 0;
            for (uint64_t r = begin; r < end; ++r) {
              uint64_t zz = 0;
              if (!GetVarint(raw, &rpos, &zz)) {
                return Status::InvalidArgument("truncated decimal column");
              }
              prev += UnZigZag(zz);
              rows[r].push_back(Value{static_cast<double>(prev) / 100.0});
            }
          } else {
            for (uint64_t r = begin; r < end; ++r) {
              if (rpos + 8 > raw.size()) {
                return Status::InvalidArgument("truncated double column");
              }
              double v;
              std::memcpy(&v, raw.data() + rpos, 8);
              rpos += 8;
              rows[r].push_back(Value{v});
            }
          }
          break;
        }
        case ValueType::kString: {
          if (rpos >= raw.size()) {
            return Status::InvalidArgument("truncated string flag");
          }
          bool dictionary = raw[rpos++] == 1;
          if (!dictionary) {
            for (uint64_t r = begin; r < end; ++r) {
              uint64_t len = 0;
              if (!GetVarint(raw, &rpos, &len) ||
                  rpos + len > raw.size()) {
                return Status::InvalidArgument("truncated plain string");
              }
              rows[r].push_back(Value{raw.substr(rpos, len)});
              rpos += len;
            }
            break;
          }
          uint64_t dict_size = 0;
          if (!GetVarint(raw, &rpos, &dict_size)) {
            return Status::InvalidArgument("truncated dictionary");
          }
          std::vector<std::string> dict;
          dict.reserve(dict_size);
          for (uint64_t d = 0; d < dict_size; ++d) {
            uint64_t len = 0;
            if (!GetVarint(raw, &rpos, &len) ||
                rpos + len > raw.size()) {
              return Status::InvalidArgument("truncated dictionary entry");
            }
            dict.push_back(raw.substr(rpos, len));
            rpos += len;
          }
          if (rpos >= raw.size()) {
            return Status::InvalidArgument("truncated bit width");
          }
          int bits = raw[rpos++];
          if (bits <= 0 || bits > 63) {
            return Status::InvalidArgument("bad bit width");
          }
          uint64_t acc = 0;
          int filled = 0;
          for (uint64_t r = begin; r < end; ++r) {
            while (filled < bits) {
              if (rpos >= raw.size()) {
                return Status::InvalidArgument("truncated bit stream");
              }
              acc |= static_cast<uint64_t>(
                         static_cast<uint8_t>(raw[rpos++]))
                     << filled;
              filled += 8;
            }
            uint64_t idx = acc & ((1ULL << bits) - 1);
            acc >>= bits;
            filled -= bits;
            if (idx >= dict.size()) {
              return Status::InvalidArgument("bad dictionary index");
            }
            rows[r].push_back(Value{dict[idx]});
          }
          break;
        }
      }
    }
  }
  for (auto& r : rows) table.AddRow(std::move(r));
  return table;
}

}  // namespace elephant::hive
