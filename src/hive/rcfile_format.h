#ifndef ELEPHANT_HIVE_RCFILE_FORMAT_H_
#define ELEPHANT_HIVE_RCFILE_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "exec/table.h"

namespace elephant::hive {

/// A working columnar file format in the spirit of RCFile (He et al.,
/// ICDE 2011): rows are split into row groups; within a group each
/// column is stored contiguously and compressed independently
/// (zigzag-varint deltas for integers, dictionary + RLE for strings,
/// raw little-endian doubles, then a byte-level RLE pass).
///
/// This is the real counterpart of the catalog's compression-ratio
/// *model* (`RcfileCompressionRatio`): tests encode actual dbgen tables
/// and check the measured ratios have the shape the model assumes
/// (numeric-heavy lineitem compresses better than text-heavy customer).
struct RcfileWriteStats {
  int64_t rows = 0;
  int64_t row_groups = 0;
  int64_t text_bytes = 0;        ///< flat `.tbl`-style size
  int64_t compressed_bytes = 0;  ///< encoded file size
  double TextCompressionRatio() const {
    return compressed_bytes > 0
               ? static_cast<double>(text_bytes) / compressed_bytes
               : 0.0;
  }
};

/// Encodes a table; `stats` (optional) receives size accounting.
std::string RcfileEncode(const exec::Table& table,
                         int rows_per_group = 4096,
                         RcfileWriteStats* stats = nullptr);

/// Decodes a file produced by RcfileEncode. The schema is stored in the
/// file; the result compares equal (values and order) to the input.
Result<exec::Table> RcfileDecode(const std::string& bytes);

/// Flat text size of a table (the `.tbl` dump dbgen would produce):
/// fields rendered as text and '|'-separated.
int64_t FlatTextBytes(const exec::Table& table);

}  // namespace elephant::hive

#endif  // ELEPHANT_HIVE_RCFILE_FORMAT_H_
