#include "hive/catalog.h"

#include <cmath>

#include "common/check.h"

namespace elephant::hive {

using tpch::TableId;

double RcfileCompressionRatio(TableId table) {
  switch (table) {
    case TableId::kLineitem:
      return 7.4;  // numeric-heavy columns compress well
    case TableId::kOrders:
      return 4.5;
    case TableId::kPartsupp:
      return 4.0;
    case TableId::kPart:
      return 3.5;
    case TableId::kCustomer:
      return 3.2;  // fitted to the 9.4 MB per-bucket size in §3.3.4.2
    case TableId::kSupplier:
      return 3.2;
    case TableId::kNation:
    case TableId::kRegion:
      return 2.0;
  }
  return 3.0;
}

HiveCatalog::HiveCatalog(int64_t hdfs_block_size)
    : block_size_(hdfs_block_size) {
  // The paper's Table 1 (Hive column).
  layouts_ = {
      {TableId::kRegion, "", 1, "", 1, 1},
      {TableId::kNation, "", 1, "", 1, 1},
      {TableId::kSupplier, "s_nationkey", 25, "s_suppkey", 8, 200},
      {TableId::kPart, "", 1, "p_partkey", 8, 8},
      {TableId::kPartsupp, "", 1, "ps_partkey", 8, 8},
      {TableId::kCustomer, "c_nationkey", 25, "c_custkey", 8, 200},
      // Sparse orderkeys leave only 128 of 512 bucket files non-empty.
      {TableId::kOrders, "", 1, "o_orderkey", 512, 128},
      {TableId::kLineitem, "", 1, "l_orderkey", 512, 128},
  };
}

const HiveTableLayout& HiveCatalog::layout(TableId table) const {
  for (const auto& l : layouts_) {
    if (l.table == table) return l;
  }
  ELEPHANT_CHECK(false) << "unknown table id " << static_cast<int>(table);
  return layouts_[0];
}

int64_t HiveCatalog::TextBytes(TableId table, double sf) const {
  return static_cast<int64_t>(
      static_cast<double>(tpch::RowCountAtScale(table, sf)) *
      tpch::AvgRowBytes(table));
}

int64_t HiveCatalog::CompressedBytes(TableId table, double sf) const {
  return static_cast<int64_t>(TextBytes(table, sf) /
                              RcfileCompressionRatio(table));
}

std::vector<int64_t> HiveCatalog::ScanFileSizes(TableId table,
                                                double sf) const {
  const HiveTableLayout& l = layout(table);
  int64_t compressed = CompressedBytes(table, sf);
  std::vector<int64_t> sizes;
  sizes.reserve(l.total_files());
  int64_t per_file = compressed / std::max(1, l.nonempty_files);
  if (l.table == TableId::kLineitem || l.table == TableId::kOrders) {
    // Buckets are hash(orderkey) % 512; the populated orderkey residues
    // are the first 8 of every 32, so non-empty buckets follow that
    // pattern (important for map-wave scheduling).
    for (int b = 0; b < l.total_files(); ++b) {
      sizes.push_back(b % 32 < 8 ? per_file : 0);
    }
  } else {
    for (int b = 0; b < l.total_files(); ++b) {
      sizes.push_back(b < l.nonempty_files ? per_file : 0);
    }
  }
  return sizes;
}

std::vector<mapreduce::MapTaskSpec> HiveCatalog::ScanTasks(
    TableId table, double sf, double output_ratio) const {
  std::vector<mapreduce::MapTaskSpec> tasks;
  double ratio = RcfileCompressionRatio(table);
  for (int64_t file_bytes : ScanFileSizes(table, sf)) {
    if (file_bytes == 0) {
      tasks.push_back({0, 0, 0});  // empty bucket still costs a task
      continue;
    }
    int64_t remaining = file_bytes;
    while (remaining > 0) {
      int64_t chunk = std::min(remaining, block_size_);
      int64_t uncompressed = static_cast<int64_t>(chunk * ratio);
      tasks.push_back(
          {chunk, uncompressed,
           static_cast<int64_t>(uncompressed * output_ratio)});
      remaining -= chunk;
    }
  }
  return tasks;
}

std::vector<mapreduce::MapTaskSpec> HiveCatalog::TempScanTasks(
    int64_t compressed_bytes, double uncompress_ratio,
    double output_ratio) const {
  std::vector<mapreduce::MapTaskSpec> tasks;
  int64_t remaining = std::max<int64_t>(compressed_bytes, 1);
  while (remaining > 0) {
    int64_t chunk = std::min(remaining, block_size_);
    int64_t uncompressed = static_cast<int64_t>(chunk * uncompress_ratio);
    tasks.push_back({chunk, uncompressed,
                     static_cast<int64_t>(uncompressed * output_ratio)});
    remaining -= chunk;
  }
  return tasks;
}

}  // namespace elephant::hive
