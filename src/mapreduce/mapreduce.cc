#include "mapreduce/mapreduce.h"

#include <algorithm>
#include <queue>

namespace elephant::mapreduce {

MrEngine::MrEngine(cluster::Cluster* cluster,
                   dfs::DistributedFileSystem* fs, const MrConfig& config)
    : cluster_(cluster), fs_(fs), config_(config) {}

SimTime MrEngine::MapTaskTime(const MapTaskSpec& task) const {
  const cluster::NodeConfig& node = cluster_->node_config();
  // Disk bandwidth available to one of the node's map slots.
  double disk_share_bps = node.disk.seq_mbps * 1e6 * node.data_disks /
                          config_.map_slots_per_node;
  double read_s = static_cast<double>(task.input_bytes) / disk_share_bps;
  double cpu_rate = task.cpu_mbps > 0 ? task.cpu_mbps : config_.map_cpu_mbps;
  double cpu_s =
      static_cast<double>(task.uncompressed_bytes) / (cpu_rate * 1e6);
  // Map output spills to local disk (sort buffer write).
  double spill_s = static_cast<double>(task.output_bytes) / disk_share_bps;
  // I/O and CPU overlap within a task; the slower resource dominates.
  return config_.task_startup +
         SecondsToSimTime(std::max(read_s, cpu_s) + spill_s);
}

JobStats MrEngine::RunJob(const JobSpec& job) const {
  JobStats stats;
  const int slots = total_map_slots();
  const cluster::NodeConfig& node = cluster_->node_config();

  // --- Map phase: greedy list scheduling in submission order ---
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<SimTime>>
      slot_free;
  for (int i = 0; i < slots; ++i) slot_free.push(0);
  SimTime map_end = 0;
  SimTime first_wave_end = 0;
  int64_t shuffle_total = 0;
  int launched = 0;
  for (const MapTaskSpec& task : job.map_tasks) {
    SimTime start = slot_free.top();
    slot_free.pop();
    SimTime end = start + MapTaskTime(task);
    slot_free.push(end);
    map_end = std::max(map_end, end);
    if (launched < slots) first_wave_end = std::max(first_wave_end, end);
    shuffle_total += task.output_bytes;
    launched++;
  }
  stats.map_phase = map_end;
  stats.map_waves =
      static_cast<int>((job.map_tasks.size() + slots - 1) / slots);

  // --- Shuffle: overlapped with map after the first wave ---
  if (job.reduce.num_reducers > 0) {
    SimTime net_time =
        cluster_->ShuffleTime(job.reduce.shuffle_bytes, cluster_->num_nodes());
    SimTime overlap_window = std::max<SimTime>(0, map_end - first_wave_end);
    stats.shuffle_extra = std::max<SimTime>(0, net_time - overlap_window);

    // --- Reduce phase: single round (the paper tunes 128 reducers) ---
    int rounds = (job.reduce.num_reducers + total_reduce_slots() - 1) /
                 total_reduce_slots();
    int64_t per_reducer_in =
        job.reduce.shuffle_bytes / std::max(1, job.reduce.num_reducers);
    int64_t per_reducer_out =
        job.reduce.output_bytes / std::max(1, job.reduce.num_reducers);
    double disk_share_bps = node.disk.seq_mbps * 1e6 * node.data_disks /
                            config_.reduce_slots_per_node;
    // Merge: write + read the shuffled partition once on local disk.
    double merge_s = 2.0 * static_cast<double>(per_reducer_in) /
                     disk_share_bps;
    double cpu_s = static_cast<double>(per_reducer_in) /
                   (config_.reduce_cpu_mbps * 1e6);
    int repl = job.reduce.replicated_output ? fs_->options().replication : 1;
    double write_s =
        static_cast<double>(per_reducer_out) * repl / disk_share_bps;
    double net_out_s = static_cast<double>(per_reducer_out) * (repl - 1) *
                       config_.reduce_slots_per_node * 8.0 /
                       (node.nic.gbps * 1e9);
    stats.reduce_phase =
        rounds * (config_.task_startup +
                  SecondsToSimTime(merge_s + std::max(cpu_s,
                                                      std::max(write_s,
                                                               net_out_s))));
  }

  stats.total = config_.job_setup + job.fixed_overhead + stats.map_phase +
                stats.shuffle_extra + stats.reduce_phase;
  return stats;
}

}  // namespace elephant::mapreduce
