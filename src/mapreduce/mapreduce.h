#ifndef ELEPHANT_MAPREDUCE_MAPREDUCE_H_
#define ELEPHANT_MAPREDUCE_MAPREDUCE_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"
#include "dfs/dfs.h"

namespace elephant::mapreduce {

/// Hadoop runtime configuration. Defaults reproduce the paper's setup
/// (§3.2.1): 8 map + 8 reduce tasks per node (128 + 128 slots across 16
/// nodes), 2 GB task JVMs, one reduce round (128 reducers per job).
struct MrConfig {
  int map_slots_per_node = 8;
  int reduce_slots_per_node = 8;
  /// Fixed per-task cost: JVM start, split localization, commit. The
  /// paper's empty-bucket map tasks bound this at ~6 s.
  SimTime task_startup = 6 * kSecond;
  /// Job submission + scheduling overhead per MapReduce job.
  SimTime job_setup = 5 * kSecond;
  /// Per-map-slot CPU throughput pushing *uncompressed* bytes through
  /// record readers + map function. RCFile+GZIP decode keeps this far
  /// below disk speed — the paper observes CPU-bound maps at ~70 MB/s
  /// per node (~9 MB/s compressed per slot).
  double map_cpu_mbps = 20.0;
  /// Per-reduce-slot CPU throughput.
  double reduce_cpu_mbps = 40.0;
  /// Map-join in-memory hashtable budget per task. Builds larger than
  /// this fail with Java heap errors (the Q22 failure in §3.3.4.2).
  int64_t map_join_memory = 400 * kMB;
};

/// One map task: how many on-disk bytes it reads, how many uncompressed
/// bytes its map function processes, and how many bytes it emits.
struct MapTaskSpec {
  int64_t input_bytes = 0;
  int64_t uncompressed_bytes = 0;
  int64_t output_bytes = 0;
  /// Per-task CPU throughput override in MB/s (0 = config default).
  /// Common-join mappers (tag + serialize + LZO-compress both sides) are
  /// markedly slower than scan/aggregate mappers.
  double cpu_mbps = 0;
};

/// The reduce side of a job.
struct ReducePhaseSpec {
  int num_reducers = 0;  ///< 0 = map-only job
  int64_t shuffle_bytes = 0;
  int64_t output_bytes = 0;
  /// Final job outputs are written to HDFS with 3x replication;
  /// intermediate temp tables in the paper's scripts are too.
  bool replicated_output = true;
};

/// A MapReduce job to simulate.
struct JobSpec {
  std::string name;
  std::vector<MapTaskSpec> map_tasks;
  ReducePhaseSpec reduce;
  /// Extra serial time charged before the job proper (e.g. a failed
  /// map-join attempt that times out and falls back to a common join).
  SimTime fixed_overhead = 0;
};

/// Phase breakdown of a simulated job.
struct JobStats {
  SimTime map_phase = 0;       ///< makespan of all map waves
  SimTime shuffle_extra = 0;   ///< shuffle drain remaining after last map
  SimTime reduce_phase = 0;
  SimTime total = 0;
  int map_waves = 0;
};

/// Analytical Hadoop MapReduce engine over the simulated cluster: a
/// greedy list scheduler assigns map tasks to slots in submission order
/// (reproducing the paper's Q1 anomaly where a slot receives two
/// non-empty bucket files in the first wave), the shuffle overlaps the
/// map phase, and reducers run in a single round.
class MrEngine {
 public:
  MrEngine(cluster::Cluster* cluster, dfs::DistributedFileSystem* fs,
           const MrConfig& config);

  /// Simulates one job and returns its phase times.
  JobStats RunJob(const JobSpec& job) const;

  /// Duration of a single map task under this configuration.
  SimTime MapTaskTime(const MapTaskSpec& task) const;

  int total_map_slots() const {
    return config_.map_slots_per_node * cluster_->num_nodes();
  }
  int total_reduce_slots() const {
    return config_.reduce_slots_per_node * cluster_->num_nodes();
  }

  const MrConfig& config() const { return config_; }
  cluster::Cluster* cluster() { return cluster_; }
  dfs::DistributedFileSystem* fs() { return fs_; }

 private:
  cluster::Cluster* cluster_;
  dfs::DistributedFileSystem* fs_;
  MrConfig config_;
};

}  // namespace elephant::mapreduce

#endif  // ELEPHANT_MAPREDUCE_MAPREDUCE_H_
