#ifndef ELEPHANT_SIM_EVENT_HEAP_H_
#define ELEPHANT_SIM_EVENT_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/units.h"

namespace elephant::sim {

/// Cache-friendly 4-ary min-heap. Compared to the binary
/// `std::priority_queue`, a 4-ary layout halves the tree depth (log4
/// vs log2 levels) and keeps each node's children in at most two cache
/// lines, which is where the event queue spends its time once it holds
/// hundreds of thousands of pending events. Sift operations use a hole
/// (the element in motion is held in a local and written once), so a
/// push or pop performs ~depth moves instead of ~depth swaps.
///
/// `Less(a, b)` == true means `a` has strictly higher priority (pops
/// first). Equal elements pop in unspecified order — callers that need
/// a total order add a tie-break key (see TimedQueue).
template <typename T, typename Less = std::less<T>>
class FourAryMinHeap {
 public:
  static constexpr size_t kArity = 4;

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void reserve(size_t n) { heap_.reserve(n); }

  const T& top() const { return heap_.front(); }

  void Push(T value) {
    size_t hole = heap_.size();
    heap_.push_back(std::move(value));  // placeholder; filled by sift-up
    T moving = std::move(heap_[hole]);
    while (hole > 0) {
      size_t parent = (hole - 1) / kArity;
      if (!less_(moving, heap_[parent])) break;
      heap_[hole] = std::move(heap_[parent]);
      hole = parent;
    }
    heap_[hole] = std::move(moving);
  }

  /// Removes and returns the highest-priority element.
  ///
  /// Uses Floyd's bottom-up heapify: the hole at the root walks down
  /// the min-child path all the way to a leaf (no compare against the
  /// element in motion), then the displaced last element bubbles up
  /// from that leaf. The displaced element is a recent insertion and
  /// almost always belongs near the leaves, so the bubble-up exits
  /// immediately — saving one comparison per level versus the textbook
  /// top-down sift. Full nodes take a branchless pairwise min-of-4.
  T Pop() {
    T out = std::move(heap_.front());
    T moving = std::move(heap_.back());
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n != 0) {
      size_t hole = 0;
      for (;;) {
        size_t first = hole * kArity + 1;
        size_t best;
        if (first + kArity <= n) {
          size_t b01 = first + (less_(heap_[first + 1], heap_[first]) ? 1 : 0);
          size_t b23 =
              first + 2 + (less_(heap_[first + 3], heap_[first + 2]) ? 1 : 0);
          best = less_(heap_[b23], heap_[b01]) ? b23 : b01;
        } else if (first < n) {
          best = first;
          for (size_t c = first + 1; c < n; ++c) {
            if (less_(heap_[c], heap_[best])) best = c;
          }
        } else {
          break;
        }
        heap_[hole] = std::move(heap_[best]);
        hole = best;
      }
      while (hole > 0) {
        size_t parent = (hole - 1) / kArity;
        if (!less_(moving, heap_[parent])) break;
        heap_[hole] = std::move(heap_[parent]);
        hole = parent;
      }
      heap_[hole] = std::move(moving);
    }
    return out;
  }

 private:
  std::vector<T> heap_;
  Less less_;
};

/// Time-ordered queue for discrete-event simulation: a 4-ary min-heap
/// keyed on `(time, seq)` where `seq` is a monotonic counter assigned
/// *inside* Push. That makes "same-time entries dequeue in insertion
/// order" an invariant of the data structure itself rather than a
/// property the caller has to maintain — the determinism contract of
/// the whole benchmark (two same-seed runs fire events in bit-identical
/// order) rests on this tie-break.
template <typename T>
class TimedQueue {
 public:
  struct Entry {
    SimTime time;
    uint64_t seq;
    T value;
  };

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void reserve(size_t n) { heap_.reserve(n); }

  void Push(SimTime time, T value) {
    heap_.Push(Entry{time, next_seq_++, std::move(value)});
  }

  const Entry& top() const { return heap_.top(); }
  Entry Pop() { return heap_.Pop(); }

  /// Entries ever pushed (== the next sequence number).
  uint64_t pushes() const { return next_seq_; }

 private:
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  FourAryMinHeap<Entry, EntryLess> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace elephant::sim

#endif  // ELEPHANT_SIM_EVENT_HEAP_H_
