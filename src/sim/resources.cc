#include "sim/resources.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace elephant::sim {

Server::Server(Simulation* sim, int capacity, std::string name)
    : sim_(sim), capacity_(capacity), name_(std::move(name)) {
  ELEPHANT_CHECK(capacity > 0)
      << "server '" << name_ << "' needs at least one server, got "
      << capacity;
}

SimTime Server::Admit(SimTime service_time) {
  if (service_time < 0) service_time = 0;
  SimTime now = sim_->now();
  SimTime start = std::max(now, stall_until_);
  if (static_cast<int>(free_at_.size()) >= capacity_) {
    start = std::max(start, free_at_.top());
    free_at_.Pop();
  }
  SimTime done = start + service_time;
  free_at_.Push(done);
  requests_++;
  busy_time_ += service_time;
  wait_time_ += start - now;
  return done;
}

void Server::Awaiter::await_suspend(std::coroutine_handle<> h) {
  SimTime done = server->Admit(service_time);
  server->sim_->ScheduleResume(done - server->sim_->now(), h);
}

void Server::CheckedAwaiter::await_suspend(std::coroutine_handle<> h) {
  if (server->error_budget_ > 0) {
    server->error_budget_--;
    server->errors_delivered_++;
    failed = true;
  }
  SimTime done = server->Admit(service_time);
  server->sim_->ScheduleResume(done - server->sim_->now(), h);
}

Status Server::CheckedAwaiter::await_resume() const {
  if (!failed) return Status::OK();
  return Status::IOError(server->name_ + ": injected transient I/O error");
}

SimTime Server::PeekCompletion(SimTime service_time) const {
  SimTime now = sim_->now();
  SimTime start = std::max(now, stall_until_);
  if (static_cast<int>(free_at_.size()) >= capacity_) {
    start = std::max(start, free_at_.top());
  }
  return start + service_time;
}

double Server::Utilization() const {
  SimTime now = sim_->now();
  if (now <= 0) return 0.0;
  return static_cast<double>(busy_time_) /
         (static_cast<double>(now) * capacity_);
}

void Server::ResetStats() {
  requests_ = 0;
  busy_time_ = 0;
  wait_time_ = 0;
}

Disk::Disk(Simulation* sim, const Config& config, std::string name)
    : config_(config), server_(sim, config.queue_depth, std::move(name)) {}

SimTime Disk::ServiceTime(int64_t bytes, bool sequential) const {
  double transfer_s =
      static_cast<double>(bytes) / (config_.seq_mbps * 1e6);
  SimTime t = SecondsToSimTime(transfer_s);
  if (!sequential) t += config_.position_time;
  return t;
}

Link::Link(Simulation* sim, const Config& config, std::string name)
    : config_(config), server_(sim, 1, std::move(name)) {}

SimTime Link::TransferTime(int64_t bytes) const {
  double seconds = static_cast<double>(bytes) * 8.0 / (config_.gbps * 1e9);
  return SecondsToSimTime(seconds) + config_.per_message_latency;
}

bool RwLock::TryAcquire(bool exclusive) {
  if (exclusive) {
    if (writer_ || readers_ > 0 || !waiters_.empty()) return false;
    writer_ = true;
    writer_since_ = sim_->now();
    return true;
  }
  // A reader may enter only if no writer holds the lock and no writer is
  // queued ahead of it (no reader barging).
  if (writer_) return false;
  for (const Waiter& w : waiters_) {
    if (w.exclusive) return false;
  }
  readers_++;
  return true;
}

void RwLock::Release(bool exclusive) {
  if (exclusive) {
    ELEPHANT_CHECK(writer_) << "exclusive Release without an active writer";
    ELEPHANT_DCHECK(readers_ == 0)
        << "writer and " << readers_ << " readers held simultaneously";
    writer_ = false;
    writer_held_time_ += sim_->now() - writer_since_;
  } else {
    ELEPHANT_CHECK(readers_ > 0) << "shared Release without active readers";
    ELEPHANT_DCHECK(!writer_) << "reader release while a writer is active";
    readers_--;
  }
  GrantWaiters();
}

std::string RwLock::DescribeWaiters() const {
  std::ostringstream os;
  os << "RwLock(readers=" << readers_
     << ", writer=" << (writer_ ? "true" : "false")
     << ", parked=" << waiters_.size() << ")";
  return os.str();
}

void RwLock::GrantWaiters() {
  // Grant in FIFO order: a writer at the head gets exclusive access once
  // the lock drains; a run of readers at the head is granted together.
  while (!waiters_.empty()) {
    Waiter& head = waiters_.front();
    if (head.exclusive) {
      if (writer_ || readers_ > 0) return;
      writer_ = true;
      writer_since_ = sim_->now();
      auto h = head.handle;
      total_wait_time_ += sim_->now() - head.enqueued_at;
      waiters_.pop_front();
      sim_->ScheduleResume(0, h);
      return;
    }
    if (writer_) return;
    readers_++;
    auto h = head.handle;
    total_wait_time_ += sim_->now() - head.enqueued_at;
    waiters_.pop_front();
    sim_->ScheduleResume(0, h);
  }
}

}  // namespace elephant::sim
