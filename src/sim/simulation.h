#ifndef ELEPHANT_SIM_SIMULATION_H_
#define ELEPHANT_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/event_heap.h"
#include "sim/inline_callback.h"
#include "sim/lockset.h"
#include "sim/slab.h"

namespace elephant::sim {

class Simulation;

/// Base class for synchronization primitives that can park coroutines
/// indefinitely (Latch, OneShotEvent, RwLock). Instances register with
/// their Simulation via an intrusive list so that, when the event loop
/// drains while coroutines are still parked, `StuckWaiterReport()` can
/// name the primitives holding them — the deadlock detector for
/// simulated concurrency. Registration is O(1) per construct/destruct
/// and safe for the short-lived per-operation latches on hot paths.
class Waitable {
 public:
  Waitable(const Waitable&) = delete;
  Waitable& operator=(const Waitable&) = delete;

  /// Number of coroutines currently parked on this primitive.
  virtual size_t parked_waiters() const = 0;
  /// One-line description, e.g. "Latch(count=2, parked=1)".
  virtual std::string DescribeWaiters() const = 0;

 protected:
  Waitable(Simulation* sim, const char* kind);
  virtual ~Waitable();

  const char* kind() const { return kind_; }

 private:
  friend class Simulation;
  Simulation* registry_sim_;
  const char* kind_;
  Waitable* registry_prev_ = nullptr;
  Waitable* registry_next_ = nullptr;
};

/// Fire-and-forget coroutine type for simulated processes.
///
/// A function returning sim::Task begins executing immediately when called
/// and runs until its first `co_await`; from then on it is driven entirely
/// by the Simulation event loop. The coroutine frame self-destructs on
/// completion. Typical use:
///
///   sim::Task Client(Simulation* sim, Disk* disk) {
///     co_await sim->Delay(5 * kMillisecond);
///     co_await disk->Read(8 * kKB, /*sequential=*/false);
///   }
struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }

    // Coroutine frames are the per-operation allocation unit of the
    // simulator; route them through the calling thread's size-class
    // slab instead of the global allocator (see FrameArena for the
    // same-thread lifetime rule, which sim::Task frames satisfy).
    static void* operator new(size_t bytes) {
      return FrameArena::ThreadLocal().Allocate(bytes);
    }
    static void operator delete(void* p, size_t bytes) noexcept {
      FrameArena::ThreadLocal().Free(p, bytes);
    }
  };
};

/// Countdown latch: Wait() suspends until the count reaches zero. Used to
/// join fan-out (e.g. "wait for all map tasks of this wave").
class Latch : public Waitable {
 public:
  Latch(Simulation* sim, int64_t count)
      : Waitable(sim, "Latch"), sim_(sim), count_(count) {}
  /// Frees the frames of coroutines still parked here (see ~Simulation).
  ~Latch() override { DestroyParkedWaiters(); }

  void CountDown(int64_t n = 1);
  int64_t count() const { return count_; }

  /// Re-arms a quiescent latch for reuse (pooled per-op fast path).
  /// Caller guarantees no waiter is parked.
  void Reset(int64_t count) { count_ = count; }

  /// Destroys the frames of coroutines parked here. The waiter list is
  /// detached first so re-entrant pool releases (a destroyed frame's
  /// PooledLatch handle releasing this very latch) see no waiters.
  void DestroyParkedWaiters() {
    std::vector<std::coroutine_handle<>> parked;
    parked.swap(waiters_);
    for (auto h : parked) h.destroy();
  }

  size_t parked_waiters() const override { return waiters_.size(); }
  std::string DescribeWaiters() const override;

  struct Awaiter {
    Latch* latch;
    bool await_ready() const noexcept { return latch->count_ <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      latch->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return {this}; }

 private:
  Simulation* sim_;
  int64_t count_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// One-shot event: parks co_await Wait() until someone calls Fire().
/// Waiters registered after Fire() resume immediately.
class OneShotEvent : public Waitable {
 public:
  explicit OneShotEvent(Simulation* sim)
      : Waitable(sim, "OneShotEvent"), sim_(sim) {}
  /// Frees the frames of coroutines still parked here (see ~Simulation).
  ~OneShotEvent() override { DestroyParkedWaiters(); }

  bool fired() const { return fired_; }
  void Fire();

  /// Re-arms a quiescent event for reuse (pooled per-op fast path).
  /// Caller guarantees no waiter is parked.
  void Reset() { fired_ = false; }

  /// See Latch::DestroyParkedWaiters.
  void DestroyParkedWaiters() {
    std::vector<std::coroutine_handle<>> parked;
    parked.swap(waiters_);
    for (auto h : parked) h.destroy();
  }

  size_t parked_waiters() const override { return waiters_.size(); }
  std::string DescribeWaiters() const override;

  struct Awaiter {
    OneShotEvent* ev;
    bool await_ready() const noexcept { return ev->fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      ev->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return {this}; }

 private:
  Simulation* sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Object pool for short-lived per-operation waitables (Latch,
/// OneShotEvent). A pooled primitive is constructed — and registered
/// with the Waitable registry — once, then recycled across operations:
/// Acquire() re-arms a free instance via Reset(), Release() returns it.
/// Steady state performs zero allocations and zero registry churn per
/// operation, which matters when a modeled run executes hundreds of
/// millions of ops. Idle pooled primitives report zero parked waiters,
/// so CheckQuiescent/StuckWaiterReport still name exactly the pooled
/// latches holding stuck coroutines.
///
/// Storage comes from a Slab<W>; the pool owns every instance it ever
/// created and destroys them (parked frames first) on destruction.
template <typename W>
class WaitablePool {
 public:
  explicit WaitablePool(Simulation* sim) : sim_(sim) {}
  WaitablePool(const WaitablePool&) = delete;
  WaitablePool& operator=(const WaitablePool&) = delete;

  ~WaitablePool() {
    tearing_down_ = true;
    for (W* w : all_) slab_.Delete(w);
  }

  template <typename... Args>
  W* Acquire(Args&&... args) {
    if (!free_.empty()) {
      W* w = free_.back();
      free_.pop_back();
      w->Reset(std::forward<Args>(args)...);
      return w;
    }
    W* w = slab_.New(sim_, std::forward<Args>(args)...);
    all_.push_back(w);
    return w;
  }

  void Release(W* w) {
    // During teardown the pool owns destruction; a released pointer may
    // already be gone, so do not touch it.
    if (tearing_down_) return;
    free_.push_back(w);
  }

  /// Destroys frames parked on any pooled instance (stuck operations at
  /// simulation teardown). Runs while the pool — and its sibling pools —
  /// are still alive, so handles inside destroyed frames release safely.
  void DestroyParkedWaiters() {
    for (W* w : all_) w->DestroyParkedWaiters();
  }

  size_t created() const { return all_.size(); }
  size_t idle() const { return free_.size(); }

 private:
  Simulation* sim_;
  Slab<W> slab_;
  std::vector<W*> all_;
  std::vector<W*> free_;
  bool tearing_down_ = false;
};

/// RAII handle for one operation's pooled waitable: acquires on
/// construction, releases when the operation completes (or when its
/// suspended frame is destroyed at teardown). Lives inside coroutine
/// frames; not copyable or movable.
template <typename W>
class Pooled {
 public:
  template <typename... Args>
  explicit Pooled(WaitablePool<W>* pool, Args&&... args)
      : pool_(pool), obj_(pool->Acquire(std::forward<Args>(args)...)) {}
  ~Pooled() { pool_->Release(obj_); }
  Pooled(const Pooled&) = delete;
  Pooled& operator=(const Pooled&) = delete;

  W* get() const { return obj_; }
  W* operator->() const { return obj_; }
  W& operator*() const { return *obj_; }

 private:
  WaitablePool<W>* pool_;
  W* obj_;
};

using PooledLatch = Pooled<Latch>;
using PooledOneShot = Pooled<OneShotEvent>;

/// Discrete-event simulation core: a virtual clock and a time-ordered
/// event queue. Events are either coroutine resumptions or plain
/// callbacks. Each heap entry is (time, seq, tagged pointer) — 24
/// trivially-copyable bytes, so the 4-ary min-heap sifts by plain
/// memcpy. A resume stores the coroutine frame address directly (zero
/// allocation); a callback's InlineCallback payload lives in a slab
/// and is tagged with the pointer's low bit. Deterministic: ties in
/// time break by schedule order (an invariant of TimedQueue's internal
/// sequence counter).
class Simulation {
 public:
  /// Reads ELEPHANT_LOCKSET_CHECK to arm the lockset checker (off by
  /// default; tests also toggle it via lockset_checker()).
  Simulation() { lockset_.set_enabled(LocksetChecker::EnvEnabled()); }
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Destroys the frames of coroutines still scheduled in the event
  /// queue or parked on pooled primitives. Runs end mid-simulation
  /// (bounded Run(until), background loops like checkpointers); their
  /// suspended frames would otherwise never be freed (fire-and-forget
  /// Tasks only release on completion).
  ~Simulation();

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `handle.resume()` at now + delay.
  void ScheduleResume(SimTime delay, std::coroutine_handle<> handle);

  /// Schedules a plain callback at now + delay. Callables up to
  /// InlineCallback::kInlineBytes that are trivially copyable are
  /// stored inline (no allocation).
  void ScheduleCall(SimTime delay, InlineCallback fn);

  /// Runs events until the queue is empty or the clock would pass
  /// `until`. Returns the number of events processed.
  uint64_t Run(SimTime until = std::numeric_limits<SimTime>::max());

  /// True if no events remain.
  bool Idle() const { return events_.empty(); }

  /// Total events processed across all Run() calls — part of the
  /// determinism fingerprint (two same-seed runs must match exactly).
  uint64_t events_processed() const { return events_processed_; }

  /// Coroutines currently parked on registered waitables (latches,
  /// events, rwlocks). Nonzero while Idle() means deadlock: nothing can
  /// ever wake them.
  size_t parked_coroutines() const;

  /// One line per waitable that still holds parked coroutines. Empty
  /// when the simulation is quiescent.
  std::vector<std::string> StuckWaiterReport() const;

  /// Aborts (ELEPHANT_CHECK) with the stuck-waiter report if the event
  /// loop has drained while coroutines are still parked. Call after a
  /// Run() that is expected to complete all in-flight work.
  void CheckQuiescent() const;

  /// Shared pools for the short-lived per-operation primitives on the
  /// sqlkv/mongod/ycsb hot paths. Owned by the Simulation so pooled
  /// objects outlive every coroutine frame that can reference them.
  WaitablePool<Latch>& latch_pool() { return latch_pool_; }
  WaitablePool<OneShotEvent>& one_shot_pool() { return one_shot_pool_; }

  /// Virtual-time lockset race detector for the *modeled* locks
  /// (sim/lockset.h). Pure bookkeeping — enabling it cannot change
  /// any modeled result.
  LocksetChecker& lockset_checker() { return lockset_; }
  const LocksetChecker& lockset_checker() const { return lockset_; }

  /// Awaitable that suspends the current coroutine for `delay`.
  struct DelayAwaiter {
    Simulation* sim;
    SimTime delay;
    bool await_ready() const noexcept { return delay <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->ScheduleResume(delay, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter Delay(SimTime delay) { return {this, delay}; }

 private:
  friend class Waitable;
  void RegisterWaitable(Waitable* w);
  void UnregisterWaitable(Waitable* w);

  /// Event payload: one machine word. Low bit clear — the address of a
  /// coroutine frame to resume; low bit set — a slab-allocated
  /// InlineCallback (both are at least pointer-aligned, so the bit is
  /// free). Time and tie-break sequence live in the TimedQueue entry.
  static constexpr uintptr_t kCallbackTag = 1;

  SimTime now_ = 0;
  uint64_t events_processed_ = 0;
  TimedQueue<void*> events_;
  Slab<InlineCallback> callback_slab_;
  Waitable* waitables_head_ = nullptr;
  WaitablePool<Latch> latch_pool_{this};
  WaitablePool<OneShotEvent> one_shot_pool_{this};
  LocksetChecker lockset_;
};

}  // namespace elephant::sim

#endif  // ELEPHANT_SIM_SIMULATION_H_
