#ifndef ELEPHANT_SIM_SIMULATION_H_
#define ELEPHANT_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/units.h"

namespace elephant::sim {

/// Fire-and-forget coroutine type for simulated processes.
///
/// A function returning sim::Task begins executing immediately when called
/// and runs until its first `co_await`; from then on it is driven entirely
/// by the Simulation event loop. The coroutine frame self-destructs on
/// completion. Typical use:
///
///   sim::Task Client(Simulation* sim, Disk* disk) {
///     co_await sim->Delay(5 * kMillisecond);
///     co_await disk->Read(8 * kKB, /*sequential=*/false);
///   }
struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// Discrete-event simulation core: a virtual clock and a time-ordered
/// event queue. Events are either coroutine resumptions or plain
/// callbacks. Deterministic: ties in time break by insertion order.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `handle.resume()` at now + delay.
  void ScheduleResume(SimTime delay, std::coroutine_handle<> handle);

  /// Schedules a plain callback at now + delay.
  void ScheduleCall(SimTime delay, std::function<void()> fn);

  /// Runs events until the queue is empty or the clock would pass
  /// `until`. Returns the number of events processed.
  uint64_t Run(SimTime until = std::numeric_limits<SimTime>::max());

  /// True if no events remain.
  bool Idle() const { return events_.empty(); }

  /// Awaitable that suspends the current coroutine for `delay`.
  struct DelayAwaiter {
    Simulation* sim;
    SimTime delay;
    bool await_ready() const noexcept { return delay <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->ScheduleResume(delay, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter Delay(SimTime delay) { return {this, delay}; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::coroutine_handle<> handle;  // either handle...
    std::function<void()> fn;        // ...or callback
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
};

/// One-shot event: processes co_await Wait() until someone calls Fire().
/// Waiters registered after Fire() resume immediately.
class OneShotEvent {
 public:
  explicit OneShotEvent(Simulation* sim) : sim_(sim) {}

  bool fired() const { return fired_; }
  void Fire();

  struct Awaiter {
    OneShotEvent* ev;
    bool await_ready() const noexcept { return ev->fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      ev->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return {this}; }

 private:
  Simulation* sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: Wait() suspends until the count reaches zero. Used to
/// join fan-out (e.g. "wait for all map tasks of this wave").
class Latch {
 public:
  Latch(Simulation* sim, int64_t count) : sim_(sim), count_(count) {}

  void CountDown(int64_t n = 1);
  int64_t count() const { return count_; }

  struct Awaiter {
    Latch* latch;
    bool await_ready() const noexcept { return latch->count_ <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      latch->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return {this}; }

 private:
  Simulation* sim_;
  int64_t count_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace elephant::sim

#endif  // ELEPHANT_SIM_SIMULATION_H_
