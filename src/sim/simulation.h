#ifndef ELEPHANT_SIM_SIMULATION_H_
#define ELEPHANT_SIM_SIMULATION_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "common/units.h"

namespace elephant::sim {

class Simulation;

/// Base class for synchronization primitives that can park coroutines
/// indefinitely (Latch, OneShotEvent, RwLock). Instances register with
/// their Simulation via an intrusive list so that, when the event loop
/// drains while coroutines are still parked, `StuckWaiterReport()` can
/// name the primitives holding them — the deadlock detector for
/// simulated concurrency. Registration is O(1) per construct/destruct
/// and safe for the short-lived per-operation latches on hot paths.
class Waitable {
 public:
  Waitable(const Waitable&) = delete;
  Waitable& operator=(const Waitable&) = delete;

  /// Number of coroutines currently parked on this primitive.
  virtual size_t parked_waiters() const = 0;
  /// One-line description, e.g. "Latch(count=2, parked=1)".
  virtual std::string DescribeWaiters() const = 0;

 protected:
  Waitable(Simulation* sim, const char* kind);
  virtual ~Waitable();

  const char* kind() const { return kind_; }

 private:
  friend class Simulation;
  Simulation* registry_sim_;
  const char* kind_;
  Waitable* registry_prev_ = nullptr;
  Waitable* registry_next_ = nullptr;
};

/// Fire-and-forget coroutine type for simulated processes.
///
/// A function returning sim::Task begins executing immediately when called
/// and runs until its first `co_await`; from then on it is driven entirely
/// by the Simulation event loop. The coroutine frame self-destructs on
/// completion. Typical use:
///
///   sim::Task Client(Simulation* sim, Disk* disk) {
///     co_await sim->Delay(5 * kMillisecond);
///     co_await disk->Read(8 * kKB, /*sequential=*/false);
///   }
struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// Discrete-event simulation core: a virtual clock and a time-ordered
/// event queue. Events are either coroutine resumptions or plain
/// callbacks. Deterministic: ties in time break by insertion order.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Destroys the frames of coroutines still scheduled in the event
  /// queue. Runs end mid-simulation (bounded Run(until), background
  /// loops like checkpointers); their suspended frames would otherwise
  /// never be freed (fire-and-forget Tasks only release on completion).
  ~Simulation();

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `handle.resume()` at now + delay.
  void ScheduleResume(SimTime delay, std::coroutine_handle<> handle);

  /// Schedules a plain callback at now + delay.
  void ScheduleCall(SimTime delay, std::function<void()> fn);

  /// Runs events until the queue is empty or the clock would pass
  /// `until`. Returns the number of events processed.
  uint64_t Run(SimTime until = std::numeric_limits<SimTime>::max());

  /// True if no events remain.
  bool Idle() const { return events_.empty(); }

  /// Total events processed across all Run() calls — part of the
  /// determinism fingerprint (two same-seed runs must match exactly).
  uint64_t events_processed() const { return events_processed_; }

  /// Coroutines currently parked on registered waitables (latches,
  /// events, rwlocks). Nonzero while Idle() means deadlock: nothing can
  /// ever wake them.
  size_t parked_coroutines() const;

  /// One line per waitable that still holds parked coroutines. Empty
  /// when the simulation is quiescent.
  std::vector<std::string> StuckWaiterReport() const;

  /// Aborts (ELEPHANT_CHECK) with the stuck-waiter report if the event
  /// loop has drained while coroutines are still parked. Call after a
  /// Run() that is expected to complete all in-flight work.
  void CheckQuiescent() const;

  /// Awaitable that suspends the current coroutine for `delay`.
  struct DelayAwaiter {
    Simulation* sim;
    SimTime delay;
    bool await_ready() const noexcept { return delay <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->ScheduleResume(delay, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter Delay(SimTime delay) { return {this, delay}; }

 private:
  friend class Waitable;
  void RegisterWaitable(Waitable* w);
  void UnregisterWaitable(Waitable* w);

  struct Event {
    SimTime time;
    uint64_t seq;
    std::coroutine_handle<> handle;  // either handle...
    std::function<void()> fn;        // ...or callback
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  Waitable* waitables_head_ = nullptr;
};

/// One-shot event: processes co_await Wait() until someone calls Fire().
/// Waiters registered after Fire() resume immediately.
class OneShotEvent : public Waitable {
 public:
  explicit OneShotEvent(Simulation* sim)
      : Waitable(sim, "OneShotEvent"), sim_(sim) {}
  /// Frees the frames of coroutines still parked here (see ~Simulation).
  ~OneShotEvent() override {
    for (auto h : waiters_) h.destroy();
  }

  bool fired() const { return fired_; }
  void Fire();

  size_t parked_waiters() const override { return waiters_.size(); }
  std::string DescribeWaiters() const override;

  struct Awaiter {
    OneShotEvent* ev;
    bool await_ready() const noexcept { return ev->fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      ev->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return {this}; }

 private:
  Simulation* sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: Wait() suspends until the count reaches zero. Used to
/// join fan-out (e.g. "wait for all map tasks of this wave").
class Latch : public Waitable {
 public:
  Latch(Simulation* sim, int64_t count)
      : Waitable(sim, "Latch"), sim_(sim), count_(count) {}
  /// Frees the frames of coroutines still parked here (see ~Simulation).
  ~Latch() override {
    for (auto h : waiters_) h.destroy();
  }

  void CountDown(int64_t n = 1);
  int64_t count() const { return count_; }

  size_t parked_waiters() const override { return waiters_.size(); }
  std::string DescribeWaiters() const override;

  struct Awaiter {
    Latch* latch;
    bool await_ready() const noexcept { return latch->count_ <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      latch->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return {this}; }

 private:
  Simulation* sim_;
  int64_t count_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace elephant::sim

#endif  // ELEPHANT_SIM_SIMULATION_H_
