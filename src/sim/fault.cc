#include "sim/fault.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace elephant::sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDiskStall:
      return "disk-stall";
    case FaultKind::kDiskError:
      return "disk-error";
    case FaultKind::kNicOutage:
      return "nic-outage";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kNodeCrash:
      return "node-crash";
  }
  return "?";
}

namespace {

SimTime UniformTime(Rng* rng, SimTime lo, SimTime hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<SimTime>(
                  rng->Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

}  // namespace

FaultPlan FaultPlan::FromSeed(uint64_t seed,
                              const FaultPlanOptions& options) {
  FaultPlan plan;
  plan.seed = seed;
  // Independent stream per seed; the constant keeps plan generation
  // decoupled from every other consumer of the same seed.
  Rng rng(seed ^ 0xFA17B10C5EEDULL);
  std::vector<FaultKind> kinds;
  if (options.disk_stalls) kinds.push_back(FaultKind::kDiskStall);
  if (options.disk_errors) kinds.push_back(FaultKind::kDiskError);
  if (options.nic_outages) kinds.push_back(FaultKind::kNicOutage);
  if (options.partitions) kinds.push_back(FaultKind::kPartition);
  if (options.crashes) kinds.push_back(FaultKind::kNodeCrash);
  if (kinds.empty() || options.max_events <= 0) return plan;

  int span = std::max(0, options.max_events - options.min_events);
  int n = options.min_events +
          static_cast<int>(span > 0 ? rng.Uniform(span + 1) : 0);
  for (int i = 0; i < n; ++i) {
    FaultEvent ev;
    ev.kind = kinds[rng.Uniform(kinds.size())];
    ev.at = UniformTime(&rng, options.horizon_start, options.horizon);
    switch (ev.kind) {
      case FaultKind::kDiskStall:
        ev.node = static_cast<int>(rng.Uniform(options.num_nodes));
        ev.duration = UniformTime(&rng, options.min_stall,
                                  options.max_stall);
        break;
      case FaultKind::kDiskError:
        ev.node = static_cast<int>(rng.Uniform(options.num_nodes));
        ev.count = 1 + static_cast<int64_t>(
                           rng.Uniform(options.max_error_burst));
        break;
      case FaultKind::kNicOutage:
        ev.node = static_cast<int>(rng.Uniform(options.num_nodes));
        ev.duration = UniformTime(&rng, options.min_outage,
                                  options.max_outage);
        break;
      case FaultKind::kPartition:
        ev.node = static_cast<int>(rng.Uniform(options.num_nodes));
        ev.peer = static_cast<int>(rng.Uniform(options.num_nodes - 1));
        if (ev.peer >= ev.node) ev.peer++;
        ev.duration = UniformTime(&rng, options.min_outage,
                                  options.max_outage);
        break;
      case FaultKind::kNodeCrash:
        ev.node = static_cast<int>(rng.Uniform(options.num_server_nodes));
        ev.duration = UniformTime(&rng, options.min_crash_gap,
                                  options.max_crash_gap);
        break;
    }
    plan.events.push_back(ev);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

std::string FaultPlan::Describe() const {
  std::string out = StrFormat("FaultPlan(seed=%llx, %zu events)\n",
                              (unsigned long long)seed, events.size());
  for (const FaultEvent& ev : events) {
    out += StrFormat("  t=%.3fs %-10s node=%d", SimTimeToSeconds(ev.at),
                     FaultKindName(ev.kind), ev.node);
    if (ev.kind == FaultKind::kPartition) {
      out += StrFormat(" peer=%d", ev.peer);
    }
    if (ev.kind == FaultKind::kDiskError) {
      out += StrFormat(" count=%lld", (long long)ev.count);
    } else {
      out += StrFormat(" duration=%.3fs", SimTimeToSeconds(ev.duration));
    }
    out += "\n";
  }
  return out;
}

uint64_t FaultPlan::Fingerprint() const {
  elephant::Fingerprint fp;
  fp.Mix(seed).Mix(static_cast<int64_t>(events.size()));
  for (const FaultEvent& ev : events) {
    fp.Mix(static_cast<int64_t>(ev.kind))
        .Mix(ev.at)
        .Mix(ev.duration)
        .Mix(ev.node)
        .Mix(ev.peer)
        .Mix(ev.count);
  }
  return fp.value();
}

FaultInjector::FaultInjector(Simulation* sim,
                             std::vector<NodeFaultSurface> surfaces,
                             FaultPlan plan, Hooks hooks)
    : sim_(sim),
      surfaces_(std::move(surfaces)),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      outage_until_(surfaces_.size(), 0),
      crashed_(surfaces_.size(), 0) {
  for (const FaultEvent& ev : plan_.events) {
    ELEPHANT_CHECK(ev.node >= 0 &&
                   ev.node < static_cast<int>(surfaces_.size()))
        << "fault event targets node " << ev.node << " but only "
        << surfaces_.size() << " surfaces were provided";
  }
}

void FaultInjector::Arm() {
  SimTime now = sim_->now();
  for (const FaultEvent& ev : plan_.events) {
    SimTime delay = ev.at > now ? ev.at - now : 0;
    sim_->ScheduleCall(delay, [this, ev] { Apply(ev); });
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  SimTime now = sim_->now();
  NodeFaultSurface& surface = surfaces_[event.node];
  switch (event.kind) {
    case FaultKind::kDiskStall:
      if (surface.data_disk != nullptr) {
        surface.data_disk->StallUntil(now + event.duration);
      }
      break;
    case FaultKind::kDiskError:
      if (surface.data_disk != nullptr) {
        surface.data_disk->InjectTransientErrors(event.count);
      }
      break;
    case FaultKind::kNicOutage:
      outage_until_[event.node] =
          std::max(outage_until_[event.node], now + event.duration);
      if (surface.nic_tx != nullptr) {
        surface.nic_tx->StallUntil(now + event.duration);
      }
      if (surface.nic_rx != nullptr) {
        surface.nic_rx->StallUntil(now + event.duration);
      }
      break;
    case FaultKind::kPartition:
      partitions_.push_back({event.node, event.peer, now + event.duration});
      break;
    case FaultKind::kNodeCrash: {
      // Overlapping crash windows collapse into the first one: a node
      // that is already down cannot crash again, and only the original
      // event's restart revives it.
      if (crashed_[event.node]) return;
      crashed_[event.node] = 1;
      crashes_applied_++;
      if (hooks_.crash_node) hooks_.crash_node(event.node);
      int node = event.node;
      sim_->ScheduleCall(event.duration, [this, node] {
        crashed_[node] = 0;
        restarts_applied_++;
        applied_fp_.Mix(std::string_view("restart"))
            .Mix(sim_->now())
            .Mix(node);
        if (hooks_.restart_node) hooks_.restart_node(node);
      });
      break;
    }
  }
  injected_++;
  applied_fp_.Mix(static_cast<int64_t>(event.kind))
      .Mix(now)
      .Mix(event.node)
      .Mix(event.duration)
      .Mix(event.count);
}

bool FaultInjector::MessageBlocked(int from, int to) const {
  SimTime now = sim_->now();
  auto in_range = [this](int n) {
    return n >= 0 && n < static_cast<int>(outage_until_.size());
  };
  if (in_range(from) && outage_until_[from] > now) return true;
  if (in_range(to) && outage_until_[to] > now) return true;
  for (const Partition& p : partitions_) {
    if (p.until <= now) continue;
    if ((p.a == from && p.b == to) || (p.a == to && p.b == from)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::NodeCrashed(int node) const {
  return node >= 0 && node < static_cast<int>(crashed_.size()) &&
         crashed_[node] != 0;
}

}  // namespace elephant::sim
