#ifndef ELEPHANT_SIM_SLAB_H_
#define ELEPHANT_SIM_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace elephant::sim {

/// Typed slab/freelist allocator: carves fixed-size slots out of
/// chunked blocks and recycles freed slots LIFO, so steady-state
/// New/Delete never touches the global allocator. Single-threaded by
/// design — a Slab belongs to one Simulation, and a Simulation runs on
/// one thread (the bench harnesses run *different* simulations on
/// different TaskPool workers, each with its own slabs).
///
/// Lifetime rule: every New'd object must be Delete'd before the slab
/// is destroyed; the destructor reclaims raw chunk memory only and
/// does not run destructors of live objects.
template <typename T>
class Slab {
 public:
  static constexpr size_t kSlotsPerChunk = 64;

  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  template <typename... Args>
  T* New(Args&&... args) {
    if (free_ == nullptr) Grow();
    Slot* slot = free_;
    free_ = slot->next;
    live_++;
    return ::new (static_cast<void*>(slot->bytes)) T(
        std::forward<Args>(args)...);
  }

  void Delete(T* p) {
    p->~T();
    Slot* slot = reinterpret_cast<Slot*>(p);
    slot->next = free_;
    free_ = slot;
    live_--;
  }

  /// Objects currently live (New'd, not yet Delete'd).
  size_t live() const { return live_; }
  /// Total slots ever carved (live + recyclable).
  size_t capacity() const { return chunks_.size() * kSlotsPerChunk; }

 private:
  union Slot {
    Slot* next;
    alignas(T) unsigned char bytes[sizeof(T)];
  };

  void Grow() {
    chunks_.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
    Slot* chunk = chunks_.back().get();
    // Thread the fresh chunk onto the freelist in address order.
    for (size_t i = kSlotsPerChunk; i-- > 0;) {
      chunk[i].next = free_;
      free_ = &chunk[i];
    }
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  Slot* free_ = nullptr;
  size_t live_ = 0;
};

/// Per-thread size-class slab for coroutine frames. `sim::Task`
/// coroutines are the per-operation unit of the simulator: a modeled
/// 640M-op run creates that many frames, and the default
/// `operator new` per frame dominates the event loop's profile.
/// Frames round up to 64-byte classes; each class keeps a LIFO
/// freelist backed by chunked block allocations, so a steady-state op
/// mix reuses the same few hot frames. Frames larger than
/// kMaxSlabBytes (rare: big coroutines with many locals) fall through
/// to the global allocator.
///
/// Lifetime rule: a frame must be freed on the thread that allocated
/// it. sim::Task frames satisfy this because a Simulation — and every
/// coroutine it drives — runs on a single thread from construction to
/// drain; the TaskPool never migrates a running cell between workers.
class FrameArena {
 public:
  static constexpr size_t kGranule = 64;
  static constexpr size_t kMaxSlabBytes = 2048;

  /// The calling thread's arena (thread_local singleton).
  static FrameArena& ThreadLocal();

  void* Allocate(size_t bytes);
  void Free(void* p, size_t bytes) noexcept;

  /// Allocations served from a recycled slot (steady-state hit rate).
  uint64_t recycled() const { return recycled_; }
  /// Allocations that had to carve fresh slab space.
  uint64_t carved() const { return carved_; }
  /// Allocations larger than kMaxSlabBytes (global allocator path).
  uint64_t oversized() const { return oversized_; }
  /// Slots currently outstanding (allocated, not yet freed).
  int64_t outstanding() const { return outstanding_; }

 private:
  static constexpr size_t kClasses = kMaxSlabBytes / kGranule;
  static constexpr size_t kSlotsPerChunk = 32;

  struct FreeNode {
    FreeNode* next;
  };

  FreeNode* free_[kClasses] = {};
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  uint64_t recycled_ = 0;
  uint64_t carved_ = 0;
  uint64_t oversized_ = 0;
  int64_t outstanding_ = 0;
};

}  // namespace elephant::sim

#endif  // ELEPHANT_SIM_SLAB_H_
