#include "sim/lockset.h"

#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace elephant::sim {

const char* LocksetModeName(LocksetChecker::Mode mode) {
  switch (mode) {
    case LocksetChecker::Mode::kNone:
      return "none";
    case LocksetChecker::Mode::kShared:
      return "shared";
    case LocksetChecker::Mode::kExclusive:
      return "exclusive";
  }
  return "?";
}

const char* LocksetAccessName(LocksetChecker::Access access) {
  switch (access) {
    case LocksetChecker::Access::kRead:
      return "read";
    case LocksetChecker::Access::kWrite:
      return "write";
  }
  return "?";
}

bool LocksetChecker::EnvEnabled() {
  const char* env = std::getenv("ELEPHANT_LOCKSET_CHECK");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

std::string LocksetChecker::Report() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += StrFormat(
        "lockset violation: op=%s key=%llu %s requires %s lock "
        "(domain=%llu lock_key=%llu), held %s\n",
        v.op, (unsigned long long)v.data_key, LocksetAccessName(v.access),
        LocksetModeName(v.required), (unsigned long long)v.lock.domain,
        (unsigned long long)v.lock.key, LocksetModeName(v.held));
  }
  if (total_violations_ > static_cast<int64_t>(violations_.size())) {
    out += StrFormat("... and %lld more violations\n",
                     (long long)(total_violations_ -
                                 static_cast<int64_t>(violations_.size())));
  }
  return out;
}

void LocksetScope::CheckAccessSlow(LockId lock, uint64_t data_key,
                                   Access access, Mode required) {
  checker_->accesses_checked_++;
  Mode held = Mode::kNone;
  for (int i = 0; i < num_held_; ++i) {
    if (held_[i].lock == lock &&
        static_cast<uint8_t>(held_[i].mode) > static_cast<uint8_t>(held)) {
      held = held_[i].mode;
    }
  }
  // kShared requirements are satisfied by either mode; kExclusive only
  // by kExclusive; kNone always (the access is declared lock-free).
  bool ok = required == Mode::kNone ||
            (required == Mode::kShared && held != Mode::kNone) ||
            held == Mode::kExclusive;
  if (ok) return;
  checker_->total_violations_++;
  if (checker_->violations_.size() < LocksetChecker::kMaxStored) {
    checker_->violations_.push_back(
        {op_, lock, data_key, access, required, held});
  }
}

}  // namespace elephant::sim
