#ifndef ELEPHANT_SIM_INLINE_CALLBACK_H_
#define ELEPHANT_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace elephant::sim {

/// Fixed-size, small-buffer-optimized callable for event payloads.
///
/// The event loop schedules millions of tiny callbacks per simulated
/// run; `std::function` pays type-erasure overhead on every move the
/// heap makes while sifting. InlineCallback stores callables of up to
/// kInlineBytes *inline* when they are trivially copyable (every
/// lambda capturing pointers/integers/references qualifies), so the
/// common case costs zero heap allocations and moves are a plain
/// memcpy — which keeps the 4-ary event heap's sift loops branch- and
/// allocation-free. Oversized or non-trivially-copyable callables
/// still work: they are boxed behind a single heap pointer (the same
/// cost `std::function` would pay).
///
/// Contract: move-only; a moved-from callback is empty; invoking an
/// empty callback is undefined (callers check `operator bool`).
class InlineCallback {
 public:
  static constexpr size_t kInlineBytes = 48;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
      destroy_ = nullptr;  // trivially copyable => trivially relocatable
    } else {
      auto* boxed = new Fn(std::forward<F>(f));
      std::memcpy(storage_, &boxed, sizeof(boxed));
      invoke_ = [](void* s) {
        Fn* p;
        std::memcpy(&p, s, sizeof(p));
        (*p)();
      };
      destroy_ = [](void* s) {
        Fn* p;
        std::memcpy(&p, s, sizeof(p));
        delete p;
      };
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Clear();
      MoveFrom(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Clear(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

 private:
  void MoveFrom(InlineCallback& other) noexcept {
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    std::memcpy(storage_, other.storage_, kInlineBytes);
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }
  void Clear() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace elephant::sim

#endif  // ELEPHANT_SIM_INLINE_CALLBACK_H_
