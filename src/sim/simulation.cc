#include "sim/simulation.h"

#include <sstream>

#include "common/check.h"

namespace elephant::sim {

Waitable::Waitable(Simulation* sim, const char* kind)
    : registry_sim_(sim), kind_(kind) {
  ELEPHANT_DCHECK(sim != nullptr) << kind << " constructed without a sim";
  if (registry_sim_ != nullptr) registry_sim_->RegisterWaitable(this);
}

Waitable::~Waitable() {
  if (registry_sim_ != nullptr) registry_sim_->UnregisterWaitable(this);
}

Simulation::~Simulation() {
  // Destroying a frame runs its locals' destructors, which may in turn
  // unregister waitables or destroy further parked frames; loop until
  // the queue is genuinely empty.
  while (!events_.empty()) {
    uintptr_t p = reinterpret_cast<uintptr_t>(events_.Pop().value);
    if (p & kCallbackTag) {
      callback_slab_.Delete(
          reinterpret_cast<InlineCallback*>(p & ~kCallbackTag));
    } else if (p != 0) {
      std::coroutine_handle<>::from_address(
          reinterpret_cast<void*>(p))
          .destroy();
    }
  }
  // Frames parked on pooled primitives (stuck operations) are destroyed
  // while both pools are still alive, so the Pooled<> handles inside
  // those frames release into live pools.
  latch_pool_.DestroyParkedWaiters();
  one_shot_pool_.DestroyParkedWaiters();
}

void Simulation::RegisterWaitable(Waitable* w) {
  w->registry_prev_ = nullptr;
  w->registry_next_ = waitables_head_;
  if (waitables_head_ != nullptr) waitables_head_->registry_prev_ = w;
  waitables_head_ = w;
}

void Simulation::UnregisterWaitable(Waitable* w) {
  if (w->registry_prev_ != nullptr) {
    w->registry_prev_->registry_next_ = w->registry_next_;
  } else {
    ELEPHANT_DCHECK(waitables_head_ == w)
        << "waitable registry corrupted for " << w->kind();
    waitables_head_ = w->registry_next_;
  }
  if (w->registry_next_ != nullptr) {
    w->registry_next_->registry_prev_ = w->registry_prev_;
  }
  w->registry_prev_ = w->registry_next_ = nullptr;
}

size_t Simulation::parked_coroutines() const {
  size_t parked = 0;
  for (const Waitable* w = waitables_head_; w != nullptr;
       w = w->registry_next_) {
    parked += w->parked_waiters();
  }
  return parked;
}

std::vector<std::string> Simulation::StuckWaiterReport() const {
  std::vector<std::string> report;
  for (const Waitable* w = waitables_head_; w != nullptr;
       w = w->registry_next_) {
    if (w->parked_waiters() > 0) report.push_back(w->DescribeWaiters());
  }
  return report;
}

void Simulation::CheckQuiescent() const {
  if (!Idle() || parked_coroutines() == 0) return;
  std::ostringstream os;
  for (const std::string& line : StuckWaiterReport()) {
    os << "\n  " << line;
  }
  ELEPHANT_CHECK(false) << "event loop drained with "
                        << parked_coroutines()
                        << " coroutine(s) still parked (simulated deadlock):"
                        << os.str();
}

void Simulation::ScheduleResume(SimTime delay, std::coroutine_handle<> h) {
  ELEPHANT_DCHECK(h) << "scheduling a null coroutine handle";
  ELEPHANT_DCHECK(
      (reinterpret_cast<uintptr_t>(h.address()) & kCallbackTag) == 0)
      << "coroutine frame address not pointer-aligned";
  if (delay < 0) delay = 0;
  events_.Push(now_ + delay, h.address());
}

void Simulation::ScheduleCall(SimTime delay, InlineCallback fn) {
  static_assert(alignof(InlineCallback) > 1,
                "low-bit tag needs aligned callback slots");
  ELEPHANT_DCHECK(static_cast<bool>(fn)) << "scheduling a null callback";
  if (delay < 0) delay = 0;
  InlineCallback* cb = callback_slab_.New(std::move(fn));
  events_.Push(now_ + delay,
               reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(cb) |
                                       kCallbackTag));
}

uint64_t Simulation::Run(SimTime until) {
  uint64_t processed = 0;
  while (!events_.empty()) {
    if (events_.top().time > until) break;
    TimedQueue<void*>::Entry entry = events_.Pop();
    ELEPHANT_DCHECK(entry.time >= now_)
        << "virtual clock moved backwards: " << entry.time << " < " << now_;
    now_ = entry.time;
    ++processed;
    uintptr_t p = reinterpret_cast<uintptr_t>(entry.value);
    if (p & kCallbackTag) {
      auto* cb = reinterpret_cast<InlineCallback*>(p & ~kCallbackTag);
      (*cb)();
      callback_slab_.Delete(cb);
    } else {
      std::coroutine_handle<>::from_address(entry.value).resume();
    }
  }
  events_processed_ += processed;
  return processed;
}

void OneShotEvent::Fire() {
  if (fired_) return;
  fired_ = true;
  for (auto h : waiters_) sim_->ScheduleResume(0, h);
  waiters_.clear();
}

std::string OneShotEvent::DescribeWaiters() const {
  std::ostringstream os;
  os << "OneShotEvent(fired=" << (fired_ ? "true" : "false")
     << ", parked=" << waiters_.size() << ")";
  return os.str();
}

void Latch::CountDown(int64_t n) {
  ELEPHANT_DCHECK(n > 0) << "CountDown(" << n << ")";
  count_ -= n;
  if (count_ <= 0) {
    for (auto h : waiters_) sim_->ScheduleResume(0, h);
    waiters_.clear();
  }
}

std::string Latch::DescribeWaiters() const {
  std::ostringstream os;
  os << "Latch(count=" << count_ << ", parked=" << waiters_.size() << ")";
  return os.str();
}

}  // namespace elephant::sim
