#include "sim/simulation.h"

namespace elephant::sim {

void Simulation::ScheduleResume(SimTime delay, std::coroutine_handle<> h) {
  if (delay < 0) delay = 0;
  events_.push(Event{now_ + delay, next_seq_++, h, nullptr});
}

void Simulation::ScheduleCall(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  events_.push(Event{now_ + delay, next_seq_++, nullptr, std::move(fn)});
}

uint64_t Simulation::Run(SimTime until) {
  uint64_t processed = 0;
  while (!events_.empty()) {
    const Event& top = events_.top();
    if (top.time > until) break;
    Event ev = top;
    events_.pop();
    now_ = ev.time;
    ++processed;
    if (ev.handle) {
      ev.handle.resume();
    } else if (ev.fn) {
      ev.fn();
    }
  }
  return processed;
}

void OneShotEvent::Fire() {
  if (fired_) return;
  fired_ = true;
  for (auto h : waiters_) sim_->ScheduleResume(0, h);
  waiters_.clear();
}

void Latch::CountDown(int64_t n) {
  count_ -= n;
  if (count_ <= 0) {
    for (auto h : waiters_) sim_->ScheduleResume(0, h);
    waiters_.clear();
  }
}

}  // namespace elephant::sim
