#ifndef ELEPHANT_SIM_LOCKSET_H_
#define ELEPHANT_SIM_LOCKSET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace elephant::sim {

/// Virtual-time lockset race detector (DESIGN.md §13).
///
/// The locks the simulation coroutines take — sqlkv's per-row
/// RwLocks, mongod's process-global lock — are *modeled*: pure
/// bookkeeping on one host thread, invisible to TSan and ASan. A
/// data access performed without the isolation-mandated modeled lock
/// is therefore a bug no sanitizer can ever see; it surfaces (if at
/// all) as a wrong benchmark number. This checker is the
/// Eraser-style answer adapted to discrete-event simulation: each
/// simulated operation carries its held-lockset in a LocksetScope
/// living in the coroutine frame, and every data touch declares the
/// lock mode its isolation level mandates. A touch whose scope does
/// not hold the lock in (at least) that mode is recorded as a
/// violation naming the op, the data key, and the missing mode.
///
/// Determinism contract: the checker performs no simulation work —
/// it never schedules events, consumes virtual time, or draws random
/// numbers — so enabling it cannot perturb any modeled result. Run
/// fingerprints are bit-identical with the checker on or off, by
/// construction. Off by default; enabled per-Simulation via the
/// ELEPHANT_LOCKSET_CHECK environment variable (any value but "0")
/// or set_enabled(). Disabled, every hook is a tag-pointer test.
class LocksetChecker {
 public:
  /// Lock mode an op holds, or that an access requires. kNone as a
  /// requirement means the access is legitimately lock-free (READ
  /// UNCOMMITTED reads).
  enum class Mode : uint8_t { kNone = 0, kShared = 1, kExclusive = 2 };
  enum class Access : uint8_t { kRead = 0, kWrite = 1 };

  /// Identity of one modeled lock: a checker-issued domain (one per
  /// lock table or process-global lock, in construction order —
  /// deterministic) plus the row key, or 0 for a global lock. Never a
  /// pointer: reports must not depend on the allocator.
  struct LockId {
    uint64_t domain = 0;
    uint64_t key = 0;
    bool operator==(const LockId& other) const {
      return domain == other.domain && key == other.key;
    }
  };

  struct Violation {
    const char* op;     ///< e.g. "sqlkv.read" (static string)
    LockId lock;        ///< the lock that should have been held
    uint64_t data_key;  ///< the record/document touched
    Access access;
    Mode required;
    Mode held;
  };

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Issues the next lock domain. Called once per lock table /
  /// global lock at engine construction; construction order is
  /// deterministic, so domains are too.
  uint64_t NewDomain() { return next_domain_++; }

  /// Accesses checked while enabled — tests assert this is nonzero
  /// so the instrumentation cannot silently rot.
  int64_t accesses_checked() const { return accesses_checked_; }
  int64_t total_violations() const { return total_violations_; }
  /// Stored violations (the first kMaxStored; total_violations()
  /// counts all of them).
  const std::vector<Violation>& violations() const { return violations_; }
  /// Human-readable report, one line per stored violation; empty
  /// string when clean.
  std::string Report() const;

  /// True when ELEPHANT_LOCKSET_CHECK is set to anything but "0".
  static bool EnvEnabled();

  static constexpr size_t kMaxStored = 64;

 private:
  friend class LocksetScope;

  bool enabled_ = false;
  uint64_t next_domain_ = 1;
  int64_t accesses_checked_ = 0;
  int64_t total_violations_ = 0;
  std::vector<Violation> violations_;
};

const char* LocksetModeName(LocksetChecker::Mode mode);
const char* LocksetAccessName(LocksetChecker::Access access);

/// One simulated operation's held-lockset. Lives in the coroutine
/// frame of the op (Read/Update/Insert/migration); the op tells it
/// about every modeled acquire/release, and declares the required
/// mode at every data touch. All methods are no-ops when the checker
/// is disabled (the constructor stores nullptr).
class LocksetScope {
 public:
  using Mode = LocksetChecker::Mode;
  using Access = LocksetChecker::Access;
  using LockId = LocksetChecker::LockId;

  LocksetScope(LocksetChecker* checker, const char* op)
      : checker_(checker != nullptr && checker->enabled() ? checker
                                                          : nullptr),
        op_(op) {}
  LocksetScope(const LocksetScope&) = delete;
  LocksetScope& operator=(const LocksetScope&) = delete;

  void NoteAcquired(LockId lock, Mode mode) {
    if (checker_ == nullptr) return;
    if (num_held_ < kMaxHeld) held_[num_held_++] = {lock, mode};
  }

  void NoteReleased(LockId lock, Mode mode) {
    if (checker_ == nullptr) return;
    for (int i = num_held_ - 1; i >= 0; --i) {
      if (held_[i].lock == lock && held_[i].mode == mode) {
        held_[i] = held_[--num_held_];
        return;
      }
    }
  }

  /// Declares a data touch: the op is reading/writing `data_key`
  /// and its isolation level mandates holding `lock` in at least
  /// `required` mode. Records a violation when the scope does not.
  void CheckAccess(LockId lock, uint64_t data_key, Access access,
                   Mode required) {
    if (checker_ == nullptr) return;
    CheckAccessSlow(lock, data_key, access, required);
  }

 private:
  static constexpr int kMaxHeld = 4;
  struct Held {
    LockId lock;
    Mode mode;
  };

  void CheckAccessSlow(LockId lock, uint64_t data_key, Access access,
                       Mode required);

  LocksetChecker* checker_;
  const char* op_;
  int num_held_ = 0;
  Held held_[kMaxHeld];
};

}  // namespace elephant::sim

#endif  // ELEPHANT_SIM_LOCKSET_H_
