#include "sim/slab.h"

#include "common/check.h"

namespace elephant::sim {

FrameArena& FrameArena::ThreadLocal() {
  static thread_local FrameArena arena;
  return arena;
}

void* FrameArena::Allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxSlabBytes) {
    oversized_++;
    outstanding_++;
    return ::operator new(bytes);
  }
  size_t cls = (bytes - 1) / kGranule;
  outstanding_++;
  if (free_[cls] != nullptr) {
    FreeNode* node = free_[cls];
    free_[cls] = node->next;
    recycled_++;
    return node;
  }
  // Carve a fresh chunk of this class's slot size; chunk starts are
  // max-aligned (operator new) and slot sizes are multiples of the
  // 64-byte granule, so every slot keeps fundamental alignment.
  size_t slot_bytes = (cls + 1) * kGranule;
  chunks_.push_back(std::make_unique<unsigned char[]>(slot_bytes *
                                                      kSlotsPerChunk));
  unsigned char* chunk = chunks_.back().get();
  for (size_t i = kSlotsPerChunk; i-- > 1;) {
    auto* node = reinterpret_cast<FreeNode*>(chunk + i * slot_bytes);
    node->next = free_[cls];
    free_[cls] = node;
  }
  carved_++;
  return chunk;
}

void FrameArena::Free(void* p, size_t bytes) noexcept {
  if (bytes == 0) bytes = 1;
  outstanding_--;
  if (bytes > kMaxSlabBytes) {
    ::operator delete(p);
    return;
  }
  size_t cls = (bytes - 1) / kGranule;
  auto* node = static_cast<FreeNode*>(p);
  node->next = free_[cls];
  free_[cls] = node;
}

}  // namespace elephant::sim
