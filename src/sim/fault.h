#ifndef ELEPHANT_SIM_FAULT_H_
#define ELEPHANT_SIM_FAULT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "common/units.h"
#include "sim/resources.h"
#include "sim/simulation.h"

namespace elephant::sim {

/// The fault classes the injector can schedule. Everything is a
/// virtual-time event: applying a fault never consumes wall-clock
/// randomness, so a plan replays bit-identically from its seed.
enum class FaultKind : uint8_t {
  kDiskStall,   ///< data volume admits nothing until at + duration
  kDiskError,   ///< next `count` checked I/Os on the data volume fail
  kNicOutage,   ///< NIC stalled; messages to/from the node time out
  kPartition,   ///< pairwise partition between node and peer
  kNodeCrash,   ///< process crash at `at`, restart at `at + duration`
};

const char* FaultKindName(FaultKind kind);

/// One scheduled fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kDiskStall;
  SimTime at = 0;        ///< virtual time the fault fires
  SimTime duration = 0;  ///< stall/outage/partition length, crash gap
  int node = 0;
  int peer = 0;     ///< kPartition only: the other endpoint
  int64_t count = 0;  ///< kDiskError only: number of failing I/Os
};

/// Bounds for seed-derived plan generation.
struct FaultPlanOptions {
  SimTime horizon_start = 0;          ///< no fault fires before this
  SimTime horizon = 10 * kSecond;     ///< no fault fires after this
  int num_nodes = 16;                 ///< partition/NIC/disk targets
  int num_server_nodes = 8;           ///< crash targets (nodes 0..n-1)
  int min_events = 1;
  int max_events = 6;
  SimTime min_stall = 10 * kMillisecond;
  SimTime max_stall = 400 * kMillisecond;
  SimTime min_outage = 20 * kMillisecond;
  SimTime max_outage = 300 * kMillisecond;
  SimTime min_crash_gap = 100 * kMillisecond;
  SimTime max_crash_gap = 800 * kMillisecond;
  int64_t max_error_burst = 48;
  bool disk_stalls = true;
  bool disk_errors = true;
  bool nic_outages = true;
  bool partitions = true;
  bool crashes = true;
};

/// A deterministic schedule of fault events. Either built by hand (unit
/// tests pin exact scenarios) or derived from a single seed — the chaos
/// harness's replay contract: FromSeed(s, opt) is a pure function, so
/// ELEPHANT_CHAOS_SEED=s reconstructs the identical plan anywhere.
class FaultPlan {
 public:
  static FaultPlan FromSeed(uint64_t seed, const FaultPlanOptions& options);

  uint64_t seed = 0;
  std::vector<FaultEvent> events;  ///< sorted by `at`, stable on ties

  bool empty() const { return events.empty(); }
  /// Human-readable schedule, one line per event (seed-replay triage).
  std::string Describe() const;
  /// Bit-exact digest of the schedule (replay verification).
  uint64_t Fingerprint() const;
};

/// The devices of one node a fault can touch. Null members are simply
/// skipped — a surface does not need every device.
struct NodeFaultSurface {
  Server* data_disk = nullptr;
  Server* log_disk = nullptr;
  Server* nic_tx = nullptr;
  Server* nic_rx = nullptr;
};

/// Applies a FaultPlan to a set of node surfaces in virtual time.
/// Arm() schedules one callback per event; with an empty plan it
/// schedules nothing at all, so a no-fault run's event count — and
/// therefore its determinism fingerprint — is bit-identical to a build
/// without the injector. State queries (MessageBlocked, NodeCrashed)
/// are pure reads against the virtual clock.
class FaultInjector {
 public:
  struct Hooks {
    /// Process crash / restart on a node (wired to the engines by the
    /// system under test). May be empty.
    // Cold path: invoked once per injected fault event, never on the
    // per-op hot path InlineCallback exists for.
    // elephant-lint: allow(std-function-in-sim)
    std::function<void(int node)> crash_node;
    std::function<void(int node)> restart_node;  // elephant-lint: allow(std-function-in-sim)
  };

  FaultInjector(Simulation* sim, std::vector<NodeFaultSurface> surfaces,
                FaultPlan plan, Hooks hooks = {});

  /// Schedules every event of the plan. Call once, before the run.
  void Arm();

  /// True while a partition between the two nodes, or a NIC outage on
  /// either of them, is active: a message between them would time out.
  bool MessageBlocked(int from, int to) const;
  /// True between a node's crash event and its restart.
  bool NodeCrashed(int node) const;
  /// How long a client waits before declaring a blocked message dead
  /// (charged to ops failed by MessageBlocked).
  SimTime blocked_op_delay() const { return blocked_op_delay_; }
  void set_blocked_op_delay(SimTime d) { blocked_op_delay_ = d; }

  // --- applied-fault ledger ---
  int64_t injected() const { return injected_; }
  int64_t crashes_applied() const { return crashes_applied_; }
  int64_t restarts_applied() const { return restarts_applied_; }
  /// Digest of every fault actually applied, in application order with
  /// its virtual timestamp. Two replays of one seed must match exactly.
  uint64_t InjectionFingerprint() const { return applied_fp_.value(); }

 private:
  void Apply(const FaultEvent& event);

  Simulation* sim_;
  std::vector<NodeFaultSurface> surfaces_;
  FaultPlan plan_;
  Hooks hooks_;
  SimTime blocked_op_delay_ = 50 * kMillisecond;

  struct Partition {
    int a = 0;
    int b = 0;
    SimTime until = 0;
  };
  std::vector<Partition> partitions_;   ///< includes expired entries
  std::vector<SimTime> outage_until_;   ///< per node
  std::vector<uint8_t> crashed_;        ///< per node

  int64_t injected_ = 0;
  int64_t crashes_applied_ = 0;
  int64_t restarts_applied_ = 0;
  elephant::Fingerprint applied_fp_;
};

}  // namespace elephant::sim

#endif  // ELEPHANT_SIM_FAULT_H_
