#ifndef ELEPHANT_SIM_RESOURCES_H_
#define ELEPHANT_SIM_RESOURCES_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/event_heap.h"
#include "sim/simulation.h"

namespace elephant::sim {

/// A FCFS service station with `capacity` identical servers. Requests
/// declare their service time on arrival; the awaitable completes when the
/// request finishes service (queueing delay + service time). This models
/// disks, NIC directions, CPU slots, and any other rate-limited device.
class Server {
 public:
  Server(Simulation* sim, int capacity, std::string name = "server");

  /// Awaitable: finish after waiting for a free server plus
  /// `service_time` of service.
  struct Awaiter {
    Server* server;
    SimTime service_time;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  Awaiter Acquire(SimTime service_time) { return {this, service_time}; }

  /// Awaitable variant whose completion reports a Status: OK normally,
  /// IOError when this admission consumed an injected transient-error
  /// token (see InjectTransientErrors). The failed request still
  /// occupies the device for its full service time — a failed I/O is
  /// not a fast I/O. Plain Acquire() ignores the error budget, so
  /// existing call sites are byte-for-byte unaffected.
  struct CheckedAwaiter {
    Server* server;
    SimTime service_time;
    bool failed = false;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    Status await_resume() const;
  };
  CheckedAwaiter AcquireChecked(SimTime service_time) {
    return {this, service_time, false};
  }

  /// The virtual time at which a request arriving now would complete,
  /// without enqueueing it (used by analytical models).
  SimTime PeekCompletion(SimTime service_time) const;

  // --- fault injection (driven by sim::FaultInjector) ---
  /// Device stall: admissions at or after now start no earlier than
  /// `until`. FCFS admission order is preserved — a stall delays
  /// completions but never reorders same-priority requests. Idempotent
  /// for earlier deadlines; with no stall armed this is branch-free on
  /// the admission path (stall_until_ stays 0).
  void StallUntil(SimTime until) {
    stall_until_ = std::max(stall_until_, until);
  }
  /// Arms the next `n` AcquireChecked admissions to fail with IOError.
  void InjectTransientErrors(int64_t n) { error_budget_ += n; }
  SimTime stalled_until() const { return stall_until_; }
  int64_t error_budget() const { return error_budget_; }
  int64_t errors_delivered() const { return errors_delivered_; }

  // --- statistics ---
  int64_t requests() const { return requests_; }
  int capacity() const { return capacity_; }
  SimTime busy_time() const { return busy_time_; }
  SimTime wait_time() const { return wait_time_; }
  /// Utilization in [0,1] over the window [0, now].
  double Utilization() const;
  const std::string& name() const { return name_; }

  void ResetStats();

 private:
  friend struct Awaiter;
  SimTime Admit(SimTime service_time);

  Simulation* sim_;
  int capacity_;
  std::string name_;
  /// Min-heap of times at which each busy server frees up; size <=
  /// capacity. A request takes the earliest-free server. Same 4-ary
  /// layout as the event queue (disk/NIC queues under load churn this
  /// heap once per request).
  FourAryMinHeap<SimTime> free_at_;

  int64_t requests_ = 0;
  SimTime busy_time_ = 0;
  SimTime wait_time_ = 0;
  SimTime stall_until_ = 0;
  int64_t error_budget_ = 0;
  int64_t errors_delivered_ = 0;
};

/// Rotating-disk model: sequential streaming at `seq_mbps`, random access
/// paying a positioning (seek + rotational) delay per request before
/// transferring at streaming rate. One request in service at a time
/// (queue_depth 1), matching a 10K RPM SAS drive without NCQ reordering —
/// the paper's hardware is 10 SAS 10K RPM 300 GB drives per node.
class Disk {
 public:
  struct Config {
    double seq_mbps = 100.0;      ///< sequential bandwidth, MB/s
    SimTime position_time = 8 * kMillisecond;  ///< avg seek + rotation
    int queue_depth = 1;
  };

  Disk(Simulation* sim, const Config& config, std::string name = "disk");

  /// Service time for a request of `bytes`, including positioning when
  /// not sequential.
  SimTime ServiceTime(int64_t bytes, bool sequential) const;

  Server::Awaiter Read(int64_t bytes, bool sequential) {
    bytes_read_ += bytes;
    return server_.Acquire(ServiceTime(bytes, sequential));
  }
  Server::Awaiter Write(int64_t bytes, bool sequential) {
    bytes_written_ += bytes;
    return server_.Acquire(ServiceTime(bytes, sequential));
  }

  Server& server() { return server_; }
  const Config& config() const { return config_; }
  int64_t bytes_read() const { return bytes_read_; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  Config config_;
  Server server_;
  int64_t bytes_read_ = 0;
  int64_t bytes_written_ = 0;
};

/// One direction of a full-duplex network interface: a single server
/// draining at `gbps`. A message of b bytes occupies the link for
/// b / bandwidth. A small per-message latency models switch + stack cost.
class Link {
 public:
  struct Config {
    double gbps = 1.0;                        ///< 1 GbE per the paper
    SimTime per_message_latency = 100;        ///< 100 us RPC/switch cost
  };

  Link(Simulation* sim, const Config& config, std::string name = "link");

  SimTime TransferTime(int64_t bytes) const;

  Server::Awaiter Send(int64_t bytes) {
    bytes_sent_ += bytes;
    return server_.Acquire(TransferTime(bytes));
  }

  Server& server() { return server_; }
  int64_t bytes_sent() const { return bytes_sent_; }

 private:
  Config config_;
  Server server_;
  int64_t bytes_sent_ = 0;
};

/// Readers-writer lock with exclusive writers and FIFO fairness between
/// arrival groups: a writer blocks all later readers (no reader barging
/// past a waiting writer). This is the MongoDB 1.8 per-process global
/// lock semantics the paper analyzes in workload A, and is also used by
/// the sqlkv lock manager.
class RwLock : public Waitable {
 public:
  explicit RwLock(Simulation* sim) : Waitable(sim, "RwLock"), sim_(sim) {}
  /// Frees the frames of coroutines still parked here (see ~Simulation).
  ~RwLock() override {
    for (const Waiter& w : waiters_) w.handle.destroy();
  }

  struct Awaiter {
    RwLock* lock;
    bool exclusive;
    bool await_ready() const noexcept { return lock->TryAcquire(exclusive); }
    void await_suspend(std::coroutine_handle<> h) {
      lock->waiters_.push_back({h, exclusive, lock->sim_->now()});
    }
    void await_resume() const noexcept {}
  };

  /// Suspends until the lock is granted in the requested mode.
  Awaiter AcquireShared() { return {this, false}; }
  Awaiter AcquireExclusive() { return {this, true}; }

  /// Releases one holder in the given mode and wakes eligible waiters.
  void Release(bool exclusive);

  int readers() const { return readers_; }
  bool writer_active() const { return writer_; }
  size_t queue_length() const { return waiters_.size(); }

  size_t parked_waiters() const override { return waiters_.size(); }
  std::string DescribeWaiters() const override;

  /// Cumulative time with a writer holding the lock (for the paper's
  /// "25%-45% of time spent at the global lock" analysis).
  SimTime writer_held_time() const { return writer_held_time_; }

  /// Cumulative time coroutines spent parked on this lock before being
  /// granted (both modes). The sweep harness reads this as its
  /// lock-manager wait probe; pure accounting, no modeled effect.
  SimTime total_wait_time() const { return total_wait_time_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    bool exclusive;
    SimTime enqueued_at;
  };

  bool TryAcquire(bool exclusive);
  void GrantWaiters();

  Simulation* sim_;
  int readers_ = 0;
  bool writer_ = false;
  std::deque<Waiter> waiters_;
  SimTime writer_since_ = 0;
  SimTime writer_held_time_ = 0;
  SimTime total_wait_time_ = 0;
};

}  // namespace elephant::sim

#endif  // ELEPHANT_SIM_RESOURCES_H_
