#ifndef ELEPHANT_EXEC_COMPRESS_H_
#define ELEPHANT_EXEC_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/segment.h"
#include "exec/table.h"
#include "exec/zonemap.h"

namespace elephant::exec {

/// Compressed column segments (DESIGN.md §15): each zone-map chunk of a
/// column is stored under one of four codecs, chosen per chunk by
/// encoded size. The layouts are an in-memory/spill format for this
/// process, not a portable file format (native endianness, no
/// versioning). Three invariants shape the design:
///
///  1. Round trips are bit-exact for every type — doubles are run-length
///     matched and restored by bit pattern, so NaN payloads and -0.0
///     survive compression unchanged and fingerprints cannot drift.
///  2. Chunk bounds are readable from the compressed form: FOR and
///     bit-packed chunks carry [min, max] in their header (O(1)),
///     RLE scans only its run values, and only uncompressed plain
///     chunks pay a full scan. BuildZoneMapsCompressed builds the same
///     bounds BuildZoneMaps would, without decompressing FOR/bit-packed
///     data.
///  3. Decoded chunks present themselves through the PR-7 segment
///     iterators (WithEncodedSegment), so every kernel written against
///     Int64Segment/DoubleSegment/CodeSegment runs unchanged over
///     compressed storage.
enum class Codec : uint8_t {
  kPlain = 0,    ///< raw typed array (memcpy)
  kRle = 1,      ///< [value][uint32 run-length] pairs
  kBitPack = 2,  ///< [width][min][max] header + raw values at `width` bits
  kFor = 3,      ///< [width][ref=min][max] header + (v - ref) at `width` bits
};

const char* CodecName(Codec c);

/// One encoded chunk of one column. `type` selects the decoded shape:
/// kInt -> int64, kDouble -> double (bit patterns), kString -> uint32
/// dictionary codes.
struct EncodedChunk {
  Codec codec = Codec::kPlain;
  ValueType type = ValueType::kInt;
  uint32_t rows = 0;
  std::vector<uint8_t> bytes;

  size_t EncodedBytes() const { return bytes.size(); }
};

// ---- Per-type encode/decode ----------------------------------------------
//
// The forced-codec entry points exist for the property tests and the
// codec benchmarks; EncodeWith CHECKs applicability (kBitPack/kFor need
// non-negative int64 values resp. any uint32; doubles support only
// kPlain/kRle). The *Auto variants pick the smallest encoding with a
// deterministic tie order (plain < rle < bitpack < for). Optional
// bounds hints (from zone maps) let the encoder skip its min/max scan.

EncodedChunk EncodeInt64Chunk(const int64_t* v, size_t n, Codec codec);
EncodedChunk EncodeInt64ChunkAuto(const int64_t* v, size_t n,
                                  const int64_t* hint_min = nullptr,
                                  const int64_t* hint_max = nullptr);
void DecodeInt64Chunk(const EncodedChunk& c, int64_t* out);

EncodedChunk EncodeDoubleChunk(const double* v, size_t n, Codec codec);
EncodedChunk EncodeDoubleChunkAuto(const double* v, size_t n);
void DecodeDoubleChunk(const EncodedChunk& c, double* out);

EncodedChunk EncodeCodeChunk(const uint32_t* v, size_t n, Codec codec);
EncodedChunk EncodeCodeChunkAuto(const uint32_t* v, size_t n,
                                 const uint32_t* hint_min = nullptr,
                                 const uint32_t* hint_max = nullptr);
void DecodeCodeChunk(const EncodedChunk& c, uint32_t* out);

// ---- Bounds from the compressed form -------------------------------------

/// Chunk bounds read from the encoded representation, mirroring the
/// zone-map builder exactly: numeric bounds are the widened-double
/// image and a chunk containing any NaN is poisoned to [NaN, NaN];
/// string chunks report dictionary-code intervals.
struct EncodedBounds {
  bool is_code = false;
  double min = 0;
  double max = 0;
  uint32_t code_min = 0;
  uint32_t code_max = 0;
};

EncodedBounds EncodedChunkBounds(const EncodedChunk& c);

// ---- Whole-column / whole-table compression ------------------------------

/// One column as a run of encoded chunks, chunked at the zone-map
/// granularity so chunk index k here is chunk index k in the table's
/// zone maps. `sorted_asc` and `hist` are carried over from the source
/// table's verified zone maps at compression time (the data is
/// immutable once encoded, so the verification stays valid).
struct EncodedColumn {
  ValueType type = ValueType::kInt;
  size_t rows = 0;
  size_t chunk_rows = 0;
  bool sorted_asc = false;
  ColumnHistogram hist;
  std::vector<EncodedChunk> chunks;

  size_t EncodedBytes() const;
  /// Size of the plain (uncompressed) typed array.
  size_t PlainBytes() const;
};

/// Encodes column `col` of a columnar table. Per-chunk codec choice is
/// driven by the table's zone-map statistics: the cached per-chunk
/// bounds feed the encoders as hints (no second min/max scan) and the
/// sorted flag plus histogram ride along for BuildZoneMapsCompressed.
EncodedColumn EncodeColumn(const Table& t, int col);

/// Decodes all chunks back into a plain typed vector (appended to
/// `*out`, which is cleared first).
void DecodeColumn(const EncodedColumn& col, std::vector<int64_t>* out);
void DecodeColumn(const EncodedColumn& col, std::vector<double>* out);
void DecodeColumn(const EncodedColumn& col, std::vector<uint32_t>* out);

/// A fully compressed table: schema + shared string pool + one encoded
/// column per schema column. Row data lives only in the encoded chunks.
struct CompressedTable {
  std::vector<Column> schema;
  std::shared_ptr<StringPool> pool;
  size_t rows = 0;
  std::vector<EncodedColumn> cols;

  size_t EncodedBytes() const;
  size_t PlainBytes() const;
};

/// Compresses / restores a columnar table. DecompressTable round-trips
/// bit-exactly: TableFingerprint(DecompressTable(CompressTable(t))) ==
/// TableFingerprint(t). CHECKs that `t` has a columnar form.
CompressedTable CompressTable(const Table& t);
Table DecompressTable(const CompressedTable& ct);

/// Builds zone maps from the compressed form alone — bounds come from
/// EncodedChunkBounds (headers / run values, never a FOR or bit-packed
/// payload decode), sorted flags and histograms from the metadata the
/// compressor carried over. The result is interchangeable with
/// BuildZoneMaps over the decompressed table and passes
/// ValidateZoneMaps against it.
std::shared_ptr<const ZoneMaps> BuildZoneMapsCompressed(
    const CompressedTable& ct);

// ---- Segment dispatch over encoded chunks --------------------------------

/// Reusable decode buffer; hoist one of these out of a per-chunk loop
/// so repeated WithEncodedSegment calls reuse one allocation.
struct ChunkScratch {
  std::vector<int64_t> ints;
  std::vector<double> dbls;
  std::vector<uint32_t> codes;
};

/// Decodes chunk `chunk` of `col` into `scratch` and invokes `fn` with
/// the matching plain segment (Int64Segment / DoubleSegment /
/// CodeSegment), so kernels keep a single body across plain and
/// compressed storage. `fn` receives the segment and the chunk's row
/// count; indices passed to the segment are chunk-local.
template <typename Fn>
auto WithEncodedSegment(const EncodedColumn& col, size_t chunk,
                        ChunkScratch* scratch, Fn&& fn) {
  const EncodedChunk& c = col.chunks[chunk];
  switch (c.type) {
    case ValueType::kInt:
      scratch->ints.resize(c.rows);
      DecodeInt64Chunk(c, scratch->ints.data());
      return fn(Int64Segment{scratch->ints.data()},
                static_cast<size_t>(c.rows));
    case ValueType::kDouble:
      scratch->dbls.resize(c.rows);
      DecodeDoubleChunk(c, scratch->dbls.data());
      return fn(DoubleSegment{scratch->dbls.data()},
                static_cast<size_t>(c.rows));
    case ValueType::kString:
      scratch->codes.resize(c.rows);
      DecodeCodeChunk(c, scratch->codes.data());
      return fn(CodeSegment{scratch->codes.data()},
                static_cast<size_t>(c.rows));
  }
  ELEPHANT_CHECK(false) << "unreachable chunk type";
  return fn(DoubleSegment{nullptr}, size_t{0});
}

// ---- Spill (de)serialization ---------------------------------------------

/// Flattens a chunk into one byte buffer ([codec][type][rows][payload])
/// for the segment cache; ParseChunk reverses it. Parse failures
/// (truncated or corrupt buffers) surface as Status, never as partial
/// chunks.
std::vector<uint8_t> SerializeChunk(const EncodedChunk& c);
Result<EncodedChunk> ParseChunk(const uint8_t* data, size_t size);

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_COMPRESS_H_
