#ifndef ELEPHANT_EXEC_ZONEMAP_H_
#define ELEPHANT_EXEC_ZONEMAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/statistics.h"
#include "exec/table.h"

namespace elephant::exec {

/// Zone maps (DESIGN.md §14): the columnar Table is viewed as a run of
/// fixed-size chunks, and every chunk carries per-column min/max bounds
/// — numeric columns through their widened-double image, string columns
/// as dictionary-code intervals. The fused scan planner consults the
/// bounds to skip chunks that cannot match (pruning), to emit whole
/// chunks without per-row evaluation when the bounds prove every row
/// matches, and to replace scans with binary searches on columns whose
/// ascending order was verified at build time (dbgen's clustered
/// primary keys). Maps are derived state: built on demand, cached on
/// the Table, and dropped by any mutation.

/// Per-column zone data across all chunks of a table.
struct ColumnZones {
  ValueType type = ValueType::kInt;
  /// Verified (never declared): the whole column is non-decreasing in
  /// its double image. Random-looking columns (l_shipdate!) stay false;
  /// clustered keys like l_orderkey come out true.
  bool sorted_asc = false;
  /// Per-chunk [min, max] of the double image (numeric columns only).
  std::vector<double> min;
  std::vector<double> max;
  /// Per-chunk [min, max] dictionary code (string columns only). Codes
  /// have no collation meaning, but the interval still bounds set
  /// membership: a chunk whose code interval misses every matching
  /// code cannot produce a row.
  std::vector<uint32_t> code_min;
  std::vector<uint32_t> code_max;
  /// Equal-width value histogram (numeric columns only): feeds the
  /// fused planner's selectivity ordering via EstimateRangeSelectivity.
  ColumnHistogram hist;
};

/// Zone maps for one table: shape plus per-column zones.
struct ZoneMaps {
  size_t rows = 0;
  size_t chunk_rows = 0;
  size_t num_chunks = 0;
  std::vector<ColumnZones> cols;
};

/// Chunk granularity for newly built zone maps. Default 4096 rows; the
/// setter exists so tests can force chunk-boundary edge cases
/// (single-row chunks, chunk == table, chunk > table). 0 restores the
/// default.
size_t ZoneMapChunkRows();
void SetZoneMapChunkRows(size_t rows);

/// Builds zone maps for `t` without touching the table's cache.
/// Returns nullptr for heterogeneous tables (no columnar form).
std::shared_ptr<const ZoneMaps> BuildZoneMaps(const Table& t);

/// Cached build: returns the table's zone maps, building and caching
/// them on first use. A cached instance is reused only while it still
/// describes the table (row count and chunk-size knob unchanged);
/// mutations invalidate it through Table's mutator hooks. Returns
/// nullptr for heterogeneous tables.
std::shared_ptr<const ZoneMaps> GetZoneMaps(const Table& t);

/// Consistency validator (wired into invariants_test): every chunk's
/// min/max must actually bound the chunk's contents, sorted flags must
/// match the data, and the shape fields must agree with the table.
/// Returns the first violation found, or OK.
Status ValidateZoneMaps(const Table& t, const ZoneMaps& zm);

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_ZONEMAP_H_
