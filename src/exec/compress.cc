#include "exec/compress.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/string_util.h"

namespace elephant::exec {

namespace {

// ---- Bit-granular packing ------------------------------------------------
//
// Little-endian bit stream: value bits are appended lowest-first, bytes
// are emitted as they fill. Widths up to 64 are split into two <= 32
// bit halves so the 64-bit accumulator never overflows (nbits stays
// below 8 between calls, 8 + 32 < 64).

struct BitWriter {
  std::vector<uint8_t>* out;
  uint64_t acc = 0;
  unsigned nbits = 0;

  void Put32(uint32_t v, unsigned w) {
    if (w == 0) return;
    uint64_t masked = w >= 32 ? v : (v & ((1u << w) - 1u));
    acc |= masked << nbits;
    nbits += w;
    while (nbits >= 8) {
      out->push_back(static_cast<uint8_t>(acc));
      acc >>= 8;
      nbits -= 8;
    }
  }
  void Put(uint64_t v, unsigned w) {
    if (w > 32) {
      Put32(static_cast<uint32_t>(v), 32);
      Put32(static_cast<uint32_t>(v >> 32), w - 32);
    } else {
      Put32(static_cast<uint32_t>(v), w);
    }
  }
  void Flush() {
    if (nbits > 0) {
      out->push_back(static_cast<uint8_t>(acc));
      acc = 0;
      nbits = 0;
    }
  }
};

struct BitReader {
  const uint8_t* p;

  uint64_t acc = 0;
  unsigned nbits = 0;

  uint32_t Get32(unsigned w) {
    if (w == 0) return 0;
    while (nbits < w) {
      acc |= static_cast<uint64_t>(*p++) << nbits;
      nbits += 8;
    }
    uint32_t v = static_cast<uint32_t>(
        acc & (w >= 32 ? 0xFFFFFFFFull : ((1ull << w) - 1)));
    acc >>= w;
    nbits -= w;
    return v;
  }
  uint64_t Get(unsigned w) {
    if (w > 32) {
      uint64_t lo = Get32(32);
      uint64_t hi = Get32(w - 32);
      return lo | (hi << 32);
    }
    return Get32(w);
  }
};

unsigned BitWidth(uint64_t x) {
  unsigned w = 0;
  while (x != 0) {
    ++w;
    x >>= 1;
  }
  return w;
}

size_t PackedBytes(size_t n, unsigned width) {
  return (n * width + 7) / 8;
}

// Fixed-size little-endian scalar append/read; the format is process-
// local so native byte order is assumed (the whole repo targets one
// architecture per run).
template <typename T>
void AppendRaw(std::vector<uint8_t>* out, T v) {
  const auto* b = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof(T));
}

template <typename T>
T ReadRaw(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

/// Counts maximal equal-value runs; doubles are compared by bit
/// pattern at the call sites (via uint64 images), so NaNs form runs
/// and round-trip exactly.
template <typename T>
size_t CountRuns(const T* v, size_t n) {
  size_t runs = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || !(v[i] == v[i - 1])) ++runs;
  }
  return runs;
}

// ---- int64 ---------------------------------------------------------------

struct Int64Stats {
  int64_t min = 0;
  int64_t max = 0;
  size_t runs = 0;
};

Int64Stats ScanInt64(const int64_t* v, size_t n, const int64_t* hint_min,
                     const int64_t* hint_max) {
  Int64Stats s;
  s.runs = CountRuns(v, n);
  if (n == 0) return s;
  if (hint_min != nullptr && hint_max != nullptr) {
    s.min = *hint_min;
    s.max = *hint_max;
    return s;
  }
  s.min = s.max = v[0];
  for (size_t i = 1; i < n; ++i) {
    s.min = std::min(s.min, v[i]);
    s.max = std::max(s.max, v[i]);
  }
  return s;
}

EncodedChunk EncodeInt64With(const int64_t* v, size_t n, Codec codec,
                             const Int64Stats& s) {
  EncodedChunk c;
  c.codec = codec;
  c.type = ValueType::kInt;
  c.rows = static_cast<uint32_t>(n);
  switch (codec) {
    case Codec::kPlain:
      c.bytes.resize(n * sizeof(int64_t));
      std::memcpy(c.bytes.data(), v, c.bytes.size());
      break;
    case Codec::kRle:
      for (size_t i = 0; i < n;) {
        size_t j = i + 1;
        while (j < n && v[j] == v[i]) ++j;
        AppendRaw(&c.bytes, v[i]);
        AppendRaw(&c.bytes, static_cast<uint32_t>(j - i));
        i = j;
      }
      break;
    case Codec::kBitPack: {
      ELEPHANT_CHECK(n == 0 || s.min >= 0)
          << "bit packing stores raw magnitudes; negative values need kFor";
      unsigned w = n == 0 ? 0 : BitWidth(static_cast<uint64_t>(s.max));
      c.bytes.push_back(static_cast<uint8_t>(w));
      AppendRaw(&c.bytes, s.min);
      AppendRaw(&c.bytes, s.max);
      BitWriter bw{&c.bytes};
      for (size_t i = 0; i < n; ++i) {
        bw.Put(static_cast<uint64_t>(v[i]), w);
      }
      bw.Flush();
      break;
    }
    case Codec::kFor: {
      // Deltas in uint64 space: two's-complement subtraction makes
      // (max - min) well defined even across the int64 sign boundary.
      uint64_t range = n == 0 ? 0
                             : static_cast<uint64_t>(s.max) -
                                   static_cast<uint64_t>(s.min);
      unsigned w = BitWidth(range);
      c.bytes.push_back(static_cast<uint8_t>(w));
      AppendRaw(&c.bytes, s.min);
      AppendRaw(&c.bytes, s.max);
      BitWriter bw{&c.bytes};
      for (size_t i = 0; i < n; ++i) {
        bw.Put(static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(s.min), w);
      }
      bw.Flush();
      break;
    }
  }
  return c;
}

// ---- uint32 (dictionary codes) -------------------------------------------

struct CodeStats {
  uint32_t min = 0;
  uint32_t max = 0;
  size_t runs = 0;
};

CodeStats ScanCodes(const uint32_t* v, size_t n, const uint32_t* hint_min,
                    const uint32_t* hint_max) {
  CodeStats s;
  s.runs = CountRuns(v, n);
  if (n == 0) return s;
  if (hint_min != nullptr && hint_max != nullptr) {
    s.min = *hint_min;
    s.max = *hint_max;
    return s;
  }
  s.min = s.max = v[0];
  for (size_t i = 1; i < n; ++i) {
    s.min = std::min(s.min, v[i]);
    s.max = std::max(s.max, v[i]);
  }
  return s;
}

EncodedChunk EncodeCodeWith(const uint32_t* v, size_t n, Codec codec,
                            const CodeStats& s) {
  EncodedChunk c;
  c.codec = codec;
  c.type = ValueType::kString;
  c.rows = static_cast<uint32_t>(n);
  switch (codec) {
    case Codec::kPlain:
      c.bytes.resize(n * sizeof(uint32_t));
      std::memcpy(c.bytes.data(), v, c.bytes.size());
      break;
    case Codec::kRle:
      for (size_t i = 0; i < n;) {
        size_t j = i + 1;
        while (j < n && v[j] == v[i]) ++j;
        AppendRaw(&c.bytes, v[i]);
        AppendRaw(&c.bytes, static_cast<uint32_t>(j - i));
        i = j;
      }
      break;
    case Codec::kBitPack: {
      unsigned w = n == 0 ? 0 : BitWidth(s.max);
      c.bytes.push_back(static_cast<uint8_t>(w));
      AppendRaw(&c.bytes, s.min);
      AppendRaw(&c.bytes, s.max);
      BitWriter bw{&c.bytes};
      for (size_t i = 0; i < n; ++i) bw.Put32(v[i], w);
      bw.Flush();
      break;
    }
    case Codec::kFor: {
      unsigned w = n == 0 ? 0 : BitWidth(s.max - s.min);
      c.bytes.push_back(static_cast<uint8_t>(w));
      AppendRaw(&c.bytes, s.min);
      AppendRaw(&c.bytes, s.max);
      BitWriter bw{&c.bytes};
      for (size_t i = 0; i < n; ++i) bw.Put32(v[i] - s.min, w);
      bw.Flush();
      break;
    }
  }
  return c;
}

constexpr size_t kWidthHeaderI64 = 1 + 2 * sizeof(int64_t);
constexpr size_t kWidthHeaderU32 = 1 + 2 * sizeof(uint32_t);

}  // namespace

const char* CodecName(Codec c) {
  switch (c) {
    case Codec::kPlain:
      return "plain";
    case Codec::kRle:
      return "rle";
    case Codec::kBitPack:
      return "bitpack";
    case Codec::kFor:
      return "for";
  }
  return "?";
}

EncodedChunk EncodeInt64Chunk(const int64_t* v, size_t n, Codec codec) {
  return EncodeInt64With(v, n, codec, ScanInt64(v, n, nullptr, nullptr));
}

EncodedChunk EncodeInt64ChunkAuto(const int64_t* v, size_t n,
                                  const int64_t* hint_min,
                                  const int64_t* hint_max) {
  if (n == 0) return EncodeInt64With(v, n, Codec::kPlain, {});
  Int64Stats s = ScanInt64(v, n, hint_min, hint_max);
  uint64_t range =
      static_cast<uint64_t>(s.max) - static_cast<uint64_t>(s.min);
  size_t plain = n * sizeof(int64_t);
  size_t rle = s.runs * (sizeof(int64_t) + sizeof(uint32_t));
  size_t forb = kWidthHeaderI64 + PackedBytes(n, BitWidth(range));
  size_t best = plain;
  Codec codec = Codec::kPlain;
  if (rle < best) {
    best = rle;
    codec = Codec::kRle;
  }
  if (s.min >= 0) {
    size_t packed = kWidthHeaderI64 +
                    PackedBytes(n, BitWidth(static_cast<uint64_t>(s.max)));
    if (packed < best) {
      best = packed;
      codec = Codec::kBitPack;
    }
  }
  if (forb < best) {
    codec = Codec::kFor;
  }
  return EncodeInt64With(v, n, codec, s);
}

void DecodeInt64Chunk(const EncodedChunk& c, int64_t* out) {
  ELEPHANT_CHECK(c.type == ValueType::kInt) << "not an int64 chunk";
  size_t n = c.rows;
  switch (c.codec) {
    case Codec::kPlain:
      std::memcpy(out, c.bytes.data(), n * sizeof(int64_t));
      break;
    case Codec::kRle: {
      const uint8_t* p = c.bytes.data();
      size_t i = 0;
      while (i < n) {
        int64_t v = ReadRaw<int64_t>(p);
        uint32_t run = ReadRaw<uint32_t>(p + sizeof(int64_t));
        p += sizeof(int64_t) + sizeof(uint32_t);
        for (uint32_t k = 0; k < run; ++k) out[i++] = v;
      }
      break;
    }
    case Codec::kBitPack: {
      unsigned w = c.bytes[0];
      BitReader br{c.bytes.data() + kWidthHeaderI64};
      for (size_t i = 0; i < n; ++i) {
        out[i] = static_cast<int64_t>(br.Get(w));
      }
      break;
    }
    case Codec::kFor: {
      unsigned w = c.bytes[0];
      int64_t ref = ReadRaw<int64_t>(c.bytes.data() + 1);
      BitReader br{c.bytes.data() + kWidthHeaderI64};
      for (size_t i = 0; i < n; ++i) {
        out[i] = static_cast<int64_t>(static_cast<uint64_t>(ref) + br.Get(w));
      }
      break;
    }
  }
}

EncodedChunk EncodeDoubleChunk(const double* v, size_t n, Codec codec) {
  ELEPHANT_CHECK(codec == Codec::kPlain || codec == Codec::kRle)
      << "doubles support plain and RLE only";
  EncodedChunk c;
  c.codec = codec;
  c.type = ValueType::kDouble;
  c.rows = static_cast<uint32_t>(n);
  if (codec == Codec::kPlain) {
    c.bytes.resize(n * sizeof(double));
    std::memcpy(c.bytes.data(), v, c.bytes.size());
    return c;
  }
  // Runs by bit pattern: NaN == NaN under memcmp semantics, so NaN
  // stretches compress and every payload bit round-trips.
  for (size_t i = 0; i < n;) {
    uint64_t bits;
    std::memcpy(&bits, &v[i], sizeof(bits));
    size_t j = i + 1;
    while (j < n) {
      uint64_t jb;
      std::memcpy(&jb, &v[j], sizeof(jb));
      if (jb != bits) break;
      ++j;
    }
    AppendRaw(&c.bytes, bits);
    AppendRaw(&c.bytes, static_cast<uint32_t>(j - i));
    i = j;
  }
  return c;
}

EncodedChunk EncodeDoubleChunkAuto(const double* v, size_t n) {
  if (n == 0) return EncodeDoubleChunk(v, n, Codec::kPlain);
  size_t runs = 0;
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &v[i], sizeof(bits));
    if (i == 0 || bits != prev) ++runs;
    prev = bits;
  }
  size_t plain = n * sizeof(double);
  size_t rle = runs * (sizeof(uint64_t) + sizeof(uint32_t));
  return EncodeDoubleChunk(v, n, rle < plain ? Codec::kRle : Codec::kPlain);
}

void DecodeDoubleChunk(const EncodedChunk& c, double* out) {
  ELEPHANT_CHECK(c.type == ValueType::kDouble) << "not a double chunk";
  size_t n = c.rows;
  if (c.codec == Codec::kPlain) {
    std::memcpy(out, c.bytes.data(), n * sizeof(double));
    return;
  }
  ELEPHANT_CHECK(c.codec == Codec::kRle) << "bad double codec";
  const uint8_t* p = c.bytes.data();
  size_t i = 0;
  while (i < n) {
    uint64_t bits = ReadRaw<uint64_t>(p);
    uint32_t run = ReadRaw<uint32_t>(p + sizeof(uint64_t));
    p += sizeof(uint64_t) + sizeof(uint32_t);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    for (uint32_t k = 0; k < run; ++k) out[i++] = v;
  }
}

EncodedChunk EncodeCodeChunk(const uint32_t* v, size_t n, Codec codec) {
  return EncodeCodeWith(v, n, codec, ScanCodes(v, n, nullptr, nullptr));
}

EncodedChunk EncodeCodeChunkAuto(const uint32_t* v, size_t n,
                                 const uint32_t* hint_min,
                                 const uint32_t* hint_max) {
  if (n == 0) return EncodeCodeWith(v, n, Codec::kPlain, {});
  CodeStats s = ScanCodes(v, n, hint_min, hint_max);
  size_t plain = n * sizeof(uint32_t);
  size_t rle = s.runs * 2 * sizeof(uint32_t);
  size_t packed = kWidthHeaderU32 + PackedBytes(n, BitWidth(s.max));
  size_t forb = kWidthHeaderU32 + PackedBytes(n, BitWidth(s.max - s.min));
  size_t best = plain;
  Codec codec = Codec::kPlain;
  if (rle < best) {
    best = rle;
    codec = Codec::kRle;
  }
  if (packed < best) {
    best = packed;
    codec = Codec::kBitPack;
  }
  if (forb < best) {
    codec = Codec::kFor;
  }
  return EncodeCodeWith(v, n, codec, s);
}

void DecodeCodeChunk(const EncodedChunk& c, uint32_t* out) {
  ELEPHANT_CHECK(c.type == ValueType::kString) << "not a code chunk";
  size_t n = c.rows;
  switch (c.codec) {
    case Codec::kPlain:
      std::memcpy(out, c.bytes.data(), n * sizeof(uint32_t));
      break;
    case Codec::kRle: {
      const uint8_t* p = c.bytes.data();
      size_t i = 0;
      while (i < n) {
        uint32_t v = ReadRaw<uint32_t>(p);
        uint32_t run = ReadRaw<uint32_t>(p + sizeof(uint32_t));
        p += 2 * sizeof(uint32_t);
        for (uint32_t k = 0; k < run; ++k) out[i++] = v;
      }
      break;
    }
    case Codec::kBitPack: {
      unsigned w = c.bytes[0];
      BitReader br{c.bytes.data() + kWidthHeaderU32};
      for (size_t i = 0; i < n; ++i) out[i] = br.Get32(w);
      break;
    }
    case Codec::kFor: {
      unsigned w = c.bytes[0];
      uint32_t ref = ReadRaw<uint32_t>(c.bytes.data() + 1);
      BitReader br{c.bytes.data() + kWidthHeaderU32};
      for (size_t i = 0; i < n; ++i) out[i] = ref + br.Get32(w);
      break;
    }
  }
}

EncodedBounds EncodedChunkBounds(const EncodedChunk& c) {
  EncodedBounds b;
  size_t n = c.rows;
  switch (c.type) {
    case ValueType::kInt: {
      if (c.codec == Codec::kBitPack || c.codec == Codec::kFor) {
        b.min = static_cast<double>(ReadRaw<int64_t>(c.bytes.data() + 1));
        b.max = static_cast<double>(
            ReadRaw<int64_t>(c.bytes.data() + 1 + sizeof(int64_t)));
        return b;
      }
      // Plain scans every value; RLE scans one value per run.
      int64_t mn = 0;
      int64_t mx = 0;
      bool first = true;
      auto fold = [&](int64_t v) {
        if (first) {
          mn = mx = v;
          first = false;
        } else {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
      };
      if (c.codec == Codec::kPlain) {
        const uint8_t* p = c.bytes.data();
        for (size_t i = 0; i < n; ++i) {
          fold(ReadRaw<int64_t>(p + i * sizeof(int64_t)));
        }
      } else {
        const uint8_t* p = c.bytes.data();
        size_t seen = 0;
        while (seen < n) {
          fold(ReadRaw<int64_t>(p));
          seen += ReadRaw<uint32_t>(p + sizeof(int64_t));
          p += sizeof(int64_t) + sizeof(uint32_t);
        }
      }
      b.min = static_cast<double>(mn);
      b.max = static_cast<double>(mx);
      return b;
    }
    case ValueType::kDouble: {
      // Mirrors the zone-map builder: any NaN poisons the chunk.
      double mn = 0;
      double mx = 0;
      bool first = true;
      bool has_nan = false;
      auto fold = [&](double v) {
        if (v != v) has_nan = true;
        if (first) {
          mn = mx = v;
          first = false;
        } else {
          if (v < mn) mn = v;
          if (v > mx) mx = v;
        }
      };
      const uint8_t* p = c.bytes.data();
      if (c.codec == Codec::kPlain) {
        for (size_t i = 0; i < n; ++i) {
          fold(ReadRaw<double>(p + i * sizeof(double)));
        }
      } else {
        size_t seen = 0;
        while (seen < n) {
          uint64_t bits = ReadRaw<uint64_t>(p);
          double v;
          std::memcpy(&v, &bits, sizeof(v));
          fold(v);
          seen += ReadRaw<uint32_t>(p + sizeof(uint64_t));
          p += sizeof(uint64_t) + sizeof(uint32_t);
        }
      }
      if (has_nan) {
        mn = mx = std::numeric_limits<double>::quiet_NaN();
      }
      b.min = mn;
      b.max = mx;
      return b;
    }
    case ValueType::kString: {
      b.is_code = true;
      if (c.codec == Codec::kBitPack || c.codec == Codec::kFor) {
        b.code_min = ReadRaw<uint32_t>(c.bytes.data() + 1);
        b.code_max =
            ReadRaw<uint32_t>(c.bytes.data() + 1 + sizeof(uint32_t));
        return b;
      }
      uint32_t mn = 0;
      uint32_t mx = 0;
      bool first = true;
      auto fold = [&](uint32_t v) {
        if (first) {
          mn = mx = v;
          first = false;
        } else {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
      };
      const uint8_t* p = c.bytes.data();
      if (c.codec == Codec::kPlain) {
        for (size_t i = 0; i < n; ++i) {
          fold(ReadRaw<uint32_t>(p + i * sizeof(uint32_t)));
        }
      } else {
        size_t seen = 0;
        while (seen < n) {
          fold(ReadRaw<uint32_t>(p));
          seen += ReadRaw<uint32_t>(p + sizeof(uint32_t));
          p += 2 * sizeof(uint32_t);
        }
      }
      b.code_min = mn;
      b.code_max = mx;
      return b;
    }
  }
  ELEPHANT_CHECK(false) << "unreachable chunk type";
  return b;
}

size_t EncodedColumn::EncodedBytes() const {
  size_t total = 0;
  for (const EncodedChunk& c : chunks) total += c.bytes.size();
  return total;
}

size_t EncodedColumn::PlainBytes() const {
  size_t width = type == ValueType::kString ? sizeof(uint32_t)
                                            : sizeof(int64_t);
  return rows * width;
}

EncodedColumn EncodeColumn(const Table& t, int col) {
  ELEPHANT_CHECK(t.EnsureColumnar()) << "EncodeColumn needs columnar input";
  std::shared_ptr<const ZoneMaps> zm = GetZoneMaps(t);
  EncodedColumn out;
  out.type = t.columns()[col].type;
  out.rows = t.num_rows();
  out.chunk_rows = zm != nullptr ? zm->chunk_rows : ZoneMapChunkRows();
  const ColumnZones* cz =
      zm != nullptr ? &zm->cols[static_cast<size_t>(col)] : nullptr;
  if (cz != nullptr) {
    out.sorted_asc = cz->sorted_asc;
    out.hist = cz->hist;
  }
  size_t n = out.rows;
  size_t nchunks = n == 0 ? 0 : (n + out.chunk_rows - 1) / out.chunk_rows;
  out.chunks.reserve(nchunks);
  for (size_t chunk = 0; chunk < nchunks; ++chunk) {
    size_t lo = chunk * out.chunk_rows;
    size_t rows = std::min(n, lo + out.chunk_rows) - lo;
    switch (out.type) {
      case ValueType::kInt: {
        const int64_t* v = t.IntData(col).data() + lo;
        // Zone bounds are the exact integer min/max through the double
        // image (|int64| < 2^53 for every modeled column), so the
        // encoder skips its own bounds scan; NaN-free by construction.
        if (cz != nullptr && cz->min[chunk] == cz->min[chunk]) {
          int64_t mn = static_cast<int64_t>(cz->min[chunk]);
          int64_t mx = static_cast<int64_t>(cz->max[chunk]);
          out.chunks.push_back(EncodeInt64ChunkAuto(v, rows, &mn, &mx));
        } else {
          out.chunks.push_back(EncodeInt64ChunkAuto(v, rows));
        }
        break;
      }
      case ValueType::kDouble:
        out.chunks.push_back(
            EncodeDoubleChunkAuto(t.DoubleData(col).data() + lo, rows));
        break;
      case ValueType::kString: {
        const uint32_t* v = t.StrCodes(col).data() + lo;
        if (cz != nullptr) {
          out.chunks.push_back(EncodeCodeChunkAuto(
              v, rows, &cz->code_min[chunk], &cz->code_max[chunk]));
        } else {
          out.chunks.push_back(EncodeCodeChunkAuto(v, rows));
        }
        break;
      }
    }
  }
  return out;
}

namespace {

template <typename T>
void DecodeColumnInto(const EncodedColumn& col, std::vector<T>* out,
                      void (*decode)(const EncodedChunk&, T*)) {
  out->clear();
  out->resize(col.rows);
  size_t off = 0;
  for (const EncodedChunk& c : col.chunks) {
    decode(c, out->data() + off);
    off += c.rows;
  }
  ELEPHANT_CHECK(off == col.rows) << "encoded chunk rows disagree with column";
}

}  // namespace

void DecodeColumn(const EncodedColumn& col, std::vector<int64_t>* out) {
  ELEPHANT_CHECK(col.type == ValueType::kInt) << "type mismatch";
  DecodeColumnInto(col, out, &DecodeInt64Chunk);
}

void DecodeColumn(const EncodedColumn& col, std::vector<double>* out) {
  ELEPHANT_CHECK(col.type == ValueType::kDouble) << "type mismatch";
  DecodeColumnInto(col, out, &DecodeDoubleChunk);
}

void DecodeColumn(const EncodedColumn& col, std::vector<uint32_t>* out) {
  ELEPHANT_CHECK(col.type == ValueType::kString) << "type mismatch";
  DecodeColumnInto(col, out, &DecodeCodeChunk);
}

size_t CompressedTable::EncodedBytes() const {
  size_t total = 0;
  for (const EncodedColumn& c : cols) total += c.EncodedBytes();
  return total;
}

size_t CompressedTable::PlainBytes() const {
  size_t total = 0;
  for (const EncodedColumn& c : cols) total += c.PlainBytes();
  return total;
}

CompressedTable CompressTable(const Table& t) {
  ELEPHANT_CHECK(t.EnsureColumnar()) << "CompressTable needs columnar input";
  CompressedTable ct;
  ct.schema = t.columns();
  ct.pool = t.pool_ptr();
  ct.rows = t.num_rows();
  ct.cols.reserve(ct.schema.size());
  for (int c = 0; c < t.num_cols(); ++c) {
    ct.cols.push_back(EncodeColumn(t, c));
  }
  return ct;
}

Table DecompressTable(const CompressedTable& ct) {
  // The pool is shared, not copied: codes decode to the same strings.
  Table out(ct.schema, ct.pool);
  out.ResizeColumnar(ct.rows);
  for (int c = 0; c < static_cast<int>(ct.cols.size()); ++c) {
    const EncodedColumn& col = ct.cols[static_cast<size_t>(c)];
    size_t off = 0;
    switch (col.type) {
      case ValueType::kInt:
        for (const EncodedChunk& chunk : col.chunks) {
          DecodeInt64Chunk(chunk, out.MutableCol(c).ints().data() + off);
          off += chunk.rows;
        }
        break;
      case ValueType::kDouble:
        for (const EncodedChunk& chunk : col.chunks) {
          DecodeDoubleChunk(chunk, out.MutableCol(c).doubles().data() + off);
          off += chunk.rows;
        }
        break;
      case ValueType::kString:
        for (const EncodedChunk& chunk : col.chunks) {
          DecodeCodeChunk(chunk, out.MutableCol(c).codes().data() + off);
          off += chunk.rows;
        }
        break;
    }
  }
  return out;
}

std::shared_ptr<const ZoneMaps> BuildZoneMapsCompressed(
    const CompressedTable& ct) {
  auto zm = std::make_shared<ZoneMaps>();
  zm->rows = ct.rows;
  zm->chunk_rows =
      ct.cols.empty() ? ZoneMapChunkRows() : ct.cols[0].chunk_rows;
  zm->num_chunks =
      ct.rows == 0 ? 0 : (ct.rows + zm->chunk_rows - 1) / zm->chunk_rows;
  zm->cols.resize(ct.cols.size());
  for (size_t c = 0; c < ct.cols.size(); ++c) {
    const EncodedColumn& col = ct.cols[c];
    ColumnZones& cz = zm->cols[c];
    cz.type = col.type;
    cz.sorted_asc = col.sorted_asc;
    cz.hist = col.hist;
    for (const EncodedChunk& chunk : col.chunks) {
      EncodedBounds b = EncodedChunkBounds(chunk);
      if (b.is_code) {
        cz.code_min.push_back(b.code_min);
        cz.code_max.push_back(b.code_max);
      } else {
        cz.min.push_back(b.min);
        cz.max.push_back(b.max);
      }
    }
  }
  return zm;
}

std::vector<uint8_t> SerializeChunk(const EncodedChunk& c) {
  std::vector<uint8_t> out;
  out.reserve(2 + sizeof(uint32_t) + c.bytes.size());
  out.push_back(static_cast<uint8_t>(c.codec));
  out.push_back(static_cast<uint8_t>(c.type));
  AppendRaw(&out, c.rows);
  out.insert(out.end(), c.bytes.begin(), c.bytes.end());
  return out;
}

Result<EncodedChunk> ParseChunk(const uint8_t* data, size_t size) {
  constexpr size_t kHeader = 2 + sizeof(uint32_t);
  if (size < kHeader) {
    return Status::IOError(
        StrFormat("encoded chunk truncated: %zu bytes", size));
  }
  if (data[0] > static_cast<uint8_t>(Codec::kFor)) {
    return Status::IOError(
        StrFormat("unknown codec byte %u", unsigned{data[0]}));
  }
  if (data[1] > static_cast<uint8_t>(ValueType::kString)) {
    return Status::IOError(
        StrFormat("unknown chunk type byte %u", unsigned{data[1]}));
  }
  EncodedChunk c;
  c.codec = static_cast<Codec>(data[0]);
  c.type = static_cast<ValueType>(data[1]);
  c.rows = ReadRaw<uint32_t>(data + 2);
  c.bytes.assign(data + kHeader, data + size);

  // The payload length is fully determined by (codec, type, rows) —
  // plus the width byte for packed codecs and the run lengths for RLE —
  // so a truncated or padded buffer is detectable without decoding.
  size_t elem = c.type == ValueType::kString ? sizeof(uint32_t)
                                             : sizeof(int64_t);
  size_t expect = 0;
  bool sized = true;
  switch (c.codec) {
    case Codec::kPlain:
      expect = c.rows * elem;
      break;
    case Codec::kRle: {
      size_t pair = elem + sizeof(uint32_t);
      if (c.bytes.size() % pair != 0) {
        return Status::IOError(
            StrFormat("RLE payload of %zu bytes is not a whole number of "
                      "%zu-byte runs",
                      c.bytes.size(), pair));
      }
      uint64_t total = 0;
      for (size_t off = 0; off < c.bytes.size(); off += pair) {
        total += ReadRaw<uint32_t>(c.bytes.data() + off + elem);
      }
      if (total != c.rows) {
        return Status::IOError(
            StrFormat("RLE run lengths cover %llu rows, header says %u",
                      static_cast<unsigned long long>(total), c.rows));
      }
      expect = c.bytes.size();
      break;
    }
    case Codec::kBitPack:
    case Codec::kFor: {
      size_t header = c.type == ValueType::kString ? kWidthHeaderU32
                                                   : kWidthHeaderI64;
      if (c.bytes.size() < header) {
        return Status::IOError(
            StrFormat("packed chunk header truncated: %zu bytes",
                      c.bytes.size()));
      }
      unsigned width = c.bytes[0];
      unsigned max_width = c.type == ValueType::kString ? 32 : 64;
      if (width > max_width) {
        return Status::IOError(StrFormat("packed width %u exceeds %u bits",
                                         width, max_width));
      }
      expect = header + PackedBytes(c.rows, width);
      break;
    }
    default:
      sized = false;
      break;
  }
  if (sized && c.bytes.size() != expect) {
    return Status::IOError(
        StrFormat("encoded chunk payload is %zu bytes, expected %zu",
                  c.bytes.size(), expect));
  }
  return c;
}

}  // namespace elephant::exec
