#ifndef ELEPHANT_EXEC_OPERATORS_H_
#define ELEPHANT_EXEC_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "exec/table.h"

namespace elephant::exec {

// ---- Parallelism knobs --------------------------------------------------
//
// Operators run serially by default (threads == 1, the oracle path).
// With more threads they fan morsels of rows out to the process-wide
// TaskPool, but every parallel path is bit-identical to the serial one:
// morsel decomposition never depends on the thread count, per-morsel
// outputs are concatenated in morsel order, and aggregate groups are
// owned by exactly one hash partition and accumulated in global row
// order (so floating-point rounding matches serial exactly).

/// Sets the operator thread count. `n <= 0` resets to the
/// ELEPHANT_THREADS environment default; `1` forces the serial path.
void SetExecThreads(int n);
/// Current operator thread count (>= 1).
int ExecThreads();

/// Sets the morsel (row-chunk) size used by parallel operators.
void SetExecMorselSize(size_t rows);
size_t ExecMorselSize();

/// Forces every operator that has both a columnar kernel and a row-path
/// twin onto the row path. For tests (columnar-vs-row equality) and for
/// benchmarking the row-major baseline; never needed in normal use.
void SetExecForceRowPath(bool force);
bool ExecForceRowPath();

/// Row predicate.
using Predicate = std::function<bool(const Row&)>;
/// Row-index predicate for the columnar kernels: the callable captures
/// typed column spans (IntData/DoubleData/StrCodes) and answers for the
/// row index, so filtering never materializes a Row.
using IndexPredicate = std::function<bool(size_t)>;
/// Scalar expression over a row.
using Expr = std::function<Value(const Row&)>;

/// A named, typed output expression for Project.
struct NamedExpr {
  std::string name;
  ValueType type;
  Expr fn;
};

/// One output column of ProjectColumns: either a copy of an input column
/// (`source >= 0`, possibly renamed) or a computed column filled by the
/// typed generator matching `type`. Build with the factory helpers.
struct ColumnExpr {
  std::string name;
  ValueType type = ValueType::kInt;
  int source = -1;
  std::function<int64_t(size_t)> int_fn;
  std::function<double(size_t)> double_fn;
  std::function<std::string(size_t)> str_fn;
};

/// Copy of input column `name` (same name / renamed to `out_name`).
ColumnExpr CopyCol(const Table& t, const std::string& name);
ColumnExpr CopyColAs(const Table& t, const std::string& name,
                     std::string out_name);
/// Computed columns (typed generators over the row index).
ColumnExpr IntExprCol(std::string name, std::function<int64_t(size_t)> fn);
ColumnExpr DoubleExprCol(std::string name, std::function<double(size_t)> fn);
ColumnExpr StrExprCol(std::string name, std::function<std::string(size_t)> fn);

/// Returns the rows of `t` satisfying `pred`. Schema unchanged.
Table Filter(const Table& t, const Predicate& pred);
/// Destructive overload: may steal from `t` instead of copying.
Table Filter(Table&& t, const Predicate& pred);
/// Columnar filter: evaluates the index predicate into a selection
/// vector and compacts every column in one typed gather pass. Output
/// shares the input's string pool (codes are copied, never re-interned).
Table Filter(const Table& t, const IndexPredicate& pred);
Table Filter(Table&& t, const IndexPredicate& pred);

/// Evaluates an index predicate into an ascending selection vector
/// (the parallel path fills per-morsel slots and concatenates them in
/// morsel order, reproducing the serial scan order exactly). The
/// building block the fused scan layer shares with Filter.
std::vector<uint32_t> EvalSelection(size_t n, const IndexPredicate& pred);

/// Materializes the rows of `t` named by the ascending selection
/// vector as a new table, one typed compaction pass per column. Output
/// shares the input's string pool. Bridge from a fused selection back
/// to a materialized Table when a downstream operator needs one.
Table GatherSelection(const Table& t, const std::vector<uint32_t>& sel);

/// Evaluates `exprs` per row; output schema is exactly the expr list.
Table Project(const Table& t, const std::vector<NamedExpr>& exprs);

/// Columnar projection: copied columns are spliced wholesale (string
/// columns by dictionary code), computed columns are filled by tight
/// typed loops.
Table ProjectColumns(const Table& t, const std::vector<ColumnExpr>& exprs);

enum class JoinType {
  kInner,
  kLeftOuter,  ///< unmatched left rows padded with type-default values
  kLeftSemi,   ///< left rows with >=1 match; left schema only
  kLeftAnti,   ///< left rows with no match; left schema only
};

/// Hash join on equality of the given key columns (build on right, probe
/// with left). Inner/outer output schema is left columns followed by
/// right columns; a right column whose name collides gets a "_r" suffix.
Table HashJoin(const Table& left, const Table& right,
               const std::vector<int>& left_keys,
               const std::vector<int>& right_keys,
               JoinType type = JoinType::kInner);

/// Convenience overload joining on column names.
Table HashJoinOn(const Table& left, const Table& right,
                 const std::vector<std::string>& left_keys,
                 const std::vector<std::string>& right_keys,
                 JoinType type = JoinType::kInner);

/// Inner equi-join by sorting both inputs on the key and merging.
/// Produces the same multiset of rows as the inner HashJoin (property
/// tests pin this); used when inputs are already ordered or when hash
/// memory is the concern.
Table SortMergeJoin(const Table& left, const Table& right, int left_key,
                    int right_key);

/// Inner join with an arbitrary predicate over the concatenated row —
/// the fallback for non-equi joins. O(|left| x |right|).
Table NestedLoopJoin(const Table& left, const Table& right,
                     const std::function<bool(const Row&)>& pred);

enum class AggKind { kSum, kAvg, kMin, kMax, kCount, kCountDistinct };

/// One aggregate output: `kind` applied to `arg` (ignored for kCount).
/// The columnar aggregate reads `vec` (a typed numeric generator) or
/// `source` (a plain input column) instead of the Row-based `arg`;
/// ColAgg fills both so the row fallback stays available, VecAgg is
/// columnar-only. Brace initialization with the first four members keeps
/// working and implies the row path.
struct AggExpr {
  AggKind kind;
  Expr arg;  ///< may be nullptr for kCount
  std::string name;
  ValueType type = ValueType::kDouble;
  int source = -1;
  std::function<double(size_t)> vec;
};

/// Aggregate over input column `col` of `t` (any kind).
AggExpr ColAgg(AggKind kind, const Table& t, const std::string& col,
               std::string name, ValueType type);
/// Numeric aggregate (kSum/kAvg) over a computed per-row value.
AggExpr VecAgg(AggKind kind, std::string name, ValueType type,
               std::function<double(size_t)> vec);
/// Row count.
AggExpr CountAgg(std::string name);

/// Group-by + aggregate. Output schema: the group columns (names
/// preserved) followed by the aggregates. With no group columns produces
/// exactly one row (global aggregate), even over empty input.
Table HashAggregate(const Table& t, const std::vector<int>& group_cols,
                    const std::vector<AggExpr>& aggs);
Table HashAggregateOn(const Table& t,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggExpr>& aggs);

/// True when every aggregate in `aggs` takes the columnar fold on `t`
/// (and the row-path override knob is off). Gate for the fused
/// aggregate path below.
bool AggsVectorizable(const Table& t, const std::vector<AggExpr>& aggs);

/// Group-by + aggregate over the rows of `t` named by the ascending
/// selection vector `sel`, without materializing the filtered table.
/// Bit-identical to HashAggregate(Filter(t, sel), ...): position k of
/// the virtual input is global row sel[k], so fold order, morsel
/// decomposition, hash partitioning, and group emission order all match
/// the materialized run exactly. Requires AggsVectorizable(t, aggs);
/// empty selections must not carry min/max (see HashAggregate's empty
/// guard).
Table HashAggregateSelected(const Table& t, const std::vector<uint32_t>& sel,
                            const std::vector<int>& group_cols,
                            const std::vector<AggExpr>& aggs);

/// Sort specification: column index + direction.
struct SortKey {
  int col;
  bool ascending = true;
};

/// Stable sort by the given keys.
Table SortBy(const Table& t, const std::vector<SortKey>& keys);
/// Destructive overload: sorts `t`'s rows in place (no table copy).
Table SortBy(Table&& t, const std::vector<SortKey>& keys);

/// First n rows.
Table Limit(const Table& t, size_t n);
/// Destructive overload: moves the first n rows out of `t`.
Table Limit(Table&& t, size_t n);

/// Removes duplicate rows (all columns).
Table Distinct(const Table& t);

// ---- Expression helpers -------------------------------------------------

/// Column reference.
Expr Col(const Table& t, const std::string& name);

/// Constant.
Expr Lit(Value v);

/// Arithmetic over doubles.
Expr Mul(Expr a, Expr b);
Expr Add(Expr a, Expr b);
Expr Sub(Expr a, Expr b);

/// Common TPC-H revenue expression: extendedprice * (1 - discount).
Expr Revenue(const Table& t, const std::string& price_col = "l_extendedprice",
             const std::string& discount_col = "l_discount");

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_OPERATORS_H_
