#ifndef ELEPHANT_EXEC_OPERATORS_H_
#define ELEPHANT_EXEC_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "exec/table.h"

namespace elephant::exec {

// ---- Parallelism knobs --------------------------------------------------
//
// Operators run serially by default (threads == 1, the oracle path).
// With more threads they fan morsels of rows out to the process-wide
// TaskPool, but every parallel path is bit-identical to the serial one:
// morsel decomposition never depends on the thread count, per-morsel
// outputs are concatenated in morsel order, and aggregate groups are
// owned by exactly one hash partition and accumulated in global row
// order (so floating-point rounding matches serial exactly).

/// Sets the operator thread count. `n <= 0` resets to the
/// ELEPHANT_THREADS environment default; `1` forces the serial path.
void SetExecThreads(int n);
/// Current operator thread count (>= 1).
int ExecThreads();

/// Sets the morsel (row-chunk) size used by parallel operators.
void SetExecMorselSize(size_t rows);
size_t ExecMorselSize();

/// Row predicate.
using Predicate = std::function<bool(const Row&)>;
/// Scalar expression over a row.
using Expr = std::function<Value(const Row&)>;

/// A named, typed output expression for Project.
struct NamedExpr {
  std::string name;
  ValueType type;
  Expr fn;
};

/// Returns the rows of `t` satisfying `pred`. Schema unchanged.
Table Filter(const Table& t, const Predicate& pred);
/// Destructive overload: moves surviving rows out of `t` instead of
/// copying them. Use when the caller discards the input.
Table Filter(Table&& t, const Predicate& pred);

/// Evaluates `exprs` per row; output schema is exactly the expr list.
Table Project(const Table& t, const std::vector<NamedExpr>& exprs);

enum class JoinType {
  kInner,
  kLeftOuter,  ///< unmatched left rows padded with type-default values
  kLeftSemi,   ///< left rows with >=1 match; left schema only
  kLeftAnti,   ///< left rows with no match; left schema only
};

/// Hash join on equality of the given key columns (build on right, probe
/// with left). Inner/outer output schema is left columns followed by
/// right columns; a right column whose name collides gets a "_r" suffix.
Table HashJoin(const Table& left, const Table& right,
               const std::vector<int>& left_keys,
               const std::vector<int>& right_keys,
               JoinType type = JoinType::kInner);

/// Convenience overload joining on column names.
Table HashJoinOn(const Table& left, const Table& right,
                 const std::vector<std::string>& left_keys,
                 const std::vector<std::string>& right_keys,
                 JoinType type = JoinType::kInner);

/// Inner equi-join by sorting both inputs on the key and merging.
/// Produces the same multiset of rows as the inner HashJoin (property
/// tests pin this); used when inputs are already ordered or when hash
/// memory is the concern.
Table SortMergeJoin(const Table& left, const Table& right, int left_key,
                    int right_key);

/// Inner join with an arbitrary predicate over the concatenated row —
/// the fallback for non-equi joins. O(|left| x |right|).
Table NestedLoopJoin(const Table& left, const Table& right,
                     const std::function<bool(const Row&)>& pred);

enum class AggKind { kSum, kAvg, kMin, kMax, kCount, kCountDistinct };

/// One aggregate output: `kind` applied to `arg` (ignored for kCount).
struct AggExpr {
  AggKind kind;
  Expr arg;  ///< may be nullptr for kCount
  std::string name;
  ValueType type = ValueType::kDouble;
};

/// Group-by + aggregate. Output schema: the group columns (names
/// preserved) followed by the aggregates. With no group columns produces
/// exactly one row (global aggregate), even over empty input.
Table HashAggregate(const Table& t, const std::vector<int>& group_cols,
                    const std::vector<AggExpr>& aggs);
Table HashAggregateOn(const Table& t,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggExpr>& aggs);

/// Sort specification: column index + direction.
struct SortKey {
  int col;
  bool ascending = true;
};

/// Stable sort by the given keys.
Table SortBy(const Table& t, const std::vector<SortKey>& keys);
/// Destructive overload: sorts `t`'s rows in place (no table copy).
Table SortBy(Table&& t, const std::vector<SortKey>& keys);

/// First n rows.
Table Limit(const Table& t, size_t n);
/// Destructive overload: moves the first n rows out of `t`.
Table Limit(Table&& t, size_t n);

/// Removes duplicate rows (all columns).
Table Distinct(const Table& t);

// ---- Expression helpers -------------------------------------------------

/// Column reference.
Expr Col(const Table& t, const std::string& name);

/// Constant.
Expr Lit(Value v);

/// Arithmetic over doubles.
Expr Mul(Expr a, Expr b);
Expr Add(Expr a, Expr b);
Expr Sub(Expr a, Expr b);

/// Common TPC-H revenue expression: extendedprice * (1 - discount).
Expr Revenue(const Table& t, const std::string& price_col = "l_extendedprice",
             const std::string& discount_col = "l_discount");

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_OPERATORS_H_
