#include "exec/frozen.h"

#include <utility>

#include "common/check.h"

namespace elephant::exec {

// ---- FrozenTableData -----------------------------------------------------

FrozenTableData::~FrozenTableData() {
  // Discard, not Remove: a test may Clear() the global cache while a
  // frozen table is still alive; its ids are simply gone by then.
  SegmentCache& cache = SegmentCache::Global();
  for (const FrozenColumn& fc : cols) {
    for (const FrozenChunk& ch : fc.chunks) cache.Discard(ch.id);
  }
}

size_t FrozenTableData::EncodedBytes() const {
  size_t total = 0;
  for (const FrozenColumn& fc : cols) total += fc.encoded_bytes;
  return total;
}

// ---- Zone maps from frozen metadata --------------------------------------

std::shared_ptr<const ZoneMaps> ZoneMapsFromFrozen(
    const std::vector<Column>& schema, const FrozenTableData& fz) {
  ELEPHANT_CHECK(fz.cols.size() == schema.size());
  auto zm = std::make_shared<ZoneMaps>();
  zm->rows = fz.rows;
  zm->chunk_rows = fz.chunk_rows;
  zm->num_chunks =
      fz.rows == 0 ? 0 : (fz.rows + fz.chunk_rows - 1) / fz.chunk_rows;
  zm->cols.resize(schema.size());
  for (size_t c = 0; c < schema.size(); ++c) {
    const FrozenColumn& fc = fz.cols[c];
    ELEPHANT_CHECK(fc.bounds.size() == zm->num_chunks)
        << "frozen column " << schema[c].name << " has " << fc.bounds.size()
        << " chunks, zone maps expect " << zm->num_chunks;
    ColumnZones& cz = zm->cols[c];
    cz.type = fc.type;
    cz.sorted_asc = fc.sorted_asc;
    cz.hist = fc.hist;
    for (const EncodedBounds& b : fc.bounds) {
      if (b.is_code) {
        cz.code_min.push_back(b.code_min);
        cz.code_max.push_back(b.code_max);
      } else {
        cz.min.push_back(b.min);
        cz.max.push_back(b.max);
      }
    }
  }
  return zm;
}

// ---- Table: thaw / freeze ------------------------------------------------

namespace {

/// Pins, parses, and decodes one frozen chunk into `out` (which must
/// have room for `ch.rows` values of the column's type).
void DecodeFrozenChunk(const FrozenChunk& ch, ValueType type, void* out) {
  Result<PinnedSegment> pinned = PinSegment(ch.id);
  ELEPHANT_CHECK(pinned.ok())
      << "thaw failed pinning segment " << ch.id << ": "
      << pinned.status().ToString();
  PinnedSegment pin = std::move(pinned).value();
  Result<EncodedChunk> parsed =
      ParseChunk(pin.bytes().data(), pin.bytes().size());
  ELEPHANT_CHECK(parsed.ok())
      << "thaw failed parsing segment " << ch.id << ": "
      << parsed.status().ToString();
  const EncodedChunk& ec = parsed.value();
  ELEPHANT_CHECK(ec.rows == ch.rows && ec.type == type)
      << "frozen chunk shape drifted for segment " << ch.id;
  switch (type) {
    case ValueType::kInt:
      DecodeInt64Chunk(ec, static_cast<int64_t*>(out));
      break;
    case ValueType::kDouble:
      DecodeDoubleChunk(ec, static_cast<double*>(out));
      break;
    case ValueType::kString:
      DecodeCodeChunk(ec, static_cast<uint32_t*>(out));
      break;
  }
}

}  // namespace

void Table::EnsureColResident(int col) const {
  if (thawed_[col].load(std::memory_order_acquire) != 0) return;
  MutexLock lock(&lazy_mu_);
  if (thawed_[col].load(std::memory_order_relaxed) != 0) return;
  const FrozenColumn& fc = frozen_->cols[col];
  ColumnVector& cv = data_[col];
  cv.Resize(frozen_->rows);
  size_t off = 0;
  for (const FrozenChunk& ch : fc.chunks) {
    void* out = nullptr;
    switch (fc.type) {
      case ValueType::kInt:
        out = cv.ints().data() + off;
        break;
      case ValueType::kDouble:
        out = cv.doubles().data() + off;
        break;
      case ValueType::kString:
        out = cv.codes().data() + off;
        break;
    }
    DecodeFrozenChunk(ch, fc.type, out);
    off += ch.rows;
  }
  ELEPHANT_CHECK(off == frozen_->rows)
      << "frozen column " << col << " decodes to " << off << " rows, not "
      << frozen_->rows;
  thawed_[col].store(1, std::memory_order_release);
}

void Table::ThawAllResident() const {
  if (frozen_ == nullptr) return;
  for (size_t c = 0; c < columns_.size(); ++c) {
    EnsureColResident(static_cast<int>(c));
  }
}

void Table::ReleaseResident() {
  if (frozen_ == nullptr) return;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (thawed_[c].load(std::memory_order_relaxed) == 0) continue;
    data_[c].Clear();
    thawed_[c].store(0, std::memory_order_relaxed);
  }
  InvalidateRows();
  // Zone maps stay: logical content is unchanged by residency.
}

Table Table::FromFrozen(std::vector<Column> columns,
                        std::shared_ptr<StringPool> pool,
                        std::shared_ptr<const FrozenTableData> fz) {
  ELEPHANT_CHECK(fz != nullptr);
  Table t(std::move(columns), std::move(pool));
  ELEPHANT_CHECK(fz->cols.size() == t.columns_.size())
      << "frozen data has " << fz->cols.size() << " columns, schema has "
      << t.columns_.size();
  t.num_rows_ = fz->rows;
  t.thawed_ = std::make_unique<std::atomic<uint32_t>[]>(t.columns_.size());
  for (size_t c = 0; c < t.columns_.size(); ++c) {
    t.thawed_[c].store(0, std::memory_order_relaxed);
  }
  t.frozen_ = std::move(fz);
  return t;
}

void Table::Freeze() {
  if (frozen_ != nullptr) return;
  if (!EnsureColumnar()) return;  // heterogeneous: no encoded form
  std::shared_ptr<const ZoneMaps> zm = GetZoneMaps(*this);
  ELEPHANT_CHECK(zm != nullptr);
  auto fz = std::make_shared<FrozenTableData>();
  fz->rows = num_rows_;
  fz->chunk_rows = zm->chunk_rows;
  fz->cols.reserve(columns_.size());
  SegmentCache& cache = SegmentCache::Global();
  for (size_t c = 0; c < columns_.size(); ++c) {
    EncodedColumn enc = EncodeColumn(*this, static_cast<int>(c));
    ELEPHANT_CHECK(enc.chunk_rows == fz->chunk_rows);
    FrozenColumn fc;
    fc.type = enc.type;
    fc.sorted_asc = enc.sorted_asc;
    fc.hist = std::move(enc.hist);
    fc.chunks.reserve(enc.chunks.size());
    fc.bounds.reserve(enc.chunks.size());
    for (EncodedChunk& ec : enc.chunks) {
      fc.bounds.push_back(EncodedChunkBounds(ec));
      std::vector<uint8_t> bytes = SerializeChunk(ec);
      fc.encoded_bytes += bytes.size();
      Result<SegmentCache::Id> id = cache.Insert(std::move(bytes));
      ELEPHANT_CHECK(id.ok())
          << "freeze failed inserting a chunk: " << id.status().ToString();
      fc.chunks.push_back(FrozenChunk{id.value(), ec.rows});
    }
    fz->cols.push_back(std::move(fc));
  }
  frozen_ = std::move(fz);
  thawed_ = std::make_unique<std::atomic<uint32_t>[]>(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    thawed_[c].store(0, std::memory_order_relaxed);
  }
  for (ColumnVector& cv : data_) cv.Clear();
  InvalidateRows();  // a live row cache would keep the plain bytes resident
}

// ---- FrozenTableBuilder --------------------------------------------------

FrozenTableBuilder::FrozenTableBuilder(std::vector<Column> schema,
                                       std::shared_ptr<StringPool> pool)
    : schema_(std::move(schema)),
      pool_(std::move(pool)),
      fz_(std::make_shared<FrozenTableData>()) {
  bool has_string = false;
  for (const Column& c : schema_) has_string |= c.type == ValueType::kString;
  if (has_string && pool_ == nullptr) pool_ = std::make_shared<StringPool>();
  fz_->chunk_rows = ZoneMapChunkRows();
  ELEPHANT_CHECK(fz_->chunk_rows > 0);
  fz_->cols.resize(schema_.size());
  tail_.reserve(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    fz_->cols[c].type = schema_[c].type;
    // Numeric columns start sorted and the seal loop falsifies; string
    // columns never carry the flag (intern order is not collation) —
    // both exactly as BuildZoneMaps decides.
    fz_->cols[c].sorted_asc = schema_[c].type != ValueType::kString;
    tail_.emplace_back(schema_[c].type);
  }
  last_val_.assign(schema_.size(), 0.0);
}

void FrozenTableBuilder::Append(RowBatch&& batch) {
  ELEPHANT_CHECK(batch.cols_.size() == schema_.size())
      << "batch has " << batch.cols_.size() << " columns, schema has "
      << schema_.size();
  size_t n = batch.num_rows();
  for (size_t c = 0; c < batch.cols_.size(); ++c) {
    ELEPHANT_CHECK(batch.cols_[c].type == schema_[c].type &&
                   batch.cols_[c].size() == n)
        << "uneven or mistyped batch column " << c;
  }
  // Mirrors Table::AppendBatch: serial interning in batch order keeps
  // dictionary codes identical to the resident build.
  for (size_t c = 0; c < batch.cols_.size(); ++c) {
    RowBatch::BatchColumn& bc = batch.cols_[c];
    switch (schema_[c].type) {
      case ValueType::kInt:
        tail_[c].ints().insert(tail_[c].ints().end(), bc.ints.begin(),
                               bc.ints.end());
        break;
      case ValueType::kDouble:
        tail_[c].doubles().insert(tail_[c].doubles().end(),
                                  bc.doubles.begin(), bc.doubles.end());
        break;
      case ValueType::kString: {
        std::vector<uint32_t>& codes = tail_[c].codes();
        codes.reserve(codes.size() + bc.strs.size());
        for (std::string& s : bc.strs) {
          codes.push_back(pool_->Intern(std::move(s)));
        }
        break;
      }
    }
  }
  rows_ += n;
  SealFullChunks();
}

void FrozenTableBuilder::SealChunk(size_t lo, size_t hi) {
  size_t n = hi - lo;
  if (n == 0) return;
  SegmentCache& cache = SegmentCache::Global();
  for (size_t c = 0; c < schema_.size(); ++c) {
    FrozenColumn& fc = fz_->cols[c];
    EncodedChunk ec;
    switch (schema_[c].type) {
      case ValueType::kInt: {
        const int64_t* v = tail_[c].ints().data() + lo;
        ec = EncodeInt64ChunkAuto(v, n);
        if (fc.sorted_asc) {
          // Same pairwise test BuildZoneMaps runs over the whole
          // column, carried across seal boundaries by last_val_ (the
          // double image of the previous sealed value). NaN-free here,
          // but `!(a <= b)` keeps the forms literally identical.
          double prev = has_last_ ? last_val_[c] : static_cast<double>(v[0]);
          for (size_t i = 0; i < n && fc.sorted_asc; ++i) {
            double d = static_cast<double>(v[i]);
            if (!(prev <= d)) fc.sorted_asc = false;
            prev = d;
          }
        }
        last_val_[c] = static_cast<double>(v[n - 1]);
        break;
      }
      case ValueType::kDouble: {
        const double* v = tail_[c].doubles().data() + lo;
        ec = EncodeDoubleChunkAuto(v, n);
        if (fc.sorted_asc) {
          double prev = has_last_ ? last_val_[c] : v[0];
          for (size_t i = 0; i < n && fc.sorted_asc; ++i) {
            if (!(prev <= v[i])) fc.sorted_asc = false;
            prev = v[i];
          }
        }
        last_val_[c] = v[n - 1];
        break;
      }
      case ValueType::kString: {
        const uint32_t* v = tail_[c].codes().data() + lo;
        ec = EncodeCodeChunkAuto(v, n);
        break;
      }
    }
    fc.bounds.push_back(EncodedChunkBounds(ec));
    std::vector<uint8_t> bytes = SerializeChunk(ec);
    fc.encoded_bytes += bytes.size();
    Result<SegmentCache::Id> id = cache.Insert(std::move(bytes));
    ELEPHANT_CHECK(id.ok())
        << "seal failed inserting a chunk: " << id.status().ToString();
    fc.chunks.push_back(FrozenChunk{id.value(), static_cast<uint32_t>(n)});
  }
  has_last_ = true;
}

void FrozenTableBuilder::SealFullChunks() {
  size_t tail_rows = tail_.empty() ? 0 : tail_[0].size();
  size_t lo = 0;
  while (tail_rows - lo >= fz_->chunk_rows) {
    SealChunk(lo, lo + fz_->chunk_rows);
    lo += fz_->chunk_rows;
  }
  if (lo == 0) return;
  for (size_t c = 0; c < tail_.size(); ++c) {
    switch (schema_[c].type) {
      case ValueType::kInt: {
        std::vector<int64_t>& v = tail_[c].ints();
        v.erase(v.begin(), v.begin() + static_cast<ptrdiff_t>(lo));
        break;
      }
      case ValueType::kDouble: {
        std::vector<double>& v = tail_[c].doubles();
        v.erase(v.begin(), v.begin() + static_cast<ptrdiff_t>(lo));
        break;
      }
      case ValueType::kString: {
        std::vector<uint32_t>& v = tail_[c].codes();
        v.erase(v.begin(), v.begin() + static_cast<ptrdiff_t>(lo));
        break;
      }
    }
  }
}

Table FrozenTableBuilder::Finish() {
  ELEPHANT_CHECK(fz_ != nullptr) << "Finish() called twice";
  size_t tail_rows = tail_.empty() ? 0 : tail_[0].size();
  SealChunk(0, tail_rows);  // the ragged tail (no-op when empty)
  for (ColumnVector& cv : tail_) cv.Clear();
  fz_->rows = rows_;
  if (rows_ == 0) {
    // BuildZoneMaps calls an empty column unsorted; match it.
    for (FrozenColumn& fc : fz_->cols) fc.sorted_asc = false;
  }
  std::shared_ptr<const FrozenTableData> fz = std::move(fz_);
  Table t = Table::FromFrozen(schema_, pool_, fz);
  t.set_zone_maps(ZoneMapsFromFrozen(schema_, *fz));
  return t;
}

}  // namespace elephant::exec
