#ifndef ELEPHANT_EXEC_FUSED_H_
#define ELEPHANT_EXEC_FUSED_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/table.h"

namespace elephant::exec {

// ---- Fused morsel pipelines (DESIGN.md §14) -----------------------------
//
// A ScanSpec is a declarative leaf filter: conjunctive numeric range
// constraints, dictionary-code set memberships, and an optional opaque
// residual predicate. Declaring the filter (instead of handing the
// executor a closure) is what lets the fused path plan: zone-map chunk
// pruning, whole-chunk emission when the bounds prove every row
// matches, binary-search row intervals on verified-sorted columns, and
// most-selective-first evaluation order for the scanned remainder.
//
// Every fused entry point is bit-identical to its materializing oracle
// twin: FusedSelect(t, spec) == EvalSelection(n, SpecPredicate(t, spec))
// as a vector, FusedFilter matches Filter, and FusedAggregate matches
// Filter-then-HashAggregateOn — at any thread count, because both paths
// share the same double-image comparison semantics and the same
// deterministic morsel decomposition. The oracle stays reachable behind
// SetExecFusedPath(false) (env ELEPHANT_FUSED=0).

/// Conjunctive range constraint on a numeric column, bounds in the
/// widened-double image: (lo_strict ? v > lo : v >= lo) &&
/// (hi_strict ? v < hi : v <= hi). Defaults are the full line, so a
/// one-sided range leaves the other bound alone.
struct NumRange {
  int col = -1;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_strict = false;
  bool hi_strict = false;

  bool Matches(double v) const {
    return (lo_strict ? v > lo : v >= lo) && (hi_strict ? v < hi : v <= hi);
  }
};

/// Set-membership constraint on a dictionary column: row matches when
/// match[code] != 0. The table is indexed by dictionary code and must
/// cover the column's pool (size() >= pool.size()).
struct CodeSet {
  int col = -1;
  std::vector<char> match;

  bool Matches(uint32_t code) const { return match[code] != 0; }
};

/// Declarative leaf-scan filter: the conjunction of every range, every
/// code set, and (if present) the residual predicate. The residual is
/// opaque to the planner: it never prunes a chunk and disables
/// whole-chunk emission, but pruning by the declared constraints still
/// applies (a chunk no declared constraint can match needs no residual
/// evaluation either).
struct ScanSpec {
  std::vector<NumRange> ranges;
  std::vector<CodeSet> codes;
  IndexPredicate residual;
};

// ---- Spec factories -----------------------------------------------------

/// Range constraint on a named column. Convenience wrappers cover the
/// common one-sided shapes.
NumRange ColRange(const Table& t, const std::string& col, double lo,
                  double hi, bool lo_strict = false, bool hi_strict = false);
NumRange ColLess(const Table& t, const std::string& col, double hi,
                 bool strict = true);
NumRange ColAtLeast(const Table& t, const std::string& col, double lo,
                    bool strict = false);
NumRange ColEquals(const Table& t, const std::string& col, double v);

/// Code-set constraint on a named string column, one flag per pool
/// code: match = pred over the interned string.
CodeSet CodeMatch(const Table& t, const std::string& col,
                  const std::function<bool(const std::string&)>& pred);
/// Code-set constraint matching exactly one string value.
CodeSet CodeEquals(const Table& t, const std::string& col,
                   const std::string& value);

/// Single-constraint spec conveniences for the common one-predicate
/// leaf scans.
ScanSpec SpecOf(NumRange r);
ScanSpec SpecOf(CodeSet c);

// ---- Oracle twin --------------------------------------------------------

/// Row-index predicate evaluating exactly the spec's match semantics —
/// same double image, same conjunction — one row at a time. This is
/// the materializing oracle the fused path is validated against, and
/// the fallback when the fused knob is off.
IndexPredicate SpecPredicate(const Table& t, const ScanSpec& spec);

// ---- Fused entry points -------------------------------------------------

/// Fused scan -> filter: evaluates the spec into an ascending selection
/// vector with zone-map chunk pruning, whole-chunk match runs, and
/// binary-search intervals on sorted columns. Bit-identical to
/// EvalSelection(t.num_rows(), SpecPredicate(t, spec)).
std::vector<uint32_t> FusedSelect(const Table& t, const ScanSpec& spec);

/// Fused scan -> filter -> materialize: FusedSelect plus one gather.
/// Same table Filter(t, SpecPredicate(t, spec)) builds.
Table FusedFilter(const Table& t, const ScanSpec& spec);

/// Builds the aggregate list against the table the aggregation will
/// actually read. A factory (not a plain list) because VecAgg closures
/// capture raw column pointers: the fused path binds them to the base
/// table, the oracle path to the filtered copy.
using AggFactory = std::function<std::vector<AggExpr>(const Table&)>;

/// Fused scan -> filter -> aggregate: feeds the FusedSelect selection
/// straight into the grouped hash aggregate without materializing the
/// filtered table. Bit-identical to HashAggregateOn(FusedFilter(...))
/// at any thread count. Falls back to the materializing pipeline when
/// the fused path is off, the table has no columnar form, an aggregate
/// is not vectorizable, or the selection comes back empty with min/max
/// aggregates (whose empty-input semantics only the row path models).
Table FusedAggregate(const Table& t, const ScanSpec& spec,
                     const std::vector<std::string>& group_cols,
                     const AggFactory& aggs);

// ---- Knob + counters ----------------------------------------------------

/// Fused-path knob: on by default, ELEPHANT_FUSED=0 in the environment
/// flips the default off, and the setter overrides either way (the
/// PR 5-style oracle switch for tests and benchmarks).
bool ExecFusedPath();
void SetExecFusedPath(bool on);

/// Monotonic counters describing fused-scan work since the last reset.
/// Values are deterministic for a given table/spec sequence (chunk
/// classification never depends on the thread count).
struct FusedCounters {
  uint64_t chunks_scanned = 0;     ///< chunks evaluated row by row
  uint64_t chunks_pruned = 0;      ///< chunks skipped via zone bounds
  uint64_t chunks_full_match = 0;  ///< chunks emitted without row eval
  uint64_t rows_scanned = 0;       ///< rows that ran per-row evaluation
  uint64_t sorted_bounded = 0;     ///< scans narrowed by binary search
};

FusedCounters FusedCountersSnapshot();
void ResetFusedCounters();

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_FUSED_H_
