#include "exec/encoded_scan.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"
#include "common/string_util.h"

namespace elephant::exec {

namespace {

bool EncodedScanDefault() {
  const char* env = std::getenv("ELEPHANT_ENCODED_SCAN");
  return env == nullptr || std::string(env) != "0";
}

std::atomic<bool> g_encoded_scan{EncodedScanDefault()};

std::atomic<uint64_t> g_chunks_direct{0};
std::atomic<uint64_t> g_chunks_decoded{0};
std::atomic<uint64_t> g_runs_evaluated{0};
std::atomic<uint64_t> g_words_scanned{0};

template <typename T>
T ReadRaw(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// LSB-first little-endian bit stream, field-for-field identical to the
/// codec's BitReader (widths above 32 split into two <= 32-bit halves).
struct BitStream {
  const uint8_t* p;
  uint64_t acc = 0;
  unsigned nbits = 0;

  uint32_t Get32(unsigned w) {
    if (w == 0) return 0;
    while (nbits < w) {
      acc |= static_cast<uint64_t>(*p++) << nbits;
      nbits += 8;
    }
    uint32_t v = static_cast<uint32_t>(
        acc & (w >= 32 ? 0xFFFFFFFFull : ((1ull << w) - 1)));
    acc >>= w;
    nbits -= w;
    return v;
  }
  uint64_t Get(unsigned w) {
    if (w > 32) {
      uint64_t lo = Get32(32);
      uint64_t hi = Get32(w - 32);
      return lo | (hi << 32);
    }
    return Get32(w);
  }
};

constexpr size_t kWidthHeaderI64 = 1 + 2 * sizeof(int64_t);
constexpr size_t kWidthHeaderU32 = 1 + 2 * sizeof(uint32_t);

/// Word-at-a-time sweep over a packed payload: when the field width
/// divides 64, every 64-bit word holds a whole number of fields, loaded
/// once and peeled LSB-first (the BitWriter emission order). `eval` is
/// called with each field value in row order; rows beyond the full
/// words fall back to the bit stream. Returns false when the width does
/// not divide a word, leaving the caller on the generic path.
template <typename Eval>
bool PackedWords(const uint8_t* payload, size_t n, unsigned w, Eval&& eval) {
  if (w == 0 || w > 32 || 64 % w != 0) return false;
  const unsigned per_word = 64 / w;
  const uint64_t mask = w >= 64 ? ~0ull : ((1ull << w) - 1);
  size_t full_words = (n * w) / 64;
  size_t i = 0;
  for (size_t wd = 0; wd < full_words; ++wd) {
    uint64_t word = ReadRaw<uint64_t>(payload + wd * 8);
    for (unsigned k = 0; k < per_word; ++k) {
      eval(i++, word & mask);
      word >>= w;
    }
  }
  g_words_scanned.fetch_add(full_words, std::memory_order_relaxed);
  if (i < n) {
    BitStream bs{payload + full_words * 8};
    for (; i < n; ++i) eval(i, bs.Get(w));
  }
  return true;
}

}  // namespace

bool ExecEncodedScanPath() {
  return g_encoded_scan.load(std::memory_order_relaxed);
}

void SetExecEncodedScanPath(bool on) {
  g_encoded_scan.store(on, std::memory_order_relaxed);
}

EncodedScanCounters EncodedScanCountersSnapshot() {
  EncodedScanCounters c;
  c.chunks_direct = g_chunks_direct.load(std::memory_order_relaxed);
  c.chunks_decoded = g_chunks_decoded.load(std::memory_order_relaxed);
  c.runs_evaluated = g_runs_evaluated.load(std::memory_order_relaxed);
  c.words_scanned = g_words_scanned.load(std::memory_order_relaxed);
  return c;
}

void ResetEncodedScanCounters() {
  g_chunks_direct.store(0, std::memory_order_relaxed);
  g_chunks_decoded.store(0, std::memory_order_relaxed);
  g_runs_evaluated.store(0, std::memory_order_relaxed);
  g_words_scanned.store(0, std::memory_order_relaxed);
}

Result<ChunkView> ParseChunkView(const uint8_t* data, size_t size) {
  constexpr size_t kHeader = 2 + sizeof(uint32_t);
  if (size < kHeader) {
    return Status::IOError(
        StrFormat("encoded chunk truncated: %zu bytes", size));
  }
  if (data[0] > static_cast<uint8_t>(Codec::kFor)) {
    return Status::IOError(
        StrFormat("unknown codec byte %u", unsigned{data[0]}));
  }
  if (data[1] > static_cast<uint8_t>(ValueType::kString)) {
    return Status::IOError(
        StrFormat("unknown chunk type byte %u", unsigned{data[1]}));
  }
  ChunkView v;
  v.codec = static_cast<Codec>(data[0]);
  v.type = static_cast<ValueType>(data[1]);
  v.rows = ReadRaw<uint32_t>(data + 2);
  v.payload = data + kHeader;
  v.payload_size = size - kHeader;
  size_t elem = v.type == ValueType::kString ? sizeof(uint32_t)
                                             : sizeof(int64_t);
  switch (v.codec) {
    case Codec::kPlain:
      if (v.payload_size != v.rows * elem) {
        return Status::IOError(
            StrFormat("plain payload %zu bytes for %u rows",
                      v.payload_size, v.rows));
      }
      break;
    case Codec::kRle:
      break;  // run lengths are validated by the decoder when needed
    case Codec::kBitPack:
    case Codec::kFor: {
      size_t header = v.type == ValueType::kString ? kWidthHeaderU32
                                                   : kWidthHeaderI64;
      if (v.payload_size < header) {
        return Status::IOError(
            StrFormat("packed chunk header truncated: %zu bytes",
                      v.payload_size));
      }
      unsigned width = v.payload[0];
      unsigned max_w = v.type == ValueType::kString ? 32 : 64;
      if (width > max_w) {
        return Status::IOError(StrFormat("packed width %u too wide", width));
      }
      size_t need = header + (v.rows * static_cast<size_t>(width) + 7) / 8;
      if (v.payload_size < need) {
        return Status::IOError(
            StrFormat("packed payload %zu bytes, need %zu", v.payload_size,
                      need));
      }
      break;
    }
  }
  return v;
}

ChunkView MakeChunkView(const EncodedChunk& c) {
  ChunkView v;
  v.codec = c.codec;
  v.type = c.type;
  v.rows = c.rows;
  v.payload = c.bytes.data();
  v.payload_size = c.bytes.size();
  return v;
}

void EncodedRangeAnd(const ChunkView& view, const NumRange& r,
                     uint8_t* bits) {
  size_t n = view.rows;
  g_chunks_direct.fetch_add(1, std::memory_order_relaxed);
  if (view.type == ValueType::kDouble) {
    if (view.codec == Codec::kPlain) {
      for (size_t i = 0; i < n; ++i) {
        double v = ReadRaw<double>(view.payload + i * sizeof(double));
        if (!r.Matches(v)) bits[i] = 0;
      }
      return;
    }
    ELEPHANT_CHECK(view.codec == Codec::kRle) << "bad double codec";
    // Evaluate once per run, by the exact bit pattern the encoder saw —
    // NaN runs fail Matches once and zero the whole run; -0.0 compares
    // as 0.0, exactly like the decoded path.
    const uint8_t* p = view.payload;
    size_t i = 0;
    uint64_t runs = 0;
    while (i < n) {
      uint64_t pattern = ReadRaw<uint64_t>(p);
      uint32_t run = ReadRaw<uint32_t>(p + sizeof(uint64_t));
      p += sizeof(uint64_t) + sizeof(uint32_t);
      double v;
      std::memcpy(&v, &pattern, sizeof(v));
      if (!r.Matches(v)) std::memset(bits + i, 0, run);
      i += run;
      ++runs;
    }
    g_runs_evaluated.fetch_add(runs, std::memory_order_relaxed);
    return;
  }
  ELEPHANT_CHECK(view.type == ValueType::kInt)
      << "EncodedRangeAnd on a string chunk";
  switch (view.codec) {
    case Codec::kPlain: {
      for (size_t i = 0; i < n; ++i) {
        double v = static_cast<double>(
            ReadRaw<int64_t>(view.payload + i * sizeof(int64_t)));
        if (!r.Matches(v)) bits[i] = 0;
      }
      return;
    }
    case Codec::kRle: {
      const uint8_t* p = view.payload;
      size_t i = 0;
      uint64_t runs = 0;
      while (i < n) {
        int64_t v = ReadRaw<int64_t>(p);
        uint32_t run = ReadRaw<uint32_t>(p + sizeof(int64_t));
        p += sizeof(int64_t) + sizeof(uint32_t);
        if (!r.Matches(static_cast<double>(v))) {
          std::memset(bits + i, 0, run);
        }
        i += run;
        ++runs;
      }
      g_runs_evaluated.fetch_add(runs, std::memory_order_relaxed);
      return;
    }
    case Codec::kBitPack:
    case Codec::kFor: {
      if (n == 0) return;
      unsigned w = view.payload[0];
      int64_t mn = ReadRaw<int64_t>(view.payload + 1);
      int64_t mx = ReadRaw<int64_t>(view.payload + 1 + sizeof(int64_t));
      double dmn = static_cast<double>(mn);
      double dmx = static_cast<double>(mx);
      // Header shortcuts, with exactly the zone-map interval logic: the
      // chunk's values fill [min, max], so matching both endpoints
      // matches everything, and a disjoint interval matches nothing.
      bool above = r.hi_strict ? dmn >= r.hi : dmn > r.hi;
      bool below = r.lo_strict ? dmx <= r.lo : dmx < r.lo;
      if (above || below) {
        std::memset(bits, 0, n);
        return;
      }
      if (r.Matches(dmn) && r.Matches(dmx)) return;  // all rows match
      const uint8_t* packed = view.payload + kWidthHeaderI64;
      uint64_t ref =
          view.codec == Codec::kFor ? static_cast<uint64_t>(mn) : 0;
      // The comparison always goes through the widened-double image of
      // the reconstructed int64 — never an integer-domain compare — so
      // it agrees with the decoded path even beyond 2^53.
      auto eval = [&](size_t i, uint64_t field) {
        double v =
            static_cast<double>(static_cast<int64_t>(ref + field));
        if (!r.Matches(v)) bits[i] = 0;
      };
      if (PackedWords(packed, n, w, eval)) return;
      BitStream bs{packed};
      for (size_t i = 0; i < n; ++i) eval(i, bs.Get(w));
      return;
    }
  }
}

void EncodedCodeAnd(const ChunkView& view, const char* match,
                    uint8_t* bits) {
  ELEPHANT_CHECK(view.type == ValueType::kString)
      << "EncodedCodeAnd on a numeric chunk";
  size_t n = view.rows;
  g_chunks_direct.fetch_add(1, std::memory_order_relaxed);
  switch (view.codec) {
    case Codec::kPlain: {
      for (size_t i = 0; i < n; ++i) {
        uint32_t code =
            ReadRaw<uint32_t>(view.payload + i * sizeof(uint32_t));
        if (match[code] == 0) bits[i] = 0;
      }
      return;
    }
    case Codec::kRle: {
      const uint8_t* p = view.payload;
      size_t i = 0;
      uint64_t runs = 0;
      while (i < n) {
        uint32_t code = ReadRaw<uint32_t>(p);
        uint32_t run = ReadRaw<uint32_t>(p + sizeof(uint32_t));
        p += 2 * sizeof(uint32_t);
        if (match[code] == 0) std::memset(bits + i, 0, run);
        i += run;
        ++runs;
      }
      g_runs_evaluated.fetch_add(runs, std::memory_order_relaxed);
      return;
    }
    case Codec::kBitPack:
    case Codec::kFor: {
      if (n == 0) return;
      unsigned w = view.payload[0];
      uint32_t ref = view.codec == Codec::kFor
                         ? ReadRaw<uint32_t>(view.payload + 1)
                         : 0;
      const uint8_t* packed = view.payload + kWidthHeaderU32;
      auto eval = [&](size_t i, uint64_t field) {
        uint32_t code = ref + static_cast<uint32_t>(field);
        if (match[code] == 0) bits[i] = 0;
      };
      if (PackedWords(packed, n, w, eval)) return;
      BitStream bs{packed};
      for (size_t i = 0; i < n; ++i) eval(i, bs.Get32(w));
      return;
    }
  }
}

namespace {

/// Rebuilds the owning EncodedChunk a view describes (the decode-first
/// oracle pays this copy on purpose; the direct kernels never do).
EncodedChunk ChunkFromView(const ChunkView& view) {
  EncodedChunk c;
  c.codec = view.codec;
  c.type = view.type;
  c.rows = view.rows;
  c.bytes.assign(view.payload, view.payload + view.payload_size);
  return c;
}

}  // namespace

void DecodedRangeAnd(const ChunkView& view, const NumRange& r,
                     uint8_t* bits, ChunkScratch* scratch) {
  size_t n = view.rows;
  g_chunks_decoded.fetch_add(1, std::memory_order_relaxed);
  EncodedChunk c = ChunkFromView(view);
  if (view.type == ValueType::kInt) {
    scratch->ints.resize(n);
    DecodeInt64Chunk(c, scratch->ints.data());
    for (size_t i = 0; i < n; ++i) {
      if (!r.Matches(static_cast<double>(scratch->ints[i]))) bits[i] = 0;
    }
    return;
  }
  ELEPHANT_CHECK(view.type == ValueType::kDouble)
      << "DecodedRangeAnd on a string chunk";
  scratch->dbls.resize(n);
  DecodeDoubleChunk(c, scratch->dbls.data());
  for (size_t i = 0; i < n; ++i) {
    if (!r.Matches(scratch->dbls[i])) bits[i] = 0;
  }
}

void DecodedCodeAnd(const ChunkView& view, const char* match,
                    uint8_t* bits, ChunkScratch* scratch) {
  ELEPHANT_CHECK(view.type == ValueType::kString)
      << "DecodedCodeAnd on a numeric chunk";
  size_t n = view.rows;
  g_chunks_decoded.fetch_add(1, std::memory_order_relaxed);
  EncodedChunk c = ChunkFromView(view);
  scratch->codes.resize(n);
  DecodeCodeChunk(c, scratch->codes.data());
  for (size_t i = 0; i < n; ++i) {
    if (match[scratch->codes[i]] == 0) bits[i] = 0;
  }
}

}  // namespace elephant::exec
