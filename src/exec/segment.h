#ifndef ELEPHANT_EXEC_SEGMENT_H_
#define ELEPHANT_EXEC_SEGMENT_H_

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "exec/table.h"

namespace elephant::exec {

/// Segment iterators: typed, encoding-generic views over one column of
/// a columnar Table. A kernel is written once as a template over the
/// segment type and instantiated per encoding (plain int64, plain
/// double, dictionary codes) by the With*Segment dispatchers, so the
/// zone-map builder, the fused range-eval loops, and the sorted-scan
/// binary searches each exist as a single function body.
///
/// Numeric segments present the column through its widened-double image
/// — the same image CompareValues, HashNumeric, and the fused ScanSpec
/// bounds use — so ordering decisions made through a segment agree
/// bit-for-bit with the row-at-a-time oracle (exact for |int64| < 2^53,
/// which covers every TPC-H column at the modeled scale factors).

/// Plain int64 column (dates are int64 day codes).
struct Int64Segment {
  const int64_t* data;
  double operator()(size_t i) const { return static_cast<double>(data[i]); }
  int64_t Raw(size_t i) const { return data[i]; }
};

/// Plain double column.
struct DoubleSegment {
  const double* data;
  double operator()(size_t i) const { return data[i]; }
  double Raw(size_t i) const { return data[i]; }
};

/// Dictionary-encoded string column: yields codes, not bytes. Code
/// order is intern order (not collation), so codes support equality and
/// set membership but never range semantics.
struct CodeSegment {
  const uint32_t* codes;
  uint32_t operator()(size_t i) const { return codes[i]; }
  uint32_t Raw(size_t i) const { return codes[i]; }
};

/// Invokes `fn` with the numeric segment of column `col`. The table
/// must be columnar and the column must not be a string column (both
/// checked). `fn` must accept any numeric segment type and all
/// instantiations must agree on the return type.
template <typename Fn>
auto WithNumericSegment(const Table& t, int col, Fn&& fn) {
  switch (t.columns()[col].type) {
    case ValueType::kInt:
      return fn(Int64Segment{t.IntData(col).data()});
    case ValueType::kDouble:
      return fn(DoubleSegment{t.DoubleData(col).data()});
    case ValueType::kString:
      break;
  }
  ELEPHANT_CHECK(false) << "string column '" << t.columns()[col].name
                        << "' has no numeric segment";
  return fn(DoubleSegment{nullptr});  // unreachable
}

/// Invokes `fn` with a segment of column `col` of any encoding. `fn`
/// must accept Int64Segment, DoubleSegment, and CodeSegment.
template <typename Fn>
auto WithSegment(const Table& t, int col, Fn&& fn) {
  switch (t.columns()[col].type) {
    case ValueType::kInt:
      return fn(Int64Segment{t.IntData(col).data()});
    case ValueType::kDouble:
      return fn(DoubleSegment{t.DoubleData(col).data()});
    case ValueType::kString:
      return fn(CodeSegment{t.StrCodes(col).data()});
  }
  ELEPHANT_CHECK(false) << "unreachable column type";
  return fn(DoubleSegment{nullptr});
}

/// First index in [lo, hi) whose value is inside the lower bound
/// (value > bound when strict, value >= bound otherwise), assuming the
/// segment is ascending over [lo, hi). Plain binary search over the
/// double image; O(log n) probes.
template <typename Seg>
size_t SegmentLowerBound(const Seg& seg, size_t lo, size_t hi, double bound,
                         bool strict) {
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    double v = seg(mid);
    bool below = strict ? v <= bound : v < bound;
    if (below) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index in [lo, hi) whose value is beyond the upper bound
/// (value >= bound when strict, value > bound otherwise), assuming the
/// segment is ascending over [lo, hi).
template <typename Seg>
size_t SegmentUpperBound(const Seg& seg, size_t lo, size_t hi, double bound,
                         bool strict) {
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    double v = seg(mid);
    bool inside = strict ? v < bound : v <= bound;
    if (inside) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_SEGMENT_H_
