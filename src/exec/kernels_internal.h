#ifndef ELEPHANT_EXEC_KERNELS_INTERNAL_H_
#define ELEPHANT_EXEC_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "exec/operators.h"
#include "exec/table.h"

namespace elephant::exec::internal {

/// Shared kernel internals: the key/hash/fold machinery the in-memory
/// columnar operators and the spilling operators (spill.cc) must agree
/// on bit-for-bit. Everything here takes pre-resolved column indices —
/// names are resolved once per plan by the caller, never re-hashed
/// inside a kernel (ISSUE 8 satellite). The determinism contracts
/// (hashing identical to the row path's RowKeyHash, equality matching
/// CompareValues, fold arithmetic matching UpdateAggStates) are
/// documented on the originals in operators.cc; moving them here does
/// not change a single instruction.

/// One component of a composite join/group key, reading raw typed
/// column storage. Hash and equality mirror HashValue/CompareValues:
/// numerics go through their widened-double image, strings through
/// their pool's cached byte hashes.
struct KeyPart {
  ValueType type = ValueType::kInt;
  const int64_t* ints = nullptr;
  const double* dbls = nullptr;
  const uint32_t* codes = nullptr;
  const StringPool* pool = nullptr;
};

inline std::vector<KeyPart> MakeKeyParts(const Table& t,
                                         const std::vector<int>& cols) {
  std::vector<KeyPart> parts;
  parts.reserve(cols.size());
  for (int c : cols) {
    KeyPart p;
    p.type = t.columns()[c].type;
    switch (p.type) {
      case ValueType::kInt:
        p.ints = t.IntData(c).data();
        break;
      case ValueType::kDouble:
        p.dbls = t.DoubleData(c).data();
        break;
      case ValueType::kString:
        p.codes = t.StrCodes(c).data();
        p.pool = &t.pool();
        break;
    }
    parts.push_back(p);
  }
  return parts;
}

inline double NumAt(const KeyPart& p, size_t i) {
  return p.type == ValueType::kInt ? static_cast<double>(p.ints[i])
                                   : p.dbls[i];
}

/// Same folding as RowKeyHash over HashValue — a columnar key hashes
/// identically to its row-path twin, so both paths bucket alike.
inline uint64_t KeyHashAt(const std::vector<KeyPart>& parts, size_t i) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const KeyPart& p : parts) {
    uint64_t hv = p.type == ValueType::kString ? p.pool->HashOf(p.codes[i])
                                               : HashNumeric(NumAt(p, i));
    h ^= hv;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Key equality matching CompareValues: numerics compare as widened
/// doubles, strings by bytes (a single code compare when both sides
/// share a pool).
inline bool KeysEqualAt(const std::vector<KeyPart>& a, size_t ia,
                        const std::vector<KeyPart>& b, size_t ib) {
  for (size_t k = 0; k < a.size(); ++k) {
    const KeyPart& pa = a[k];
    const KeyPart& pb = b[k];
    if (pa.type == ValueType::kString) {
      uint32_t ca = pa.codes[ia];
      uint32_t cb = pb.codes[ib];
      if (pa.pool == pb.pool) {
        if (ca != cb) return false;
      } else if (pa.pool->Get(ca) != pb.pool->Get(cb)) {
        return false;
      }
    } else {
      double da = NumAt(pa, ia);
      double db = NumAt(pb, ib);
      if (da < db || db < da) return false;
    }
  }
  return true;
}

// ---- Columnar hash-join build map ----------------------------------------

/// One distinct key within a hash bucket: a representative row on the
/// build side plus all build rows carrying the key, in global row order.
struct KeyGroup {
  uint32_t repr;
  std::vector<uint32_t> rows;
};

/// hash -> distinct keys with that hash. Grouping by the full 64-bit
/// hash first means equality runs only on (rare) colliding candidates.
using ColBuildMap = std::unordered_map<uint64_t, std::vector<KeyGroup>>;

inline void ColBuildInsert(ColBuildMap* m, const std::vector<KeyPart>& rparts,
                           uint64_t h, uint32_t idx) {
  std::vector<KeyGroup>& groups = (*m)[h];
  // One hash bucket's collision chain (a vector in insertion order),
  // not the unordered map itself.
  for (KeyGroup& g : groups) {  // elephant-lint: allow(unordered-iteration)
    if (KeysEqualAt(rparts, g.repr, rparts, idx)) {
      g.rows.push_back(idx);
      return;
    }
  }
  groups.push_back(KeyGroup{idx, {idx}});
}

/// Probe of a single-partition build map (the grace-join leaf shape).
inline const std::vector<uint32_t>* ColLookupOne(
    const ColBuildMap& m, const std::vector<KeyPart>& lparts,
    const std::vector<KeyPart>& rparts, size_t i) {
  auto it = m.find(KeyHashAt(lparts, i));
  if (it == m.end()) return nullptr;
  for (const KeyGroup& g : it->second) {
    if (KeysEqualAt(lparts, i, rparts, g.repr)) return &g.rows;
  }
  return nullptr;
}

/// Sentinel right index for unmatched left-outer rows.
constexpr uint32_t kPadRow = 0xFFFFFFFFu;

/// (left row, right row) output pair; kPadRow pads left-outer misses.
using JoinPair = std::pair<uint32_t, uint32_t>;

/// Materializes join output from an ordered pair list — the shared tail
/// of HashJoinColumnar and the grace join. Pool sharing, pad handling
/// and gather order are identical on both paths; defined in
/// operators.cc next to the helpers it reuses.
Table MaterializeJoinPairs(const Table& left, const Table& right,
                           const std::vector<JoinPair>& pairs, JoinType type);

// ---- Columnar aggregate fold ---------------------------------------------

/// Typed access to one aggregate's input: a raw column (`source`), a
/// computed per-row value (`vec`), or nothing (kCount).
struct AggInput {
  AggKind kind;
  const int64_t* ints = nullptr;
  const double* dbls = nullptr;
  const uint32_t* codes = nullptr;
  const StringPool* pool = nullptr;
  const std::function<double(size_t)>* vec = nullptr;
};

/// Columnar aggregate state. min/max keep the first value that wins
/// under CompareValues ordering; count-distinct keys the set exactly as
/// the row path serializes (ints exactly, doubles via std::to_string —
/// 6 fractional digits — and strings by dictionary code).
struct VecAggState {
  double sum = 0;
  int64_t count = 0;
  bool has_value = false;
  int64_t best_i = 0;
  double best_d = 0;
  uint32_t best_code = 0;
  std::unordered_set<int64_t> d_i;
  std::unordered_set<std::string> d_s;
  std::unordered_set<uint32_t> d_c;
};

std::vector<AggInput> MakeAggInputs(const Table& t,
                                    const std::vector<AggExpr>& aggs);

/// Folds row `i` into `states`, arithmetic identical to UpdateAggStates;
/// see the definition in operators.cc for the full contract.
void FoldRowColumnar(std::vector<VecAggState>* states,
                     const std::vector<AggInput>& ins, size_t i);

/// Materializes aggregate output from groups in emission order: group
/// key columns gathered from each group's first row, aggregate columns
/// finalized from the folded states. Shared by HashAggregateColumnar
/// and the spilling aggregate.
Table FinalizeGroups(const Table& t, const std::vector<int>& group_cols,
                     const std::vector<AggExpr>& aggs,
                     std::vector<Column> cols,
                     const std::vector<uint32_t>& first_rows,
                     const std::vector<std::vector<VecAggState>>& states);

// ---- Columnar sort comparator --------------------------------------------

/// One sort key reading raw typed storage, CompareValues semantics.
struct SortPart {
  const int64_t* ints = nullptr;
  const double* dbls = nullptr;
  const uint32_t* codes = nullptr;
  const StringPool* pool = nullptr;
  bool asc = true;
};

inline std::vector<SortPart> MakeSortParts(const Table& t,
                                           const std::vector<SortKey>& keys) {
  std::vector<SortPart> parts;
  parts.reserve(keys.size());
  for (const SortKey& k : keys) {
    SortPart p;
    p.asc = k.ascending;
    switch (t.columns()[k.col].type) {
      case ValueType::kInt:
        p.ints = t.IntData(k.col).data();
        break;
      case ValueType::kDouble:
        p.dbls = t.DoubleData(k.col).data();
        break;
      case ValueType::kString:
        p.codes = t.StrCodes(k.col).data();
        p.pool = &t.pool();
        break;
    }
    parts.push_back(p);
  }
  return parts;
}

/// Strict-weak "row a sorts before row b" over the key list: numerics
/// through the widened-double image, strings by bytes with an
/// equal-code shortcut. Exactly the comparator SortByColumnar always
/// used; the external merge must order identically or ties would land
/// in different runs than the in-memory stable sort.
inline bool SortIndexLess(const std::vector<SortPart>& parts, uint32_t a,
                          uint32_t b) {
  for (const SortPart& p : parts) {
    int c = 0;
    if (p.codes != nullptr) {
      uint32_t ca = p.codes[a];
      uint32_t cb = p.codes[b];
      if (ca == cb) continue;
      const std::string& sa = p.pool->Get(ca);
      const std::string& sb = p.pool->Get(cb);
      c = sa < sb ? -1 : (sb < sa ? 1 : 0);
    } else {
      double da =
          p.ints != nullptr ? static_cast<double>(p.ints[a]) : p.dbls[a];
      double db =
          p.ints != nullptr ? static_cast<double>(p.ints[b]) : p.dbls[b];
      c = da < db ? -1 : (db < da ? 1 : 0);
    }
    if (c != 0) return p.asc ? c < 0 : c > 0;
  }
  return false;
}

}  // namespace elephant::exec::internal

#endif  // ELEPHANT_EXEC_KERNELS_INTERNAL_H_
