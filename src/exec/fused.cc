#include "exec/fused.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/task_pool.h"
#include "exec/encoded_scan.h"
#include "exec/frozen.h"
#include "exec/segment.h"
#include "exec/zonemap.h"

namespace elephant::exec {

namespace {

bool FusedDefault() {
  const char* env = std::getenv("ELEPHANT_FUSED");
  return env == nullptr || std::string(env) != "0";
}

std::atomic<bool> g_fused_path{FusedDefault()};

std::atomic<uint64_t> g_chunks_scanned{0};
std::atomic<uint64_t> g_chunks_pruned{0};
std::atomic<uint64_t> g_chunks_full_match{0};
std::atomic<uint64_t> g_rows_scanned{0};
std::atomic<uint64_t> g_sorted_bounded{0};

/// Same fan-out threshold the materializing operators use, so fused
/// and oracle runs flip to parallel at the same input sizes.
bool UseParallelRows(size_t rows) {
  return ExecThreads() > 1 && rows >= 2 * ExecMorselSize();
}

/// Typed view of one range constraint: raw column pointer plus the
/// bounds, evaluated through the widened-double image (identical to
/// the segments and to CompareValues).
struct RangeEval {
  NumRange r;
  const int64_t* ints = nullptr;
  const double* dbls = nullptr;
  const ColumnZones* zones = nullptr;
  /// Non-null when the column is frozen and not thawed: the per-row
  /// loop skips this constraint; scan chunks evaluate it through the
  /// encoded kernels instead (chunk classification still uses `zones`).
  const FrozenColumn* fcol = nullptr;
  double est = 1.0;  ///< histogram selectivity, for evaluation order

  double At(size_t i) const {
    return ints != nullptr ? static_cast<double>(ints[i]) : dbls[i];
  }
};

/// Typed view of one code-set constraint, with prefix sums of the
/// match table so chunk classification counts matching codes inside a
/// [code_min, code_max] interval in O(1).
struct CodeEval {
  const uint32_t* codes = nullptr;
  const char* match = nullptr;
  std::vector<uint32_t> psum;
  const ColumnZones* zones = nullptr;
  const FrozenColumn* fcol = nullptr;  ///< see RangeEval::fcol
};

/// Ascending reader over one frozen column for the sorted binary
/// searches: pins and decodes a chunk only when a probe lands in it,
/// memoizing the last chunk (a binary search revisits neighbors).
/// Presents the widened-double image, like the plain segments.
class FrozenColReader {
 public:
  FrozenColReader(const FrozenColumn* fc, size_t chunk_rows)
      : fc_(fc), chunk_rows_(chunk_rows) {}

  double operator()(size_t i) const {
    size_t chunk = i / chunk_rows_;
    if (!loaded_ || chunk != cur_) Load(chunk);
    size_t off = i - chunk * chunk_rows_;
    return fc_->type == ValueType::kInt
               ? static_cast<double>(scratch_.ints[off])
               : scratch_.dbls[off];
  }

 private:
  void Load(size_t chunk) const {
    const FrozenChunk& ch = fc_->chunks[chunk];
    Result<PinnedSegment> pinned = PinSegment(ch.id);
    ELEPHANT_CHECK(pinned.ok())
        << "sorted-scan pin failed: " << pinned.status().ToString();
    PinnedSegment pin = std::move(pinned).value();
    Result<EncodedChunk> parsed =
        ParseChunk(pin.bytes().data(), pin.bytes().size());
    ELEPHANT_CHECK(parsed.ok())
        << "sorted-scan parse failed: " << parsed.status().ToString();
    const EncodedChunk& ec = parsed.value();
    if (fc_->type == ValueType::kInt) {
      scratch_.ints.resize(ec.rows);
      DecodeInt64Chunk(ec, scratch_.ints.data());
    } else {
      scratch_.dbls.resize(ec.rows);
      DecodeDoubleChunk(ec, scratch_.dbls.data());
    }
    cur_ = chunk;
    loaded_ = true;
  }

  const FrozenColumn* fc_;
  size_t chunk_rows_;
  mutable ChunkScratch scratch_;
  mutable size_t cur_ = 0;
  mutable bool loaded_ = false;
};

std::vector<uint32_t> MatchPrefixSum(const std::vector<char>& match) {
  std::vector<uint32_t> psum(match.size() + 1, 0);
  for (size_t k = 0; k < match.size(); ++k) {
    psum[k + 1] = psum[k] + (match[k] != 0 ? 1u : 0u);
  }
  return psum;
}

enum class ChunkClass { kPruned, kFullMatch, kScan };

/// Classifies one chunk against every planned constraint using only
/// zone bounds. Pruning and full-match are exact, never heuristic: a
/// pruned chunk provably contains no matching row, a full-match chunk
/// provably contains only matching rows (residuals disable full-match
/// before this is called). NaN-poisoned bounds fail every comparison
/// and land on kScan.
ChunkClass ClassifyChunk(const std::vector<RangeEval>& ranges,
                         const std::vector<CodeEval>& codes,
                         bool can_full_match, size_t chunk) {
  bool full = can_full_match;
  for (const RangeEval& re : ranges) {
    double cmin = re.zones->min[chunk];
    double cmax = re.zones->max[chunk];
    const NumRange& r = re.r;
    bool above = r.hi_strict ? cmin >= r.hi : cmin > r.hi;
    bool below = r.lo_strict ? cmax <= r.lo : cmax < r.lo;
    if (above || below) return ChunkClass::kPruned;
    // The chunk's values fill [cmin, cmax]; if both endpoints match an
    // interval constraint, everything between them does too.
    if (full && !(r.Matches(cmin) && r.Matches(cmax))) full = false;
  }
  for (const CodeEval& ce : codes) {
    uint32_t cmin = ce.zones->code_min[chunk];
    uint32_t cmax = ce.zones->code_max[chunk];
    uint32_t hits = ce.psum[cmax + 1] - ce.psum[cmin];
    if (hits == 0) return ChunkClass::kPruned;
    // Full only when every code in the interval matches: the chunk may
    // not contain all of them, but containing only matching codes is
    // then guaranteed.
    if (full && hits != cmax - cmin + 1) full = false;
  }
  return full ? ChunkClass::kFullMatch : ChunkClass::kScan;
}

}  // namespace

bool ExecFusedPath() {
  return g_fused_path.load(std::memory_order_relaxed);
}

void SetExecFusedPath(bool on) {
  g_fused_path.store(on, std::memory_order_relaxed);
}

FusedCounters FusedCountersSnapshot() {
  FusedCounters c;
  c.chunks_scanned = g_chunks_scanned.load(std::memory_order_relaxed);
  c.chunks_pruned = g_chunks_pruned.load(std::memory_order_relaxed);
  c.chunks_full_match = g_chunks_full_match.load(std::memory_order_relaxed);
  c.rows_scanned = g_rows_scanned.load(std::memory_order_relaxed);
  c.sorted_bounded = g_sorted_bounded.load(std::memory_order_relaxed);
  return c;
}

void ResetFusedCounters() {
  g_chunks_scanned.store(0, std::memory_order_relaxed);
  g_chunks_pruned.store(0, std::memory_order_relaxed);
  g_chunks_full_match.store(0, std::memory_order_relaxed);
  g_rows_scanned.store(0, std::memory_order_relaxed);
  g_sorted_bounded.store(0, std::memory_order_relaxed);
}

NumRange ColRange(const Table& t, const std::string& col, double lo,
                  double hi, bool lo_strict, bool hi_strict) {
  NumRange r;
  r.col = t.ColIndex(col);
  r.lo = lo;
  r.hi = hi;
  r.lo_strict = lo_strict;
  r.hi_strict = hi_strict;
  return r;
}

NumRange ColLess(const Table& t, const std::string& col, double hi,
                 bool strict) {
  NumRange r;
  r.col = t.ColIndex(col);
  r.hi = hi;
  r.hi_strict = strict;
  return r;
}

NumRange ColAtLeast(const Table& t, const std::string& col, double lo,
                    bool strict) {
  NumRange r;
  r.col = t.ColIndex(col);
  r.lo = lo;
  r.lo_strict = strict;
  return r;
}

NumRange ColEquals(const Table& t, const std::string& col, double v) {
  return ColRange(t, col, v, v);
}

CodeSet CodeMatch(const Table& t, const std::string& col,
                  const std::function<bool(const std::string&)>& pred) {
  CodeSet cs;
  cs.col = t.ColIndex(col);
  const StringPool& pool = t.pool();
  cs.match.resize(pool.size());
  for (uint32_t code = 0; code < pool.size(); ++code) {
    cs.match[code] = pred(pool.Get(code)) ? 1 : 0;
  }
  return cs;
}

CodeSet CodeEquals(const Table& t, const std::string& col,
                   const std::string& value) {
  return CodeMatch(t, col,
                   [&value](const std::string& s) { return s == value; });
}

ScanSpec SpecOf(NumRange r) {
  ScanSpec spec;
  spec.ranges.push_back(r);
  return spec;
}

ScanSpec SpecOf(CodeSet c) {
  ScanSpec spec;
  spec.codes.push_back(std::move(c));
  return spec;
}

IndexPredicate SpecPredicate(const Table& t, const ScanSpec& spec) {
  ELEPHANT_CHECK(t.EnsureColumnar()) << "ScanSpec needs a columnar table";
  // Self-contained closure state: typed pointers for the ranges, owned
  // copies of the match tables (the spec may not outlive the
  // predicate), the residual by value.
  struct State {
    std::vector<RangeEval> ranges;
    std::vector<std::pair<const uint32_t*, std::vector<char>>> codes;
    IndexPredicate residual;
  };
  auto state = std::make_shared<State>();
  for (const NumRange& r : spec.ranges) {
    RangeEval re;
    re.r = r;
    switch (t.columns()[r.col].type) {
      case ValueType::kInt:
        re.ints = t.IntData(r.col).data();
        break;
      case ValueType::kDouble:
        re.dbls = t.DoubleData(r.col).data();
        break;
      case ValueType::kString:
        ELEPHANT_CHECK(false) << "NumRange on string column '"
                              << t.columns()[r.col].name << "'";
        break;
    }
    state->ranges.push_back(re);
  }
  for (const CodeSet& cs : spec.codes) {
    ELEPHANT_CHECK(t.columns()[cs.col].type == ValueType::kString)
        << "CodeSet on non-string column '" << t.columns()[cs.col].name
        << "'";
    ELEPHANT_CHECK(cs.match.size() >= t.pool().size())
        << "CodeSet match table does not cover the pool";
    state->codes.emplace_back(t.StrCodes(cs.col).data(), cs.match);
  }
  state->residual = spec.residual;
  return [state](size_t i) {
    for (const RangeEval& re : state->ranges) {
      if (!re.r.Matches(re.At(i))) return false;
    }
    for (const auto& [codes, match] : state->codes) {
      if (match[codes[i]] == 0) return false;
    }
    return state->residual == nullptr || state->residual(i);
  };
}

std::vector<uint32_t> FusedSelect(const Table& t, const ScanSpec& spec) {
  size_t n = t.num_rows();
  if (n == 0) return {};
  ELEPHANT_CHECK(t.EnsureColumnar()) << "ScanSpec needs a columnar table";
  std::shared_ptr<const ZoneMaps> zm =
      ExecFusedPath() ? GetZoneMaps(t) : nullptr;
  if (zm == nullptr || zm->num_chunks == 0) {
    // Oracle path (knob off): same selection, computed row by row.
    return EvalSelection(n, SpecPredicate(t, spec));
  }

  // Plan. Ranges on verified-sorted columns collapse into one global
  // row interval by binary search; once a row is inside the interval
  // its range constraint provably holds, so the constraint drops out
  // of both chunk classification and per-row evaluation. The rest are
  // ordered most-selective-first by the zone-map histograms — an
  // evaluation-order decision only, never a semantic one.
  size_t row_lo = 0;
  size_t row_hi = n;
  bool bounded = false;
  // Frozen columns are read through the encoded kernels only when the
  // frozen chunk grid and the zone-map grid agree (they always do for
  // tables frozen at the current knob; a knob change falls back to the
  // thaw-on-read accessors).
  std::shared_ptr<const FrozenTableData> fz = t.frozen_data();
  const bool fz_aligned =
      fz != nullptr && fz->chunk_rows == zm->chunk_rows;
  auto frozen_col = [&](int col) -> const FrozenColumn* {
    return fz_aligned && !t.ColumnResident(col) ? &fz->cols[col] : nullptr;
  };
  std::vector<RangeEval> ranges;
  for (const NumRange& r : spec.ranges) {
    const ColumnZones& cz = zm->cols[r.col];
    ELEPHANT_CHECK(cz.type != ValueType::kString)
        << "NumRange on string column '" << t.columns()[r.col].name << "'";
    const FrozenColumn* fcol = frozen_col(r.col);
    if (cz.sorted_asc) {
      if (fcol != nullptr) {
        // Same binary search, probing through pinned chunks instead of
        // a resident array — O(log n) probes touch O(log n) chunks and
        // the column never thaws.
        FrozenColReader reader(fcol, fz->chunk_rows);
        row_lo = std::max(
            row_lo, SegmentLowerBound(reader, 0, n, r.lo, r.lo_strict));
        row_hi = std::min(
            row_hi, SegmentUpperBound(reader, 0, n, r.hi, r.hi_strict));
      } else {
        WithNumericSegment(t, r.col, [&](auto seg) {
          row_lo = std::max(row_lo,
                            SegmentLowerBound(seg, 0, n, r.lo, r.lo_strict));
          row_hi = std::min(row_hi,
                            SegmentUpperBound(seg, 0, n, r.hi, r.hi_strict));
          return 0;
        });
      }
      bounded = true;
      continue;
    }
    RangeEval re;
    re.r = r;
    re.zones = &cz;
    re.est = EstimateRangeSelectivity(cz.hist, r.lo, r.hi);
    if (fcol != nullptr) {
      re.fcol = fcol;
    } else if (cz.type == ValueType::kInt) {
      re.ints = t.IntData(r.col).data();
    } else {
      re.dbls = t.DoubleData(r.col).data();
    }
    ranges.push_back(re);
  }
  std::stable_sort(ranges.begin(), ranges.end(),
                   [](const RangeEval& a, const RangeEval& b) {
                     return a.est < b.est;
                   });
  std::vector<CodeEval> codes;
  for (const CodeSet& cs : spec.codes) {
    ELEPHANT_CHECK(t.columns()[cs.col].type == ValueType::kString)
        << "CodeSet on non-string column '" << t.columns()[cs.col].name
        << "'";
    ELEPHANT_CHECK(cs.match.size() >= t.pool().size())
        << "CodeSet match table does not cover the pool";
    CodeEval ce;
    ce.fcol = frozen_col(cs.col);
    if (ce.fcol == nullptr) ce.codes = t.StrCodes(cs.col).data();
    ce.match = cs.match.data();
    ce.psum = MatchPrefixSum(cs.match);
    ce.zones = &zm->cols[cs.col];
    codes.push_back(std::move(ce));
  }
  bool any_frozen = false;
  for (const RangeEval& re : ranges) any_frozen |= re.fcol != nullptr;
  for (const CodeEval& ce : codes) any_frozen |= ce.fcol != nullptr;

  if (bounded) g_sorted_bounded.fetch_add(1, std::memory_order_relaxed);
  if (row_lo >= row_hi) {
    // The sorted intervals alone exclude every row.
    g_chunks_pruned.fetch_add(zm->num_chunks, std::memory_order_relaxed);
    return {};
  }
  size_t first_chunk = row_lo / zm->chunk_rows;
  size_t last_chunk = (row_hi - 1) / zm->chunk_rows;
  size_t nchunks = last_chunk - first_chunk + 1;
  g_chunks_pruned.fetch_add(zm->num_chunks - nchunks,
                            std::memory_order_relaxed);

  const bool can_full_match = spec.residual == nullptr;
  const IndexPredicate& residual = spec.residual;
  // One chunk, one slot: slots are filled independently (possibly in
  // parallel) and concatenated in chunk order, which reproduces the
  // serial ascending scan exactly at any thread count.
  std::vector<std::vector<uint32_t>> slots(nchunks);
  auto scan_chunk = [&](size_t chunk) {
    size_t lo = std::max(row_lo, chunk * zm->chunk_rows);
    size_t hi = std::min(row_hi, std::min(n, (chunk + 1) * zm->chunk_rows));
    ChunkClass cls = ClassifyChunk(ranges, codes, can_full_match, chunk);
    std::vector<uint32_t>& out = slots[chunk - first_chunk];
    if (cls == ChunkClass::kPruned) {
      g_chunks_pruned.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (cls == ChunkClass::kFullMatch) {
      g_chunks_full_match.fetch_add(1, std::memory_order_relaxed);
      out.resize(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        out[i - lo] = static_cast<uint32_t>(i);
      }
      return;
    }
    g_chunks_scanned.fetch_add(1, std::memory_order_relaxed);
    g_rows_scanned.fetch_add(hi - lo, std::memory_order_relaxed);
    // Frozen constraints run first, chunk-granular, straight on the
    // pinned encoded bytes (pin-per-chunk: released before the next
    // constraint). Evaluation order within the conjunction is
    // semantics-free, so splitting frozen from resident constraints
    // cannot change the selection.
    size_t chunk_base = chunk * zm->chunk_rows;
    std::vector<uint8_t> bits;
    if (any_frozen) {
      size_t cend = std::min(n, chunk_base + zm->chunk_rows);
      bits.assign(cend - chunk_base, 1);
      const bool direct = ExecEncodedScanPath();
      ChunkScratch scratch;
      auto with_chunk_view = [&](const FrozenColumn* fcol, auto&& apply) {
        const FrozenChunk& ch = fcol->chunks[chunk];
        Result<PinnedSegment> pinned = PinSegment(ch.id);
        ELEPHANT_CHECK(pinned.ok())
            << "fused scan pin failed: " << pinned.status().ToString();
        PinnedSegment pin = std::move(pinned).value();
        Result<ChunkView> view =
            ParseChunkView(pin.bytes().data(), pin.bytes().size());
        ELEPHANT_CHECK(view.ok())
            << "fused scan parse failed: " << view.status().ToString();
        ELEPHANT_CHECK(view.value().rows == ch.rows);
        apply(view.value());
      };
      for (const RangeEval& re : ranges) {
        if (re.fcol == nullptr) continue;
        with_chunk_view(re.fcol, [&](const ChunkView& v) {
          if (direct) {
            EncodedRangeAnd(v, re.r, bits.data());
          } else {
            DecodedRangeAnd(v, re.r, bits.data(), &scratch);
          }
        });
      }
      for (const CodeEval& ce : codes) {
        if (ce.fcol == nullptr) continue;
        with_chunk_view(ce.fcol, [&](const ChunkView& v) {
          if (direct) {
            EncodedCodeAnd(v, ce.match, bits.data());
          } else {
            DecodedCodeAnd(v, ce.match, bits.data(), &scratch);
          }
        });
      }
    }
    for (size_t i = lo; i < hi; ++i) {
      bool ok = bits.empty() || bits[i - chunk_base] != 0;
      if (ok) {
        for (const RangeEval& re : ranges) {
          if (re.fcol != nullptr) continue;
          if (!re.r.Matches(re.At(i))) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        for (const CodeEval& ce : codes) {
          if (ce.fcol != nullptr) continue;
          if (ce.match[ce.codes[i]] == 0) {
            ok = false;
            break;
          }
        }
      }
      if (ok && residual != nullptr && !residual(i)) ok = false;
      if (ok) out.push_back(static_cast<uint32_t>(i));
    }
  };
  if (UseParallelRows(row_hi - row_lo) && nchunks > 1) {
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, nchunks, 1,
            [&](size_t clo, size_t chi) {
              for (size_t c = clo; c < chi; ++c) scan_chunk(first_chunk + c);
            },
            ExecThreads());
  } else {
    for (size_t c = 0; c < nchunks; ++c) scan_chunk(first_chunk + c);
  }

  size_t total = 0;
  for (const auto& s : slots) total += s.size();
  std::vector<uint32_t> sel;
  sel.reserve(total);
  for (const auto& s : slots) sel.insert(sel.end(), s.begin(), s.end());
  return sel;
}

Table FusedFilter(const Table& t, const ScanSpec& spec) {
  // This IS the pipeline's materialization point — one gather of the
  // final selection, no intermediate Table along the way.
  // elephant-lint: allow(fused-materialize)
  return GatherSelection(t, FusedSelect(t, spec));
}

Table FusedAggregate(const Table& t, const ScanSpec& spec,
                     const std::vector<std::string>& group_cols,
                     const AggFactory& aggs) {
  if (ExecFusedPath() && t.EnsureColumnar()) {
    std::vector<AggExpr> fused_aggs = aggs(t);
    if (AggsVectorizable(t, fused_aggs)) {
      std::vector<uint32_t> sel = FusedSelect(t, spec);
      bool empty_minmax = false;
      if (sel.empty()) {
        for (const AggExpr& a : fused_aggs) {
          if (a.kind == AggKind::kMin || a.kind == AggKind::kMax) {
            // Empty-input min/max finalizes to DefaultValue, which
            // only the materialized row path models.
            empty_minmax = true;
          }
        }
      }
      if (!empty_minmax) {
        std::vector<int> gcols;
        gcols.reserve(group_cols.size());
        for (const std::string& g : group_cols) {
          gcols.push_back(t.ColIndex(g));
        }
        return HashAggregateSelected(t, sel, gcols, fused_aggs);
      }
    }
  }
  // Oracle twin: materialize the filtered table and rebuild the
  // aggregates against it (VecAgg closures capture column pointers
  // into whichever table they will read).
  Table filtered = FusedFilter(t, spec);
  std::vector<AggExpr> oracle_aggs = aggs(filtered);
  // The oracle path behind the fused knob materializes on purpose.
  // elephant-lint: allow(fused-materialize)
  return HashAggregateOn(filtered, group_cols, oracle_aggs);
}

}  // namespace elephant::exec
