#ifndef ELEPHANT_EXEC_ENCODED_SCAN_H_
#define ELEPHANT_EXEC_ENCODED_SCAN_H_

#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "exec/compress.h"
#include "exec/fused.h"

namespace elephant::exec {

// ---- Direct-on-encoded scan kernels (DESIGN.md §17) ----------------------
//
// Predicate evaluation straight on the serialized chunk bytes of a
// frozen column — no decode buffer, no per-row branch on the codec:
//
//  - RLE chunks evaluate each run's value once and apply the verdict to
//    the whole run (evaluate-once-apply-to-run).
//  - Bit-packed / FOR chunks run word-at-a-time: 64-bit words of the
//    packed payload are loaded whole and their fields extracted
//    LSB-first, with the header's [min, max] shortcutting all-match and
//    no-match chunks before any word is touched.
//  - Dictionary chunks compare codes against the ScanSpec's match
//    table (the literal was translated to codes once, at plan time).
//
// Every kernel ANDs into a byte-per-row selection buffer
// (bits[i] &= matches), so conjunctions stack without an intermediate
// row materialization, and every comparison goes through the same
// widened-double image as the resident path — answers are bit-identical
// by construction, which the property tests pin against the
// decode-first oracles below across codec x type x selectivity
// (NaN and signed-zero doubles included).

/// Encoded-scan knob: on by default; ELEPHANT_ENCODED_SCAN=0 flips the
/// default to the decode-first oracle, and the setter overrides either
/// way (same pattern as ELEPHANT_FUSED).
bool ExecEncodedScanPath();
void SetExecEncodedScanPath(bool on);

/// Monotonic counters since the last reset; deterministic for a fixed
/// chunk/predicate sequence.
struct EncodedScanCounters {
  uint64_t chunks_direct = 0;    ///< chunks evaluated on encoded bytes
  uint64_t chunks_decoded = 0;   ///< chunks through the decode-first oracle
  uint64_t runs_evaluated = 0;   ///< RLE runs judged once for all rows
  uint64_t words_scanned = 0;    ///< 64-bit words in packed fast paths
};

EncodedScanCounters EncodedScanCountersSnapshot();
void ResetEncodedScanCounters();

/// Zero-copy view of one serialized chunk ([codec][type][rows] header
/// plus payload, the SerializeChunk layout). The payload pointer
/// aliases the caller's buffer — typically a pinned segment, which must
/// stay pinned while the view is in use.
struct ChunkView {
  Codec codec = Codec::kPlain;
  ValueType type = ValueType::kInt;
  uint32_t rows = 0;
  const uint8_t* payload = nullptr;
  size_t payload_size = 0;
};

/// Parses the 6-byte header and validates the payload shape (packed
/// headers present, plain sizes exact) without copying anything.
Result<ChunkView> ParseChunkView(const uint8_t* data, size_t size);

/// View of an in-memory EncodedChunk (tests and benches).
ChunkView MakeChunkView(const EncodedChunk& c);

/// ANDs a numeric range constraint into `bits` (one byte per row,
/// bits[i] &= matches), evaluating directly on the encoded payload.
/// The view must be a kInt or kDouble chunk.
void EncodedRangeAnd(const ChunkView& view, const NumRange& r,
                     uint8_t* bits);

/// ANDs a dictionary-code set constraint into `bits`. `match` is the
/// ScanSpec table indexed by code (match[code] != 0 selects the row).
/// The view must be a kString chunk.
void EncodedCodeAnd(const ChunkView& view, const char* match,
                    uint8_t* bits);

/// Decode-first oracles: same AND semantics, but the chunk is fully
/// decoded into `scratch` and compared row by row. These are the
/// ELEPHANT_ENCODED_SCAN=0 fallback and the property-test referee.
void DecodedRangeAnd(const ChunkView& view, const NumRange& r,
                     uint8_t* bits, ChunkScratch* scratch);
void DecodedCodeAnd(const ChunkView& view, const char* match,
                    uint8_t* bits, ChunkScratch* scratch);

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_ENCODED_SCAN_H_
