#include "exec/table.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/fingerprint.h"
#include "common/rng.h"

namespace elephant::exec {

int64_t AsInt(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<int64_t>(*d);
  ELEPHANT_CHECK(false) << "string value '" << std::get<std::string>(v)
                        << "' used as int";
  return 0;
}

double AsDouble(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  ELEPHANT_CHECK(false) << "string value '" << std::get<std::string>(v)
                        << "' used as double";
  return 0;
}

const std::string& AsString(const Value& v) {
  return std::get<std::string>(v);
}

int CompareValues(const Value& a, const Value& b) {
  if (std::holds_alternative<std::string>(a)) {
    const std::string& sa = std::get<std::string>(a);
    const std::string& sb = std::get<std::string>(b);
    if (sa < sb) return -1;
    if (sb < sa) return 1;
    return 0;
  }
  double da = AsDouble(a);
  double db = AsDouble(b);
  if (da < db) return -1;
  if (db < da) return 1;
  return 0;
}

uint64_t HashNumeric(double d) {
  if (d == 0.0) d = 0.0;  // -0.0 == 0.0, so they must hash alike
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return Fnv1a64(bits);
}

uint64_t HashValue(const Value& v) {
  // Numerics hash through their double image so that HashValue agrees
  // with CompareValues, which widens int vs double (RowKey{1} ==
  // RowKey{1.0} must land in one bucket). Beyond 2^53 the cast folds
  // distinct int64s together — exactly the values CompareValues already
  // calls equal, so hash and equality stay consistent there too.
  if (const auto* i = std::get_if<int64_t>(&v)) {
    return HashNumeric(static_cast<double>(*i));
  }
  if (const auto* d = std::get_if<double>(&v)) {
    return HashNumeric(*d);
  }
  const std::string& s = std::get<std::string>(v);
  return Fnv1a64(s.data(), s.size());
}

// ---- StringPool ---------------------------------------------------------

uint32_t StringPool::Intern(std::string s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(by_code_.size());
  ELEPHANT_CHECK(code != kNoCode) << "string pool exhausted";
  uint64_t hash = Fnv1a64(s.data(), s.size());
  auto inserted = index_.emplace(std::move(s), code).first;
  by_code_.push_back(&inserted->first);
  hashes_.push_back(hash);
  return code;
}

uint32_t StringPool::Find(std::string_view s) const {
  // std::string construction here is the price of C++17 unordered_map
  // lookup; Find is called per literal, not per row.
  auto it = index_.find(std::string(s));
  return it == index_.end() ? kNoCode : it->second;
}

// ---- ColumnVector -------------------------------------------------------

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kInt:
      ints_.reserve(n);
      break;
    case ValueType::kDouble:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      codes_.reserve(n);
      break;
  }
}

void ColumnVector::Resize(size_t n) {
  switch (type_) {
    case ValueType::kInt:
      ints_.resize(n);
      break;
    case ValueType::kDouble:
      doubles_.resize(n);
      break;
    case ValueType::kString:
      codes_.resize(n);
      break;
  }
}

void ColumnVector::Clear() {
  ints_.clear();
  ints_.shrink_to_fit();
  doubles_.clear();
  doubles_.shrink_to_fit();
  codes_.clear();
  codes_.shrink_to_fit();
}

// ---- RowBatch -----------------------------------------------------------

RowBatch::RowBatch(const std::vector<Column>& schema) {
  cols_.resize(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) cols_[i].type = schema[i].type;
}

void RowBatch::ReserveRows(size_t n) {
  for (BatchColumn& c : cols_) {
    switch (c.type) {
      case ValueType::kInt:
        c.ints.reserve(n);
        break;
      case ValueType::kDouble:
        c.doubles.reserve(n);
        break;
      case ValueType::kString:
        c.strs.reserve(n);
        break;
    }
  }
}

size_t RowBatch::num_rows() const {
  return cols_.empty() ? 0 : cols_[0].size();
}

// ---- Table --------------------------------------------------------------

Table::Table(std::vector<Column> columns, std::shared_ptr<StringPool> pool)
    : columns_(std::move(columns)), pool_(std::move(pool)) {
  col_index_.reserve(columns_.size());
  data_.reserve(columns_.size());
  bool has_string = false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    col_index_.emplace(columns_[i].name, static_cast<int>(i));
    data_.emplace_back(columns_[i].type);
    has_string |= columns_[i].type == ValueType::kString;
  }
  if (has_string && pool_ == nullptr) {
    pool_ = std::make_shared<StringPool>();
  }
}

void Table::CopyFrom(const Table& other) {
  std::shared_ptr<const ZoneMaps> zm;
  {
    // The lock serializes against a concurrent lazy materialization in
    // `other` (reads are otherwise lock-free once a representation is
    // built).
    MutexLock lock(&other.lazy_mu_);
    columns_ = other.columns_;
    col_index_ = other.col_index_;
    data_ = other.data_;
    pool_ = other.pool_;  // shared: derived tables reuse the dictionary
    num_rows_ = other.num_rows_;
    row_cache_ = other.row_cache_;
    rows_valid_.store(other.rows_valid_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    columnar_valid_.store(
        other.columnar_valid_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    heterogeneous_.store(other.heterogeneous_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    // Frozen chunks are immutable and shared; the thaw flags copy so
    // already-decoded columns (copied with data_ above) stay resident.
    frozen_ = other.frozen_;
    if (frozen_ != nullptr) {
      thawed_ = std::make_unique<std::atomic<uint32_t>[]>(columns_.size());
      for (size_t c = 0; c < columns_.size(); ++c) {
        thawed_[c].store(other.thawed_[c].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      }
    } else {
      thawed_.reset();
    }
    zm = other.zone_maps_;  // same data, same bounds: the maps transfer
  }
  // Taken after the other lock is released — never nested, no ordering.
  MutexLock lock(&lazy_mu_);
  zone_maps_ = std::move(zm);
}

void Table::MoveFrom(Table&& other) noexcept {
  std::shared_ptr<const ZoneMaps> zm;
  {
    MutexLock lock(&other.lazy_mu_);
    zm = std::move(other.zone_maps_);
    other.zone_maps_.reset();
  }
  {
    MutexLock lock(&lazy_mu_);
    zone_maps_ = std::move(zm);
  }
  columns_ = std::move(other.columns_);
  col_index_ = std::move(other.col_index_);
  data_ = std::move(other.data_);
  pool_ = std::move(other.pool_);
  num_rows_ = other.num_rows_;
  row_cache_ = std::move(other.row_cache_);
  rows_valid_.store(other.rows_valid_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  columnar_valid_.store(other.columnar_valid_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  heterogeneous_.store(other.heterogeneous_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  frozen_ = std::move(other.frozen_);
  thawed_ = std::move(other.thawed_);
  other.frozen_.reset();
  other.columns_.clear();
  other.col_index_.clear();
  other.data_.clear();
  other.row_cache_.clear();
  other.num_rows_ = 0;
  other.rows_valid_.store(false, std::memory_order_relaxed);
  other.columnar_valid_.store(true, std::memory_order_relaxed);
  other.heterogeneous_.store(false, std::memory_order_relaxed);
}

Table::Table(const Table& other) { CopyFrom(other); }

Table& Table::operator=(const Table& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

Table::Table(Table&& other) noexcept { MoveFrom(std::move(other)); }

Table& Table::operator=(Table&& other) noexcept {
  if (this != &other) MoveFrom(std::move(other));
  return *this;
}

int Table::ColIndex(const std::string& name) const {
  int idx = FindCol(name);
  ELEPHANT_CHECK(idx >= 0) << "unknown column '" << name << "'";
  return idx;
}

int Table::FindCol(const std::string& name) const {
  auto it = col_index_.find(name);
  return it == col_index_.end() ? -1 : it->second;
}

void Table::AddRow(Row row) {
  DetachFrozen();
  InvalidateZoneMaps();
  ELEPHANT_DCHECK(row.size() == columns_.size())
      << "row has " << row.size() << " cells, schema has "
      << columns_.size() << " columns";
  if (columnar_valid_.load(std::memory_order_relaxed)) {
    bool match = true;
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].index() != static_cast<size_t>(columns_[c].type)) {
        match = false;
        break;
      }
    }
    if (match) {
      for (size_t c = 0; c < row.size(); ++c) {
        switch (columns_[c].type) {
          case ValueType::kInt:
            data_[c].ints().push_back(std::get<int64_t>(row[c]));
            break;
          case ValueType::kDouble:
            data_[c].doubles().push_back(std::get<double>(row[c]));
            break;
          case ValueType::kString:
            data_[c].codes().push_back(
                pool_->Intern(std::move(std::get<std::string>(row[c]))));
            break;
        }
      }
      ++num_rows_;
      InvalidateRows();
      return;
    }
    // A cell's alternative disagrees with the schema (tests mix types on
    // purpose): this table has no columnar form — degrade to rows.
    EnsureRows();
    columnar_valid_.store(false, std::memory_order_release);
    heterogeneous_.store(true, std::memory_order_relaxed);
    for (ColumnVector& cv : data_) cv.Clear();
  }
  row_cache_.push_back(std::move(row));
}

void Table::AppendBatch(RowBatch&& batch) {
  DetachFrozen();
  InvalidateZoneMaps();
  ELEPHANT_CHECK(batch.cols_.size() == columns_.size())
      << "batch has " << batch.cols_.size() << " columns, schema has "
      << columns_.size();
  size_t n = batch.num_rows();
  for (size_t c = 0; c < batch.cols_.size(); ++c) {
    ELEPHANT_CHECK(batch.cols_[c].type == columns_[c].type &&
                   batch.cols_[c].size() == n)
        << "uneven or mistyped batch column " << c;
  }
  ELEPHANT_CHECK(EnsureColumnar()) << "cannot batch-append to a "
                                      "heterogeneous table";
  for (size_t c = 0; c < batch.cols_.size(); ++c) {
    RowBatch::BatchColumn& bc = batch.cols_[c];
    switch (columns_[c].type) {
      case ValueType::kInt:
        data_[c].ints().insert(data_[c].ints().end(), bc.ints.begin(),
                               bc.ints.end());
        break;
      case ValueType::kDouble:
        data_[c].doubles().insert(data_[c].doubles().end(),
                                  bc.doubles.begin(), bc.doubles.end());
        break;
      case ValueType::kString: {
        std::vector<uint32_t>& codes = data_[c].codes();
        codes.reserve(codes.size() + bc.strs.size());
        for (std::string& s : bc.strs) {
          codes.push_back(pool_->Intern(std::move(s)));
        }
        break;
      }
    }
  }
  num_rows_ += n;
  InvalidateRows();
}

void Table::Reserve(size_t n) {
  if (columnar_valid_.load(std::memory_order_relaxed)) {
    for (ColumnVector& cv : data_) cv.Reserve(n);
  } else {
    row_cache_.reserve(n);
  }
}

std::vector<Row>& Table::mutable_rows() {
  DetachFrozen();
  InvalidateZoneMaps();
  EnsureRows();
  columnar_valid_.store(false, std::memory_order_release);
  for (ColumnVector& cv : data_) cv.Clear();
  return row_cache_;
}

void Table::EnsureRows() const {
  if (rows_valid_.load(std::memory_order_acquire)) return;
  ThawAllResident();  // the row build below reads every column of data_
  MutexLock lock(&lazy_mu_);
  if (rows_valid_.load(std::memory_order_relaxed)) return;
  ELEPHANT_CHECK(columnar_valid_.load(std::memory_order_relaxed))
      << "table has neither rows nor columns";
  row_cache_.clear();
  row_cache_.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    Row r;
    r.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      switch (columns_[c].type) {
        case ValueType::kInt:
          r.emplace_back(data_[c].ints()[i]);
          break;
        case ValueType::kDouble:
          r.emplace_back(data_[c].doubles()[i]);
          break;
        case ValueType::kString:
          r.emplace_back(pool_->Get(data_[c].codes()[i]));
          break;
      }
    }
    row_cache_.push_back(std::move(r));
  }
  rows_valid_.store(true, std::memory_order_release);
}

void Table::InvalidateRows() {
  if (rows_valid_.load(std::memory_order_relaxed)) {
    rows_valid_.store(false, std::memory_order_relaxed);
    row_cache_.clear();
    row_cache_.shrink_to_fit();
  }
}

bool Table::EnsureColumnar() const {
  if (columnar_valid_.load(std::memory_order_acquire)) return true;
  if (heterogeneous_.load(std::memory_order_relaxed)) return false;
  MutexLock lock(&lazy_mu_);
  if (columnar_valid_.load(std::memory_order_relaxed)) return true;
  if (!heterogeneous_.load(std::memory_order_relaxed)) {
    RebuildColumnsLocked();
  }
  return !heterogeneous_.load(std::memory_order_relaxed);
}

void Table::RebuildColumnsLocked() const {
  ELEPHANT_CHECK(rows_valid_.load(std::memory_order_relaxed))
      << "table has neither rows nor columns";
  for (const Row& r : row_cache_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (r[c].index() != static_cast<size_t>(columns_[c].type)) {
        heterogeneous_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    data_[c].Clear();
    data_[c].Reserve(row_cache_.size());
    if (columns_[c].type == ValueType::kString && pool_ == nullptr) {
      pool_ = std::make_shared<StringPool>();
    }
  }
  for (const Row& r : row_cache_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      switch (columns_[c].type) {
        case ValueType::kInt:
          data_[c].ints().push_back(std::get<int64_t>(r[c]));
          break;
        case ValueType::kDouble:
          data_[c].doubles().push_back(std::get<double>(r[c]));
          break;
        case ValueType::kString:
          data_[c].codes().push_back(
              pool_->Intern(std::get<std::string>(r[c])));
          break;
      }
    }
  }
  num_rows_ = row_cache_.size();
  columnar_valid_.store(true, std::memory_order_release);
}

Value Table::ValueAt(size_t row, int col) const {
  if (!columnar_valid_.load(std::memory_order_acquire)) {
    return row_cache_[row][col];
  }
  if (frozen_ != nullptr) EnsureColResident(col);
  switch (columns_[col].type) {
    case ValueType::kInt:
      return Value{data_[col].ints()[row]};
    case ValueType::kDouble:
      return Value{data_[col].doubles()[row]};
    case ValueType::kString:
      return Value{pool_->Get(data_[col].codes()[row])};
  }
  return Value{int64_t{0}};
}

void Table::ResizeColumnar(size_t n) {
  DetachFrozen();
  InvalidateZoneMaps();
  ELEPHANT_CHECK(!heterogeneous_.load(std::memory_order_relaxed));
  for (ColumnVector& cv : data_) cv.Resize(n);
  num_rows_ = n;
  columnar_valid_.store(true, std::memory_order_relaxed);
  InvalidateRows();
}

ColumnVector& Table::MutableCol(int col) {
  DetachFrozen();
  InvalidateZoneMaps();
  ELEPHANT_CHECK(columnar_valid_.load(std::memory_order_relaxed))
      << "MutableCol on a row-authoritative table";
  InvalidateRows();
  return data_[col];
}

void Table::SetRowCount(size_t n) {
  DetachFrozen();
  InvalidateZoneMaps();
  for (size_t c = 0; c < data_.size(); ++c) {
    ELEPHANT_DCHECK(data_[c].size() == n)
        << "column " << c << " has " << data_[c].size() << " rows, not "
        << n;
  }
  num_rows_ = n;
  InvalidateRows();
}

StringPool* Table::mutable_pool() {
  if (pool_ == nullptr) pool_ = std::make_shared<StringPool>();
  return pool_.get();
}

std::shared_ptr<const ZoneMaps> Table::zone_maps() const {
  MutexLock lock(&lazy_mu_);
  return zone_maps_;
}

void Table::set_zone_maps(std::shared_ptr<const ZoneMaps> zm) const {
  MutexLock lock(&lazy_mu_);
  zone_maps_ = std::move(zm);
}

void Table::InvalidateZoneMaps() {
  MutexLock lock(&lazy_mu_);
  zone_maps_.reset();
}

void Table::DetachFrozen() {
  if (frozen_ == nullptr) return;
  // Thaw first: the table must stay readable after the frozen chunks
  // are let go (the last owner removes them from the segment cache).
  ThawAllResident();
  frozen_.reset();
  thawed_.reset();
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << " | ";
    os << columns_[i].name;
  }
  os << "\n";
  size_t total = num_rows();
  size_t n = std::min(max_rows, total);
  bool columnar = EnsureColumnar();
  if (columnar) ThawAllResident();
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << " | ";
      if (columnar) {
        switch (columns_[c].type) {
          case ValueType::kInt:
            os << data_[c].ints()[r];
            break;
          case ValueType::kDouble:
            os << data_[c].doubles()[r];
            break;
          case ValueType::kString:
            os << pool_->Get(data_[c].codes()[r]);
            break;
        }
      } else {
        const Value& v = row_cache_[r][c];
        if (const auto* i = std::get_if<int64_t>(&v)) {
          os << *i;
        } else if (const auto* d = std::get_if<double>(&v)) {
          os << *d;
        } else {
          os << std::get<std::string>(v);
        }
      }
    }
    os << "\n";
  }
  if (total > n) {
    os << "... (" << total << " rows total)\n";
  }
  return os.str();
}

uint64_t TableFingerprint(const Table& t) {
  Fingerprint fp;
  fp.Mix(static_cast<uint64_t>(t.num_cols()));
  for (const Column& c : t.columns()) {
    fp.Mix(std::string_view(c.name));
    fp.Mix(static_cast<int>(c.type));
  }
  fp.Mix(static_cast<uint64_t>(t.num_rows()));
  if (t.EnsureColumnar()) {
    for (size_t i = 0; i < t.num_rows(); ++i) {
      for (int c = 0; c < t.num_cols(); ++c) {
        fp.Mix(static_cast<int>(t.columns()[c].type));
        switch (t.columns()[c].type) {
          case ValueType::kInt:
            fp.Mix(t.IntData(c)[i]);
            break;
          case ValueType::kDouble:
            fp.Mix(t.DoubleData(c)[i]);
            break;
          case ValueType::kString:
            fp.Mix(std::string_view(t.pool().Get(t.StrCodes(c)[i])));
            break;
        }
      }
    }
    return fp.value();
  }
  for (size_t i = 0; i < t.num_rows(); ++i) {
    for (int c = 0; c < t.num_cols(); ++c) {
      const Value& v = t.rows()[i][c];
      fp.Mix(static_cast<int>(v.index()));
      if (const auto* iv = std::get_if<int64_t>(&v)) {
        fp.Mix(*iv);
      } else if (const auto* d = std::get_if<double>(&v)) {
        fp.Mix(*d);
      } else {
        fp.Mix(std::string_view(std::get<std::string>(v)));
      }
    }
  }
  return fp.value();
}

}  // namespace elephant::exec
