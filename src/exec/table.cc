#include "exec/table.h"

#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace elephant::exec {

int64_t AsInt(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<int64_t>(*d);
  ELEPHANT_CHECK(false) << "string value '" << std::get<std::string>(v)
                        << "' used as int";
  return 0;
}

double AsDouble(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  ELEPHANT_CHECK(false) << "string value '" << std::get<std::string>(v)
                        << "' used as double";
  return 0;
}

const std::string& AsString(const Value& v) {
  return std::get<std::string>(v);
}

int CompareValues(const Value& a, const Value& b) {
  if (std::holds_alternative<std::string>(a)) {
    const std::string& sa = std::get<std::string>(a);
    const std::string& sb = std::get<std::string>(b);
    if (sa < sb) return -1;
    if (sb < sa) return 1;
    return 0;
  }
  double da = AsDouble(a);
  double db = AsDouble(b);
  if (da < db) return -1;
  if (db < da) return 1;
  return 0;
}

uint64_t HashValue(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    return Fnv1a64(static_cast<uint64_t>(*i));
  }
  if (const auto* d = std::get_if<double>(&v)) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(*d));
    __builtin_memcpy(&bits, d, sizeof(bits));
    return Fnv1a64(bits);
  }
  const std::string& s = std::get<std::string>(v);
  return Fnv1a64(s.data(), s.size());
}

int Table::ColIndex(const std::string& name) const {
  int idx = FindCol(name);
  ELEPHANT_CHECK(idx >= 0) << "unknown column '" << name << "'";
  return idx;
}

int Table::FindCol(const std::string& name) const {
  auto it = col_index_.find(name);
  return it == col_index_.end() ? -1 : it->second;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << " | ";
    os << columns_[i].name;
  }
  os << "\n";
  size_t n = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << " | ";
      const Value& v = rows_[r][c];
      if (const auto* i = std::get_if<int64_t>(&v)) {
        os << *i;
      } else if (const auto* d = std::get_if<double>(&v)) {
        os << *d;
      } else {
        os << std::get<std::string>(v);
      }
    }
    os << "\n";
  }
  if (rows_.size() > n) {
    os << "... (" << rows_.size() << " rows total)\n";
  }
  return os.str();
}

}  // namespace elephant::exec
