#ifndef ELEPHANT_EXEC_SEGCACHE_H_
#define ELEPHANT_EXEC_SEGCACHE_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace elephant::exec {

/// Execution memory budget (DESIGN.md §15). 0 means unlimited: every
/// operator keeps its fully in-memory shape, which is also the oracle
/// the spilling paths are tested against. A non-zero budget bounds
/// operator working state: half of it backs the segment cache (encoded
/// chunks at rest), the other half is the planning target for hash
/// tables, sort runs, and partition fan-outs.
///
/// The budget is read once per operator invocation and every spill
/// decision is a pure function of (input byte sizes, budget) — never of
/// live allocation counters — so a given (plan, budget) pair takes the
/// same code path on every run and at every thread count.
size_t ExecMemoryBudget();

/// Sets the budget in bytes (0 = unlimited) and resizes the global
/// segment cache to half of it. Test/bench knob; the environment
/// variable ELEPHANT_MEM_BUDGET ("64MB", "1GB", plain bytes) seeds the
/// initial value.
void SetExecMemoryBudget(size_t bytes);

/// Parses "64MB" / "1gb" / "4096" style sizes (B/KB/MB/GB suffixes,
/// case-insensitive, power-of-two units). Returns an error Status on
/// malformed input.
Result<size_t> ParseByteSize(const std::string& text);

/// A paged cache of immutable byte segments (encoded column chunks).
/// Segments are inserted resident; once the resident total exceeds the
/// cache budget, a clock sweep over ids in insertion order evicts
/// unpinned segments to an anonymous spill file (created lazily,
/// deleted on process exit). Pinning a spilled segment reads it back;
/// payloads are immutable, so a clean on-disk copy is written at most
/// once and re-eviction after that is free.
///
/// Determinism: ids are assigned from a counter and the clock hand
/// walks the ordered id map, so for a fixed sequence of cache
/// operations the eviction order — and every stats counter — is fully
/// reproducible. Query answers never depend on eviction at all: a pin
/// returns the same bytes whether the segment was resident or on disk.
///
/// Thread safety: every member is guarded by one mutex; pins are
/// counted so concurrent morsels can hold overlapping segments.
class SegmentCache {
 public:
  using Id = uint64_t;

  struct Stats {
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t spill_bytes_written = 0;
    uint64_t spill_bytes_read = 0;
    uint64_t resident_bytes = 0;
    uint64_t entries = 0;
    uint64_t pinned = 0;
  };

  SegmentCache() = default;
  ~SegmentCache();
  SegmentCache(const SegmentCache&) = delete;
  SegmentCache& operator=(const SegmentCache&) = delete;

  /// The process-wide cache used by the spilling operators.
  static SegmentCache& Global();

  /// Takes ownership of `bytes`, returns its id. May evict other
  /// unpinned segments (and surfaces their spill-write errors here).
  Result<Id> Insert(std::vector<uint8_t> bytes);

  /// Pins a segment and returns its bytes, reading them back from the
  /// spill file when evicted. Unpin exactly once per successful Pin.
  Result<std::shared_ptr<const std::vector<uint8_t>>> Pin(Id id);
  void Unpin(Id id);

  /// Drops a segment and recycles its spill-file slot. Removing a
  /// pinned or unknown id is a programming error (CHECK).
  void Remove(Id id);

  /// Like Remove but tolerates ids the cache no longer knows (a test's
  /// Clear() may run before the last frozen-table owner is destroyed).
  /// Discarding a *pinned* segment is still a CHECK. Returns whether
  /// the segment was found and dropped.
  bool Discard(Id id);

  /// Drops everything (CHECKs nothing is pinned) and closes the spill
  /// file. Budget and injected faults are preserved; stats reset.
  void Clear();

  /// Cache budget in bytes; 0 = never evict.
  void SetBudget(size_t bytes);
  size_t Budget() const;

  Stats GetStats() const;

  /// Fault injection for the chaos suite: the next `n` spill-file I/O
  /// operations (writes on eviction, reads on pin) fail with an
  /// IOError Status. 0 disarms.
  void InjectSpillErrors(int n);

 private:
  struct Entry {
    std::shared_ptr<const std::vector<uint8_t>> data;  // null when on disk only
    size_t size = 0;
    int pins = 0;
    bool ref = false;     // clock second-chance bit
    long file_off = -1;   // byte offset in the spill file, -1 = never spilled
  };

  void RemoveLocked(std::map<Id, Entry>::iterator it) ELEPHANT_REQUIRES(mu_);
  Status EvictToBudgetLocked() ELEPHANT_REQUIRES(mu_);
  Status SpillLocked(Id id, Entry* e) ELEPHANT_REQUIRES(mu_);
  Status LoadLocked(Entry* e) ELEPHANT_REQUIRES(mu_);
  bool TakeInjectedFaultLocked() ELEPHANT_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<Id, Entry> entries_ ELEPHANT_GUARDED_BY(mu_);
  Id next_id_ ELEPHANT_GUARDED_BY(mu_) = 1;
  Id hand_ ELEPHANT_GUARDED_BY(mu_) = 0;
  size_t budget_ ELEPHANT_GUARDED_BY(mu_) = 0;
  size_t resident_ ELEPHANT_GUARDED_BY(mu_) = 0;
  std::FILE* spill_ ELEPHANT_GUARDED_BY(mu_) = nullptr;
  long spill_end_ ELEPHANT_GUARDED_BY(mu_) = 0;
  /// Exact-size free lists of recycled spill-file slots, ordered so
  /// slot reuse is deterministic.
  std::map<size_t, std::vector<long>> free_slots_ ELEPHANT_GUARDED_BY(mu_);
  int inject_faults_ ELEPHANT_GUARDED_BY(mu_) = 0;
  Stats stats_ ELEPHANT_GUARDED_BY(mu_);
};

/// RAII pin: holds the bytes of one cached segment for the scope.
class PinnedSegment {
 public:
  PinnedSegment() = default;
  PinnedSegment(SegmentCache* cache, SegmentCache::Id id,
                std::shared_ptr<const std::vector<uint8_t>> data)
      : cache_(cache), id_(id), data_(std::move(data)) {}
  PinnedSegment(PinnedSegment&& o) noexcept
      : cache_(o.cache_), id_(o.id_), data_(std::move(o.data_)) {
    o.cache_ = nullptr;
  }
  PinnedSegment& operator=(PinnedSegment&& o) noexcept {
    if (this != &o) {
      Release();
      cache_ = o.cache_;
      id_ = o.id_;
      data_ = std::move(o.data_);
      o.cache_ = nullptr;
    }
    return *this;
  }
  PinnedSegment(const PinnedSegment&) = delete;
  PinnedSegment& operator=(const PinnedSegment&) = delete;
  ~PinnedSegment() { Release(); }

  const std::vector<uint8_t>& bytes() const { return *data_; }

 private:
  void Release() {
    if (cache_ != nullptr) {
      cache_->Unpin(id_);
      cache_ = nullptr;
    }
  }

  SegmentCache* cache_ = nullptr;
  SegmentCache::Id id_ = 0;
  std::shared_ptr<const std::vector<uint8_t>> data_;
};

/// Pins `id` in the global cache, propagating Pin errors.
Result<PinnedSegment> PinSegment(SegmentCache::Id id);

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_SEGCACHE_H_
