#ifndef ELEPHANT_EXEC_SPILL_H_
#define ELEPHANT_EXEC_SPILL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/operators.h"
#include "exec/table.h"

namespace elephant::exec {

/// Grace-degrading pipeline breakers (DESIGN.md §15). When a non-zero
/// execution memory budget (segcache.h) says an operator's working
/// state would not fit, HashJoin / HashAggregate / SortBy route here:
/// inputs are hash-partitioned (join, aggregate) or cut into sorted
/// runs (sort), the partition index sets / run keys are compressed into
/// encoded chunks and parked in the global SegmentCache — which pages
/// them to the spill file under pressure — and the pieces are processed
/// partition-at-a-time through the TaskPool.
///
/// Every Try* operator is bit-identical to its in-memory twin, at any
/// thread count:
///  - grace join: each left row's key lives in exactly one partition
///    and build order within a partition is global row order, so a
///    final stable sort of the emitted (left, right) pairs by left row
///    reproduces the in-memory probe order exactly;
///  - spilling aggregate: partitions fold their rows in ascending
///    global row order (same double rounding as the serial fold) and
///    groups are emitted sorted by first global row index — the same
///    merge rule the in-memory parallel path already uses;
///  - external sort: runs are contiguous index ranges stable-sorted
///    with the shared comparator, and the loser-select merge breaks
///    ties by run index, which equals original-index order.
///
/// Failure contract: any spill-file I/O error surfaces as a Status from
/// the Try* entry point with no partial results and no segments leaked
/// in the cache; the public operators then fall back to the in-memory
/// path (correct, merely unbounded) and count the fallback.

struct SpillCounters {
  uint64_t join_spills = 0;
  uint64_t agg_spills = 0;
  uint64_t sort_spills = 0;
  /// Leaf partitions / sort runs processed across all spilling ops.
  uint64_t partitions = 0;
  /// Partitions that had to re-partition on deeper hash bits.
  uint64_t recursions = 0;
  /// Spill attempts abandoned on I/O error (in-memory fallback taken).
  uint64_t fallbacks = 0;
};

SpillCounters GetSpillCounters();
void ResetSpillCounters();

/// Columnar payload bytes of a table: 8 bytes per numeric cell, 4 per
/// dictionary code (pool bytes excluded — the pool is shared, not
/// per-operator state). Spill planning is a pure function of this and
/// the budget.
size_t TableByteSize(const Table& t);

/// Deterministic spill decisions, true when the operator's estimated
/// working state exceeds half the budget (the other half belongs to the
/// segment cache). Always false when the budget is unlimited or the
/// input has no columnar form.
bool SpillJoinPlanned(const Table& right);
bool SpillAggPlanned(const Table& t, size_t input_rows);
bool SpillSortPlanned(const Table& t, const std::vector<SortKey>& keys);

/// Grace hash join: partitions both sides by high key-hash bits,
/// parks the partition index sets in the segment cache, joins
/// partition-at-a-time (recursing on deeper hash bits when a build
/// partition still exceeds its share), and restores the in-memory
/// emission order with one stable sort by left row. Inputs must be
/// columnar with vectorizable key pairs (the caller gates on the same
/// conditions as HashJoinColumnar).
Result<Table> TryGraceHashJoin(const Table& left, const Table& right,
                               const std::vector<int>& left_keys,
                               const std::vector<int>& right_keys,
                               JoinType type);

/// Spilling hash aggregate over `t` (or over the ascending selection
/// `sel` when non-null — the HashAggregateSelected shape). group_cols
/// must be non-empty; global aggregates never spill (their working
/// state is one row).
Result<Table> TrySpillingHashAggregate(const Table& t,
                                       const std::vector<int>& group_cols,
                                       const std::vector<AggExpr>& aggs,
                                       const std::vector<uint32_t>* sel);

/// External merge sort: fixed-size contiguous runs are stable-sorted in
/// parallel, each run's key images and index slices are compressed into
/// the segment cache, then a serial k-way merge (ties broken by run
/// index) streams the final permutation.
Result<Table> TryExternalSortBy(const Table& t,
                                const std::vector<SortKey>& keys);

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_SPILL_H_
