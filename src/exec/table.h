#ifndef ELEPHANT_EXEC_TABLE_H_
#define ELEPHANT_EXEC_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace elephant::exec {

/// Column types supported by the executor. TPC-H decimals are carried as
/// doubles (sufficient for benchmark validation), dates as int64 day
/// codes.
enum class ValueType { kInt, kDouble, kString };

/// A dynamically typed cell.
using Value = std::variant<int64_t, double, std::string>;

/// Accessors with numeric widening (int -> double).
int64_t AsInt(const Value& v);
double AsDouble(const Value& v);
const std::string& AsString(const Value& v);

/// Three-way comparison consistent across numeric types.
int CompareValues(const Value& a, const Value& b);

/// Hash of a numeric value by its widened-double bit pattern (with -0.0
/// canonicalized onto +0.0). Hashing through the double image keeps
/// HashValue consistent with CompareValues, which compares all numerics
/// as doubles: two values that CompareValues calls equal always hash
/// equal, including int64 vs double of the same magnitude.
uint64_t HashNumeric(double d);

/// Hash for joining/grouping. Consistent with CompareValues equality.
uint64_t HashValue(const Value& v);

struct Column {
  std::string name;
  ValueType type;
};

/// Per-chunk min/max zone maps + sorted flags (exec/zonemap.h). Tables
/// cache one instance, built on demand by GetZoneMaps and dropped on any
/// mutation.
struct ZoneMaps;

/// Segment-backed storage for frozen tables (exec/frozen.h): per-column
/// compressed chunks living in the global segment cache.
struct FrozenTableData;

using Row = std::vector<Value>;

/// Interning pool for a table's string columns. Each distinct string is
/// stored once and addressed by a dense uint32 code; column vectors hold
/// codes, so equality within one pool is a code compare and the byte
/// hash of each distinct string is computed exactly once. Pools are
/// shared (via shared_ptr) between a table and tables derived from it by
/// code-preserving operators (filter, sort, limit), so derivation never
/// re-interns. Interning is append-only: existing codes stay valid
/// forever, but Intern itself is not safe to run concurrently with
/// readers of the same pool.
class StringPool {
 public:
  static constexpr uint32_t kNoCode = 0xFFFFFFFFu;

  /// Returns the code of `s`, interning it first if new.
  uint32_t Intern(std::string s);
  /// Returns the code of `s`, or kNoCode when it was never interned.
  uint32_t Find(std::string_view s) const;

  const std::string& Get(uint32_t code) const {
    ELEPHANT_DCHECK(code < by_code_.size());
    return *by_code_[code];
  }
  /// Byte hash (Fnv1a64) of the string behind `code`, cached at intern
  /// time so kernels never rehash string payloads per row.
  uint64_t HashOf(uint32_t code) const {
    ELEPHANT_DCHECK(code < hashes_.size());
    return hashes_[code];
  }
  size_t size() const { return by_code_.size(); }

 private:
  // Keyed by std::string (not string_view): heterogeneous unordered
  // lookup is C++20. The by_code_ pointers alias the map's keys, which
  // are stable across rehashing (node-based map).
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<const std::string*> by_code_;
  std::vector<uint64_t> hashes_;
};

/// One column's values in struct-of-arrays form: exactly one of the
/// typed vectors is active, selected by type(). String columns store
/// dictionary codes into the owning table's StringPool.
class ColumnVector {
 public:
  explicit ColumnVector(ValueType type = ValueType::kInt) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const {
    switch (type_) {
      case ValueType::kInt:
        return ints_.size();
      case ValueType::kDouble:
        return doubles_.size();
      case ValueType::kString:
        return codes_.size();
    }
    return 0;
  }
  void Reserve(size_t n);
  void Resize(size_t n);
  void Clear();

  std::vector<int64_t>& ints() {
    ELEPHANT_DCHECK(type_ == ValueType::kInt);
    return ints_;
  }
  const std::vector<int64_t>& ints() const {
    ELEPHANT_DCHECK(type_ == ValueType::kInt);
    return ints_;
  }
  std::vector<double>& doubles() {
    ELEPHANT_DCHECK(type_ == ValueType::kDouble);
    return doubles_;
  }
  const std::vector<double>& doubles() const {
    ELEPHANT_DCHECK(type_ == ValueType::kDouble);
    return doubles_;
  }
  std::vector<uint32_t>& codes() {
    ELEPHANT_DCHECK(type_ == ValueType::kString);
    return codes_;
  }
  const std::vector<uint32_t>& codes() const {
    ELEPHANT_DCHECK(type_ == ValueType::kString);
    return codes_;
  }

 private:
  ValueType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
};

/// A columnar batch of rows matching a schema, with strings held as
/// plain std::string (no pool). Parallel producers (dbgen chunks) each
/// fill a private RowBatch; Table::AppendBatch then interns and appends
/// serially, in batch order, so dictionary codes are deterministic.
class RowBatch {
 public:
  explicit RowBatch(const std::vector<Column>& schema);

  void AddInt(int col, int64_t v) { cols_[col].ints.push_back(v); }
  void AddDouble(int col, double v) { cols_[col].doubles.push_back(v); }
  void AddString(int col, std::string s) {
    cols_[col].strs.push_back(std::move(s));
  }
  void ReserveRows(size_t n);
  /// Row count (columns must be filled evenly; checked on append).
  size_t num_rows() const;

 private:
  friend class Table;
  friend class FrozenTableBuilder;  // streams batches into sealed chunks
  struct BatchColumn {
    ValueType type;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strs;
    size_t size() const {
      return type == ValueType::kInt
                 ? ints.size()
                 : type == ValueType::kDouble ? doubles.size() : strs.size();
    }
  };
  std::vector<BatchColumn> cols_;
};

/// An in-memory relation: a schema plus columnar data. This is the
/// currency of the executor — every operator consumes and produces
/// Tables. Storage is struct-of-arrays (one typed ColumnVector per
/// column, strings dictionary-encoded against a shared StringPool) so
/// kernels run tight typed loops; the historical row-level API (rows(),
/// mutable_rows(), Row-based AddRow) is kept working through a lazily
/// materialized row cache.
///
/// Representation states:
///  - columnar (the normal state): data_ is authoritative; rows() lazily
///    materializes a cache from it.
///  - row-authoritative: after mutable_rows() hands out the cache for
///    mutation, or after AddRow receives a cell whose variant alternative
///    does not match the column type ("heterogeneous" tables, used by
///    type-mixing tests). Columnar access transparently rebuilds from
///    the rows — except for heterogeneous tables, which cannot be
///    encoded; operators fall back to their row paths for those.
///  - frozen (exec/frozen.h): row data lives as compressed chunks in
///    the global segment cache; the ColumnVectors start empty and
///    columnar accessors thaw columns on demand (decode once,
///    publish-once). Mutators thaw everything and detach the frozen
///    state. ReleaseResident() drops thawed columns back to
///    frozen-only storage. Logical content is identical in every
///    state, so fingerprints never depend on residency.
///
/// Thread-safety: concurrent reads (including the first lazy
/// materialization in either direction) are safe; any mutation requires
/// exclusive access to the table AND to tables sharing its pool.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<Column> columns)
      : Table(std::move(columns), nullptr) {}
  /// Adopts an existing pool so the new table shares dictionary codes
  /// with the tables the pool came from. `pool` may be null when the
  /// schema has no string column (or to get a fresh pool).
  Table(std::vector<Column> columns, std::shared_ptr<StringPool> pool);

  Table(const Table& other);
  Table& operator=(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  /// Index of a column by name; asserts that it exists (TPC-H column
  /// names are globally unique, e.g. l_orderkey, o_orderkey). O(1) via
  /// a name -> index map built at construction.
  int ColIndex(const std::string& name) const;
  /// Like ColIndex but returns -1 when missing.
  int FindCol(const std::string& name) const;

  const std::vector<Column>& columns() const { return columns_; }
  int num_cols() const { return static_cast<int>(columns_.size()); }

  void AddRow(Row row);
  /// Bulk-appends a columnar batch (strings are interned here, in batch
  /// order). Much cheaper than per-Row AddRow: no variants, one splice
  /// per column.
  void AppendBatch(RowBatch&& batch);
  void Reserve(size_t n);

  const std::vector<Row>& rows() const {
    EnsureRows();
    return row_cache_;
  }
  /// Hands out the row cache for in-place mutation (erase/remove_if);
  /// the table becomes row-authoritative until the next columnar access
  /// rebuilds the column vectors.
  std::vector<Row>& mutable_rows();
  size_t num_rows() const {
    return columnar_valid_.load(std::memory_order_acquire)
               ? num_rows_
               : row_cache_.size();
  }

  // ---- Columnar access (the kernel-facing API) --------------------------

  /// Ensures the column vectors are up to date. Returns false only for
  /// heterogeneous tables (see class comment), which have no columnar
  /// form; callers then use the row API instead.
  bool EnsureColumnar() const;
  bool is_columnar() const {
    return columnar_valid_.load(std::memory_order_acquire);
  }

  const std::vector<int64_t>& IntData(int col) const {
    ELEPHANT_CHECK(EnsureColumnar()) << "no columnar form";
    if (frozen_ != nullptr) EnsureColResident(col);
    return data_[col].ints();
  }
  const std::vector<double>& DoubleData(int col) const {
    ELEPHANT_CHECK(EnsureColumnar()) << "no columnar form";
    if (frozen_ != nullptr) EnsureColResident(col);
    return data_[col].doubles();
  }
  const std::vector<uint32_t>& StrCodes(int col) const {
    ELEPHANT_CHECK(EnsureColumnar()) << "no columnar form";
    if (frozen_ != nullptr) EnsureColResident(col);
    return data_[col].codes();
  }
  const std::string& StrAt(int col, size_t row) const {
    return pool_->Get(StrCodes(col)[row]);
  }
  /// Dictionary code of `s` in this table's pool, or StringPool::kNoCode
  /// when the string never occurs — compare codes instead of bytes.
  uint32_t CodeFor(std::string_view s) const {
    return pool_ == nullptr ? StringPool::kNoCode : pool_->Find(s);
  }

  /// Materializes a single cell (no full-row cache needed).
  Value ValueAt(size_t row, int col) const;

  const std::shared_ptr<StringPool>& pool_ptr() const { return pool_; }
  const StringPool& pool() const {
    ELEPHANT_DCHECK(pool_ != nullptr);
    return *pool_;
  }

  // ---- Columnar construction (operator kernels) -------------------------

  /// Resizes every column vector to `n` rows so parallel kernels can
  /// write disjoint ranges positionally. Invalidates the row cache.
  void ResizeColumnar(size_t n);
  /// Direct write access to one column vector. The caller keeps all
  /// columns the same length; row count is whatever ResizeColumnar (or
  /// SetRowCount) established. Invalidates the row cache.
  ColumnVector& MutableCol(int col);
  /// Declares the row count after direct column writes.
  void SetRowCount(size_t n);
  /// Pool for interning newly produced strings. Creates one if absent.
  StringPool* mutable_pool();

  /// Pretty-prints up to `max_rows` rows (for examples/debugging).
  /// Reads straight from the column vectors — no Row materialization.
  std::string ToString(size_t max_rows = 20) const;

  // ---- Frozen (segment-backed) storage (exec/frozen.h) ------------------

  /// Adopts pre-built frozen storage: the table starts with every
  /// column frozen (ColumnVectors empty) and thaws on demand.
  static Table FromFrozen(std::vector<Column> columns,
                          std::shared_ptr<StringPool> pool,
                          std::shared_ptr<const FrozenTableData> fz);

  /// Encodes every column into segment-cache chunks and drops the
  /// resident vectors (in place; logical content unchanged). No-op on
  /// heterogeneous tables. Requires exclusive access, like a mutation.
  void Freeze();

  bool is_frozen() const { return frozen_ != nullptr; }
  const std::shared_ptr<const FrozenTableData>& frozen_data() const {
    return frozen_;
  }
  /// True when column `col` can be read from data_ without decoding
  /// (always true for non-frozen tables).
  bool ColumnResident(int col) const {
    return frozen_ == nullptr ||
           thawed_[col].load(std::memory_order_acquire) != 0;
  }
  /// Drops every thawed column (and the row cache) back to frozen-only
  /// storage. Requires exclusive access; no-op when not frozen.
  void ReleaseResident();

  // ---- Zone-map cache (exec/zonemap.h builds and consumes) --------------

  /// The cached zone maps, or null when never built / invalidated by a
  /// mutation. Returned as shared_ptr-to-const: a reader's snapshot
  /// stays valid even if the table mutates afterwards.
  std::shared_ptr<const ZoneMaps> zone_maps() const ELEPHANT_EXCLUDES(lazy_mu_);
  /// Publishes freshly built zone maps (GetZoneMaps only; the maps must
  /// describe the table's current columnar contents).
  void set_zone_maps(std::shared_ptr<const ZoneMaps> zm) const
      ELEPHANT_EXCLUDES(lazy_mu_);

 private:
  void EnsureRows() const ELEPHANT_EXCLUDES(lazy_mu_);
  void InvalidateRows();
  /// Drops the cached zone maps; called from every mutating entry point
  /// (stale min/max bounds would make chunk pruning silently wrong).
  void InvalidateZoneMaps() ELEPHANT_EXCLUDES(lazy_mu_);
  /// Rebuilds data_ from row_cache_; flips heterogeneous_ instead when
  /// some cell's alternative does not match its column type.
  void RebuildColumnsLocked() const ELEPHANT_REQUIRES(lazy_mu_);
  void CopyFrom(const Table& other);
  void MoveFrom(Table&& other) noexcept;
  /// Decodes every chunk of `col` into data_[col] (publish-once under
  /// lazy_mu_). Defined in exec/frozen.cc.
  void EnsureColResident(int col) const ELEPHANT_EXCLUDES(lazy_mu_);
  /// Thaws every column (no-op when not frozen).
  void ThawAllResident() const ELEPHANT_EXCLUDES(lazy_mu_);
  /// Thaws everything and drops the frozen state; called from every
  /// mutating entry point (the encoded chunks would go stale).
  void DetachFrozen();

  std::vector<Column> columns_;
  std::unordered_map<std::string, int> col_index_;
  // The lazily materialized representations (data_, row_cache_) follow
  // a publish-once protocol: the first builder runs under lazy_mu_ and
  // publishes via the release store on rows_valid_/columnar_valid_;
  // readers that observed the acquire load touch them lock-free. TSA
  // cannot express "guarded until published", so these fields are not
  // GUARDED_BY — every *build* path must hold lazy_mu_ (enforced by
  // the REQUIRES on RebuildColumnsLocked and the MutexLock in
  // EnsureRows/EnsureColumnar), and every mutation path requires
  // exclusive access to the whole table (class contract above).
  mutable std::vector<ColumnVector> data_;
  mutable std::shared_ptr<StringPool> pool_;
  mutable size_t num_rows_ = 0;

  mutable std::vector<Row> row_cache_;
  mutable std::atomic<bool> rows_valid_{false};
  mutable std::atomic<bool> columnar_valid_{true};
  mutable std::atomic<bool> heterogeneous_{false};
  mutable std::shared_ptr<const ZoneMaps> zone_maps_
      ELEPHANT_GUARDED_BY(lazy_mu_);
  // Frozen storage (exec/frozen.h). frozen_ is immutable shared state;
  // thawed_[col] is the per-column publish-once flag for data_[col]
  // holding decoded content (release-stored by EnsureColResident under
  // lazy_mu_, acquire-loaded by ColumnResident). Both are only
  // reassigned under the exclusive-access mutation contract.
  mutable std::shared_ptr<const FrozenTableData> frozen_;
  mutable std::unique_ptr<std::atomic<uint32_t>[]> thawed_;
  mutable Mutex lazy_mu_;
};

/// Order-sensitive 64-bit fingerprint of a table: schema, row count, and
/// every cell (tagged by variant alternative, doubles by bit pattern).
/// Used to pin query answers bit-exactly across layouts and thread
/// counts.
uint64_t TableFingerprint(const Table& t);

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_TABLE_H_
