#ifndef ELEPHANT_EXEC_TABLE_H_
#define ELEPHANT_EXEC_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/check.h"

namespace elephant::exec {

/// Column types supported by the executor. TPC-H decimals are carried as
/// doubles (sufficient for benchmark validation), dates as int64 day
/// codes.
enum class ValueType { kInt, kDouble, kString };

/// A dynamically typed cell.
using Value = std::variant<int64_t, double, std::string>;

/// Accessors with numeric widening (int -> double).
int64_t AsInt(const Value& v);
double AsDouble(const Value& v);
const std::string& AsString(const Value& v);

/// Three-way comparison consistent across numeric types.
int CompareValues(const Value& a, const Value& b);

/// Hash for joining/grouping.
uint64_t HashValue(const Value& v);

struct Column {
  std::string name;
  ValueType type;
};

using Row = std::vector<Value>;

/// An in-memory relation: a schema plus a row vector. This is the
/// currency of the executor — every operator consumes and produces
/// Tables. Row storage is row-major; the executor favours clarity over
/// vectorized speed since its role is validating plans and answers at
/// mini scale.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<Column> columns) : columns_(std::move(columns)) {
    col_index_.reserve(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      col_index_.emplace(columns_[i].name, static_cast<int>(i));
    }
  }

  /// Index of a column by name; asserts that it exists (TPC-H column
  /// names are globally unique, e.g. l_orderkey, o_orderkey). O(1) via
  /// a name -> index map built at construction.
  int ColIndex(const std::string& name) const;
  /// Like ColIndex but returns -1 when missing.
  int FindCol(const std::string& name) const;

  const std::vector<Column>& columns() const { return columns_; }
  int num_cols() const { return static_cast<int>(columns_.size()); }

  void AddRow(Row row) {
    ELEPHANT_DCHECK(row.size() == columns_.size())
        << "row has " << row.size() << " cells, schema has "
        << columns_.size() << " columns";
    rows_.push_back(std::move(row));
  }
  void Reserve(size_t n) { rows_.reserve(n); }

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Pretty-prints up to `max_rows` rows (for examples/debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, int> col_index_;
  std::vector<Row> rows_;
};

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_TABLE_H_
