#include "exec/statistics.h"

#include <unordered_set>

namespace elephant::exec {

TableStats ComputeStats(const Table& table) {
  TableStats stats;
  stats.rows = static_cast<int64_t>(table.num_rows());
  for (int c = 0; c < table.num_cols(); ++c) {
    const Column& col = table.columns()[c];
    ColumnStats cs;
    cs.type = col.type;
    std::unordered_set<uint64_t> distinct;
    bool first = true;
    for (const Row& row : table.rows()) {
      const Value& v = row[c];
      distinct.insert(HashValue(v));
      if (first) {
        cs.min = v;
        cs.max = v;
        first = false;
      } else {
        if (CompareValues(v, cs.min) < 0) cs.min = v;
        if (CompareValues(v, cs.max) > 0) cs.max = v;
      }
      if (const auto* s = std::get_if<std::string>(&v)) {
        if (s->empty()) cs.null_like++;
      }
    }
    cs.distinct = static_cast<int64_t>(distinct.size());
    stats.columns.emplace(col.name, std::move(cs));
  }
  return stats;
}

double Selectivity(const Table& table, const Predicate& pred) {
  if (table.num_rows() == 0) return 0.0;
  int64_t hits = 0;
  for (const Row& row : table.rows()) {
    if (pred(row)) hits++;
  }
  return static_cast<double>(hits) / static_cast<double>(table.num_rows());
}

double JoinMatchFraction(const Table& left, const Table& right,
                         const std::string& left_key,
                         const std::string& right_key) {
  if (left.num_rows() == 0) return 0.0;
  int rk = right.ColIndex(right_key);
  std::unordered_set<uint64_t> keys;
  keys.reserve(right.num_rows());
  for (const Row& row : right.rows()) keys.insert(HashValue(row[rk]));
  int lk = left.ColIndex(left_key);
  int64_t hits = 0;
  for (const Row& row : left.rows()) {
    if (keys.count(HashValue(row[lk]))) hits++;
  }
  return static_cast<double>(hits) / static_cast<double>(left.num_rows());
}

}  // namespace elephant::exec
