#include "exec/statistics.h"

#include <algorithm>
#include <unordered_set>

#include "exec/segment.h"

namespace elephant::exec {

namespace {

/// Row-at-a-time fallback for tables with no columnar form
/// (heterogeneous variant mixes).
ColumnStats ColumnStatsFromRows(const Table& table, int c) {
  ColumnStats cs;
  cs.type = table.columns()[c].type;
  std::unordered_set<uint64_t> distinct;
  bool first = true;
  for (const Row& row : table.rows()) {
    const Value& v = row[c];
    distinct.insert(HashValue(v));
    if (first) {
      cs.min = v;
      cs.max = v;
      first = false;
    } else {
      if (CompareValues(v, cs.min) < 0) cs.min = v;
      if (CompareValues(v, cs.max) > 0) cs.max = v;
    }
    if (const auto* s = std::get_if<std::string>(&v)) {
      if (s->empty()) cs.null_like++;
    }
  }
  cs.distinct = static_cast<int64_t>(distinct.size());
  return cs;
}

/// Typed scan over one column vector; identical results to the row
/// fallback (same hashes, same CompareValues ordering) without Value
/// materialization. String distinct/min/max work on dictionary codes,
/// so each distinct string is hashed and compared O(1) times per code
/// transition instead of per row.
ColumnStats ColumnStatsColumnar(const Table& table, int c) {
  ColumnStats cs;
  cs.type = table.columns()[c].type;
  std::unordered_set<uint64_t> distinct;
  size_t n = table.num_rows();
  switch (cs.type) {
    case ValueType::kInt: {
      const int64_t* v = table.IntData(c).data();
      int64_t mn = 0, mx = 0;
      for (size_t i = 0; i < n; ++i) {
        distinct.insert(HashNumeric(static_cast<double>(v[i])));
        if (i == 0) {
          mn = mx = v[i];
        } else {
          // CompareValues orders all numerics by their double image.
          if (static_cast<double>(v[i]) < static_cast<double>(mn)) mn = v[i];
          if (static_cast<double>(v[i]) > static_cast<double>(mx)) mx = v[i];
        }
      }
      if (n > 0) {
        cs.min = Value{mn};
        cs.max = Value{mx};
      }
      break;
    }
    case ValueType::kDouble: {
      const double* v = table.DoubleData(c).data();
      double mn = 0, mx = 0;
      for (size_t i = 0; i < n; ++i) {
        distinct.insert(HashNumeric(v[i]));
        if (i == 0) {
          mn = mx = v[i];
        } else {
          if (v[i] < mn) mn = v[i];
          if (v[i] > mx) mx = v[i];
        }
      }
      if (n > 0) {
        cs.min = Value{mn};
        cs.max = Value{mx};
      }
      break;
    }
    case ValueType::kString: {
      const uint32_t* codes = table.StrCodes(c).data();
      const StringPool& pool = table.pool();
      uint32_t mn_code = 0, mx_code = 0;
      for (size_t i = 0; i < n; ++i) {
        uint32_t code = codes[i];
        distinct.insert(pool.HashOf(code));
        if (pool.Get(code).empty()) cs.null_like++;
        if (i == 0) {
          mn_code = mx_code = code;
        } else {
          if (code != mn_code && pool.Get(code) < pool.Get(mn_code)) {
            mn_code = code;
          }
          if (code != mx_code && pool.Get(code) > pool.Get(mx_code)) {
            mx_code = code;
          }
        }
      }
      if (n > 0) {
        cs.min = Value{pool.Get(mn_code)};
        cs.max = Value{pool.Get(mx_code)};
      }
      break;
    }
  }
  cs.distinct = static_cast<int64_t>(distinct.size());
  return cs;
}

}  // namespace

TableStats ComputeStats(const Table& table) {
  TableStats stats;
  stats.rows = static_cast<int64_t>(table.num_rows());
  bool columnar = table.EnsureColumnar();
  for (int c = 0; c < table.num_cols(); ++c) {
    stats.columns.emplace(table.columns()[c].name,
                          columnar ? ColumnStatsColumnar(table, c)
                                   : ColumnStatsFromRows(table, c));
  }
  return stats;
}

ColumnHistogram BuildHistogram(const Table& table, int col, int buckets) {
  ColumnHistogram h;
  size_t n = table.num_rows();
  if (n == 0 || buckets <= 0 || !table.EnsureColumnar()) return h;
  ELEPHANT_CHECK(table.columns()[col].type != ValueType::kString)
      << "histograms are numeric-only";
  WithNumericSegment(table, col, [&](auto seg) {
    double lo = seg(0), hi = seg(0);
    for (size_t i = 1; i < n; ++i) {
      double v = seg(i);
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    h.lo = lo;
    h.hi = hi;
    h.rows = n;
    h.counts.assign(static_cast<size_t>(buckets), 0);
    double width = (hi - lo) / static_cast<double>(buckets);
    for (size_t i = 0; i < n; ++i) {
      double v = seg(i);
      if (v != v) continue;  // NaN: advisory structure only, skip
      size_t b = 0;
      if (width > 0) {
        b = static_cast<size_t>((v - lo) / width);
        if (b >= h.counts.size()) b = h.counts.size() - 1;  // v == hi
      }
      h.counts[b]++;
    }
  });
  return h;
}

double EstimateRangeSelectivity(const ColumnHistogram& h, double lo,
                                double hi) {
  if (h.rows == 0 || h.counts.empty()) return 1.0;
  if (hi < lo || hi < h.lo || lo > h.hi) return 0.0;
  if (h.hi <= h.lo) return 1.0;  // single-point column: range covers it
  lo = std::max(lo, h.lo);
  hi = std::min(hi, h.hi);
  double width = (h.hi - h.lo) / static_cast<double>(h.counts.size());
  double est = 0.0;
  for (size_t b = 0; b < h.counts.size(); ++b) {
    double blo = h.lo + width * static_cast<double>(b);
    double bhi = b + 1 == h.counts.size() ? h.hi : blo + width;
    double olo = std::max(lo, blo);
    double ohi = std::min(hi, bhi);
    if (ohi <= olo) continue;
    double frac = bhi > blo ? (ohi - olo) / (bhi - blo) : 1.0;
    est += frac * static_cast<double>(h.counts[b]);
  }
  return std::min(1.0, est / static_cast<double>(h.rows));
}

double Selectivity(const Table& table, const Predicate& pred) {
  if (table.num_rows() == 0) return 0.0;
  int64_t hits = 0;
  for (const Row& row : table.rows()) {
    if (pred(row)) hits++;
  }
  return static_cast<double>(hits) / static_cast<double>(table.num_rows());
}

namespace {

/// Hashes every cell of one column into `out` (same hashes HashValue
/// would produce for the materialized Value).
void HashColumn(const Table& t, int col,
                const std::function<void(uint64_t)>& sink) {
  size_t n = t.num_rows();
  if (!t.EnsureColumnar()) {
    for (const Row& row : t.rows()) sink(HashValue(row[col]));
    return;
  }
  switch (t.columns()[col].type) {
    case ValueType::kInt: {
      const int64_t* v = t.IntData(col).data();
      for (size_t i = 0; i < n; ++i) {
        sink(HashNumeric(static_cast<double>(v[i])));
      }
      break;
    }
    case ValueType::kDouble: {
      const double* v = t.DoubleData(col).data();
      for (size_t i = 0; i < n; ++i) sink(HashNumeric(v[i]));
      break;
    }
    case ValueType::kString: {
      const uint32_t* codes = t.StrCodes(col).data();
      const StringPool& pool = t.pool();
      for (size_t i = 0; i < n; ++i) sink(pool.HashOf(codes[i]));
      break;
    }
  }
}

}  // namespace

double JoinMatchFraction(const Table& left, const Table& right,
                         const std::string& left_key,
                         const std::string& right_key) {
  if (left.num_rows() == 0) return 0.0;
  std::unordered_set<uint64_t> keys;
  keys.reserve(right.num_rows());
  HashColumn(right, right.ColIndex(right_key),
             [&keys](uint64_t h) { keys.insert(h); });
  int64_t hits = 0;
  HashColumn(left, left.ColIndex(left_key), [&keys, &hits](uint64_t h) {
    if (keys.count(h)) hits++;
  });
  return static_cast<double>(hits) / static_cast<double>(left.num_rows());
}

}  // namespace elephant::exec
