#ifndef ELEPHANT_EXEC_STATISTICS_H_
#define ELEPHANT_EXEC_STATISTICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/table.h"

namespace elephant::exec {

/// Per-column statistics of a table.
struct ColumnStats {
  ValueType type = ValueType::kInt;
  Value min;
  Value max;
  int64_t distinct = 0;
  int64_t null_like = 0;  ///< empty strings / zero defaults
};

/// Statistics of one table: what a cost-based optimizer keeps in its
/// catalog, and what the reproduction uses to validate the Hive/PDW
/// plan-volume constants against real dbgen data.
struct TableStats {
  int64_t rows = 0;
  std::map<std::string, ColumnStats> columns;

  const ColumnStats* Find(const std::string& column) const {
    auto it = columns.find(column);
    return it == columns.end() ? nullptr : &it->second;
  }
};

/// Scans the table once and computes rows / min / max / distinct counts.
TableStats ComputeStats(const Table& table);

/// Equal-width histogram of one numeric column over its [lo, hi] value
/// range. Built once per base-table column during zone-map construction
/// and consumed by the fused scan planner to order conjunctive range
/// constraints most-selective-first (an ordering decision only — it can
/// never change which rows match).
struct ColumnHistogram {
  double lo = 0.0;        ///< min value (double image)
  double hi = 0.0;        ///< max value (double image)
  uint64_t rows = 0;      ///< total rows counted
  std::vector<uint64_t> counts;  ///< per-bucket row counts
};

/// Builds an equal-width histogram of numeric column `col` (int columns
/// are counted through their double image). Returns an empty histogram
/// (rows == 0) for empty tables.
ColumnHistogram BuildHistogram(const Table& table, int col, int buckets = 64);

/// Estimated fraction of rows with value in [lo, hi] (inclusive),
/// interpolating fractionally inside boundary buckets. Returns 1.0 for
/// an empty histogram (no information: assume nothing is filtered).
double EstimateRangeSelectivity(const ColumnHistogram& h, double lo,
                                double hi);

/// Fraction of rows satisfying the predicate (0 for an empty table).
double Selectivity(const Table& table, const Predicate& pred);

/// Fraction of `left` rows with at least one `right` match on the key —
/// a join-selectivity probe.
double JoinMatchFraction(const Table& left, const Table& right,
                         const std::string& left_key,
                         const std::string& right_key);

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_STATISTICS_H_
