#ifndef ELEPHANT_EXEC_STATISTICS_H_
#define ELEPHANT_EXEC_STATISTICS_H_

#include <map>
#include <string>

#include "exec/operators.h"
#include "exec/table.h"

namespace elephant::exec {

/// Per-column statistics of a table.
struct ColumnStats {
  ValueType type = ValueType::kInt;
  Value min;
  Value max;
  int64_t distinct = 0;
  int64_t null_like = 0;  ///< empty strings / zero defaults
};

/// Statistics of one table: what a cost-based optimizer keeps in its
/// catalog, and what the reproduction uses to validate the Hive/PDW
/// plan-volume constants against real dbgen data.
struct TableStats {
  int64_t rows = 0;
  std::map<std::string, ColumnStats> columns;

  const ColumnStats* Find(const std::string& column) const {
    auto it = columns.find(column);
    return it == columns.end() ? nullptr : &it->second;
  }
};

/// Scans the table once and computes rows / min / max / distinct counts.
TableStats ComputeStats(const Table& table);

/// Fraction of rows satisfying the predicate (0 for an empty table).
double Selectivity(const Table& table, const Predicate& pred);

/// Fraction of `left` rows with at least one `right` match on the key —
/// a join-selectivity probe.
double JoinMatchFraction(const Table& left, const Table& right,
                         const std::string& left_key,
                         const std::string& right_key);

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_STATISTICS_H_
