#include "exec/segcache.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/check.h"
#include "common/string_util.h"

namespace elephant::exec {

namespace {

/// Opens the spill file unlinked-on-create: the descriptor keeps the
/// bytes alive, but no directory entry survives the process, so an
/// aborted run (ASan crash, chaos kill) can never leak spill files in
/// $TMPDIR. std::tmpfile() promises deletion only at normal exit and,
/// on some libcs, leaves a visible name until then.
std::FILE* OpenUnlinkedSpillFile() {
#if defined(__unix__) || defined(__APPLE__)
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  std::string tmpl = std::string(dir) + "/elephant-spill-XXXXXX";
  std::vector<char> path(tmpl.begin(), tmpl.end());
  path.push_back('\0');
  int fd = ::mkstemp(path.data());
  if (fd < 0) return nullptr;
  ::unlink(path.data());
  std::FILE* f = ::fdopen(fd, "w+b");
  if (f == nullptr) ::close(fd);
  return f;
#else
  return std::tmpfile();
#endif
}

size_t InitialBudget() {
  const char* env = std::getenv("ELEPHANT_MEM_BUDGET");
  if (env == nullptr || env[0] == '\0') return 0;
  Result<size_t> parsed = ParseByteSize(env);
  ELEPHANT_CHECK(parsed.ok()) << "bad ELEPHANT_MEM_BUDGET '" << env
                              << "': " << parsed.status().ToString();
  return parsed.value();
}

std::atomic<size_t>& BudgetCell() {
  static std::atomic<size_t> budget{InitialBudget()};
  return budget;
}

}  // namespace

size_t ExecMemoryBudget() {
  return BudgetCell().load(std::memory_order_relaxed);
}

void SetExecMemoryBudget(size_t bytes) {
  BudgetCell().store(bytes, std::memory_order_relaxed);
  SegmentCache::Global().SetBudget(bytes / 2);
}

Result<size_t> ParseByteSize(const std::string& text) {
  size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) != 0)) {
    ++i;
  }
  if (i == 0) {
    return Status::InvalidArgument("byte size '" + text +
                                   "' has no leading digits");
  }
  unsigned long long num = 0;
  for (size_t k = 0; k < i; ++k) {
    num = num * 10 + static_cast<unsigned long long>(text[k] - '0');
  }
  std::string unit;
  for (size_t k = i; k < text.size(); ++k) {
    char c = text[k];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    unit.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  size_t shift = 0;
  if (unit.empty() || unit == "b") {
    shift = 0;
  } else if (unit == "k" || unit == "kb") {
    shift = 10;
  } else if (unit == "m" || unit == "mb") {
    shift = 20;
  } else if (unit == "g" || unit == "gb") {
    shift = 30;
  } else {
    return Status::InvalidArgument("unknown byte-size unit '" + unit + "'");
  }
  return static_cast<size_t>(num) << shift;
}

SegmentCache::~SegmentCache() {
  MutexLock lock(&mu_);
  if (spill_ != nullptr) {
    std::fclose(spill_);
    spill_ = nullptr;
  }
}

SegmentCache& SegmentCache::Global() {
  static SegmentCache* cache = [] {
    auto* c = new SegmentCache();
    c->SetBudget(ExecMemoryBudget() / 2);
    return c;
  }();
  return *cache;
}

bool SegmentCache::TakeInjectedFaultLocked() {
  if (inject_faults_ <= 0) return false;
  --inject_faults_;
  return true;
}

Status SegmentCache::SpillLocked(Id id, Entry* e) {
  if (e->file_off < 0) {
    if (spill_ == nullptr) {
      if (TakeInjectedFaultLocked()) {
        return Status::IOError("injected fault: spill file create");
      }
      spill_ = OpenUnlinkedSpillFile();
      if (spill_ == nullptr) {
        return Status::IOError("could not create segment spill file");
      }
    }
    long off;
    auto slot = free_slots_.find(e->size);
    if (slot != free_slots_.end() && !slot->second.empty()) {
      off = slot->second.back();
      slot->second.pop_back();
    } else {
      off = spill_end_;
      spill_end_ += static_cast<long>(e->size);
    }
    if (TakeInjectedFaultLocked()) {
      free_slots_[e->size].push_back(off);
      return Status::IOError(
          StrFormat("injected fault: spill write of segment %llu",
                    static_cast<unsigned long long>(id)));
    }
    if (std::fseek(spill_, off, SEEK_SET) != 0 ||
        std::fwrite(e->data->data(), 1, e->size, spill_) != e->size) {
      free_slots_[e->size].push_back(off);
      return Status::IOError(
          StrFormat("spill write failed for segment %llu (%zu bytes)",
                    static_cast<unsigned long long>(id), e->size));
    }
    e->file_off = off;
    stats_.spill_bytes_written += e->size;
  }
  // Payloads are immutable: once a clean copy is on disk, eviction is
  // just dropping the resident bytes.
  e->data.reset();
  resident_ -= e->size;
  stats_.resident_bytes = resident_;
  ++stats_.evictions;
  return Status::OK();
}

Status SegmentCache::LoadLocked(Entry* e) {
  ELEPHANT_CHECK(e->file_off >= 0 && spill_ != nullptr)
      << "loading a segment that was never spilled";
  if (TakeInjectedFaultLocked()) {
    return Status::IOError("injected fault: spill read");
  }
  auto bytes = std::make_shared<std::vector<uint8_t>>(e->size);
  if (std::fseek(spill_, e->file_off, SEEK_SET) != 0 ||
      std::fread(bytes->data(), 1, e->size, spill_) != e->size) {
    return Status::IOError(
        StrFormat("spill read failed (%zu bytes at offset %ld)", e->size,
                  e->file_off));
  }
  e->data = std::move(bytes);
  resident_ += e->size;
  stats_.spill_bytes_read += e->size;
  stats_.resident_bytes = resident_;
  return Status::OK();
}

Status SegmentCache::EvictToBudgetLocked() {
  if (budget_ == 0) return Status::OK();
  // Clock sweep over the ordered id map starting at the hand: resident
  // unpinned entries get one second chance (ref bit), then spill. Two
  // full laps with no progress means everything left is pinned.
  size_t laps = 0;
  auto it = entries_.lower_bound(hand_);
  while (resident_ > budget_ && laps < 2 * entries_.size() + 2) {
    if (it == entries_.end()) {
      it = entries_.begin();
      if (it == entries_.end()) break;
    }
    Entry& e = it->second;
    if (e.data != nullptr && e.pins == 0) {
      if (e.ref) {
        e.ref = false;
      } else {
        Id id = it->first;
        ELEPHANT_RETURN_NOT_OK(SpillLocked(id, &e));
        ++it;
        hand_ = it == entries_.end() ? 0 : it->first;
        ++laps;
        continue;
      }
    }
    ++it;
    ++laps;
  }
  return Status::OK();
}

Result<SegmentCache::Id> SegmentCache::Insert(std::vector<uint8_t> bytes) {
  MutexLock lock(&mu_);
  Id id = next_id_++;
  Entry e;
  e.size = bytes.size();
  e.ref = true;
  e.data = std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
  resident_ += e.size;
  entries_.emplace(id, std::move(e));
  ++stats_.inserts;
  stats_.entries = entries_.size();
  stats_.resident_bytes = resident_;
  Status st = EvictToBudgetLocked();
  if (!st.ok()) {
    // Failed spill mid-eviction: drop the segment being inserted (the
    // caller never learns its id) and surface the error so the
    // operator abandons its spill plan.
    auto self = entries_.find(id);
    Entry& se = self->second;
    if (se.data != nullptr) resident_ -= se.size;
    if (se.file_off >= 0) free_slots_[se.size].push_back(se.file_off);
    if (hand_ == id) hand_ = 0;
    entries_.erase(self);
    stats_.entries = entries_.size();
    stats_.resident_bytes = resident_;
    return st;
  }
  return id;
}

Result<std::shared_ptr<const std::vector<uint8_t>>> SegmentCache::Pin(Id id) {
  MutexLock lock(&mu_);
  auto it = entries_.find(id);
  ELEPHANT_CHECK(it != entries_.end())
      << "pin of unknown segment " << id;
  Entry& e = it->second;
  if (e.data == nullptr) {
    ELEPHANT_RETURN_NOT_OK(LoadLocked(&e));
    // The reload may push residency over budget; evict others (this
    // entry is about to be pinned and is skipped once pins > 0 —
    // pin before sweeping).
    e.pins++;
    e.ref = true;
    Status st = EvictToBudgetLocked();
    if (!st.ok()) {
      e.pins--;
      return st;
    }
    if (e.pins == 1) ++stats_.pinned;
    return e.data;
  }
  e.ref = true;
  e.pins++;
  if (e.pins == 1) ++stats_.pinned;
  return e.data;
}

void SegmentCache::Unpin(Id id) {
  MutexLock lock(&mu_);
  auto it = entries_.find(id);
  ELEPHANT_CHECK(it != entries_.end()) << "unpin of unknown segment " << id;
  ELEPHANT_CHECK(it->second.pins > 0) << "unpin without pin on " << id;
  if (--it->second.pins == 0) --stats_.pinned;
}

void SegmentCache::Remove(Id id) {
  MutexLock lock(&mu_);
  auto it = entries_.find(id);
  ELEPHANT_CHECK(it != entries_.end()) << "remove of unknown segment " << id;
  RemoveLocked(it);
}

bool SegmentCache::Discard(Id id) {
  MutexLock lock(&mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  RemoveLocked(it);
  return true;
}

void SegmentCache::RemoveLocked(std::map<Id, Entry>::iterator it) {
  Id id = it->first;
  Entry& e = it->second;
  ELEPHANT_CHECK(e.pins == 0) << "remove of pinned segment " << id;
  if (e.data != nullptr) {
    resident_ -= e.size;
  }
  if (e.file_off >= 0) {
    free_slots_[e.size].push_back(e.file_off);
  }
  if (hand_ == id) hand_ = 0;
  entries_.erase(it);
  stats_.entries = entries_.size();
  stats_.resident_bytes = resident_;
}

void SegmentCache::Clear() {
  MutexLock lock(&mu_);
  for (const auto& [id, e] : entries_) {
    ELEPHANT_CHECK(e.pins == 0) << "Clear with segment " << id
                                << " still pinned";
  }
  entries_.clear();
  free_slots_.clear();
  resident_ = 0;
  hand_ = 0;
  spill_end_ = 0;
  if (spill_ != nullptr) {
    std::fclose(spill_);
    spill_ = nullptr;
  }
  stats_ = Stats{};
}

void SegmentCache::SetBudget(size_t bytes) {
  MutexLock lock(&mu_);
  budget_ = bytes;
  // Shrinking the budget evicts immediately; errors here would have no
  // operator to land on, so a failed background spill aborts the sweep
  // and the next Insert/Pin surfaces it.
  Status st = EvictToBudgetLocked();
  (void)st;  // elephant-lint: allow(discarded-status)
}

size_t SegmentCache::Budget() const {
  MutexLock lock(&mu_);
  return budget_;
}

SegmentCache::Stats SegmentCache::GetStats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void SegmentCache::InjectSpillErrors(int n) {
  MutexLock lock(&mu_);
  inject_faults_ = n;
}

Result<PinnedSegment> PinSegment(SegmentCache::Id id) {
  SegmentCache& cache = SegmentCache::Global();
  auto data = cache.Pin(id);
  if (!data.ok()) return data.status();
  return PinnedSegment(&cache, id, std::move(data).value());
}

}  // namespace elephant::exec
