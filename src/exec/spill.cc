#include "exec/spill.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/task_pool.h"
#include "exec/compress.h"
#include "exec/kernels_internal.h"
#include "exec/segcache.h"

namespace elephant::exec {

namespace {

using internal::ColBuildInsert;
using internal::ColBuildMap;
using internal::ColLookupOne;
using internal::JoinPair;
using internal::KeyHashAt;
using internal::KeyPart;
using internal::kPadRow;
using internal::MakeKeyParts;
using internal::VecAggState;

std::atomic<uint64_t> g_join_spills{0};
std::atomic<uint64_t> g_agg_spills{0};
std::atomic<uint64_t> g_sort_spills{0};
std::atomic<uint64_t> g_partitions{0};
std::atomic<uint64_t> g_recursions{0};
std::atomic<uint64_t> g_fallbacks{0};

/// Rows per spilled chunk. Segment payloads are encoded chunks of this
/// many values, so the sort-merge cursors can map a run position to a
/// chunk index with one division.
constexpr size_t kSpillChunkRows = 65536;

/// A build partition recursing more than this many times joins in
/// place regardless of size (pathological key skew: every key equal).
constexpr int kMaxRecursion = 3;

/// Recursion level d re-partitions on hash bits [38 + 6d, 41 + 6d);
/// the top level owns bits [32, 38) (at most 64 partitions), so no
/// level ever reuses a parent's bits.
constexpr int kRecursionShiftBase = 38;
constexpr size_t kRecursionFan = 8;

/// Estimated per-row bytes of `t`'s columnar payload.
size_t RowWidth(const Table& t) {
  size_t w = 0;
  for (const Column& c : t.columns()) {
    w += c.type == ValueType::kString ? 4 : 8;
  }
  return w;
}

/// Per-row hash-table overhead on top of the payload (bucket, group
/// vector, chain slack). A planning constant, not a measurement — it
/// only has to make the spill decision a pure function of the input.
constexpr size_t kHashRowOverhead = 48;
constexpr size_t kAggRowOverhead = 32;
constexpr size_t kSortRowBytes = 12;  // 8B key image + 4B index per key

/// Smallest power-of-two partition count (>= 2, <= 64) whose per-
/// partition share of `bytes` fits the operator half of the budget.
size_t ChoosePartitions(size_t bytes, size_t budget) {
  size_t p = 2;
  while (p < 64 && bytes / p > budget / 2) p *= 2;
  return p;
}

bool FanOutProfitable(size_t n) {
  return ExecThreads() > 1 && n >= 2 * ExecMorselSize();
}

// ---- Segment-cache plumbing ----------------------------------------------

/// Owns the cache ids of one spill scope; removing them on destruction
/// keeps the failure contract (no leaked segments) with no manual
/// cleanup on any error path. Loads pin-and-unpin, so nothing tracked
/// here is ever pinned when the scope unwinds.
class SpillSet {
 public:
  SpillSet() = default;
  SpillSet(const SpillSet&) = delete;
  SpillSet& operator=(const SpillSet&) = delete;
  ~SpillSet() {
    for (SegmentCache::Id id : ids_) SegmentCache::Global().Remove(id);
  }

  void Track(SegmentCache::Id id) { ids_.push_back(id); }

 private:
  std::vector<SegmentCache::Id> ids_;
};

Result<SegmentCache::Id> InsertChunk(const EncodedChunk& c, SpillSet* set) {
  Result<SegmentCache::Id> id = SegmentCache::Global().Insert(SerializeChunk(c));
  if (id.ok()) set->Track(id.value());
  return id;
}

/// Spills `v[0, n)` as encoded chunks of kSpillChunkRows values each;
/// returns the chunk ids in order. Empty inputs spill zero chunks.
Result<std::vector<SegmentCache::Id>> SpillU32(const uint32_t* v, size_t n,
                                               SpillSet* set) {
  std::vector<SegmentCache::Id> ids;
  for (size_t off = 0; off < n; off += kSpillChunkRows) {
    size_t rows = std::min(kSpillChunkRows, n - off);
    ELEPHANT_ASSIGN_OR_RETURN(
        SegmentCache::Id id,
        InsertChunk(EncodeCodeChunkAuto(v + off, rows), set));
    ids.push_back(id);
  }
  return ids;
}

Result<std::vector<SegmentCache::Id>> SpillF64(const double* v, size_t n,
                                               SpillSet* set) {
  std::vector<SegmentCache::Id> ids;
  for (size_t off = 0; off < n; off += kSpillChunkRows) {
    size_t rows = std::min(kSpillChunkRows, n - off);
    ELEPHANT_ASSIGN_OR_RETURN(
        SegmentCache::Id id,
        InsertChunk(EncodeDoubleChunkAuto(v + off, rows), set));
    ids.push_back(id);
  }
  return ids;
}

Status LoadU32Chunk(SegmentCache::Id id, std::vector<uint32_t>* out) {
  ELEPHANT_ASSIGN_OR_RETURN(PinnedSegment seg, PinSegment(id));
  ELEPHANT_ASSIGN_OR_RETURN(
      EncodedChunk c, ParseChunk(seg.bytes().data(), seg.bytes().size()));
  out->resize(c.rows);
  DecodeCodeChunk(c, out->data());
  return Status::OK();
}

Status LoadF64Chunk(SegmentCache::Id id, std::vector<double>* out) {
  ELEPHANT_ASSIGN_OR_RETURN(PinnedSegment seg, PinSegment(id));
  ELEPHANT_ASSIGN_OR_RETURN(
      EncodedChunk c, ParseChunk(seg.bytes().data(), seg.bytes().size()));
  out->resize(c.rows);
  DecodeDoubleChunk(c, out->data());
  return Status::OK();
}

/// Reassembles a full spilled u32 sequence (concatenated chunks).
Status LoadU32(const std::vector<SegmentCache::Id>& ids,
               std::vector<uint32_t>* out) {
  out->clear();
  std::vector<uint32_t> chunk;
  for (SegmentCache::Id id : ids) {
    ELEPHANT_RETURN_NOT_OK(LoadU32Chunk(id, &chunk));
    out->insert(out->end(), chunk.begin(), chunk.end());
  }
  return Status::OK();
}

// ---- Deterministic index binning -----------------------------------------

/// Bins row indices into `buckets` by `bucket_of(i)`. Position k of the
/// virtual input is global row sel[k] (or k when sel is null). The
/// parallel path bins per-morsel slots and concatenates them in morsel
/// order, so every bucket's index list is ascending — the property all
/// three bit-identity proofs lean on — at any thread count.
template <typename BucketFn>
std::vector<std::vector<uint32_t>> BinIndices(size_t n, const uint32_t* sel,
                                              size_t buckets,
                                              BucketFn bucket_of) {
  std::vector<std::vector<uint32_t>> out(buckets);
  if (FanOutProfitable(n)) {
    const size_t morsel = ExecMorselSize();
    size_t nchunks = (n + morsel - 1) / morsel;
    std::vector<std::vector<std::vector<uint32_t>>> slots(
        nchunks, std::vector<std::vector<uint32_t>>(buckets));
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, morsel,
            [&](size_t lo, size_t hi) {
              auto& bins = slots[lo / morsel];
              for (size_t k = lo; k < hi; ++k) {
                uint32_t i = sel != nullptr ? sel[k] : static_cast<uint32_t>(k);
                bins[bucket_of(i)].push_back(i);
              }
            },
            ExecThreads());
    for (size_t c = 0; c < nchunks; ++c) {
      for (size_t b = 0; b < buckets; ++b) {
        out[b].insert(out[b].end(), slots[c][b].begin(), slots[c][b].end());
      }
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      uint32_t i = sel != nullptr ? sel[k] : static_cast<uint32_t>(k);
      out[bucket_of(i)].push_back(i);
    }
  }
  return out;
}

// ---- Grace hash join -----------------------------------------------------

/// Pairs for inner/outer, selected left rows for semi/anti; one of the
/// two is populated per join.
struct JoinEmit {
  std::vector<JoinPair> pairs;
  std::vector<uint32_t> sel;
};

size_t JoinBuildBytes(size_t right_rows, size_t right_width) {
  return right_rows * (right_width + kHashRowOverhead);
}

/// Joins one leaf partition in memory: builds over `ridx` in ascending
/// global order (so each key group's row list is ascending, exactly as
/// the in-memory build), probes `lidx` in ascending order with morsel
/// fan-out, and appends matches to `out`.
void JoinLeaf(const std::vector<KeyPart>& lparts,
              const std::vector<KeyPart>& rparts,
              const std::vector<uint32_t>& lidx,
              const std::vector<uint32_t>& ridx, JoinType type,
              JoinEmit* out) {
  g_partitions.fetch_add(1, std::memory_order_relaxed);
  ColBuildMap map;
  for (uint32_t r : ridx) {
    ColBuildInsert(&map, rparts, KeyHashAt(rparts, r), r);
  }
  size_t n = lidx.size();
  bool pairs_mode = type == JoinType::kInner || type == JoinType::kLeftOuter;
  bool want = type == JoinType::kLeftSemi;
  auto probe_range = [&](size_t lo, size_t hi, std::vector<JoinPair>* pslot,
                         std::vector<uint32_t>* sslot) {
    for (size_t k = lo; k < hi; ++k) {
      uint32_t l = lidx[k];
      const std::vector<uint32_t>* matches =
          ColLookupOne(map, lparts, rparts, l);
      if (pairs_mode) {
        if (matches != nullptr) {
          for (uint32_t r : *matches) pslot->emplace_back(l, r);
        } else if (type == JoinType::kLeftOuter) {
          pslot->emplace_back(l, kPadRow);
        }
      } else if ((matches != nullptr) == want) {
        sslot->push_back(l);
      }
    }
  };
  if (FanOutProfitable(n)) {
    const size_t morsel = ExecMorselSize();
    size_t nchunks = (n + morsel - 1) / morsel;
    std::vector<std::vector<JoinPair>> pslots(nchunks);
    std::vector<std::vector<uint32_t>> sslots(nchunks);
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, morsel,
            [&](size_t lo, size_t hi) {
              probe_range(lo, hi, &pslots[lo / morsel], &sslots[lo / morsel]);
            },
            ExecThreads());
    for (size_t c = 0; c < nchunks; ++c) {
      out->pairs.insert(out->pairs.end(), pslots[c].begin(), pslots[c].end());
      out->sel.insert(out->sel.end(), sslots[c].begin(), sslots[c].end());
    }
  } else {
    probe_range(0, n, &out->pairs, &out->sel);
  }
}

/// Joins one partition, re-partitioning on deeper hash bits while the
/// build side still exceeds its budget share. The fan-out index sets
/// are parked in the segment cache (scoped SpillSet) and reloaded one
/// child at a time.
Status JoinPartition(const std::vector<KeyPart>& lparts,
                     const std::vector<KeyPart>& rparts,
                     std::vector<uint32_t> lidx, std::vector<uint32_t> ridx,
                     size_t right_width, size_t budget, int depth,
                     JoinType type, JoinEmit* out) {
  if (depth >= kMaxRecursion ||
      JoinBuildBytes(ridx.size(), right_width) <= budget / 2) {
    JoinLeaf(lparts, rparts, lidx, ridx, type, out);
    return Status::OK();
  }
  g_recursions.fetch_add(1, std::memory_order_relaxed);
  int shift = kRecursionShiftBase + 6 * depth;
  auto bucket_l = [&](uint32_t i) {
    return (KeyHashAt(lparts, i) >> shift) & (kRecursionFan - 1);
  };
  auto bucket_r = [&](uint32_t i) {
    return (KeyHashAt(rparts, i) >> shift) & (kRecursionFan - 1);
  };
  std::vector<std::vector<uint32_t>> lb(kRecursionFan);
  std::vector<std::vector<uint32_t>> rb(kRecursionFan);
  for (uint32_t i : lidx) lb[bucket_l(i)].push_back(i);
  for (uint32_t i : ridx) rb[bucket_r(i)].push_back(i);
  lidx = {};
  ridx = {};
  SpillSet set;
  std::vector<std::vector<SegmentCache::Id>> lids(kRecursionFan);
  std::vector<std::vector<SegmentCache::Id>> rids(kRecursionFan);
  for (size_t f = 0; f < kRecursionFan; ++f) {
    ELEPHANT_ASSIGN_OR_RETURN(lids[f], SpillU32(lb[f].data(), lb[f].size(),
                                                &set));
    lb[f] = {};
    ELEPHANT_ASSIGN_OR_RETURN(rids[f], SpillU32(rb[f].data(), rb[f].size(),
                                                &set));
    rb[f] = {};
  }
  for (size_t f = 0; f < kRecursionFan; ++f) {
    std::vector<uint32_t> l2;
    std::vector<uint32_t> r2;
    ELEPHANT_RETURN_NOT_OK(LoadU32(lids[f], &l2));
    ELEPHANT_RETURN_NOT_OK(LoadU32(rids[f], &r2));
    ELEPHANT_RETURN_NOT_OK(JoinPartition(lparts, rparts, std::move(l2),
                                         std::move(r2), right_width, budget,
                                         depth + 1, type, out));
  }
  return Status::OK();
}

Result<Table> GraceHashJoinImpl(const Table& left, const Table& right,
                                const std::vector<int>& left_keys,
                                const std::vector<int>& right_keys,
                                JoinType type) {
  g_join_spills.fetch_add(1, std::memory_order_relaxed);
  size_t budget = ExecMemoryBudget();
  std::vector<KeyPart> lparts = MakeKeyParts(left, left_keys);
  std::vector<KeyPart> rparts = MakeKeyParts(right, right_keys);
  size_t right_width = RowWidth(right);
  size_t parts =
      ChoosePartitions(JoinBuildBytes(right.num_rows(), right_width), budget);

  // Top-level split on hash bits [32, 32 + log2(parts)): disjoint from
  // both the in-memory partition mask (low 5 bits) and the recursion
  // bits. A left row and its matching build rows share the full hash,
  // so every match pair meets in exactly one partition.
  auto bucket_l = [&](uint32_t i) {
    return (KeyHashAt(lparts, i) >> 32) & (parts - 1);
  };
  auto bucket_r = [&](uint32_t i) {
    return (KeyHashAt(rparts, i) >> 32) & (parts - 1);
  };
  std::vector<std::vector<uint32_t>> lb =
      BinIndices(left.num_rows(), nullptr, parts, bucket_l);
  std::vector<std::vector<uint32_t>> rb =
      BinIndices(right.num_rows(), nullptr, parts, bucket_r);

  SpillSet set;
  std::vector<std::vector<SegmentCache::Id>> lids(parts);
  std::vector<std::vector<SegmentCache::Id>> rids(parts);
  for (size_t p = 0; p < parts; ++p) {
    ELEPHANT_ASSIGN_OR_RETURN(lids[p], SpillU32(lb[p].data(), lb[p].size(),
                                                &set));
    lb[p] = {};
    ELEPHANT_ASSIGN_OR_RETURN(rids[p], SpillU32(rb[p].data(), rb[p].size(),
                                                &set));
    rb[p] = {};
  }

  JoinEmit emit;
  for (size_t p = 0; p < parts; ++p) {
    std::vector<uint32_t> lidx;
    std::vector<uint32_t> ridx;
    ELEPHANT_RETURN_NOT_OK(LoadU32(lids[p], &lidx));
    ELEPHANT_RETURN_NOT_OK(LoadU32(rids[p], &ridx));
    ELEPHANT_RETURN_NOT_OK(JoinPartition(lparts, rparts, std::move(lidx),
                                         std::move(ridx), right_width, budget,
                                         0, type, &emit));
  }

  if (type == JoinType::kLeftSemi || type == JoinType::kLeftAnti) {
    // Each left row was probed in exactly one partition, so the
    // selected indices are distinct; ascending order is the order
    // BuildSelection emits in-memory.
    std::sort(emit.sel.begin(), emit.sel.end());
    return GatherSelection(left, emit.sel);
  }
  // Within a partition left rows were probed ascending and each row's
  // matches are its full ascending build-order match list, so a stable
  // sort by left row interleaves the partitions back into the exact
  // in-memory emission order.
  std::stable_sort(
      emit.pairs.begin(), emit.pairs.end(),
      [](const JoinPair& a, const JoinPair& b) { return a.first < b.first; });
  return internal::MaterializeJoinPairs(left, right, emit.pairs, type);
}

// ---- Spilling hash aggregate ---------------------------------------------

/// Groups found while folding one partition: first global row and the
/// folded states, parallel vectors.
struct AggPartOut {
  std::vector<uint32_t> first;
  std::vector<std::vector<VecAggState>> states;
};

/// Folds one partition's row indices (ascending global order). A
/// partition whose estimated state still exceeds its budget share
/// re-partitions on deeper hash bits; sub-partitions hold disjoint
/// group sets, so their outputs simply append (the caller's global
/// sort by first row restores emission order).
Status FoldPartition(const std::vector<KeyPart>& gparts,
                     const std::vector<internal::AggInput>& ins, size_t naggs,
                     std::vector<uint32_t> idx, size_t row_bytes,
                     size_t budget, int depth, AggPartOut* out) {
  if (depth < kMaxRecursion && idx.size() * row_bytes > budget / 2) {
    g_recursions.fetch_add(1, std::memory_order_relaxed);
    int shift = kRecursionShiftBase + 6 * depth;
    std::vector<std::vector<uint32_t>> bins(kRecursionFan);
    for (uint32_t i : idx) {
      bins[(KeyHashAt(gparts, i) >> shift) & (kRecursionFan - 1)].push_back(i);
    }
    idx = {};
    SpillSet set;
    std::vector<std::vector<SegmentCache::Id>> ids(kRecursionFan);
    for (size_t f = 0; f < kRecursionFan; ++f) {
      ELEPHANT_ASSIGN_OR_RETURN(ids[f], SpillU32(bins[f].data(),
                                                 bins[f].size(), &set));
      bins[f] = {};
    }
    for (size_t f = 0; f < kRecursionFan; ++f) {
      std::vector<uint32_t> sub;
      ELEPHANT_RETURN_NOT_OK(LoadU32(ids[f], &sub));
      ELEPHANT_RETURN_NOT_OK(FoldPartition(gparts, ins, naggs, std::move(sub),
                                           row_bytes, budget, depth + 1, out));
    }
    return Status::OK();
  }
  g_partitions.fetch_add(1, std::memory_order_relaxed);
  // Serial fold in ascending global row order — every group lives
  // entirely in this partition, so its fold sequence (and double
  // rounding) is exactly the serial oracle's.
  size_t base = out->first.size();
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  for (uint32_t i : idx) {
    uint64_t h = KeyHashAt(gparts, i);
    std::vector<uint32_t>& cands = index[h];
    uint32_t gid = StringPool::kNoCode;
    for (uint32_t g : cands) {
      if (internal::KeysEqualAt(gparts, out->first[base + g], gparts, i)) {
        gid = g;
        break;
      }
    }
    if (gid == StringPool::kNoCode) {
      gid = static_cast<uint32_t>(out->first.size() - base);
      cands.push_back(gid);
      out->first.push_back(i);
      out->states.emplace_back(naggs);
    }
    internal::FoldRowColumnar(&out->states[base + gid], ins, i);
  }
  return Status::OK();
}

Result<Table> SpillingHashAggregateImpl(const Table& t,
                                        const std::vector<int>& group_cols,
                                        const std::vector<AggExpr>& aggs,
                                        const std::vector<uint32_t>* sel) {
  ELEPHANT_CHECK(!group_cols.empty())
      << "global aggregates never spill (one row of state)";
  g_agg_spills.fetch_add(1, std::memory_order_relaxed);
  size_t budget = ExecMemoryBudget();
  size_t n = sel != nullptr ? sel->size() : t.num_rows();
  std::vector<KeyPart> gparts = MakeKeyParts(t, group_cols);
  std::vector<internal::AggInput> ins = internal::MakeAggInputs(t, aggs);
  size_t row_bytes = RowWidth(t) + kAggRowOverhead;
  size_t parts = ChoosePartitions(n * row_bytes, budget);

  auto bucket = [&](uint32_t i) {
    return (KeyHashAt(gparts, i) >> 32) & (parts - 1);
  };
  std::vector<std::vector<uint32_t>> bins =
      BinIndices(n, sel != nullptr ? sel->data() : nullptr, parts, bucket);

  SpillSet set;
  std::vector<std::vector<SegmentCache::Id>> ids(parts);
  for (size_t p = 0; p < parts; ++p) {
    ELEPHANT_ASSIGN_OR_RETURN(ids[p], SpillU32(bins[p].data(), bins[p].size(),
                                               &set));
    bins[p] = {};
  }

  // Partition folds are independent (disjoint groups) and run through
  // the TaskPool; each one reloads its index set and folds serially,
  // so in-flight working state is one partition share per thread.
  std::vector<AggPartOut> parts_out(parts);
  std::vector<Status> parts_st(parts);
  auto fold_range = [&](size_t lo, size_t hi) {
    for (size_t p = lo; p < hi; ++p) {
      std::vector<uint32_t> idx;
      Status st = LoadU32(ids[p], &idx);
      if (!st.ok()) {
        parts_st[p] = st;
        continue;
      }
      parts_st[p] = FoldPartition(gparts, ins, aggs.size(), std::move(idx),
                                  row_bytes, budget, 0, &parts_out[p]);
    }
  };
  if (ExecThreads() > 1 && parts > 1) {
    TaskPool::Global(ExecThreads())
        .ParallelFor(0, parts, 1, fold_range, ExecThreads());
  } else {
    fold_range(0, parts);
  }
  for (const Status& st : parts_st) ELEPHANT_RETURN_NOT_OK(st);

  // Merge partitions sorted by first global row — the same emission
  // rule the in-memory parallel aggregate uses, which equals the serial
  // first-seen order.
  std::vector<std::pair<uint32_t, std::pair<uint32_t, uint32_t>>> all;
  for (uint32_t p = 0; p < parts; ++p) {
    for (uint32_t g = 0; g < parts_out[p].first.size(); ++g) {
      all.emplace_back(parts_out[p].first[g], std::make_pair(p, g));
    }
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<uint32_t> first_rows;
  std::vector<std::vector<VecAggState>> states;
  first_rows.reserve(all.size());
  states.reserve(all.size());
  for (const auto& [fr, pg] : all) {
    first_rows.push_back(fr);
    states.push_back(std::move(parts_out[pg.first].states[pg.second]));
  }

  std::vector<Column> cols;
  for (int g : group_cols) cols.push_back(t.columns()[g]);
  for (const auto& a : aggs) cols.push_back({a.name, a.type});
  return internal::FinalizeGroups(t, group_cols, aggs, std::move(cols),
                                  first_rows, states);
}

// ---- External merge sort -------------------------------------------------

/// One spilled sorted run: per-key image chunk ids plus the sorted
/// global-index chunk ids.
struct RunData {
  size_t rows = 0;
  /// Per sort key: chunk ids of the key image in sorted run order.
  /// Numeric keys store the widened-double image (the comparator's
  /// exact operand); string keys store dictionary codes.
  std::vector<std::vector<SegmentCache::Id>> key_ids;
  std::vector<SegmentCache::Id> idx_ids;
};

/// Streaming read cursor over one run: holds one decoded chunk per key
/// plus the matching index chunk, advancing chunk-at-a-time.
struct RunCursor {
  const RunData* run = nullptr;
  size_t pos = 0;          // next row within the run
  size_t chunk_begin = 0;  // run row of the loaded chunk's first value
  size_t chunk_end = 0;
  std::vector<std::vector<double>> dbl;    // per key; empty for code keys
  std::vector<std::vector<uint32_t>> code;  // per key; empty for numeric
  std::vector<uint32_t> idx;

  Status LoadChunk(const std::vector<char>& is_code) {
    size_t c = pos / kSpillChunkRows;
    for (size_t k = 0; k < run->key_ids.size(); ++k) {
      if (is_code[k] != 0) {
        ELEPHANT_RETURN_NOT_OK(LoadU32Chunk(run->key_ids[k][c], &code[k]));
      } else {
        ELEPHANT_RETURN_NOT_OK(LoadF64Chunk(run->key_ids[k][c], &dbl[k]));
      }
    }
    ELEPHANT_RETURN_NOT_OK(LoadU32Chunk(run->idx_ids[c], &idx));
    chunk_begin = c * kSpillChunkRows;
    chunk_end = chunk_begin + idx.size();
    return Status::OK();
  }
};

Result<Table> ExternalSortByImpl(const Table& t,
                                 const std::vector<SortKey>& keys) {
  ELEPHANT_CHECK(!keys.empty()) << "external sort needs at least one key";
  g_sort_spills.fetch_add(1, std::memory_order_relaxed);
  size_t n = t.num_rows();
  if (n == 0) return GatherSelection(t, {});
  size_t budget = ExecMemoryBudget();
  std::vector<internal::SortPart> parts = internal::MakeSortParts(t, keys);

  // Run length from the budget: each resident run costs roughly the
  // permutation slice plus one key image per key.
  size_t per_row = 4 + kSortRowBytes * keys.size();
  size_t run_rows = budget == 0 ? n : (budget / 2) / per_row;
  run_rows = std::min(n, std::max<size_t>(1024, run_rows));
  size_t nruns = (n + run_rows - 1) / run_rows;

  // Phase 1: stable-sort each contiguous run of the identity
  // permutation with the shared comparator. Runs are disjoint slices,
  // so sorting them through the TaskPool is order-independent.
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  auto sort_runs = [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      size_t b = r * run_rows;
      size_t e = std::min(n, b + run_rows);
      std::stable_sort(perm.begin() + static_cast<ptrdiff_t>(b),
                       perm.begin() + static_cast<ptrdiff_t>(e),
                       [&parts](uint32_t a, uint32_t bb) {
                         return internal::SortIndexLess(parts, a, bb);
                       });
    }
  };
  if (ExecThreads() > 1 && nruns > 1) {
    TaskPool::Global(ExecThreads())
        .ParallelFor(0, nruns, 1, sort_runs, ExecThreads());
  } else {
    sort_runs(0, nruns);
  }
  g_partitions.fetch_add(nruns, std::memory_order_relaxed);

  // Phase 2: spill each run's key images (in sorted run order) and its
  // sorted index slice. Serial, so cache ids and stats are a pure
  // function of the input.
  std::vector<char> is_code(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    is_code[k] = parts[k].codes != nullptr ? 1 : 0;
  }
  SpillSet set;
  std::vector<RunData> runs(nruns);
  {
    std::vector<double> dimg;
    std::vector<uint32_t> cimg;
    for (size_t r = 0; r < nruns; ++r) {
      size_t b = r * run_rows;
      size_t e = std::min(n, b + run_rows);
      runs[r].rows = e - b;
      runs[r].key_ids.resize(keys.size());
      for (size_t k = 0; k < keys.size(); ++k) {
        const internal::SortPart& p = parts[k];
        if (is_code[k] != 0) {
          cimg.resize(e - b);
          for (size_t j = b; j < e; ++j) cimg[j - b] = p.codes[perm[j]];
          ELEPHANT_ASSIGN_OR_RETURN(runs[r].key_ids[k],
                                    SpillU32(cimg.data(), cimg.size(), &set));
        } else {
          dimg.resize(e - b);
          for (size_t j = b; j < e; ++j) {
            uint32_t i = perm[j];
            dimg[j - b] = p.ints != nullptr ? static_cast<double>(p.ints[i])
                                            : p.dbls[i];
          }
          ELEPHANT_ASSIGN_OR_RETURN(runs[r].key_ids[k],
                                    SpillF64(dimg.data(), dimg.size(), &set));
        }
      }
      ELEPHANT_ASSIGN_OR_RETURN(runs[r].idx_ids,
                                SpillU32(perm.data() + b, e - b, &set));
    }
  }
  perm = {};

  // Phase 3: serial k-way merge over streaming cursors. The comparator
  // reads the spilled images — numerics were stored as the widened
  // doubles the in-memory comparator compares, strings as codes
  // resolved through the shared pool — so ordering is exactly
  // SortIndexLess; ties break by run index, which equals original-index
  // order across contiguous runs.
  std::vector<RunCursor> cur(nruns);
  for (size_t r = 0; r < nruns; ++r) {
    cur[r].run = &runs[r];
    cur[r].dbl.resize(keys.size());
    cur[r].code.resize(keys.size());
    ELEPHANT_RETURN_NOT_OK(cur[r].LoadChunk(is_code));
  }
  auto head_less = [&](size_t a, size_t b) {
    const RunCursor& A = cur[a];
    const RunCursor& B = cur[b];
    size_t ia = A.pos - A.chunk_begin;
    size_t ib = B.pos - B.chunk_begin;
    for (size_t k = 0; k < keys.size(); ++k) {
      int c = 0;
      if (is_code[k] != 0) {
        uint32_t ca = A.code[k][ia];
        uint32_t cb = B.code[k][ib];
        if (ca == cb) continue;
        const std::string& sa = t.pool().Get(ca);
        const std::string& sb = t.pool().Get(cb);
        c = sa < sb ? -1 : (sb < sa ? 1 : 0);
      } else {
        double da = A.dbl[k][ia];
        double db = B.dbl[k][ib];
        c = da < db ? -1 : (db < da ? 1 : 0);
      }
      if (c != 0) return parts[k].asc ? c < 0 : c > 0;
    }
    return false;
  };
  // Min-heap of run indices: by head key, then by run index (stability).
  auto heap_after = [&](size_t a, size_t b) {
    if (head_less(a, b)) return false;
    if (head_less(b, a)) return true;
    return a > b;
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(heap_after)> heap(
      heap_after);
  for (size_t r = 0; r < nruns; ++r) {
    if (runs[r].rows > 0) heap.push(r);
  }
  std::vector<uint32_t> out_sel;
  out_sel.reserve(n);
  while (!heap.empty()) {
    size_t r = heap.top();
    heap.pop();
    RunCursor& c = cur[r];
    out_sel.push_back(c.idx[c.pos - c.chunk_begin]);
    ++c.pos;
    if (c.pos < c.run->rows) {
      if (c.pos >= c.chunk_end) {
        ELEPHANT_RETURN_NOT_OK(c.LoadChunk(is_code));
      }
      heap.push(r);
    }
  }
  return GatherSelection(t, out_sel);
}

}  // namespace

SpillCounters GetSpillCounters() {
  SpillCounters c;
  c.join_spills = g_join_spills.load(std::memory_order_relaxed);
  c.agg_spills = g_agg_spills.load(std::memory_order_relaxed);
  c.sort_spills = g_sort_spills.load(std::memory_order_relaxed);
  c.partitions = g_partitions.load(std::memory_order_relaxed);
  c.recursions = g_recursions.load(std::memory_order_relaxed);
  c.fallbacks = g_fallbacks.load(std::memory_order_relaxed);
  return c;
}

void ResetSpillCounters() {
  g_join_spills.store(0, std::memory_order_relaxed);
  g_agg_spills.store(0, std::memory_order_relaxed);
  g_sort_spills.store(0, std::memory_order_relaxed);
  g_partitions.store(0, std::memory_order_relaxed);
  g_recursions.store(0, std::memory_order_relaxed);
  g_fallbacks.store(0, std::memory_order_relaxed);
}

size_t TableByteSize(const Table& t) {
  return t.num_rows() * RowWidth(t);
}

bool SpillJoinPlanned(const Table& right) {
  size_t budget = ExecMemoryBudget();
  if (budget == 0 || !right.EnsureColumnar()) return false;
  return JoinBuildBytes(right.num_rows(), RowWidth(right)) > budget / 2;
}

bool SpillAggPlanned(const Table& t, size_t input_rows) {
  size_t budget = ExecMemoryBudget();
  if (budget == 0 || !t.EnsureColumnar()) return false;
  return input_rows * (RowWidth(t) + kAggRowOverhead) > budget / 2;
}

bool SpillSortPlanned(const Table& t, const std::vector<SortKey>& keys) {
  size_t budget = ExecMemoryBudget();
  if (budget == 0 || keys.empty() || !t.EnsureColumnar()) return false;
  return t.num_rows() * (4 + kSortRowBytes * keys.size()) > budget / 2;
}

Result<Table> TryGraceHashJoin(const Table& left, const Table& right,
                               const std::vector<int>& left_keys,
                               const std::vector<int>& right_keys,
                               JoinType type) {
  Result<Table> r = GraceHashJoinImpl(left, right, left_keys, right_keys,
                                      type);
  if (!r.ok()) g_fallbacks.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Result<Table> TrySpillingHashAggregate(const Table& t,
                                       const std::vector<int>& group_cols,
                                       const std::vector<AggExpr>& aggs,
                                       const std::vector<uint32_t>* sel) {
  Result<Table> r = SpillingHashAggregateImpl(t, group_cols, aggs, sel);
  if (!r.ok()) g_fallbacks.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Result<Table> TryExternalSortBy(const Table& t,
                                const std::vector<SortKey>& keys) {
  Result<Table> r = ExternalSortByImpl(t, keys);
  if (!r.ok()) g_fallbacks.fetch_add(1, std::memory_order_relaxed);
  return r;
}

}  // namespace elephant::exec
