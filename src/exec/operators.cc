#include "exec/operators.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/task_pool.h"

namespace elephant::exec {

namespace {

std::atomic<int> g_exec_threads{0};        // 0 = ELEPHANT_THREADS default
std::atomic<size_t> g_exec_morsel{2048};   // rows per morsel

/// Number of hash partitions for parallel join builds and aggregates.
/// Fixed (never derived from the thread count) so partition membership
/// is deterministic; power of two for cheap masking.
constexpr size_t kHashPartitions = 32;

/// True when `num_rows` is large enough to amortize fan-out overhead at
/// the current thread setting.
bool UseParallel(size_t num_rows) {
  return ExecThreads() > 1 && num_rows >= 2 * ExecMorselSize();
}

size_t NumChunks(size_t n, size_t morsel) {
  return (n + morsel - 1) / morsel;
}

}  // namespace

void SetExecThreads(int n) {
  g_exec_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int ExecThreads() {
  int n = g_exec_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : DefaultThreadCount();
}

void SetExecMorselSize(size_t rows) {
  ELEPHANT_CHECK(rows > 0) << "morsel size must be positive";
  g_exec_morsel.store(rows, std::memory_order_relaxed);
}

size_t ExecMorselSize() {
  return g_exec_morsel.load(std::memory_order_relaxed);
}

namespace {

/// Composite key over selected columns, hashable and equality-comparable.
struct RowKey {
  std::vector<Value> parts;

  bool operator==(const RowKey& other) const {
    if (parts.size() != other.parts.size()) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (CompareValues(parts[i], other.parts[i]) != 0) return false;
    }
    return true;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& k) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (const Value& v : k.parts) {
      h ^= HashValue(v);
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

RowKey ExtractKey(const Row& row, const std::vector<int>& cols) {
  RowKey key;
  key.parts.reserve(cols.size());
  for (int c : cols) key.parts.push_back(row[c]);
  return key;
}

Value DefaultValue(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return Value{int64_t{0}};
    case ValueType::kDouble:
      return Value{0.0};
    case ValueType::kString:
      return Value{std::string()};
  }
  return Value{int64_t{0}};
}

std::vector<int> ResolveCols(const Table& t,
                             const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(t.ColIndex(n));
  return out;
}

/// Shared Filter body; `kMove` steals surviving rows from the input.
/// The parallel path writes each morsel's survivors into its own slot
/// and concatenates slots in morsel order, which reproduces the serial
/// row order exactly (morsel boundaries depend only on the row count).
template <bool kMove>
Table FilterImpl(std::conditional_t<kMove, Table, const Table>& t,
                 const Predicate& pred) {
  Table out(t.columns());
  size_t n = t.num_rows();
  if (UseParallel(n)) {
    const size_t morsel = ExecMorselSize();
    std::vector<std::vector<Row>> slots(NumChunks(n, morsel));
    auto& rows = [&]() -> auto& {
      if constexpr (kMove) {
        return t.mutable_rows();
      } else {
        return t.rows();
      }
    }();
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, morsel,
            [&](size_t lo, size_t hi) {
              std::vector<Row>& slot = slots[lo / morsel];
              for (size_t i = lo; i < hi; ++i) {
                if (!pred(rows[i])) continue;
                if constexpr (kMove) {
                  slot.push_back(std::move(rows[i]));
                } else {
                  slot.push_back(rows[i]);
                }
              }
            },
            ExecThreads());
    size_t total = 0;
    for (const auto& s : slots) total += s.size();
    out.Reserve(total);
    for (auto& s : slots) {
      for (Row& r : s) out.AddRow(std::move(r));
    }
  } else {
    if constexpr (kMove) {
      for (Row& row : t.mutable_rows()) {
        if (pred(row)) out.AddRow(std::move(row));
      }
    } else {
      for (const Row& row : t.rows()) {
        if (pred(row)) out.AddRow(row);
      }
    }
  }
  return out;
}

}  // namespace

Table Filter(const Table& t, const Predicate& pred) {
  return FilterImpl<false>(t, pred);
}

Table Filter(Table&& t, const Predicate& pred) {
  return FilterImpl<true>(t, pred);
}

Table Project(const Table& t, const std::vector<NamedExpr>& exprs) {
  std::vector<Column> cols;
  cols.reserve(exprs.size());
  for (const auto& e : exprs) cols.push_back({e.name, e.type});
  Table out(std::move(cols));
  size_t n = t.num_rows();
  if (UseParallel(n)) {
    // Projection is 1:1, so each morsel writes its own output range
    // in place — no per-slot buffers or concatenation needed.
    out.mutable_rows().resize(n);
    auto& out_rows = out.mutable_rows();
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, ExecMorselSize(),
            [&](size_t lo, size_t hi) {
              for (size_t i = lo; i < hi; ++i) {
                Row projected;
                projected.reserve(exprs.size());
                for (const auto& e : exprs) {
                  projected.push_back(e.fn(t.rows()[i]));
                }
                out_rows[i] = std::move(projected);
              }
            },
            ExecThreads());
  } else {
    out.Reserve(n);
    for (const Row& row : t.rows()) {
      Row projected;
      projected.reserve(exprs.size());
      for (const auto& e : exprs) projected.push_back(e.fn(row));
      out.AddRow(std::move(projected));
    }
  }
  return out;
}

namespace {

/// Join build table: key -> right-row indices in global row order. The
/// index vectors make the probe emission order fully deterministic
/// (unlike unordered_multimap, whose equal_range order is unspecified).
using BuildMap = std::unordered_map<RowKey, std::vector<uint32_t>, RowKeyHash>;

/// Builds per-partition maps. The serial path uses one partition; the
/// parallel path first bins row indices per (chunk, partition), then
/// each partition's map is built by one task walking chunks in order,
/// so every key's index vector is in global row order — identical to
/// the serial build.
std::vector<BuildMap> BuildJoinTable(const Table& right,
                                     const std::vector<int>& right_keys,
                                     size_t num_partitions) {
  size_t n = right.num_rows();
  std::vector<BuildMap> maps(num_partitions);
  if (num_partitions == 1) {
    maps[0].reserve(n);
    for (size_t i = 0; i < n; ++i) {
      maps[0][ExtractKey(right.rows()[i], right_keys)].push_back(
          static_cast<uint32_t>(i));
    }
    return maps;
  }
  const size_t morsel = ExecMorselSize();
  size_t nchunks = NumChunks(n, morsel);
  std::vector<std::vector<std::vector<uint32_t>>> binned(
      nchunks, std::vector<std::vector<uint32_t>>(num_partitions));
  TaskPool& pool = TaskPool::Global(ExecThreads());
  pool.ParallelFor(
      0, n, morsel,
      [&](size_t lo, size_t hi) {
        auto& bins = binned[lo / morsel];
        for (size_t i = lo; i < hi; ++i) {
          RowKey key = ExtractKey(right.rows()[i], right_keys);
          bins[RowKeyHash{}(key) & (num_partitions - 1)].push_back(
              static_cast<uint32_t>(i));
        }
      },
      ExecThreads());
  pool.ParallelFor(
      0, num_partitions, 1,
      [&](size_t lo, size_t hi) {
        for (size_t p = lo; p < hi; ++p) {
          for (size_t c = 0; c < nchunks; ++c) {
            for (uint32_t idx : binned[c][p]) {
              maps[p][ExtractKey(right.rows()[idx], right_keys)].push_back(
                  idx);
            }
          }
        }
      },
      ExecThreads());
  return maps;
}

}  // namespace

Table HashJoin(const Table& left, const Table& right,
               const std::vector<int>& left_keys,
               const std::vector<int>& right_keys, JoinType type) {
  ELEPHANT_CHECK(left_keys.size() == right_keys.size())
      << "join key arity mismatch: " << left_keys.size() << " vs "
      << right_keys.size();
  for (int k : left_keys) {
    ELEPHANT_CHECK(k >= 0 && k < left.num_cols())
        << "left join key column " << k << " out of range";
  }
  for (int k : right_keys) {
    ELEPHANT_CHECK(k >= 0 && k < right.num_cols())
        << "right join key column " << k << " out of range";
  }
  // Output schema.
  std::vector<Column> cols = left.columns();
  if (type == JoinType::kInner || type == JoinType::kLeftOuter) {
    for (const Column& rc : right.columns()) {
      Column c = rc;
      for (const Column& lc : left.columns()) {
        if (lc.name == c.name) {
          c.name += "_r";
          break;
        }
      }
      cols.push_back(std::move(c));
    }
  }
  Table out(std::move(cols));

  // Build side: right.
  size_t partitions = UseParallel(right.num_rows()) ? kHashPartitions : 1;
  std::vector<BuildMap> maps =
      BuildJoinTable(right, right_keys, partitions);
  auto lookup = [&](const RowKey& key) -> const std::vector<uint32_t>* {
    const BuildMap& m =
        maps[partitions == 1 ? 0 : (RowKeyHash{}(key) & (partitions - 1))];
    auto it = m.find(key);
    return it == m.end() ? nullptr : &it->second;
  };

  // Probe side: left. One morsel's matches go to one slot; slots
  // concatenated in morsel order reproduce the serial emission order.
  auto probe_range = [&](size_t lo, size_t hi, std::vector<Row>* slot) {
    for (size_t i = lo; i < hi; ++i) {
      const Row& lrow = left.rows()[i];
      const std::vector<uint32_t>* matches =
          lookup(ExtractKey(lrow, left_keys));
      switch (type) {
        case JoinType::kLeftSemi:
          if (matches != nullptr) slot->push_back(lrow);
          break;
        case JoinType::kLeftAnti:
          if (matches == nullptr) slot->push_back(lrow);
          break;
        case JoinType::kInner:
        case JoinType::kLeftOuter: {
          if (matches != nullptr) {
            for (uint32_t r : *matches) {
              Row combined = lrow;
              const Row& rrow = right.rows()[r];
              combined.insert(combined.end(), rrow.begin(), rrow.end());
              slot->push_back(std::move(combined));
            }
          } else if (type == JoinType::kLeftOuter) {
            Row combined = lrow;
            for (const Column& rc : right.columns()) {
              combined.push_back(DefaultValue(rc.type));
            }
            slot->push_back(std::move(combined));
          }
          break;
        }
      }
    }
  };

  size_t n = left.num_rows();
  if (UseParallel(n)) {
    const size_t morsel = ExecMorselSize();
    std::vector<std::vector<Row>> slots(NumChunks(n, morsel));
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, morsel,
            [&](size_t lo, size_t hi) {
              probe_range(lo, hi, &slots[lo / morsel]);
            },
            ExecThreads());
    size_t total = 0;
    for (const auto& s : slots) total += s.size();
    out.Reserve(total);
    for (auto& s : slots) {
      for (Row& r : s) out.AddRow(std::move(r));
    }
  } else {
    std::vector<Row> slot;
    probe_range(0, n, &slot);
    out.Reserve(slot.size());
    for (Row& r : slot) out.AddRow(std::move(r));
  }
  return out;
}

Table HashJoinOn(const Table& left, const Table& right,
                 const std::vector<std::string>& left_keys,
                 const std::vector<std::string>& right_keys, JoinType type) {
  return HashJoin(left, right, ResolveCols(left, left_keys),
                  ResolveCols(right, right_keys), type);
}

namespace {

std::vector<Column> ConcatSchemas(const Table& left, const Table& right) {
  std::vector<Column> cols = left.columns();
  for (const Column& rc : right.columns()) {
    Column c = rc;
    for (const Column& lc : left.columns()) {
      if (lc.name == c.name) {
        c.name += "_r";
        break;
      }
    }
    cols.push_back(std::move(c));
  }
  return cols;
}

}  // namespace

Table SortMergeJoin(const Table& left, const Table& right, int left_key,
                    int right_key) {
  Table out(ConcatSchemas(left, right));
  // Sort row indexes by key.
  std::vector<size_t> li(left.num_rows()), ri(right.num_rows());
  for (size_t i = 0; i < li.size(); ++i) li[i] = i;
  for (size_t i = 0; i < ri.size(); ++i) ri[i] = i;
  std::sort(li.begin(), li.end(), [&](size_t a, size_t b) {
    return CompareValues(left.rows()[a][left_key],
                         left.rows()[b][left_key]) < 0;
  });
  std::sort(ri.begin(), ri.end(), [&](size_t a, size_t b) {
    return CompareValues(right.rows()[a][right_key],
                         right.rows()[b][right_key]) < 0;
  });
  size_t l = 0, r = 0;
  while (l < li.size() && r < ri.size()) {
    const Value& lv = left.rows()[li[l]][left_key];
    const Value& rv = right.rows()[ri[r]][right_key];
    int c = CompareValues(lv, rv);
    if (c < 0) {
      l++;
    } else if (c > 0) {
      r++;
    } else {
      // Emit the cross product of the equal runs.
      size_t r_run_end = r;
      while (r_run_end < ri.size() &&
             CompareValues(right.rows()[ri[r_run_end]][right_key], lv) ==
                 0) {
        r_run_end++;
      }
      while (l < li.size() &&
             CompareValues(left.rows()[li[l]][left_key], rv) == 0) {
        for (size_t rr = r; rr < r_run_end; ++rr) {
          Row combined = left.rows()[li[l]];
          const Row& rrow = right.rows()[ri[rr]];
          combined.insert(combined.end(), rrow.begin(), rrow.end());
          out.AddRow(std::move(combined));
        }
        l++;
      }
      r = r_run_end;
    }
  }
  return out;
}

Table NestedLoopJoin(const Table& left, const Table& right,
                     const std::function<bool(const Row&)>& pred) {
  Table out(ConcatSchemas(left, right));
  for (const Row& lrow : left.rows()) {
    for (const Row& rrow : right.rows()) {
      Row combined = lrow;
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      if (pred(combined)) out.AddRow(std::move(combined));
    }
  }
  return out;
}

namespace {

struct AggState {
  double sum = 0;
  int64_t count = 0;
  bool has_value = false;
  Value min_v;
  Value max_v;
  // Serialized values for CountDistinct. Only the cardinality is ever
  // read (never iteration order), so a hash set's O(1) insert beats the
  // tree set's O(log n) with no observable difference in results.
  std::unordered_set<std::string> distinct;
};

std::string SerializeValue(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return "i" + std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return "d" + std::to_string(*d);
  return "s" + std::get<std::string>(v);
}

/// Folds one input row into a group's aggregate states. Both the serial
/// and the parallel aggregate call this in global row order per group,
/// so floating-point accumulation rounds identically on every path.
void UpdateAggStates(std::vector<AggState>* states,
                     const std::vector<AggExpr>& aggs, const Row& row) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    AggState& st = (*states)[i];
    const AggExpr& a = aggs[i];
    if (a.kind == AggKind::kCount) {
      st.count++;
      continue;
    }
    Value v = a.arg(row);
    switch (a.kind) {
      case AggKind::kSum:
      case AggKind::kAvg:
        st.sum += AsDouble(v);
        st.count++;
        break;
      case AggKind::kMin:
        if (!st.has_value || CompareValues(v, st.min_v) < 0) st.min_v = v;
        st.has_value = true;
        break;
      case AggKind::kMax:
        if (!st.has_value || CompareValues(v, st.max_v) > 0) st.max_v = v;
        st.has_value = true;
        break;
      case AggKind::kCountDistinct:
        st.distinct.insert(SerializeValue(v));
        break;
      case AggKind::kCount:
        break;
    }
  }
}

Row FinalizeAggRow(const RowKey& key, const std::vector<AggState>& states,
                   const std::vector<AggExpr>& aggs, size_t num_group_cols) {
  Row row;
  row.reserve(num_group_cols + aggs.size());
  for (const Value& v : key.parts) row.push_back(v);
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggState& st = states[i];
    const AggExpr& a = aggs[i];
    switch (a.kind) {
      case AggKind::kSum:
        row.push_back(a.type == ValueType::kInt
                          ? Value{static_cast<int64_t>(st.sum)}
                          : Value{st.sum});
        break;
      case AggKind::kAvg:
        row.push_back(Value{st.count ? st.sum / st.count : 0.0});
        break;
      case AggKind::kCount:
        row.push_back(Value{st.count});
        break;
      case AggKind::kCountDistinct:
        row.push_back(Value{static_cast<int64_t>(st.distinct.size())});
        break;
      case AggKind::kMin:
        row.push_back(st.has_value ? st.min_v : DefaultValue(a.type));
        break;
      case AggKind::kMax:
        row.push_back(st.has_value ? st.max_v : DefaultValue(a.type));
        break;
    }
  }
  return row;
}

/// Per-partition aggregation state for the parallel path.
struct AggPartition {
  std::unordered_map<RowKey, std::vector<AggState>, RowKeyHash> groups;
  /// (first global row index, key) per group, for serial-order output.
  std::vector<std::pair<size_t, RowKey>> order;
};

}  // namespace

Table HashAggregate(const Table& t, const std::vector<int>& group_cols,
                    const std::vector<AggExpr>& aggs) {
  std::vector<Column> cols;
  for (int g : group_cols) cols.push_back(t.columns()[g]);
  for (const auto& a : aggs) cols.push_back({a.name, a.type});
  Table out(std::move(cols));

  size_t n = t.num_rows();
  if (UseParallel(n) && !group_cols.empty()) {
    // Partition rows by key hash: every group lives in exactly one
    // partition, and each partition folds its rows in global row order
    // (chunks walked in order, indices ascending within a chunk), so
    // each group's states — including double rounding — are identical
    // to the serial fold. Groups are then emitted sorted by first
    // global row index, reproducing the serial first-seen order.
    const size_t morsel = ExecMorselSize();
    size_t nchunks = NumChunks(n, morsel);
    std::vector<std::vector<std::vector<uint32_t>>> binned(
        nchunks, std::vector<std::vector<uint32_t>>(kHashPartitions));
    TaskPool& pool = TaskPool::Global(ExecThreads());
    pool.ParallelFor(
        0, n, morsel,
        [&](size_t lo, size_t hi) {
          auto& bins = binned[lo / morsel];
          for (size_t i = lo; i < hi; ++i) {
            RowKey key = ExtractKey(t.rows()[i], group_cols);
            bins[RowKeyHash{}(key) & (kHashPartitions - 1)].push_back(
                static_cast<uint32_t>(i));
          }
        },
        ExecThreads());
    std::vector<AggPartition> parts(kHashPartitions);
    pool.ParallelFor(
        0, kHashPartitions, 1,
        [&](size_t lo, size_t hi) {
          for (size_t p = lo; p < hi; ++p) {
            AggPartition& part = parts[p];
            for (size_t c = 0; c < nchunks; ++c) {
              for (uint32_t idx : binned[c][p]) {
                const Row& row = t.rows()[idx];
                RowKey key = ExtractKey(row, group_cols);
                auto it = part.groups.find(key);
                if (it == part.groups.end()) {
                  it = part.groups
                           .emplace(key, std::vector<AggState>(aggs.size()))
                           .first;
                  part.order.emplace_back(idx, key);
                }
                UpdateAggStates(&it->second, aggs, row);
              }
            }
          }
        },
        ExecThreads());
    // Flatten (first_row, key) pairs across partitions and emit in
    // ascending first-row order == serial first-seen order.
    std::vector<std::pair<size_t, const RowKey*>> all_groups;
    for (const AggPartition& part : parts) {
      for (const auto& [first_row, key] : part.order) {
        all_groups.emplace_back(first_row, &key);
      }
    }
    std::sort(all_groups.begin(), all_groups.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.Reserve(all_groups.size());
    for (const auto& [first_row, key] : all_groups) {
      const AggPartition& part =
          parts[RowKeyHash{}(*key) & (kHashPartitions - 1)];
      out.AddRow(FinalizeAggRow(*key, part.groups.at(*key), aggs,
                                group_cols.size()));
    }
    return out;
  }

  std::unordered_map<RowKey, std::vector<AggState>, RowKeyHash> groups;
  std::vector<RowKey> order;  // first-seen order for determinism
  for (const Row& row : t.rows()) {
    RowKey key = ExtractKey(row, group_cols);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<AggState>(aggs.size())).first;
      order.push_back(key);
    }
    UpdateAggStates(&it->second, aggs, row);
  }

  // Global aggregate over empty input still yields one row of zeros.
  if (group_cols.empty() && groups.empty()) {
    RowKey empty;
    groups.emplace(empty, std::vector<AggState>(aggs.size()));
    order.push_back(empty);
  }

  out.Reserve(order.size());
  for (const RowKey& key : order) {
    out.AddRow(
        FinalizeAggRow(key, groups.at(key), aggs, group_cols.size()));
  }
  return out;
}

Table HashAggregateOn(const Table& t,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggExpr>& aggs) {
  return HashAggregate(t, ResolveCols(t, group_cols), aggs);
}

namespace {

/// Sorts `rows` stably in place. The parallel path stable-sorts fixed
/// morsel chunks, then merges adjacent chunk pairs per round with
/// std::merge (stable: ties taken from the earlier chunk), which yields
/// exactly the serial std::stable_sort result.
void StableSortRows(std::vector<Row>* rows,
                    const std::function<bool(const Row&, const Row&)>& less) {
  size_t n = rows->size();
  if (!UseParallel(n)) {
    std::stable_sort(rows->begin(), rows->end(), less);
    return;
  }
  const size_t morsel = ExecMorselSize();
  size_t nchunks = NumChunks(n, morsel);
  TaskPool& pool = TaskPool::Global(ExecThreads());
  pool.ParallelFor(
      0, n, morsel,
      [&](size_t lo, size_t hi) {
        std::stable_sort(rows->begin() + static_cast<ptrdiff_t>(lo),
                         rows->begin() + static_cast<ptrdiff_t>(hi), less);
      },
      ExecThreads());
  if (nchunks == 1) return;
  std::vector<Row> scratch(n);
  std::vector<Row>* src = rows;
  std::vector<Row>* dst = &scratch;
  for (size_t width = morsel; width < n; width *= 2) {
    size_t npairs = NumChunks(n, 2 * width);
    pool.ParallelFor(
        0, npairs, 1,
        [&](size_t plo, size_t phi) {
          for (size_t p = plo; p < phi; ++p) {
            size_t lo = p * 2 * width;
            size_t mid = std::min(lo + width, n);
            size_t hi = std::min(lo + 2 * width, n);
            auto s = src->begin() + static_cast<ptrdiff_t>(lo);
            auto m = src->begin() + static_cast<ptrdiff_t>(mid);
            auto e = src->begin() + static_cast<ptrdiff_t>(hi);
            auto d = dst->begin() + static_cast<ptrdiff_t>(lo);
            if (mid >= hi) {
              std::move(s, e, d);
            } else {
              std::merge(std::make_move_iterator(s),
                         std::make_move_iterator(m),
                         std::make_move_iterator(m),
                         std::make_move_iterator(e), d, less);
            }
          }
        },
        ExecThreads());
    std::swap(src, dst);
  }
  if (src != rows) *rows = std::move(*src);
}

std::function<bool(const Row&, const Row&)> MakeLess(
    const std::vector<SortKey>& keys) {
  return [&keys](const Row& a, const Row& b) {
    for (const SortKey& k : keys) {
      int c = CompareValues(a[k.col], b[k.col]);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  };
}

void CheckSortKeys(const Table& t, const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    ELEPHANT_CHECK(k.col >= 0 && k.col < t.num_cols())
        << "sort key column " << k.col << " out of range";
  }
}

}  // namespace

Table SortBy(const Table& t, const std::vector<SortKey>& keys) {
  CheckSortKeys(t, keys);
  Table out = t;
  StableSortRows(&out.mutable_rows(), MakeLess(keys));
  return out;
}

Table SortBy(Table&& t, const std::vector<SortKey>& keys) {
  CheckSortKeys(t, keys);
  Table out = std::move(t);
  StableSortRows(&out.mutable_rows(), MakeLess(keys));
  return out;
}

Table Limit(const Table& t, size_t n) {
  Table out(t.columns());
  size_t take = std::min(n, t.num_rows());
  out.Reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.AddRow(t.rows()[i]);
  }
  return out;
}

Table Limit(Table&& t, size_t n) {
  Table out(t.columns());
  size_t take = std::min(n, t.num_rows());
  out.Reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.AddRow(std::move(t.mutable_rows()[i]));
  }
  return out;
}

Table Distinct(const Table& t) {
  std::vector<int> all_cols(t.num_cols());
  for (int i = 0; i < t.num_cols(); ++i) all_cols[i] = i;
  Table out(t.columns());
  std::unordered_map<RowKey, bool, RowKeyHash> seen;
  seen.reserve(t.num_rows());
  for (const Row& row : t.rows()) {
    RowKey key = ExtractKey(row, all_cols);
    if (seen.emplace(std::move(key), true).second) out.AddRow(row);
  }
  return out;
}

Expr Col(const Table& t, const std::string& name) {
  int idx = t.ColIndex(name);
  return [idx](const Row& row) { return row[idx]; };
}

Expr Lit(Value v) {
  return [v](const Row&) { return v; };
}

Expr Mul(Expr a, Expr b) {
  return [a = std::move(a), b = std::move(b)](const Row& row) {
    return Value{AsDouble(a(row)) * AsDouble(b(row))};
  };
}

Expr Add(Expr a, Expr b) {
  return [a = std::move(a), b = std::move(b)](const Row& row) {
    return Value{AsDouble(a(row)) + AsDouble(b(row))};
  };
}

Expr Sub(Expr a, Expr b) {
  return [a = std::move(a), b = std::move(b)](const Row& row) {
    return Value{AsDouble(a(row)) - AsDouble(b(row))};
  };
}

Expr Revenue(const Table& t, const std::string& price_col,
             const std::string& discount_col) {
  int p = t.ColIndex(price_col);
  int d = t.ColIndex(discount_col);
  return [p, d](const Row& row) {
    return Value{AsDouble(row[p]) * (1.0 - AsDouble(row[d]))};
  };
}

}  // namespace elephant::exec
