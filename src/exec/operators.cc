#include "exec/operators.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/check.h"

namespace elephant::exec {

namespace {

/// Composite key over selected columns, hashable and equality-comparable.
struct RowKey {
  std::vector<Value> parts;

  bool operator==(const RowKey& other) const {
    if (parts.size() != other.parts.size()) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (CompareValues(parts[i], other.parts[i]) != 0) return false;
    }
    return true;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& k) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (const Value& v : k.parts) {
      h ^= HashValue(v);
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

RowKey ExtractKey(const Row& row, const std::vector<int>& cols) {
  RowKey key;
  key.parts.reserve(cols.size());
  for (int c : cols) key.parts.push_back(row[c]);
  return key;
}

Value DefaultValue(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return Value{int64_t{0}};
    case ValueType::kDouble:
      return Value{0.0};
    case ValueType::kString:
      return Value{std::string()};
  }
  return Value{int64_t{0}};
}

std::vector<int> ResolveCols(const Table& t,
                             const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(t.ColIndex(n));
  return out;
}

}  // namespace

Table Filter(const Table& t, const Predicate& pred) {
  Table out(t.columns());
  for (const Row& row : t.rows()) {
    if (pred(row)) out.AddRow(row);
  }
  return out;
}

Table Project(const Table& t, const std::vector<NamedExpr>& exprs) {
  std::vector<Column> cols;
  cols.reserve(exprs.size());
  for (const auto& e : exprs) cols.push_back({e.name, e.type});
  Table out(std::move(cols));
  out.Reserve(t.num_rows());
  for (const Row& row : t.rows()) {
    Row projected;
    projected.reserve(exprs.size());
    for (const auto& e : exprs) projected.push_back(e.fn(row));
    out.AddRow(std::move(projected));
  }
  return out;
}

Table HashJoin(const Table& left, const Table& right,
               const std::vector<int>& left_keys,
               const std::vector<int>& right_keys, JoinType type) {
  ELEPHANT_CHECK(left_keys.size() == right_keys.size())
      << "join key arity mismatch: " << left_keys.size() << " vs "
      << right_keys.size();
  for (int k : left_keys) {
    ELEPHANT_CHECK(k >= 0 && k < left.num_cols())
        << "left join key column " << k << " out of range";
  }
  for (int k : right_keys) {
    ELEPHANT_CHECK(k >= 0 && k < right.num_cols())
        << "right join key column " << k << " out of range";
  }
  // Output schema.
  std::vector<Column> cols = left.columns();
  if (type == JoinType::kInner || type == JoinType::kLeftOuter) {
    for (const Column& rc : right.columns()) {
      Column c = rc;
      for (const Column& lc : left.columns()) {
        if (lc.name == c.name) {
          c.name += "_r";
          break;
        }
      }
      cols.push_back(std::move(c));
    }
  }
  Table out(std::move(cols));

  // Build side: right.
  std::unordered_multimap<RowKey, const Row*, RowKeyHash> build;
  build.reserve(right.num_rows());
  for (const Row& row : right.rows()) {
    build.emplace(ExtractKey(row, right_keys), &row);
  }

  for (const Row& lrow : left.rows()) {
    RowKey key = ExtractKey(lrow, left_keys);
    auto [begin, end] = build.equal_range(key);
    bool matched = begin != end;
    switch (type) {
      case JoinType::kLeftSemi:
        if (matched) out.AddRow(lrow);
        break;
      case JoinType::kLeftAnti:
        if (!matched) out.AddRow(lrow);
        break;
      case JoinType::kInner:
      case JoinType::kLeftOuter: {
        if (matched) {
          for (auto it = begin; it != end; ++it) {
            Row combined = lrow;
            combined.insert(combined.end(), it->second->begin(),
                            it->second->end());
            out.AddRow(std::move(combined));
          }
        } else if (type == JoinType::kLeftOuter) {
          Row combined = lrow;
          for (const Column& rc : right.columns()) {
            combined.push_back(DefaultValue(rc.type));
          }
          out.AddRow(std::move(combined));
        }
        break;
      }
    }
  }
  return out;
}

Table HashJoinOn(const Table& left, const Table& right,
                 const std::vector<std::string>& left_keys,
                 const std::vector<std::string>& right_keys, JoinType type) {
  return HashJoin(left, right, ResolveCols(left, left_keys),
                  ResolveCols(right, right_keys), type);
}

namespace {

std::vector<Column> ConcatSchemas(const Table& left, const Table& right) {
  std::vector<Column> cols = left.columns();
  for (const Column& rc : right.columns()) {
    Column c = rc;
    for (const Column& lc : left.columns()) {
      if (lc.name == c.name) {
        c.name += "_r";
        break;
      }
    }
    cols.push_back(std::move(c));
  }
  return cols;
}

}  // namespace

Table SortMergeJoin(const Table& left, const Table& right, int left_key,
                    int right_key) {
  Table out(ConcatSchemas(left, right));
  // Sort row indexes by key.
  std::vector<size_t> li(left.num_rows()), ri(right.num_rows());
  for (size_t i = 0; i < li.size(); ++i) li[i] = i;
  for (size_t i = 0; i < ri.size(); ++i) ri[i] = i;
  std::sort(li.begin(), li.end(), [&](size_t a, size_t b) {
    return CompareValues(left.rows()[a][left_key],
                         left.rows()[b][left_key]) < 0;
  });
  std::sort(ri.begin(), ri.end(), [&](size_t a, size_t b) {
    return CompareValues(right.rows()[a][right_key],
                         right.rows()[b][right_key]) < 0;
  });
  size_t l = 0, r = 0;
  while (l < li.size() && r < ri.size()) {
    const Value& lv = left.rows()[li[l]][left_key];
    const Value& rv = right.rows()[ri[r]][right_key];
    int c = CompareValues(lv, rv);
    if (c < 0) {
      l++;
    } else if (c > 0) {
      r++;
    } else {
      // Emit the cross product of the equal runs.
      size_t r_run_end = r;
      while (r_run_end < ri.size() &&
             CompareValues(right.rows()[ri[r_run_end]][right_key], lv) ==
                 0) {
        r_run_end++;
      }
      while (l < li.size() &&
             CompareValues(left.rows()[li[l]][left_key], rv) == 0) {
        for (size_t rr = r; rr < r_run_end; ++rr) {
          Row combined = left.rows()[li[l]];
          const Row& rrow = right.rows()[ri[rr]];
          combined.insert(combined.end(), rrow.begin(), rrow.end());
          out.AddRow(std::move(combined));
        }
        l++;
      }
      r = r_run_end;
    }
  }
  return out;
}

Table NestedLoopJoin(const Table& left, const Table& right,
                     const std::function<bool(const Row&)>& pred) {
  Table out(ConcatSchemas(left, right));
  for (const Row& lrow : left.rows()) {
    for (const Row& rrow : right.rows()) {
      Row combined = lrow;
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      if (pred(combined)) out.AddRow(std::move(combined));
    }
  }
  return out;
}

namespace {

struct AggState {
  double sum = 0;
  int64_t count = 0;
  bool has_value = false;
  Value min_v;
  Value max_v;
  std::set<std::string> distinct;  // serialized values for CountDistinct
};

std::string SerializeValue(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return "i" + std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return "d" + std::to_string(*d);
  return "s" + std::get<std::string>(v);
}

}  // namespace

Table HashAggregate(const Table& t, const std::vector<int>& group_cols,
                    const std::vector<AggExpr>& aggs) {
  std::vector<Column> cols;
  for (int g : group_cols) cols.push_back(t.columns()[g]);
  for (const auto& a : aggs) cols.push_back({a.name, a.type});
  Table out(std::move(cols));

  std::unordered_map<RowKey, std::vector<AggState>, RowKeyHash> groups;
  std::vector<RowKey> order;  // first-seen order for determinism
  for (const Row& row : t.rows()) {
    RowKey key = ExtractKey(row, group_cols);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<AggState>(aggs.size())).first;
      order.push_back(key);
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      AggState& st = it->second[i];
      const AggExpr& a = aggs[i];
      if (a.kind == AggKind::kCount) {
        st.count++;
        continue;
      }
      Value v = a.arg(row);
      switch (a.kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          st.sum += AsDouble(v);
          st.count++;
          break;
        case AggKind::kMin:
          if (!st.has_value || CompareValues(v, st.min_v) < 0) st.min_v = v;
          st.has_value = true;
          break;
        case AggKind::kMax:
          if (!st.has_value || CompareValues(v, st.max_v) > 0) st.max_v = v;
          st.has_value = true;
          break;
        case AggKind::kCountDistinct:
          st.distinct.insert(SerializeValue(v));
          break;
        case AggKind::kCount:
          break;
      }
    }
  }

  // Global aggregate over empty input still yields one row of zeros.
  if (group_cols.empty() && groups.empty()) {
    RowKey empty;
    groups.emplace(empty, std::vector<AggState>(aggs.size()));
    order.push_back(empty);
  }

  for (const RowKey& key : order) {
    const std::vector<AggState>& states = groups.at(key);
    Row row;
    row.reserve(group_cols.size() + aggs.size());
    for (const Value& v : key.parts) row.push_back(v);
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggState& st = states[i];
      const AggExpr& a = aggs[i];
      switch (a.kind) {
        case AggKind::kSum:
          row.push_back(a.type == ValueType::kInt
                            ? Value{static_cast<int64_t>(st.sum)}
                            : Value{st.sum});
          break;
        case AggKind::kAvg:
          row.push_back(Value{st.count ? st.sum / st.count : 0.0});
          break;
        case AggKind::kCount:
          row.push_back(Value{st.count});
          break;
        case AggKind::kCountDistinct:
          row.push_back(Value{static_cast<int64_t>(st.distinct.size())});
          break;
        case AggKind::kMin:
          row.push_back(st.has_value ? st.min_v : DefaultValue(a.type));
          break;
        case AggKind::kMax:
          row.push_back(st.has_value ? st.max_v : DefaultValue(a.type));
          break;
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Table HashAggregateOn(const Table& t,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggExpr>& aggs) {
  return HashAggregate(t, ResolveCols(t, group_cols), aggs);
}

Table SortBy(const Table& t, const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    ELEPHANT_CHECK(k.col >= 0 && k.col < t.num_cols())
        << "sort key column " << k.col << " out of range";
  }
  Table out = t;
  std::stable_sort(out.mutable_rows().begin(), out.mutable_rows().end(),
                   [&keys](const Row& a, const Row& b) {
                     for (const SortKey& k : keys) {
                       int c = CompareValues(a[k.col], b[k.col]);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return out;
}

Table Limit(const Table& t, size_t n) {
  Table out(t.columns());
  for (size_t i = 0; i < std::min(n, t.num_rows()); ++i) {
    out.AddRow(t.rows()[i]);
  }
  return out;
}

Table Distinct(const Table& t) {
  std::vector<int> all_cols(t.num_cols());
  for (int i = 0; i < t.num_cols(); ++i) all_cols[i] = i;
  Table out(t.columns());
  std::unordered_map<RowKey, bool, RowKeyHash> seen;
  for (const Row& row : t.rows()) {
    RowKey key = ExtractKey(row, all_cols);
    if (seen.emplace(std::move(key), true).second) out.AddRow(row);
  }
  return out;
}

Expr Col(const Table& t, const std::string& name) {
  int idx = t.ColIndex(name);
  return [idx](const Row& row) { return row[idx]; };
}

Expr Lit(Value v) {
  return [v](const Row&) { return v; };
}

Expr Mul(Expr a, Expr b) {
  return [a = std::move(a), b = std::move(b)](const Row& row) {
    return Value{AsDouble(a(row)) * AsDouble(b(row))};
  };
}

Expr Add(Expr a, Expr b) {
  return [a = std::move(a), b = std::move(b)](const Row& row) {
    return Value{AsDouble(a(row)) + AsDouble(b(row))};
  };
}

Expr Sub(Expr a, Expr b) {
  return [a = std::move(a), b = std::move(b)](const Row& row) {
    return Value{AsDouble(a(row)) - AsDouble(b(row))};
  };
}

Expr Revenue(const Table& t, const std::string& price_col,
             const std::string& discount_col) {
  int p = t.ColIndex(price_col);
  int d = t.ColIndex(discount_col);
  return [p, d](const Row& row) {
    return Value{AsDouble(row[p]) * (1.0 - AsDouble(row[d]))};
  };
}

}  // namespace elephant::exec
