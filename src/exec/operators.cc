#include "exec/operators.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/task_pool.h"
#include "exec/kernels_internal.h"
#include "exec/spill.h"

namespace elephant::exec {

// Shared kernel machinery now lives in kernels_internal.h so the
// spilling operators (spill.cc) fold, hash, and compare exactly like
// the in-memory paths below.
using internal::AggInput;
using internal::ColBuildInsert;
using internal::ColBuildMap;
using internal::FoldRowColumnar;
using internal::JoinPair;
using internal::KeyGroup;
using internal::KeyHashAt;
using internal::KeyPart;
using internal::KeysEqualAt;
using internal::kPadRow;
using internal::MakeAggInputs;
using internal::MakeKeyParts;
using internal::VecAggState;

namespace {

std::atomic<int> g_exec_threads{0};       // 0 = ELEPHANT_THREADS default
std::atomic<size_t> g_exec_morsel{2048};  // rows per morsel
std::atomic<bool> g_force_row_path{false};

/// Number of hash partitions for parallel join builds and aggregates.
/// Fixed (never derived from the thread count) so partition membership
/// is deterministic; power of two for cheap masking.
constexpr size_t kHashPartitions = 32;

/// True when `num_rows` is large enough to amortize fan-out overhead at
/// the current thread setting.
bool UseParallel(size_t num_rows) {
  return ExecThreads() > 1 && num_rows >= 2 * ExecMorselSize();
}

size_t NumChunks(size_t n, size_t morsel) {
  return (n + morsel - 1) / morsel;
}

}  // namespace

void SetExecThreads(int n) {
  g_exec_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int ExecThreads() {
  int n = g_exec_threads.load(std::memory_order_relaxed);
  return n > 0 ? n : DefaultThreadCount();
}

void SetExecMorselSize(size_t rows) {
  ELEPHANT_CHECK(rows > 0) << "morsel size must be positive";
  g_exec_morsel.store(rows, std::memory_order_relaxed);
}

size_t ExecMorselSize() {
  return g_exec_morsel.load(std::memory_order_relaxed);
}

void SetExecForceRowPath(bool force) {
  g_force_row_path.store(force, std::memory_order_relaxed);
}

bool ExecForceRowPath() {
  return g_force_row_path.load(std::memory_order_relaxed);
}

namespace {

/// Composite key over selected columns, hashable and equality-comparable.
struct RowKey {
  std::vector<Value> parts;

  bool operator==(const RowKey& other) const {
    if (parts.size() != other.parts.size()) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (CompareValues(parts[i], other.parts[i]) != 0) return false;
    }
    return true;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& k) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (const Value& v : k.parts) {
      h ^= HashValue(v);
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

RowKey ExtractKey(const Row& row, const std::vector<int>& cols) {
  RowKey key;
  key.parts.reserve(cols.size());
  for (int c : cols) key.parts.push_back(row[c]);
  return key;
}

Value DefaultValue(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return Value{int64_t{0}};
    case ValueType::kDouble:
      return Value{0.0};
    case ValueType::kString:
      return Value{std::string()};
  }
  return Value{int64_t{0}};
}

std::vector<int> ResolveCols(const Table& t,
                             const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(t.ColIndex(n));
  return out;
}

// ---- Columnar kernel infrastructure -------------------------------------

/// True when `t` should take the columnar kernel: the force-row-path
/// knob is off and the table has a columnar form (i.e. it is not
/// heterogeneous). Operators with both paths branch on this; both
/// branches produce bit-identical tables.
bool ColumnarPath(const Table& t) {
  return !ExecForceRowPath() && t.EnsureColumnar();
}

/// Runs fn(lo, hi) over [0, n), fanned out in morsels when profitable.
/// Only safe for bodies whose writes are positional (disjoint ranges).
template <typename Fn>
void ForRows(size_t n, Fn&& fn) {
  if (UseParallel(n)) {
    TaskPool::Global(ExecThreads())
        .ParallelFor(0, n, ExecMorselSize(), fn, ExecThreads());
  } else {
    fn(0, n);
  }
}

/// Evaluates an index predicate into an ascending selection vector. The
/// parallel path fills per-morsel slots and concatenates them in morsel
/// order, which reproduces the serial scan order exactly.
std::vector<uint32_t> BuildSelection(size_t n, const IndexPredicate& pred) {
  if (UseParallel(n)) {
    const size_t morsel = ExecMorselSize();
    std::vector<std::vector<uint32_t>> slots(NumChunks(n, morsel));
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, morsel,
            [&](size_t lo, size_t hi) {
              std::vector<uint32_t>& slot = slots[lo / morsel];
              for (size_t i = lo; i < hi; ++i) {
                if (pred(i)) slot.push_back(static_cast<uint32_t>(i));
              }
            },
            ExecThreads());
    size_t total = 0;
    for (const auto& s : slots) total += s.size();
    std::vector<uint32_t> sel;
    sel.reserve(total);
    for (const auto& s : slots) sel.insert(sel.end(), s.begin(), s.end());
    return sel;
  }
  std::vector<uint32_t> sel;
  for (size_t i = 0; i < n; ++i) {
    if (pred(i)) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

/// Materializes the selected rows of `src` as a new table in one typed
/// compaction pass per column. The output shares `src`'s string pool:
/// dictionary codes are copied, never re-interned, so derivation chains
/// (filter -> sort -> limit) touch string payloads zero times.
Table GatherRows(const Table& src, const std::vector<uint32_t>& sel) {
  ELEPHANT_CHECK(src.EnsureColumnar()) << "GatherRows needs columnar input";
  Table out(src.columns(), src.pool_ptr());
  size_t n = sel.size();
  out.ResizeColumnar(n);
  const uint32_t* s = sel.data();
  for (int c = 0; c < src.num_cols(); ++c) {
    ColumnVector& dst = out.MutableCol(c);
    switch (src.columns()[c].type) {
      case ValueType::kInt: {
        const int64_t* in = src.IntData(c).data();
        int64_t* d = dst.ints().data();
        ForRows(n, [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) d[i] = in[s[i]];
        });
        break;
      }
      case ValueType::kDouble: {
        const double* in = src.DoubleData(c).data();
        double* d = dst.doubles().data();
        ForRows(n, [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) d[i] = in[s[i]];
        });
        break;
      }
      case ValueType::kString: {
        const uint32_t* in = src.StrCodes(c).data();
        uint32_t* d = dst.codes().data();
        ForRows(n, [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) d[i] = in[s[i]];
        });
        break;
      }
    }
  }
  return out;
}

/// Lazily translates dictionary codes from one pool into another
/// (identity when they are the same pool). Serial use only: Translate
/// may intern into the destination pool.
class CodeXlat {
 public:
  CodeXlat(const StringPool* src, StringPool* dst) : src_(src), dst_(dst) {}

  uint32_t Translate(uint32_t code) {
    if (src_ == dst_) return code;
    if (map_.empty()) map_.assign(src_->size(), StringPool::kNoCode);
    uint32_t& m = map_[code];
    if (m == StringPool::kNoCode) m = dst_->Intern(src_->Get(code));
    return m;
  }

 private:
  const StringPool* src_;
  StringPool* dst_;
  std::vector<uint32_t> map_;
};

bool HasStringColumn(const Table& t) {
  for (const Column& c : t.columns()) {
    if (c.type == ValueType::kString) return true;
  }
  return false;
}

/// Shared Filter body; `kMove` steals surviving rows from the input.
/// The parallel path writes each morsel's survivors into its own slot
/// and concatenates slots in morsel order, which reproduces the serial
/// row order exactly (morsel boundaries depend only on the row count).
template <bool kMove>
Table FilterImpl(std::conditional_t<kMove, Table, const Table>& t,
                 const Predicate& pred) {
  Table out(t.columns());
  size_t n = t.num_rows();
  if (UseParallel(n)) {
    const size_t morsel = ExecMorselSize();
    std::vector<std::vector<Row>> slots(NumChunks(n, morsel));
    auto& rows = [&]() -> auto& {
      if constexpr (kMove) {
        return t.mutable_rows();
      } else {
        return t.rows();
      }
    }();
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, morsel,
            [&](size_t lo, size_t hi) {
              std::vector<Row>& slot = slots[lo / morsel];
              for (size_t i = lo; i < hi; ++i) {
                if (!pred(rows[i])) continue;
                if constexpr (kMove) {
                  slot.push_back(std::move(rows[i]));
                } else {
                  slot.push_back(rows[i]);
                }
              }
            },
            ExecThreads());
    size_t total = 0;
    for (const auto& s : slots) total += s.size();
    out.Reserve(total);
    for (auto& s : slots) {
      for (Row& r : s) out.AddRow(std::move(r));
    }
  } else {
    if constexpr (kMove) {
      for (Row& row : t.mutable_rows()) {
        if (pred(row)) out.AddRow(std::move(row));
      }
    } else {
      for (const Row& row : t.rows()) {
        if (pred(row)) out.AddRow(row);
      }
    }
  }
  return out;
}

}  // namespace

Table Filter(const Table& t, const Predicate& pred) {
  if (ColumnarPath(t)) {
    // Row predicates still see Rows (the adapter cache), but the output
    // is compacted column-at-a-time and shares the input's string pool.
    const std::vector<Row>& rows = t.rows();
    return GatherRows(
        t, BuildSelection(t.num_rows(),
                          [&](size_t i) { return pred(rows[i]); }));
  }
  return FilterImpl<false>(t, pred);
}

Table Filter(Table&& t, const Predicate& pred) {
  if (ColumnarPath(t)) {
    return Filter(static_cast<const Table&>(t), pred);
  }
  return FilterImpl<true>(t, pred);
}

Table Filter(const Table& t, const IndexPredicate& pred) {
  ELEPHANT_CHECK(t.EnsureColumnar())
      << "index-predicate Filter needs a columnar table";
  return GatherRows(t, BuildSelection(t.num_rows(), pred));
}

Table Filter(Table&& t, const IndexPredicate& pred) {
  return Filter(static_cast<const Table&>(t), pred);
}

Table Project(const Table& t, const std::vector<NamedExpr>& exprs) {
  std::vector<Column> cols;
  cols.reserve(exprs.size());
  for (const auto& e : exprs) cols.push_back({e.name, e.type});
  Table out(std::move(cols));
  size_t n = t.num_rows();
  if (UseParallel(n)) {
    // Projection is 1:1, so each morsel writes its own output range
    // in place — no per-slot buffers or concatenation needed.
    out.mutable_rows().resize(n);
    auto& out_rows = out.mutable_rows();
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, ExecMorselSize(),
            [&](size_t lo, size_t hi) {
              for (size_t i = lo; i < hi; ++i) {
                Row projected;
                projected.reserve(exprs.size());
                for (const auto& e : exprs) {
                  projected.push_back(e.fn(t.rows()[i]));
                }
                out_rows[i] = std::move(projected);
              }
            },
            ExecThreads());
  } else {
    out.Reserve(n);
    for (const Row& row : t.rows()) {
      Row projected;
      projected.reserve(exprs.size());
      for (const auto& e : exprs) projected.push_back(e.fn(row));
      out.AddRow(std::move(projected));
    }
  }
  return out;
}

Table ProjectColumns(const Table& t, const std::vector<ColumnExpr>& exprs) {
  ELEPHANT_CHECK(t.EnsureColumnar()) << "ProjectColumns needs a columnar table";
  std::vector<Column> cols;
  cols.reserve(exprs.size());
  bool any_string = false;
  bool fresh_strings = false;  // computed string columns need a new pool
  for (const auto& e : exprs) {
    cols.push_back({e.name, e.type});
    if (e.type == ValueType::kString) {
      any_string = true;
      if (e.source < 0) fresh_strings = true;
    }
  }
  size_t n = t.num_rows();
  // Copied-only string columns keep the input pool (codes splice over);
  // any computed string column forces a fresh pool, filled serially in
  // row order so its codes are deterministic.
  std::shared_ptr<StringPool> pool;
  if (any_string && !fresh_strings) pool = t.pool_ptr();
  Table out(std::move(cols), std::move(pool));
  out.ResizeColumnar(n);
  for (size_t k = 0; k < exprs.size(); ++k) {
    const ColumnExpr& e = exprs[k];
    ColumnVector& dst = out.MutableCol(static_cast<int>(k));
    if (e.source >= 0) {
      ELEPHANT_CHECK(t.columns()[e.source].type == e.type)
          << "copied column '" << e.name << "' changes type";
      switch (e.type) {
        case ValueType::kInt:
          dst.ints() = t.IntData(e.source);
          break;
        case ValueType::kDouble:
          dst.doubles() = t.DoubleData(e.source);
          break;
        case ValueType::kString: {
          if (out.pool_ptr() == t.pool_ptr()) {
            dst.codes() = t.StrCodes(e.source);
          } else {
            const uint32_t* s = t.StrCodes(e.source).data();
            uint32_t* d = dst.codes().data();
            CodeXlat xlat(&t.pool(), out.mutable_pool());
            for (size_t i = 0; i < n; ++i) d[i] = xlat.Translate(s[i]);
          }
          break;
        }
      }
      continue;
    }
    switch (e.type) {
      case ValueType::kInt: {
        ELEPHANT_CHECK(e.int_fn != nullptr)
            << "int column '" << e.name << "' has no generator";
        int64_t* d = dst.ints().data();
        ForRows(n, [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) d[i] = e.int_fn(i);
        });
        break;
      }
      case ValueType::kDouble: {
        ELEPHANT_CHECK(e.double_fn != nullptr)
            << "double column '" << e.name << "' has no generator";
        double* d = dst.doubles().data();
        ForRows(n, [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) d[i] = e.double_fn(i);
        });
        break;
      }
      case ValueType::kString: {
        ELEPHANT_CHECK(e.str_fn != nullptr)
            << "string column '" << e.name << "' has no generator";
        uint32_t* d = dst.codes().data();
        StringPool* p = out.mutable_pool();
        for (size_t i = 0; i < n; ++i) d[i] = p->Intern(e.str_fn(i));
        break;
      }
    }
  }
  return out;
}

ColumnExpr CopyCol(const Table& t, const std::string& name) {
  return CopyColAs(t, name, name);
}

ColumnExpr CopyColAs(const Table& t, const std::string& name,
                     std::string out_name) {
  ColumnExpr e;
  int c = t.ColIndex(name);
  e.name = std::move(out_name);
  e.type = t.columns()[c].type;
  e.source = c;
  return e;
}

ColumnExpr IntExprCol(std::string name, std::function<int64_t(size_t)> fn) {
  ColumnExpr e;
  e.name = std::move(name);
  e.type = ValueType::kInt;
  e.int_fn = std::move(fn);
  return e;
}

ColumnExpr DoubleExprCol(std::string name, std::function<double(size_t)> fn) {
  ColumnExpr e;
  e.name = std::move(name);
  e.type = ValueType::kDouble;
  e.double_fn = std::move(fn);
  return e;
}

ColumnExpr StrExprCol(std::string name, std::function<std::string(size_t)> fn) {
  ColumnExpr e;
  e.name = std::move(name);
  e.type = ValueType::kString;
  e.str_fn = std::move(fn);
  return e;
}

namespace {

/// Join build table: key -> right-row indices in global row order. The
/// index vectors make the probe emission order fully deterministic
/// (unlike unordered_multimap, whose equal_range order is unspecified).
using BuildMap = std::unordered_map<RowKey, std::vector<uint32_t>, RowKeyHash>;

/// Builds per-partition maps. The serial path uses one partition; the
/// parallel path first bins row indices per (chunk, partition), then
/// each partition's map is built by one task walking chunks in order,
/// so every key's index vector is in global row order — identical to
/// the serial build.
std::vector<BuildMap> BuildJoinTable(const Table& right,
                                     const std::vector<int>& right_keys,
                                     size_t num_partitions) {
  size_t n = right.num_rows();
  std::vector<BuildMap> maps(num_partitions);
  if (num_partitions == 1) {
    maps[0].reserve(n);
    for (size_t i = 0; i < n; ++i) {
      maps[0][ExtractKey(right.rows()[i], right_keys)].push_back(
          static_cast<uint32_t>(i));
    }
    return maps;
  }
  const size_t morsel = ExecMorselSize();
  size_t nchunks = NumChunks(n, morsel);
  std::vector<std::vector<std::vector<uint32_t>>> binned(
      nchunks, std::vector<std::vector<uint32_t>>(num_partitions));
  TaskPool& pool = TaskPool::Global(ExecThreads());
  pool.ParallelFor(
      0, n, morsel,
      [&](size_t lo, size_t hi) {
        auto& bins = binned[lo / morsel];
        for (size_t i = lo; i < hi; ++i) {
          RowKey key = ExtractKey(right.rows()[i], right_keys);
          bins[RowKeyHash{}(key) & (num_partitions - 1)].push_back(
              static_cast<uint32_t>(i));
        }
      },
      ExecThreads());
  pool.ParallelFor(
      0, num_partitions, 1,
      [&](size_t lo, size_t hi) {
        for (size_t p = lo; p < hi; ++p) {
          for (size_t c = 0; c < nchunks; ++c) {
            for (uint32_t idx : binned[c][p]) {
              maps[p][ExtractKey(right.rows()[idx], right_keys)].push_back(
                  idx);
            }
          }
        }
      },
      ExecThreads());
  return maps;
}

std::vector<Column> ConcatSchemas(const Table& left, const Table& right) {
  std::vector<Column> cols = left.columns();
  for (const Column& rc : right.columns()) {
    Column c = rc;
    for (const Column& lc : left.columns()) {
      if (lc.name == c.name) {
        c.name += "_r";
        break;
      }
    }
    cols.push_back(std::move(c));
  }
  return cols;
}

// ---- Columnar hash join --------------------------------------------------

/// Columnar build: same (chunk, partition) binning and chunk-order
/// partition builds as the row path, so each key's row vector is in
/// global row order on every path.
std::vector<ColBuildMap> BuildJoinTableColumnar(
    const Table& right, const std::vector<KeyPart>& rparts,
    size_t num_partitions) {
  size_t n = right.num_rows();
  std::vector<ColBuildMap> maps(num_partitions);
  if (num_partitions == 1) {
    maps[0].reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ColBuildInsert(&maps[0], rparts, KeyHashAt(rparts, i),
                     static_cast<uint32_t>(i));
    }
    return maps;
  }
  const size_t morsel = ExecMorselSize();
  size_t nchunks = NumChunks(n, morsel);
  std::vector<std::vector<std::vector<uint32_t>>> binned(
      nchunks, std::vector<std::vector<uint32_t>>(num_partitions));
  TaskPool& pool = TaskPool::Global(ExecThreads());
  pool.ParallelFor(
      0, n, morsel,
      [&](size_t lo, size_t hi) {
        auto& bins = binned[lo / morsel];
        for (size_t i = lo; i < hi; ++i) {
          bins[KeyHashAt(rparts, i) & (num_partitions - 1)].push_back(
              static_cast<uint32_t>(i));
        }
      },
      ExecThreads());
  pool.ParallelFor(
      0, num_partitions, 1,
      [&](size_t lo, size_t hi) {
        for (size_t p = lo; p < hi; ++p) {
          for (size_t c = 0; c < nchunks; ++c) {
            for (uint32_t idx : binned[c][p]) {
              ColBuildInsert(&maps[p], rparts, KeyHashAt(rparts, idx), idx);
            }
          }
        }
      },
      ExecThreads());
  return maps;
}

const std::vector<uint32_t>* ColLookup(const std::vector<ColBuildMap>& maps,
                                       size_t num_partitions,
                                       const std::vector<KeyPart>& lparts,
                                       const std::vector<KeyPart>& rparts,
                                       size_t i) {
  uint64_t h = KeyHashAt(lparts, i);
  const ColBuildMap& m =
      maps[num_partitions == 1 ? 0 : (h & (num_partitions - 1))];
  auto it = m.find(h);
  if (it == m.end()) return nullptr;
  for (const KeyGroup& g : it->second) {
    if (KeysEqualAt(lparts, i, rparts, g.repr)) return &g.rows;
  }
  return nullptr;
}

Table HashJoinColumnar(const Table& left, const Table& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys, JoinType type) {
  std::vector<KeyPart> lparts = MakeKeyParts(left, left_keys);
  std::vector<KeyPart> rparts = MakeKeyParts(right, right_keys);
  size_t partitions = UseParallel(right.num_rows()) ? kHashPartitions : 1;
  std::vector<ColBuildMap> maps =
      BuildJoinTableColumnar(right, rparts, partitions);
  size_t n = left.num_rows();

  if (type == JoinType::kLeftSemi || type == JoinType::kLeftAnti) {
    bool want = type == JoinType::kLeftSemi;
    return GatherRows(
        left, BuildSelection(n, [&](size_t i) {
          return (ColLookup(maps, partitions, lparts, rparts, i) != nullptr) ==
                 want;
        }));
  }

  // Inner/outer: collect (left, right) row pairs per morsel slot and
  // concatenate in morsel order — the serial emission order.
  auto probe_range = [&](size_t lo, size_t hi, std::vector<JoinPair>* slot) {
    for (size_t i = lo; i < hi; ++i) {
      const std::vector<uint32_t>* matches =
          ColLookup(maps, partitions, lparts, rparts, i);
      if (matches != nullptr) {
        for (uint32_t r : *matches) {
          slot->emplace_back(static_cast<uint32_t>(i), r);
        }
      } else if (type == JoinType::kLeftOuter) {
        slot->emplace_back(static_cast<uint32_t>(i), kPadRow);
      }
    }
  };
  std::vector<JoinPair> pairs;
  if (UseParallel(n)) {
    const size_t morsel = ExecMorselSize();
    std::vector<std::vector<JoinPair>> slots(NumChunks(n, morsel));
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, morsel,
            [&](size_t lo, size_t hi) {
              probe_range(lo, hi, &slots[lo / morsel]);
            },
            ExecThreads());
    size_t total = 0;
    for (const auto& s : slots) total += s.size();
    pairs.reserve(total);
    for (const auto& s : slots) pairs.insert(pairs.end(), s.begin(), s.end());
  } else {
    probe_range(0, n, &pairs);
  }
  return internal::MaterializeJoinPairs(left, right, pairs, type);
}

}  // namespace

namespace internal {

Table MaterializeJoinPairs(const Table& left, const Table& right,
                           const std::vector<JoinPair>& pairs,
                           JoinType type) {
  // Output pool: share a side's pool when all string columns come from
  // it and no pad strings are needed; otherwise intern into a fresh
  // pool, serially in output order (deterministic codes).
  bool lstr = HasStringColumn(left);
  bool rstr = HasStringColumn(right);
  std::shared_ptr<StringPool> pool;
  if (lstr && !rstr) {
    pool = left.pool_ptr();
  } else if (rstr && !lstr && type == JoinType::kInner) {
    pool = right.pool_ptr();
  }
  Table out(ConcatSchemas(left, right), std::move(pool));
  size_t total = pairs.size();
  out.ResizeColumnar(total);
  const JoinPair* pr = pairs.data();
  int lcols = left.num_cols();
  for (int c = 0; c < out.num_cols(); ++c) {
    bool from_left = c < lcols;
    const Table& src = from_left ? left : right;
    int sc = from_left ? c : c - lcols;
    ColumnVector& dst = out.MutableCol(c);
    switch (out.columns()[c].type) {
      case ValueType::kInt: {
        const int64_t* in = src.IntData(sc).data();
        int64_t* d = dst.ints().data();
        ForRows(total, [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            uint32_t idx = from_left ? pr[i].first : pr[i].second;
            d[i] = idx == kPadRow ? 0 : in[idx];
          }
        });
        break;
      }
      case ValueType::kDouble: {
        const double* in = src.DoubleData(sc).data();
        double* d = dst.doubles().data();
        ForRows(total, [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            uint32_t idx = from_left ? pr[i].first : pr[i].second;
            d[i] = idx == kPadRow ? 0.0 : in[idx];
          }
        });
        break;
      }
      case ValueType::kString: {
        const uint32_t* in = src.StrCodes(sc).data();
        uint32_t* d = dst.codes().data();
        if (src.pool_ptr() == out.pool_ptr()) {
          // Shared pool: plain code gather (pads cannot reach here —
          // left rows never pad, and the right pool is only shared for
          // inner joins).
          ForRows(total, [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
              uint32_t idx = from_left ? pr[i].first : pr[i].second;
              d[i] = in[idx];
            }
          });
        } else {
          CodeXlat xlat(&src.pool(), out.mutable_pool());
          uint32_t pad_code = StringPool::kNoCode;
          for (size_t i = 0; i < total; ++i) {
            uint32_t idx = from_left ? pr[i].first : pr[i].second;
            if (idx == kPadRow) {
              if (pad_code == StringPool::kNoCode) {
                pad_code = out.mutable_pool()->Intern(std::string());
              }
              d[i] = pad_code;
            } else {
              d[i] = xlat.Translate(in[idx]);
            }
          }
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace internal

Table HashJoin(const Table& left, const Table& right,
               const std::vector<int>& left_keys,
               const std::vector<int>& right_keys, JoinType type) {
  ELEPHANT_CHECK(left_keys.size() == right_keys.size())
      << "join key arity mismatch: " << left_keys.size() << " vs "
      << right_keys.size();
  for (int k : left_keys) {
    ELEPHANT_CHECK(k >= 0 && k < left.num_cols())
        << "left join key column " << k << " out of range";
  }
  for (int k : right_keys) {
    ELEPHANT_CHECK(k >= 0 && k < right.num_cols())
        << "right join key column " << k << " out of range";
  }
  bool columnar = !ExecForceRowPath() && left.EnsureColumnar() &&
                  right.EnsureColumnar();
  if (columnar) {
    // String keys may only meet string keys (numerics widen to double
    // on both paths); a mixed pair would be a plan bug either way.
    for (size_t k = 0; k < left_keys.size(); ++k) {
      bool ls = left.columns()[left_keys[k]].type == ValueType::kString;
      bool rs = right.columns()[right_keys[k]].type == ValueType::kString;
      if (ls != rs) {
        columnar = false;
        break;
      }
    }
  }
  if (columnar) {
    if (SpillJoinPlanned(right)) {
      Result<Table> spilled =
          TryGraceHashJoin(left, right, left_keys, right_keys, type);
      if (spilled.ok()) return std::move(spilled).value();
      // Spill I/O failed: the in-memory path is still correct (just
      // unbounded); TryGraceHashJoin counted the fallback.
    }
    return HashJoinColumnar(left, right, left_keys, right_keys, type);
  }

  // Output schema.
  std::vector<Column> cols = left.columns();
  if (type == JoinType::kInner || type == JoinType::kLeftOuter) {
    for (const Column& rc : right.columns()) {
      Column c = rc;
      for (const Column& lc : left.columns()) {
        if (lc.name == c.name) {
          c.name += "_r";
          break;
        }
      }
      cols.push_back(std::move(c));
    }
  }
  Table out(std::move(cols));

  // Build side: right.
  size_t partitions = UseParallel(right.num_rows()) ? kHashPartitions : 1;
  std::vector<BuildMap> maps = BuildJoinTable(right, right_keys, partitions);
  auto lookup = [&](const RowKey& key) -> const std::vector<uint32_t>* {
    const BuildMap& m =
        maps[partitions == 1 ? 0 : (RowKeyHash{}(key) & (partitions - 1))];
    auto it = m.find(key);
    return it == m.end() ? nullptr : &it->second;
  };

  // Probe side: left. One morsel's matches go to one slot; slots
  // concatenated in morsel order reproduce the serial emission order.
  auto probe_range = [&](size_t lo, size_t hi, std::vector<Row>* slot) {
    for (size_t i = lo; i < hi; ++i) {
      const Row& lrow = left.rows()[i];
      const std::vector<uint32_t>* matches =
          lookup(ExtractKey(lrow, left_keys));
      switch (type) {
        case JoinType::kLeftSemi:
          if (matches != nullptr) slot->push_back(lrow);
          break;
        case JoinType::kLeftAnti:
          if (matches == nullptr) slot->push_back(lrow);
          break;
        case JoinType::kInner:
        case JoinType::kLeftOuter: {
          if (matches != nullptr) {
            for (uint32_t r : *matches) {
              Row combined = lrow;
              const Row& rrow = right.rows()[r];
              combined.insert(combined.end(), rrow.begin(), rrow.end());
              slot->push_back(std::move(combined));
            }
          } else if (type == JoinType::kLeftOuter) {
            Row combined = lrow;
            for (const Column& rc : right.columns()) {
              combined.push_back(DefaultValue(rc.type));
            }
            slot->push_back(std::move(combined));
          }
          break;
        }
      }
    }
  };

  size_t n = left.num_rows();
  if (UseParallel(n)) {
    const size_t morsel = ExecMorselSize();
    std::vector<std::vector<Row>> slots(NumChunks(n, morsel));
    TaskPool::Global(ExecThreads())
        .ParallelFor(
            0, n, morsel,
            [&](size_t lo, size_t hi) {
              probe_range(lo, hi, &slots[lo / morsel]);
            },
            ExecThreads());
    size_t total = 0;
    for (const auto& s : slots) total += s.size();
    out.Reserve(total);
    for (auto& s : slots) {
      for (Row& r : s) out.AddRow(std::move(r));
    }
  } else {
    std::vector<Row> slot;
    probe_range(0, n, &slot);
    out.Reserve(slot.size());
    for (Row& r : slot) out.AddRow(std::move(r));
  }
  return out;
}

Table HashJoinOn(const Table& left, const Table& right,
                 const std::vector<std::string>& left_keys,
                 const std::vector<std::string>& right_keys, JoinType type) {
  return HashJoin(left, right, ResolveCols(left, left_keys),
                  ResolveCols(right, right_keys), type);
}

Table SortMergeJoin(const Table& left, const Table& right, int left_key,
                    int right_key) {
  Table out(ConcatSchemas(left, right));
  // Sort row indexes by key.
  std::vector<size_t> li(left.num_rows()), ri(right.num_rows());
  for (size_t i = 0; i < li.size(); ++i) li[i] = i;
  for (size_t i = 0; i < ri.size(); ++i) ri[i] = i;
  std::sort(li.begin(), li.end(), [&](size_t a, size_t b) {
    return CompareValues(left.rows()[a][left_key],
                         left.rows()[b][left_key]) < 0;
  });
  std::sort(ri.begin(), ri.end(), [&](size_t a, size_t b) {
    return CompareValues(right.rows()[a][right_key],
                         right.rows()[b][right_key]) < 0;
  });
  size_t l = 0, r = 0;
  while (l < li.size() && r < ri.size()) {
    const Value& lv = left.rows()[li[l]][left_key];
    const Value& rv = right.rows()[ri[r]][right_key];
    int c = CompareValues(lv, rv);
    if (c < 0) {
      l++;
    } else if (c > 0) {
      r++;
    } else {
      // Emit the cross product of the equal runs.
      size_t r_run_end = r;
      while (r_run_end < ri.size() &&
             CompareValues(right.rows()[ri[r_run_end]][right_key], lv) ==
                 0) {
        r_run_end++;
      }
      while (l < li.size() &&
             CompareValues(left.rows()[li[l]][left_key], rv) == 0) {
        for (size_t rr = r; rr < r_run_end; ++rr) {
          Row combined = left.rows()[li[l]];
          const Row& rrow = right.rows()[ri[rr]];
          combined.insert(combined.end(), rrow.begin(), rrow.end());
          out.AddRow(std::move(combined));
        }
        l++;
      }
      r = r_run_end;
    }
  }
  return out;
}

Table NestedLoopJoin(const Table& left, const Table& right,
                     const std::function<bool(const Row&)>& pred) {
  Table out(ConcatSchemas(left, right));
  for (const Row& lrow : left.rows()) {
    for (const Row& rrow : right.rows()) {
      Row combined = lrow;
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      if (pred(combined)) out.AddRow(std::move(combined));
    }
  }
  return out;
}

namespace {

struct AggState {
  double sum = 0;
  int64_t count = 0;
  bool has_value = false;
  Value min_v;
  Value max_v;
  // Serialized values for CountDistinct. Only the cardinality is ever
  // read (never iteration order), so a hash set's O(1) insert beats the
  // tree set's O(log n) with no observable difference in results.
  std::unordered_set<std::string> distinct;
};

std::string SerializeValue(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return "i" + std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return "d" + std::to_string(*d);
  return "s" + std::get<std::string>(v);
}

/// Folds one input row into a group's aggregate states. Both the serial
/// and the parallel aggregate call this in global row order per group,
/// so floating-point accumulation rounds identically on every path.
void UpdateAggStates(std::vector<AggState>* states,
                     const std::vector<AggExpr>& aggs, const Row& row) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    AggState& st = (*states)[i];
    const AggExpr& a = aggs[i];
    if (a.kind == AggKind::kCount) {
      st.count++;
      continue;
    }
    Value v = a.arg(row);
    switch (a.kind) {
      case AggKind::kSum:
      case AggKind::kAvg:
        st.sum += AsDouble(v);
        st.count++;
        break;
      case AggKind::kMin:
        if (!st.has_value || CompareValues(v, st.min_v) < 0) st.min_v = v;
        st.has_value = true;
        break;
      case AggKind::kMax:
        if (!st.has_value || CompareValues(v, st.max_v) > 0) st.max_v = v;
        st.has_value = true;
        break;
      case AggKind::kCountDistinct:
        st.distinct.insert(SerializeValue(v));
        break;
      case AggKind::kCount:
        break;
    }
  }
}

Row FinalizeAggRow(const RowKey& key, const std::vector<AggState>& states,
                   const std::vector<AggExpr>& aggs, size_t num_group_cols) {
  Row row;
  row.reserve(num_group_cols + aggs.size());
  for (const Value& v : key.parts) row.push_back(v);
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggState& st = states[i];
    const AggExpr& a = aggs[i];
    switch (a.kind) {
      case AggKind::kSum:
        row.push_back(a.type == ValueType::kInt
                          ? Value{static_cast<int64_t>(st.sum)}
                          : Value{st.sum});
        break;
      case AggKind::kAvg:
        row.push_back(Value{st.count ? st.sum / st.count : 0.0});
        break;
      case AggKind::kCount:
        row.push_back(Value{st.count});
        break;
      case AggKind::kCountDistinct:
        row.push_back(Value{static_cast<int64_t>(st.distinct.size())});
        break;
      case AggKind::kMin:
        row.push_back(st.has_value ? st.min_v : DefaultValue(a.type));
        break;
      case AggKind::kMax:
        row.push_back(st.has_value ? st.max_v : DefaultValue(a.type));
        break;
    }
  }
  return row;
}

/// Per-partition aggregation state for the parallel path.
struct AggPartition {
  std::unordered_map<RowKey, std::vector<AggState>, RowKeyHash> groups;
  /// (first global row index, key) per group, for serial-order output.
  std::vector<std::pair<size_t, RowKey>> order;
};

// ---- Columnar hash aggregate --------------------------------------------

/// True when the columnar fold reproduces the row path bit-exactly for
/// this aggregate — including the variant alternative the row path
/// would emit (e.g. kCount always emits int64, so the declared type
/// must be kInt). Anything else falls back to the row path.
bool AggVectorizable(const Table& t, const AggExpr& a) {
  bool src_ok = a.source >= 0 && a.source < t.num_cols();
  switch (a.kind) {
    case AggKind::kCount:
      return a.type == ValueType::kInt;
    case AggKind::kSum:
      return a.type != ValueType::kString &&
             (a.vec != nullptr ||
              (src_ok && t.columns()[a.source].type != ValueType::kString));
    case AggKind::kAvg:
      return a.type == ValueType::kDouble &&
             (a.vec != nullptr ||
              (src_ok && t.columns()[a.source].type != ValueType::kString));
    case AggKind::kMin:
    case AggKind::kMax:
      return src_ok && a.type == t.columns()[a.source].type;
    case AggKind::kCountDistinct:
      return src_ok && a.type == ValueType::kInt;
  }
  return false;
}

/// When `sel` is non-null it must be an ascending list of row indices
/// into `t`; the aggregate then runs over exactly those rows, and the
/// result is bit-identical to HashAggregateColumnar over the gathered
/// table Filter would have built: position k here maps to global row
/// sel[k], so fold order, morsel boundaries, partition assignment, and
/// first-seen group order all coincide with the materialized run.
Table HashAggregateColumnar(const Table& t, const std::vector<int>& group_cols,
                            const std::vector<AggExpr>& aggs,
                            std::vector<Column> cols,
                            const std::vector<uint32_t>* sel = nullptr) {
  size_t n = sel != nullptr ? sel->size() : t.num_rows();
  const uint32_t* sm = sel != nullptr ? sel->data() : nullptr;
  std::vector<KeyPart> gparts = MakeKeyParts(t, group_cols);
  std::vector<AggInput> ins = MakeAggInputs(t, aggs);

  // Groups in emission order (serial first-seen == ascending first row).
  std::vector<uint32_t> first_rows;
  std::vector<std::vector<VecAggState>> states;

  if (UseParallel(n) && !group_cols.empty()) {
    // Same partitioned shape as the row path: every group lives in
    // exactly one partition, each partition folds its rows in global
    // row order (chunks in order, ascending within a chunk), and groups
    // are emitted sorted by first global row index.
    const size_t morsel = ExecMorselSize();
    size_t nchunks = NumChunks(n, morsel);
    std::vector<std::vector<std::vector<uint32_t>>> binned(
        nchunks, std::vector<std::vector<uint32_t>>(kHashPartitions));
    TaskPool& pool = TaskPool::Global(ExecThreads());
    pool.ParallelFor(
        0, n, morsel,
        [&](size_t lo, size_t hi) {
          auto& bins = binned[lo / morsel];
          for (size_t k = lo; k < hi; ++k) {
            // Positions are morsel-chunked; bins hold GLOBAL indices
            // (ascending per bin, since sel is ascending).
            uint32_t i = sm != nullptr ? sm[k] : static_cast<uint32_t>(k);
            bins[KeyHashAt(gparts, i) & (kHashPartitions - 1)].push_back(i);
          }
        },
        ExecThreads());
    struct ColAggPartition {
      std::unordered_map<uint64_t, std::vector<uint32_t>> index;
      std::vector<uint32_t> first;
      std::vector<std::vector<VecAggState>> states;
    };
    std::vector<ColAggPartition> parts(kHashPartitions);
    pool.ParallelFor(
        0, kHashPartitions, 1,
        [&](size_t lo, size_t hi) {
          for (size_t p = lo; p < hi; ++p) {
            ColAggPartition& part = parts[p];
            for (size_t c = 0; c < nchunks; ++c) {
              for (uint32_t idx : binned[c][p]) {
                uint64_t h = KeyHashAt(gparts, idx);
                std::vector<uint32_t>& cands = part.index[h];
                uint32_t gid = StringPool::kNoCode;
                for (uint32_t g : cands) {
                  if (KeysEqualAt(gparts, part.first[g], gparts, idx)) {
                    gid = g;
                    break;
                  }
                }
                if (gid == StringPool::kNoCode) {
                  gid = static_cast<uint32_t>(part.first.size());
                  cands.push_back(gid);
                  part.first.push_back(idx);
                  part.states.emplace_back(aggs.size());
                }
                FoldRowColumnar(&part.states[gid], ins, idx);
              }
            }
          }
        },
        ExecThreads());
    std::vector<std::pair<uint32_t, std::pair<uint32_t, uint32_t>>> all;
    for (uint32_t p = 0; p < kHashPartitions; ++p) {
      for (uint32_t g = 0; g < parts[p].first.size(); ++g) {
        all.emplace_back(parts[p].first[g], std::make_pair(p, g));
      }
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    first_rows.reserve(all.size());
    states.reserve(all.size());
    for (const auto& [fr, pg] : all) {
      first_rows.push_back(fr);
      states.push_back(std::move(parts[pg.first].states[pg.second]));
    }
  } else {
    // Serial fold in row order (also the global-aggregate path, which
    // is always serial so its double rounding matches the oracle).
    std::unordered_map<uint64_t, std::vector<uint32_t>> index;
    for (size_t k = 0; k < n; ++k) {
      uint32_t i = sm != nullptr ? sm[k] : static_cast<uint32_t>(k);
      uint64_t h = KeyHashAt(gparts, i);
      std::vector<uint32_t>& cands = index[h];
      uint32_t gid = StringPool::kNoCode;
      for (uint32_t g : cands) {
        if (KeysEqualAt(gparts, first_rows[g], gparts, i)) {
          gid = g;
          break;
        }
      }
      if (gid == StringPool::kNoCode) {
        gid = static_cast<uint32_t>(first_rows.size());
        cands.push_back(gid);
        first_rows.push_back(i);
        states.emplace_back(aggs.size());
      }
      FoldRowColumnar(&states[gid], ins, i);
    }
  }

  // Global aggregate over empty input still yields one row of zeros
  // (fresh states finalize to 0 / 0.0; min/max never reach this path
  // empty — see the n == 0 guard in HashAggregate).
  if (group_cols.empty() && states.empty()) {
    first_rows.push_back(0);
    states.emplace_back(aggs.size());
  }

  return internal::FinalizeGroups(t, group_cols, aggs, std::move(cols),
                                  first_rows, states);
}

}  // namespace

namespace internal {

std::vector<AggInput> MakeAggInputs(const Table& t,
                                    const std::vector<AggExpr>& aggs) {
  std::vector<AggInput> ins;
  ins.reserve(aggs.size());
  for (const AggExpr& a : aggs) {
    AggInput in;
    in.kind = a.kind;
    if (a.vec != nullptr && a.kind != AggKind::kCount) {
      in.vec = &a.vec;
    } else if (a.source >= 0 && a.kind != AggKind::kCount) {
      switch (t.columns()[a.source].type) {
        case ValueType::kInt:
          in.ints = t.IntData(a.source).data();
          break;
        case ValueType::kDouble:
          in.dbls = t.DoubleData(a.source).data();
          break;
        case ValueType::kString:
          in.codes = t.StrCodes(a.source).data();
          in.pool = &t.pool();
          break;
      }
    }
    ins.push_back(std::move(in));
  }
  return ins;
}

/// Folds row `i` into `states`, arithmetic identical to UpdateAggStates:
/// sums accumulate the same doubles in the same order, min/max compare
/// through CompareValues semantics (numerics as widened doubles, ties
/// keep the incumbent), distinct sets collapse exactly alike.
void FoldRowColumnar(std::vector<VecAggState>* states,
                     const std::vector<AggInput>& ins, size_t i) {
  for (size_t k = 0; k < ins.size(); ++k) {
    VecAggState& st = (*states)[k];
    const AggInput& in = ins[k];
    switch (in.kind) {
      case AggKind::kCount:
        st.count++;
        break;
      case AggKind::kSum:
      case AggKind::kAvg: {
        double v = in.vec != nullptr
                       ? (*in.vec)(i)
                       : (in.ints != nullptr ? static_cast<double>(in.ints[i])
                                             : in.dbls[i]);
        st.sum += v;
        st.count++;
        break;
      }
      case AggKind::kMin:
        if (in.codes != nullptr) {
          uint32_t c = in.codes[i];
          if (!st.has_value || (c != st.best_code &&
                                in.pool->Get(c) < in.pool->Get(st.best_code))) {
            st.best_code = c;
          }
        } else if (in.ints != nullptr) {
          int64_t v = in.ints[i];
          if (!st.has_value ||
              static_cast<double>(v) < static_cast<double>(st.best_i)) {
            st.best_i = v;
          }
        } else {
          double v = in.dbls[i];
          if (!st.has_value || v < st.best_d) st.best_d = v;
        }
        st.has_value = true;
        break;
      case AggKind::kMax:
        if (in.codes != nullptr) {
          uint32_t c = in.codes[i];
          if (!st.has_value || (c != st.best_code &&
                                in.pool->Get(st.best_code) < in.pool->Get(c))) {
            st.best_code = c;
          }
        } else if (in.ints != nullptr) {
          int64_t v = in.ints[i];
          if (!st.has_value ||
              static_cast<double>(st.best_i) < static_cast<double>(v)) {
            st.best_i = v;
          }
        } else {
          double v = in.dbls[i];
          if (!st.has_value || st.best_d < v) st.best_d = v;
        }
        st.has_value = true;
        break;
      case AggKind::kCountDistinct:
        if (in.codes != nullptr) {
          st.d_c.insert(in.codes[i]);
        } else if (in.ints != nullptr) {
          st.d_i.insert(in.ints[i]);
        } else {
          st.d_s.insert(std::to_string(in.dbls[i]));
        }
        break;
    }
  }
}


Table FinalizeGroups(const Table& t, const std::vector<int>& group_cols,
                     const std::vector<AggExpr>& aggs,
                     std::vector<Column> cols,
                     const std::vector<uint32_t>& first_rows,
                     const std::vector<std::vector<VecAggState>>& states) {
  size_t ngroups = first_rows.size();
  bool out_strings = false;
  for (const Column& c : cols) {
    if (c.type == ValueType::kString) out_strings = true;
  }
  // Every output string (group values, string min/max) already lives in
  // t's pool, so the output shares it.
  Table out(std::move(cols), out_strings ? t.pool_ptr() : nullptr);
  out.ResizeColumnar(ngroups);
  for (size_t j = 0; j < group_cols.size(); ++j) {
    int g = group_cols[j];
    ColumnVector& dst = out.MutableCol(static_cast<int>(j));
    switch (t.columns()[g].type) {
      case ValueType::kInt: {
        const int64_t* in = t.IntData(g).data();
        int64_t* d = dst.ints().data();
        for (size_t i = 0; i < ngroups; ++i) d[i] = in[first_rows[i]];
        break;
      }
      case ValueType::kDouble: {
        const double* in = t.DoubleData(g).data();
        double* d = dst.doubles().data();
        for (size_t i = 0; i < ngroups; ++i) d[i] = in[first_rows[i]];
        break;
      }
      case ValueType::kString: {
        const uint32_t* in = t.StrCodes(g).data();
        uint32_t* d = dst.codes().data();
        for (size_t i = 0; i < ngroups; ++i) d[i] = in[first_rows[i]];
        break;
      }
    }
  }
  for (size_t k = 0; k < aggs.size(); ++k) {
    const AggExpr& a = aggs[k];
    ColumnVector& dst = out.MutableCol(static_cast<int>(group_cols.size() + k));
    for (size_t i = 0; i < ngroups; ++i) {
      const VecAggState& st = states[i][k];
      switch (a.kind) {
        case AggKind::kSum:
          if (a.type == ValueType::kInt) {
            dst.ints()[i] = static_cast<int64_t>(st.sum);
          } else {
            dst.doubles()[i] = st.sum;
          }
          break;
        case AggKind::kAvg:
          dst.doubles()[i] = st.count ? st.sum / st.count : 0.0;
          break;
        case AggKind::kCount:
          dst.ints()[i] = st.count;
          break;
        case AggKind::kCountDistinct:
          dst.ints()[i] = static_cast<int64_t>(st.d_i.size() + st.d_s.size() +
                                               st.d_c.size());
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          // Grouped min/max always saw at least one row (has_value); the
          // empty global aggregate takes the row path instead.
          switch (a.type) {
            case ValueType::kInt:
              dst.ints()[i] = st.best_i;
              break;
            case ValueType::kDouble:
              dst.doubles()[i] = st.best_d;
              break;
            case ValueType::kString:
              dst.codes()[i] = st.best_code;
              break;
          }
          break;
      }
    }
  }
  return out;
}

}  // namespace internal


Table HashAggregate(const Table& t, const std::vector<int>& group_cols,
                    const std::vector<AggExpr>& aggs) {
  std::vector<Column> cols;
  for (int g : group_cols) cols.push_back(t.columns()[g]);
  for (const auto& a : aggs) cols.push_back({a.name, a.type});

  size_t n = t.num_rows();
  bool columnar = !ExecForceRowPath() && t.EnsureColumnar();
  if (columnar) {
    for (const AggExpr& a : aggs) {
      if (!AggVectorizable(t, a)) {
        columnar = false;
        break;
      }
      // An empty global min/max finalizes to DefaultValue; only the row
      // path models that (and ColAgg always carries a row expression).
      if (n == 0 && (a.kind == AggKind::kMin || a.kind == AggKind::kMax)) {
        columnar = false;
        break;
      }
    }
  }
  if (columnar) {
    if (!group_cols.empty() && SpillAggPlanned(t, n)) {
      Result<Table> spilled =
          TrySpillingHashAggregate(t, group_cols, aggs, nullptr);
      if (spilled.ok()) return std::move(spilled).value();
      // Spill I/O failed: fall through to the unbounded in-memory path.
    }
    return HashAggregateColumnar(t, group_cols, aggs, std::move(cols));
  }
  for (const AggExpr& a : aggs) {
    ELEPHANT_CHECK(a.kind == AggKind::kCount || a.arg != nullptr)
        << "aggregate '" << a.name
        << "' has no row expression (VecAgg is columnar-only)";
  }
  Table out(std::move(cols));

  if (UseParallel(n) && !group_cols.empty()) {
    // Partition rows by key hash: every group lives in exactly one
    // partition, and each partition folds its rows in global row order
    // (chunks walked in order, indices ascending within a chunk), so
    // each group's states — including double rounding — are identical
    // to the serial fold. Groups are then emitted sorted by first
    // global row index, reproducing the serial first-seen order.
    const size_t morsel = ExecMorselSize();
    size_t nchunks = NumChunks(n, morsel);
    std::vector<std::vector<std::vector<uint32_t>>> binned(
        nchunks, std::vector<std::vector<uint32_t>>(kHashPartitions));
    TaskPool& pool = TaskPool::Global(ExecThreads());
    pool.ParallelFor(
        0, n, morsel,
        [&](size_t lo, size_t hi) {
          auto& bins = binned[lo / morsel];
          for (size_t i = lo; i < hi; ++i) {
            RowKey key = ExtractKey(t.rows()[i], group_cols);
            bins[RowKeyHash{}(key) & (kHashPartitions - 1)].push_back(
                static_cast<uint32_t>(i));
          }
        },
        ExecThreads());
    std::vector<AggPartition> parts(kHashPartitions);
    pool.ParallelFor(
        0, kHashPartitions, 1,
        [&](size_t lo, size_t hi) {
          for (size_t p = lo; p < hi; ++p) {
            AggPartition& part = parts[p];
            for (size_t c = 0; c < nchunks; ++c) {
              for (uint32_t idx : binned[c][p]) {
                const Row& row = t.rows()[idx];
                RowKey key = ExtractKey(row, group_cols);
                auto it = part.groups.find(key);
                if (it == part.groups.end()) {
                  it = part.groups
                           .emplace(key, std::vector<AggState>(aggs.size()))
                           .first;
                  part.order.emplace_back(idx, key);
                }
                UpdateAggStates(&it->second, aggs, row);
              }
            }
          }
        },
        ExecThreads());
    // Flatten (first_row, key) pairs across partitions and emit in
    // ascending first-row order == serial first-seen order.
    std::vector<std::pair<size_t, const RowKey*>> all_groups;
    for (const AggPartition& part : parts) {
      for (const auto& [first_row, key] : part.order) {
        all_groups.emplace_back(first_row, &key);
      }
    }
    std::sort(all_groups.begin(), all_groups.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.Reserve(all_groups.size());
    for (const auto& [first_row, key] : all_groups) {
      const AggPartition& part =
          parts[RowKeyHash{}(*key) & (kHashPartitions - 1)];
      out.AddRow(FinalizeAggRow(*key, part.groups.at(*key), aggs,
                                group_cols.size()));
    }
    return out;
  }

  std::unordered_map<RowKey, std::vector<AggState>, RowKeyHash> groups;
  std::vector<RowKey> order;  // first-seen order for determinism
  for (const Row& row : t.rows()) {
    RowKey key = ExtractKey(row, group_cols);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<AggState>(aggs.size())).first;
      order.push_back(key);
    }
    UpdateAggStates(&it->second, aggs, row);
  }

  // Global aggregate over empty input still yields one row of zeros.
  if (group_cols.empty() && groups.empty()) {
    RowKey empty;
    groups.emplace(empty, std::vector<AggState>(aggs.size()));
    order.push_back(empty);
  }

  out.Reserve(order.size());
  for (const RowKey& key : order) {
    out.AddRow(
        FinalizeAggRow(key, groups.at(key), aggs, group_cols.size()));
  }
  return out;
}

std::vector<uint32_t> EvalSelection(size_t n, const IndexPredicate& pred) {
  return BuildSelection(n, pred);
}

Table GatherSelection(const Table& t, const std::vector<uint32_t>& sel) {
  return GatherRows(t, sel);
}

bool AggsVectorizable(const Table& t, const std::vector<AggExpr>& aggs) {
  if (ExecForceRowPath() || !t.EnsureColumnar()) return false;
  for (const AggExpr& a : aggs) {
    if (!AggVectorizable(t, a)) return false;
  }
  return true;
}

Table HashAggregateSelected(const Table& t, const std::vector<uint32_t>& sel,
                            const std::vector<int>& group_cols,
                            const std::vector<AggExpr>& aggs) {
  ELEPHANT_CHECK(AggsVectorizable(t, aggs))
      << "HashAggregateSelected requires vectorizable aggregates "
         "(callers gate on AggsVectorizable and fall back to "
         "Filter + HashAggregate)";
  if (sel.empty()) {
    for (const AggExpr& a : aggs) {
      // Same guard as HashAggregate's n == 0 case: an empty global
      // min/max finalizes to DefaultValue, which only the row path
      // models. Callers must not route that shape here.
      ELEPHANT_CHECK(a.kind != AggKind::kMin && a.kind != AggKind::kMax)
          << "empty-selection min/max must take the materialized path";
    }
  }
  if (!group_cols.empty() && SpillAggPlanned(t, sel.size())) {
    Result<Table> spilled = TrySpillingHashAggregate(t, group_cols, aggs, &sel);
    if (spilled.ok()) return std::move(spilled).value();
    // Spill I/O failed: fall through to the unbounded in-memory path.
  }
  std::vector<Column> cols;
  for (int g : group_cols) cols.push_back(t.columns()[g]);
  for (const auto& a : aggs) cols.push_back({a.name, a.type});
  return HashAggregateColumnar(t, group_cols, aggs, std::move(cols), &sel);
}

Table HashAggregateOn(const Table& t,
                      const std::vector<std::string>& group_cols,
                      const std::vector<AggExpr>& aggs) {
  return HashAggregate(t, ResolveCols(t, group_cols), aggs);
}

AggExpr ColAgg(AggKind kind, const Table& t, const std::string& col,
               std::string name, ValueType type) {
  AggExpr a;
  a.kind = kind;
  // One name lookup serves both paths: the row expression captures the
  // resolved index instead of re-hashing the name via Col().
  int src = t.ColIndex(col);
  a.arg = [src](const Row& row) { return row[src]; };
  a.name = std::move(name);
  a.type = type;
  a.source = src;
  return a;
}

AggExpr VecAgg(AggKind kind, std::string name, ValueType type,
               std::function<double(size_t)> vec) {
  ELEPHANT_CHECK(kind == AggKind::kSum || kind == AggKind::kAvg)
      << "VecAgg supports kSum/kAvg only";
  AggExpr a;
  a.kind = kind;
  a.name = std::move(name);
  a.type = type;
  a.vec = std::move(vec);
  return a;
}

AggExpr CountAgg(std::string name) {
  AggExpr a;
  a.kind = AggKind::kCount;
  a.name = std::move(name);
  a.type = ValueType::kInt;
  return a;
}

namespace {

/// Sorts `rows` stably in place. The parallel path stable-sorts fixed
/// morsel chunks, then merges adjacent chunk pairs per round with
/// std::merge (stable: ties taken from the earlier chunk), which yields
/// exactly the serial std::stable_sort result.
void StableSortRows(std::vector<Row>* rows,
                    const std::function<bool(const Row&, const Row&)>& less) {
  size_t n = rows->size();
  if (!UseParallel(n)) {
    std::stable_sort(rows->begin(), rows->end(), less);
    return;
  }
  const size_t morsel = ExecMorselSize();
  size_t nchunks = NumChunks(n, morsel);
  TaskPool& pool = TaskPool::Global(ExecThreads());
  pool.ParallelFor(
      0, n, morsel,
      [&](size_t lo, size_t hi) {
        std::stable_sort(rows->begin() + static_cast<ptrdiff_t>(lo),
                         rows->begin() + static_cast<ptrdiff_t>(hi), less);
      },
      ExecThreads());
  if (nchunks == 1) return;
  std::vector<Row> scratch(n);
  std::vector<Row>* src = rows;
  std::vector<Row>* dst = &scratch;
  for (size_t width = morsel; width < n; width *= 2) {
    size_t npairs = NumChunks(n, 2 * width);
    pool.ParallelFor(
        0, npairs, 1,
        [&](size_t plo, size_t phi) {
          for (size_t p = plo; p < phi; ++p) {
            size_t lo = p * 2 * width;
            size_t mid = std::min(lo + width, n);
            size_t hi = std::min(lo + 2 * width, n);
            auto s = src->begin() + static_cast<ptrdiff_t>(lo);
            auto m = src->begin() + static_cast<ptrdiff_t>(mid);
            auto e = src->begin() + static_cast<ptrdiff_t>(hi);
            auto d = dst->begin() + static_cast<ptrdiff_t>(lo);
            if (mid >= hi) {
              std::move(s, e, d);
            } else {
              std::merge(std::make_move_iterator(s),
                         std::make_move_iterator(m),
                         std::make_move_iterator(m),
                         std::make_move_iterator(e), d, less);
            }
          }
        },
        ExecThreads());
    std::swap(src, dst);
  }
  if (src != rows) *rows = std::move(*src);
}

std::function<bool(const Row&, const Row&)> MakeLess(
    const std::vector<SortKey>& keys) {
  return [&keys](const Row& a, const Row& b) {
    for (const SortKey& k : keys) {
      int c = CompareValues(a[k.col], b[k.col]);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  };
}

void CheckSortKeys(const Table& t, const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    ELEPHANT_CHECK(k.col >= 0 && k.col < t.num_cols())
        << "sort key column " << k.col << " out of range";
  }
}

/// Columnar sort: stable-sorts a permutation of row indices with typed
/// comparators (CompareValues semantics: numerics as widened doubles,
/// strings by bytes with an equal-code shortcut), then gathers once.
/// The parallel path mirrors StableSortRows on the index vector.
Table SortByColumnar(const Table& t, const std::vector<SortKey>& keys) {
  size_t n = t.num_rows();
  std::vector<internal::SortPart> parts = internal::MakeSortParts(t, keys);
  auto less = [&parts](uint32_t a, uint32_t b) {
    return internal::SortIndexLess(parts, a, b);
  };
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  if (!UseParallel(n)) {
    std::stable_sort(perm.begin(), perm.end(), less);
    return GatherRows(t, perm);
  }
  const size_t morsel = ExecMorselSize();
  size_t nchunks = NumChunks(n, morsel);
  TaskPool& pool = TaskPool::Global(ExecThreads());
  pool.ParallelFor(
      0, n, morsel,
      [&](size_t lo, size_t hi) {
        std::stable_sort(perm.begin() + static_cast<ptrdiff_t>(lo),
                         perm.begin() + static_cast<ptrdiff_t>(hi), less);
      },
      ExecThreads());
  if (nchunks > 1) {
    std::vector<uint32_t> scratch(n);
    std::vector<uint32_t>* src = &perm;
    std::vector<uint32_t>* dst = &scratch;
    for (size_t width = morsel; width < n; width *= 2) {
      size_t npairs = NumChunks(n, 2 * width);
      pool.ParallelFor(
          0, npairs, 1,
          [&](size_t plo, size_t phi) {
            for (size_t p = plo; p < phi; ++p) {
              size_t lo = p * 2 * width;
              size_t mid = std::min(lo + width, n);
              size_t hi = std::min(lo + 2 * width, n);
              auto s = src->begin() + static_cast<ptrdiff_t>(lo);
              auto m = src->begin() + static_cast<ptrdiff_t>(mid);
              auto e = src->begin() + static_cast<ptrdiff_t>(hi);
              auto d = dst->begin() + static_cast<ptrdiff_t>(lo);
              if (mid >= hi) {
                std::copy(s, e, d);
              } else {
                std::merge(s, m, m, e, d, less);
              }
            }
          },
          ExecThreads());
      std::swap(src, dst);
    }
    if (src != &perm) perm = std::move(*src);
  }
  return GatherRows(t, perm);
}

}  // namespace

Table SortBy(const Table& t, const std::vector<SortKey>& keys) {
  CheckSortKeys(t, keys);
  if (ColumnarPath(t)) {
    if (SpillSortPlanned(t, keys)) {
      Result<Table> spilled = TryExternalSortBy(t, keys);
      if (spilled.ok()) return std::move(spilled).value();
      // Spill I/O failed: fall through to the unbounded in-memory sort.
    }
    return SortByColumnar(t, keys);
  }
  Table out = t;
  StableSortRows(&out.mutable_rows(), MakeLess(keys));
  return out;
}

Table SortBy(Table&& t, const std::vector<SortKey>& keys) {
  CheckSortKeys(t, keys);
  if (ColumnarPath(t)) {
    if (SpillSortPlanned(t, keys)) {
      Result<Table> spilled = TryExternalSortBy(t, keys);
      if (spilled.ok()) return std::move(spilled).value();
    }
    return SortByColumnar(t, keys);
  }
  Table out = std::move(t);
  StableSortRows(&out.mutable_rows(), MakeLess(keys));
  return out;
}

Table Limit(const Table& t, size_t n) {
  size_t take = std::min(n, t.num_rows());
  if (ColumnarPath(t)) {
    std::vector<uint32_t> sel(take);
    for (size_t i = 0; i < take; ++i) sel[i] = static_cast<uint32_t>(i);
    return GatherRows(t, sel);
  }
  Table out(t.columns());
  out.Reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.AddRow(t.rows()[i]);
  }
  return out;
}

Table Limit(Table&& t, size_t n) {
  size_t take = std::min(n, t.num_rows());
  if (ColumnarPath(t)) {
    std::vector<uint32_t> sel(take);
    for (size_t i = 0; i < take; ++i) sel[i] = static_cast<uint32_t>(i);
    return GatherRows(t, sel);
  }
  Table out(t.columns());
  out.Reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.AddRow(std::move(t.mutable_rows()[i]));
  }
  return out;
}

Table Distinct(const Table& t) {
  std::vector<int> all_cols(t.num_cols());
  for (int i = 0; i < t.num_cols(); ++i) all_cols[i] = i;
  if (ColumnarPath(t)) {
    // Dedup on raw typed values; emission order is first-seen, same as
    // the row path (selection indices are ascending by construction).
    std::vector<KeyPart> parts = MakeKeyParts(t, all_cols);
    std::unordered_map<uint64_t, std::vector<uint32_t>> seen;
    seen.reserve(t.num_rows());
    std::vector<uint32_t> sel;
    size_t n = t.num_rows();
    for (size_t i = 0; i < n; ++i) {
      uint64_t h = KeyHashAt(parts, i);
      std::vector<uint32_t>& cands = seen[h];
      bool dup = false;
      for (uint32_t c : cands) {
        if (KeysEqualAt(parts, c, parts, i)) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      cands.push_back(static_cast<uint32_t>(i));
      sel.push_back(static_cast<uint32_t>(i));
    }
    return GatherRows(t, sel);
  }
  Table out(t.columns());
  std::unordered_map<RowKey, bool, RowKeyHash> seen;
  seen.reserve(t.num_rows());
  for (const Row& row : t.rows()) {
    RowKey key = ExtractKey(row, all_cols);
    if (seen.emplace(std::move(key), true).second) out.AddRow(row);
  }
  return out;
}

Expr Col(const Table& t, const std::string& name) {
  int idx = t.ColIndex(name);
  return [idx](const Row& row) { return row[idx]; };
}

Expr Lit(Value v) {
  return [v](const Row&) { return v; };
}

Expr Mul(Expr a, Expr b) {
  return [a = std::move(a), b = std::move(b)](const Row& row) {
    return Value{AsDouble(a(row)) * AsDouble(b(row))};
  };
}

Expr Add(Expr a, Expr b) {
  return [a = std::move(a), b = std::move(b)](const Row& row) {
    return Value{AsDouble(a(row)) + AsDouble(b(row))};
  };
}

Expr Sub(Expr a, Expr b) {
  return [a = std::move(a), b = std::move(b)](const Row& row) {
    return Value{AsDouble(a(row)) - AsDouble(b(row))};
  };
}

Expr Revenue(const Table& t, const std::string& price_col,
             const std::string& discount_col) {
  int p = t.ColIndex(price_col);
  int d = t.ColIndex(discount_col);
  return [p, d](const Row& row) {
    return Value{AsDouble(row[p]) * (1.0 - AsDouble(row[d]))};
  };
}

}  // namespace elephant::exec
