#ifndef ELEPHANT_EXEC_FROZEN_H_
#define ELEPHANT_EXEC_FROZEN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/compress.h"
#include "exec/segcache.h"
#include "exec/statistics.h"
#include "exec/table.h"
#include "exec/zonemap.h"

namespace elephant::exec {

// ---- Segment-backed (frozen) base tables (DESIGN.md §17) -----------------
//
// A frozen table keeps its row data as per-column runs of compressed
// chunks living in the global SegmentCache instead of resident
// ColumnVectors: at rest the table costs its encoded bytes (bounded by
// the cache budget, spilling beyond it), not its plain bytes. Reads go
// one of two ways:
//
//  - Accessor reads (IntData/DoubleData/StrCodes) transparently thaw
//    the touched column — decode every chunk back into the ColumnVector
//    once, publish-once under the table's lazy lock — so every existing
//    kernel keeps working unchanged and pays only for the columns it
//    actually reads. Table::ReleaseResident() drops thawed columns
//    back to frozen-only storage between queries.
//  - The fused scan path (exec/fused.cc) recognizes frozen columns and
//    never thaws them: zone maps classify chunks from the per-chunk
//    bounds stored here, pruned/full-match chunks are never pinned, and
//    scan chunks are evaluated directly on the encoded bytes
//    (exec/encoded_scan.h) under a pin-per-chunk discipline.
//
// Mutation detaches: any mutating entry point thaws every column and
// drops the frozen state (the encoded chunks would go stale). Logical
// content is unchanged by Freeze/thaw/Release, so fingerprints are
// bit-identical to the resident path at any budget and thread count.

/// One encoded chunk of a frozen column: its segment-cache id plus the
/// decoded row count (all chunks span chunk_rows rows except the last).
struct FrozenChunk {
  SegmentCache::Id id = 0;
  uint32_t rows = 0;
};

/// One frozen column: chunk ids in row order plus the zone-map image of
/// each chunk (bounds read off the encoded form at seal time), the
/// verified ascending flag, and the histogram when the column was
/// frozen from a resident table (streamed builds leave it empty, which
/// degrades selectivity ordering, never results).
struct FrozenColumn {
  ValueType type = ValueType::kInt;
  bool sorted_asc = false;
  std::vector<FrozenChunk> chunks;
  std::vector<EncodedBounds> bounds;
  ColumnHistogram hist;
  size_t encoded_bytes = 0;
};

/// Immutable frozen-table metadata, shared by every copy of the table.
/// Owns the segment-cache entries: the last owner removes them.
struct FrozenTableData {
  size_t rows = 0;
  size_t chunk_rows = 0;
  std::vector<FrozenColumn> cols;

  FrozenTableData() = default;
  FrozenTableData(const FrozenTableData&) = delete;
  FrozenTableData& operator=(const FrozenTableData&) = delete;
  ~FrozenTableData();

  size_t EncodedBytes() const;
};

/// Zone maps reconstructed from the frozen metadata alone — same
/// bounds, sorted flags, and chunk grid BuildZoneMaps would produce
/// over the thawed table, without decoding anything.
std::shared_ptr<const ZoneMaps> ZoneMapsFromFrozen(
    const std::vector<Column>& schema, const FrozenTableData& fz);

/// Streaming builder: append RowBatches in chunk order (interning is
/// serial here, so dictionary codes match Table::AppendBatch exactly)
/// and full chunks are sealed — encoded with the auto codec chooser and
/// inserted into the segment cache — as soon as they fill. Peak
/// residency is one unsealed chunk per column, never the whole table.
/// Finish() seals the ragged tail and returns the frozen Table with its
/// zone maps pre-attached.
class FrozenTableBuilder {
 public:
  /// `pool` may be null: a pool is created when the schema needs one.
  explicit FrozenTableBuilder(std::vector<Column> schema,
                              std::shared_ptr<StringPool> pool = nullptr);

  void Append(RowBatch&& batch);
  Table Finish();

  size_t rows_appended() const { return rows_; }

 private:
  void SealChunk(size_t lo, size_t hi);
  void SealFullChunks();

  std::vector<Column> schema_;
  std::shared_ptr<StringPool> pool_;
  std::shared_ptr<FrozenTableData> fz_;
  /// Resident unsealed tail, one typed vector per column.
  std::vector<ColumnVector> tail_;
  size_t rows_ = 0;
  /// Incremental ascending verification across seal boundaries: the
  /// double image of the last sealed value per column.
  std::vector<double> last_val_;
  bool has_last_ = false;
};

}  // namespace elephant::exec

#endif  // ELEPHANT_EXEC_FROZEN_H_
