#include "exec/zonemap.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <type_traits>

#include "common/string_util.h"
#include "exec/segment.h"

namespace elephant::exec {

namespace {

constexpr size_t kDefaultChunkRows = 4096;

std::atomic<size_t> g_zone_chunk_rows{kDefaultChunkRows};

size_t NumZoneChunks(size_t rows, size_t chunk_rows) {
  return rows == 0 ? 0 : (rows + chunk_rows - 1) / chunk_rows;
}

}  // namespace

size_t ZoneMapChunkRows() {
  return g_zone_chunk_rows.load(std::memory_order_relaxed);
}

void SetZoneMapChunkRows(size_t rows) {
  g_zone_chunk_rows.store(rows == 0 ? kDefaultChunkRows : rows,
                          std::memory_order_relaxed);
}

std::shared_ptr<const ZoneMaps> BuildZoneMaps(const Table& t) {
  if (!t.EnsureColumnar()) return nullptr;  // heterogeneous: no chunks
  auto zm = std::make_shared<ZoneMaps>();
  size_t n = t.num_rows();
  zm->rows = n;
  zm->chunk_rows = ZoneMapChunkRows();
  zm->num_chunks = NumZoneChunks(n, zm->chunk_rows);
  zm->cols.resize(t.num_cols());
  for (int c = 0; c < t.num_cols(); ++c) {
    ColumnZones& cz = zm->cols[c];
    cz.type = t.columns()[c].type;
    // One kernel over every encoding: chunk bounds + the ascending
    // check fall out of the same segment loop. Codes get interval
    // bounds but never a sorted flag (intern order is not collation).
    WithSegment(t, c, [&](auto seg) {
      using Raw = decltype(seg.Raw(0));
      constexpr bool kIsCode = std::is_same_v<Raw, uint32_t>;
      bool ascending = n > 0 && !kIsCode;
      for (size_t chunk = 0; chunk < zm->num_chunks; ++chunk) {
        size_t lo = chunk * zm->chunk_rows;
        size_t hi = std::min(n, lo + zm->chunk_rows);
        if constexpr (kIsCode) {
          uint32_t mn = seg(lo);
          uint32_t mx = seg(lo);
          for (size_t i = lo + 1; i < hi; ++i) {
            uint32_t v = seg(i);
            if (v < mn) mn = v;
            if (v > mx) mx = v;
          }
          cz.code_min.push_back(mn);
          cz.code_max.push_back(mx);
        } else {
          // A NaN anywhere poisons the chunk to [NaN, NaN]: NaN fails
          // every comparison, so a poisoned chunk never prunes, never
          // full-matches, and always takes the per-row scan.
          double mn = seg(lo);
          double mx = seg(lo);
          bool has_nan = mn != mn;
          for (size_t i = lo + 1; i < hi && !has_nan; ++i) {
            double v = seg(i);
            if (v != v) has_nan = true;
            if (v < mn) mn = v;
            if (v > mx) mx = v;
          }
          if (has_nan) {
            mn = mx = std::numeric_limits<double>::quiet_NaN();
          }
          cz.min.push_back(mn);
          cz.max.push_back(mx);
        }
      }
      if (ascending) {
        for (size_t i = 1; i < n && ascending; ++i) {
          // NaN compares false both ways and correctly kills the flag.
          if (!(seg(i - 1) <= seg(i))) ascending = false;
        }
      }
      cz.sorted_asc = ascending;
    });
    if (cz.type != ValueType::kString) {
      cz.hist = BuildHistogram(t, c);
    }
  }
  return zm;
}

namespace {

bool ZoneMapsFresh(const Table& t,
                   const std::shared_ptr<const ZoneMaps>& zm) {
  return zm != nullptr && zm->rows == t.num_rows() &&
         zm->chunk_rows == ZoneMapChunkRows();
}

// Single-flight guard for first-touch builds. Concurrent queries over a
// shared table (the TPC-H bench runs 22 cells at once) would otherwise
// each rebuild the same maps — wasted full-table scans, not a data race
// (the Table cache itself is lock-protected). Sharded by table address
// so unrelated tables rarely serialize against each other.
std::mutex& ZoneBuildMutex(const Table& t) {
  static std::array<std::mutex, 16> mus;
  return mus[std::hash<const Table*>{}(&t) % mus.size()];
}

}  // namespace

std::shared_ptr<const ZoneMaps> GetZoneMaps(const Table& t) {
  std::shared_ptr<const ZoneMaps> zm = t.zone_maps();
  if (ZoneMapsFresh(t, zm)) return zm;
  std::lock_guard<std::mutex> lock(ZoneBuildMutex(t));
  zm = t.zone_maps();  // another thread may have finished the build
  if (ZoneMapsFresh(t, zm)) return zm;
  zm = BuildZoneMaps(t);
  if (zm != nullptr) t.set_zone_maps(zm);
  return zm;
}

Status ValidateZoneMaps(const Table& t, const ZoneMaps& zm) {
  if (!t.EnsureColumnar()) {
    return Status::FailedPrecondition(
        "zone maps attached to a table with no columnar form");
  }
  size_t n = t.num_rows();
  if (zm.chunk_rows == 0) {
    return Status::Internal("zone-map chunk_rows is zero");
  }
  if (zm.rows != n) {
    return Status::Internal(StrFormat(
        "zone-map row count %zu != table row count %zu", zm.rows, n));
  }
  size_t want_chunks = NumZoneChunks(n, zm.chunk_rows);
  if (zm.num_chunks != want_chunks) {
    return Status::Internal(StrFormat("zone-map chunk count %zu != %zu",
                                      zm.num_chunks, want_chunks));
  }
  if (zm.cols.size() != static_cast<size_t>(t.num_cols())) {
    return Status::Internal(StrFormat("zone-map column count %zu != %d",
                                      zm.cols.size(), t.num_cols()));
  }
  for (int c = 0; c < t.num_cols(); ++c) {
    const ColumnZones& cz = zm.cols[c];
    const std::string& name = t.columns()[c].name;
    if (cz.type != t.columns()[c].type) {
      return Status::Internal("zone-map type mismatch on column " + name);
    }
    bool is_code = cz.type == ValueType::kString;
    size_t bounds = is_code ? cz.code_min.size() : cz.min.size();
    size_t bounds_hi = is_code ? cz.code_max.size() : cz.max.size();
    if (bounds != zm.num_chunks || bounds_hi != zm.num_chunks) {
      return Status::Internal(
          "zone-map bounds size mismatch on column " + name);
    }
    if (is_code && cz.sorted_asc) {
      return Status::Internal(
          "sorted flag set on dictionary column " + name +
          " (code order is not a collation)");
    }
    Status st = WithSegment(t, c, [&](auto seg) {
      using Raw = decltype(seg.Raw(0));
      constexpr bool kIsCode = std::is_same_v<Raw, uint32_t>;
      if constexpr (kIsCode) {
        if (!is_code) {
          return Status::Internal("segment/zone encoding disagreement");
        }
      }
      for (size_t chunk = 0; chunk < zm.num_chunks; ++chunk) {
        size_t lo = chunk * zm.chunk_rows;
        size_t hi = std::min(n, lo + zm.chunk_rows);
        if constexpr (!kIsCode) {
          // NaN-poisoned bounds are legal exactly when the chunk holds
          // a NaN (the builder marks such chunks unbounded).
          bool chunk_nan = false;
          for (size_t i = lo; i < hi; ++i) {
            double v = seg(i);
            if (v != v) chunk_nan = true;
          }
          double bmin = cz.min[chunk];
          double bmax = cz.max[chunk];
          bool bounds_nan = bmin != bmin || bmax != bmax;
          if (chunk_nan != bounds_nan) {
            return Status::Internal(
                StrFormat("NaN poisoning mismatch on column %s chunk %zu",
                          name.c_str(), chunk));
          }
          if (bounds_nan) continue;
        }
        for (size_t i = lo; i < hi; ++i) {
          auto v = seg(i);
          bool in_bounds;
          if constexpr (kIsCode) {
            in_bounds = v >= cz.code_min[chunk] && v <= cz.code_max[chunk];
          } else {
            in_bounds = v >= cz.min[chunk] && v <= cz.max[chunk];
          }
          if (!in_bounds) {
            return Status::Internal(StrFormat(
                "zone bound violated: column %s chunk %zu row %zu "
                "outside its min/max",
                name.c_str(), chunk, i));
          }
        }
      }
      if (!kIsCode) {
        bool ascending = n > 0;
        for (size_t i = 1; i < n && ascending; ++i) {
          if (!(seg(i - 1) <= seg(i))) ascending = false;
        }
        if (cz.sorted_asc != ascending) {
          return Status::Internal(StrFormat(
              "sorted flag on column %s is %d but data says %d",
              name.c_str(), cz.sorted_asc ? 1 : 0, ascending ? 1 : 0));
        }
      }
      return Status::OK();
    });
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace elephant::exec
