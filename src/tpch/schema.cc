#include "tpch/schema.h"

#include <cmath>

namespace elephant::tpch {

using exec::Column;
using exec::ValueType;

const char* TableName(TableId id) {
  switch (id) {
    case TableId::kRegion:
      return "region";
    case TableId::kNation:
      return "nation";
    case TableId::kSupplier:
      return "supplier";
    case TableId::kPart:
      return "part";
    case TableId::kPartsupp:
      return "partsupp";
    case TableId::kCustomer:
      return "customer";
    case TableId::kOrders:
      return "orders";
    case TableId::kLineitem:
      return "lineitem";
  }
  return "?";
}

std::vector<Column> TableSchema(TableId id) {
  const ValueType I = ValueType::kInt;
  const ValueType D = ValueType::kDouble;
  const ValueType S = ValueType::kString;
  switch (id) {
    case TableId::kRegion:
      return {{"r_regionkey", I}, {"r_name", S}, {"r_comment", S}};
    case TableId::kNation:
      return {{"n_nationkey", I},
              {"n_name", S},
              {"n_regionkey", I},
              {"n_comment", S}};
    case TableId::kSupplier:
      return {{"s_suppkey", I},   {"s_name", S},    {"s_address", S},
              {"s_nationkey", I}, {"s_phone", S},   {"s_acctbal", D},
              {"s_comment", S}};
    case TableId::kPart:
      return {{"p_partkey", I},   {"p_name", S},  {"p_mfgr", S},
              {"p_brand", S},     {"p_type", S},  {"p_size", I},
              {"p_container", S}, {"p_retailprice", D}, {"p_comment", S}};
    case TableId::kPartsupp:
      return {{"ps_partkey", I},
              {"ps_suppkey", I},
              {"ps_availqty", I},
              {"ps_supplycost", D},
              {"ps_comment", S}};
    case TableId::kCustomer:
      return {{"c_custkey", I}, {"c_name", S},       {"c_address", S},
              {"c_nationkey", I}, {"c_phone", S},    {"c_acctbal", D},
              {"c_mktsegment", S}, {"c_comment", S}};
    case TableId::kOrders:
      return {{"o_orderkey", I},      {"o_custkey", I},
              {"o_orderstatus", S},   {"o_totalprice", D},
              {"o_orderdate", I},     {"o_orderpriority", S},
              {"o_clerk", S},         {"o_shippriority", I},
              {"o_comment", S}};
    case TableId::kLineitem:
      return {{"l_orderkey", I},      {"l_partkey", I},
              {"l_suppkey", I},       {"l_linenumber", I},
              {"l_quantity", D},      {"l_extendedprice", D},
              {"l_discount", D},      {"l_tax", D},
              {"l_returnflag", S},    {"l_linestatus", S},
              {"l_shipdate", I},      {"l_commitdate", I},
              {"l_receiptdate", I},   {"l_shipinstruct", S},
              {"l_shipmode", S},      {"l_comment", S}};
  }
  return {};
}

int64_t RowCountAtScale(TableId id, double sf) {
  switch (id) {
    case TableId::kRegion:
      return 5;
    case TableId::kNation:
      return 25;
    case TableId::kSupplier:
      return static_cast<int64_t>(
          std::llround(Constants::kSuppliersPerSf * sf));
    case TableId::kPart:
      return static_cast<int64_t>(std::llround(Constants::kPartsPerSf * sf));
    case TableId::kPartsupp:
      return RowCountAtScale(TableId::kPart, sf) * Constants::kPartsuppPerPart;
    case TableId::kCustomer:
      return static_cast<int64_t>(
          std::llround(Constants::kCustomersPerSf * sf));
    case TableId::kOrders:
      return static_cast<int64_t>(std::llround(Constants::kOrdersPerSf * sf));
    case TableId::kLineitem:
      return RowCountAtScale(TableId::kOrders, sf) * 4;  // avg 4 per order
  }
  return 0;
}

int64_t AvgRowBytes(TableId id) {
  // Flat-file byte widths from the TPC-H spec's storage estimates.
  switch (id) {
    case TableId::kRegion:
      return 80;
    case TableId::kNation:
      return 90;
    case TableId::kSupplier:
      return 140;
    case TableId::kPart:
      return 115;
    case TableId::kPartsupp:
      return 144;
    case TableId::kCustomer:
      return 165;
    case TableId::kOrders:
      return 107;
    case TableId::kLineitem:
      return 121;
  }
  return 0;
}

}  // namespace elephant::tpch
