#ifndef ELEPHANT_TPCH_DBGEN_H_
#define ELEPHANT_TPCH_DBGEN_H_

#include <cstdint>

#include "common/date.h"
#include "exec/table.h"
#include "tpch/schema.h"

namespace elephant::tpch {

/// dbgen's fixed calendar anchors (TPC-H spec clause 4.2.3/5.3.2).
inline DateCode StartDate() { return MakeDate(1992, 1, 1); }
inline DateCode EndDate() { return MakeDate(1998, 12, 31); }
inline DateCode CurrentDate() { return MakeDate(1995, 6, 17); }

/// Options for the data generator.
struct DbgenOptions {
  uint64_t seed = 19920101;
  /// When false, lineitem part/supp keys and order custkeys are drawn
  /// with dbgen's 32-bit RANDOM (which overflows once the key range
  /// exceeds INT32_MAX — the SF 16000 bug from §3.3.1 of the paper).
  /// When true, uses the paper's RANDOM64 fix.
  bool use_random64 = true;
  /// Override for the key ranges used by RANDOM: lets tests provoke the
  /// 32-bit overflow without materializing 16 TB. 0 = derive from the
  /// scale factor.
  int64_t forced_part_count = 0;
  /// Worker threads for generation; 0 = the ELEPHANT_THREADS default.
  /// Generation is chunked into fixed row ranges, each seeded from a
  /// counter-based per-chunk RNG stream, so the generated database is
  /// bit-identical at any thread count (threads == 1 simply runs the
  /// chunks in order on the calling thread).
  int threads = 0;
  /// Segment-backed (frozen) base tables: 1 = the six big tables stream
  /// straight into compressed segment-cache chunks (peak residency is a
  /// bounded window of generation chunks, never a whole table), 0 =
  /// resident ColumnVectors, -1 = freeze exactly when a memory budget
  /// is set (ELEPHANT_MEM_BUDGET != 0). region/nation stay resident
  /// either way. Logical content is bit-identical in both modes.
  int freeze = -1;
};

/// A fully generated TPC-H database held as executor tables.
struct TpchDatabase {
  double scale_factor = 0;
  exec::Table region;
  exec::Table nation;
  exec::Table supplier;
  exec::Table part;
  exec::Table partsupp;
  exec::Table customer;
  exec::Table orders;
  exec::Table lineitem;

  const exec::Table& table(TableId id) const;
};

/// Generates a spec-shaped TPC-H database at the given scale factor.
/// The generator follows the dbgen distributions that the 22 benchmark
/// queries select on (brands, types, containers, segments, priorities,
/// ship modes/instructions, date windows, sparse orderkeys, the
/// custkey-mod-3 gap, comment trigger phrases for Q13/Q16), so every
/// query returns non-trivial results even at mini scale factors.
TpchDatabase GenerateDatabase(double scale_factor,
                              const DbgenOptions& options = {});

}  // namespace elephant::tpch

#endif  // ELEPHANT_TPCH_DBGEN_H_
