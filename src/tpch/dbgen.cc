#include "tpch/dbgen.h"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/task_pool.h"
#include "exec/frozen.h"
#include "exec/segcache.h"
#include "exec/zonemap.h"

namespace elephant::tpch {

namespace {

using exec::RowBatch;
using exec::Table;
using exec::Value;

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[25] = {
    {"ALGERIA", 0},        {"ARGENTINA", 1},  {"BRAZIL", 1},
    {"CANADA", 1},         {"EGYPT", 4},      {"ETHIOPIA", 0},
    {"FRANCE", 3},         {"GERMANY", 3},    {"INDIA", 2},
    {"INDONESIA", 2},      {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},          {"JORDAN", 4},     {"KENYA", 0},
    {"MOROCCO", 0},        {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},          {"ROMANIA", 3},    {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},        {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kInstructions[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                        "TRUCK",   "MAIL", "FOB"};
const char* kTypes1[] = {"STANDARD", "SMALL",   "MEDIUM",
                         "LARGE",    "ECONOMY", "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR",
                              "PKG",  "PACK", "CAN", "DRUM"};
const char* kColors[] = {
    "almond",  "antique", "aquamarine", "azure",   "beige",   "bisque",
    "black",   "blanched", "blue",      "blush",   "brown",   "burlywood",
    "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
    "cornsilk", "cream",  "cyan",       "dark",    "deep",    "dim",
    "dodger",  "drab",    "firebrick",  "floral",  "forest",  "frosted",
    "gainsboro", "ghost", "goldenrod",  "green",   "grey",    "honeydew",
    "hot",     "hotpink", "indian",     "ivory",   "khaki",   "lace",
    "lavender", "lawn",   "lemon",      "light",   "lime",    "linen",
    "magenta", "maroon",  "medium",     "metallic", "midnight", "mint",
    "misty",   "moccasin", "navajo",    "navy",    "olive",   "orange",
    "orchid",  "pale",    "papaya",     "peach",   "peru",    "pink",
    "plum",    "powder",  "puff",       "purple",  "red",     "rose",
    "rosy",    "royal",   "saddle",     "salmon",  "sandy",   "seashell",
    "sienna",  "sky",     "slate",      "smoke",   "snow",    "spring",
    "steel",   "tan",     "thistle",    "tomato",  "turquoise", "violet",
    "wheat",   "white",   "yellow"};
const char* kNouns[] = {"packages", "requests", "accounts", "deposits",
                        "foxes",    "ideas",    "theodolites", "pinto beans",
                        "instructions", "dependencies", "excuses", "platelets"};
const char* kVerbs[] = {"sleep",  "wake",  "are",   "cajole", "haggle",
                        "nag",    "use",   "boost", "affix",  "detect",
                        "integrate", "maintain"};
const char* kAdjectives[] = {"furious", "sly",   "careful", "blithe",
                             "quick",   "fluffy", "slow",   "quiet",
                             "ruthless", "thin",  "close",  "dogged"};

/// dbgen-flavoured text: short random adjective/noun/verb salad.
std::string RandomText(Rng* rng, int words) {
  std::vector<std::string> parts;
  parts.reserve(words);
  for (int i = 0; i < words; ++i) {
    switch (i % 3) {
      case 0:
        parts.push_back(kAdjectives[rng->Uniform(std::size(kAdjectives))]);
        break;
      case 1:
        parts.push_back(kNouns[rng->Uniform(std::size(kNouns))]);
        break;
      default:
        parts.push_back(kVerbs[rng->Uniform(std::size(kVerbs))]);
        break;
    }
  }
  return StrJoin(parts, " ");
}

std::string RandomAddress(Rng* rng) {
  return StrFormat("%llu %s st.",
                   static_cast<unsigned long long>(rng->Uniform(9999) + 1),
                   kNouns[rng->Uniform(std::size(kNouns))]);
}

std::string PhoneFor(int nationkey, Rng* rng) {
  return StrFormat("%d-%03llu-%03llu-%04llu", 10 + nationkey,
                   static_cast<unsigned long long>(rng->Uniform(900) + 100),
                   static_cast<unsigned long long>(rng->Uniform(900) + 100),
                   static_cast<unsigned long long>(rng->Uniform(9000) + 1000));
}

double RetailPrice(int64_t partkey) {
  // TPC-H spec: (90000 + ((p_partkey/10) mod 20001) + 100*(p_partkey mod
  // 1000)) / 100.
  return (90000.0 + static_cast<double>((partkey / 10) % 20001) +
          100.0 * static_cast<double>(partkey % 1000)) /
         100.0;
}

/// The j-th (0..3) supplier for a part: the spec's ps_suppkey formula,
/// which both partsupp generation and lineitem suppkey choice must share.
int64_t SupplierFor(int64_t partkey, int j, int64_t supplier_count) {
  return (partkey +
          j * (supplier_count / 4 + (partkey - 1) / supplier_count)) %
             supplier_count +
         1;
}

// ---- Chunked generation -------------------------------------------------
//
// Every table is generated in fixed-size row-range chunks, and each
// chunk draws from its own counter-seeded RNG stream. Chunk boundaries
// depend only on the table's row count — never on the thread count — so
// the generated database is bit-identical whether chunks run in order
// on one thread or interleaved across many; per-chunk row buffers are
// concatenated in chunk order.

/// Rows per generation chunk (orders count their lineitems implicitly).
constexpr int64_t kChunkRows = 2048;

/// Per-table stream tags keeping chunk streams disjoint across tables.
enum : uint64_t {
  kTagRegion = 1,
  kTagNation,
  kTagSupplier,
  kTagPart,
  kTagPartsupp,
  kTagCustomer,
  kTagOrders,
};

/// Counter-based seed for chunk `chunk` of the table tagged `tag`:
/// SplitMix64 over (seed, tag, chunk), so streams are well separated
/// even for adjacent counters.
uint64_t ChunkSeed(uint64_t seed, uint64_t tag, uint64_t chunk) {
  uint64_t state = seed + tag * 0x9E3779B97F4A7C15ULL;
  state = SplitMix64(&state) ^ chunk;
  return SplitMix64(&state);
}

size_t NumChunks(int64_t total) {
  return total <= 0 ? 0
                    : static_cast<size_t>((total + kChunkRows - 1) /
                                          kChunkRows);
}

/// Runs body(chunk_index, lo, hi) over [begin, end) split at kChunkRows
/// boundaries (`begin` must sit on one so chunk seeds stay aligned): in
/// chunk order on the calling thread when threads <= 1, else fanned out
/// on the global TaskPool.
void ForEachChunkRange(int threads, int64_t begin, int64_t end,
                       const std::function<void(size_t, int64_t, int64_t)>&
                           body) {
  if (begin >= end) return;
  if (threads > 1) {
    TaskPool::Global(threads).ParallelFor(
        static_cast<size_t>(begin), static_cast<size_t>(end),
        static_cast<size_t>(kChunkRows),
        [&](size_t lo, size_t hi) {
          body(lo / static_cast<size_t>(kChunkRows),
               static_cast<int64_t>(lo), static_cast<int64_t>(hi));
        },
        threads);
  } else {
    for (int64_t lo = begin; lo < end; lo += kChunkRows) {
      body(static_cast<size_t>(lo / kChunkRows), lo,
           std::min(lo + kChunkRows, end));
    }
  }
}

/// Destination for generated batches: a resident Table by default, a
/// FrozenTableBuilder when dbgen freezes as it generates. Batches must
/// arrive serially in chunk order either way — string interning is
/// serial here, so dictionary codes are assigned in global row order
/// (and match bit-for-bit across the two modes) regardless of how the
/// generation chunks were scheduled.
class TableSink {
 public:
  TableSink(std::vector<exec::Column> schema, bool freeze) : table_(schema) {
    if (freeze) builder_.emplace(std::move(schema));
  }

  void AppendWindow(std::vector<RowBatch>* slots) {
    if (builder_.has_value()) {
      for (RowBatch& b : *slots) builder_->Append(std::move(b));
      return;
    }
    size_t total = 0;
    for (const RowBatch& b : *slots) total += b.num_rows();
    table_.Reserve(table_.num_rows() + total);
    for (RowBatch& b : *slots) table_.AppendBatch(std::move(b));
  }

  Table Take() {
    return builder_.has_value() ? builder_->Finish() : std::move(table_);
  }

 private:
  Table table_;
  std::optional<exec::FrozenTableBuilder> builder_;
};

/// Chunks per streaming window: sized so every worker stays fed while
/// resident generation state is bounded by the window, not the table.
/// The no-freeze path uses one all-covering window, which reproduces
/// the historical generate-everything-then-append behavior exactly.
size_t WindowChunks(bool freeze, int threads) {
  if (!freeze) return std::numeric_limits<size_t>::max();
  return std::max<size_t>(16, 4 * static_cast<size_t>(std::max(threads, 1)));
}

/// Runs body(chunk, lo, hi, &batch) over [0, total) in windows of
/// `window` chunks: generation fans out across threads inside each
/// window, then the window's batches drain into `sink` in chunk order
/// before the next window starts.
void GenerateChunked(
    int threads, int64_t total, const std::vector<exec::Column>& schema,
    size_t window,
    const std::function<void(size_t, int64_t, int64_t, RowBatch*)>& body,
    TableSink* sink) {
  const size_t chunks = NumChunks(total);
  for (size_t wlo = 0; wlo < chunks; wlo += window) {
    const size_t whi = window >= chunks - wlo ? chunks : wlo + window;
    std::vector<RowBatch> slots(whi - wlo, RowBatch(schema));
    const int64_t row_lo = static_cast<int64_t>(wlo) * kChunkRows;
    const int64_t row_hi =
        std::min(total, static_cast<int64_t>(whi) * kChunkRows);
    ForEachChunkRange(threads, row_lo, row_hi,
                      [&](size_t c, int64_t lo, int64_t hi) {
                        body(c, lo, hi, &slots[c - wlo]);
                      });
    sink->AppendWindow(&slots);
  }
}

/// GenerateChunked for two tables fed by one chunk loop (orders +
/// lineitem, which share their per-order RNG streams).
void GenerateChunkedPair(
    int threads, int64_t total, const std::vector<exec::Column>& a_schema,
    const std::vector<exec::Column>& b_schema, size_t window,
    const std::function<void(size_t, int64_t, int64_t, RowBatch*, RowBatch*)>&
        body,
    TableSink* a_sink, TableSink* b_sink) {
  const size_t chunks = NumChunks(total);
  for (size_t wlo = 0; wlo < chunks; wlo += window) {
    const size_t whi = window >= chunks - wlo ? chunks : wlo + window;
    std::vector<RowBatch> a_slots(whi - wlo, RowBatch(a_schema));
    std::vector<RowBatch> b_slots(whi - wlo, RowBatch(b_schema));
    const int64_t row_lo = static_cast<int64_t>(wlo) * kChunkRows;
    const int64_t row_hi =
        std::min(total, static_cast<int64_t>(whi) * kChunkRows);
    ForEachChunkRange(threads, row_lo, row_hi,
                      [&](size_t c, int64_t lo, int64_t hi) {
                        body(c, lo, hi, &a_slots[c - wlo],
                             &b_slots[c - wlo]);
                      });
    a_sink->AppendWindow(&a_slots);
    b_sink->AppendWindow(&b_slots);
  }
}

}  // namespace

const Table& TpchDatabase::table(TableId id) const {
  switch (id) {
    case TableId::kRegion:
      return region;
    case TableId::kNation:
      return nation;
    case TableId::kSupplier:
      return supplier;
    case TableId::kPart:
      return part;
    case TableId::kPartsupp:
      return partsupp;
    case TableId::kCustomer:
      return customer;
    case TableId::kOrders:
      return orders;
    case TableId::kLineitem:
      return lineitem;
  }
  return region;
}

TpchDatabase GenerateDatabase(double sf, const DbgenOptions& options) {
  TpchDatabase db;
  db.scale_factor = sf;
  const uint64_t seed = options.seed;
  const int threads =
      options.threads > 0 ? options.threads : DefaultThreadCount();

  const int64_t num_suppliers = RowCountAtScale(TableId::kSupplier, sf);
  const int64_t num_parts = RowCountAtScale(TableId::kPart, sf);
  const int64_t num_customers = RowCountAtScale(TableId::kCustomer, sf);
  const int64_t num_orders = RowCountAtScale(TableId::kOrders, sf);
  // The key RANGE dbgen draws foreign keys from. forced_part_count lets
  // tests reproduce the SF 16000 32-bit overflow without materializing a
  // 16 TB part table (referential integrity is intentionally sacrificed
  // in that mode — the point is the overflow symptom).
  const int64_t partkey_range =
      options.forced_part_count ? options.forced_part_count : num_parts;

  // Frozen (segment-backed) generation: on by request, or automatically
  // whenever a memory budget is in force. region/nation are a few
  // hundred bytes — always resident.
  const bool freeze =
      options.freeze > 0 ||
      (options.freeze < 0 && exec::ExecMemoryBudget() != 0);
  const size_t window = WindowChunks(freeze, threads);

  // --- region ---
  db.region = Table(TableSchema(TableId::kRegion));
  {
    Rng rng(ChunkSeed(seed, kTagRegion, 0));
    for (int64_t i = 0; i < 5; ++i) {
      db.region.AddRow({Value{i}, Value{std::string(kRegions[i])},
                        Value{RandomText(&rng, 6)}});
    }
  }

  // --- nation ---
  db.nation = Table(TableSchema(TableId::kNation));
  {
    Rng rng(ChunkSeed(seed, kTagNation, 0));
    for (int64_t i = 0; i < 25; ++i) {
      db.nation.AddRow({Value{i}, Value{std::string(kNations[i].name)},
                        Value{int64_t{kNations[i].region}},
                        Value{RandomText(&rng, 6)}});
    }
  }

  // --- supplier ---
  {
    TableSink sink(TableSchema(TableId::kSupplier), freeze);
    GenerateChunked(threads, num_suppliers, TableSchema(TableId::kSupplier),
                    window,
                    [&](size_t c, int64_t lo, int64_t hi, RowBatch* out) {
                      Rng rng(ChunkSeed(seed, kTagSupplier, c));
                      RowBatch& rows = *out;
                      rows.ReserveRows(static_cast<size_t>(hi - lo));
                   for (int64_t k = lo + 1; k <= hi; ++k) {
                     int nationkey = static_cast<int>(rng.Uniform(25));
                     // Per spec, ~5 per 10000 supplier comments embed the
                     // Q16 trigger phrase "Customer ... Complaints".
                     std::string comment = RandomText(&rng, 8);
                     if (rng.Uniform(2000) == 0) {
                       comment = "Customer " + RandomText(&rng, 2) +
                                 " Complaints " + comment;
                     }
                     rows.AddInt(0, k);
                     rows.AddString(1, StrFormat("Supplier#%09lld",
                                                 static_cast<long long>(k)));
                     rows.AddString(2, RandomAddress(&rng));
                     rows.AddInt(3, nationkey);
                     rows.AddString(4, PhoneFor(nationkey, &rng));
                     rows.AddDouble(
                         5, -999.99 + rng.NextDouble() * (9999.99 + 999.99));
                        rows.AddString(6, std::move(comment));
                      }
                    },
                    &sink);
    db.supplier = sink.Take();
  }

  // --- part ---
  {
    TableSink sink(TableSchema(TableId::kPart), freeze);
    GenerateChunked(
        threads, num_parts, TableSchema(TableId::kPart), window,
        [&](size_t c, int64_t lo, int64_t hi, RowBatch* out) {
          Rng rng(ChunkSeed(seed, kTagPart, c));
          RowBatch& rows = *out;
          rows.ReserveRows(static_cast<size_t>(hi - lo));
          for (int64_t k = lo + 1; k <= hi; ++k) {
            int m = static_cast<int>(rng.Uniform(5)) + 1;
            int n = static_cast<int>(rng.Uniform(5)) + 1;
            std::string name;
            for (int w = 0; w < 5; ++w) {
              if (w) name += ' ';
              name += kColors[rng.Uniform(std::size(kColors))];
            }
            std::string type = std::string(kTypes1[rng.Uniform(6)]) + " " +
                               kTypes2[rng.Uniform(5)] + " " +
                               kTypes3[rng.Uniform(5)];
            std::string container =
                std::string(kContainers1[rng.Uniform(5)]) + " " +
                kContainers2[rng.Uniform(8)];
            rows.AddInt(0, k);
            rows.AddString(1, std::move(name));
            rows.AddString(2, StrFormat("Manufacturer#%d", m));
            rows.AddString(3, StrFormat("Brand#%d%d", m, n));
            rows.AddString(4, std::move(type));
            rows.AddInt(5, static_cast<int64_t>(rng.Uniform(50)) + 1);
            rows.AddString(6, std::move(container));
            rows.AddDouble(7, RetailPrice(k));
            rows.AddString(8, RandomText(&rng, 4));
          }
        },
        &sink);
    db.part = sink.Take();
  }

  // --- partsupp --- (chunked over partkeys; 4 rows per part)
  {
    TableSink sink(TableSchema(TableId::kPartsupp), freeze);
    GenerateChunked(
        threads, num_parts, TableSchema(TableId::kPartsupp), window,
        [&](size_t c, int64_t lo, int64_t hi, RowBatch* out) {
          Rng rng(ChunkSeed(seed, kTagPartsupp, c));
          RowBatch& rows = *out;
          rows.ReserveRows(static_cast<size_t>(hi - lo) *
                           Constants::kPartsuppPerPart);
          for (int64_t pk = lo + 1; pk <= hi; ++pk) {
            for (int j = 0; j < Constants::kPartsuppPerPart; ++j) {
              rows.AddInt(0, pk);
              rows.AddInt(1, SupplierFor(pk, j, num_suppliers));
              rows.AddInt(2, static_cast<int64_t>(rng.Uniform(9999)) + 1);
              rows.AddDouble(3, 1.0 + rng.NextDouble() * 999.0);
              rows.AddString(4, RandomText(&rng, 10));
            }
          }
        },
        &sink);
    db.partsupp = sink.Take();
  }

  // --- customer ---
  {
    TableSink sink(TableSchema(TableId::kCustomer), freeze);
    GenerateChunked(
        threads, num_customers, TableSchema(TableId::kCustomer), window,
        [&](size_t c, int64_t lo, int64_t hi, RowBatch* out) {
          Rng rng(ChunkSeed(seed, kTagCustomer, c));
          RowBatch& rows = *out;
          rows.ReserveRows(static_cast<size_t>(hi - lo));
          for (int64_t k = lo + 1; k <= hi; ++k) {
            int nationkey = static_cast<int>(rng.Uniform(25));
            rows.AddInt(0, k);
            rows.AddString(
                1, StrFormat("Customer#%09lld", static_cast<long long>(k)));
            rows.AddString(2, RandomAddress(&rng));
            rows.AddInt(3, nationkey);
            rows.AddString(4, PhoneFor(nationkey, &rng));
            rows.AddDouble(5,
                           -999.99 + rng.NextDouble() * (9999.99 + 999.99));
            rows.AddString(6, kSegments[rng.Uniform(5)]);
            rows.AddString(7, RandomText(&rng, 12));
          }
        },
        &sink);
    db.customer = sink.Take();
  }

  // --- orders + lineitem --- (chunked over order index; each chunk
  // carries an Rng stream plus a TpchRandom key stream of its own)
  const DateCode start = StartDate();
  // Latest orderdate leaves room for the longest ship+receipt window.
  const int order_date_range = EndDate() - 151 - start;
  const DateCode today = CurrentDate();

  {
    TableSink order_sink(TableSchema(TableId::kOrders), freeze);
    TableSink line_sink(TableSchema(TableId::kLineitem), freeze);
    GenerateChunkedPair(
        threads, num_orders, TableSchema(TableId::kOrders),
        TableSchema(TableId::kLineitem), window,
        [&](size_t c, int64_t clo, int64_t chi, RowBatch* order_out,
            RowBatch* line_out) {
      Rng rng(ChunkSeed(seed, kTagOrders, c));
      TpchRandom key_rng(ChunkSeed(seed ^ 0x7C0FFEEULL, kTagOrders, c));
      RowBatch& orders = *order_out;
      RowBatch& lines = *line_out;
      orders.ReserveRows(static_cast<size_t>(chi - clo));
      lines.ReserveRows(static_cast<size_t>(chi - clo) * 4);
      for (int64_t i = clo; i < chi; ++i) {
        int64_t orderkey = SparseOrderkey(i);
        // Customers with custkey % 3 == 0 never place orders (spec
        // 4.2.3), which is why Q13 finds customers with zero orders.
        int64_t custkey;
        if (options.use_random64) {
          do {
            custkey = key_rng.Random64(1, num_customers);
          } while (custkey % 3 == 0);
        } else {
          do {
            custkey = key_rng.Random32(1, num_customers);
          } while (custkey > 0 && custkey % 3 == 0);
        }
        DateCode orderdate =
            start + static_cast<DateCode>(rng.Uniform(order_date_range + 1));

        int num_lines = static_cast<int>(rng.Uniform(7)) + 1;
        double totalprice = 0;
        int open_lines = 0;
        for (int ln = 1; ln <= num_lines; ++ln) {
          int64_t partkey = options.use_random64
                                ? key_rng.Random64(1, partkey_range)
                                : key_rng.Random32(1, partkey_range);
          int64_t suppkey =
              partkey >= 1
                  ? SupplierFor(partkey, static_cast<int>(rng.Uniform(4)),
                                num_suppliers)
                  : 1;
          double quantity = static_cast<double>(rng.Uniform(50) + 1);
          double extprice =
              quantity * (partkey >= 1 ? RetailPrice(partkey) : 0.0);
          double discount = static_cast<double>(rng.Uniform(11)) / 100.0;
          double tax = static_cast<double>(rng.Uniform(9)) / 100.0;
          DateCode shipdate =
              orderdate + 1 + static_cast<DateCode>(rng.Uniform(121));
          DateCode commitdate =
              orderdate + 30 + static_cast<DateCode>(rng.Uniform(61));
          DateCode receiptdate =
              shipdate + 1 + static_cast<DateCode>(rng.Uniform(30));
          std::string returnflag =
              receiptdate <= today ? (rng.Bernoulli(0.5) ? "R" : "A") : "N";
          std::string linestatus = shipdate > today ? "O" : "F";
          if (linestatus == "O") open_lines++;
          totalprice += extprice * (1.0 + tax) * (1.0 - discount);

          lines.AddInt(0, orderkey);
          lines.AddInt(1, partkey);
          lines.AddInt(2, suppkey);
          lines.AddInt(3, ln);
          lines.AddDouble(4, quantity);
          lines.AddDouble(5, extprice);
          lines.AddDouble(6, discount);
          lines.AddDouble(7, tax);
          lines.AddString(8, std::move(returnflag));
          lines.AddString(9, std::move(linestatus));
          lines.AddInt(10, shipdate);
          lines.AddInt(11, commitdate);
          lines.AddInt(12, receiptdate);
          lines.AddString(13, kInstructions[rng.Uniform(4)]);
          lines.AddString(14, kModes[rng.Uniform(7)]);
          lines.AddString(15, RandomText(&rng, 4));
        }

        std::string status = open_lines == 0
                                 ? "F"
                                 : (open_lines == num_lines ? "O" : "P");
        // ~1.5% of order comments carry the Q13 exclusion phrase
        // "special ... requests".
        std::string comment = RandomText(&rng, 6);
        if (rng.Uniform(64) == 0) {
          comment = "special " + RandomText(&rng, 1) + " requests " + comment;
        }
        orders.AddInt(0, orderkey);
        orders.AddInt(1, custkey);
        orders.AddString(2, std::move(status));
        orders.AddDouble(3, totalprice);
        orders.AddInt(4, orderdate);
        orders.AddString(5, kPriorities[rng.Uniform(5)]);
        orders.AddString(
            6, StrFormat("Clerk#%09llu",
                         static_cast<unsigned long long>(
                             rng.Uniform(std::max<int64_t>(
                                 1, static_cast<int64_t>(1000 * sf))) +
                             1)));
        orders.AddInt(7, 0);
        orders.AddString(8, std::move(comment));
      }
        },
        &order_sink, &line_sink);
    db.orders = order_sink.Take();
    db.lineitem = line_sink.Take();
  }

  // Pre-build zone maps for the base tables at load time: they are
  // derived state the fused scans would build lazily on first use, but
  // doing it here keeps query timings clean of one-time build cost
  // (and verifies the sorted flags on the clustered primary keys).
  for (const exec::Table* t :
       {&db.region, &db.nation, &db.supplier, &db.part, &db.partsupp,
        &db.customer, &db.orders, &db.lineitem}) {
    exec::GetZoneMaps(*t);
  }

  return db;
}

}  // namespace elephant::tpch
