#include "tpch/refresh.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "common/string_util.h"
#include "exec/table.h"

namespace elephant::tpch {

namespace {

using exec::AsInt;
using exec::Row;
using exec::Value;

int64_t OrdersPerStream(double sf) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(1500 * sf)));
}

}  // namespace

Result<RefreshResult> RefreshInsert(TpchDatabase* db, int stream) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  const int64_t num_orders = OrdersPerStream(db->scale_factor);
  const int64_t num_customers =
      static_cast<int64_t>(db->customer.num_rows());
  const int64_t num_parts = static_cast<int64_t>(db->part.num_rows());
  const int64_t num_suppliers =
      static_cast<int64_t>(db->supplier.num_rows());
  if (num_customers == 0 || num_parts == 0 || num_suppliers == 0) {
    return Status::FailedPrecondition("base tables are empty");
  }

  // New orderkeys start above every existing key.
  int64_t max_key = 0;
  int okey = db->orders.ColIndex("o_orderkey");
  for (const Row& r : db->orders.rows()) {
    max_key = std::max(max_key, AsInt(r[okey]));
  }

  Rng rng(0x5EF5E5 + 977 * stream);
  RefreshResult result;
  DateCode start = StartDate();
  int range = EndDate() - 151 - start;
  for (int64_t i = 0; i < num_orders; ++i) {
    int64_t orderkey = max_key + 1 + i;
    int64_t custkey;
    do {
      custkey = static_cast<int64_t>(rng.Uniform(num_customers)) + 1;
    } while (custkey % 3 == 0);
    DateCode orderdate = start + static_cast<DateCode>(rng.Uniform(range));
    int lines = static_cast<int>(rng.Uniform(7)) + 1;
    double total = 0;
    for (int ln = 1; ln <= lines; ++ln) {
      int64_t partkey = static_cast<int64_t>(rng.Uniform(num_parts)) + 1;
      int64_t suppkey =
          static_cast<int64_t>(rng.Uniform(num_suppliers)) + 1;
      double qty = static_cast<double>(rng.Uniform(50) + 1);
      double price = qty * 1000.0;
      double disc = static_cast<double>(rng.Uniform(11)) / 100.0;
      double tax = static_cast<double>(rng.Uniform(9)) / 100.0;
      DateCode ship = orderdate + 1 + static_cast<DateCode>(rng.Uniform(121));
      total += price * (1 + tax) * (1 - disc);
      db->lineitem.AddRow(
          {Value{orderkey}, Value{partkey}, Value{suppkey},
           Value{int64_t{ln}}, Value{qty}, Value{price}, Value{disc},
           Value{tax}, Value{std::string("N")}, Value{std::string("O")},
           Value{int64_t{ship}}, Value{int64_t{ship + 30}},
           Value{int64_t{ship + 10}},
           Value{std::string("DELIVER IN PERSON")},
           Value{std::string("TRUCK")}, Value{std::string("refresh")}});
      result.lineitems_changed++;
    }
    db->orders.AddRow({Value{orderkey}, Value{custkey},
                       Value{std::string("O")}, Value{total},
                       Value{int64_t{orderdate}},
                       Value{std::string("1-URGENT")},
                       Value{StrFormat("Clerk#%09d", stream + 1)},
                       Value{int64_t{0}}, Value{std::string("refresh")}});
    result.orders_changed++;
  }
  return result;
}

Result<RefreshResult> RefreshDelete(TpchDatabase* db, int stream) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  const int64_t num_orders = OrdersPerStream(db->scale_factor);
  if (db->orders.num_rows() == 0) {
    return Status::FailedPrecondition("orders table is empty");
  }
  // Delete the first SF*1500 orders at the stream's offset, in key order.
  int okey = db->orders.ColIndex("o_orderkey");
  std::vector<int64_t> keys;
  keys.reserve(db->orders.num_rows());
  for (const Row& r : db->orders.rows()) keys.push_back(AsInt(r[okey]));
  std::sort(keys.begin(), keys.end());
  size_t offset = static_cast<size_t>(stream) * num_orders;
  if (offset >= keys.size()) {
    return Status::OutOfRange("refresh stream past the orders table");
  }
  size_t end = std::min(keys.size(), offset + num_orders);
  std::unordered_set<int64_t> victims(keys.begin() + offset,
                                      keys.begin() + end);

  RefreshResult result;
  auto& orows = db->orders.mutable_rows();
  size_t before = orows.size();
  orows.erase(std::remove_if(orows.begin(), orows.end(),
                             [&](const Row& r) {
                               return victims.count(AsInt(r[okey])) > 0;
                             }),
              orows.end());
  result.orders_changed = static_cast<int64_t>(before - orows.size());

  int lkey = db->lineitem.ColIndex("l_orderkey");
  auto& lrows = db->lineitem.mutable_rows();
  before = lrows.size();
  lrows.erase(std::remove_if(lrows.begin(), lrows.end(),
                             [&](const Row& r) {
                               return victims.count(AsInt(r[lkey])) > 0;
                             }),
              lrows.end());
  result.lineitems_changed = static_cast<int64_t>(before - lrows.size());
  return result;
}

RefreshCost EstimateRefreshCost(double sf, bool hive_supports_dml) {
  RefreshCost cost;
  // Volumes: SF*1500 orders + ~4x lineitems, ~600 B of text per order
  // group.
  double bytes = 1500.0 * sf * 600.0;
  // PDW: parallel bulk insert/delete across 128 distributions, log +
  // data writes, ~100 MB/s effective per node across 16 nodes.
  cost.pdw_seconds = bytes / (16 * 100e6) + 2.0;
  if (!hive_supports_dml) {
    cost.hive_supported = false;
    cost.hive_seconds = 0;
    return cost;
  }
  // Hive 0.8 INSERT INTO appends new files (one MR job, ~30 s of
  // overhead), but deletes rewrite the touched partitions: rewriting
  // 1/1000 of orders+lineitem spread over 512 buckets effectively
  // rewrites every bucket once.
  double rewrite_bytes = (0.725 + 0.1605) * sf * 1e9 / 7.0;  // compressed
  cost.hive_seconds = 30.0 + rewrite_bytes / (128 * 2e6);
  return cost;
}

}  // namespace elephant::tpch
