#ifndef ELEPHANT_TPCH_REFRESH_H_
#define ELEPHANT_TPCH_REFRESH_H_

#include "common/result.h"
#include "common/status.h"
#include "tpch/dbgen.h"

namespace elephant::tpch {

/// The TPC-H refresh functions RF1 (insert new orders + lineitems) and
/// RF2 (delete old orders + lineitems), which the paper could not run
/// because Hive 0.7.1 "does not support deletes and inserts into
/// existing tables or partitions" (§3.3.1; Hive 0.8 added INSERT INTO).
/// Provided as the natural extension of the reproduction: they mutate
/// the in-memory database the executor queries, so refresh-then-query
/// behaviour is testable.
///
/// Per the spec, each refresh stream touches SF * 1500 orders (0.1% of
/// the orders table).

/// Result of one refresh function application.
struct RefreshResult {
  int64_t orders_changed = 0;
  int64_t lineitems_changed = 0;
};

/// RF1: inserts SF*1500 new orders (with 1-7 lineitems each) drawn from
/// a fresh orderkey range above the existing keys. `stream` seeds the
/// generator so successive streams insert distinct data.
Result<RefreshResult> RefreshInsert(TpchDatabase* db, int stream = 0);

/// RF2: deletes the SF*1500 oldest *inserted-or-original* orders (by
/// orderkey order starting from `stream`'s position) and their
/// lineitems.
Result<RefreshResult> RefreshDelete(TpchDatabase* db, int stream = 0);

/// Simulated cost of a refresh pair on each DSS engine (per §3.3.1's
/// discussion): PDW applies them as parallel bulk DML; Hive 0.8+
/// rewrites whole partitions for RF2 and appends files for RF1. Returns
/// seconds of simulated time per engine at a scale factor.
struct RefreshCost {
  double pdw_seconds = 0;
  double hive_seconds = 0;
  bool hive_supported = true;  ///< false for Hive <= 0.7 (the paper's)
};
RefreshCost EstimateRefreshCost(double scale_factor,
                                bool hive_supports_dml);

}  // namespace elephant::tpch

#endif  // ELEPHANT_TPCH_REFRESH_H_
