#ifndef ELEPHANT_TPCH_SCHEMA_H_
#define ELEPHANT_TPCH_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/table.h"

namespace elephant::tpch {

/// The eight TPC-H base tables.
enum class TableId {
  kRegion,
  kNation,
  kSupplier,
  kPart,
  kPartsupp,
  kCustomer,
  kOrders,
  kLineitem,
};

constexpr int kNumTables = 8;

/// Lowercase table name ("lineitem").
const char* TableName(TableId id);

/// Schema (column names/types) for a base table.
std::vector<exec::Column> TableSchema(TableId id);

/// Spec row count at a given scale factor. Lineitem is approximate
/// (average 4 lineitems/order; exact count is data-dependent).
int64_t RowCountAtScale(TableId id, double scale_factor);

/// Average row width in bytes of the flat-text representation (used by
/// the storage and load-time models; values follow the TPC-H spec's
/// table sizes: e.g. SF 1 = ~1 GB total, lineitem ~725 MB).
int64_t AvgRowBytes(TableId id);

/// TPC-H dbgen constants (per spec clause 4.2.3).
struct Constants {
  static constexpr int64_t kSuppliersPerSf = 10000;
  static constexpr int64_t kPartsPerSf = 200000;
  static constexpr int64_t kCustomersPerSf = 150000;
  static constexpr int64_t kOrdersPerSf = 1500000;
  static constexpr int kPartsuppPerPart = 4;
  static constexpr int kMaxLineitemsPerOrder = 7;
  /// Orderkeys are sparse: only the first 8 of every 32 key values are
  /// populated (the root cause of Hive's 384 empty bucket files in §3.3.4).
  static constexpr int kOrderkeyUsedPerGroup = 8;
  static constexpr int kOrderkeyGroupSize = 32;
};

/// dbgen's sparse orderkey mapping: dense index (0-based) -> orderkey.
inline int64_t SparseOrderkey(int64_t dense_index) {
  return dense_index / Constants::kOrderkeyUsedPerGroup *
             Constants::kOrderkeyGroupSize +
         dense_index % Constants::kOrderkeyUsedPerGroup + 1;
}

}  // namespace elephant::tpch

#endif  // ELEPHANT_TPCH_SCHEMA_H_
