#ifndef ELEPHANT_TPCH_DSS_BENCHMARK_H_
#define ELEPHANT_TPCH_DSS_BENCHMARK_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "hive/engine.h"
#include "pdw/engine.h"
#include "sim/simulation.h"

namespace elephant::tpch {

/// The paper's standard DSS scale factors (GB): 250, 1000, 4000, 16000.
extern const std::vector<double> kPaperScaleFactors;

/// Configuration of the full DSS comparison.
struct DssOptions {
  int num_nodes = 16;  ///< the paper's cluster
  cluster::NodeConfig node;
  dfs::DfsOptions dfs;
  hive::HiveOptions hive;
  pdw::PdwOptions pdw;
};

/// One Table 3 row: per-SF times for both engines.
struct DssQueryRow {
  int query = 0;
  std::vector<double> hive_seconds;   ///< one per scale factor
  std::vector<double> pdw_seconds;
  std::vector<bool> hive_failed;      ///< out-of-disk (Q9 @ 16 TB)

  double Speedup(size_t sf_index) const {
    return pdw_seconds[sf_index] > 0 && !hive_failed[sf_index]
               ? hive_seconds[sf_index] / pdw_seconds[sf_index]
               : 0.0;
  }
};

/// Summary statistics for a system across queries (the AM/GM and
/// AM-9/GM-9 rows of Table 3).
struct DssSummary {
  std::vector<double> am;    ///< arithmetic mean per SF (0 if incomplete)
  std::vector<double> gm;    ///< geometric mean per SF
  std::vector<double> am9;   ///< excluding Q9
  std::vector<double> gm9;
};

/// Facade wiring the simulated cluster, HDFS, Hive and PDW together and
/// reproducing the paper's DSS evaluation (Tables 2-5, Figure 1).
class DssBenchmark {
 public:
  explicit DssBenchmark(const DssOptions& options = {});

  hive::HiveQueryResult RunHive(int query, double sf);
  pdw::PdwQueryResult RunPdw(int query, double sf);

  /// Table 2.
  SimTime HiveLoadTime(double sf);
  SimTime PdwLoadTime(double sf);

  /// Table 3: all 22 queries at the given scale factors.
  std::vector<DssQueryRow> RunAll(const std::vector<double>& sfs);

  /// AM/GM rows over a Table 3 result.
  static DssSummary SummarizeHive(const std::vector<DssQueryRow>& rows);
  static DssSummary SummarizePdw(const std::vector<DssQueryRow>& rows);

  hive::HiveEngine& hive() { return *hive_; }
  pdw::PdwEngine& pdw() { return *pdw_; }
  cluster::Cluster& cluster() { return *cluster_; }

 private:
  DssOptions options_;
  sim::Simulation sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<dfs::DistributedFileSystem> fs_;
  std::unique_ptr<hive::HiveEngine> hive_;
  std::unique_ptr<pdw::PdwEngine> pdw_;
};

}  // namespace elephant::tpch

#endif  // ELEPHANT_TPCH_DSS_BENCHMARK_H_
