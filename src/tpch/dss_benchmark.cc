#include "tpch/dss_benchmark.h"

#include "common/stats.h"
#include "tpch/queries.h"

namespace elephant::tpch {

const std::vector<double> kPaperScaleFactors = {250, 1000, 4000, 16000};

DssBenchmark::DssBenchmark(const DssOptions& options) : options_(options) {
  cluster_ = std::make_unique<cluster::Cluster>(&sim_, options_.num_nodes,
                                                options_.node);
  fs_ = std::make_unique<dfs::DistributedFileSystem>(cluster_.get(),
                                                     options_.dfs);
  hive_ = std::make_unique<hive::HiveEngine>(cluster_.get(), fs_.get(),
                                             options_.hive);
  pdw_ = std::make_unique<pdw::PdwEngine>(cluster_.get(), options_.pdw);
}

hive::HiveQueryResult DssBenchmark::RunHive(int query, double sf) {
  return hive_->RunQuery(query, sf);
}

pdw::PdwQueryResult DssBenchmark::RunPdw(int query, double sf) {
  return pdw_->RunQuery(query, sf);
}

SimTime DssBenchmark::HiveLoadTime(double sf) {
  return hive_->LoadTime(sf);
}

SimTime DssBenchmark::PdwLoadTime(double sf) { return pdw_->LoadTime(sf); }

std::vector<DssQueryRow> DssBenchmark::RunAll(
    const std::vector<double>& sfs) {
  std::vector<DssQueryRow> rows;
  for (int q = 1; q <= kNumQueries; ++q) {
    DssQueryRow row;
    row.query = q;
    for (double sf : sfs) {
      hive::HiveQueryResult h = RunHive(q, sf);
      pdw::PdwQueryResult p = RunPdw(q, sf);
      row.hive_seconds.push_back(SimTimeToSeconds(h.total));
      row.pdw_seconds.push_back(SimTimeToSeconds(p.total));
      row.hive_failed.push_back(h.failed_out_of_disk);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

DssSummary Summarize(const std::vector<DssQueryRow>& rows, bool hive) {
  DssSummary s;
  if (rows.empty()) return s;
  size_t num_sfs = rows[0].hive_seconds.size();
  for (size_t i = 0; i < num_sfs; ++i) {
    std::vector<double> all, no9;
    bool complete = true;
    for (const auto& row : rows) {
      double t = hive ? row.hive_seconds[i] : row.pdw_seconds[i];
      bool failed = hive && row.hive_failed[i];
      if (failed) {
        complete = false;
      } else {
        all.push_back(t);
      }
      if (row.query != 9 && !failed) no9.push_back(t);
    }
    s.am.push_back(complete ? ArithmeticMean(all) : 0.0);
    s.gm.push_back(complete ? GeometricMean(all) : 0.0);
    s.am9.push_back(ArithmeticMean(no9));
    s.gm9.push_back(GeometricMean(no9));
  }
  return s;
}

}  // namespace

DssSummary DssBenchmark::SummarizeHive(const std::vector<DssQueryRow>& rows) {
  return Summarize(rows, true);
}

DssSummary DssBenchmark::SummarizePdw(const std::vector<DssQueryRow>& rows) {
  return Summarize(rows, false);
}

}  // namespace elephant::tpch
