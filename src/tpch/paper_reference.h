#ifndef ELEPHANT_TPCH_PAPER_REFERENCE_H_
#define ELEPHANT_TPCH_PAPER_REFERENCE_H_

namespace elephant::tpch {

/// The measurements published in the paper, used by the benchmark
/// harnesses to print paper-vs-model comparisons and by the shape tests.
/// Index 0..3 = SF 250 / 1000 / 4000 / 16000. A value of -1 means "did
/// not complete" (Q9 on Hive at 16 TB ran out of disk).
struct PaperReference {
  /// Table 3: Hive seconds per query (rows 0..21 = Q1..Q22).
  static constexpr double kHiveSeconds[22][4] = {
      {207, 443, 1376, 5357},   {411, 530, 1081, 3191},
      {508, 1125, 3789, 11644}, {367, 855, 2120, 6508},
      {536, 1686, 5481, 19812}, {79, 166, 537, 2131},
      {1007, 2447, 7694, 24887}, {967, 2003, 6150, 18112},
      {2033, 7243, 27522, -1},  {489, 1107, 2958, 13195},
      {242, 258, 695, 1964},    {253, 490, 1597, 5123},
      {392, 629, 1428, 4577},   {154, 353, 769, 2556},
      {444, 585, 1145, 2768},   {460, 654, 1732, 5695},
      {654, 1717, 6334, 25662}, {786, 2249, 8264, 25964},
      {376, 1069, 4005, 17644}, {606, 1296, 2461, 11041},
      {1431, 3217, 13071, 40748}, {908, 1145, 1744, 3402}};

  /// Table 3: PDW seconds per query.
  static constexpr double kPdwSeconds[22][4] = {
      {54, 212, 864, 3607},  {7, 25, 115, 495},
      {32, 112, 606, 2572},  {8, 54, 187, 629},
      {33, 80, 253, 1060},   {5, 41, 142, 526},
      {19, 80, 240, 955},    {9, 89, 238, 814},
      {207, 844, 3962, 15494}, {14, 67, 265, 981},
      {3, 18, 99, 302},      {5, 44, 192, 631},
      {51, 190, 772, 3061},  {7, 64, 164, 640},
      {21, 99, 377, 1397},   {36, 71, 223, 549},
      {93, 406, 1679, 6757}, {20, 103, 482, 2880},
      {16, 73, 272, 958},    {20, 101, 425, 1611},
      {31, 138, 927, 4736},  {19, 71, 255, 1270}};

  /// Table 2: load times in minutes.
  static constexpr double kHiveLoadMinutes[4] = {38, 125, 519, 2512};
  static constexpr double kPdwLoadMinutes[4] = {79, 313, 1180, 4712};

  /// Table 4: Q1 total map-phase seconds.
  static constexpr double kQ1MapPhaseSeconds[4] = {148, 339, 1258, 5220};

  /// Table 5: Q22 sub-query seconds (rows = sub-query 1..4).
  static constexpr double kQ22SubquerySeconds[4][4] = {
      {85, 104, 169, 263},
      {38, 51, 51, 63},
      {109, 236, 658, 2234},
      {654, 735, 797, 813}};

  /// §3.4.2: YCSB load times in minutes (Mongo-AS / SQL-CS / Mongo-CS).
  static constexpr double kMongoAsLoadMinutes = 114;
  static constexpr double kSqlCsLoadMinutes = 146;
  static constexpr double kMongoCsLoadMinutes = 45;
};

}  // namespace elephant::tpch

#endif  // ELEPHANT_TPCH_PAPER_REFERENCE_H_
