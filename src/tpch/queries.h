#ifndef ELEPHANT_TPCH_QUERIES_H_
#define ELEPHANT_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "exec/table.h"
#include "tpch/dbgen.h"

namespace elephant::tpch {

/// Number of queries in the benchmark.
constexpr int kNumQueries = 22;

/// Short description of a query ("Pricing Summary Report").
const char* QueryName(int query_number);

/// Executes TPC-H query `query_number` (1-based, 1..22) with the spec's
/// validation parameters against an in-memory database, using the exec
/// operator library. These reference implementations define the correct
/// answers that the Hive-plan and PDW-plan models must agree with.
exec::Table RunQuery(int query_number, const TpchDatabase& db);

/// The base tables each query touches (used by the engine models to
/// compute scan volumes, and by tests).
std::vector<TableId> QueryInputTables(int query_number);

}  // namespace elephant::tpch

#endif  // ELEPHANT_TPCH_QUERIES_H_
