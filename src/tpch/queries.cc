#include "tpch/queries.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/date.h"
#include "exec/operators.h"
#include "common/check.h"

namespace elephant::tpch {

namespace {

using exec::AggExpr;
using exec::AggKind;
using exec::AsDouble;
using exec::AsInt;
using exec::AsString;
using exec::Col;
using exec::Expr;
using exec::Filter;
using exec::HashAggregateOn;
using exec::HashJoinOn;
using exec::JoinType;
using exec::Limit;
using exec::NamedExpr;
using exec::Project;
using exec::Row;
using exec::SortBy;
using exec::SortKey;
using exec::Table;
using exec::Value;
using exec::ValueType;

constexpr ValueType I = ValueType::kInt;
constexpr ValueType D = ValueType::kDouble;
constexpr ValueType S = ValueType::kString;

bool StrContains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

bool StrStartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool StrEndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Q1: Pricing Summary Report.
Table Q1(const TpchDatabase& db) {
  DateCode cutoff = MakeDate(1998, 12, 1) - 90;
  const Table& l = db.lineitem;
  int shipdate = l.ColIndex("l_shipdate");
  Table filtered = Filter(l, [shipdate, cutoff](const Row& r) {
    return AsInt(r[shipdate]) <= cutoff;
  });
  Expr qty = Col(filtered, "l_quantity");
  Expr price = Col(filtered, "l_extendedprice");
  Expr disc = Col(filtered, "l_discount");
  Expr tax = Col(filtered, "l_tax");
  Expr disc_price = exec::Mul(price, exec::Sub(exec::Lit(1.0), disc));
  Expr charge = exec::Mul(disc_price, exec::Add(exec::Lit(1.0), tax));
  Table agg = HashAggregateOn(
      filtered, {"l_returnflag", "l_linestatus"},
      {{AggKind::kSum, qty, "sum_qty", D},
       {AggKind::kSum, price, "sum_base_price", D},
       {AggKind::kSum, disc_price, "sum_disc_price", D},
       {AggKind::kSum, charge, "sum_charge", D},
       {AggKind::kAvg, qty, "avg_qty", D},
       {AggKind::kAvg, price, "avg_price", D},
       {AggKind::kAvg, disc, "avg_disc", D},
       {AggKind::kCount, nullptr, "count_order", I}});
  int rf = agg.ColIndex("l_returnflag");
  int ls = agg.ColIndex("l_linestatus");
  return SortBy(std::move(agg), {{rf, true}, {ls, true}});
}

// Q2: Minimum Cost Supplier.
Table Q2(const TpchDatabase& db) {
  int psize = db.part.ColIndex("p_size");
  int ptype = db.part.ColIndex("p_type");
  Table part = Filter(db.part, [psize, ptype](const Row& r) {
    return AsInt(r[psize]) == 15 && StrEndsWith(AsString(r[ptype]), "BRASS");
  });
  int rname = db.region.ColIndex("r_name");
  Table region = Filter(db.region, [rname](const Row& r) {
    return AsString(r[rname]) == "EUROPE";
  });
  // Suppliers in EUROPE with nation info.
  Table nr = HashJoinOn(db.nation, region, {"n_regionkey"}, {"r_regionkey"});
  Table snr = HashJoinOn(db.supplier, nr, {"s_nationkey"}, {"n_nationkey"});
  // All (part, europe-supplier) offers.
  Table offers = HashJoinOn(db.partsupp, snr, {"ps_suppkey"}, {"s_suppkey"});
  // Min supply cost per part over European suppliers.
  Table mincost = HashAggregateOn(
      offers, {"ps_partkey"},
      {{AggKind::kMin, Col(offers, "ps_supplycost"), "min_cost", D}});
  // Offers matching the min cost, restricted to the selected parts.
  Table with_min =
      HashJoinOn(offers, mincost, {"ps_partkey"}, {"ps_partkey"});
  int cost = with_min.ColIndex("ps_supplycost");
  int minc = with_min.ColIndex("min_cost");
  Table best = Filter(with_min, [cost, minc](const Row& r) {
    return AsDouble(r[cost]) == AsDouble(r[minc]);
  });
  Table joined = HashJoinOn(best, part, {"ps_partkey"}, {"p_partkey"});
  Table projected = Project(
      joined, {{"s_acctbal", D, Col(joined, "s_acctbal")},
               {"s_name", S, Col(joined, "s_name")},
               {"n_name", S, Col(joined, "n_name")},
               {"p_partkey", I, Col(joined, "p_partkey")},
               {"p_mfgr", S, Col(joined, "p_mfgr")},
               {"s_address", S, Col(joined, "s_address")},
               {"s_phone", S, Col(joined, "s_phone")},
               {"s_comment", S, Col(joined, "s_comment")}});
  Table sorted = SortBy(std::move(projected), {{0, false}, {2, true},
                                               {1, true}, {3, true}});
  return Limit(std::move(sorted), 100);
}

// Q3: Shipping Priority.
Table Q3(const TpchDatabase& db) {
  DateCode pivot = MakeDate(1995, 3, 15);
  int seg = db.customer.ColIndex("c_mktsegment");
  Table cust = Filter(db.customer, [seg](const Row& r) {
    return AsString(r[seg]) == "BUILDING";
  });
  int odate = db.orders.ColIndex("o_orderdate");
  Table orders = Filter(db.orders, [odate, pivot](const Row& r) {
    return AsInt(r[odate]) < pivot;
  });
  int sdate = db.lineitem.ColIndex("l_shipdate");
  Table line = Filter(db.lineitem, [sdate, pivot](const Row& r) {
    return AsInt(r[sdate]) > pivot;
  });
  Table co = HashJoinOn(cust, orders, {"c_custkey"}, {"o_custkey"});
  Table col = HashJoinOn(co, line, {"o_orderkey"}, {"l_orderkey"});
  Table agg = HashAggregateOn(
      col, {"l_orderkey", "o_orderdate", "o_shippriority"},
      {{AggKind::kSum, exec::Revenue(col), "revenue", D}});
  int rev = agg.ColIndex("revenue");
  int od = agg.ColIndex("o_orderdate");
  Table sorted = SortBy(std::move(agg), {{rev, false}, {od, true}});
  return Limit(std::move(sorted), 10);
}

// Q4: Order Priority Checking.
Table Q4(const TpchDatabase& db) {
  DateCode lo = MakeDate(1993, 7, 1);
  DateCode hi = AddMonths(lo, 3);
  int odate = db.orders.ColIndex("o_orderdate");
  Table orders = Filter(db.orders, [odate, lo, hi](const Row& r) {
    int64_t d = AsInt(r[odate]);
    return d >= lo && d < hi;
  });
  int cdate = db.lineitem.ColIndex("l_commitdate");
  int rdate = db.lineitem.ColIndex("l_receiptdate");
  Table late = Filter(db.lineitem, [cdate, rdate](const Row& r) {
    return AsInt(r[cdate]) < AsInt(r[rdate]);
  });
  Table semi =
      HashJoinOn(orders, late, {"o_orderkey"}, {"l_orderkey"},
                 JoinType::kLeftSemi);
  Table agg =
      HashAggregateOn(semi, {"o_orderpriority"},
                      {{AggKind::kCount, nullptr, "order_count", I}});
  int prio = agg.ColIndex("o_orderpriority");
  return SortBy(std::move(agg), {{prio, true}});
}

// Q5: Local Supplier Volume.
Table Q5(const TpchDatabase& db) {
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  int rname = db.region.ColIndex("r_name");
  Table region = Filter(db.region, [rname](const Row& r) {
    return AsString(r[rname]) == "ASIA";
  });
  int odate = db.orders.ColIndex("o_orderdate");
  Table orders = Filter(db.orders, [odate, lo, hi](const Row& r) {
    int64_t d = AsInt(r[odate]);
    return d >= lo && d < hi;
  });
  Table nr = HashJoinOn(db.nation, region, {"n_regionkey"}, {"r_regionkey"});
  Table snr = HashJoinOn(db.supplier, nr, {"s_nationkey"}, {"n_nationkey"});
  Table co = HashJoinOn(db.customer, orders, {"c_custkey"}, {"o_custkey"});
  Table col = HashJoinOn(co, db.lineitem, {"o_orderkey"}, {"l_orderkey"});
  // Join on suppkey AND matching nationkeys (local supplier).
  Table full = HashJoinOn(col, snr, {"l_suppkey", "c_nationkey"},
                          {"s_suppkey", "s_nationkey"});
  Table agg = HashAggregateOn(
      full, {"n_name"}, {{AggKind::kSum, exec::Revenue(full), "revenue", D}});
  int rev = agg.ColIndex("revenue");
  return SortBy(std::move(agg), {{rev, false}});
}

// Q6: Forecasting Revenue Change.
Table Q6(const TpchDatabase& db) {
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  const Table& l = db.lineitem;
  int sdate = l.ColIndex("l_shipdate");
  int disc = l.ColIndex("l_discount");
  int qty = l.ColIndex("l_quantity");
  Table filtered = Filter(l, [=](const Row& r) {
    int64_t d = AsInt(r[sdate]);
    double dc = AsDouble(r[disc]);
    return d >= lo && d < hi && dc >= 0.05 - 1e-9 && dc <= 0.07 + 1e-9 &&
           AsDouble(r[qty]) < 24;
  });
  Expr rev = exec::Mul(Col(filtered, "l_extendedprice"),
                       Col(filtered, "l_discount"));
  return HashAggregateOn(filtered, {},
                         {{AggKind::kSum, rev, "revenue", D}});
}

// Q7: Volume Shipping.
Table Q7(const TpchDatabase& db) {
  DateCode lo = MakeDate(1995, 1, 1);
  DateCode hi = MakeDate(1996, 12, 31);
  int nname = db.nation.ColIndex("n_name");
  Table nations = Filter(db.nation, [nname](const Row& r) {
    const std::string& n = AsString(r[nname]);
    return n == "FRANCE" || n == "GERMANY";
  });
  // supplier with supp_nation, customer with cust_nation.
  Table sn = HashJoinOn(db.supplier, nations, {"s_nationkey"},
                        {"n_nationkey"});
  Table cn = HashJoinOn(db.customer, nations, {"c_nationkey"},
                        {"n_nationkey"});
  int sdate = db.lineitem.ColIndex("l_shipdate");
  Table line = Filter(db.lineitem, [sdate, lo, hi](const Row& r) {
    int64_t d = AsInt(r[sdate]);
    return d >= lo && d <= hi;
  });
  Table ls = HashJoinOn(line, sn, {"l_suppkey"}, {"s_suppkey"});
  Table lso = HashJoinOn(ls, db.orders, {"l_orderkey"}, {"o_orderkey"});
  Table lsoc = HashJoinOn(lso, cn, {"o_custkey"}, {"c_custkey"});
  // n_name from supplier side; the customer's nation arrives as n_name_r.
  int supp_n = lsoc.ColIndex("n_name");
  int cust_n = lsoc.ColIndex("n_name_r");
  Table pairs = Filter(lsoc, [supp_n, cust_n](const Row& r) {
    const std::string& a = AsString(r[supp_n]);
    const std::string& b = AsString(r[cust_n]);
    return (a == "FRANCE" && b == "GERMANY") ||
           (a == "GERMANY" && b == "FRANCE");
  });
  int sd = pairs.ColIndex("l_shipdate");
  Table projected = Project(
      pairs,
      {{"supp_nation", S, Col(pairs, "n_name")},
       {"cust_nation", S, Col(pairs, "n_name_r")},
       {"l_year", I,
        [sd](const Row& r) {
          return Value{static_cast<int64_t>(
              YearOf(static_cast<DateCode>(AsInt(r[sd]))))};
        }},
       {"volume", D, exec::Revenue(pairs)}});
  Table agg = HashAggregateOn(
      projected, {"supp_nation", "cust_nation", "l_year"},
      {{AggKind::kSum, Col(projected, "volume"), "revenue", D}});
  return SortBy(std::move(agg), {{0, true}, {1, true}, {2, true}});
}

// Q8: National Market Share.
Table Q8(const TpchDatabase& db) {
  DateCode lo = MakeDate(1995, 1, 1);
  DateCode hi = MakeDate(1996, 12, 31);
  int ptype = db.part.ColIndex("p_type");
  Table part = Filter(db.part, [ptype](const Row& r) {
    return AsString(r[ptype]) == "ECONOMY ANODIZED STEEL";
  });
  int rname = db.region.ColIndex("r_name");
  Table region = Filter(db.region, [rname](const Row& r) {
    return AsString(r[rname]) == "AMERICA";
  });
  int odate = db.orders.ColIndex("o_orderdate");
  Table orders = Filter(db.orders, [odate, lo, hi](const Row& r) {
    int64_t d = AsInt(r[odate]);
    return d >= lo && d <= hi;
  });
  Table lp = HashJoinOn(db.lineitem, part, {"l_partkey"}, {"p_partkey"});
  Table lpo = HashJoinOn(lp, orders, {"l_orderkey"}, {"o_orderkey"});
  // Customer must be in an AMERICA nation.
  Table nr = HashJoinOn(db.nation, region, {"n_regionkey"}, {"r_regionkey"});
  Table cnr = HashJoinOn(db.customer, nr, {"c_nationkey"}, {"n_nationkey"});
  Table lpoc = HashJoinOn(lpo, cnr, {"o_custkey"}, {"c_custkey"});
  // Supplier nation (any nation) for the share numerator.
  Table sn = HashJoinOn(db.supplier, db.nation, {"s_nationkey"},
                        {"n_nationkey"});
  Table full = HashJoinOn(lpoc, sn, {"l_suppkey"}, {"s_suppkey"});
  int od = full.ColIndex("o_orderdate");
  // After joining nation twice, the supplier's nation name is the later
  // duplicate: n_name from cnr is "n_name", from sn it is "n_name_r".
  Table vol = Project(
      full,
      {{"o_year", I,
        [od](const Row& r) {
          return Value{static_cast<int64_t>(
              YearOf(static_cast<DateCode>(AsInt(r[od]))))};
        }},
       {"volume", D, exec::Revenue(full)},
       {"nation", S, Col(full, "n_name_r")}});
  int nat = vol.ColIndex("nation");
  int volume = vol.ColIndex("volume");
  Expr brazil_vol = [nat, volume](const Row& r) {
    return Value{AsString(r[nat]) == "BRAZIL" ? AsDouble(r[volume]) : 0.0};
  };
  Table agg = HashAggregateOn(
      vol, {"o_year"},
      {{AggKind::kSum, brazil_vol, "brazil_volume", D},
       {AggKind::kSum, Col(vol, "volume"), "total_volume", D}});
  int bv = agg.ColIndex("brazil_volume");
  int tv = agg.ColIndex("total_volume");
  Table share = Project(
      agg, {{"o_year", I, Col(agg, "o_year")},
            {"mkt_share", D, [bv, tv](const Row& r) {
               double t = AsDouble(r[tv]);
               return Value{t > 0 ? AsDouble(r[bv]) / t : 0.0};
             }}});
  return SortBy(std::move(share), {{0, true}});
}

// Q9: Product Type Profit Measure.
Table Q9(const TpchDatabase& db) {
  int pname = db.part.ColIndex("p_name");
  Table part = Filter(db.part, [pname](const Row& r) {
    return StrContains(AsString(r[pname]), "green");
  });
  Table lp = HashJoinOn(db.lineitem, part, {"l_partkey"}, {"p_partkey"});
  Table lps = HashJoinOn(lp, db.partsupp, {"l_partkey", "l_suppkey"},
                         {"ps_partkey", "ps_suppkey"});
  Table lpss = HashJoinOn(lps, db.supplier, {"l_suppkey"}, {"s_suppkey"});
  Table lpssn =
      HashJoinOn(lpss, db.nation, {"s_nationkey"}, {"n_nationkey"});
  Table full = HashJoinOn(lpssn, db.orders, {"l_orderkey"}, {"o_orderkey"});
  int od = full.ColIndex("o_orderdate");
  int price = full.ColIndex("l_extendedprice");
  int disc = full.ColIndex("l_discount");
  int scost = full.ColIndex("ps_supplycost");
  int qty = full.ColIndex("l_quantity");
  Table profit = Project(
      full,
      {{"nation", S, Col(full, "n_name")},
       {"o_year", I,
        [od](const Row& r) {
          return Value{static_cast<int64_t>(
              YearOf(static_cast<DateCode>(AsInt(r[od]))))};
        }},
       {"amount", D, [price, disc, scost, qty](const Row& r) {
          return Value{AsDouble(r[price]) * (1.0 - AsDouble(r[disc])) -
                       AsDouble(r[scost]) * AsDouble(r[qty])};
        }}});
  Table agg = HashAggregateOn(
      profit, {"nation", "o_year"},
      {{AggKind::kSum, Col(profit, "amount"), "sum_profit", D}});
  return SortBy(std::move(agg), {{0, true}, {1, false}});
}

// Q10: Returned Item Reporting.
Table Q10(const TpchDatabase& db) {
  DateCode lo = MakeDate(1993, 10, 1);
  DateCode hi = AddMonths(lo, 3);
  int odate = db.orders.ColIndex("o_orderdate");
  Table orders = Filter(db.orders, [odate, lo, hi](const Row& r) {
    int64_t d = AsInt(r[odate]);
    return d >= lo && d < hi;
  });
  int rf = db.lineitem.ColIndex("l_returnflag");
  Table returned = Filter(db.lineitem, [rf](const Row& r) {
    return AsString(r[rf]) == "R";
  });
  Table co = HashJoinOn(db.customer, orders, {"c_custkey"}, {"o_custkey"});
  Table col = HashJoinOn(co, returned, {"o_orderkey"}, {"l_orderkey"});
  Table coln = HashJoinOn(col, db.nation, {"c_nationkey"}, {"n_nationkey"});
  Table agg = HashAggregateOn(
      coln,
      {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address",
       "c_comment"},
      {{AggKind::kSum, exec::Revenue(coln), "revenue", D}});
  int rev = agg.ColIndex("revenue");
  int ck = agg.ColIndex("c_custkey");
  Table sorted = SortBy(std::move(agg), {{rev, false}, {ck, true}});
  return Limit(std::move(sorted), 20);
}

// Q11: Important Stock Identification.
Table Q11(const TpchDatabase& db) {
  int nname = db.nation.ColIndex("n_name");
  Table nation = Filter(db.nation, [nname](const Row& r) {
    return AsString(r[nname]) == "GERMANY";
  });
  Table sn = HashJoinOn(db.supplier, nation, {"s_nationkey"},
                        {"n_nationkey"});
  Table ps = HashJoinOn(db.partsupp, sn, {"ps_suppkey"}, {"s_suppkey"});
  int cost = ps.ColIndex("ps_supplycost");
  int qty = ps.ColIndex("ps_availqty");
  Expr value = [cost, qty](const Row& r) {
    return Value{AsDouble(r[cost]) * AsDouble(r[qty])};
  };
  Table total =
      HashAggregateOn(ps, {}, {{AggKind::kSum, value, "total", D}});
  double threshold = AsDouble(total.rows()[0][0]) * 0.0001 /
                     std::max(db.scale_factor, 1e-9) *
                     std::min(db.scale_factor, 1.0);
  // The spec fraction is 0.0001/SF; for mini scale factors (<1) we keep
  // the fraction at 0.0001 to avoid empty results.
  Table agg = HashAggregateOn(ps, {"ps_partkey"},
                              {{AggKind::kSum, value, "value", D}});
  int v = agg.ColIndex("value");
  Table filtered = Filter(std::move(agg), [v, threshold](const Row& r) {
    return AsDouble(r[v]) > threshold;
  });
  return SortBy(std::move(filtered), {{v, false}});
}

// Q12: Shipping Modes and Order Priority.
Table Q12(const TpchDatabase& db) {
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  const Table& l = db.lineitem;
  int mode = l.ColIndex("l_shipmode");
  int cdate = l.ColIndex("l_commitdate");
  int rdate = l.ColIndex("l_receiptdate");
  int sdate = l.ColIndex("l_shipdate");
  Table line = Filter(l, [=](const Row& r) {
    const std::string& m = AsString(r[mode]);
    int64_t rd = AsInt(r[rdate]);
    return (m == "MAIL" || m == "SHIP") && AsInt(r[cdate]) < rd &&
           AsInt(r[sdate]) < AsInt(r[cdate]) && rd >= lo && rd < hi;
  });
  Table lo_join = HashJoinOn(line, db.orders, {"l_orderkey"}, {"o_orderkey"});
  int prio = lo_join.ColIndex("o_orderpriority");
  Expr high = [prio](const Row& r) {
    const std::string& p = AsString(r[prio]);
    return Value{p == "1-URGENT" || p == "2-HIGH" ? 1.0 : 0.0};
  };
  Expr low = [prio](const Row& r) {
    const std::string& p = AsString(r[prio]);
    return Value{p != "1-URGENT" && p != "2-HIGH" ? 1.0 : 0.0};
  };
  Table agg = HashAggregateOn(
      lo_join, {"l_shipmode"},
      {{AggKind::kSum, high, "high_line_count", I},
       {AggKind::kSum, low, "low_line_count", I}});
  return SortBy(std::move(agg), {{0, true}});
}

// Q13: Customer Distribution.
Table Q13(const TpchDatabase& db) {
  int comment = db.orders.ColIndex("o_comment");
  Table orders = Filter(db.orders, [comment](const Row& r) {
    const std::string& c = AsString(r[comment]);
    size_t pos = c.find("special");
    return pos == std::string::npos ||
           c.find("requests", pos) == std::string::npos;
  });
  Table co = HashJoinOn(db.customer, orders, {"c_custkey"}, {"o_custkey"},
                        JoinType::kLeftOuter);
  int okey = co.ColIndex("o_orderkey");
  // Outer-join padding gives o_orderkey = 0; real orderkeys start at 1.
  Expr matched = [okey](const Row& r) {
    return Value{AsInt(r[okey]) > 0 ? 1.0 : 0.0};
  };
  Table per_cust = HashAggregateOn(
      co, {"c_custkey"}, {{AggKind::kSum, matched, "c_count", I}});
  Table dist = HashAggregateOn(
      per_cust, {"c_count"}, {{AggKind::kCount, nullptr, "custdist", I}});
  int cd = dist.ColIndex("custdist");
  int cc = dist.ColIndex("c_count");
  return SortBy(std::move(dist), {{cd, false}, {cc, false}});
}

// Q14: Promotion Effect.
Table Q14(const TpchDatabase& db) {
  DateCode lo = MakeDate(1995, 9, 1);
  DateCode hi = AddMonths(lo, 1);
  int sdate = db.lineitem.ColIndex("l_shipdate");
  Table line = Filter(db.lineitem, [sdate, lo, hi](const Row& r) {
    int64_t d = AsInt(r[sdate]);
    return d >= lo && d < hi;
  });
  Table lp = HashJoinOn(line, db.part, {"l_partkey"}, {"p_partkey"});
  int ptype = lp.ColIndex("p_type");
  Expr rev = exec::Revenue(lp);
  Expr promo_rev = [ptype, rev](const Row& r) {
    return Value{StrStartsWith(AsString(r[ptype]), "PROMO")
                     ? AsDouble(rev(r))
                     : 0.0};
  };
  Table agg = HashAggregateOn(lp, {},
                              {{AggKind::kSum, promo_rev, "promo", D},
                               {AggKind::kSum, rev, "total", D}});
  int promo = agg.ColIndex("promo");
  int total = agg.ColIndex("total");
  return Project(agg, {{"promo_revenue", D, [promo, total](const Row& r) {
                          double t = AsDouble(r[total]);
                          return Value{t > 0
                                           ? 100.0 * AsDouble(r[promo]) / t
                                           : 0.0};
                        }}});
}

// Q15: Top Supplier.
Table Q15(const TpchDatabase& db) {
  DateCode lo = MakeDate(1996, 1, 1);
  DateCode hi = AddMonths(lo, 3);
  int sdate = db.lineitem.ColIndex("l_shipdate");
  Table line = Filter(db.lineitem, [sdate, lo, hi](const Row& r) {
    int64_t d = AsInt(r[sdate]);
    return d >= lo && d < hi;
  });
  Table revenue = HashAggregateOn(
      line, {"l_suppkey"},
      {{AggKind::kSum, exec::Revenue(line), "total_revenue", D}});
  Table maxrev = HashAggregateOn(
      revenue, {},
      {{AggKind::kMax, Col(revenue, "total_revenue"), "max_revenue", D}});
  double max_revenue = maxrev.num_rows()
                           ? AsDouble(maxrev.rows()[0][0])
                           : 0.0;
  int tr = revenue.ColIndex("total_revenue");
  Table top = Filter(std::move(revenue), [tr, max_revenue](const Row& r) {
    return AsDouble(r[tr]) >= max_revenue - 1e-6;
  });
  Table joined = HashJoinOn(top, db.supplier, {"l_suppkey"}, {"s_suppkey"});
  Table projected = Project(joined, {{"s_suppkey", I, Col(joined, "s_suppkey")},
                                     {"s_name", S, Col(joined, "s_name")},
                                     {"s_address", S, Col(joined, "s_address")},
                                     {"s_phone", S, Col(joined, "s_phone")},
                                     {"total_revenue", D,
                                      Col(joined, "total_revenue")}});
  return SortBy(std::move(projected), {{0, true}});
}

// Q16: Parts/Supplier Relationship.
Table Q16(const TpchDatabase& db) {
  int brand = db.part.ColIndex("p_brand");
  int ptype = db.part.ColIndex("p_type");
  int psize = db.part.ColIndex("p_size");
  static const int kSizes[] = {49, 14, 23, 45, 19, 3, 36, 9};
  Table part = Filter(db.part, [brand, ptype, psize](const Row& r) {
    if (AsString(r[brand]) == "Brand#45") return false;
    if (StrStartsWith(AsString(r[ptype]), "MEDIUM POLISHED")) return false;
    int64_t s = AsInt(r[psize]);
    for (int k : kSizes) {
      if (s == k) return true;
    }
    return false;
  });
  int comment = db.supplier.ColIndex("s_comment");
  Table bad_suppliers = Filter(db.supplier, [comment](const Row& r) {
    const std::string& c = AsString(r[comment]);
    size_t pos = c.find("Customer");
    return pos != std::string::npos &&
           c.find("Complaints", pos) != std::string::npos;
  });
  Table ps = HashJoinOn(db.partsupp, part, {"ps_partkey"}, {"p_partkey"});
  Table good = HashJoinOn(ps, bad_suppliers, {"ps_suppkey"}, {"s_suppkey"},
                          JoinType::kLeftAnti);
  Table agg = HashAggregateOn(
      good, {"p_brand", "p_type", "p_size"},
      {{AggKind::kCountDistinct, Col(good, "ps_suppkey"), "supplier_cnt",
        I}});
  int cnt = agg.ColIndex("supplier_cnt");
  return SortBy(std::move(agg), {{cnt, false}, {0, true}, {1, true},
                                 {2, true}});
}

// Q17: Small-Quantity-Order Revenue.
Table Q17(const TpchDatabase& db) {
  int brand = db.part.ColIndex("p_brand");
  int cont = db.part.ColIndex("p_container");
  Table part = Filter(db.part, [brand, cont](const Row& r) {
    return AsString(r[brand]) == "Brand#23" &&
           AsString(r[cont]) == "MED BOX";
  });
  Table avg_qty = HashAggregateOn(
      db.lineitem, {"l_partkey"},
      {{AggKind::kAvg, Col(db.lineitem, "l_quantity"), "avg_qty", D}});
  Table lp = HashJoinOn(db.lineitem, part, {"l_partkey"}, {"p_partkey"});
  Table lpa = HashJoinOn(lp, avg_qty, {"l_partkey"}, {"l_partkey"});
  int qty = lpa.ColIndex("l_quantity");
  int avg = lpa.ColIndex("avg_qty");
  Table small = Filter(std::move(lpa), [qty, avg](const Row& r) {
    return AsDouble(r[qty]) < 0.2 * AsDouble(r[avg]);
  });
  Table sum = HashAggregateOn(
      small, {},
      {{AggKind::kSum, Col(small, "l_extendedprice"), "sum_price", D}});
  int sp = sum.ColIndex("sum_price");
  return Project(sum, {{"avg_yearly", D, [sp](const Row& r) {
                          return Value{AsDouble(r[sp]) / 7.0};
                        }}});
}

// Q18: Large Volume Customer.
Table Q18(const TpchDatabase& db) {
  Table qty_per_order = HashAggregateOn(
      db.lineitem, {"l_orderkey"},
      {{AggKind::kSum, Col(db.lineitem, "l_quantity"), "sum_qty", D}});
  int sq = qty_per_order.ColIndex("sum_qty");
  Table big = Filter(std::move(qty_per_order), [sq](const Row& r) {
    return AsDouble(r[sq]) > 300.0;
  });
  Table ob = HashJoinOn(db.orders, big, {"o_orderkey"}, {"l_orderkey"});
  Table obc = HashJoinOn(ob, db.customer, {"o_custkey"}, {"c_custkey"});
  Table projected = Project(
      obc, {{"c_name", S, Col(obc, "c_name")},
            {"c_custkey", I, Col(obc, "c_custkey")},
            {"o_orderkey", I, Col(obc, "o_orderkey")},
            {"o_orderdate", I, Col(obc, "o_orderdate")},
            {"o_totalprice", D, Col(obc, "o_totalprice")},
            {"sum_qty", D, Col(obc, "sum_qty")}});
  Table sorted = SortBy(std::move(projected), {{4, false}, {3, true}});
  return Limit(std::move(sorted), 100);
}

// Q19: Discounted Revenue.
Table Q19(const TpchDatabase& db) {
  Table lp = HashJoinOn(db.lineitem, db.part, {"l_partkey"}, {"p_partkey"});
  int brand = lp.ColIndex("p_brand");
  int cont = lp.ColIndex("p_container");
  int size = lp.ColIndex("p_size");
  int qty = lp.ColIndex("l_quantity");
  int mode = lp.ColIndex("l_shipmode");
  int instr = lp.ColIndex("l_shipinstruct");
  auto in = [](const std::string& s,
               std::initializer_list<const char*> set) {
    for (const char* x : set) {
      if (s == x) return true;
    }
    return false;
  };
  Table matched = Filter(std::move(lp), [=](const Row& r) {
    const std::string& m = AsString(r[mode]);
    if (m != "AIR" && m != "REG AIR") return false;
    if (AsString(r[instr]) != "DELIVER IN PERSON") return false;
    const std::string& b = AsString(r[brand]);
    const std::string& c = AsString(r[cont]);
    double q = AsDouble(r[qty]);
    int64_t s = AsInt(r[size]);
    if (b == "Brand#12" && in(c, {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}) &&
        q >= 1 && q <= 11 && s >= 1 && s <= 5) {
      return true;
    }
    if (b == "Brand#23" &&
        in(c, {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}) && q >= 10 &&
        q <= 20 && s >= 1 && s <= 10) {
      return true;
    }
    if (b == "Brand#34" && in(c, {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}) &&
        q >= 20 && q <= 30 && s >= 1 && s <= 15) {
      return true;
    }
    return false;
  });
  return HashAggregateOn(
      matched, {}, {{AggKind::kSum, exec::Revenue(matched), "revenue", D}});
}

// Q20: Potential Part Promotion.
Table Q20(const TpchDatabase& db) {
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  int pname = db.part.ColIndex("p_name");
  Table part = Filter(db.part, [pname](const Row& r) {
    return StrStartsWith(AsString(r[pname]), "forest");
  });
  int sdate = db.lineitem.ColIndex("l_shipdate");
  Table line = Filter(db.lineitem, [sdate, lo, hi](const Row& r) {
    int64_t d = AsInt(r[sdate]);
    return d >= lo && d < hi;
  });
  Table shipped = HashAggregateOn(
      line, {"l_partkey", "l_suppkey"},
      {{AggKind::kSum, Col(line, "l_quantity"), "shipped_qty", D}});
  Table ps_part =
      HashJoinOn(db.partsupp, part, {"ps_partkey"}, {"p_partkey"});
  Table ps_ship = HashJoinOn(ps_part, shipped, {"ps_partkey", "ps_suppkey"},
                             {"l_partkey", "l_suppkey"});
  int avail = ps_ship.ColIndex("ps_availqty");
  int sqty = ps_ship.ColIndex("shipped_qty");
  Table surplus = Filter(std::move(ps_ship), [avail, sqty](const Row& r) {
    return AsDouble(r[avail]) > 0.5 * AsDouble(r[sqty]);
  });
  int nname = db.nation.ColIndex("n_name");
  Table canada = Filter(db.nation, [nname](const Row& r) {
    return AsString(r[nname]) == "CANADA";
  });
  Table sn = HashJoinOn(db.supplier, canada, {"s_nationkey"},
                        {"n_nationkey"});
  Table qualified = HashJoinOn(sn, surplus, {"s_suppkey"}, {"ps_suppkey"},
                               JoinType::kLeftSemi);
  Table projected = Project(qualified,
                            {{"s_name", S, Col(qualified, "s_name")},
                             {"s_address", S, Col(qualified, "s_address")}});
  return SortBy(std::move(projected), {{0, true}});
}

// Q21: Suppliers Who Kept Orders Waiting.
Table Q21(const TpchDatabase& db) {
  // For each multi-supplier order with status 'F': find lineitems whose
  // supplier was the ONLY late supplier on the order.
  int nname = db.nation.ColIndex("n_name");
  Table saudi = Filter(db.nation, [nname](const Row& r) {
    return AsString(r[nname]) == "SAUDI ARABIA";
  });
  Table sn = HashJoinOn(db.supplier, saudi, {"s_nationkey"},
                        {"n_nationkey"});

  int ostatus = db.orders.ColIndex("o_orderstatus");
  Table forders = Filter(db.orders, [ostatus](const Row& r) {
    return AsString(r[ostatus]) == "F";
  });

  // Build per-order supplier sets and late-supplier sets.
  const Table& l = db.lineitem;
  int okey = l.ColIndex("l_orderkey");
  int skey = l.ColIndex("l_suppkey");
  int cdate = l.ColIndex("l_commitdate");
  int rdate = l.ColIndex("l_receiptdate");
  std::unordered_map<int64_t, std::unordered_set<int64_t>> suppliers;
  std::unordered_map<int64_t, std::unordered_set<int64_t>> late;
  for (const Row& r : l.rows()) {
    int64_t o = AsInt(r[okey]);
    int64_t s = AsInt(r[skey]);
    suppliers[o].insert(s);
    if (AsInt(r[rdate]) > AsInt(r[cdate])) late[o].insert(s);
  }

  std::unordered_set<int64_t> f_orders;
  int fokey = forders.ColIndex("o_orderkey");
  for (const Row& r : forders.rows()) f_orders.insert(AsInt(r[fokey]));

  // Qualifying (orderkey, suppkey) pairs.
  Table pairs(
      {{"l_orderkey", exec::ValueType::kInt},
       {"l_suppkey", exec::ValueType::kInt}});
  for (const auto& [o, late_set] : late) {
    if (!f_orders.count(o)) continue;
    const auto& supp_set = suppliers.at(o);
    if (supp_set.size() < 2) continue;  // needs another supplier
    if (late_set.size() != 1) continue;  // no OTHER late supplier
    pairs.AddRow({Value{o}, Value{*late_set.begin()}});
  }

  Table named = HashJoinOn(pairs, sn, {"l_suppkey"}, {"s_suppkey"});
  Table agg = HashAggregateOn(
      named, {"s_name"}, {{AggKind::kCount, nullptr, "numwait", I}});
  int nw = agg.ColIndex("numwait");
  Table sorted = SortBy(std::move(agg), {{nw, false}, {0, true}});
  return Limit(std::move(sorted), 100);
}

// Q22: Global Sales Opportunity.
Table Q22(const TpchDatabase& db) {
  static const char* kCodes[] = {"13", "31", "23", "29", "30", "18", "17"};
  int phone = db.customer.ColIndex("c_phone");
  int bal = db.customer.ColIndex("c_acctbal");
  auto code_of = [phone](const Row& r) {
    return AsString(r[phone]).substr(0, 2);
  };
  auto in_codes = [&code_of](const Row& r) {
    std::string c = code_of(r);
    for (const char* k : kCodes) {
      if (c == k) return true;
    }
    return false;
  };
  Table candidates = Filter(db.customer, in_codes);
  // Average positive balance among candidates.
  Table positive = Filter(candidates, [bal](const Row& r) {
    return AsDouble(r[bal]) > 0.0;
  });
  Table avg_t = HashAggregateOn(
      positive, {}, {{AggKind::kAvg, Col(positive, "c_acctbal"), "a", D}});
  double avg_bal = AsDouble(avg_t.rows()[0][0]);
  Table rich = Filter(std::move(candidates), [bal, avg_bal](const Row& r) {
    return AsDouble(r[bal]) > avg_bal;
  });
  Table no_orders = HashJoinOn(rich, db.orders, {"c_custkey"}, {"o_custkey"},
                               JoinType::kLeftAnti);
  Table coded = Project(
      no_orders, {{"cntrycode", S,
                   [phone](const Row& r) {
                     return Value{AsString(r[phone]).substr(0, 2)};
                   }},
                  {"c_acctbal", D, Col(no_orders, "c_acctbal")}});
  Table agg = HashAggregateOn(
      coded, {"cntrycode"},
      {{AggKind::kCount, nullptr, "numcust", I},
       {AggKind::kSum, Col(coded, "c_acctbal"), "totacctbal", D}});
  return SortBy(std::move(agg), {{0, true}});
}

}  // namespace

const char* QueryName(int q) {
  static const char* kNames[] = {
      "Pricing Summary Report",
      "Minimum Cost Supplier",
      "Shipping Priority",
      "Order Priority Checking",
      "Local Supplier Volume",
      "Forecasting Revenue Change",
      "Volume Shipping",
      "National Market Share",
      "Product Type Profit Measure",
      "Returned Item Reporting",
      "Important Stock Identification",
      "Shipping Modes and Order Priority",
      "Customer Distribution",
      "Promotion Effect",
      "Top Supplier",
      "Parts/Supplier Relationship",
      "Small-Quantity-Order Revenue",
      "Large Volume Customer",
      "Discounted Revenue",
      "Potential Part Promotion",
      "Suppliers Who Kept Orders Waiting",
      "Global Sales Opportunity"};
  ELEPHANT_CHECK(q >= 1 && q <= kNumQueries) << "query " << q;
  return kNames[q - 1];
}

exec::Table RunQuery(int q, const TpchDatabase& db) {
  switch (q) {
    case 1:
      return Q1(db);
    case 2:
      return Q2(db);
    case 3:
      return Q3(db);
    case 4:
      return Q4(db);
    case 5:
      return Q5(db);
    case 6:
      return Q6(db);
    case 7:
      return Q7(db);
    case 8:
      return Q8(db);
    case 9:
      return Q9(db);
    case 10:
      return Q10(db);
    case 11:
      return Q11(db);
    case 12:
      return Q12(db);
    case 13:
      return Q13(db);
    case 14:
      return Q14(db);
    case 15:
      return Q15(db);
    case 16:
      return Q16(db);
    case 17:
      return Q17(db);
    case 18:
      return Q18(db);
    case 19:
      return Q19(db);
    case 20:
      return Q20(db);
    case 21:
      return Q21(db);
    case 22:
      return Q22(db);
    default:
      ELEPHANT_CHECK(false) << "query " << q << " out of range";
      return exec::Table();
  }
}

std::vector<TableId> QueryInputTables(int q) {
  using T = TableId;
  switch (q) {
    case 1:
      return {T::kLineitem};
    case 2:
      return {T::kPart, T::kSupplier, T::kPartsupp, T::kNation, T::kRegion};
    case 3:
      return {T::kCustomer, T::kOrders, T::kLineitem};
    case 4:
      return {T::kOrders, T::kLineitem};
    case 5:
      return {T::kCustomer, T::kOrders, T::kLineitem, T::kSupplier,
              T::kNation, T::kRegion};
    case 6:
      return {T::kLineitem};
    case 7:
      return {T::kSupplier, T::kLineitem, T::kOrders, T::kCustomer,
              T::kNation};
    case 8:
      return {T::kPart,   T::kSupplier, T::kLineitem, T::kOrders,
              T::kCustomer, T::kNation, T::kRegion};
    case 9:
      return {T::kPart, T::kSupplier, T::kLineitem, T::kPartsupp,
              T::kOrders, T::kNation};
    case 10:
      return {T::kCustomer, T::kOrders, T::kLineitem, T::kNation};
    case 11:
      return {T::kPartsupp, T::kSupplier, T::kNation};
    case 12:
      return {T::kOrders, T::kLineitem};
    case 13:
      return {T::kCustomer, T::kOrders};
    case 14:
      return {T::kLineitem, T::kPart};
    case 15:
      return {T::kSupplier, T::kLineitem};
    case 16:
      return {T::kPartsupp, T::kPart, T::kSupplier};
    case 17:
      return {T::kLineitem, T::kPart};
    case 18:
      return {T::kCustomer, T::kOrders, T::kLineitem};
    case 19:
      return {T::kLineitem, T::kPart};
    case 20:
      return {T::kSupplier, T::kNation, T::kPartsupp, T::kPart,
              T::kLineitem};
    case 21:
      return {T::kSupplier, T::kLineitem, T::kOrders, T::kNation};
    case 22:
      return {T::kCustomer, T::kOrders};
    default:
      return {};
  }
}

}  // namespace elephant::tpch
