#include "tpch/queries.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/date.h"
#include "common/check.h"
#include "exec/fused.h"
#include "exec/operators.h"

namespace elephant::tpch {

namespace {

using exec::AggExpr;
using exec::AggKind;
using exec::AsDouble;
using exec::AsInt;
using exec::AsString;
using exec::CodeEquals;
using exec::CodeMatch;
using exec::Col;
using exec::ColAgg;
using exec::ColAtLeast;
using exec::ColEquals;
using exec::ColLess;
using exec::ColRange;
using exec::CopyCol;
using exec::CopyColAs;
using exec::CountAgg;
using exec::DoubleExprCol;
using exec::Expr;
using exec::Filter;
using exec::FusedAggregate;
using exec::FusedFilter;
using exec::HashAggregateOn;
using exec::HashJoinOn;
using exec::IndexPredicate;
using exec::IntExprCol;
using exec::ScanSpec;
using exec::SpecOf;
using exec::JoinType;
using exec::Limit;
using exec::NamedExpr;
using exec::Project;
using exec::ProjectColumns;
using exec::Row;
using exec::SortBy;
using exec::SortKey;
using exec::StrExprCol;
using exec::StringPool;
using exec::Table;
using exec::Value;
using exec::ValueType;
using exec::VecAgg;

constexpr ValueType I = ValueType::kInt;
constexpr ValueType D = ValueType::kDouble;
constexpr ValueType S = ValueType::kString;

bool StrContains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

bool StrStartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool StrEndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---- Typed column access helpers ----------------------------------------
//
// The plans below read raw column storage (ints/doubles/dictionary
// codes) and filter through index predicates, so the hot loops never
// materialize Row vectors or dispatch on Value variants. String
// predicates are evaluated once per distinct dictionary entry
// (MatchCodes) or collapsed to a code comparison (CodeFor).

const std::vector<int64_t>& Ints(const Table& t, const char* col) {
  return t.IntData(t.ColIndex(col));
}

const std::vector<double>& Dbls(const Table& t, const char* col) {
  return t.DoubleData(t.ColIndex(col));
}

const std::vector<uint32_t>& Codes(const Table& t, const char* col) {
  return t.StrCodes(t.ColIndex(col));
}

/// Per-dictionary-code match table: evaluates `pred` once per distinct
/// string in `t`'s pool instead of once per row.
template <typename Pred>
std::vector<char> MatchCodes(const Table& t, Pred pred) {
  const StringPool& pool = t.pool();
  std::vector<char> m(pool.size());
  for (uint32_t c = 0; c < m.size(); ++c) {
    m[c] = pred(pool.Get(c)) ? 1 : 0;
  }
  return m;
}

/// Typed revenue generator: l_extendedprice * (1 - l_discount), the
/// same arithmetic (and rounding) as exec::Revenue's row expression.
std::function<double(size_t)> RevenueAt(const Table& t) {
  const double* price = Dbls(t, "l_extendedprice").data();
  const double* disc = Dbls(t, "l_discount").data();
  return [price, disc](size_t i) { return price[i] * (1.0 - disc[i]); };
}

// Q1: Pricing Summary Report.
Table Q1(const TpchDatabase& db) {
  DateCode cutoff = MakeDate(1998, 12, 1) - 90;
  const Table& l = db.lineitem;
  // Fused scan -> filter -> aggregate: the aggregate factory binds its
  // column pointers to whichever table the pipeline actually reads
  // (the base table on the fused path, the filtered copy on the
  // oracle path).
  Table agg = FusedAggregate(
      l, SpecOf(ColLess(l, "l_shipdate", cutoff, /*strict=*/false)),
      {"l_returnflag", "l_linestatus"}, [](const Table& t) {
        const double* price = Dbls(t, "l_extendedprice").data();
        const double* disc = Dbls(t, "l_discount").data();
        const double* tax = Dbls(t, "l_tax").data();
        return std::vector<AggExpr>{
            ColAgg(AggKind::kSum, t, "l_quantity", "sum_qty", D),
            ColAgg(AggKind::kSum, t, "l_extendedprice", "sum_base_price", D),
            VecAgg(AggKind::kSum, "sum_disc_price", D,
                   [price, disc](size_t i) {
                     return price[i] * (1.0 - disc[i]);
                   }),
            VecAgg(AggKind::kSum, "sum_charge", D,
                   [price, disc, tax](size_t i) {
                     return (price[i] * (1.0 - disc[i])) * (1.0 + tax[i]);
                   }),
            ColAgg(AggKind::kAvg, t, "l_quantity", "avg_qty", D),
            ColAgg(AggKind::kAvg, t, "l_extendedprice", "avg_price", D),
            ColAgg(AggKind::kAvg, t, "l_discount", "avg_disc", D),
            CountAgg("count_order")};
      });
  int rf = agg.ColIndex("l_returnflag");
  int ls = agg.ColIndex("l_linestatus");
  return SortBy(std::move(agg), {{rf, true}, {ls, true}});
}

// Q2: Minimum Cost Supplier.
Table Q2(const TpchDatabase& db) {
  ScanSpec part_spec = SpecOf(ColEquals(db.part, "p_size", 15));
  part_spec.codes.push_back(CodeMatch(
      db.part, "p_type",
      [](const std::string& s) { return StrEndsWith(s, "BRASS"); }));
  Table part = FusedFilter(db.part, part_spec);
  Table region =
      FusedFilter(db.region, SpecOf(CodeEquals(db.region, "r_name",
                                               "EUROPE")));
  // Suppliers in EUROPE with nation info.
  Table nr = HashJoinOn(db.nation, region, {"n_regionkey"}, {"r_regionkey"});
  Table snr = HashJoinOn(db.supplier, nr, {"s_nationkey"}, {"n_nationkey"});
  // All (part, europe-supplier) offers.
  Table offers = HashJoinOn(db.partsupp, snr, {"ps_suppkey"}, {"s_suppkey"});
  // Min supply cost per part over European suppliers.
  Table mincost =
      HashAggregateOn(offers, {"ps_partkey"},
                      {ColAgg(AggKind::kMin, offers, "ps_supplycost",
                              "min_cost", D)});
  // Offers matching the min cost, restricted to the selected parts.
  Table with_min =
      HashJoinOn(offers, mincost, {"ps_partkey"}, {"ps_partkey"});
  const double* cost = Dbls(with_min, "ps_supplycost").data();
  const double* minc = Dbls(with_min, "min_cost").data();
  Table best = Filter(with_min, IndexPredicate([cost, minc](size_t i) {
                        return cost[i] == minc[i];
                      }));
  Table joined = HashJoinOn(best, part, {"ps_partkey"}, {"p_partkey"});
  Table projected = ProjectColumns(
      joined,
      {CopyCol(joined, "s_acctbal"), CopyCol(joined, "s_name"),
       CopyCol(joined, "n_name"), CopyCol(joined, "p_partkey"),
       CopyCol(joined, "p_mfgr"), CopyCol(joined, "s_address"),
       CopyCol(joined, "s_phone"), CopyCol(joined, "s_comment")});
  Table sorted = SortBy(std::move(projected), {{0, false}, {2, true},
                                               {1, true}, {3, true}});
  return Limit(std::move(sorted), 100);
}

// Q3: Shipping Priority.
Table Q3(const TpchDatabase& db) {
  DateCode pivot = MakeDate(1995, 3, 15);
  Table cust = FusedFilter(
      db.customer,
      SpecOf(CodeEquals(db.customer, "c_mktsegment", "BUILDING")));
  Table orders = FusedFilter(
      db.orders, SpecOf(ColLess(db.orders, "o_orderdate", pivot)));
  Table line = FusedFilter(
      db.lineitem,
      SpecOf(ColAtLeast(db.lineitem, "l_shipdate", pivot, /*strict=*/true)));
  Table co = HashJoinOn(cust, orders, {"c_custkey"}, {"o_custkey"});
  Table col = HashJoinOn(co, line, {"o_orderkey"}, {"l_orderkey"});
  Table agg = HashAggregateOn(
      col, {"l_orderkey", "o_orderdate", "o_shippriority"},
      {VecAgg(AggKind::kSum, "revenue", D, RevenueAt(col))});
  int rev = agg.ColIndex("revenue");
  int od = agg.ColIndex("o_orderdate");
  Table sorted = SortBy(std::move(agg), {{rev, false}, {od, true}});
  return Limit(std::move(sorted), 10);
}

// Q4: Order Priority Checking.
Table Q4(const TpchDatabase& db) {
  DateCode lo = MakeDate(1993, 7, 1);
  DateCode hi = AddMonths(lo, 3);
  Table orders = FusedFilter(
      db.orders, SpecOf(ColRange(db.orders, "o_orderdate", lo, hi,
                                 /*lo_strict=*/false, /*hi_strict=*/true)));
  // Cross-column predicate: nothing for zone maps to prune on, so the
  // plain columnar filter stays.
  const int64_t* cdate = Ints(db.lineitem, "l_commitdate").data();
  const int64_t* rdate = Ints(db.lineitem, "l_receiptdate").data();
  Table late = Filter(db.lineitem, IndexPredicate([cdate, rdate](size_t i) {
                        return cdate[i] < rdate[i];
                      }));
  Table semi =
      HashJoinOn(orders, late, {"o_orderkey"}, {"l_orderkey"},
                 JoinType::kLeftSemi);
  Table agg = HashAggregateOn(semi, {"o_orderpriority"},
                              {CountAgg("order_count")});
  int prio = agg.ColIndex("o_orderpriority");
  return SortBy(std::move(agg), {{prio, true}});
}

// Q5: Local Supplier Volume.
Table Q5(const TpchDatabase& db) {
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  Table region = FusedFilter(
      db.region, SpecOf(CodeEquals(db.region, "r_name", "ASIA")));
  Table orders = FusedFilter(
      db.orders, SpecOf(ColRange(db.orders, "o_orderdate", lo, hi,
                                 /*lo_strict=*/false, /*hi_strict=*/true)));
  Table nr = HashJoinOn(db.nation, region, {"n_regionkey"}, {"r_regionkey"});
  Table snr = HashJoinOn(db.supplier, nr, {"s_nationkey"}, {"n_nationkey"});
  Table co = HashJoinOn(db.customer, orders, {"c_custkey"}, {"o_custkey"});
  Table col = HashJoinOn(co, db.lineitem, {"o_orderkey"}, {"l_orderkey"});
  // Join on suppkey AND matching nationkeys (local supplier).
  Table full = HashJoinOn(col, snr, {"l_suppkey", "c_nationkey"},
                          {"s_suppkey", "s_nationkey"});
  Table agg = HashAggregateOn(
      full, {"n_name"}, {VecAgg(AggKind::kSum, "revenue", D, RevenueAt(full))});
  int rev = agg.ColIndex("revenue");
  return SortBy(std::move(agg), {{rev, false}});
}

// Q6: Forecasting Revenue Change.
Table Q6(const TpchDatabase& db) {
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  const Table& l = db.lineitem;
  ScanSpec spec;
  spec.ranges.push_back(ColRange(l, "l_shipdate", lo, hi,
                                 /*lo_strict=*/false, /*hi_strict=*/true));
  spec.ranges.push_back(
      ColRange(l, "l_discount", 0.05 - 1e-9, 0.07 + 1e-9));
  spec.ranges.push_back(ColLess(l, "l_quantity", 24.0, /*strict=*/true));
  return FusedAggregate(l, spec, {}, [](const Table& t) {
    const double* price = Dbls(t, "l_extendedprice").data();
    const double* disc = Dbls(t, "l_discount").data();
    return std::vector<AggExpr>{
        VecAgg(AggKind::kSum, "revenue", D, [price, disc](size_t i) {
          return price[i] * disc[i];
        })};
  });
}

// Q7: Volume Shipping.
Table Q7(const TpchDatabase& db) {
  DateCode lo = MakeDate(1995, 1, 1);
  DateCode hi = MakeDate(1996, 12, 31);
  Table nations = FusedFilter(
      db.nation, SpecOf(CodeMatch(db.nation, "n_name",
                                  [](const std::string& s) {
                                    return s == "FRANCE" || s == "GERMANY";
                                  })));
  // supplier with supp_nation, customer with cust_nation.
  Table sn = HashJoinOn(db.supplier, nations, {"s_nationkey"},
                        {"n_nationkey"});
  Table cn = HashJoinOn(db.customer, nations, {"c_nationkey"},
                        {"n_nationkey"});
  Table line = FusedFilter(
      db.lineitem, SpecOf(ColRange(db.lineitem, "l_shipdate", lo, hi)));
  Table ls = HashJoinOn(line, sn, {"l_suppkey"}, {"s_suppkey"});
  Table lso = HashJoinOn(ls, db.orders, {"l_orderkey"}, {"o_orderkey"});
  Table lsoc = HashJoinOn(lso, cn, {"o_custkey"}, {"c_custkey"});
  // n_name from supplier side; the customer's nation arrives as n_name_r.
  const uint32_t* supp_n = Codes(lsoc, "n_name").data();
  const uint32_t* cust_n = Codes(lsoc, "n_name_r").data();
  uint32_t fr = lsoc.CodeFor("FRANCE");
  uint32_t de = lsoc.CodeFor("GERMANY");
  Table pairs = Filter(lsoc, IndexPredicate([=](size_t i) {
                         return (supp_n[i] == fr && cust_n[i] == de) ||
                                (supp_n[i] == de && cust_n[i] == fr);
                       }));
  const int64_t* sd = Ints(pairs, "l_shipdate").data();
  Table projected = ProjectColumns(
      pairs,
      {CopyColAs(pairs, "n_name", "supp_nation"),
       CopyColAs(pairs, "n_name_r", "cust_nation"),
       IntExprCol("l_year",
                  [sd](size_t i) {
                    return static_cast<int64_t>(
                        YearOf(static_cast<DateCode>(sd[i])));
                  }),
       DoubleExprCol("volume", RevenueAt(pairs))});
  Table agg = HashAggregateOn(
      projected, {"supp_nation", "cust_nation", "l_year"},
      {ColAgg(AggKind::kSum, projected, "volume", "revenue", D)});
  return SortBy(std::move(agg), {{0, true}, {1, true}, {2, true}});
}

// Q8: National Market Share.
Table Q8(const TpchDatabase& db) {
  DateCode lo = MakeDate(1995, 1, 1);
  DateCode hi = MakeDate(1996, 12, 31);
  Table part = FusedFilter(
      db.part,
      SpecOf(CodeEquals(db.part, "p_type", "ECONOMY ANODIZED STEEL")));
  Table region = FusedFilter(
      db.region, SpecOf(CodeEquals(db.region, "r_name", "AMERICA")));
  Table orders = FusedFilter(
      db.orders, SpecOf(ColRange(db.orders, "o_orderdate", lo, hi)));
  Table lp = HashJoinOn(db.lineitem, part, {"l_partkey"}, {"p_partkey"});
  Table lpo = HashJoinOn(lp, orders, {"l_orderkey"}, {"o_orderkey"});
  // Customer must be in an AMERICA nation.
  Table nr = HashJoinOn(db.nation, region, {"n_regionkey"}, {"r_regionkey"});
  Table cnr = HashJoinOn(db.customer, nr, {"c_nationkey"}, {"n_nationkey"});
  Table lpoc = HashJoinOn(lpo, cnr, {"o_custkey"}, {"c_custkey"});
  // Supplier nation (any nation) for the share numerator.
  Table sn = HashJoinOn(db.supplier, db.nation, {"s_nationkey"},
                        {"n_nationkey"});
  Table full = HashJoinOn(lpoc, sn, {"l_suppkey"}, {"s_suppkey"});
  const int64_t* od = Ints(full, "o_orderdate").data();
  // After joining nation twice, the supplier's nation name is the later
  // duplicate: n_name from cnr is "n_name", from sn it is "n_name_r".
  Table vol = ProjectColumns(
      full,
      {IntExprCol("o_year",
                  [od](size_t i) {
                    return static_cast<int64_t>(
                        YearOf(static_cast<DateCode>(od[i])));
                  }),
       DoubleExprCol("volume", RevenueAt(full)),
       CopyColAs(full, "n_name_r", "nation")});
  const uint32_t* nat = Codes(vol, "nation").data();
  const double* volume = Dbls(vol, "volume").data();
  uint32_t brazil = vol.CodeFor("BRAZIL");
  Table agg = HashAggregateOn(
      vol, {"o_year"},
      {VecAgg(AggKind::kSum, "brazil_volume", D,
              [nat, volume, brazil](size_t i) {
                return nat[i] == brazil ? volume[i] : 0.0;
              }),
       ColAgg(AggKind::kSum, vol, "volume", "total_volume", D)});
  const double* bv = Dbls(agg, "brazil_volume").data();
  const double* tv = Dbls(agg, "total_volume").data();
  Table share = ProjectColumns(
      agg, {CopyCol(agg, "o_year"),
            DoubleExprCol("mkt_share", [bv, tv](size_t i) {
              double t = tv[i];
              return t > 0 ? bv[i] / t : 0.0;
            })});
  return SortBy(std::move(share), {{0, true}});
}

// Q9: Product Type Profit Measure.
Table Q9(const TpchDatabase& db) {
  Table part = FusedFilter(
      db.part, SpecOf(CodeMatch(db.part, "p_name", [](const std::string& s) {
        return StrContains(s, "green");
      })));
  Table lp = HashJoinOn(db.lineitem, part, {"l_partkey"}, {"p_partkey"});
  Table lps = HashJoinOn(lp, db.partsupp, {"l_partkey", "l_suppkey"},
                         {"ps_partkey", "ps_suppkey"});
  Table lpss = HashJoinOn(lps, db.supplier, {"l_suppkey"}, {"s_suppkey"});
  Table lpssn =
      HashJoinOn(lpss, db.nation, {"s_nationkey"}, {"n_nationkey"});
  Table full = HashJoinOn(lpssn, db.orders, {"l_orderkey"}, {"o_orderkey"});
  const int64_t* od = Ints(full, "o_orderdate").data();
  const double* price = Dbls(full, "l_extendedprice").data();
  const double* disc = Dbls(full, "l_discount").data();
  const double* scost = Dbls(full, "ps_supplycost").data();
  const double* qty = Dbls(full, "l_quantity").data();
  Table profit = ProjectColumns(
      full,
      {CopyColAs(full, "n_name", "nation"),
       IntExprCol("o_year",
                  [od](size_t i) {
                    return static_cast<int64_t>(
                        YearOf(static_cast<DateCode>(od[i])));
                  }),
       DoubleExprCol("amount", [price, disc, scost, qty](size_t i) {
         return price[i] * (1.0 - disc[i]) - scost[i] * qty[i];
       })});
  Table agg = HashAggregateOn(
      profit, {"nation", "o_year"},
      {ColAgg(AggKind::kSum, profit, "amount", "sum_profit", D)});
  return SortBy(std::move(agg), {{0, true}, {1, false}});
}

// Q10: Returned Item Reporting.
Table Q10(const TpchDatabase& db) {
  DateCode lo = MakeDate(1993, 10, 1);
  DateCode hi = AddMonths(lo, 3);
  Table orders = FusedFilter(
      db.orders, SpecOf(ColRange(db.orders, "o_orderdate", lo, hi,
                                 /*lo_strict=*/false, /*hi_strict=*/true)));
  Table returned = FusedFilter(
      db.lineitem, SpecOf(CodeEquals(db.lineitem, "l_returnflag", "R")));
  Table co = HashJoinOn(db.customer, orders, {"c_custkey"}, {"o_custkey"});
  Table col = HashJoinOn(co, returned, {"o_orderkey"}, {"l_orderkey"});
  Table coln = HashJoinOn(col, db.nation, {"c_nationkey"}, {"n_nationkey"});
  Table agg = HashAggregateOn(
      coln,
      {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address",
       "c_comment"},
      {VecAgg(AggKind::kSum, "revenue", D, RevenueAt(coln))});
  int rev = agg.ColIndex("revenue");
  int ck = agg.ColIndex("c_custkey");
  Table sorted = SortBy(std::move(agg), {{rev, false}, {ck, true}});
  return Limit(std::move(sorted), 20);
}

// Q11: Important Stock Identification.
Table Q11(const TpchDatabase& db) {
  Table nation = FusedFilter(
      db.nation, SpecOf(CodeEquals(db.nation, "n_name", "GERMANY")));
  Table sn = HashJoinOn(db.supplier, nation, {"s_nationkey"},
                        {"n_nationkey"});
  Table ps = HashJoinOn(db.partsupp, sn, {"ps_suppkey"}, {"s_suppkey"});
  const double* cost = Dbls(ps, "ps_supplycost").data();
  const int64_t* qty = Ints(ps, "ps_availqty").data();
  auto value = [cost, qty](size_t i) {
    return cost[i] * static_cast<double>(qty[i]);
  };
  Table total =
      HashAggregateOn(ps, {}, {VecAgg(AggKind::kSum, "total", D, value)});
  double threshold = total.DoubleData(0)[0] * 0.0001 /
                     std::max(db.scale_factor, 1e-9) *
                     std::min(db.scale_factor, 1.0);
  // The spec fraction is 0.0001/SF; for mini scale factors (<1) we keep
  // the fraction at 0.0001 to avoid empty results.
  Table agg = HashAggregateOn(ps, {"ps_partkey"},
                              {VecAgg(AggKind::kSum, "value", D, value)});
  int v = agg.ColIndex("value");
  const double* vals = Dbls(agg, "value").data();
  Table filtered =
      Filter(std::move(agg), IndexPredicate([vals, threshold](size_t i) {
               return vals[i] > threshold;
             }));
  return SortBy(std::move(filtered), {{v, false}});
}

// Q12: Shipping Modes and Order Priority.
Table Q12(const TpchDatabase& db) {
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  const Table& l = db.lineitem;
  const int64_t* cdate = Ints(l, "l_commitdate").data();
  const int64_t* sdate = Ints(l, "l_shipdate").data();
  // Declared constraints (ship mode set, receipt-date window) prune and
  // order; the cross-column date comparisons ride along as a residual.
  ScanSpec spec = SpecOf(ColRange(l, "l_receiptdate", lo, hi,
                                  /*lo_strict=*/false, /*hi_strict=*/true));
  spec.codes.push_back(
      CodeMatch(l, "l_shipmode", [](const std::string& s) {
        return s == "MAIL" || s == "SHIP";
      }));
  const int64_t* rdate = Ints(l, "l_receiptdate").data();
  spec.residual = [cdate, rdate, sdate](size_t i) {
    return cdate[i] < rdate[i] && sdate[i] < cdate[i];
  };
  Table line = FusedFilter(l, spec);
  Table lo_join = HashJoinOn(line, db.orders, {"l_orderkey"}, {"o_orderkey"});
  const uint32_t* prio = Codes(lo_join, "o_orderpriority").data();
  uint32_t urgent = lo_join.CodeFor("1-URGENT");
  uint32_t high_p = lo_join.CodeFor("2-HIGH");
  Table agg = HashAggregateOn(
      lo_join, {"l_shipmode"},
      {VecAgg(AggKind::kSum, "high_line_count", I,
              [prio, urgent, high_p](size_t i) {
                return prio[i] == urgent || prio[i] == high_p ? 1.0 : 0.0;
              }),
       VecAgg(AggKind::kSum, "low_line_count", I,
              [prio, urgent, high_p](size_t i) {
                return prio[i] != urgent && prio[i] != high_p ? 1.0 : 0.0;
              })});
  return SortBy(std::move(agg), {{0, true}});
}

// Q13: Customer Distribution.
Table Q13(const TpchDatabase& db) {
  Table orders = FusedFilter(
      db.orders,
      SpecOf(CodeMatch(db.orders, "o_comment", [](const std::string& c) {
        size_t pos = c.find("special");
        return pos == std::string::npos ||
               c.find("requests", pos) == std::string::npos;
      })));
  Table co = HashJoinOn(db.customer, orders, {"c_custkey"}, {"o_custkey"},
                        JoinType::kLeftOuter);
  const int64_t* okey = Ints(co, "o_orderkey").data();
  // Outer-join padding gives o_orderkey = 0; real orderkeys start at 1.
  Table per_cust = HashAggregateOn(
      co, {"c_custkey"},
      {VecAgg(AggKind::kSum, "c_count", I, [okey](size_t i) {
        return okey[i] > 0 ? 1.0 : 0.0;
      })});
  Table dist = HashAggregateOn(per_cust, {"c_count"},
                               {CountAgg("custdist")});
  int cd = dist.ColIndex("custdist");
  int cc = dist.ColIndex("c_count");
  return SortBy(std::move(dist), {{cd, false}, {cc, false}});
}

// Q14: Promotion Effect.
Table Q14(const TpchDatabase& db) {
  DateCode lo = MakeDate(1995, 9, 1);
  DateCode hi = AddMonths(lo, 1);
  Table line = FusedFilter(
      db.lineitem, SpecOf(ColRange(db.lineitem, "l_shipdate", lo, hi,
                                   /*lo_strict=*/false, /*hi_strict=*/true)));
  Table lp = HashJoinOn(line, db.part, {"l_partkey"}, {"p_partkey"});
  const uint32_t* ptype = Codes(lp, "p_type").data();
  std::vector<char> promo = MatchCodes(lp, [](const std::string& s) {
    return StrStartsWith(s, "PROMO");
  });
  auto rev = RevenueAt(lp);
  Table agg = HashAggregateOn(
      lp, {},
      {VecAgg(AggKind::kSum, "promo", D,
              [&promo, ptype, rev](size_t i) {
                return promo[ptype[i]] ? rev(i) : 0.0;
              }),
       VecAgg(AggKind::kSum, "total", D, rev)});
  const double* pr = Dbls(agg, "promo").data();
  const double* tot = Dbls(agg, "total").data();
  return ProjectColumns(
      agg, {DoubleExprCol("promo_revenue", [pr, tot](size_t i) {
        double t = tot[i];
        return t > 0 ? 100.0 * pr[i] / t : 0.0;
      })});
}

// Q15: Top Supplier.
Table Q15(const TpchDatabase& db) {
  DateCode lo = MakeDate(1996, 1, 1);
  DateCode hi = AddMonths(lo, 3);
  // Fused filter -> aggregate chain: the filtered lineitem never
  // materializes on the fused path.
  Table revenue = FusedAggregate(
      db.lineitem,
      SpecOf(ColRange(db.lineitem, "l_shipdate", lo, hi,
                      /*lo_strict=*/false, /*hi_strict=*/true)),
      {"l_suppkey"}, [](const Table& t) {
        return std::vector<AggExpr>{
            VecAgg(AggKind::kSum, "total_revenue", D, RevenueAt(t))};
      });
  Table maxrev = HashAggregateOn(
      revenue, {},
      {ColAgg(AggKind::kMax, revenue, "total_revenue", "max_revenue", D)});
  double max_revenue = maxrev.num_rows() ? maxrev.DoubleData(0)[0] : 0.0;
  const double* tr = Dbls(revenue, "total_revenue").data();
  Table top =
      Filter(std::move(revenue), IndexPredicate([tr, max_revenue](size_t i) {
               return tr[i] >= max_revenue - 1e-6;
             }));
  Table joined = HashJoinOn(top, db.supplier, {"l_suppkey"}, {"s_suppkey"});
  Table projected = ProjectColumns(
      joined, {CopyCol(joined, "s_suppkey"), CopyCol(joined, "s_name"),
               CopyCol(joined, "s_address"), CopyCol(joined, "s_phone"),
               CopyCol(joined, "total_revenue")});
  return SortBy(std::move(projected), {{0, true}});
}

// Q16: Parts/Supplier Relationship.
Table Q16(const TpchDatabase& db) {
  static const int kSizes[] = {49, 14, 23, 45, 19, 3, 36, 9};
  const int64_t* psize = Ints(db.part, "p_size").data();
  // Brand and type exclusions are declared code sets (prunable); the
  // size IN-list rides along as a residual.
  ScanSpec part_spec;
  part_spec.codes.push_back(CodeMatch(
      db.part, "p_brand",
      [](const std::string& s) { return s != "Brand#45"; }));
  part_spec.codes.push_back(
      CodeMatch(db.part, "p_type", [](const std::string& s) {
        return !StrStartsWith(s, "MEDIUM POLISHED");
      }));
  part_spec.residual = [psize](size_t i) {
    int64_t s = psize[i];
    for (int k : kSizes) {
      if (s == k) return true;
    }
    return false;
  };
  Table part = FusedFilter(db.part, part_spec);
  Table bad_suppliers = FusedFilter(
      db.supplier,
      SpecOf(CodeMatch(db.supplier, "s_comment", [](const std::string& c) {
        size_t pos = c.find("Customer");
        return pos != std::string::npos &&
               c.find("Complaints", pos) != std::string::npos;
      })));
  Table ps = HashJoinOn(db.partsupp, part, {"ps_partkey"}, {"p_partkey"});
  Table good = HashJoinOn(ps, bad_suppliers, {"ps_suppkey"}, {"s_suppkey"},
                          JoinType::kLeftAnti);
  Table agg = HashAggregateOn(
      good, {"p_brand", "p_type", "p_size"},
      {ColAgg(AggKind::kCountDistinct, good, "ps_suppkey", "supplier_cnt",
              I)});
  int cnt = agg.ColIndex("supplier_cnt");
  return SortBy(std::move(agg), {{cnt, false}, {0, true}, {1, true},
                                 {2, true}});
}

// Q17: Small-Quantity-Order Revenue.
Table Q17(const TpchDatabase& db) {
  ScanSpec part_spec = SpecOf(CodeEquals(db.part, "p_brand", "Brand#23"));
  part_spec.codes.push_back(CodeEquals(db.part, "p_container", "MED BOX"));
  Table part = FusedFilter(db.part, part_spec);
  Table avg_qty = HashAggregateOn(
      db.lineitem, {"l_partkey"},
      {ColAgg(AggKind::kAvg, db.lineitem, "l_quantity", "avg_qty", D)});
  Table lp = HashJoinOn(db.lineitem, part, {"l_partkey"}, {"p_partkey"});
  Table lpa = HashJoinOn(lp, avg_qty, {"l_partkey"}, {"l_partkey"});
  const double* qty = Dbls(lpa, "l_quantity").data();
  const double* avg = Dbls(lpa, "avg_qty").data();
  Table small = Filter(std::move(lpa), IndexPredicate([qty, avg](size_t i) {
                         return qty[i] < 0.2 * avg[i];
                       }));
  Table sum = HashAggregateOn(
      small, {},
      {ColAgg(AggKind::kSum, small, "l_extendedprice", "sum_price", D)});
  const double* sp = Dbls(sum, "sum_price").data();
  return ProjectColumns(sum, {DoubleExprCol("avg_yearly", [sp](size_t i) {
                          return sp[i] / 7.0;
                        })});
}

// Q18: Large Volume Customer.
Table Q18(const TpchDatabase& db) {
  Table qty_per_order = HashAggregateOn(
      db.lineitem, {"l_orderkey"},
      {ColAgg(AggKind::kSum, db.lineitem, "l_quantity", "sum_qty", D)});
  const double* sq = Dbls(qty_per_order, "sum_qty").data();
  Table big =
      Filter(std::move(qty_per_order), IndexPredicate([sq](size_t i) {
               return sq[i] > 300.0;
             }));
  Table ob = HashJoinOn(db.orders, big, {"o_orderkey"}, {"l_orderkey"});
  Table obc = HashJoinOn(ob, db.customer, {"o_custkey"}, {"c_custkey"});
  Table projected = ProjectColumns(
      obc, {CopyCol(obc, "c_name"), CopyCol(obc, "c_custkey"),
            CopyCol(obc, "o_orderkey"), CopyCol(obc, "o_orderdate"),
            CopyCol(obc, "o_totalprice"), CopyCol(obc, "sum_qty")});
  Table sorted = SortBy(std::move(projected), {{4, false}, {3, true}});
  return Limit(std::move(sorted), 100);
}

// Q19: Discounted Revenue.
Table Q19(const TpchDatabase& db) {
  Table lp = HashJoinOn(db.lineitem, db.part, {"l_partkey"}, {"p_partkey"});
  const uint32_t* brand = Codes(lp, "p_brand").data();
  const uint32_t* cont = Codes(lp, "p_container").data();
  const int64_t* size = Ints(lp, "p_size").data();
  const double* qty = Dbls(lp, "l_quantity").data();
  const uint32_t* mode = Codes(lp, "l_shipmode").data();
  const uint32_t* instr = Codes(lp, "l_shipinstruct").data();
  uint32_t air = lp.CodeFor("AIR");
  uint32_t regair = lp.CodeFor("REG AIR");
  uint32_t deliver = lp.CodeFor("DELIVER IN PERSON");
  uint32_t b12 = lp.CodeFor("Brand#12");
  uint32_t b23 = lp.CodeFor("Brand#23");
  uint32_t b34 = lp.CodeFor("Brand#34");
  std::vector<char> sm = MatchCodes(lp, [](const std::string& s) {
    return s == "SM CASE" || s == "SM BOX" || s == "SM PACK" || s == "SM PKG";
  });
  std::vector<char> med = MatchCodes(lp, [](const std::string& s) {
    return s == "MED BAG" || s == "MED BOX" || s == "MED PKG" ||
           s == "MED PACK";
  });
  std::vector<char> lg = MatchCodes(lp, [](const std::string& s) {
    return s == "LG CASE" || s == "LG BOX" || s == "LG PACK" || s == "LG PKG";
  });
  Table matched = Filter(std::move(lp), IndexPredicate([=, &sm, &med,
                                                        &lg](size_t i) {
    if (mode[i] != air && mode[i] != regair) return false;
    if (instr[i] != deliver) return false;
    uint32_t b = brand[i];
    uint32_t c = cont[i];
    double q = qty[i];
    int64_t s = size[i];
    if (b == b12 && sm[c] && q >= 1 && q <= 11 && s >= 1 && s <= 5) {
      return true;
    }
    if (b == b23 && med[c] && q >= 10 && q <= 20 && s >= 1 && s <= 10) {
      return true;
    }
    if (b == b34 && lg[c] && q >= 20 && q <= 30 && s >= 1 && s <= 15) {
      return true;
    }
    return false;
  }));
  return HashAggregateOn(
      matched, {},
      {VecAgg(AggKind::kSum, "revenue", D, RevenueAt(matched))});
}

// Q20: Potential Part Promotion.
Table Q20(const TpchDatabase& db) {
  DateCode lo = MakeDate(1994, 1, 1);
  DateCode hi = AddYears(lo, 1);
  Table part = FusedFilter(
      db.part, SpecOf(CodeMatch(db.part, "p_name", [](const std::string& s) {
        return StrStartsWith(s, "forest");
      })));
  Table shipped = FusedAggregate(
      db.lineitem,
      SpecOf(ColRange(db.lineitem, "l_shipdate", lo, hi,
                      /*lo_strict=*/false, /*hi_strict=*/true)),
      {"l_partkey", "l_suppkey"}, [](const Table& t) {
        return std::vector<AggExpr>{
            ColAgg(AggKind::kSum, t, "l_quantity", "shipped_qty", D)};
      });
  Table ps_part =
      HashJoinOn(db.partsupp, part, {"ps_partkey"}, {"p_partkey"});
  Table ps_ship = HashJoinOn(ps_part, shipped, {"ps_partkey", "ps_suppkey"},
                             {"l_partkey", "l_suppkey"});
  const int64_t* avail = Ints(ps_ship, "ps_availqty").data();
  const double* sqty = Dbls(ps_ship, "shipped_qty").data();
  Table surplus =
      Filter(std::move(ps_ship), IndexPredicate([avail, sqty](size_t i) {
               return static_cast<double>(avail[i]) > 0.5 * sqty[i];
             }));
  Table canada_t = FusedFilter(
      db.nation, SpecOf(CodeEquals(db.nation, "n_name", "CANADA")));
  Table sn = HashJoinOn(db.supplier, canada_t, {"s_nationkey"},
                        {"n_nationkey"});
  Table qualified = HashJoinOn(sn, surplus, {"s_suppkey"}, {"ps_suppkey"},
                               JoinType::kLeftSemi);
  Table projected = ProjectColumns(qualified,
                                   {CopyCol(qualified, "s_name"),
                                    CopyCol(qualified, "s_address")});
  return SortBy(std::move(projected), {{0, true}});
}

// Q21: Suppliers Who Kept Orders Waiting.
Table Q21(const TpchDatabase& db) {
  // For each multi-supplier order with status 'F': find lineitems whose
  // supplier was the ONLY late supplier on the order.
  Table saudi_t = FusedFilter(
      db.nation, SpecOf(CodeEquals(db.nation, "n_name", "SAUDI ARABIA")));
  Table sn = HashJoinOn(db.supplier, saudi_t, {"s_nationkey"},
                        {"n_nationkey"});

  Table forders = FusedFilter(
      db.orders, SpecOf(CodeEquals(db.orders, "o_orderstatus", "F")));

  // Build per-order supplier sets and late-supplier sets over the raw
  // key/date columns (insertion order == row order, as before).
  const Table& l = db.lineitem;
  const int64_t* okey = Ints(l, "l_orderkey").data();
  const int64_t* skey = Ints(l, "l_suppkey").data();
  const int64_t* cdate = Ints(l, "l_commitdate").data();
  const int64_t* rdate = Ints(l, "l_receiptdate").data();
  std::unordered_map<int64_t, std::unordered_set<int64_t>> suppliers;
  std::unordered_map<int64_t, std::unordered_set<int64_t>> late;
  size_t n = l.num_rows();
  for (size_t i = 0; i < n; ++i) {
    int64_t o = okey[i];
    int64_t s = skey[i];
    suppliers[o].insert(s);
    if (rdate[i] > cdate[i]) late[o].insert(s);
  }

  std::unordered_set<int64_t> f_orders;
  const std::vector<int64_t>& fokey = Ints(forders, "o_orderkey");
  f_orders.insert(fokey.begin(), fokey.end());

  // Qualifying (orderkey, suppkey) pairs.
  Table pairs(
      {{"l_orderkey", exec::ValueType::kInt},
       {"l_suppkey", exec::ValueType::kInt}});
  // Iterate orders in sorted key order, not hash order: AddRow order
  // feeds the downstream joins/aggregation, and the repo contract is
  // bit-identical results run to run.
  std::vector<int64_t> late_orders;
  late_orders.reserve(late.size());
  // elephant-lint: allow(unordered-iteration) — keys sorted next line.
  for (const auto& entry : late) late_orders.push_back(entry.first);
  std::sort(late_orders.begin(), late_orders.end());
  for (int64_t o : late_orders) {
    if (!f_orders.count(o)) continue;
    const auto& supp_set = suppliers.at(o);
    if (supp_set.size() < 2) continue;  // needs another supplier
    const auto& late_set = late.at(o);
    if (late_set.size() != 1) continue;  // no OTHER late supplier
    pairs.AddRow({Value{o}, Value{*late_set.begin()}});
  }

  Table named = HashJoinOn(pairs, sn, {"l_suppkey"}, {"s_suppkey"});
  Table agg = HashAggregateOn(named, {"s_name"}, {CountAgg("numwait")});
  int nw = agg.ColIndex("numwait");
  Table sorted = SortBy(std::move(agg), {{nw, false}, {0, true}});
  return Limit(std::move(sorted), 100);
}

// Q22: Global Sales Opportunity.
Table Q22(const TpchDatabase& db) {
  static const char* kCodes[] = {"13", "31", "23", "29", "30", "18", "17"};
  Table candidates = FusedFilter(
      db.customer,
      SpecOf(CodeMatch(db.customer, "c_phone", [](const std::string& s) {
        std::string c = s.substr(0, 2);
        for (const char* k : kCodes) {
          if (c == k) return true;
        }
        return false;
      })));
  // Average positive balance among candidates.
  const double* cbal = Dbls(candidates, "c_acctbal").data();
  Table positive = Filter(candidates, IndexPredicate([cbal](size_t i) {
                            return cbal[i] > 0.0;
                          }));
  Table avg_t = HashAggregateOn(
      positive, {},
      {ColAgg(AggKind::kAvg, positive, "c_acctbal", "a", D)});
  double avg_bal = avg_t.DoubleData(0)[0];
  Table rich =
      Filter(std::move(candidates), IndexPredicate([cbal, avg_bal](size_t i) {
               return cbal[i] > avg_bal;
             }));
  Table no_orders = HashJoinOn(rich, db.orders, {"c_custkey"}, {"o_custkey"},
                               JoinType::kLeftAnti);
  const uint32_t* nphone = Codes(no_orders, "c_phone").data();
  const StringPool* npool = &no_orders.pool();
  Table coded = ProjectColumns(
      no_orders,
      {StrExprCol("cntrycode",
                  [nphone, npool](size_t i) {
                    return npool->Get(nphone[i]).substr(0, 2);
                  }),
       CopyCol(no_orders, "c_acctbal")});
  Table agg = HashAggregateOn(
      coded, {"cntrycode"},
      {CountAgg("numcust"),
       ColAgg(AggKind::kSum, coded, "c_acctbal", "totacctbal", D)});
  return SortBy(std::move(agg), {{0, true}});
}

}  // namespace

const char* QueryName(int q) {
  static const char* kNames[] = {
      "Pricing Summary Report",
      "Minimum Cost Supplier",
      "Shipping Priority",
      "Order Priority Checking",
      "Local Supplier Volume",
      "Forecasting Revenue Change",
      "Volume Shipping",
      "National Market Share",
      "Product Type Profit Measure",
      "Returned Item Reporting",
      "Important Stock Identification",
      "Shipping Modes and Order Priority",
      "Customer Distribution",
      "Promotion Effect",
      "Top Supplier",
      "Parts/Supplier Relationship",
      "Small-Quantity-Order Revenue",
      "Large Volume Customer",
      "Discounted Revenue",
      "Potential Part Promotion",
      "Suppliers Who Kept Orders Waiting",
      "Global Sales Opportunity"};
  ELEPHANT_CHECK(q >= 1 && q <= kNumQueries) << "query " << q;
  return kNames[q - 1];
}

exec::Table RunQuery(int q, const TpchDatabase& db) {
  switch (q) {
    case 1:
      return Q1(db);
    case 2:
      return Q2(db);
    case 3:
      return Q3(db);
    case 4:
      return Q4(db);
    case 5:
      return Q5(db);
    case 6:
      return Q6(db);
    case 7:
      return Q7(db);
    case 8:
      return Q8(db);
    case 9:
      return Q9(db);
    case 10:
      return Q10(db);
    case 11:
      return Q11(db);
    case 12:
      return Q12(db);
    case 13:
      return Q13(db);
    case 14:
      return Q14(db);
    case 15:
      return Q15(db);
    case 16:
      return Q16(db);
    case 17:
      return Q17(db);
    case 18:
      return Q18(db);
    case 19:
      return Q19(db);
    case 20:
      return Q20(db);
    case 21:
      return Q21(db);
    case 22:
      return Q22(db);
    default:
      ELEPHANT_CHECK(false) << "query " << q << " out of range";
      return exec::Table();
  }
}

std::vector<TableId> QueryInputTables(int q) {
  using T = TableId;
  switch (q) {
    case 1:
      return {T::kLineitem};
    case 2:
      return {T::kPart, T::kSupplier, T::kPartsupp, T::kNation, T::kRegion};
    case 3:
      return {T::kCustomer, T::kOrders, T::kLineitem};
    case 4:
      return {T::kOrders, T::kLineitem};
    case 5:
      return {T::kCustomer, T::kOrders, T::kLineitem, T::kSupplier,
              T::kNation, T::kRegion};
    case 6:
      return {T::kLineitem};
    case 7:
      return {T::kSupplier, T::kLineitem, T::kOrders, T::kCustomer,
              T::kNation};
    case 8:
      return {T::kPart,   T::kSupplier, T::kLineitem, T::kOrders,
              T::kCustomer, T::kNation, T::kRegion};
    case 9:
      return {T::kPart, T::kSupplier, T::kLineitem, T::kPartsupp,
              T::kOrders, T::kNation};
    case 10:
      return {T::kCustomer, T::kOrders, T::kLineitem, T::kNation};
    case 11:
      return {T::kPartsupp, T::kSupplier, T::kNation};
    case 12:
      return {T::kOrders, T::kLineitem};
    case 13:
      return {T::kCustomer, T::kOrders};
    case 14:
      return {T::kLineitem, T::kPart};
    case 15:
      return {T::kSupplier, T::kLineitem};
    case 16:
      return {T::kPartsupp, T::kPart, T::kSupplier};
    case 17:
      return {T::kLineitem, T::kPart};
    case 18:
      return {T::kCustomer, T::kOrders, T::kLineitem};
    case 19:
      return {T::kLineitem, T::kPart};
    case 20:
      return {T::kSupplier, T::kNation, T::kPartsupp, T::kPart,
              T::kLineitem};
    case 21:
      return {T::kSupplier, T::kLineitem, T::kOrders, T::kNation};
    case 22:
      return {T::kCustomer, T::kOrders};
    default:
      return {};
  }
}

}  // namespace elephant::tpch
