#include "docstore/mongod.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "sim/lockset.h"

namespace elephant::docstore {

using LockMode = sim::LocksetChecker::Mode;
using LockAccess = sim::LocksetChecker::Access;

Mongod::Mongod(sim::Simulation* sim, cluster::Node* node,
               const MongodOptions& options, std::string name,
               sqlkv::BufferPool* shared_pool, uint64_t pool_namespace)
    : sim_(sim),
      node_(node),
      options_(options),
      name_(std::move(name)),
      btree_(options.cache_page_bytes),
      own_pool_(options.memory_bytes, options.cache_page_bytes),
      pool_(shared_pool != nullptr ? shared_pool : &own_pool_),
      pool_ns_(pool_namespace << 40),
      global_lock_(sim),
      dispatcher_(sim, 1, name_ + ".dispatch"),
      rng_(Fnv1a64(name_.data(), name_.size())) {
  lockset_domain_ = sim->lockset_checker().NewDomain();
}

Status Mongod::LoadDocument(uint64_t key, int32_t logical_bytes) {
  sqlkv::Record record;
  record.logical_bytes = logical_bytes;
  return btree_.Insert(key, std::move(record));
}

void Mongod::Start() {
  if (running_) return;
  running_ = true;
  Flusher();
}

double Mongod::WriteLockFraction() const {
  if (sim_->now() <= 0) return 0;
  return static_cast<double>(global_lock_.writer_held_time()) /
         static_cast<double>(sim_->now());
}

bool Mongod::CheckOverload() {
  if (crashed_) return true;
  if (inflight_ > options_.crash_inflight_limit) {
    Crash();  // socket errors; clients stop getting responses
  }
  return crashed_;
}

namespace {
/// OS writeback of a stolen dirty page: occupies the disk but nobody
/// waits for it.
sim::Task AsyncWriteback(cluster::Node* node, int64_t bytes) {
  co_await node->data_disks().RandomWrite(bytes);
}
}  // namespace

sim::Task Mongod::Fault(uint64_t page_id, bool dirty, bool newly_allocated,
                        Status* io_status, sim::Latch* faulted) {
  sqlkv::BufferPool::Access access = pool_->Touch(pool_ns_ | page_id, dirty);
  if (!access.hit) {
    // Dirty mmap victims are written back asynchronously by the OS.
    if (access.evicted_dirty) {
      AsyncWriteback(node_, options_.fault_bytes);
    }
    if (!newly_allocated) {
      faults_++;
      int64_t bytes = options_.fault_bytes;
      Status read = co_await node_->data_disks().RandomReadChecked(bytes);
      if (!read.ok() && io_status != nullptr) *io_status = std::move(read);
      if (options_.fault_position_penalty > 0) {
        // Stripe-crossing + readahead: a fraction of one extra
        // positioning delay of disk occupancy.
        SimTime extra = static_cast<SimTime>(
            options_.fault_position_penalty *
            node_->config().disk.position_time);
        co_await node_->data_disks().server().Acquire(extra);
      }
    }
  }
  faulted->CountDown();
}

sim::Task Mongod::Read(uint64_t key, sqlkv::OpOutcome* out,
                       sim::Latch* done) {
  if (CheckOverload()) {
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  inflight_++;
  co_await dispatcher_.Acquire(options_.dispatch_cpu);
  co_await node_->cpu().Acquire(node_->CpuWork(options_.read_cpu));
  sim::LocksetScope lockset(&sim_->lockset_checker(), "mongod.read");
  co_await global_lock_.AcquireShared();
  lockset.NoteAcquired({lockset_domain_, 0}, LockMode::kShared);
  lockset.CheckAccess({lockset_domain_, 0}, key, LockAccess::kRead,
                      LockMode::kShared);
  auto lookup = btree_.Get(key);
  if (lookup.ok()) {
    Status io;
    sim::PooledLatch faulted(&sim_->latch_pool(), 1);
    if (options_.yield_on_fault) {
      // v2.0 semantics: drop the lock across the fault.
      global_lock_.Release(/*exclusive=*/false);
      lockset.NoteReleased({lockset_domain_, 0}, LockMode::kShared);
      Fault(lookup.value().page_id, false, false, &io, faulted.get());
      co_await faulted->Wait();
      co_await global_lock_.AcquireShared();
      lockset.NoteAcquired({lockset_domain_, 0}, LockMode::kShared);
    } else {
      // v1.8: the fault happens while the lock is held.
      Fault(lookup.value().page_id, false, false, &io, faulted.get());
      co_await faulted->Wait();
    }
    if (io.ok()) {
      out->ok = true;
      out->records = 1;
    } else {
      out->transient_error = true;
    }
  }
  global_lock_.Release(/*exclusive=*/false);
  lockset.NoteReleased({lockset_domain_, 0}, LockMode::kShared);
  inflight_--;
  ELEPHANT_DCHECK(inflight_ >= 0) << name_ << ": in-flight went negative";
  ops_served_++;
  done->CountDown();
}

sim::Task Mongod::Update(uint64_t key, int32_t field_bytes,
                         sqlkv::OpOutcome* out, sim::Latch* done) {
  (void)field_bytes;
  if (CheckOverload()) {
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  inflight_++;
  co_await dispatcher_.Acquire(options_.dispatch_cpu);
  co_await node_->cpu().Acquire(node_->CpuWork(options_.write_cpu));
  sim::LocksetScope lockset(&sim_->lockset_checker(), "mongod.update");
  co_await global_lock_.AcquireExclusive();
  lockset.NoteAcquired({lockset_domain_, 0}, LockMode::kExclusive);
  lockset.CheckAccess({lockset_domain_, 0}, key, LockAccess::kWrite,
                      LockMode::kExclusive);
  auto lookup = btree_.Get(key);
  if (lookup.ok()) {
    Status io;
    sim::PooledLatch faulted(&sim_->latch_pool(), 1);
    if (options_.yield_on_fault) {
      global_lock_.Release(/*exclusive=*/true);
      lockset.NoteReleased({lockset_domain_, 0}, LockMode::kExclusive);
      Fault(lookup.value().page_id, true, false, &io, faulted.get());
      co_await faulted->Wait();
      co_await global_lock_.AcquireExclusive();
      lockset.NoteAcquired({lockset_domain_, 0}, LockMode::kExclusive);
    } else {
      Fault(lookup.value().page_id, /*dirty=*/true,
            /*newly_allocated=*/false, &io, faulted.get());
      co_await faulted->Wait();
    }
    if (io.ok()) {
      if (rng_.Bernoulli(options_.update_move_fraction)) {
        // Document outgrew its slot: relocate to a new extent (random
        // write) while still holding the exclusive lock.
        co_await node_->data_disks().RandomWrite(options_.fault_bytes);
      }
      writes_since_flush_++;
      acked_writes_++;
      out->ok = true;
      out->records = 1;
    } else {
      out->transient_error = true;
    }
  }
  global_lock_.Release(/*exclusive=*/true);
  lockset.NoteReleased({lockset_domain_, 0}, LockMode::kExclusive);
  inflight_--;
  ELEPHANT_DCHECK(inflight_ >= 0) << name_ << ": in-flight went negative";
  ops_served_++;
  done->CountDown();
}

sim::Task Mongod::Insert(uint64_t key, int32_t logical_bytes,
                         sqlkv::OpOutcome* out, sim::Latch* done) {
  if (CheckOverload()) {
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  inflight_++;
  co_await dispatcher_.Acquire(options_.dispatch_cpu);
  co_await node_->cpu().Acquire(node_->CpuWork(options_.insert_cpu));
  sim::LocksetScope lockset(&sim_->lockset_checker(), "mongod.insert");
  co_await global_lock_.AcquireExclusive();
  lockset.NoteAcquired({lockset_domain_, 0}, LockMode::kExclusive);
  lockset.CheckAccess({lockset_domain_, 0}, key, LockAccess::kWrite,
                      LockMode::kExclusive);
  sqlkv::Record record;
  record.logical_bytes = logical_bytes;
  Status st = btree_.Insert(key, std::move(record));
  if (st.ok()) {
    auto lookup = btree_.Get(key);
    Status io;
    sim::PooledLatch faulted(&sim_->latch_pool(), 1);
    Fault(lookup.value().page_id, /*dirty=*/true,
          /*newly_allocated=*/true, &io, faulted.get());
    co_await faulted->Wait();
    if (io.ok()) {
      writes_since_flush_++;
      acked_writes_++;
      out->ok = true;
      out->records = 1;
    } else {
      // The document never reached its extent; take it back out of the
      // in-memory image so a retry can insert cleanly. The key was just
      // inserted, so the removal must succeed.
      ELEPHANT_CHECK_OK(btree_.Remove(key));
      out->transient_error = true;
    }
  }
  global_lock_.Release(/*exclusive=*/true);
  lockset.NoteReleased({lockset_domain_, 0}, LockMode::kExclusive);
  inflight_--;
  ELEPHANT_DCHECK(inflight_ >= 0) << name_ << ": in-flight went negative";
  ops_served_++;
  done->CountDown();
}

sim::Task Mongod::Scan(uint64_t start_key, int max_records,
                       sqlkv::OpOutcome* out, sim::Latch* done) {
  if (crashed_) {
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  co_await dispatcher_.Acquire(options_.dispatch_cpu);
  co_await node_->cpu().Acquire(node_->CpuWork(
      options_.scan_cpu_per_record * std::max(1, max_records)));
  sim::LocksetScope lockset(&sim_->lockset_checker(), "mongod.scan");
  co_await global_lock_.AcquireShared();
  lockset.NoteAcquired({lockset_domain_, 0}, LockMode::kShared);
  lockset.CheckAccess({lockset_domain_, 0}, start_key, LockAccess::kRead,
                      LockMode::kShared);
  std::vector<uint64_t> pages;
  int found = btree_.Scan(start_key, max_records,
                          [&pages](uint64_t, const sqlkv::Record&,
                                   uint64_t page) {
                            if (pages.empty() || pages.back() != page) {
                              pages.push_back(page);
                            }
                          });
  bool first_miss = true;
  Status io;
  for (uint64_t page : pages) {
    sqlkv::BufferPool::Access access = pool_->Touch(pool_ns_ | page, false);
    if (!access.hit) {
      faults_++;
      if (access.evicted_dirty) {
        AsyncWriteback(node_, options_.fault_bytes);
      }
      if (first_miss) {
        io = co_await node_->data_disks().RandomReadChecked(
            options_.fault_bytes);
        first_miss = false;
      } else {
        io = co_await node_->data_disks().SeqReadChecked(options_.fault_bytes);
      }
      if (!io.ok()) break;
    }
  }
  global_lock_.Release(/*exclusive=*/false);
  lockset.NoteReleased({lockset_domain_, 0}, LockMode::kShared);
  if (io.ok()) {
    out->ok = true;
    out->records = found;
  } else {
    out->transient_error = true;
  }
  ops_served_++;
  done->CountDown();
}

sim::Task Mongod::StallExclusive(SimTime duration) {
  co_await global_lock_.AcquireExclusive();
  co_await sim_->Delay(duration);
  global_lock_.Release(/*exclusive=*/true);
}

sim::Task Mongod::Flusher() {
  while (running_) {
    co_await sim_->Delay(options_.flush_interval);
    if (!running_) break;
    if (crashed_) continue;  // a downed process flushes nothing
    std::vector<uint64_t> dirty = pool_->DirtyPages();
    for (size_t i = 0; i < dirty.size(); i += 32) {
      int64_t batch =
          std::min<size_t>(32, dirty.size() - i) * options_.fault_bytes;
      co_await node_->data_disks().SeqWrite(batch);
      for (size_t j = i; j < std::min(dirty.size(), i + 32); ++j) {
        pool_->MarkClean(dirty[j]);
      }
    }
    writes_since_flush_ = 0;
    last_flush_end_ = sim_->now();
  }
}

Status Mongod::ValidateInvariants() const {
  ELEPHANT_RETURN_NOT_OK(btree_.ValidateInvariants());
  ELEPHANT_RETURN_NOT_OK(pool_->ValidateInvariants());
  if (inflight_ < 0) {
    return Status::Internal(StrFormat("%s: negative in-flight count %lld",
                                      name_.c_str(),
                                      (long long)inflight_));
  }
  return Status::OK();
}

Status Mongod::ValidateQuiesced() const {
  ELEPHANT_RETURN_NOT_OK(ValidateInvariants());
  if (global_lock_.readers() != 0 || global_lock_.writer_active() ||
      global_lock_.queue_length() != 0) {
    return Status::Internal(
        name_ + ": global lock not quiesced: " +
        global_lock_.DescribeWaiters());
  }
  // A crashed process abandons its in-flight operations by design.
  if (!crashed_ && inflight_ != 0) {
    return Status::Internal(StrFormat(
        "%s: %lld operations still in flight after quiesce",
        name_.c_str(), (long long)inflight_));
  }
  return Status::OK();
}

void Mongod::Crash() {
  if (crashed_) return;
  crashed_ = true;
  crashes_++;
  // No journal: everything acknowledged since the last completed mmap
  // flush is gone. (MongoDB 1.8's optional journaling flushed every
  // 100 ms and the paper disabled even that.)
  lost_acked_total_ += writes_since_flush_;
  max_loss_window_ =
      std::max(max_loss_window_, sim_->now() - last_flush_end_);
  writes_since_flush_ = 0;
}

void Mongod::Restart() {
  if (!crashed_) return;
  crashed_ = false;
  restarts_++;
}

int64_t Mongod::SimulateCrashAndRecover() {
  int64_t before = lost_acked_total_;
  Crash();
  Restart();
  return lost_acked_total_ - before;
}

}  // namespace elephant::docstore
