#ifndef ELEPHANT_DOCSTORE_MONGOD_H_
#define ELEPHANT_DOCSTORE_MONGOD_H_

#include <cstdint>
#include <string>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/resources.h"
#include "sim/simulation.h"
#include "sqlkv/btree.h"
#include "sqlkv/buffer_pool.h"
#include "sqlkv/op_outcome.h"

namespace elephant::docstore {

/// Configuration of one "mongod" process (MongoDB 1.8.2 semantics).
struct MongodOptions {
  /// Memory share of this process (mmap'd pages kept warm).
  int64_t memory_bytes = 20 * kMB;
  /// OS page-cache granularity (mmap storage caches 4 KB pages).
  int32_t cache_page_bytes = 4096;
  /// Disk I/O per fault: readahead makes MongoDB pull ~32 KB from disk
  /// per request versus SQL Server's 8 KB (§3.4.3, WL C) — wasted
  /// bandwidth, since the workload is random access.
  int32_t fault_bytes = 32 * 1024;
  /// Extra positioning fraction per fault: 32 KB faults cross RAID-0
  /// stripe boundaries and trigger readahead the workload never uses.
  double fault_position_penalty = 0.05;
  /// Per-operation CPU.
  SimTime read_cpu = 80;
  SimTime write_cpu = 110;
  SimTime insert_cpu = 130;
  SimTime scan_cpu_per_record = 4;
  /// Single connection-dispatch path: every operation passes through a
  /// serial listener before touching data (per-mongod throughput cap).
  SimTime dispatch_cpu = 45;
  /// mmap flush cadence (no journaling — the paper disables durability).
  SimTime flush_interval = 60 * kSecond;
  /// MongoDB 2.0's yield-on-page-fault: release the global lock while
  /// faulting and reacquire afterwards (the footnote in §3.2.3; the
  /// paper found it unreliable and benchmarked 1.8 semantics, i.e.
  /// false). Exposed for the lock-granularity ablation bench.
  bool yield_on_fault = false;
  /// MongoDB 1.8 updates documents in place; when the new version does
  /// not fit its slot, the document moves to a new extent — an extra
  /// random write performed while the exclusive lock is held. This is
  /// the write amplification behind the paper's 25-45% write-lock
  /// occupancy on workload A.
  double update_move_fraction = 0.12;
  /// When this many point operations (reads/updates/inserts; scans are
  /// fan-out sub-requests and excluded) are in flight on the process,
  /// its connection handling collapses and it stops answering — the
  /// socket exceptions that crash Mongo-AS on workload D above
  /// 20 Kops/s (§3.4.3).
  int64_t crash_inflight_limit = 620;
};

/// An executable model of one MongoDB 1.8 shard-server process: a
/// collection stored in a from-scratch B+tree over 32 KB mmap units, a
/// *global* process-wide readers-writer lock (writes block everything,
/// and the lock is held across page faults — v1.8 had no
/// yield-on-fault), a serial connection dispatcher, and a periodic
/// dirty-page flusher. No write-ahead log: the paper runs MongoDB
/// without durability.
class Mongod {
 public:
  /// `shared_pool` models the OS page cache shared by every mongod on
  /// the node (mmap storage); pass nullptr to give the process a
  /// private pool of options.memory_bytes. `pool_namespace` keeps page
  /// ids of different processes distinct inside a shared pool.
  Mongod(sim::Simulation* sim, cluster::Node* node,
         const MongodOptions& options, std::string name,
         sqlkv::BufferPool* shared_pool = nullptr,
         uint64_t pool_namespace = 0);

  /// Bulk-load (no simulated time).
  Status LoadDocument(uint64_t key, int32_t logical_bytes);

  void Start();
  void Stop() { running_ = false; }

  // --- simulated operations ---
  sim::Task Read(uint64_t key, sqlkv::OpOutcome* out, sim::Latch* done);
  sim::Task Update(uint64_t key, int32_t field_bytes, sqlkv::OpOutcome* out,
                   sim::Latch* done);
  sim::Task Insert(uint64_t key, int32_t logical_bytes,
                   sqlkv::OpOutcome* out, sim::Latch* done);
  sim::Task Scan(uint64_t start_key, int max_records, sqlkv::OpOutcome* out,
                 sim::Latch* done);

  /// Zero-time page-cache touch (driver warm start).
  void TouchPage(uint64_t page_id) {
    pool_->Touch(pool_ns_ | page_id, /*mark_dirty=*/false);
  }

  /// Holds the global lock exclusively for `duration` (chunk split /
  /// migration critical sections). Everything else on the process
  /// queues behind it — the Mongo-AS append stalls of workload E.
  sim::Task StallExclusive(SimTime duration);

  /// The durability gap the paper highlights (§3.4.1: "the MongoDB
  /// experiments were run without durability support"): acknowledged
  /// writes whose pages have not yet been flushed by the 60 s mmap
  /// flusher. All of them are lost on a crash.
  int64_t UnflushedAcknowledgedWrites() const {
    return writes_since_flush_;
  }
  /// Simulates a process crash: returns how many acknowledged writes
  /// were lost, and restarts with a cold cache.
  int64_t SimulateCrashAndRecover();

  /// Mid-run node crash (fault injection): everything acknowledged
  /// since the last completed mmap flush is lost — there is no journal
  /// to replay. New operations fail fast with a transient error until
  /// Restart(). Idempotent while already crashed (an overload-crashed
  /// process records no additional loss).
  void Crash();
  /// Brings a crashed process back: the collection reopens from the
  /// last flushed image. (The shared per-node page cache models the OS
  /// cache, which survives a process restart.)
  void Restart();

  // --- durability ledger (chaos assertions) ---
  int64_t acked_writes() const { return acked_writes_; }
  /// Acked writes lost across every crash so far.
  int64_t lost_acked_total() const { return lost_acked_total_; }
  int64_t crashes() const { return crashes_; }
  int64_t restarts() const { return restarts_; }
  /// Longest observed gap between a crash and the preceding completed
  /// flush: the paper's loss window, bounded by flush_interval plus the
  /// duration of one flush pass.
  SimTime max_loss_window() const { return max_loss_window_; }

  /// Cross-structure validation: collection B+tree + page-cache pool.
  /// Safe at any simulated instant.
  Status ValidateInvariants() const;

  /// ValidateInvariants plus the quiesce condition: no holder or waiter
  /// left on the global lock and no operation in flight. Call after the
  /// event loop drains.
  Status ValidateQuiesced() const;

  bool crashed() const { return crashed_; }
  const std::string& name() const { return name_; }
  /// The process-global lock (migration critical sections take both
  /// endpoints' locks; see MongoAsSystem::RunBalancerOnce).
  sim::RwLock& global_lock() { return global_lock_; }
  /// Lock domain of global_lock_ in the lockset checker.
  uint64_t lockset_domain() const { return lockset_domain_; }
  const sqlkv::BTree& collection() const { return btree_; }
  sqlkv::BufferPool& pool() { return *pool_; }
  /// Fraction of elapsed time the global lock was write-held — the
  /// paper's mongostat observation (25%-45% on workload A).
  double WriteLockFraction() const;
  int64_t ops_served() const { return ops_served_; }
  int64_t faults() const { return faults_; }
  int64_t docs() const { return static_cast<int64_t>(btree_.size()); }

 private:
  /// Loads the mmap unit holding a document, charging disk time. Called
  /// WITH the global lock held (1.8 semantics).
  sim::Task Fault(uint64_t page_id, bool dirty, bool newly_allocated,
                  Status* io_status, sim::Latch* faulted);
  sim::Task Flusher();
  bool CheckOverload();

  sim::Simulation* sim_;
  cluster::Node* node_;
  MongodOptions options_;
  std::string name_;
  sqlkv::BTree btree_;
  sqlkv::BufferPool own_pool_;
  sqlkv::BufferPool* pool_;
  uint64_t pool_ns_;
  uint64_t lockset_domain_ = 0;
  sim::RwLock global_lock_;
  sim::Server dispatcher_;
  Rng rng_;
  bool running_ = false;
  bool crashed_ = false;
  int64_t ops_served_ = 0;
  int64_t faults_ = 0;
  int64_t inflight_ = 0;
  int64_t writes_since_flush_ = 0;
  int64_t acked_writes_ = 0;
  int64_t lost_acked_total_ = 0;
  int64_t crashes_ = 0;
  int64_t restarts_ = 0;
  SimTime last_flush_end_ = 0;
  SimTime max_loss_window_ = 0;
};

}  // namespace elephant::docstore

#endif  // ELEPHANT_DOCSTORE_MONGOD_H_
