#include "docstore/sharding.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace elephant::docstore {

ConfigServer::ConfigServer(int num_shards, const Options& options)
    : num_shards_(num_shards), options_(options) {
  // One chunk covering everything, on shard 0.
  Chunk all;
  all.min_key = 0;
  all.max_key = std::numeric_limits<uint64_t>::max();
  all.shard = 0;
  chunks_[0] = all;
}

void ConfigServer::PreSplit(uint64_t max_key, int num_chunks) {
  chunks_.clear();
  uint64_t span = max_key / num_chunks + 1;
  for (int i = 0; i < num_chunks; ++i) {
    Chunk c;
    c.min_key = i * span;
    c.max_key = i + 1 == num_chunks
                    ? std::numeric_limits<uint64_t>::max()
                    : (i + 1) * span;
    c.shard = i % num_shards_;  // spread round-robin, evenly
    chunks_[c.min_key] = c;
  }
}

std::map<uint64_t, Chunk>::iterator ConfigServer::FindChunk(uint64_t key) {
  auto it = chunks_.upper_bound(key);
  ELEPHANT_DCHECK(it != chunks_.begin())
      << "key " << key << " below the first chunk";
  --it;
  return it;
}

int ConfigServer::Route(uint64_t key) const {
  return const_cast<ConfigServer*>(this)->FindChunk(key)->second.shard;
}

const Chunk& ConfigServer::ChunkFor(uint64_t key) const {
  return const_cast<ConfigServer*>(this)->FindChunk(key)->second;
}

std::vector<int> ConfigServer::RouteRange(uint64_t start,
                                          uint64_t end) const {
  std::vector<int> shards;
  auto it = const_cast<ConfigServer*>(this)->FindChunk(start);
  for (; it != chunks_.end() && it->second.min_key < end; ++it) {
    int s = it->second.shard;
    if (std::find(shards.begin(), shards.end(), s) == shards.end()) {
      shards.push_back(s);
    }
  }
  return shards;
}

bool ConfigServer::NoteInsert(uint64_t key, int64_t bytes) {
  auto it = FindChunk(key);
  Chunk& c = it->second;
  c.docs++;
  c.bytes += bytes;
  if (c.bytes <= options_.max_chunk_bytes || c.max_key - c.min_key < 2) {
    return false;
  }
  // Split at the key midpoint (mongos splits at the median key; the
  // midpoint is equivalent for near-uniform chunks).
  splits_++;
  uint64_t mid = c.min_key + (c.max_key - c.min_key) / 2;
  if (mid <= key && key < c.max_key && mid <= c.min_key + 1) return false;
  Chunk right;
  right.min_key = mid;
  right.max_key = c.max_key;
  right.shard = c.shard;
  right.docs = c.docs / 2;
  right.bytes = c.bytes / 2;
  c.max_key = mid;
  c.docs -= right.docs;
  c.bytes -= right.bytes;
  chunks_[right.min_key] = right;
  return true;
}

std::vector<int> ConfigServer::ChunksPerShard() const {
  std::vector<int> counts(num_shards_, 0);
  for (const auto& [k, c] : chunks_) counts[c.shard]++;
  return counts;
}

std::vector<ConfigServer::Migration> ConfigServer::BalanceOnce() {
  std::vector<Migration> migrations;
  std::vector<int> counts = ChunksPerShard();
  auto max_it = std::max_element(counts.begin(), counts.end());
  auto min_it = std::min_element(counts.begin(), counts.end());
  if (*max_it - *min_it < options_.migration_threshold) return migrations;
  int from = static_cast<int>(max_it - counts.begin());
  int to = static_cast<int>(min_it - counts.begin());
  // Move the first chunk of the overloaded shard.
  for (auto& [k, c] : chunks_) {
    if (c.shard == from) {
      Migration m;
      m.chunk = c;
      m.from = from;
      m.to = to;
      c.shard = to;
      migrations_++;
      migrations.push_back(m);
      break;
    }
  }
  return migrations;
}

}  // namespace elephant::docstore
