#ifndef ELEPHANT_DOCSTORE_SHARDING_H_
#define ELEPHANT_DOCSTORE_SHARDING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace elephant::docstore {

/// One range chunk of the sharded keyspace: [min_key, max_key) lives on
/// `shard`.
struct Chunk {
  uint64_t min_key = 0;
  uint64_t max_key = 0;
  int shard = 0;
  int64_t docs = 0;
  int64_t bytes = 0;
};

/// The Mongo-AS "config db": an order-preserving chunk map with
/// splitting and a balancer. This is the component whose range
/// partitioning wins workload E's scans and whose append-to-the-last-
/// chunk hotspot destroys Mongo-AS appends (§3.4.3).
class ConfigServer {
 public:
  struct Options {
    int64_t max_chunk_bytes = 64 * 1024 * 1024;  ///< split threshold
    /// Balancer migrates when the chunk-count spread exceeds this.
    int migration_threshold = 8;
  };

  ConfigServer(int num_shards, const Options& options);

  /// The paper's load strategy (§3.4.2): define the boundaries of
  /// initially empty chunks up front and spread them round-robin so the
  /// expensive migrations never happen.
  void PreSplit(uint64_t max_key, int num_chunks);

  /// Shard owning a key.
  int Route(uint64_t key) const;

  /// Shards whose chunks intersect [start, end) in range order.
  std::vector<int> RouteRange(uint64_t start, uint64_t end) const;

  /// Records an insert; splits the containing chunk when it outgrows
  /// max_chunk_bytes (both halves stay on the same shard until the
  /// balancer moves one). Returns true when a split happened.
  bool NoteInsert(uint64_t key, int64_t bytes);

  /// One balancer round: returns the migrations to perform (the caller
  /// moves the documents and charges network time) and updates the map.
  struct Migration {
    Chunk chunk;
    int from = 0;
    int to = 0;
  };
  std::vector<Migration> BalanceOnce();

  size_t num_chunks() const { return chunks_.size(); }
  int num_shards() const { return num_shards_; }
  int64_t splits() const { return splits_; }
  int64_t migrations() const { return migrations_; }
  std::vector<int> ChunksPerShard() const;
  const Chunk& ChunkFor(uint64_t key) const;

 private:
  std::map<uint64_t, Chunk>::iterator FindChunk(uint64_t key);

  int num_shards_;
  Options options_;
  /// Keyed by min_key.
  std::map<uint64_t, Chunk> chunks_;
  int64_t splits_ = 0;
  int64_t migrations_ = 0;
};

}  // namespace elephant::docstore

#endif  // ELEPHANT_DOCSTORE_SHARDING_H_
