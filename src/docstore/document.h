#ifndef ELEPHANT_DOCSTORE_DOCUMENT_H_
#define ELEPHANT_DOCSTORE_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace elephant::docstore {

/// A BSON-style field value.
using FieldValue = std::variant<int64_t, double, std::string>;

/// A schemaless document: an ordered list of named fields, as MongoDB
/// stores them. Documents in the same collection may have entirely
/// different structures — the flexible data model §2.4 of the paper
/// contrasts with SQL Server's rigid schema.
class Document {
 public:
  Document() = default;

  /// Sets (or replaces) a field, preserving first-insertion order.
  void Set(const std::string& name, FieldValue value);

  /// Field lookup; NotFound when absent.
  Result<FieldValue> Get(const std::string& name) const;
  bool Has(const std::string& name) const;

  /// Removes a field; NotFound when absent.
  Status Remove(const std::string& name);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const std::vector<std::pair<std::string, FieldValue>>& fields() const {
    return fields_;
  }

  /// Serialized (BSON-like) size in bytes: per field a type tag, a
  /// length-prefixed name and the value payload, plus a 4-byte header.
  int32_t SerializedBytes() const;

  /// Binary round trip (tag | name-len | name | value)*.
  std::string Serialize() const;
  static Result<Document> Parse(const std::string& bytes);

  /// The YCSB record shape: `fields` fields named field0.. of
  /// `field_bytes` bytes each.
  static Document YcsbRecord(int fields, int field_bytes);

 private:
  std::vector<std::pair<std::string, FieldValue>> fields_;
};

}  // namespace elephant::docstore

#endif  // ELEPHANT_DOCSTORE_DOCUMENT_H_
