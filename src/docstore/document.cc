#include "docstore/document.h"

#include <cstring>

#include "common/string_util.h"

namespace elephant::docstore {

namespace {

constexpr char kTagInt = 'i';
constexpr char kTagDouble = 'd';
constexpr char kTagString = 's';

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}

}  // namespace

void Document::Set(const std::string& name, FieldValue value) {
  for (auto& [n, v] : fields_) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(name, std::move(value));
}

Result<FieldValue> Document::Get(const std::string& name) const {
  for (const auto& [n, v] : fields_) {
    if (n == name) return v;
  }
  return Status::NotFound("field " + name);
}

bool Document::Has(const std::string& name) const {
  for (const auto& [n, v] : fields_) {
    if (n == name) return true;
  }
  return false;
}

Status Document::Remove(const std::string& name) {
  for (auto it = fields_.begin(); it != fields_.end(); ++it) {
    if (it->first == name) {
      fields_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("field " + name);
}

int32_t Document::SerializedBytes() const {
  int32_t bytes = 4;  // header
  for (const auto& [name, value] : fields_) {
    bytes += 1 + 4 + static_cast<int32_t>(name.size());
    if (std::holds_alternative<int64_t>(value)) {
      bytes += 8;
    } else if (std::holds_alternative<double>(value)) {
      bytes += 8;
    } else {
      bytes += 4 + static_cast<int32_t>(std::get<std::string>(value).size());
    }
  }
  return bytes;
}

std::string Document::Serialize() const {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(fields_.size()));
  for (const auto& [name, value] : fields_) {
    if (const auto* i = std::get_if<int64_t>(&value)) {
      out.push_back(kTagInt);
      AppendU32(&out, static_cast<uint32_t>(name.size()));
      out += name;
      char buf[8];
      std::memcpy(buf, i, 8);
      out.append(buf, 8);
    } else if (const auto* d = std::get_if<double>(&value)) {
      out.push_back(kTagDouble);
      AppendU32(&out, static_cast<uint32_t>(name.size()));
      out += name;
      char buf[8];
      std::memcpy(buf, d, 8);
      out.append(buf, 8);
    } else {
      const std::string& s = std::get<std::string>(value);
      out.push_back(kTagString);
      AppendU32(&out, static_cast<uint32_t>(name.size()));
      out += name;
      AppendU32(&out, static_cast<uint32_t>(s.size()));
      out += s;
    }
  }
  return out;
}

Result<Document> Document::Parse(const std::string& bytes) {
  Document doc;
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadU32(bytes, &pos, &count)) {
    return Status::InvalidArgument("truncated document header");
  }
  for (uint32_t f = 0; f < count; ++f) {
    if (pos >= bytes.size()) {
      return Status::InvalidArgument("truncated field tag");
    }
    char tag = bytes[pos++];
    uint32_t name_len = 0;
    if (!ReadU32(bytes, &pos, &name_len) ||
        pos + name_len > bytes.size()) {
      return Status::InvalidArgument("truncated field name");
    }
    std::string name = bytes.substr(pos, name_len);
    pos += name_len;
    switch (tag) {
      case kTagInt: {
        if (pos + 8 > bytes.size()) {
          return Status::InvalidArgument("truncated int field");
        }
        int64_t v;
        std::memcpy(&v, bytes.data() + pos, 8);
        pos += 8;
        doc.Set(name, v);
        break;
      }
      case kTagDouble: {
        if (pos + 8 > bytes.size()) {
          return Status::InvalidArgument("truncated double field");
        }
        double v;
        std::memcpy(&v, bytes.data() + pos, 8);
        pos += 8;
        doc.Set(name, v);
        break;
      }
      case kTagString: {
        uint32_t len = 0;
        if (!ReadU32(bytes, &pos, &len) || pos + len > bytes.size()) {
          return Status::InvalidArgument("truncated string field");
        }
        doc.Set(name, bytes.substr(pos, len));
        pos += len;
        break;
      }
      default:
        return Status::InvalidArgument(
            StrFormat("unknown field tag '%c'", tag));
    }
  }
  return doc;
}

Document Document::YcsbRecord(int fields, int field_bytes) {
  Document doc;
  for (int f = 0; f < fields; ++f) {
    doc.Set(StrFormat("field%d", f),
            std::string(static_cast<size_t>(field_bytes), 'x'));
  }
  return doc;
}

}  // namespace elephant::docstore
