#ifndef ELEPHANT_SQLKV_OP_OUTCOME_H_
#define ELEPHANT_SQLKV_OP_OUTCOME_H_

#include <cstdint>

namespace elephant::sqlkv {

/// Result of one data-serving operation (shared by the SQL Server and
/// MongoDB engine models).
struct OpOutcome {
  bool ok = false;
  int64_t records = 0;  ///< records returned (scans)
  /// The failure is fault-induced and safe to retry: the target was
  /// crashed/partitioned, or an injected I/O error hit the operation.
  /// Never set on logical failures (key not found, duplicate insert).
  bool transient_error = false;
  /// The operation was rejected by admission control before reaching
  /// the engine (open-loop overload; see ycsb::AdmissionGate). Shed
  /// operations did no engine work and are counted separately from
  /// failures by the sweep harness.
  bool shed = false;
};

}  // namespace elephant::sqlkv

#endif  // ELEPHANT_SQLKV_OP_OUTCOME_H_
