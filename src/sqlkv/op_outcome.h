#ifndef ELEPHANT_SQLKV_OP_OUTCOME_H_
#define ELEPHANT_SQLKV_OP_OUTCOME_H_

#include <cstdint>

namespace elephant::sqlkv {

/// Result of one data-serving operation (shared by the SQL Server and
/// MongoDB engine models).
struct OpOutcome {
  bool ok = false;
  int64_t records = 0;  ///< records returned (scans)
};

}  // namespace elephant::sqlkv

#endif  // ELEPHANT_SQLKV_OP_OUTCOME_H_
