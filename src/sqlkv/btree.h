#ifndef ELEPHANT_SQLKV_BTREE_H_
#define ELEPHANT_SQLKV_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace elephant::sqlkv {

/// A stored record: a real payload (tests and examples store actual
/// bytes) plus the *logical* on-disk size used by the I/O model. The
/// YCSB datasets model 1 KB records without materializing a kilobyte of
/// host memory per record.
struct Record {
  std::string payload;
  int32_t logical_bytes = 0;

  int32_t bytes() const {
    return logical_bytes > 0 ? logical_bytes
                             : static_cast<int32_t>(payload.size());
  }
};

/// A from-scratch in-memory B+tree with page-structured leaves: each
/// leaf holds as many records as fit its byte budget (e.g. ~7 x 1 KB
/// records in an 8 KB SQL Server page, ~31 in a 32 KB MongoDB fault
/// unit). Leaves carry stable page ids so a buffer pool can model which
/// pages are memory-resident. Keys are unsigned 64-bit; the YCSB
/// zero-padded string keys map to them order-preservingly.
class BTree {
 public:
  explicit BTree(int32_t page_bytes = 8192);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts a new record; AlreadyExists if the key is present.
  Status Insert(uint64_t key, Record record);

  /// Replaces/updates the record in place; NotFound if absent.
  Status Update(uint64_t key, const std::function<void(Record*)>& fn);

  /// Looks up a record. Also reports the leaf page id it lives on.
  struct Lookup {
    const Record* record = nullptr;
    uint64_t page_id = 0;
  };
  Result<Lookup> Get(uint64_t key) const;

  /// Removes a record; NotFound if absent. (No rebalancing — YCSB has
  /// no deletes; provided for completeness.)
  Status Remove(uint64_t key);

  /// Visits up to `count` records in key order starting at the first
  /// key >= start. Returns the number visited. The callback receives
  /// (key, record, leaf page id).
  int Scan(uint64_t start, int count,
           const std::function<void(uint64_t, const Record&, uint64_t)>&
               visit) const;

  /// First key >= start, if any.
  Result<uint64_t> LowerBound(uint64_t start) const;

  /// Largest key in the tree; NotFound when empty.
  Result<uint64_t> MaxKey() const;

  size_t size() const { return size_; }
  size_t leaf_count() const { return leaf_count_; }
  int height() const { return height_; }
  int32_t page_bytes() const { return page_bytes_; }
  int64_t logical_bytes() const { return logical_bytes_; }

  /// Validates the full set of B+tree structural invariants:
  ///   - key ordering and separator correctness in every node,
  ///   - node occupancy (leaf byte budgets, internal fanout bounds,
  ///     non-root nodes non-empty) and per-leaf byte accounting,
  ///   - leaf-chain integrity (the next-pointer chain visits exactly the
  ///     tree's leaves, left to right, with strictly increasing keys),
  ///   - aggregate counters (size(), leaf_count(), logical_bytes(),
  ///     page-id uniqueness below next_page_id_).
  /// Returns the first violation found; used by property tests and the
  /// corruption fixtures in tests/invariants_test.cc.
  Status ValidateInvariants() const;

  /// Back-compat alias for ValidateInvariants().
  Status CheckInvariants() const { return ValidateInvariants(); }

 private:
  friend struct BTreeTestCorruptor;

  struct Node;
  struct InsertResult;

  InsertResult InsertInto(Node* node, uint64_t key, Record&& record);
  const Node* FindLeaf(uint64_t key) const;
  Status CheckNode(const Node* node, uint64_t lo, uint64_t hi,
                   int depth) const;
  void CollectLeaves(const Node* node,
                     std::vector<const Node*>* out) const;
  void CollectPageIds(const Node* node, std::vector<uint64_t>* out) const;

  int32_t page_bytes_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t leaf_count_ = 1;
  int height_ = 1;
  int64_t logical_bytes_ = 0;
  uint64_t next_page_id_ = 1;
};

/// Test-only back door that deliberately damages a tree so the
/// invariant tests can assert ValidateInvariants() catches each class of
/// corruption. Never use outside tests.
struct BTreeTestCorruptor {
  /// Swaps the first two keys of the first multi-key leaf (breaks
  /// ordering). Returns false if no such leaf exists.
  static bool SwapLeafKeys(BTree* tree);
  /// Severs the first leaf's next pointer (breaks chain integrity).
  /// Returns false if the tree has a single leaf.
  static bool BreakLeafChain(BTree* tree);
  /// Skews the first leaf's used_bytes accounting by `delta`.
  static void SkewUsedBytes(BTree* tree, int32_t delta);
};

}  // namespace elephant::sqlkv

#endif  // ELEPHANT_SQLKV_BTREE_H_
