#ifndef ELEPHANT_SQLKV_BUFFER_POOL_H_
#define ELEPHANT_SQLKV_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace elephant::sqlkv {

/// An LRU buffer pool over page ids. It tracks which pages are
/// memory-resident and which are dirty; the engine charges disk I/O for
/// misses and for dirty evictions. Pure data structure (no simulated
/// time) so it is unit-testable in isolation.
class BufferPool {
 public:
  BufferPool(int64_t capacity_bytes, int32_t page_bytes);

  /// Result of touching a page.
  struct Access {
    bool hit = false;
    bool evicted = false;
    bool evicted_dirty = false;
    uint64_t evicted_page = 0;
  };

  /// Touches `page_id` (moving it to MRU), loading it on a miss and
  /// evicting the LRU page if the pool is full.
  Access Touch(uint64_t page_id, bool mark_dirty);

  /// True if the page is resident (without promoting it).
  bool Contains(uint64_t page_id) const;

  /// Marks a resident page clean (checkpoint wrote it out).
  void MarkClean(uint64_t page_id);

  /// All currently dirty pages (checkpoint candidates).
  std::vector<uint64_t> DirtyPages() const;

  size_t resident_pages() const { return lru_.size(); }
  size_t capacity_pages() const { return capacity_pages_; }
  size_t dirty_count() const { return dirty_count_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  double HitRate() const {
    int64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / total : 0.0;
  }
  void ResetStats() { hits_ = misses_ = 0; }

  /// Validates the pool's structural invariants:
  ///   - the LRU list and the page index describe the same set (every
  ///     list node indexed under its own page id, no double-framed
  ///     page, index size == list size),
  ///   - residency never exceeds capacity,
  ///   - dirty_count() equals the number of dirty entries in the list.
  /// Returns the first violation found.
  Status ValidateInvariants() const;

 private:
  struct Entry {
    uint64_t page_id;
    bool dirty;
  };

  size_t capacity_pages_;
  std::list<Entry> lru_;  // front = MRU
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  size_t dirty_count_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace elephant::sqlkv

#endif  // ELEPHANT_SQLKV_BUFFER_POOL_H_
