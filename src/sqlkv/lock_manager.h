#ifndef ELEPHANT_SQLKV_LOCK_MANAGER_H_
#define ELEPHANT_SQLKV_LOCK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "sim/resources.h"
#include "sim/simulation.h"

namespace elephant::sqlkv {

/// Row-level lock table: a reader-writer lock per key, created lazily
/// and reclaimed when uncontended. Implements the SQL Server behaviour
/// the paper exercises: READ COMMITTED takes short shared locks that
/// writers block (workload A's elevated read latencies), READ
/// UNCOMMITTED skips them (§3.4.3's side experiment).
class LockManager {
 public:
  explicit LockManager(sim::Simulation* sim) : sim_(sim) {}

  /// The lock for a key (created on demand). Acquire via
  /// `co_await manager.LockFor(k).AcquireShared()` etc.
  sim::RwLock& LockFor(uint64_t key);

  /// Releases and reclaims the lock entry once fully idle.
  void Release(uint64_t key, bool exclusive);

  size_t active_locks() const { return locks_.size(); }
  int64_t total_acquisitions() const { return acquisitions_; }
  void NoteAcquisition() { acquisitions_++; }

  /// Cumulative virtual time operations have spent blocked in this lock
  /// table: live entries' wait clocks plus everything accumulated by
  /// entries already reclaimed. The sweep harness differentiates this
  /// across a measurement window for its lock-wait utilization probe.
  SimTime TotalWaitTime() const;

  /// Validates the lock table: every retained entry must be justified
  /// (held or contended) — an idle entry means Release forgot to
  /// reclaim it. Returns the first violation found.
  Status ValidateInvariants() const;

  /// After all operations have drained, the table must be empty
  /// (active_locks() == 0): a leftover entry is a leaked lock. Call at
  /// engine shutdown / end of run.
  Status ValidateQuiesced() const;

 private:
  sim::Simulation* sim_;
  std::unordered_map<uint64_t, std::unique_ptr<sim::RwLock>> locks_;
  int64_t acquisitions_ = 0;
  /// Wait time carried by reclaimed lock entries (entries are erased
  /// the moment they go idle, so their clocks must survive them).
  SimTime retired_wait_time_ = 0;
};

}  // namespace elephant::sqlkv

#endif  // ELEPHANT_SQLKV_LOCK_MANAGER_H_
