#ifndef ELEPHANT_SQLKV_ENGINE_H_
#define ELEPHANT_SQLKV_ENGINE_H_

#include <cstdint>

#include "cluster/cluster.h"
#include "common/status.h"
#include "sim/resources.h"
#include "sim/simulation.h"
#include "sqlkv/btree.h"
#include "sqlkv/buffer_pool.h"
#include "sqlkv/lock_manager.h"
#include "sqlkv/op_outcome.h"
#include "sqlkv/wal.h"

namespace elephant::sqlkv {

/// Configuration of one SQL Server instance (the paper's SQL-CS runs
/// one per server node). Defaults are the scaled-down benchmark shape:
/// dataset:memory stays at the paper's 2.5:1.
struct SqlEngineOptions {
  int64_t memory_bytes = 320 * kMB;  ///< buffer pool
  int32_t page_bytes = 8192;         ///< SQL Server page size (§3.4.3)
  /// Per-operation CPU service demands.
  SimTime read_cpu = 100;           // microseconds
  SimTime update_cpu = 140;
  SimTime insert_cpu = 160;
  SimTime scan_cpu_per_record = 4;
  /// Checkpoint cadence. Dirty pages are flushed in bulk, competing
  /// with foreground I/O — the workload B throughput dips of §3.4.3.
  SimTime checkpoint_interval = 30 * kSecond;
  int64_t checkpoint_chunk_bytes = 1 * kMB;
  /// READ UNCOMMITTED skips shared read locks (§3.4.3's isolation
  /// side-experiment on workload A).
  bool read_uncommitted = false;
  /// Bytes of log record per write transaction.
  int64_t log_record_bytes = 160;
  GroupCommitLog::Options log;
};

/// An executable model of one SQL Server instance: clustered B+tree on
/// the record key over 8 KB pages, LRU buffer pool, row locks with READ
/// COMMITTED (or READ UNCOMMITTED) semantics, group-commit WAL on a
/// dedicated log spindle, and periodic checkpoints. Operations are
/// simulation coroutines: their latency emerges from CPU/disk/lock
/// queueing rather than from fitted constants.
class SqlEngine {
 public:
  SqlEngine(sim::Simulation* sim, cluster::Node* node,
            const SqlEngineOptions& options);

  /// Bulk-loads a record without consuming simulated time (the driver
  /// charges load time separately). The buffer pool starts cold — the
  /// paper flushes memory before every run.
  Status LoadRecord(uint64_t key, int32_t logical_bytes);

  /// Starts background work (checkpointer). Call once after loading.
  void Start();
  void Stop() { running_ = false; }

  // --- simulated operations (fire-and-forget; latch fires when done) ---
  sim::Task Read(uint64_t key, OpOutcome* out, sim::Latch* done);
  sim::Task Update(uint64_t key, int32_t field_bytes, OpOutcome* out,
                   sim::Latch* done);
  sim::Task Insert(uint64_t key, int32_t logical_bytes, OpOutcome* out,
                   sim::Latch* done);
  sim::Task Scan(uint64_t start_key, int max_records, OpOutcome* out,
                 sim::Latch* done);

  /// Crash-recovery surface (the paper's durability contrast: SQL
  /// Server acknowledges a write only after its log batch is durable,
  /// MongoDB acknowledged without any journal). Returns the redo
  /// records recovery would replay from the last checkpoint; every
  /// acknowledged write is guaranteed to be covered.
  struct RecoveryReport {
    int64_t redo_records = 0;
    int64_t acknowledged_writes = 0;
    int64_t lost_acknowledged_writes = 0;  ///< always 0 for this engine
  };
  RecoveryReport SimulateCrashAndRecover();

  /// Mid-run process crash (fault injection): memory-resident pages are
  /// gone and new operations fail fast with a transient error until
  /// Restart() completes recovery. Operations already past their entry
  /// check drain normally — their commits were, or will be, durable in
  /// the log before acknowledgement, so the acked-writes contract is
  /// unaffected. Idempotent while already crashed.
  void Crash();

  /// Timed recovery coroutine: reads the redo stream off the log
  /// spindle, replays it into a cold buffer pool, re-validates the
  /// BTree/BufferPool/WAL invariants, then reopens for business.
  /// `report` (optional) receives the recovery ledger; `done`
  /// (optional) fires when the engine is serving again.
  sim::Task Restart(RecoveryReport* report, sim::Latch* done);

  bool crashed() const { return crashed_; }
  int64_t recoveries() const { return recoveries_; }
  int64_t acked_writes() const { return acked_writes_; }
  /// Acked writes the redo replay could not re-apply, summed over every
  /// Restart(). Any nonzero value is a durability bug.
  int64_t lost_acked_total() const { return lost_acked_total_; }

  /// Cross-structure validation: B+tree, buffer pool, WAL and lock
  /// table invariants. Safe to call at any simulated instant (in-flight
  /// operations hold lock entries legitimately).
  Status ValidateInvariants() const;

  /// ValidateInvariants plus the quiesce condition: once every
  /// operation has drained, the lock table must be empty — a leftover
  /// entry is a leaked lock. Call after the event loop drains.
  Status ValidateQuiesced() const;

  const BTree& btree() const { return btree_; }
  BufferPool& pool() { return pool_; }
  GroupCommitLog& log() { return log_; }
  LockManager& locks() { return locks_; }

  /// Planted-race hook (tests/lockset_test.cc only): the next Read
  /// skips its shared row-lock acquisition while the lockset checker
  /// still demands it — the checker must flag exactly that access.
  void TestSkipNextReadLock() { test_skip_next_read_lock_ = true; }
  /// Lock domain this engine's row locks occupy in the lockset checker.
  uint64_t lockset_domain() const { return lockset_domain_; }
  int64_t checkpoints() const { return checkpoints_; }
  int64_t disk_reads() const { return disk_reads_; }
  int64_t ops_served() const { return ops_served_; }

 private:
  /// Touches the leaf page of a record: on a miss, performs the 8 KB
  /// random read (plus a lazy write when a dirty page is evicted).
  /// Newly allocated pages (inserts) skip the read — there is nothing
  /// on disk yet.
  sim::Task FaultPage(uint64_t page_id, bool dirty, bool newly_allocated,
                      Status* io_status, sim::Latch* faulted);
  sim::Task Checkpointer();
  /// Replays the durable redo suffix into a fresh (cold) pool; returns
  /// the ledger. Shared by Restart() and SimulateCrashAndRecover().
  RecoveryReport ReplayRedo();

  sim::Simulation* sim_;
  cluster::Node* node_;
  SqlEngineOptions options_;
  BTree btree_;
  BufferPool pool_;
  LockManager locks_;
  GroupCommitLog log_;
  uint64_t lockset_domain_ = 0;
  bool test_skip_next_read_lock_ = false;
  bool running_ = false;
  bool crashed_ = false;
  int64_t checkpoints_ = 0;
  int64_t disk_reads_ = 0;
  int64_t ops_served_ = 0;
  int64_t acked_writes_ = 0;
  int64_t recoveries_ = 0;
  int64_t lost_acked_total_ = 0;
};

}  // namespace elephant::sqlkv

#endif  // ELEPHANT_SQLKV_ENGINE_H_
