#include "sqlkv/wal.h"

namespace elephant::sqlkv {

void GroupCommitLog::Append(int64_t bytes, sim::Latch* done,
                            LogRecord record) {
  appends_++;
  record.lsn = next_lsn_++;
  pending_.push_back({bytes, done, record});
  if (!flushing_) {
    flushing_ = true;
    FlushLoop();
  }
}

std::vector<LogRecord> GroupCommitLog::DurableRecords(
    int64_t from_lsn) const {
  std::vector<LogRecord> out;
  for (const LogRecord& r : durable_) {
    if (r.lsn >= from_lsn) out.push_back(r);
  }
  return out;
}

sim::Task GroupCommitLog::FlushLoop() {
  while (!pending_.empty()) {
    std::vector<Pending> batch = std::move(pending_);
    pending_.clear();
    int64_t batch_bytes = 0;
    for (const Pending& p : batch) batch_bytes += p.bytes;
    SimTime write_time = SecondsToSimTime(
        static_cast<double>(batch_bytes) / (options_.write_mbps * 1e6));
    co_await sim_->Delay(options_.flush_latency + write_time);
    flushes_++;
    bytes_written_ += batch_bytes;
    for (const Pending& p : batch) {
      durable_.push_back(p.record);
      p.done->CountDown();
    }
    // Commits that arrived during this flush form the next batch.
  }
  flushing_ = false;
}

}  // namespace elephant::sqlkv
