#include "sqlkv/wal.h"

#include "common/check.h"
#include "common/string_util.h"

namespace elephant::sqlkv {

void GroupCommitLog::Append(int64_t bytes, sim::Latch* done,
                            LogRecord record) {
  appends_++;
  record.lsn = next_lsn_++;
  pending_.push_back({bytes, done, record});
  if (!flushing_) {
    flushing_ = true;
    FlushLoop();
  }
}

std::vector<LogRecord> GroupCommitLog::DurableRecords(
    int64_t from_lsn) const {
  std::vector<LogRecord> out;
  for (const LogRecord& r : durable_) {
    if (r.lsn >= from_lsn) out.push_back(r);
  }
  return out;
}

sim::Task GroupCommitLog::FlushLoop() {
  while (!pending_.empty()) {
    std::vector<Pending> batch = std::move(pending_);
    pending_.clear();
    inflight_batch_ = static_cast<int64_t>(batch.size());
    int64_t batch_bytes = 0;
    for (const Pending& p : batch) batch_bytes += p.bytes;
    SimTime write_time = SecondsToSimTime(
        static_cast<double>(batch_bytes) / (options_.write_mbps * 1e6));
    co_await sim_->Delay(options_.flush_latency + write_time);
    flushes_++;
    bytes_written_ += batch_bytes;
    inflight_batch_ = 0;
    for (const Pending& p : batch) {
      ELEPHANT_DCHECK(durable_.empty() ||
                      p.record.lsn > durable_.back().lsn)
          << "durable LSN regressed: " << p.record.lsn << " after "
          << durable_.back().lsn;
      durable_.push_back(p.record);
      p.done->CountDown();
    }
    // Commits that arrived during this flush form the next batch.
  }
  flushing_ = false;
}

Status GroupCommitLog::ValidateInvariants() const {
  for (size_t i = 1; i < durable_.size(); ++i) {
    if (durable_[i].lsn <= durable_[i - 1].lsn) {
      return Status::Internal(StrFormat(
          "durable LSNs not strictly monotone: %lld after %lld",
          (long long)durable_[i].lsn, (long long)durable_[i - 1].lsn));
    }
  }
  if (checkpoint_lsn_ > next_lsn_) {
    return Status::Internal(StrFormat(
        "checkpoint LSN %lld beyond next LSN %lld",
        (long long)checkpoint_lsn_, (long long)next_lsn_));
  }
  if (next_lsn_ != appends_) {
    return Status::Internal(StrFormat(
        "next LSN %lld != appended records %lld", (long long)next_lsn_,
        (long long)appends_));
  }
  if (static_cast<int64_t>(durable_.size() + pending_.size()) +
          inflight_batch_ !=
      appends_) {
    return Status::Internal(StrFormat(
        "lost log records: %lld durable + %lld pending + %lld in flight "
        "!= %lld appended",
        (long long)durable_.size(), (long long)pending_.size(),
        (long long)inflight_batch_, (long long)appends_));
  }
  return Status::OK();
}

bool WalTestCorruptor::RegressLastDurableLsn(GroupCommitLog* log) {
  if (log->durable_.size() < 2) return false;
  log->durable_.back().lsn = log->durable_.front().lsn;
  return true;
}

void WalTestCorruptor::OverrunCheckpoint(GroupCommitLog* log) {
  log->checkpoint_lsn_ = log->next_lsn_ + 1;
}

}  // namespace elephant::sqlkv
