#include "sqlkv/buffer_pool.h"

#include <algorithm>

namespace elephant::sqlkv {

BufferPool::BufferPool(int64_t capacity_bytes, int32_t page_bytes)
    : capacity_pages_(static_cast<size_t>(
          std::max<int64_t>(1, capacity_bytes / page_bytes))) {}

BufferPool::Access BufferPool::Touch(uint64_t page_id, bool mark_dirty) {
  Access access;
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    access.hit = true;
    hits_++;
    if (mark_dirty && !it->second->dirty) {
      it->second->dirty = true;
      dirty_count_++;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return access;
  }
  misses_++;
  if (lru_.size() >= capacity_pages_) {
    Entry& victim = lru_.back();
    access.evicted = true;
    access.evicted_dirty = victim.dirty;
    access.evicted_page = victim.page_id;
    if (victim.dirty) dirty_count_--;
    index_.erase(victim.page_id);
    lru_.pop_back();
  }
  lru_.push_front({page_id, mark_dirty});
  if (mark_dirty) dirty_count_++;
  index_[page_id] = lru_.begin();
  return access;
}

bool BufferPool::Contains(uint64_t page_id) const {
  return index_.count(page_id) > 0;
}

void BufferPool::MarkClean(uint64_t page_id) {
  auto it = index_.find(page_id);
  if (it != index_.end() && it->second->dirty) {
    it->second->dirty = false;
    dirty_count_--;
  }
}

std::vector<uint64_t> BufferPool::DirtyPages() const {
  std::vector<uint64_t> dirty;
  dirty.reserve(dirty_count_);
  for (const Entry& e : lru_) {
    if (e.dirty) dirty.push_back(e.page_id);
  }
  return dirty;
}

}  // namespace elephant::sqlkv
