#include "sqlkv/buffer_pool.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace elephant::sqlkv {

BufferPool::BufferPool(int64_t capacity_bytes, int32_t page_bytes)
    : capacity_pages_(static_cast<size_t>(
          std::max<int64_t>(1, capacity_bytes / page_bytes))) {}

BufferPool::Access BufferPool::Touch(uint64_t page_id, bool mark_dirty) {
  Access access;
  auto it = index_.find(page_id);
  if (it != index_.end()) {
    access.hit = true;
    hits_++;
    if (mark_dirty && !it->second->dirty) {
      it->second->dirty = true;
      dirty_count_++;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return access;
  }
  misses_++;
  if (lru_.size() >= capacity_pages_) {
    Entry& victim = lru_.back();
    access.evicted = true;
    access.evicted_dirty = victim.dirty;
    access.evicted_page = victim.page_id;
    if (victim.dirty) dirty_count_--;
    index_.erase(victim.page_id);
    lru_.pop_back();
  }
  lru_.push_front({page_id, mark_dirty});
  if (mark_dirty) dirty_count_++;
  index_[page_id] = lru_.begin();
  ELEPHANT_DCHECK(lru_.size() <= capacity_pages_)
      << "pool over capacity: " << lru_.size() << " resident, capacity "
      << capacity_pages_;
  ELEPHANT_DCHECK(index_.size() == lru_.size())
      << "page index and LRU list diverged";
  return access;
}

bool BufferPool::Contains(uint64_t page_id) const {
  return index_.count(page_id) > 0;
}

void BufferPool::MarkClean(uint64_t page_id) {
  auto it = index_.find(page_id);
  if (it != index_.end() && it->second->dirty) {
    it->second->dirty = false;
    dirty_count_--;
  }
}

std::vector<uint64_t> BufferPool::DirtyPages() const {
  std::vector<uint64_t> dirty;
  dirty.reserve(dirty_count_);
  for (const Entry& e : lru_) {
    if (e.dirty) dirty.push_back(e.page_id);
  }
  ELEPHANT_DCHECK(dirty.size() == dirty_count_)
      << "dirty_count " << dirty_count_ << " != dirty entries "
      << dirty.size();
  return dirty;
}

Status BufferPool::ValidateInvariants() const {
  if (lru_.size() > capacity_pages_) {
    return Status::Internal(StrFormat(
        "pool over capacity: %d resident of %d", (int)lru_.size(),
        (int)capacity_pages_));
  }
  if (index_.size() != lru_.size()) {
    return Status::Internal(StrFormat(
        "index size %d != LRU size %d (double-framed or dropped page)",
        (int)index_.size(), (int)lru_.size()));
  }
  size_t dirty = 0;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto found = index_.find(it->page_id);
    if (found == index_.end()) {
      return Status::Internal(StrFormat(
          "resident page %llu missing from the index",
          (unsigned long long)it->page_id));
    }
    if (found->second != it) {
      return Status::Internal(StrFormat(
          "page %llu double-framed: index points at a different frame",
          (unsigned long long)it->page_id));
    }
    if (it->dirty) dirty++;
  }
  if (dirty != dirty_count_) {
    return Status::Internal(StrFormat(
        "dirty_count %d != dirty entries %d", (int)dirty_count_,
        (int)dirty));
  }
  return Status::OK();
}

}  // namespace elephant::sqlkv
