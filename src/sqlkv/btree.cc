#include "sqlkv/btree.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"

namespace elephant::sqlkv {

namespace {
/// Per-entry overhead: row header + key + slot pointer.
constexpr int32_t kEntryOverhead = 16;
/// Maximum fanout of internal nodes.
constexpr size_t kMaxFanout = 128;
}  // namespace

struct BTree::Node {
  bool leaf = true;
  uint64_t page_id = 0;
  std::vector<uint64_t> keys;
  // Leaf state.
  std::vector<Record> records;
  int32_t used_bytes = 0;
  Node* next = nullptr;  // leaf chain for scans
  // Internal state: children.size() == keys.size() + 1; child i holds
  // keys < keys[i]; child i+1 holds keys >= keys[i].
  std::vector<std::unique_ptr<Node>> children;
};

struct BTree::InsertResult {
  Status status;
  std::unique_ptr<Node> split_right;  // non-null if the child split
  uint64_t split_key = 0;             // first key of split_right
};

BTree::BTree(int32_t page_bytes) : page_bytes_(page_bytes) {
  root_ = std::make_unique<Node>();
  root_->page_id = next_page_id_++;
}

BTree::~BTree() = default;

const BTree::Node* BTree::FindLeaf(uint64_t key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key) -
               node->keys.begin();
    node = node->children[i].get();
  }
  return node;
}

BTree::InsertResult BTree::InsertInto(Node* node, uint64_t key,
                                      Record&& record) {
  if (node->leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    size_t pos = it - node->keys.begin();
    if (it != node->keys.end() && *it == key) {
      return {Status::AlreadyExists(StrFormat("key %llu",
                                              (unsigned long long)key)),
              nullptr, 0};
    }
    int32_t entry = record.bytes() + kEntryOverhead;
    node->keys.insert(it, key);
    node->records.insert(node->records.begin() + pos, std::move(record));
    node->used_bytes += entry;
    logical_bytes_ += entry;
    size_++;

    if (node->used_bytes <= page_bytes_ ||
        node->keys.size() < 2) {  // a single oversized record stays put
      return {Status::OK(), nullptr, 0};
    }
    auto right = std::make_unique<Node>();
    right->leaf = true;
    right->page_id = next_page_id_++;
    int32_t moved = 0;
    size_t split_pos = node->keys.size();
    if (pos == node->keys.size() - 1) {
      // Rightmost append (ascending load): keep the left leaf packed and
      // move only the new entry — the standard 90/10 split that real
      // engines use so bulk loads produce full pages.
      split_pos = node->keys.size() - 1;
      moved = node->records[split_pos].bytes() + kEntryOverhead;
    } else {
      // Walk from the back until roughly half the bytes moved.
      while (split_pos > 1 && moved < node->used_bytes / 2) {
        split_pos--;
        moved += node->records[split_pos].bytes() + kEntryOverhead;
      }
    }
    right->keys.assign(node->keys.begin() + split_pos, node->keys.end());
    for (size_t i = split_pos; i < node->records.size(); ++i) {
      right->records.push_back(std::move(node->records[i]));
    }
    node->keys.resize(split_pos);
    node->records.resize(split_pos);
    right->used_bytes = moved;
    node->used_bytes -= moved;
    right->next = node->next;
    node->next = right.get();
    leaf_count_++;
    ELEPHANT_DCHECK(!node->keys.empty() && !right->keys.empty())
        << "leaf split produced an empty side";
    ELEPHANT_DCHECK(node->keys.back() < right->keys.front())
        << "leaf split broke key ordering";
    ELEPHANT_DCHECK(node->used_bytes >= 0)
        << "leaf split drove used_bytes negative";
    uint64_t split_key = right->keys.front();
    return {Status::OK(), std::move(right), split_key};
  }

  // Internal node: route to child.
  size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key) -
             node->keys.begin();
  InsertResult child_result =
      InsertInto(node->children[i].get(), key, std::move(record));
  if (!child_result.status.ok() || !child_result.split_right) {
    return {child_result.status, nullptr, 0};
  }
  node->keys.insert(node->keys.begin() + i, child_result.split_key);
  node->children.insert(node->children.begin() + i + 1,
                        std::move(child_result.split_right));
  if (node->children.size() <= kMaxFanout) {
    return {Status::OK(), nullptr, 0};
  }
  // Split the internal node.
  auto right = std::make_unique<Node>();
  right->leaf = false;
  right->page_id = next_page_id_++;
  size_t mid = node->keys.size() / 2;
  uint64_t up_key = node->keys[mid];
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  for (size_t c = mid + 1; c < node->children.size(); ++c) {
    right->children.push_back(std::move(node->children[c]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  ELEPHANT_DCHECK(right->children.size() == right->keys.size() + 1 &&
                  node->children.size() == node->keys.size() + 1)
      << "internal split broke the child/separator relationship";
  return {Status::OK(), std::move(right), up_key};
}

Status BTree::Insert(uint64_t key, Record record) {
  InsertResult result = InsertInto(root_.get(), key, std::move(record));
  if (!result.status.ok()) return result.status;
  if (result.split_right) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->page_id = next_page_id_++;
    new_root->keys.push_back(result.split_key);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(result.split_right));
    root_ = std::move(new_root);
    height_++;
  }
  return Status::OK();
}

Status BTree::Update(uint64_t key, const std::function<void(Record*)>& fn) {
  Node* node = const_cast<Node*>(FindLeaf(key));
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) {
    return Status::NotFound(StrFormat("key %llu", (unsigned long long)key));
  }
  size_t pos = it - node->keys.begin();
  Record& rec = node->records[pos];
  int32_t before = rec.bytes();
  fn(&rec);
  int32_t delta = rec.bytes() - before;
  node->used_bytes += delta;
  logical_bytes_ += delta;
  return Status::OK();
}

Result<BTree::Lookup> BTree::Get(uint64_t key) const {
  const Node* node = FindLeaf(key);
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) {
    return Status::NotFound(StrFormat("key %llu", (unsigned long long)key));
  }
  Lookup lookup;
  lookup.record = &node->records[it - node->keys.begin()];
  lookup.page_id = node->page_id;
  return lookup;
}

Status BTree::Remove(uint64_t key) {
  Node* node = const_cast<Node*>(FindLeaf(key));
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) {
    return Status::NotFound(StrFormat("key %llu", (unsigned long long)key));
  }
  size_t pos = it - node->keys.begin();
  int32_t entry = node->records[pos].bytes() + kEntryOverhead;
  node->keys.erase(it);
  node->records.erase(node->records.begin() + pos);
  node->used_bytes -= entry;
  logical_bytes_ -= entry;
  size_--;
  ELEPHANT_DCHECK(node->used_bytes >= 0 && logical_bytes_ >= 0)
      << "Remove drove byte accounting negative";
  return Status::OK();
}

int BTree::Scan(uint64_t start, int count,
                const std::function<void(uint64_t, const Record&,
                                         uint64_t)>& visit) const {
  const Node* node = FindLeaf(start);
  size_t pos = std::lower_bound(node->keys.begin(), node->keys.end(),
                                start) -
               node->keys.begin();
  int visited = 0;
  while (node != nullptr && visited < count) {
    if (pos >= node->keys.size()) {
      node = node->next;
      pos = 0;
      continue;
    }
    visit(node->keys[pos], node->records[pos], node->page_id);
    visited++;
    pos++;
  }
  return visited;
}

Result<uint64_t> BTree::LowerBound(uint64_t start) const {
  const Node* node = FindLeaf(start);
  size_t pos = std::lower_bound(node->keys.begin(), node->keys.end(),
                                start) -
               node->keys.begin();
  while (node != nullptr) {
    if (pos < node->keys.size()) return node->keys[pos];
    node = node->next;
    pos = 0;
  }
  return Status::NotFound("no key >= start");
}

Result<uint64_t> BTree::MaxKey() const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.back().get();
  // The rightmost leaf can be empty only when the tree is empty (no
  // merges, but also no way to empty a non-root leaf without Remove
  // of every key; walk back via scan in that rare case).
  if (!node->keys.empty()) return node->keys.back();
  if (size_ == 0) return Status::NotFound("empty tree");
  // Fallback: full scan (rare; only after heavy Remove use).
  uint64_t max_key = 0;
  Scan(0, static_cast<int>(size_),
       [&max_key](uint64_t k, const Record&, uint64_t) { max_key = k; });
  return max_key;
}

Status BTree::CheckNode(const Node* node, uint64_t lo, uint64_t hi,
                        int depth) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return Status::Internal("keys not sorted");
  }
  for (size_t i = 1; i < node->keys.size(); ++i) {
    if (node->keys[i] == node->keys[i - 1]) {
      return Status::Internal(StrFormat(
          "duplicate key %llu", (unsigned long long)node->keys[i]));
    }
  }
  for (uint64_t k : node->keys) {
    if (k < lo || k >= hi) return Status::Internal("key out of range");
  }
  if (node->page_id == 0 || node->page_id >= next_page_id_) {
    return Status::Internal("page id outside the allocated range");
  }
  if (node->leaf) {
    if (node->keys.size() != node->records.size()) {
      return Status::Internal("key/record count mismatch");
    }
    int32_t bytes = 0;
    for (const Record& r : node->records) bytes += r.bytes() + kEntryOverhead;
    if (bytes != node->used_bytes) {
      return Status::Internal(StrFormat(
          "used_bytes accounting broken: stored %d, actual %d",
          node->used_bytes, bytes));
    }
    // Occupancy: a leaf may exceed its byte budget only while holding a
    // single (oversized) record — the split rule in InsertInto.
    if (node->keys.size() > 1 && node->used_bytes > page_bytes_) {
      return Status::Internal(StrFormat(
          "leaf over byte budget: %d used of %d with %d records",
          node->used_bytes, page_bytes_, (int)node->keys.size()));
    }
    if (!node->children.empty()) {
      return Status::Internal("leaf with children");
    }
    if (depth != height_) return Status::Internal("leaves at mixed depth");
    return Status::OK();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Internal("child count mismatch");
  }
  if (node->children.size() > kMaxFanout + 1) {
    return Status::Internal("internal node over fanout bound");
  }
  if (node != root_.get() && node->keys.empty()) {
    return Status::Internal("non-root internal node with no separator");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    if (node->children[i] == nullptr) {
      return Status::Internal("null child pointer");
    }
    uint64_t child_lo = i == 0 ? lo : node->keys[i - 1];
    uint64_t child_hi = i == node->keys.size() ? hi : node->keys[i];
    ELEPHANT_RETURN_NOT_OK(
        CheckNode(node->children[i].get(), child_lo, child_hi, depth + 1));
  }
  return Status::OK();
}

Status BTree::ValidateInvariants() const {
  if (root_ == nullptr) return Status::Internal("null root");
  ELEPHANT_RETURN_NOT_OK(CheckNode(root_.get(), 0, UINT64_MAX, 1));

  // Leaf-chain integrity: the next-pointer chain must visit exactly the
  // tree's leaves in left-to-right order, keys strictly increasing
  // across the whole chain, and the aggregate counters must agree with
  // what the chain sees.
  std::vector<const Node*> leaves_in_tree;
  CollectLeaves(root_.get(), &leaves_in_tree);
  const Node* chain = root_.get();
  while (!chain->leaf) chain = chain->children.front().get();
  size_t chain_len = 0;
  size_t chain_records = 0;
  int64_t chain_bytes = 0;
  bool have_prev = false;
  uint64_t prev_key = 0;
  for (const Node* leaf = chain; leaf != nullptr; leaf = leaf->next) {
    if (chain_len >= leaves_in_tree.size() ||
        leaves_in_tree[chain_len] != leaf) {
      return Status::Internal(StrFormat(
          "leaf chain diverges from the tree at position %d",
          (int)chain_len));
    }
    chain_len++;
    chain_records += leaf->keys.size();
    chain_bytes += leaf->used_bytes;
    for (uint64_t k : leaf->keys) {
      if (have_prev && k <= prev_key) {
        return Status::Internal(StrFormat(
            "leaf chain keys not strictly increasing at %llu",
            (unsigned long long)k));
      }
      prev_key = k;
      have_prev = true;
    }
  }
  if (chain_len != leaves_in_tree.size()) {
    return Status::Internal(StrFormat(
        "leaf chain visits %d leaves, tree has %d", (int)chain_len,
        (int)leaves_in_tree.size()));
  }
  if (chain_len != leaf_count_) {
    return Status::Internal(StrFormat(
        "leaf_count %d != actual leaves %d", (int)leaf_count_,
        (int)chain_len));
  }
  if (chain_records != size_) {
    return Status::Internal(StrFormat("size %d != records in leaves %d",
                                      (int)size_, (int)chain_records));
  }
  if (chain_bytes != logical_bytes_) {
    return Status::Internal(StrFormat(
        "logical_bytes %lld != sum of leaf used_bytes %lld",
        (long long)logical_bytes_, (long long)chain_bytes));
  }

  // Page-id uniqueness across every node.
  std::vector<uint64_t> page_ids;
  CollectPageIds(root_.get(), &page_ids);
  std::sort(page_ids.begin(), page_ids.end());
  if (std::adjacent_find(page_ids.begin(), page_ids.end()) !=
      page_ids.end()) {
    return Status::Internal("duplicate page id (double-mapped node)");
  }
  return Status::OK();
}

void BTree::CollectLeaves(const Node* node,
                          std::vector<const Node*>* out) const {
  if (node->leaf) {
    out->push_back(node);
    return;
  }
  for (const auto& child : node->children) CollectLeaves(child.get(), out);
}

void BTree::CollectPageIds(const Node* node,
                           std::vector<uint64_t>* out) const {
  out->push_back(node->page_id);
  for (const auto& child : node->children) CollectPageIds(child.get(), out);
}

bool BTreeTestCorruptor::SwapLeafKeys(BTree* tree) {
  BTree::Node* node = tree->root_.get();
  while (!node->leaf) node = node->children.front().get();
  for (; node != nullptr; node = node->next) {
    if (node->keys.size() >= 2) {
      std::swap(node->keys[0], node->keys[1]);
      return true;
    }
  }
  return false;
}

bool BTreeTestCorruptor::BreakLeafChain(BTree* tree) {
  BTree::Node* node = tree->root_.get();
  while (!node->leaf) node = node->children.front().get();
  if (node->next == nullptr) return false;
  node->next = node->next->next;  // drop one leaf from the chain
  return true;
}

void BTreeTestCorruptor::SkewUsedBytes(BTree* tree, int32_t delta) {
  BTree::Node* node = tree->root_.get();
  while (!node->leaf) node = node->children.front().get();
  node->used_bytes += delta;
}

}  // namespace elephant::sqlkv
