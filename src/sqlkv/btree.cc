#include "sqlkv/btree.h"

#include <algorithm>

#include "common/string_util.h"

namespace elephant::sqlkv {

namespace {
/// Per-entry overhead: row header + key + slot pointer.
constexpr int32_t kEntryOverhead = 16;
/// Maximum fanout of internal nodes.
constexpr size_t kMaxFanout = 128;
}  // namespace

struct BTree::Node {
  bool leaf = true;
  uint64_t page_id = 0;
  std::vector<uint64_t> keys;
  // Leaf state.
  std::vector<Record> records;
  int32_t used_bytes = 0;
  Node* next = nullptr;  // leaf chain for scans
  // Internal state: children.size() == keys.size() + 1; child i holds
  // keys < keys[i]; child i+1 holds keys >= keys[i].
  std::vector<std::unique_ptr<Node>> children;
};

struct BTree::InsertResult {
  Status status;
  std::unique_ptr<Node> split_right;  // non-null if the child split
  uint64_t split_key = 0;             // first key of split_right
};

BTree::BTree(int32_t page_bytes) : page_bytes_(page_bytes) {
  root_ = std::make_unique<Node>();
  root_->page_id = next_page_id_++;
}

BTree::~BTree() = default;

const BTree::Node* BTree::FindLeaf(uint64_t key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key) -
               node->keys.begin();
    node = node->children[i].get();
  }
  return node;
}

BTree::InsertResult BTree::InsertInto(Node* node, uint64_t key,
                                      Record&& record) {
  if (node->leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    size_t pos = it - node->keys.begin();
    if (it != node->keys.end() && *it == key) {
      return {Status::AlreadyExists(StrFormat("key %llu",
                                              (unsigned long long)key)),
              nullptr, 0};
    }
    int32_t entry = record.bytes() + kEntryOverhead;
    node->keys.insert(it, key);
    node->records.insert(node->records.begin() + pos, std::move(record));
    node->used_bytes += entry;
    logical_bytes_ += entry;
    size_++;

    if (node->used_bytes <= page_bytes_ ||
        node->keys.size() < 2) {  // a single oversized record stays put
      return {Status::OK(), nullptr, 0};
    }
    auto right = std::make_unique<Node>();
    right->leaf = true;
    right->page_id = next_page_id_++;
    int32_t moved = 0;
    size_t split_pos = node->keys.size();
    if (pos == node->keys.size() - 1) {
      // Rightmost append (ascending load): keep the left leaf packed and
      // move only the new entry — the standard 90/10 split that real
      // engines use so bulk loads produce full pages.
      split_pos = node->keys.size() - 1;
      moved = node->records[split_pos].bytes() + kEntryOverhead;
    } else {
      // Walk from the back until roughly half the bytes moved.
      while (split_pos > 1 && moved < node->used_bytes / 2) {
        split_pos--;
        moved += node->records[split_pos].bytes() + kEntryOverhead;
      }
    }
    right->keys.assign(node->keys.begin() + split_pos, node->keys.end());
    for (size_t i = split_pos; i < node->records.size(); ++i) {
      right->records.push_back(std::move(node->records[i]));
    }
    node->keys.resize(split_pos);
    node->records.resize(split_pos);
    right->used_bytes = moved;
    node->used_bytes -= moved;
    right->next = node->next;
    node->next = right.get();
    leaf_count_++;
    uint64_t split_key = right->keys.front();
    return {Status::OK(), std::move(right), split_key};
  }

  // Internal node: route to child.
  size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key) -
             node->keys.begin();
  InsertResult child_result =
      InsertInto(node->children[i].get(), key, std::move(record));
  if (!child_result.status.ok() || !child_result.split_right) {
    return {child_result.status, nullptr, 0};
  }
  node->keys.insert(node->keys.begin() + i, child_result.split_key);
  node->children.insert(node->children.begin() + i + 1,
                        std::move(child_result.split_right));
  if (node->children.size() <= kMaxFanout) {
    return {Status::OK(), nullptr, 0};
  }
  // Split the internal node.
  auto right = std::make_unique<Node>();
  right->leaf = false;
  right->page_id = next_page_id_++;
  size_t mid = node->keys.size() / 2;
  uint64_t up_key = node->keys[mid];
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  for (size_t c = mid + 1; c < node->children.size(); ++c) {
    right->children.push_back(std::move(node->children[c]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return {Status::OK(), std::move(right), up_key};
}

Status BTree::Insert(uint64_t key, Record record) {
  InsertResult result = InsertInto(root_.get(), key, std::move(record));
  if (!result.status.ok()) return result.status;
  if (result.split_right) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->page_id = next_page_id_++;
    new_root->keys.push_back(result.split_key);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(result.split_right));
    root_ = std::move(new_root);
    height_++;
  }
  return Status::OK();
}

Status BTree::Update(uint64_t key, const std::function<void(Record*)>& fn) {
  Node* node = const_cast<Node*>(FindLeaf(key));
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) {
    return Status::NotFound(StrFormat("key %llu", (unsigned long long)key));
  }
  size_t pos = it - node->keys.begin();
  Record& rec = node->records[pos];
  int32_t before = rec.bytes();
  fn(&rec);
  int32_t delta = rec.bytes() - before;
  node->used_bytes += delta;
  logical_bytes_ += delta;
  return Status::OK();
}

Result<BTree::Lookup> BTree::Get(uint64_t key) const {
  const Node* node = FindLeaf(key);
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) {
    return Status::NotFound(StrFormat("key %llu", (unsigned long long)key));
  }
  Lookup lookup;
  lookup.record = &node->records[it - node->keys.begin()];
  lookup.page_id = node->page_id;
  return lookup;
}

Status BTree::Remove(uint64_t key) {
  Node* node = const_cast<Node*>(FindLeaf(key));
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) {
    return Status::NotFound(StrFormat("key %llu", (unsigned long long)key));
  }
  size_t pos = it - node->keys.begin();
  int32_t entry = node->records[pos].bytes() + kEntryOverhead;
  node->keys.erase(it);
  node->records.erase(node->records.begin() + pos);
  node->used_bytes -= entry;
  logical_bytes_ -= entry;
  size_--;
  return Status::OK();
}

int BTree::Scan(uint64_t start, int count,
                const std::function<void(uint64_t, const Record&,
                                         uint64_t)>& visit) const {
  const Node* node = FindLeaf(start);
  size_t pos = std::lower_bound(node->keys.begin(), node->keys.end(),
                                start) -
               node->keys.begin();
  int visited = 0;
  while (node != nullptr && visited < count) {
    if (pos >= node->keys.size()) {
      node = node->next;
      pos = 0;
      continue;
    }
    visit(node->keys[pos], node->records[pos], node->page_id);
    visited++;
    pos++;
  }
  return visited;
}

Result<uint64_t> BTree::LowerBound(uint64_t start) const {
  const Node* node = FindLeaf(start);
  size_t pos = std::lower_bound(node->keys.begin(), node->keys.end(),
                                start) -
               node->keys.begin();
  while (node != nullptr) {
    if (pos < node->keys.size()) return node->keys[pos];
    node = node->next;
    pos = 0;
  }
  return Status::NotFound("no key >= start");
}

Result<uint64_t> BTree::MaxKey() const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.back().get();
  // The rightmost leaf can be empty only when the tree is empty (no
  // merges, but also no way to empty a non-root leaf without Remove
  // of every key; walk back via scan in that rare case).
  if (!node->keys.empty()) return node->keys.back();
  if (size_ == 0) return Status::NotFound("empty tree");
  // Fallback: full scan (rare; only after heavy Remove use).
  uint64_t max_key = 0;
  Scan(0, static_cast<int>(size_),
       [&max_key](uint64_t k, const Record&, uint64_t) { max_key = k; });
  return max_key;
}

Status BTree::CheckNode(const Node* node, uint64_t lo, uint64_t hi,
                        int depth) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return Status::Internal("keys not sorted");
  }
  for (uint64_t k : node->keys) {
    if (k < lo || k >= hi) return Status::Internal("key out of range");
  }
  if (node->leaf) {
    if (node->keys.size() != node->records.size()) {
      return Status::Internal("key/record count mismatch");
    }
    int32_t bytes = 0;
    for (const Record& r : node->records) bytes += r.bytes() + kEntryOverhead;
    if (bytes != node->used_bytes) {
      return Status::Internal("used_bytes accounting broken");
    }
    if (depth != height_) return Status::Internal("leaves at mixed depth");
    return Status::OK();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Internal("child count mismatch");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    uint64_t child_lo = i == 0 ? lo : node->keys[i - 1];
    uint64_t child_hi = i == node->keys.size() ? hi : node->keys[i];
    ELEPHANT_RETURN_NOT_OK(
        CheckNode(node->children[i].get(), child_lo, child_hi, depth + 1));
  }
  return Status::OK();
}

Status BTree::CheckInvariants() const {
  return CheckNode(root_.get(), 0, UINT64_MAX, 1);
}

}  // namespace elephant::sqlkv
