#include "sqlkv/engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/lockset.h"

namespace elephant::sqlkv {

using LockMode = sim::LocksetChecker::Mode;
using LockAccess = sim::LocksetChecker::Access;

namespace {
/// Lazy-writer flush of an evicted dirty page: occupies the disk but the
/// foreground operation does not wait for it.
sim::Task AsyncWriteback(cluster::Node* node, int64_t bytes) {
  co_await node->data_disks().RandomWrite(bytes);
}
}  // namespace

SqlEngine::SqlEngine(sim::Simulation* sim, cluster::Node* node,
                     const SqlEngineOptions& options)
    : sim_(sim),
      node_(node),
      options_(options),
      btree_(options.page_bytes),
      pool_(options.memory_bytes, options.page_bytes),
      locks_(sim),
      log_(sim, options.log) {
  lockset_domain_ = sim->lockset_checker().NewDomain();
}

Status SqlEngine::LoadRecord(uint64_t key, int32_t logical_bytes) {
  Record record;
  record.logical_bytes = logical_bytes;
  return btree_.Insert(key, std::move(record));
}

void SqlEngine::Start() {
  if (running_) return;
  running_ = true;
  Checkpointer();
}

sim::Task SqlEngine::FaultPage(uint64_t page_id, bool dirty,
                               bool newly_allocated, Status* io_status,
                               sim::Latch* faulted) {
  BufferPool::Access access = pool_.Touch(page_id, dirty);
  if (!access.hit) {
    if (access.evicted_dirty) {
      AsyncWriteback(node_, options_.page_bytes);
    }
    if (!newly_allocated) {
      disk_reads_++;
      Status read = co_await node_->data_disks().RandomReadChecked(
          options_.page_bytes);
      if (!read.ok() && io_status != nullptr) *io_status = std::move(read);
    }
  }
  faulted->CountDown();
}

sim::Task SqlEngine::Read(uint64_t key, OpOutcome* out, sim::Latch* done) {
  if (crashed_) {
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  co_await node_->cpu().Acquire(node_->CpuWork(options_.read_cpu));
  // READ COMMITTED mandates a shared row lock around the record touch;
  // READ UNCOMMITTED reads are legitimately lock-free (§3.4.3).
  const LockMode required =
      options_.read_uncommitted ? LockMode::kNone : LockMode::kShared;
  sim::LocksetScope lockset(&sim_->lockset_checker(), "sqlkv.read");
  bool locked = !options_.read_uncommitted;
  if (locked && test_skip_next_read_lock_) {
    test_skip_next_read_lock_ = false;
    locked = false;  // planted race: the checker must flag this access
  }
  if (locked) {
    locks_.NoteAcquisition();
    co_await locks_.LockFor(key).AcquireShared();
    lockset.NoteAcquired({lockset_domain_, key}, LockMode::kShared);
  }
  lockset.CheckAccess({lockset_domain_, key}, key, LockAccess::kRead,
                      required);
  auto lookup = btree_.Get(key);
  if (lookup.ok()) {
    Status io;
    sim::PooledLatch faulted(&sim_->latch_pool(), 1);
    FaultPage(lookup.value().page_id, /*dirty=*/false,
              /*newly_allocated=*/false, &io, faulted.get());
    co_await faulted->Wait();
    if (io.ok()) {
      out->ok = true;
      out->records = 1;
    } else {
      out->transient_error = true;
    }
  }
  if (locked) {
    locks_.Release(key, /*exclusive=*/false);
    lockset.NoteReleased({lockset_domain_, key}, LockMode::kShared);
  }
  ops_served_++;
  done->CountDown();
}

sim::Task SqlEngine::Update(uint64_t key, int32_t field_bytes,
                            OpOutcome* out, sim::Latch* done) {
  if (crashed_) {
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  co_await node_->cpu().Acquire(node_->CpuWork(options_.update_cpu));
  sim::LocksetScope lockset(&sim_->lockset_checker(), "sqlkv.update");
  locks_.NoteAcquisition();
  co_await locks_.LockFor(key).AcquireExclusive();
  lockset.NoteAcquired({lockset_domain_, key}, LockMode::kExclusive);
  lockset.CheckAccess({lockset_domain_, key}, key, LockAccess::kWrite,
                      LockMode::kExclusive);
  auto lookup = btree_.Get(key);
  if (lookup.ok()) {
    Status io;
    sim::PooledLatch faulted(&sim_->latch_pool(), 1);
    FaultPage(lookup.value().page_id, /*dirty=*/true,
              /*newly_allocated=*/false, &io, faulted.get());
    co_await faulted->Wait();
    if (!io.ok()) {
      // The page never made it into memory; nothing was modified and
      // nothing is logged or acknowledged.
      out->transient_error = true;
    } else {
      // WAL: the transaction commits when its log batch is durable.
      sim::PooledLatch committed(&sim_->latch_pool(), 1);
      LogRecord record;
      record.kind = LogRecord::Kind::kUpdate;
      record.key = key;
      record.bytes = field_bytes;
      log_.Append(options_.log_record_bytes + field_bytes, committed.get(),
                  record);
      co_await committed->Wait();
      acked_writes_++;
      out->ok = true;
      out->records = 1;
    }
  }
  locks_.Release(key, /*exclusive=*/true);
  lockset.NoteReleased({lockset_domain_, key}, LockMode::kExclusive);
  ops_served_++;
  done->CountDown();
}

sim::Task SqlEngine::Insert(uint64_t key, int32_t logical_bytes,
                            OpOutcome* out, sim::Latch* done) {
  if (crashed_) {
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  co_await node_->cpu().Acquire(node_->CpuWork(options_.insert_cpu));
  sim::LocksetScope lockset(&sim_->lockset_checker(), "sqlkv.insert");
  locks_.NoteAcquisition();
  co_await locks_.LockFor(key).AcquireExclusive();
  lockset.NoteAcquired({lockset_domain_, key}, LockMode::kExclusive);
  lockset.CheckAccess({lockset_domain_, key}, key, LockAccess::kWrite,
                      LockMode::kExclusive);
  Record record;
  record.logical_bytes = logical_bytes;
  Status st = btree_.Insert(key, std::move(record));
  if (st.ok()) {
    auto lookup = btree_.Get(key);
    Status io;
    sim::PooledLatch faulted(&sim_->latch_pool(), 1);
    FaultPage(lookup.value().page_id, /*dirty=*/true,
              /*newly_allocated=*/true, &io, faulted.get());
    co_await faulted->Wait();
    if (!io.ok()) {
      // Roll the unacknowledged insert back out of the in-memory image
      // so a retry can succeed cleanly. The key was just inserted, so
      // the removal must succeed.
      ELEPHANT_CHECK_OK(btree_.Remove(key));
      out->transient_error = true;
    } else {
      sim::PooledLatch committed(&sim_->latch_pool(), 1);
      LogRecord record;
      record.kind = LogRecord::Kind::kInsert;
      record.key = key;
      record.bytes = logical_bytes;
      log_.Append(options_.log_record_bytes + logical_bytes, committed.get(),
                  record);
      co_await committed->Wait();
      acked_writes_++;
      out->ok = true;
      out->records = 1;
    }
  }
  locks_.Release(key, /*exclusive=*/true);
  lockset.NoteReleased({lockset_domain_, key}, LockMode::kExclusive);
  ops_served_++;
  done->CountDown();
}

sim::Task SqlEngine::Scan(uint64_t start_key, int max_records,
                          OpOutcome* out, sim::Latch* done) {
  if (crashed_) {
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  co_await node_->cpu().Acquire(
      node_->CpuWork(options_.scan_cpu_per_record * std::max(1, max_records)));
  // Deliberately uninstrumented for the lockset checker: the model's
  // range scans read clustered leaves lock-free by design (no range
  // locks are modeled), so there is no mandated lock to check. See
  // DESIGN.md §13.
  // Collect the leaf pages holding the range.
  std::vector<uint64_t> pages;
  int found = btree_.Scan(start_key, max_records,
                          [&pages](uint64_t, const Record&, uint64_t page) {
                            if (pages.empty() || pages.back() != page) {
                              pages.push_back(page);
                            }
                          });
  bool first_miss = true;
  Status io;
  for (uint64_t page : pages) {
    BufferPool::Access access = pool_.Touch(page, false);
    if (!access.hit) {
      if (access.evicted_dirty) {
        AsyncWriteback(node_, options_.page_bytes);
      }
      disk_reads_++;
      if (first_miss) {
        // Position once, then stream: clustered leaves are contiguous.
        io = co_await node_->data_disks().RandomReadChecked(
            options_.page_bytes);
        first_miss = false;
      } else {
        io = co_await node_->data_disks().SeqReadChecked(
            options_.page_bytes);
      }
      if (!io.ok()) break;
    }
  }
  if (io.ok()) {
    out->ok = true;
    out->records = found;
  } else {
    out->transient_error = true;
  }
  ops_served_++;
  done->CountDown();
}

sim::Task SqlEngine::Checkpointer() {
  while (running_) {
    co_await sim_->Delay(options_.checkpoint_interval);
    if (!running_) break;
    if (crashed_) continue;  // no checkpoints while the process is down
    std::vector<uint64_t> dirty = pool_.DirtyPages();
    if (dirty.empty()) continue;
    checkpoints_++;
    int64_t pages_per_chunk =
        std::max<int64_t>(1, options_.checkpoint_chunk_bytes /
                                 options_.page_bytes);
    for (size_t i = 0; i < dirty.size(); i += pages_per_chunk) {
      int64_t batch = std::min<int64_t>(pages_per_chunk,
                                        dirty.size() - i);
      co_await node_->data_disks().SeqWrite(batch * options_.page_bytes);
      for (int64_t j = 0; j < batch; ++j) pool_.MarkClean(dirty[i + j]);
    }
    log_.NoteCheckpoint();
  }
}

Status SqlEngine::ValidateInvariants() const {
  ELEPHANT_RETURN_NOT_OK(btree_.ValidateInvariants());
  ELEPHANT_RETURN_NOT_OK(pool_.ValidateInvariants());
  ELEPHANT_RETURN_NOT_OK(log_.ValidateInvariants());
  return locks_.ValidateInvariants();
}

Status SqlEngine::ValidateQuiesced() const {
  ELEPHANT_RETURN_NOT_OK(ValidateInvariants());
  return locks_.ValidateQuiesced();
}

SqlEngine::RecoveryReport SqlEngine::ReplayRedo() {
  // Crash: every memory-resident page is gone. Recovery = the disk
  // image as of the last checkpoint + redo of the durable log suffix.
  // Because commits are acknowledged only after their batch flushes,
  // every acknowledged write is in the durable log: nothing is lost.
  RecoveryReport report;
  report.acknowledged_writes = acked_writes_;
  std::vector<LogRecord> redo = log_.DurableRecords(log_.checkpoint_lsn());
  report.redo_records = static_cast<int64_t>(redo.size());
  // The pool restarts cold (as after the paper's pre-run memory flush);
  // redo replay re-faults and re-dirties the pages it touches.
  pool_ = BufferPool(options_.memory_bytes, options_.page_bytes);
  for (const LogRecord& r : redo) {
    if (r.kind == LogRecord::Kind::kCheckpoint) continue;
    auto lookup = btree_.Get(r.key);
    if (!lookup.ok()) {
      // A durable redo record whose key is gone from the image: an
      // acknowledged write recovery cannot re-apply.
      report.lost_acknowledged_writes++;
      continue;
    }
    pool_.Touch(lookup.value().page_id, /*mark_dirty=*/true);
  }
  recoveries_++;
  lost_acked_total_ += report.lost_acknowledged_writes;
  return report;
}

SqlEngine::RecoveryReport SqlEngine::SimulateCrashAndRecover() {
  return ReplayRedo();
}

void SqlEngine::Crash() {
  if (crashed_) return;
  crashed_ = true;
}

sim::Task SqlEngine::Restart(RecoveryReport* report, sim::Latch* done) {
  ELEPHANT_CHECK(crashed_) << "Restart on an engine that never crashed";
  // Read the redo suffix sequentially off the dedicated log spindle.
  int64_t redo_bytes =
      static_cast<int64_t>(log_.DurableRecords(log_.checkpoint_lsn()).size()) *
      options_.log_record_bytes;
  if (redo_bytes > 0) {
    co_await node_->log_disk().Read(redo_bytes, /*sequential=*/true);
  }
  RecoveryReport local = ReplayRedo();
  // Redo replay is CPU-light but not free.
  if (local.redo_records > 0) {
    co_await node_->cpu().Acquire(
        node_->CpuWork(local.redo_records * kMicrosecond));
  }
  // Recovery must hand back a structurally sound engine.
  ELEPHANT_CHECK_OK(btree_.ValidateInvariants());
  ELEPHANT_CHECK_OK(pool_.ValidateInvariants());
  ELEPHANT_CHECK_OK(log_.ValidateInvariants());
  crashed_ = false;
  if (report != nullptr) *report = local;
  if (done != nullptr) done->CountDown();
}

}  // namespace elephant::sqlkv
