#include "sqlkv/lock_manager.h"

namespace elephant::sqlkv {

sim::RwLock& LockManager::LockFor(uint64_t key) {
  auto it = locks_.find(key);
  if (it == locks_.end()) {
    it = locks_.emplace(key, std::make_unique<sim::RwLock>(sim_)).first;
  }
  return *it->second;
}

void LockManager::Release(uint64_t key, bool exclusive) {
  auto it = locks_.find(key);
  if (it == locks_.end()) return;
  sim::RwLock& lock = *it->second;
  lock.Release(exclusive);
  if (lock.readers() == 0 && !lock.writer_active() &&
      lock.queue_length() == 0) {
    locks_.erase(it);
  }
}

}  // namespace elephant::sqlkv
