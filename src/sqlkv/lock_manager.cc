#include "sqlkv/lock_manager.h"

#include "common/check.h"
#include "common/string_util.h"

namespace elephant::sqlkv {

sim::RwLock& LockManager::LockFor(uint64_t key) {
  auto it = locks_.find(key);
  if (it == locks_.end()) {
    it = locks_.emplace(key, std::make_unique<sim::RwLock>(sim_)).first;
  }
  return *it->second;
}

void LockManager::Release(uint64_t key, bool exclusive) {
  auto it = locks_.find(key);
  ELEPHANT_DCHECK(it != locks_.end())
      << "Release(" << key << ") for a key with no lock entry";
  if (it == locks_.end()) return;
  sim::RwLock& lock = *it->second;
  lock.Release(exclusive);
  if (lock.readers() == 0 && !lock.writer_active() &&
      lock.queue_length() == 0) {
    retired_wait_time_ += lock.total_wait_time();
    locks_.erase(it);
  }
}

SimTime LockManager::TotalWaitTime() const {
  SimTime total = retired_wait_time_;
  // Hash-order iteration is safe here: summation is order-independent.
  for (const auto& [key, lock] : locks_) {
    total += lock->total_wait_time();
  }
  return total;
}

Status LockManager::ValidateInvariants() const {
  for (const auto& [key, lock] : locks_) {
    if (lock->readers() == 0 && !lock->writer_active() &&
        lock->queue_length() == 0) {
      return Status::Internal(StrFormat(
          "idle lock entry retained for key %llu",
          (unsigned long long)key));
    }
  }
  return Status::OK();
}

Status LockManager::ValidateQuiesced() const {
  ELEPHANT_RETURN_NOT_OK(ValidateInvariants());
  if (!locks_.empty()) {
    uint64_t sample = locks_.begin()->first;
    return Status::Internal(StrFormat(
        "%d lock entries leaked after quiesce (e.g. key %llu)",
        (int)locks_.size(), (unsigned long long)sample));
  }
  return Status::OK();
}

}  // namespace elephant::sqlkv
