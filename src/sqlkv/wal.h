#ifndef ELEPHANT_SQLKV_WAL_H_
#define ELEPHANT_SQLKV_WAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sim/resources.h"
#include "sim/simulation.h"

namespace elephant::sqlkv {

/// A logical redo record: enough to replay a committed write.
struct LogRecord {
  enum class Kind { kInsert, kUpdate, kCheckpoint } kind = Kind::kUpdate;
  uint64_t key = 0;
  int32_t bytes = 0;  ///< record size (insert) / field size (update)
  int64_t lsn = 0;
};

/// Write-ahead log with group commit on a dedicated log disk (the
/// paper's setup stores SQL Server's log on its own spindle). Commits
/// arriving while a flush is in flight are batched into the next flush,
/// so sustained update throughput is bounded by flushes/sec x batch
/// size rather than one rotational delay per transaction.
class GroupCommitLog {
 public:
  struct Options {
    /// Minimum duration of one flush (rotational positioning of the
    /// dedicated log disk under sequential appends).
    SimTime flush_latency = 200;  // dedicated spindle + write cache
    /// Log-disk streaming bandwidth.
    double write_mbps = 100.0;
  };

  GroupCommitLog(sim::Simulation* sim, const Options& options)
      : sim_(sim), options_(options) {}

  /// Appends a commit record; `done` is counted down when the batch
  /// containing it reaches the disk. `record` is retained (once durable)
  /// for crash recovery; pass std::nullopt-like default for bookkeeping
  /// writes.
  void Append(int64_t bytes, sim::Latch* done,
              LogRecord record = LogRecord{});

  /// Durable records from `from_lsn` onwards (recovery redo stream).
  std::vector<LogRecord> DurableRecords(int64_t from_lsn = 0) const;

  /// Notes a completed checkpoint: recovery can start redo at this LSN.
  void NoteCheckpoint() { checkpoint_lsn_ = next_lsn_; }
  int64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  int64_t next_lsn() const { return next_lsn_; }

  int64_t flushes() const { return flushes_; }
  int64_t bytes_written() const { return bytes_written_; }
  /// Mean commits per flush (group-commit effectiveness).
  double MeanBatchSize() const {
    return flushes_ ? static_cast<double>(appends_) / flushes_ : 0.0;
  }

  /// Validates the log's structural invariants:
  ///   - durable LSNs strictly monotone (the redo stream replays in
  ///     order, exactly once),
  ///   - checkpoint_lsn() <= next_lsn(),
  ///   - every assigned LSN is accounted for: durable + pending ==
  ///     appended, and next_lsn() == total appends.
  /// Returns the first violation found.
  Status ValidateInvariants() const;

 private:
  friend struct WalTestCorruptor;
  struct Pending {
    int64_t bytes;
    sim::Latch* done;
    LogRecord record;
  };

  sim::Task FlushLoop();

  sim::Simulation* sim_;
  Options options_;
  std::vector<Pending> pending_;
  std::vector<LogRecord> durable_;
  bool flushing_ = false;
  int64_t inflight_batch_ = 0;  ///< records in the batch being flushed
  int64_t flushes_ = 0;
  int64_t appends_ = 0;
  int64_t bytes_written_ = 0;
  int64_t next_lsn_ = 0;
  int64_t checkpoint_lsn_ = 0;
};

/// Test-only back door that damages a log so the invariant tests can
/// assert ValidateInvariants() catches each class of corruption. Never
/// use outside tests.
struct WalTestCorruptor {
  /// Regresses the last durable record's LSN (breaks monotonicity).
  /// Returns false when fewer than two records are durable.
  static bool RegressLastDurableLsn(GroupCommitLog* log);
  /// Advances checkpoint_lsn past next_lsn.
  static void OverrunCheckpoint(GroupCommitLog* log);
};

}  // namespace elephant::sqlkv

#endif  // ELEPHANT_SQLKV_WAL_H_
