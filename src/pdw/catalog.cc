#include "pdw/catalog.h"
#include "common/check.h"


namespace elephant::pdw {

using tpch::TableId;

PdwCatalog::PdwCatalog() {
  layouts_ = {
      {TableId::kRegion, /*replicated=*/true, ""},
      {TableId::kNation, /*replicated=*/true, ""},
      {TableId::kSupplier, false, "s_suppkey"},
      {TableId::kPart, false, "p_partkey"},
      {TableId::kPartsupp, false, "ps_partkey"},
      {TableId::kCustomer, false, "c_custkey"},
      {TableId::kOrders, false, "o_orderkey"},
      {TableId::kLineitem, false, "l_orderkey"},
  };
}

const PdwTableLayout& PdwCatalog::layout(TableId table) const {
  for (const auto& l : layouts_) {
    if (l.table == table) return l;
  }
  ELEPHANT_CHECK(false) << "unknown table id " << static_cast<int>(table);
  return layouts_[0];
}

bool PdwCatalog::JoinIsLocal(TableId left, const std::string& left_col,
                             TableId right,
                             const std::string& right_col) const {
  const PdwTableLayout& l = layout(left);
  const PdwTableLayout& r = layout(right);
  if (l.replicated || r.replicated) return true;
  return l.distribution_column == left_col &&
         r.distribution_column == right_col;
}

}  // namespace elephant::pdw
