#include "pdw/engine.h"

#include <algorithm>

#include "tpch/schema.h"

namespace elephant::pdw {

namespace {
constexpr double kGB = 1e9;
}  // namespace

PdwEngine::PdwEngine(cluster::Cluster* cluster, const PdwOptions& options)
    : cluster_(cluster), options_(options) {}

double PdwEngine::CacheFraction(double sf) const {
  double db_bytes = 0;
  for (int t = 0; t < tpch::kNumTables; ++t) {
    auto id = static_cast<tpch::TableId>(t);
    db_bytes += static_cast<double>(tpch::RowCountAtScale(id, sf)) *
                tpch::AvgRowBytes(id);
  }
  double mem = static_cast<double>(options_.buffer_pool_bytes) *
               cluster_->num_nodes();
  if (db_bytes <= 0) return 1.0;
  return std::min(1.0, mem / db_bytes);
}

SimTime PdwEngine::StepTime(const PdwStep& step, double sf) const {
  const int nodes = cluster_->num_nodes();
  const cluster::NodeConfig& node = cluster_->node_config();
  const double cores = static_cast<double>(nodes) * node.hardware_threads;
  const double bytes = step.gb_per_sf * sf * kGB;
  const double disk_bps = options_.disk_scan_mbps * 1e6 *
                          node.data_disks * nodes;

  switch (step.kind) {
    case StepKind::kScan: {
      double disk_bytes = bytes * (1.0 - CacheFraction(sf));
      double disk_s = disk_bytes / disk_bps;
      double cpu_s = bytes / (options_.scan_cpu_mbps_per_core * 1e6 *
                              cores * step.cpu_weight);
      return SecondsToSimTime(std::max(disk_s, cpu_s));
    }
    case StepKind::kShuffle: {
      SimTime net = cluster_->ShuffleTime(static_cast<int64_t>(bytes),
                                          nodes);
      double cpu_s = bytes / (options_.dms_cpu_mbps_per_core * 1e6 * cores *
                              step.cpu_weight);
      return std::max(net, SecondsToSimTime(cpu_s));
    }
    case StepKind::kReplicate: {
      SimTime net = cluster_->BroadcastTime(
          static_cast<int64_t>(bytes / nodes), nodes);
      // Every node must also ingest the full stream.
      double ingest_s = bytes * 8.0 / (node.nic.gbps * 1e9);
      return std::max(net, SecondsToSimTime(ingest_s));
    }
    case StepKind::kLocalJoin: {
      double rows = step.rows_per_sf * sf;
      double cpu_s = rows / (options_.join_rows_per_core * cores *
                             step.cpu_weight);
      // Grace hash join spill when the build side overflows memory.
      double build_bytes = step.build_gb_per_sf * sf * kGB;
      double per_node_build = build_bytes / nodes;
      double io_s = 0;
      if (per_node_build >
          static_cast<double>(options_.buffer_pool_bytes) * 0.5) {
        io_s = 2.0 * (build_bytes + bytes) / disk_bps;
      }
      return SecondsToSimTime(std::max(cpu_s, io_s));
    }
    case StepKind::kAggregate: {
      double rows = step.rows_per_sf * sf;
      double cpu_s =
          rows / (options_.agg_rows_per_core * cores * step.cpu_weight);
      return SecondsToSimTime(cpu_s);
    }
  }
  return 0;
}

PdwQueryResult PdwEngine::RunQuery(int q, double sf) const {
  PdwQueryResult result;
  result.query = q;
  result.total = options_.query_overhead;
  for (const PdwStep& step : BuildPdwPlan(q, catalog_, options_)) {
    SimTime t = options_.step_overhead + StepTime(step, sf);
    result.steps.emplace_back(step.label, t);
    result.total += t;
  }
  return result;
}

SimTime PdwEngine::LoadTime(double sf) const {
  double text_bytes = 0;
  for (int t = 0; t < tpch::kNumTables; ++t) {
    auto id = static_cast<tpch::TableId>(t);
    text_bytes += static_cast<double>(tpch::RowCountAtScale(id, sf)) *
                  tpch::AvgRowBytes(id);
  }
  // dwloader: the landing node splits the text files, then streams the
  // chunks to the compute nodes — two passes through its single 1 GbE
  // NIC (§3.3.3; the landing node "does not participate in query
  // execution").
  const cluster::NodeConfig& node = cluster_->node_config();
  double nic_bps = node.nic.gbps * 1e9 / 8.0;
  return SecondsToSimTime(2.0 * text_bytes / nic_bps);
}

}  // namespace elephant::pdw
