#ifndef ELEPHANT_PDW_CATALOG_H_
#define ELEPHANT_PDW_CATALOG_H_

#include <string>
#include <vector>

#include "tpch/schema.h"

namespace elephant::pdw {

/// How a table is laid out in PDW (the paper's Table 1): either
/// hash-distributed on a column or replicated to every node. Each
/// compute node holds 8 distributions (128 across the 16-node cluster).
struct PdwTableLayout {
  tpch::TableId table;
  bool replicated = false;
  std::string distribution_column;  ///< empty when replicated
};

/// The PDW catalog used by the paper's TPC-H setup: nation and region
/// replicated, everything else hash-distributed on its primary key
/// column; no indexes at all (§3.3.2).
class PdwCatalog {
 public:
  PdwCatalog();

  const PdwTableLayout& layout(tpch::TableId table) const;

  /// True when an equi-join on the given columns is co-located (both
  /// sides hash-distributed on their join columns, or one side
  /// replicated) and can run without data movement.
  bool JoinIsLocal(tpch::TableId left, const std::string& left_col,
                   tpch::TableId right, const std::string& right_col) const;

  int distributions_per_node() const { return 8; }

 private:
  std::vector<PdwTableLayout> layouts_;
};

}  // namespace elephant::pdw

#endif  // ELEPHANT_PDW_CATALOG_H_
