#ifndef ELEPHANT_PDW_ENGINE_H_
#define ELEPHANT_PDW_ENGINE_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"
#include "pdw/catalog.h"

namespace elephant::pdw {

/// SQL Server PDW execution model parameters, fitted to the testbed
/// behaviour the paper documents.
struct PdwOptions {
  /// Buffer pool per node (§3.2.2: SQL Server capped at 24 GB).
  int64_t buffer_pool_bytes = 24LL * kGB;
  /// Sequential scan bandwidth per data disk with SQL Server read-ahead.
  double disk_scan_mbps = 140.0;
  /// Per-core CPU throughput for a plain scan + light predicate.
  double scan_cpu_mbps_per_core = 140.0;
  /// Per-core hash join throughput (build + probe), rows/s.
  double join_rows_per_core = 3.0e6;
  /// Per-core aggregation throughput, rows/s (heavy multi-aggregate
  /// expressions like Q1 are slower via the step's cpu_weight).
  double agg_rows_per_core = 6.0e6;
  /// DMS shuffle: per-node NIC is the floor; DMS adds CPU per byte.
  double dms_cpu_mbps_per_core = 120.0;
  /// Control-node overhead per plan step and per query.
  SimTime step_overhead = 500 * kMillisecond;
  SimTime query_overhead = 1 * kSecond;
  /// Ablation: when false, the optimizer keeps the Hive script's join
  /// order and repartitions both join inputs (no replicate/local
  /// optimizations) — isolating the value of cost-based optimization.
  bool cost_based_optimizer = true;
};

/// Kinds of steps in a PDW parallel plan.
enum class StepKind {
  kScan,       ///< parallel scan + filter + projection
  kShuffle,    ///< DMS repartition of a stream
  kReplicate,  ///< DMS broadcast of a (small) stream to all nodes
  kLocalJoin,  ///< co-located hash join
  kAggregate,  ///< partial/global aggregation
};

/// One step of a PDW plan with the volumes it processes.
struct PdwStep {
  std::string label;
  StepKind kind = StepKind::kScan;
  /// Bytes scanned / moved / probed, per unit scale factor (GB at SF=1).
  double gb_per_sf = 0;
  /// Rows processed (joined/aggregated), per unit scale factor.
  double rows_per_sf = 0;
  /// CPU weight: <1 = heavier per-byte/per-row CPU than the baseline.
  double cpu_weight = 1.0;
  /// kLocalJoin only: bytes of the hash build side per unit SF. When a
  /// node's share exceeds its buffer pool the join becomes a grace hash
  /// join spilling both inputs to disk (2x I/O on build + probe).
  double build_gb_per_sf = 0;
};

/// Timing result of one query.
struct PdwQueryResult {
  int query = 0;
  SimTime total = 0;
  std::vector<std::pair<std::string, SimTime>> steps;
};

/// Executable model of SQL Server PDW (AU3) on the simulated cluster:
/// cost-based plans that shuffle or replicate the cheaper side to make
/// every join co-located, pipelined local operators, and a shared
/// buffer pool whose hit rate depends on how much of the database fits
/// in cluster memory (the root of the paper's 34x-at-250GB vs
/// 9x-at-16TB speedup narrowing).
class PdwEngine {
 public:
  PdwEngine(cluster::Cluster* cluster, const PdwOptions& options);

  /// Runs TPC-H query `q` (1..22) at scale factor `sf` (GB).
  PdwQueryResult RunQuery(int q, double sf) const;

  /// Table 2: dwloader pushes the text through the landing node (two
  /// passes: split, then load/redistribute), bounded by its single NIC.
  SimTime LoadTime(double sf) const;

  /// Fraction of scans served from the buffer pool at this scale factor.
  double CacheFraction(double sf) const;

  /// Time for one plan step at a scale factor (exposed for tests).
  SimTime StepTime(const PdwStep& step, double sf) const;

  const PdwOptions& options() const { return options_; }
  const PdwCatalog& catalog() const { return catalog_; }

 private:
  cluster::Cluster* cluster_;
  PdwOptions options_;
  PdwCatalog catalog_;
};

/// Builds the plan for a query (exposed for tests and the ablation
/// bench). Plans follow the paper's §3.3.4.1 descriptions: replicate
/// small dimension streams, shuffle the smaller side onto the
/// partitioning of the larger, keep lineitem joins on l_orderkey local.
std::vector<PdwStep> BuildPdwPlan(int q, const PdwCatalog& catalog,
                                  const PdwOptions& options);

}  // namespace elephant::pdw

#endif  // ELEPHANT_PDW_ENGINE_H_
