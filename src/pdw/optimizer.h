#ifndef ELEPHANT_PDW_OPTIMIZER_H_
#define ELEPHANT_PDW_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace elephant::pdw {

/// A relation entering the optimizer: its post-filter size and the
/// column its rows arrive partitioned on (empty = replicated).
struct OptRelation {
  std::string name;
  double rows = 0;
  double bytes = 0;
  std::string partition_column;  ///< current hash-distribution column
  bool replicated = false;
};

/// An equi-join edge between two relations.
struct OptJoin {
  int left_rel = 0;   ///< index into the relation list
  int right_rel = 0;
  std::string left_column;
  std::string right_column;
  /// Output cardinality factor: |out| = selectivity * |L| * |R|.
  double selectivity = 0;
};

/// How a join input is made co-located.
enum class Movement { kNone, kShuffleLeft, kShuffleRight, kReplicateLeft,
                      kReplicateRight };

const char* MovementName(Movement m);

/// One join step of the chosen plan.
struct PlannedJoin {
  int left_rel = 0;    ///< relation joined into the running stream (-1 =
                       ///< the stream itself)
  int right_rel = 0;
  Movement movement = Movement::kNone;
  double network_bytes = 0;  ///< bytes moved by this step
  double output_rows = 0;
  double output_bytes = 0;
};

/// A full join order with its cost.
struct JoinPlan {
  std::vector<PlannedJoin> steps;
  double network_bytes = 0;  ///< total data movement
  double cost = 0;           ///< network + cpu surrogate
};

/// Knobs for the search.
struct OptimizerOptions {
  int num_nodes = 16;
  /// Replication beats shuffling when bytes * (n-1) <
  /// shuffle_bytes_other_side; the optimizer computes this exactly.
  /// Cost surrogate weights.
  double network_weight = 1.0;
  double rows_weight = 1e-6;  ///< intermediate-size pressure
  /// When false, joins are taken in the order given (the Hive-script
  /// behaviour) with both sides repartitioned.
  bool cost_based = true;
};

/// Chooses a join order and per-join movement strategy for a connected
/// acyclic join graph (the shape of every TPC-H query), minimizing data
/// movement: the decision procedure the paper credits for PDW's plans
/// ("cost-based methods that minimize network transfers", §3.3.4.1).
/// Left-deep dynamic programming over the relation set.
Result<JoinPlan> Optimize(const std::vector<OptRelation>& relations,
                          const std::vector<OptJoin>& joins,
                          const OptimizerOptions& options = {});

}  // namespace elephant::pdw

#endif  // ELEPHANT_PDW_OPTIMIZER_H_
