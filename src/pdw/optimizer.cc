#include "pdw/optimizer.h"

#include <algorithm>
#include <limits>

namespace elephant::pdw {

namespace {

/// The running intermediate stream during planning.
struct Stream {
  double rows = 0;
  double bytes = 0;
  std::string partition_column;  ///< empty = arbitrary / replicated
};

struct DpState {
  bool reachable = false;
  double cost = std::numeric_limits<double>::infinity();
  double network_bytes = 0;
  Stream stream;
  std::vector<PlannedJoin> steps;
};

double BytesPerRow(double rows, double bytes) {
  return rows > 0 ? bytes / rows : 0;
}

}  // namespace

const char* MovementName(Movement m) {
  switch (m) {
    case Movement::kNone:
      return "local";
    case Movement::kShuffleLeft:
      return "shuffle-stream";
    case Movement::kShuffleRight:
      return "shuffle-relation";
    case Movement::kReplicateLeft:
      return "replicate-stream";
    case Movement::kReplicateRight:
      return "replicate-relation";
  }
  return "?";
}

Result<JoinPlan> Optimize(const std::vector<OptRelation>& relations,
                          const std::vector<OptJoin>& joins,
                          const OptimizerOptions& options) {
  const int n = static_cast<int>(relations.size());
  if (n == 0) return Status::InvalidArgument("no relations");
  if (n > 20) return Status::InvalidArgument("too many relations");
  if (joins.size() + 1 < static_cast<size_t>(n)) {
    return Status::InvalidArgument("join graph is not connected");
  }
  for (const OptJoin& j : joins) {
    if (j.left_rel < 0 || j.left_rel >= n || j.right_rel < 0 ||
        j.right_rel >= n) {
      return Status::InvalidArgument("join references unknown relation");
    }
  }
  const double remote_fraction =
      static_cast<double>(options.num_nodes - 1) / options.num_nodes;

  // Evaluates joining `rel` (by `join`) into `stream`, returning the
  // cheapest movement.
  auto best_step = [&](const Stream& stream, int rel_idx,
                       const OptJoin& join, bool rel_is_right) {
    const OptRelation& rel = relations[rel_idx];
    const std::string& stream_col =
        rel_is_right ? join.left_column : join.right_column;
    const std::string& rel_col =
        rel_is_right ? join.right_column : join.left_column;

    bool stream_ok = stream.partition_column == stream_col;
    bool rel_partitioned_ok = rel.partition_column == rel_col;
    // A replicated relation joins locally regardless of how the stream
    // is partitioned.
    bool co_located =
        rel.replicated || (stream_ok && rel_partitioned_ok);
    bool rel_ok = rel.replicated || rel_partitioned_ok;

    struct Option {
      Movement movement;
      double net;
      std::string out_partition;
      bool valid;
    };
    Option options_list[] = {
        // Already co-located.
        {Movement::kNone, 0.0,
         rel.replicated ? stream.partition_column : stream_col,
         co_located},
        // Shuffle the stream onto the join column.
        {Movement::kShuffleLeft, stream.bytes * remote_fraction, stream_col,
         rel_ok},
        // Shuffle the relation onto the join column.
        {Movement::kShuffleRight, rel.bytes * remote_fraction, stream_col,
         stream_ok && !rel.replicated},
        // Shuffle both sides (the common-join fallback).
        {Movement::kShuffleRight,
         (stream.bytes + rel.bytes) * remote_fraction, stream_col, true},
        // Replicate the relation everywhere: the stream stays put.
        {Movement::kReplicateRight,
         rel.bytes * (options.num_nodes - 1),
         stream.partition_column, !rel.replicated},
    };
    Option best{Movement::kNone, std::numeric_limits<double>::infinity(),
                "", false};
    for (const Option& o : options_list) {
      if (o.valid && o.net < best.net) best = o;
    }
    if (!best.valid) {  // only the shuffle-both row can remain
      best = options_list[3];
    }
    return best;
  };

  auto apply = [&](const Stream& stream, const OptJoin& join, int rel_idx,
                   bool rel_is_right, DpState* out, double base_cost,
                   double base_net,
                   const std::vector<PlannedJoin>& base_steps) {
    const OptRelation& rel = relations[rel_idx];
    auto step = best_step(stream, rel_idx, join, rel_is_right);
    double out_rows = join.selectivity * stream.rows * rel.rows;
    double out_bytes = out_rows * (BytesPerRow(stream.rows, stream.bytes) +
                                   BytesPerRow(rel.rows, rel.bytes));
    double cost = base_cost + options.network_weight * step.net +
                  options.rows_weight * out_rows;
    if (cost >= out->cost) return;
    out->reachable = true;
    out->cost = cost;
    out->network_bytes = base_net + step.net;
    out->stream = {out_rows, out_bytes, step.out_partition};
    out->steps = base_steps;
    PlannedJoin planned;
    planned.left_rel = -1;
    planned.right_rel = rel_idx;
    planned.movement = step.movement;
    planned.network_bytes = step.net;
    planned.output_rows = out_rows;
    planned.output_bytes = out_bytes;
    out->steps.push_back(planned);
  };

  if (!options.cost_based) {
    // Script order: fold the joins as written, shuffling both inputs.
    JoinPlan plan;
    Stream stream{relations[joins[0].left_rel].rows,
                  relations[joins[0].left_rel].bytes,
                  relations[joins[0].left_rel].partition_column};
    std::vector<bool> in_stream(n, false);
    in_stream[joins[0].left_rel] = true;
    for (const OptJoin& join : joins) {
      int rel_idx = in_stream[join.left_rel] ? join.right_rel
                                             : join.left_rel;
      const OptRelation& rel = relations[rel_idx];
      double net = (stream.bytes + rel.bytes) * remote_fraction;
      double out_rows = join.selectivity * stream.rows * rel.rows;
      double out_bytes =
          out_rows * (BytesPerRow(stream.rows, stream.bytes) +
                      BytesPerRow(rel.rows, rel.bytes));
      PlannedJoin planned;
      planned.left_rel = -1;
      planned.right_rel = rel_idx;
      planned.movement = Movement::kShuffleRight;
      planned.network_bytes = net;
      planned.output_rows = out_rows;
      planned.output_bytes = out_bytes;
      plan.steps.push_back(planned);
      plan.network_bytes += net;
      plan.cost += options.network_weight * net +
                   options.rows_weight * out_rows;
      stream = {out_rows, out_bytes, join.left_column};
      in_stream[rel_idx] = true;
    }
    return plan;
  }

  // Left-deep DP over relation subsets.
  std::vector<DpState> dp(static_cast<size_t>(1) << n);
  for (int r = 0; r < n; ++r) {
    DpState& s = dp[1u << r];
    s.reachable = true;
    s.cost = 0;
    s.stream = {relations[r].rows, relations[r].bytes,
                relations[r].replicated ? ""
                                        : relations[r].partition_column};
  }
  for (uint32_t mask = 1; mask < dp.size(); ++mask) {
    const DpState base = dp[mask];  // copy: dp reallocation-safe
    if (!base.reachable) continue;
    for (const OptJoin& join : joins) {
      bool left_in = mask & (1u << join.left_rel);
      bool right_in = mask & (1u << join.right_rel);
      if (left_in == right_in) continue;  // both or neither
      int rel_idx = left_in ? join.right_rel : join.left_rel;
      uint32_t next = mask | (1u << rel_idx);
      apply(base.stream, join, rel_idx, /*rel_is_right=*/left_in,
            &dp[next], base.cost, base.network_bytes, base.steps);
    }
  }

  const DpState& full = dp[dp.size() - 1];
  if (!full.reachable) {
    return Status::InvalidArgument("join graph is not connected");
  }
  JoinPlan plan;
  plan.steps = full.steps;
  plan.network_bytes = full.network_bytes;
  plan.cost = full.cost;
  return plan;
}

}  // namespace elephant::pdw
