// PDW parallel plans for the 22 TPC-H queries, following the paper's
// §3.3.4.1 plan descriptions: the cost-based optimizer replicates small
// (filtered) streams, shuffles the smaller join input onto the
// partitioning of the larger, and keeps lineitem/orders joins local on
// l_orderkey/o_orderkey. Volumes are GB (and millions of rows) per unit
// scale factor, derived from TPC-H selectivities.

#include <vector>

#include "pdw/engine.h"
#include "tpch/queries.h"
#include "common/check.h"

namespace elephant::pdw {

namespace {

using K = StepKind;

constexpr double kM = 1e6;  // rows: millions per SF

// Uncompressed GB per unit scale factor of each base table.
constexpr double kL = 0.725, kO = 0.1605, kC = 0.0248, kP = 0.023,
                 kPS = 0.115, kS = 0.0014;

PdwStep Scan(const char* label, double gb, double w = 1.0) {
  return {label, K::kScan, gb, 0, w, 0};
}
PdwStep Shuffle(const char* label, double gb, double w = 1.0) {
  return {label, K::kShuffle, gb, 0, w, 0};
}
PdwStep Replicate(const char* label, double gb) {
  return {label, K::kReplicate, gb, 0, 1.0, 0};
}
PdwStep Join(const char* label, double rows_m, double w = 1.0,
             double probe_gb = 0, double build_gb = 0) {
  return {label, K::kLocalJoin, probe_gb, rows_m * kM, w, build_gb};
}
PdwStep Agg(const char* label, double rows_m, double w = 1.0) {
  return {label, K::kAggregate, 0, rows_m * kM, w, 0};
}

/// The ablation plan: no cost-based optimization — joins stay in script
/// order and *both* inputs of every join are repartitioned (Hive-style
/// common joins), with no replication of small tables.
std::vector<PdwStep> BuildNaivePlan(int q) {
  std::vector<PdwStep> steps;
  double join_rows = 0;
  double join_gb = 0;
  for (tpch::TableId t : tpch::QueryInputTables(q)) {
    double gb = 0, rows = 0;
    switch (t) {
      case tpch::TableId::kLineitem:
        gb = kL;
        rows = 6.0;
        break;
      case tpch::TableId::kOrders:
        gb = kO;
        rows = 1.5;
        break;
      case tpch::TableId::kCustomer:
        gb = kC;
        rows = 0.15;
        break;
      case tpch::TableId::kPart:
        gb = kP;
        rows = 0.2;
        break;
      case tpch::TableId::kPartsupp:
        gb = kPS;
        rows = 0.8;
        break;
      case tpch::TableId::kSupplier:
        gb = kS;
        rows = 0.01;
        break;
      default:
        continue;
    }
    steps.push_back(Scan("scan", gb, 0.5));
    steps.push_back(Shuffle("shuffle_both_sides", gb * 0.45));
    join_rows += rows;
    join_gb += gb;
  }
  // Script-order joins repartition and rejoin full streams; large build
  // sides spill.
  steps.push_back(Join("script_order_join", join_rows, 0.2,
                       join_gb * 0.45, join_gb * 0.4));
  steps.push_back(Agg("agg", join_rows * 0.2));
  return steps;
}

}  // namespace

std::vector<PdwStep> BuildPdwPlan(int q, const PdwCatalog& catalog,
                                  const PdwOptions& options) {
  (void)catalog;
  if (!options.cost_based_optimizer) return BuildNaivePlan(q);

  switch (q) {
    case 1:
      return {Scan("scan_lineitem_agg", kL, 0.094),
              Agg("global_agg", 6.0, 0.5)};
    case 2:
      return {Scan("scan_partsupp", kPS),
              Scan("scan_supplier", kS),
              Scan("scan_part", kP),
              Shuffle("shuffle_eu_offers_on_suppkey", 0.03),
              Join("join_ps_supplier", 1.0, 1.0, 0.03, 0.0005),
              Agg("min_cost_per_part", 0.16),
              Join("join_part", 0.2),
              Agg("sort_top100", 0.01)};
    case 3:
      return {Scan("scan_customer", kC),
              Scan("scan_orders", kO, 0.5),
              Shuffle("shuffle_orders_on_custkey", 0.032),
              Join("join_customer_orders", 2.2, 1.0, 0.032, 0.008),
              Shuffle("shuffle_on_orderkey", 0.0044),
              Scan("scan_lineitem", kL, 0.28),
              Join("join_lineitem_local", 3.3, 1.0, 0, 0.0044),
              Agg("agg_topn", 0.5)};
    case 4:
      return {Scan("scan_orders", kO),
              Scan("scan_lineitem", kL, 0.7),
              Join("semijoin_local_orderkey", 4.5, 1.0, 0, 0.0018),
              Agg("agg_priorities", 0.06)};
    case 5:
      // §3.3.4.1: shuffle orders on o_custkey; local join with customer
      // + replicated nation/region; shuffle on o_orderkey; local join
      // with lineitem; shuffle on l_suppkey; join supplier; aggregate.
      return {Scan("scan_orders", kO, 0.6),
              Shuffle("shuffle_orders_on_custkey", 0.032),
              Scan("scan_customer", kC),
              Join("join_customer_nation_region", 1.73, 1.0, 0.032, 0.0055),
              Shuffle("shuffle_on_orderkey", 0.0068),
              Scan("scan_lineitem", kL, 0.5),
              Join("join_lineitem_local", 6.2, 1.0, 0, 0.0068),
              Shuffle("shuffle_on_suppkey", 0.018),
              Scan("scan_supplier", kS),
              Join("join_supplier", 0.92, 1.0, 0.018, 0.0014),
              Agg("partial_global_agg", 0.91)};
    case 6:
      return {Scan("scan_lineitem", kL), Agg("global_agg", 0.11)};
    case 7:
      return {Scan("scan_supplier", kS),
              Replicate("replicate_filtered_suppliers", 0.0001),
              Scan("scan_lineitem", kL, 0.45),
              Join("join_lineitem_supplier", 6.15),
              Shuffle("shuffle_on_orderkey", 0.0044),
              Scan("scan_orders", kO, 0.7),
              Join("join_orders_local", 1.65, 1.0, 0, 0.0044),
              Shuffle("shuffle_on_custkey", 0.0042),
              Scan("scan_customer", kC),
              Join("join_customer", 0.3),
              Agg("agg_by_year", 0.15)};
    case 8:
      return {Scan("scan_part", kP, 0.8),
              Replicate("replicate_filtered_part", 0.00004),
              Scan("scan_lineitem", kL, 0.5),
              Join("join_lineitem_part", 6.04),
              Shuffle("shuffle_on_orderkey", 0.0018),
              Scan("scan_orders", kO, 0.7),
              Join("join_orders_local", 1.54, 1.0, 0, 0.0018),
              Shuffle("shuffle_on_custkey", 0.0007),
              Scan("scan_customer", kC),
              Join("join_customer_nation_region", 0.16),
              Shuffle("shuffle_on_suppkey", 0.0003),
              Scan("scan_supplier", kS),
              Join("join_supplier_nation", 0.05),
              Agg("mkt_share_agg", 0.04)};
    case 9:
      // The heaviest PDW query: lineitem must be repartitioned on
      // partkey for the partsupp join, whose build side overflows memory
      // at large SFs (grace hash join spills).
      return {Scan("scan_part", kP, 0.9),
              Scan("scan_lineitem", kL, 0.4),
              Shuffle("shuffle_lineitem_on_partkey", 0.45),
              Join("join_part", 6.2, 0.1, 0, 0.0003),
              Scan("scan_partsupp", kPS),
              Join("join_partsupp_spilling", 6.5, 0.1, 0.45, 0.115),
              Shuffle("shuffle_joined_on_orderkey", 0.3),
              Scan("scan_orders", kO, 0.6),
              Join("join_orders_spilling", 1.8, 0.3, 0.3, 0.06),
              Agg("profit_agg", 0.33, 0.1)};
    case 10:
      return {Scan("scan_orders", kO),
              Scan("scan_customer", kC),
              Shuffle("shuffle_orders_on_custkey", 0.0012),
              Join("join_customer_orders", 0.72, 1.0, 0.0012, 0.0012),
              Shuffle("shuffle_on_orderkey", 0.0068),
              Scan("scan_lineitem", kL, 0.5),
              Join("join_lineitem_local", 6.2, 1.0, 0, 0.0068),
              Agg("agg_top20", 0.23)};
    case 11:
      return {Scan("scan_partsupp", kPS),
              Scan("scan_supplier", kS),
              Replicate("replicate_german_suppliers", 0.00004),
              Join("join_ps_supplier", 0.84, 0.3),
              Agg("value_per_part", 0.23, 0.2)};
    case 12:
      return {Scan("scan_lineitem", kL, 0.8),
              Scan("scan_orders", kO, 0.8),
              Join("join_local_orderkey", 7.5, 1.0, 0, 0.0001),
              Agg("shipmode_agg", 0.03)};
    case 13:
      return {Scan("scan_orders_like_filter", kO, 0.06),
              Scan("scan_customer", kC),
              Shuffle("shuffle_orders_on_custkey", 0.032),
              Join("outer_join", 7.5, 0.15, 0.032, 0.0075),
              Agg("count_per_customer", 1.65, 0.2),
              Agg("distribution", 0.15)};
    case 14:
      return {Scan("scan_lineitem", kL),
              Scan("scan_part", kP),
              Shuffle("shuffle_lineitem_sel_on_partkey", 0.0037),
              Join("join_part_local", 0.25, 1.0, 0.0037, 0.008),
              Agg("promo_agg", 0.075)};
    case 15:
      return {Scan("scan_lineitem_view1", kL),
              Shuffle("shuffle_revenue_on_suppkey", 0.0003),
              Agg("revenue_per_supplier", 0.23),
              Scan("scan_lineitem_view2", kL),
              Agg("revenue_per_supplier_again", 0.23),
              Scan("scan_supplier", kS),
              Join("join_supplier", 0.02),
              Agg("max_and_sort", 0.01)};
    case 16:
      return {Scan("scan_partsupp", kPS),
              Scan("scan_part", kP, 0.9),
              Join("join_local_partkey", 1.0, 0.3, 0, 0.0092),
              Scan("scan_supplier", kS),
              Replicate("replicate_complaint_suppliers", 2e-6),
              Agg("count_distinct", 0.8, 0.012),
              Agg("sort", 0.03)};
    case 17:
      return {Scan("scan_lineitem_pass1", kL, 0.3),
              Shuffle("shuffle_qty_on_partkey", 0.17),
              Agg("avg_qty_per_part", 6.0, 0.2),
              Scan("scan_lineitem_pass2", kL, 0.3),
              Scan("scan_part", kP),
              Replicate("replicate_filtered_part", 2e-6),
              Join("join_and_filter", 6.1, 0.2),
              Agg("final_agg", 0.01)};
    case 18:
      return {Scan("scan_lineitem", kL, 0.35),
              Agg("qty_per_order_local", 6.0, 0.7),
              Scan("scan_orders", kO),
              Join("join_orders_local", 1.5, 1.0, 0, 1e-6),
              Shuffle("shuffle_on_custkey", 1e-5),
              Scan("scan_customer", kC),
              Join("join_customer", 0.15),
              Agg("sort_top100", 0.001)};
    case 19:
      // §3.3.4.1: replicate the (filtered) part table, join lineitem
      // locally with the complex predicate, aggregate.
      return {Scan("scan_part", kP),
              Replicate("replicate_part", 0.0003),
              Scan("scan_lineitem_join_agg", kL, 0.358),
              Join("join_local", 6.04, 0.5),
              Agg("global_agg", 0.001)};
    case 20:
      return {Scan("scan_lineitem", kL),
              Shuffle("shuffle_shipped_on_partkey", 0.0175),
              Agg("qty_per_part_supp", 0.91),
              Scan("scan_partsupp", kPS),
              Scan("scan_part", kP),
              Join("join_ps_part_local", 0.85, 1.0, 0, 0.0013),
              Join("join_surplus", 0.1),
              Scan("scan_supplier", kS),
              Agg("semijoin_sort", 0.01)};
    case 21:
      return {Scan("scan_lineitem_l1", kL, 0.5),
              Scan("scan_orders", kO, 0.8),
              Join("join_l1_orders_local", 9.0, 0.5, 0, 0.044),
              Scan("scan_lineitem_self", kL, 0.5),
              Join("self_join_local_orderkey", 12.0, 0.2, 0, 0.02),
              Shuffle("shuffle_on_suppkey", 0.001),
              Scan("scan_supplier", kS),
              Join("join_supplier", 0.1),
              Agg("agg_top100", 0.01)};
    case 22:
      return {Scan("scan_customer_avg", kC),
              Agg("avg_balance", 0.042),
              Scan("scan_customer_pass2", kC),
              Scan("scan_orders", kO, 0.5),
              Shuffle("shuffle_orders_on_custkey", 0.012),
              Join("anti_join", 1.54, 0.15, 0.012, 0.002),
              Agg("cntrycode_agg", 0.01)};
    default:
      ELEPHANT_CHECK(false) << "query " << q << " out of range";
      return {};
  }
}

}  // namespace elephant::pdw
