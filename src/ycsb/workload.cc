#include "ycsb/workload.h"

#include "common/check.h"

namespace elephant::ycsb {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kRead:
      return "read";
    case OpType::kUpdate:
      return "update";
    case OpType::kInsert:
      return "append";
    case OpType::kScan:
      return "scan";
  }
  return "?";
}

WorkloadSpec WorkloadSpec::A() {
  WorkloadSpec w;
  w.name = "A";
  w.description = "Update heavy";
  w.read = 0.5;
  w.update = 0.5;
  w.distribution = Distribution::kZipfian;
  return w;
}

WorkloadSpec WorkloadSpec::B() {
  WorkloadSpec w;
  w.name = "B";
  w.description = "Read heavy";
  w.read = 0.95;
  w.update = 0.05;
  w.distribution = Distribution::kZipfian;
  return w;
}

WorkloadSpec WorkloadSpec::C() {
  WorkloadSpec w;
  w.name = "C";
  w.description = "Read only";
  w.read = 1.0;
  w.distribution = Distribution::kZipfian;
  return w;
}

WorkloadSpec WorkloadSpec::D() {
  WorkloadSpec w;
  w.name = "D";
  w.description = "Read latest";
  w.read = 0.95;
  w.insert = 0.05;
  w.distribution = Distribution::kLatest;
  return w;
}

WorkloadSpec WorkloadSpec::E() {
  WorkloadSpec w;
  w.name = "E";
  w.description = "Short ranges";
  w.scan = 0.95;
  w.insert = 0.05;
  w.distribution = Distribution::kZipfian;
  // The paper caps scans at 1000 records over 640 M keys; scaled to the
  // model's default keyspace so a scan covers a comparable fraction of
  // the dataset (and of the cache).
  w.max_scan_len = 100;
  return w;
}

WorkloadSpec WorkloadSpec::ByName(char name) {
  switch (name) {
    case 'A':
    case 'a':
      return A();
    case 'B':
    case 'b':
      return B();
    case 'C':
    case 'c':
      return C();
    case 'D':
    case 'd':
      return D();
    case 'E':
    case 'e':
      return E();
    default:
      ELEPHANT_CHECK(false) << "unknown workload '" << name << "'";
      return C();
  }
}

}  // namespace elephant::ycsb
