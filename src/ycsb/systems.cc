#include "ycsb/systems.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "sim/lockset.h"

namespace elephant::ycsb {

namespace {
/// Response wire time back to the client (the request fits in the RTT
/// allowance; bulky scan responses pay for their bytes).
SimTime ResponseTransferTime(int64_t bytes) {
  return SecondsToSimTime(static_cast<double>(bytes) * 8.0 / 1e9);
}
}  // namespace

std::string AdmissionGate::DescribeWaiters() const {
  return StrFormat("AdmissionGate(inflight=%lld, parked=%d, shed=%lld)",
                   static_cast<long long>(inflight_),
                   static_cast<int>(waiters_.size()),
                   static_cast<long long>(shed_));
}

OltpTestbed::OltpTestbed(const cluster::NodeConfig& node_config)
    : cluster(&sim, kServerNodes + kClientNodes, node_config) {}

// ---------------------------------------------------------------- SQL-CS

SqlCsSystem::SqlCsSystem(OltpTestbed* testbed,
                         const sqlkv::SqlEngineOptions& options)
    : testbed_(testbed) {
  for (int i = 0; i < OltpTestbed::kServerNodes; ++i) {
    engines_.push_back(std::make_unique<sqlkv::SqlEngine>(
        &testbed->sim, &testbed->server(i), options));
  }
}

int SqlCsSystem::ShardOf(uint64_t key) const {
  return static_cast<int>(Fnv1a64(key) % engines_.size());
}

Status SqlCsSystem::LoadDataset(int64_t record_count, int32_t record_bytes) {
  for (int64_t key = 0; key < record_count; ++key) {
    ELEPHANT_RETURN_NOT_OK(
        engines_[ShardOf(key)]->LoadRecord(key, record_bytes));
  }
  return Status::OK();
}

void SqlCsSystem::Start() {
  for (auto& e : engines_) e->Start();
}

void SqlCsSystem::Stop() {
  for (auto& e : engines_) e->Stop();
}

Status SqlCsSystem::ValidateInvariants() const {
  for (const auto& e : engines_) {
    ELEPHANT_RETURN_NOT_OK(e->ValidateInvariants());
  }
  return Status::OK();
}

Status SqlCsSystem::ValidateQuiesced() const {
  for (const auto& e : engines_) {
    ELEPHANT_RETURN_NOT_OK(e->ValidateQuiesced());
  }
  return Status::OK();
}

void SqlCsSystem::CrashServerNode(int node) {
  if (node < 0 || node >= num_shards()) return;
  engines_[node]->Crash();
}

void SqlCsSystem::RestartServerNode(int node) {
  if (node < 0 || node >= num_shards()) return;
  engines_[node]->Restart(nullptr, nullptr);
}

DataServingSystem::DurabilityLedger SqlCsSystem::Durability() const {
  DurabilityLedger ledger;
  for (const auto& e : engines_) {
    ledger.acknowledged += e->acked_writes();
    ledger.lost_acknowledged += e->lost_acked_total();
    ledger.crashes += e->recoveries();
    ledger.restarts += e->recoveries();
  }
  return ledger;
}

SimTime SqlCsSystem::TotalLockWait() const {
  SimTime total = 0;
  for (const auto& e : engines_) total += e->locks().TotalWaitTime();
  return total;
}

void SqlCsSystem::TouchKey(uint64_t key) {
  sqlkv::SqlEngine* engine = engines_[ShardOf(key)].get();
  auto lookup = engine->btree().Get(key);
  if (lookup.ok()) {
    engine->pool().Touch(lookup.value().page_id, /*mark_dirty=*/false);
  }
}

sim::Task SqlCsSystem::Execute(const Op& op, sqlkv::OpOutcome* out,
                               sim::Latch* done) {
  sim::Simulation* sim = &testbed_->sim;
  // Shards map 1:1 onto server nodes; scans are coordinated by the home
  // shard of the start key.
  if (injector_ != nullptr &&
      injector_->MessageBlocked(op.origin_node, ShardOf(op.key))) {
    co_await sim->Delay(injector_->blocked_op_delay());
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  co_await sim->Delay(rtt_ / 2);
  // Admission control (open-loop sweeps): reject or queue before any
  // engine work. A shed response still pays the return wire time.
  if (gate_ != nullptr) {
    if (gate_->MustShed()) {
      gate_->NoteShed();
      out->shed = true;
      co_await sim->Delay(rtt_ / 2);
      done->CountDown();
      co_return;
    }
    co_await gate_->Admit();
  }
  if (op.type == OpType::kScan) {
    // Hash partitioning: every shard may hold records in the range, so
    // all of them are queried and the results merged (§3.4.3, WL E).
    int shards = num_shards();
    std::vector<sqlkv::OpOutcome> partial(shards);
    sim::Latch all(sim, shards);
    int per_shard = op.scan_len / shards + 1;
    for (int s = 0; s < shards; ++s) {
      engines_[s]->Scan(op.key, per_shard, &partial[s], &all);
    }
    co_await all.Wait();
    out->ok = true;
    for (const auto& p : partial) out->records += p.records;
    out->records = std::min<int64_t>(out->records, op.scan_len);
  } else {
    sim::Latch one(sim, 1);
    sqlkv::SqlEngine* engine = engines_[ShardOf(op.key)].get();
    switch (op.type) {
      case OpType::kRead:
        engine->Read(op.key, out, &one);
        break;
      case OpType::kUpdate:
        engine->Update(op.key, op.field_bytes, out, &one);
        break;
      case OpType::kInsert:
        // §3.4.2: no bulk API — every insert is its own transaction
        // (BEGIN / INSERT / COMMIT round trips), the reason SQL-CS
        // loads slowest.
        co_await sim->Delay(2 * rtt_);
        engine->Insert(op.key, op.record_bytes, out, &one);
        break;
      case OpType::kScan:
        break;
    }
    co_await one.Wait();
  }
  if (gate_ != nullptr) gate_->Depart();
  int64_t response = op.type == OpType::kScan
                         ? out->records * op.field_bytes
                         : op.record_bytes;
  co_await sim->Delay(rtt_ / 2 + ResponseTransferTime(response));
  done->CountDown();
}

// --------------------------------------------------------------- Mongo-CS

MongoCsSystem::MongoCsSystem(OltpTestbed* testbed,
                             const docstore::MongodOptions& options,
                             int mongods_per_node,
                             int64_t node_cache_bytes)
    : testbed_(testbed), mongods_per_node_(mongods_per_node) {
  if (node_cache_bytes == 0) {
    node_cache_bytes = options.memory_bytes * mongods_per_node;
  }
  for (int node = 0; node < OltpTestbed::kServerNodes; ++node) {
    // One OS page cache per node, shared by its mongods (mmap storage).
    node_caches_.push_back(std::make_unique<sqlkv::BufferPool>(
        node_cache_bytes, options.cache_page_bytes));
    for (int p = 0; p < mongods_per_node; ++p) {
      mongods_.push_back(std::make_unique<docstore::Mongod>(
          &testbed->sim, &testbed->server(node), options,
          StrFormat("mongod.%d.%d", node, p), node_caches_.back().get(),
          static_cast<uint64_t>(mongods_.size() + 1)));
    }
  }
}

int MongoCsSystem::ShardOf(uint64_t key) const {
  return static_cast<int>(Fnv1a64(key) % mongods_.size());
}

Status MongoCsSystem::LoadDataset(int64_t record_count,
                                  int32_t record_bytes) {
  for (int64_t key = 0; key < record_count; ++key) {
    ELEPHANT_RETURN_NOT_OK(
        mongods_[ShardOf(key)]->LoadDocument(key, record_bytes));
  }
  return Status::OK();
}

void MongoCsSystem::Start() {
  for (auto& m : mongods_) m->Start();
}

void MongoCsSystem::Stop() {
  for (auto& m : mongods_) m->Stop();
}

Status MongoCsSystem::ValidateInvariants() const {
  for (const auto& m : mongods_) {
    ELEPHANT_RETURN_NOT_OK(m->ValidateInvariants());
  }
  return Status::OK();
}

bool MongoCsSystem::Crashed() const {
  for (const auto& m : mongods_) {
    if (m->crashed()) return true;
  }
  return false;
}

Status MongoCsSystem::ValidateQuiesced() const {
  for (const auto& m : mongods_) {
    ELEPHANT_RETURN_NOT_OK(m->ValidateQuiesced());
  }
  return Status::OK();
}

void MongoCsSystem::CrashServerNode(int node) {
  if (node < 0 || node >= OltpTestbed::kServerNodes) return;
  for (int p = 0; p < mongods_per_node_; ++p) {
    mongods_[node * mongods_per_node_ + p]->Crash();
  }
}

void MongoCsSystem::RestartServerNode(int node) {
  if (node < 0 || node >= OltpTestbed::kServerNodes) return;
  for (int p = 0; p < mongods_per_node_; ++p) {
    mongods_[node * mongods_per_node_ + p]->Restart();
  }
}

DataServingSystem::DurabilityLedger MongoCsSystem::Durability() const {
  DurabilityLedger ledger;
  for (const auto& m : mongods_) {
    ledger.acknowledged += m->acked_writes();
    ledger.lost_acknowledged += m->lost_acked_total();
    ledger.unflushed += m->UnflushedAcknowledgedWrites();
    ledger.crashes += m->crashes();
    ledger.restarts += m->restarts();
    ledger.max_loss_window =
        std::max(ledger.max_loss_window, m->max_loss_window());
  }
  return ledger;
}

SimTime MongoCsSystem::TotalLockWait() const {
  SimTime total = 0;
  for (const auto& m : mongods_) total += m->global_lock().total_wait_time();
  return total;
}

void MongoCsSystem::TouchKey(uint64_t key) {
  docstore::Mongod* m = mongods_[ShardOf(key)].get();
  auto lookup = m->collection().Get(key);
  if (lookup.ok()) m->TouchPage(lookup.value().page_id);
}

sim::Task MongoCsSystem::Execute(const Op& op, sqlkv::OpOutcome* out,
                                 sim::Latch* done) {
  sim::Simulation* sim = &testbed_->sim;
  if (injector_ != nullptr &&
      injector_->MessageBlocked(op.origin_node,
                                ShardOf(op.key) / mongods_per_node_)) {
    co_await sim->Delay(injector_->blocked_op_delay());
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  co_await sim->Delay(rtt_ / 2);
  if (gate_ != nullptr) {
    if (gate_->MustShed()) {
      gate_->NoteShed();
      out->shed = true;
      co_await sim->Delay(rtt_ / 2);
      done->CountDown();
      co_return;
    }
    co_await gate_->Admit();
  }
  if (op.type == OpType::kScan) {
    int shards = num_shards();
    std::vector<sqlkv::OpOutcome> partial(shards);
    sim::Latch all(sim, shards);
    int per_shard = op.scan_len / shards + 1;
    for (int s = 0; s < shards; ++s) {
      mongods_[s]->Scan(op.key, per_shard, &partial[s], &all);
    }
    co_await all.Wait();
    out->ok = true;
    for (const auto& p : partial) out->records += p.records;
    out->records = std::min<int64_t>(out->records, op.scan_len);
  } else {
    sim::Latch one(sim, 1);
    docstore::Mongod* m = mongods_[ShardOf(op.key)].get();
    switch (op.type) {
      case OpType::kRead:
        m->Read(op.key, out, &one);
        break;
      case OpType::kUpdate:
        m->Update(op.key, op.field_bytes, out, &one);
        break;
      case OpType::kInsert:
        m->Insert(op.key, op.record_bytes, out, &one);
        break;
      case OpType::kScan:
        break;
    }
    co_await one.Wait();
  }
  if (gate_ != nullptr) gate_->Depart();
  int64_t response = op.type == OpType::kScan
                         ? out->records * op.field_bytes
                         : op.record_bytes;
  co_await sim->Delay(rtt_ / 2 + ResponseTransferTime(response));
  done->CountDown();
}

// --------------------------------------------------------------- Mongo-AS

MongoAsSystem::MongoAsSystem(OltpTestbed* testbed, const Options& options)
    : testbed_(testbed), options_(options) {
  int shards = OltpTestbed::kServerNodes * options.mongods_per_node;
  config_ = std::make_unique<docstore::ConfigServer>(shards,
                                                     options.config);
  int64_t cache = options.node_cache_bytes != 0
                      ? options.node_cache_bytes
                      : options.mongod.memory_bytes *
                            options.mongods_per_node;
  for (int node = 0; node < OltpTestbed::kServerNodes; ++node) {
    node_caches_.push_back(std::make_unique<sqlkv::BufferPool>(
        cache, options.mongod.cache_page_bytes));
    for (int p = 0; p < options.mongods_per_node; ++p) {
      mongods_.push_back(std::make_unique<docstore::Mongod>(
          &testbed->sim, &testbed->server(node), options.mongod,
          StrFormat("mongod-as.%d.%d", node, p), node_caches_.back().get(),
          static_cast<uint64_t>(mongods_.size() + 1)));
    }
  }
}

Status MongoAsSystem::LoadDataset(int64_t record_count,
                                  int32_t record_bytes) {
  expected_records_ = record_count;
  if (options_.presplit_chunks) {
    // §3.4.2: boundaries of the initially empty chunks are defined
    // manually and spread across the 128 shards before loading.
    // Chunk boundaries cover exactly the known load range (the paper
    // pre-splits for the keys "to be inserted" during the load);
    // benchmark-time appends beyond it all land in the last chunk.
    int chunks = std::max<int>(
        num_shards() * 4,
        static_cast<int>(record_count * record_bytes /
                         options_.config.max_chunk_bytes) *
                2 +
            1);
    config_->PreSplit(record_count, chunks);
  }
  for (int64_t key = 0; key < record_count; ++key) {
    int shard = config_->Route(key);
    ELEPHANT_RETURN_NOT_OK(mongods_[shard]->LoadDocument(key, record_bytes));
    config_->NoteInsert(key, record_bytes);
  }
  return Status::OK();
}

void MongoAsSystem::Start() {
  for (auto& m : mongods_) m->Start();
}

void MongoAsSystem::Stop() {
  for (auto& m : mongods_) m->Stop();
}

Status MongoAsSystem::ValidateInvariants() const {
  for (const auto& m : mongods_) {
    ELEPHANT_RETURN_NOT_OK(m->ValidateInvariants());
  }
  return Status::OK();
}

bool MongoAsSystem::Crashed() const {
  for (const auto& m : mongods_) {
    if (m->crashed()) return true;
  }
  return false;
}

Status MongoAsSystem::ValidateQuiesced() const {
  for (const auto& m : mongods_) {
    ELEPHANT_RETURN_NOT_OK(m->ValidateQuiesced());
  }
  return Status::OK();
}

void MongoAsSystem::CrashServerNode(int node) {
  if (node < 0 || node >= OltpTestbed::kServerNodes) return;
  for (int p = 0; p < options_.mongods_per_node; ++p) {
    mongods_[node * options_.mongods_per_node + p]->Crash();
  }
}

void MongoAsSystem::RestartServerNode(int node) {
  if (node < 0 || node >= OltpTestbed::kServerNodes) return;
  for (int p = 0; p < options_.mongods_per_node; ++p) {
    mongods_[node * options_.mongods_per_node + p]->Restart();
  }
}

DataServingSystem::DurabilityLedger MongoAsSystem::Durability() const {
  DurabilityLedger ledger;
  for (const auto& m : mongods_) {
    ledger.acknowledged += m->acked_writes();
    ledger.lost_acknowledged += m->lost_acked_total();
    ledger.unflushed += m->UnflushedAcknowledgedWrites();
    ledger.crashes += m->crashes();
    ledger.restarts += m->restarts();
    ledger.max_loss_window =
        std::max(ledger.max_loss_window, m->max_loss_window());
  }
  return ledger;
}

double MongoAsSystem::MeanWriteLockFraction() const {
  double sum = 0;
  for (const auto& m : mongods_) sum += m->WriteLockFraction();
  return sum / mongods_.size();
}

SimTime MongoAsSystem::TotalLockWait() const {
  SimTime total = 0;
  for (const auto& m : mongods_) total += m->global_lock().total_wait_time();
  return total;
}

void MongoAsSystem::TouchKey(uint64_t key) {
  docstore::Mongod* m = mongods_[config_->Route(key)].get();
  auto lookup = m->collection().Get(key);
  if (lookup.ok()) m->TouchPage(lookup.value().page_id);
}

sim::Task MongoAsSystem::Execute(const Op& op, sqlkv::OpOutcome* out,
                                 sim::Latch* done) {
  sim::Simulation* sim = &testbed_->sim;
  if (injector_ != nullptr &&
      injector_->MessageBlocked(
          op.origin_node, config_->Route(op.key) / options_.mongods_per_node)) {
    co_await sim->Delay(injector_->blocked_op_delay());
    out->transient_error = true;
    done->CountDown();
    co_return;
  }
  co_await sim->Delay(rtt_ / 2);
  // The gate fronts the whole server side, mongos router included.
  if (gate_ != nullptr) {
    if (gate_->MustShed()) {
      gate_->NoteShed();
      out->shed = true;
      co_await sim->Delay(rtt_ / 2);
      done->CountDown();
      co_return;
    }
    co_await gate_->Admit();
  }
  // mongos hop: routing CPU on the server node hosting the router.
  int router_node = static_cast<int>(op.key % OltpTestbed::kServerNodes);
  co_await testbed_->server(router_node)
      .cpu()
      .Acquire(options_.mongos_cpu);

  if (op.type == OpType::kScan) {
    // Range partitioning: only the chunks covering the range are hit —
    // typically one (the Mongo-AS advantage on workload E).
    std::vector<int> shards =
        config_->RouteRange(op.key, op.key + op.scan_len + 1);
    std::vector<sqlkv::OpOutcome> partial(shards.size());
    sim::Latch all(sim, static_cast<int64_t>(shards.size()));
    for (size_t i = 0; i < shards.size(); ++i) {
      mongods_[shards[i]]->Scan(op.key, op.scan_len, &partial[i], &all);
    }
    co_await all.Wait();
    out->ok = true;
    for (const auto& p : partial) out->records += p.records;
    out->records = std::min<int64_t>(out->records, op.scan_len);
  } else {
    sim::Latch one(sim, 1);
    int shard = config_->Route(op.key);
    docstore::Mongod* m = mongods_[shard].get();
    switch (op.type) {
      case OpType::kRead:
        m->Read(op.key, out, &one);
        break;
      case OpType::kUpdate:
        m->Update(op.key, op.field_bytes, out, &one);
        break;
      case OpType::kInsert:
        co_await sim->Delay(options_.insert_metadata_overhead);
        m->Insert(op.key, op.record_bytes, out, &one);
        if (config_->NoteInsert(op.key, op.record_bytes) &&
            options_.split_stall > 0) {
          m->StallExclusive(options_.split_stall);
        }
        break;
      case OpType::kScan:
        break;
    }
    co_await one.Wait();
  }
  if (gate_ != nullptr) gate_->Depart();
  int64_t response = op.type == OpType::kScan
                         ? out->records * op.field_bytes
                         : op.record_bytes;
  co_await sim->Delay(rtt_ / 2 + ResponseTransferTime(response));
  done->CountDown();
}

sim::Task MongoAsSystem::RunBalancerOnce(sim::Latch* done) {
  using LockMode = sim::LocksetChecker::Mode;
  using LockAccess = sim::LocksetChecker::Access;
  auto migrations = config_->BalanceOnce();
  for (const auto& m : migrations) {
    // Move the chunk's documents: read them off the source, stream over
    // the network, insert into the destination.
    docstore::Mongod* src = mongods_[m.from].get();
    docstore::Mongod* dst = mongods_[m.to].get();
    // The migration critical section takes both endpoints' global
    // locks exclusively (in shard order — there is a single balancer
    // coroutine, so ordering is belt-and-braces, not a deadlock fix).
    // The lockset checker caught the original version mutating both
    // collections with no lock at all, racing live traffic.
    docstore::Mongod* first = m.from < m.to ? src : dst;
    docstore::Mongod* second = m.from < m.to ? dst : src;
    co_await first->global_lock().AcquireExclusive();
    co_await second->global_lock().AcquireExclusive();
    sim::LocksetScope lockset(&testbed_->sim.lockset_checker(),
                              "mongo-as.migrate");
    lockset.NoteAcquired({src->lockset_domain(), 0}, LockMode::kExclusive);
    lockset.NoteAcquired({dst->lockset_domain(), 0}, LockMode::kExclusive);
    std::vector<std::pair<uint64_t, int32_t>> moved;
    lockset.CheckAccess({src->lockset_domain(), 0}, m.chunk.min_key,
                        LockAccess::kRead, LockMode::kShared);
    src->collection().Scan(
        m.chunk.min_key, static_cast<int>(src->collection().size()),
        [&](uint64_t key, const sqlkv::Record& rec, uint64_t) {
          if (key < m.chunk.max_key) moved.emplace_back(key, rec.bytes());
        });
    int64_t bytes = 0;
    for (auto& [key, size] : moved) {
      // Collection mutation is metadata-speed; the cost is the wire.
      lockset.CheckAccess({src->lockset_domain(), 0}, key,
                          LockAccess::kWrite, LockMode::kExclusive);
      ELEPHANT_CHECK_OK(
          const_cast<sqlkv::BTree&>(src->collection()).Remove(key));
      lockset.CheckAccess({dst->lockset_domain(), 0}, key,
                          LockAccess::kWrite, LockMode::kExclusive);
      ELEPHANT_CHECK_OK(dst->LoadDocument(key, size));
      bytes += size;
    }
    second->global_lock().Release(/*exclusive=*/true);
    first->global_lock().Release(/*exclusive=*/true);
    co_await testbed_->sim.Delay(
        ResponseTransferTime(bytes) + 10 * kMillisecond);
  }
  if (done != nullptr) done->CountDown();
}

}  // namespace elephant::ycsb
