#ifndef ELEPHANT_YCSB_SYSTEMS_H_
#define ELEPHANT_YCSB_SYSTEMS_H_

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "docstore/mongod.h"
#include "docstore/sharding.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "sqlkv/engine.h"
#include "ycsb/workload.h"

namespace elephant::ycsb {

/// Admission control at a data-serving system's front door: a FIFO
/// counting semaphore with a bounded wait queue. Open-loop load (the
/// saturation sweep) keeps arriving past the knee; the gate bounds the
/// in-flight population (protecting the engines from the unbounded
/// pile-up a closed-loop driver never produces — mongod's socket-error
/// crash fires at ~620 in-flight ops per process) and sheds arrivals
/// once the queue is full. Admission with a free slot and an empty
/// queue completes inline — no extra simulation events — and a system
/// with no gate installed is branch-only, so every historical
/// fingerprint is preserved.
class AdmissionGate : public sim::Waitable {
 public:
  struct Limits {
    int64_t max_inflight = 512;  ///< ops admitted past the front door
    int64_t max_queued = 512;    ///< ops parked waiting for a slot
  };

  AdmissionGate(sim::Simulation* sim, const Limits& limits)
      : sim::Waitable(sim, "AdmissionGate"), sim_(sim), limits_(limits) {}
  /// Frees the frames of coroutines still parked here (see ~Simulation).
  ~AdmissionGate() override {
    for (const QueuedOp& w : waiters_) w.handle.destroy();
  }

  /// True when both the in-flight population and the wait queue are at
  /// their limits: the next arrival must be rejected, not queued.
  bool MustShed() const {
    return inflight_ >= limits_.max_inflight &&
           static_cast<int64_t>(waiters_.size()) >= limits_.max_queued;
  }
  void NoteShed() { shed_++; }

  /// Awaitable: completes when the operation holds an admission slot.
  /// Callers must check MustShed() first and must pair every completed
  /// Admit() with exactly one Depart().
  struct Awaiter {
    AdmissionGate* gate;
    bool await_ready() const noexcept { return gate->TryAdmit(); }
    void await_suspend(std::coroutine_handle<> h) {
      gate->waiters_.push_back({h, gate->sim_->now()});
      gate->peak_queued_ = std::max(
          gate->peak_queued_, static_cast<int64_t>(gate->waiters_.size()));
    }
    void await_resume() const noexcept {}
  };
  Awaiter Admit() { return {this}; }

  /// Releases the slot and grants the oldest queued arrival, if any.
  void Depart() {
    inflight_--;
    if (waiters_.empty() || inflight_ >= limits_.max_inflight) return;
    QueuedOp next = waiters_.front();
    waiters_.pop_front();
    inflight_++;
    admitted_++;
    queue_wait_time_ += sim_->now() - next.enqueued_at;
    sim_->ScheduleResume(0, next.handle);
  }

  int64_t inflight() const { return inflight_; }
  int64_t admitted() const { return admitted_; }
  int64_t shed() const { return shed_; }
  int64_t peak_inflight() const { return peak_inflight_; }
  int64_t peak_queued() const { return peak_queued_; }
  /// Cumulative virtual time admitted ops spent queued at the gate.
  SimTime queue_wait_time() const { return queue_wait_time_; }

  size_t parked_waiters() const override { return waiters_.size(); }
  std::string DescribeWaiters() const override;

 private:
  struct QueuedOp {
    std::coroutine_handle<> handle;
    SimTime enqueued_at;
  };

  bool TryAdmit() {
    // No barging past queued arrivals: FIFO even for the fast path.
    if (inflight_ >= limits_.max_inflight || !waiters_.empty()) {
      return false;
    }
    inflight_++;
    admitted_++;
    peak_inflight_ = std::max(peak_inflight_, inflight_);
    return true;
  }

  sim::Simulation* sim_;
  Limits limits_;
  int64_t inflight_ = 0;
  int64_t admitted_ = 0;
  int64_t shed_ = 0;
  int64_t peak_inflight_ = 0;
  int64_t peak_queued_ = 0;
  SimTime queue_wait_time_ = 0;
  std::deque<QueuedOp> waiters_;
};

/// One benchmark request as routed to a data-serving system.
struct Op {
  OpType type = OpType::kRead;
  uint64_t key = 0;
  int scan_len = 0;
  int32_t record_bytes = 1024;
  int32_t field_bytes = 100;
  /// Cluster node the request originates from (client nodes are 8..15);
  /// -1 = unknown, which skips partition/outage checks.
  int origin_node = -1;
};

/// Abstract data-serving system under test (the paper's SQL-CS,
/// Mongo-CS and Mongo-AS). Execution happens in simulated time;
/// `done` fires when the response reaches the client.
class DataServingSystem {
 public:
  virtual ~DataServingSystem() = default;

  /// Bulk-loads the initial dataset without consuming simulated time.
  virtual Status LoadDataset(int64_t record_count, int32_t record_bytes) = 0;

  /// Starts background machinery (checkpointers, flushers).
  virtual void Start() = 0;
  virtual void Stop() = 0;

  virtual sim::Task Execute(const Op& op, sqlkv::OpOutcome* out,
                            sim::Latch* done) = 0;

  /// Statistical warm start: touches the cache page holding `key`
  /// without consuming simulated time. The driver samples the request
  /// distribution to reconstruct the steady-state resident set the
  /// paper reaches minutes into each 30-minute run.
  virtual void TouchKey(uint64_t key) = 0;

  /// True once the system has stopped answering (Mongo-AS on WL D).
  virtual bool Crashed() const { return false; }

  /// Structural validation of every engine/process in the system
  /// (B+trees, pools, logs, lock tables). The driver asserts this at
  /// the end of each run; safe at any simulated instant.
  virtual Status ValidateInvariants() const { return Status::OK(); }

  /// ValidateInvariants plus per-engine quiesce conditions (empty lock
  /// tables, no in-flight operations). Call after the event loop
  /// drains.
  virtual Status ValidateQuiesced() const { return ValidateInvariants(); }

  /// Installs the fault injector consulted on every Execute() for
  /// client<->server reachability. Pass nullptr (the default state) to
  /// run fault-free; the no-injector path is branch-only and adds zero
  /// simulation events.
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Installs admission control at the front door: every Execute()
  /// consults the gate after the request reaches the system and before
  /// any engine work. Pass nullptr (the default state) to run ungated;
  /// like the injector, the no-gate path is branch-only with zero extra
  /// simulation events, preserving historical fingerprints.
  void set_admission_gate(AdmissionGate* gate) { gate_ = gate; }
  AdmissionGate* admission_gate() const { return gate_; }

  /// Cumulative virtual time operations have spent blocked at this
  /// system's contention points (sqlkv row locks / mongod global
  /// locks). The sweep harness differentiates this across its
  /// measurement window for the lock-wait utilization probe.
  virtual SimTime TotalLockWait() const { return 0; }

  /// Crashes / restarts every process hosted on server node `node`
  /// (fault-injector hooks). Default: the system has no crash model.
  virtual void CrashServerNode(int node) { (void)node; }
  virtual void RestartServerNode(int node) { (void)node; }

  /// The acknowledged-write ledger the chaos harness asserts on: SQL
  /// must never lose an acknowledged write; Mongo's loss is bounded by
  /// the mmap flush interval.
  struct DurabilityLedger {
    int64_t acknowledged = 0;
    int64_t lost_acknowledged = 0;
    int64_t unflushed = 0;  ///< acked writes currently at risk (Mongo)
    int64_t crashes = 0;
    int64_t restarts = 0;
    SimTime max_loss_window = 0;
  };
  virtual DurabilityLedger Durability() const { return {}; }

  virtual std::string name() const = 0;

 protected:
  sim::FaultInjector* injector_ = nullptr;
  AdmissionGate* gate_ = nullptr;
};

/// Shared wiring: 8 server nodes + 8 client nodes behind one switch.
struct OltpTestbed {
  static constexpr int kServerNodes = 8;
  static constexpr int kClientNodes = 8;

  explicit OltpTestbed(const cluster::NodeConfig& node_config = {});

  sim::Simulation sim;
  cluster::Cluster cluster;  ///< nodes 0..7 servers, 8..15 clients

  cluster::Node& server(int i) { return cluster.node(i); }
  cluster::Node& client(int i) { return cluster.node(kServerNodes + i); }
};

/// Client-side sharded SQL Server: one engine per server node, home
/// node chosen by hashing the key in the client library (§2.4).
class SqlCsSystem : public DataServingSystem {
 public:
  SqlCsSystem(OltpTestbed* testbed, const sqlkv::SqlEngineOptions& options);

  Status LoadDataset(int64_t record_count, int32_t record_bytes) override;
  void Start() override;
  void Stop() override;
  sim::Task Execute(const Op& op, sqlkv::OpOutcome* out,
                    sim::Latch* done) override;
  void TouchKey(uint64_t key) override;
  Status ValidateInvariants() const override;
  Status ValidateQuiesced() const override;
  void CrashServerNode(int node) override;
  void RestartServerNode(int node) override;
  DurabilityLedger Durability() const override;
  SimTime TotalLockWait() const override;
  std::string name() const override { return "SQL-CS"; }

  sqlkv::SqlEngine& engine(int i) { return *engines_[i]; }
  int num_shards() const { return static_cast<int>(engines_.size()); }
  int ShardOf(uint64_t key) const;

 private:
  OltpTestbed* testbed_;
  std::vector<std::unique_ptr<sqlkv::SqlEngine>> engines_;
  SimTime rtt_ = 300;  // client<->server network round trip, microseconds
};

/// Client-side sharded MongoDB: 16 mongod processes per server node
/// (128 shards), no mongos/config/balancer, hash routing in the client.
class MongoCsSystem : public DataServingSystem {
 public:
  /// `node_cache_bytes` sizes the per-node OS page cache shared by the
  /// node's mongods (mmap storage); 0 = 16x options.memory_bytes.
  MongoCsSystem(OltpTestbed* testbed, const docstore::MongodOptions& options,
                int mongods_per_node = 16, int64_t node_cache_bytes = 0);

  Status LoadDataset(int64_t record_count, int32_t record_bytes) override;
  void Start() override;
  void Stop() override;
  sim::Task Execute(const Op& op, sqlkv::OpOutcome* out,
                    sim::Latch* done) override;
  void TouchKey(uint64_t key) override;
  bool Crashed() const override;
  Status ValidateInvariants() const override;
  Status ValidateQuiesced() const override;
  void CrashServerNode(int node) override;
  void RestartServerNode(int node) override;
  DurabilityLedger Durability() const override;
  SimTime TotalLockWait() const override;
  std::string name() const override { return "Mongo-CS"; }

  docstore::Mongod& mongod(int i) { return *mongods_[i]; }
  int num_shards() const { return static_cast<int>(mongods_.size()); }
  int ShardOf(uint64_t key) const;

 private:
  OltpTestbed* testbed_;
  int mongods_per_node_;
  std::vector<std::unique_ptr<sqlkv::BufferPool>> node_caches_;
  std::vector<std::unique_ptr<docstore::Mongod>> mongods_;
  SimTime rtt_ = 300;
};

/// Auto-sharded MongoDB: range-partitioned chunks via a config server,
/// mongos routers (one per server node), splitter, and balancer. The
/// paper pre-splits chunks before loading (§3.4.2).
class MongoAsSystem : public DataServingSystem {
 public:
  struct Options {
    docstore::MongodOptions mongod;
    docstore::ConfigServer::Options config;
    int mongods_per_node = 16;
    int64_t node_cache_bytes = 0;  ///< shared OS page cache per node
    bool presplit_chunks = true;  ///< the paper's load optimization
    SimTime mongos_cpu = 40;      ///< routing cost per request
    /// Extra per-insert cost unique to auto-sharding: the chunk-version
    /// check against the config server and the safe-mode getLastError
    /// round trip through mongos (why Mongo-AS loads ~2.5x slower than
    /// Mongo-CS in §3.4.2).
    SimTime insert_metadata_overhead = 700;
    /// Exclusive-lock stall on the shard when one of its chunks splits
    /// (median scan + config update + moveChunk preparation). Appends
    /// land on the ever-growing last chunk, so they both cause and
    /// suffer these stalls (§3.4.3, workload E's 1832 ms appends).
    SimTime split_stall = 30 * kMillisecond;
  };

  MongoAsSystem(OltpTestbed* testbed, const Options& options);

  Status LoadDataset(int64_t record_count, int32_t record_bytes) override;
  void Start() override;
  void Stop() override;
  sim::Task Execute(const Op& op, sqlkv::OpOutcome* out,
                    sim::Latch* done) override;
  void TouchKey(uint64_t key) override;
  bool Crashed() const override;
  Status ValidateInvariants() const override;
  Status ValidateQuiesced() const override;
  void CrashServerNode(int node) override;
  void RestartServerNode(int node) override;
  DurabilityLedger Durability() const override;
  SimTime TotalLockWait() const override;
  std::string name() const override { return "Mongo-AS"; }

  docstore::ConfigServer& config() { return *config_; }
  docstore::Mongod& mongod(int i) { return *mongods_[i]; }
  int num_shards() const { return static_cast<int>(mongods_.size()); }

  /// One balancer round: migrates a chunk's documents between shards
  /// under both endpoints' global locks and charges the transfer (used
  /// when presplit_chunks is false). `done` (optional) fires when the
  /// round completes — pass nullptr when the caller drains the event
  /// loop instead of waiting (a stack latch a coroutine outlives is a
  /// dangling pointer).
  sim::Task RunBalancerOnce(sim::Latch* done = nullptr);

  /// Mean write-lock fraction across mongods (the paper's mongostat
  /// observation).
  double MeanWriteLockFraction() const;

 private:
  OltpTestbed* testbed_;
  Options options_;
  std::unique_ptr<docstore::ConfigServer> config_;
  std::vector<std::unique_ptr<sqlkv::BufferPool>> node_caches_;
  std::vector<std::unique_ptr<docstore::Mongod>> mongods_;
  int64_t expected_records_ = 0;
  SimTime rtt_ = 300;
};

}  // namespace elephant::ycsb

#endif  // ELEPHANT_YCSB_SYSTEMS_H_
