#ifndef ELEPHANT_YCSB_SYSTEMS_H_
#define ELEPHANT_YCSB_SYSTEMS_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "docstore/mongod.h"
#include "docstore/sharding.h"
#include "sim/fault.h"
#include "sim/simulation.h"
#include "sqlkv/engine.h"
#include "ycsb/workload.h"

namespace elephant::ycsb {

/// One benchmark request as routed to a data-serving system.
struct Op {
  OpType type = OpType::kRead;
  uint64_t key = 0;
  int scan_len = 0;
  int32_t record_bytes = 1024;
  int32_t field_bytes = 100;
  /// Cluster node the request originates from (client nodes are 8..15);
  /// -1 = unknown, which skips partition/outage checks.
  int origin_node = -1;
};

/// Abstract data-serving system under test (the paper's SQL-CS,
/// Mongo-CS and Mongo-AS). Execution happens in simulated time;
/// `done` fires when the response reaches the client.
class DataServingSystem {
 public:
  virtual ~DataServingSystem() = default;

  /// Bulk-loads the initial dataset without consuming simulated time.
  virtual Status LoadDataset(int64_t record_count, int32_t record_bytes) = 0;

  /// Starts background machinery (checkpointers, flushers).
  virtual void Start() = 0;
  virtual void Stop() = 0;

  virtual sim::Task Execute(const Op& op, sqlkv::OpOutcome* out,
                            sim::Latch* done) = 0;

  /// Statistical warm start: touches the cache page holding `key`
  /// without consuming simulated time. The driver samples the request
  /// distribution to reconstruct the steady-state resident set the
  /// paper reaches minutes into each 30-minute run.
  virtual void TouchKey(uint64_t key) = 0;

  /// True once the system has stopped answering (Mongo-AS on WL D).
  virtual bool Crashed() const { return false; }

  /// Structural validation of every engine/process in the system
  /// (B+trees, pools, logs, lock tables). The driver asserts this at
  /// the end of each run; safe at any simulated instant.
  virtual Status ValidateInvariants() const { return Status::OK(); }

  /// ValidateInvariants plus per-engine quiesce conditions (empty lock
  /// tables, no in-flight operations). Call after the event loop
  /// drains.
  virtual Status ValidateQuiesced() const { return ValidateInvariants(); }

  /// Installs the fault injector consulted on every Execute() for
  /// client<->server reachability. Pass nullptr (the default state) to
  /// run fault-free; the no-injector path is branch-only and adds zero
  /// simulation events.
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Crashes / restarts every process hosted on server node `node`
  /// (fault-injector hooks). Default: the system has no crash model.
  virtual void CrashServerNode(int node) { (void)node; }
  virtual void RestartServerNode(int node) { (void)node; }

  /// The acknowledged-write ledger the chaos harness asserts on: SQL
  /// must never lose an acknowledged write; Mongo's loss is bounded by
  /// the mmap flush interval.
  struct DurabilityLedger {
    int64_t acknowledged = 0;
    int64_t lost_acknowledged = 0;
    int64_t unflushed = 0;  ///< acked writes currently at risk (Mongo)
    int64_t crashes = 0;
    int64_t restarts = 0;
    SimTime max_loss_window = 0;
  };
  virtual DurabilityLedger Durability() const { return {}; }

  virtual std::string name() const = 0;

 protected:
  sim::FaultInjector* injector_ = nullptr;
};

/// Shared wiring: 8 server nodes + 8 client nodes behind one switch.
struct OltpTestbed {
  static constexpr int kServerNodes = 8;
  static constexpr int kClientNodes = 8;

  explicit OltpTestbed(const cluster::NodeConfig& node_config = {});

  sim::Simulation sim;
  cluster::Cluster cluster;  ///< nodes 0..7 servers, 8..15 clients

  cluster::Node& server(int i) { return cluster.node(i); }
  cluster::Node& client(int i) { return cluster.node(kServerNodes + i); }
};

/// Client-side sharded SQL Server: one engine per server node, home
/// node chosen by hashing the key in the client library (§2.4).
class SqlCsSystem : public DataServingSystem {
 public:
  SqlCsSystem(OltpTestbed* testbed, const sqlkv::SqlEngineOptions& options);

  Status LoadDataset(int64_t record_count, int32_t record_bytes) override;
  void Start() override;
  void Stop() override;
  sim::Task Execute(const Op& op, sqlkv::OpOutcome* out,
                    sim::Latch* done) override;
  void TouchKey(uint64_t key) override;
  Status ValidateInvariants() const override;
  Status ValidateQuiesced() const override;
  void CrashServerNode(int node) override;
  void RestartServerNode(int node) override;
  DurabilityLedger Durability() const override;
  std::string name() const override { return "SQL-CS"; }

  sqlkv::SqlEngine& engine(int i) { return *engines_[i]; }
  int num_shards() const { return static_cast<int>(engines_.size()); }
  int ShardOf(uint64_t key) const;

 private:
  OltpTestbed* testbed_;
  std::vector<std::unique_ptr<sqlkv::SqlEngine>> engines_;
  SimTime rtt_ = 300;  // client<->server network round trip, microseconds
};

/// Client-side sharded MongoDB: 16 mongod processes per server node
/// (128 shards), no mongos/config/balancer, hash routing in the client.
class MongoCsSystem : public DataServingSystem {
 public:
  /// `node_cache_bytes` sizes the per-node OS page cache shared by the
  /// node's mongods (mmap storage); 0 = 16x options.memory_bytes.
  MongoCsSystem(OltpTestbed* testbed, const docstore::MongodOptions& options,
                int mongods_per_node = 16, int64_t node_cache_bytes = 0);

  Status LoadDataset(int64_t record_count, int32_t record_bytes) override;
  void Start() override;
  void Stop() override;
  sim::Task Execute(const Op& op, sqlkv::OpOutcome* out,
                    sim::Latch* done) override;
  void TouchKey(uint64_t key) override;
  bool Crashed() const override;
  Status ValidateInvariants() const override;
  Status ValidateQuiesced() const override;
  void CrashServerNode(int node) override;
  void RestartServerNode(int node) override;
  DurabilityLedger Durability() const override;
  std::string name() const override { return "Mongo-CS"; }

  docstore::Mongod& mongod(int i) { return *mongods_[i]; }
  int num_shards() const { return static_cast<int>(mongods_.size()); }
  int ShardOf(uint64_t key) const;

 private:
  OltpTestbed* testbed_;
  int mongods_per_node_;
  std::vector<std::unique_ptr<sqlkv::BufferPool>> node_caches_;
  std::vector<std::unique_ptr<docstore::Mongod>> mongods_;
  SimTime rtt_ = 300;
};

/// Auto-sharded MongoDB: range-partitioned chunks via a config server,
/// mongos routers (one per server node), splitter, and balancer. The
/// paper pre-splits chunks before loading (§3.4.2).
class MongoAsSystem : public DataServingSystem {
 public:
  struct Options {
    docstore::MongodOptions mongod;
    docstore::ConfigServer::Options config;
    int mongods_per_node = 16;
    int64_t node_cache_bytes = 0;  ///< shared OS page cache per node
    bool presplit_chunks = true;  ///< the paper's load optimization
    SimTime mongos_cpu = 40;      ///< routing cost per request
    /// Extra per-insert cost unique to auto-sharding: the chunk-version
    /// check against the config server and the safe-mode getLastError
    /// round trip through mongos (why Mongo-AS loads ~2.5x slower than
    /// Mongo-CS in §3.4.2).
    SimTime insert_metadata_overhead = 700;
    /// Exclusive-lock stall on the shard when one of its chunks splits
    /// (median scan + config update + moveChunk preparation). Appends
    /// land on the ever-growing last chunk, so they both cause and
    /// suffer these stalls (§3.4.3, workload E's 1832 ms appends).
    SimTime split_stall = 30 * kMillisecond;
  };

  MongoAsSystem(OltpTestbed* testbed, const Options& options);

  Status LoadDataset(int64_t record_count, int32_t record_bytes) override;
  void Start() override;
  void Stop() override;
  sim::Task Execute(const Op& op, sqlkv::OpOutcome* out,
                    sim::Latch* done) override;
  void TouchKey(uint64_t key) override;
  bool Crashed() const override;
  Status ValidateInvariants() const override;
  Status ValidateQuiesced() const override;
  void CrashServerNode(int node) override;
  void RestartServerNode(int node) override;
  DurabilityLedger Durability() const override;
  std::string name() const override { return "Mongo-AS"; }

  docstore::ConfigServer& config() { return *config_; }
  docstore::Mongod& mongod(int i) { return *mongods_[i]; }
  int num_shards() const { return static_cast<int>(mongods_.size()); }

  /// One balancer round: migrates a chunk's documents between shards
  /// under both endpoints' global locks and charges the transfer (used
  /// when presplit_chunks is false). `done` (optional) fires when the
  /// round completes — pass nullptr when the caller drains the event
  /// loop instead of waiting (a stack latch a coroutine outlives is a
  /// dangling pointer).
  sim::Task RunBalancerOnce(sim::Latch* done = nullptr);

  /// Mean write-lock fraction across mongods (the paper's mongostat
  /// observation).
  double MeanWriteLockFraction() const;

 private:
  OltpTestbed* testbed_;
  Options options_;
  std::unique_ptr<docstore::ConfigServer> config_;
  std::vector<std::unique_ptr<sqlkv::BufferPool>> node_caches_;
  std::vector<std::unique_ptr<docstore::Mongod>> mongods_;
  int64_t expected_records_ = 0;
  SimTime rtt_ = 300;
};

}  // namespace elephant::ycsb

#endif  // ELEPHANT_YCSB_SYSTEMS_H_
