#ifndef ELEPHANT_YCSB_WORKLOAD_H_
#define ELEPHANT_YCSB_WORKLOAD_H_

#include <string>

namespace elephant::ycsb {

/// Operation types issued by the benchmark.
enum class OpType { kRead, kUpdate, kInsert, kScan };

const char* OpTypeName(OpType type);

/// Request-distribution families from the YCSB paper.
enum class Distribution { kUniform, kZipfian, kLatest };

/// One YCSB core workload (the paper's Table 6).
struct WorkloadSpec {
  std::string name;
  std::string description;
  double read = 0;
  double update = 0;
  double insert = 0;  ///< "append" in the paper: key = last + 1
  double scan = 0;
  Distribution distribution = Distribution::kZipfian;
  int max_scan_len = 1000;  ///< §3.4.1: scans read at most 1000 records

  /// Table 6 rows.
  static WorkloadSpec A();  ///< update heavy: 50/50 read/update
  static WorkloadSpec B();  ///< read heavy: 95/5 read/update
  static WorkloadSpec C();  ///< read only
  static WorkloadSpec D();  ///< read latest: 95/5 read/append
  static WorkloadSpec E();  ///< short ranges: 95/5 scan/append
  static WorkloadSpec ByName(char name);
};

}  // namespace elephant::ycsb

#endif  // ELEPHANT_YCSB_WORKLOAD_H_
