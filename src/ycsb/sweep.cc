#include "ycsb/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "common/fingerprint.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "sim/simulation.h"

namespace elephant::ycsb {

SweepOptions SweepOptions::Small() {
  SweepOptions o;
  // Small enough for a CI shard, sized so the top rate is well past
  // what 8 nodes of mostly-disk-bound service can absorb.
  o.driver.record_count = 160000;
  o.driver.warmup = 1 * kSecond;
  o.driver.measure = 2 * kSecond;
  o.offered_rates = {1000, 4000, 16000, 64000};
  o.arrival_streams = 32;
  return o;
}

uint64_t SweepStepResult::Fingerprint() const {
  return elephant::Fingerprint()
      .Mix(offered_rate)
      .Mix(achieved_rate)
      .Mix(arrivals)
      .Mix(completed)
      .Mix(shed)
      .Mix(failed)
      .Mix(crashed)
      .Mix(sim_events)
      .Mix(p50_us)
      .Mix(p95_us)
      .Mix(p99_us)
      .Mix(p999_us)
      .Mix(util.cpu)
      .Mix(util.disk)
      .Mix(util.log_disk)
      .Mix(util.nic_tx)
      .Mix(util.nic_rx)
      .Mix(util.lock_wait)
      .Mix(peak_inflight)
      .Mix(peak_queued)
      .Mix(queue_wait_ms)
      .value();
}

uint64_t SweepCurve::Fingerprint() const {
  elephant::Fingerprint fp;
  fp.Mix(std::string_view(system));
  for (const SweepStepResult& step : steps) fp.Mix(step.Fingerprint());
  fp.Mix(idle_p99_ms).Mix(knee_step).Mix(knee_offered_rate).Mix(
      p99_at_knee_ms);
  return fp.value();
}

namespace {

/// Per-(seed, rate, stream) RNG seed: successive SplitMix64 rounds fold
/// each coordinate into a fully mixed state, so adjacent streams are
/// decorrelated yet the whole arrival schedule replays from one root
/// seed (ELEPHANT_SWEEP_SEED).
uint64_t StreamSeed(uint64_t seed, int64_t offered_rate, int stream) {
  uint64_t state = seed;
  state = SplitMix64(&state) ^ static_cast<uint64_t>(offered_rate);
  state = SplitMix64(&state) ^ static_cast<uint64_t>(stream);
  return SplitMix64(&state);
}

/// Mutable state of one running step, shared by the arrival streams and
/// the in-flight operation coroutines (all on the step's single
/// simulation; no host-thread sharing).
struct StepState {
  sim::Simulation* sim = nullptr;
  DataServingSystem* system = nullptr;
  OpGenerator* gen = nullptr;
  SimTime measure_start = 0;
  SimTime end = 0;
  double mean_gap_us = 0;
  int64_t arrivals = 0;
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t failed = 0;
  Histogram latency;
};

/// One in-flight operation. Open-loop: it owns its completion latch and
/// rides independently of the arrival stream that spawned it, so a slow
/// response never throttles the arrival process.
sim::Task OneOp(StepState* st, Op op) {
  sim::Simulation* sim = st->sim;
  SimTime t0 = sim->now();
  bool measured = t0 >= st->measure_start && t0 < st->end;
  sqlkv::OpOutcome outcome;
  sim::PooledLatch done(&sim->latch_pool(), 1);
  st->system->Execute(op, &outcome, done.get());
  co_await done->Wait();
  if (outcome.ok && op.type == OpType::kInsert) st->gen->NoteInsert(op.key);
  if (!measured) co_return;
  if (outcome.ok) {
    st->completed++;
    st->latency.Record(sim->now() - t0);
  } else if (outcome.shed) {
    st->shed++;
  } else {
    st->failed++;
  }
}

/// One Poisson arrival stream: exponential gaps around the stream's
/// share of the offered rate, arrivals fired regardless of completions.
sim::Task ArrivalStream(StepState* st, uint64_t seed, int stream) {
  sim::Simulation* sim = st->sim;
  Rng rng(seed);
  const int origin_node =
      OltpTestbed::kServerNodes + stream % OltpTestbed::kClientNodes;
  SimTime next = sim->now();
  for (;;) {
    SimTime gap = static_cast<SimTime>(rng.Exponential(st->mean_gap_us));
    next += gap < 1 ? 1 : gap;
    if (next >= st->end) break;
    co_await sim->Delay(next - sim->now());
    if (st->system->Crashed()) break;
    if (sim->now() >= st->measure_start) st->arrivals++;
    Op op = st->gen->Next(&rng);
    op.origin_node = origin_node;
    OneOp(st, op);
  }
}

/// Cumulative busy/wait clocks across the server nodes; differenced at
/// the measure-window edges to get per-window utilization.
struct ResourceTotals {
  SimTime cpu = 0;
  SimTime disk = 0;
  SimTime log_disk = 0;
  SimTime nic_tx = 0;
  SimTime nic_rx = 0;
  SimTime lock_wait = 0;
  SimTime gate_queue_wait = 0;
};

ResourceTotals SnapshotResources(OltpTestbed* testbed,
                                 DataServingSystem* system,
                                 AdmissionGate* gate) {
  ResourceTotals t;
  for (int n = 0; n < OltpTestbed::kServerNodes; ++n) {
    cluster::Node& node = testbed->server(n);
    t.cpu += node.cpu().busy_time();
    t.disk += node.data_disks().server().busy_time();
    t.log_disk += node.log_disk().server().busy_time();
    t.nic_tx += node.nic_tx().server().busy_time();
    t.nic_rx += node.nic_rx().server().busy_time();
  }
  t.lock_wait = system->TotalLockWait();
  t.gate_queue_wait = gate->queue_wait_time();
  return t;
}

}  // namespace

SweepStepResult RunSweepStep(SystemKind kind, int64_t offered_rate,
                             const SweepOptions& options,
                             const sim::FaultPlan* plan) {
  ELEPHANT_CHECK(offered_rate > 0) << "offered_rate must be positive";
  DriverOptions driver = options.driver;
  driver.target_throughput = offered_rate;
  SystemUnderTest sut = MakeSystem(kind, driver, /*read_uncommitted=*/false);
  sim::Simulation* sim = &sut.testbed->sim;
  DataServingSystem* system = sut.system.get();

  ELEPHANT_CHECK_OK(
      system->LoadDataset(driver.record_count, driver.record_bytes));
  OpGenerator gen(options.workload, driver);
  gen.WarmCaches(system);
  system->Start();

  AdmissionGate gate(sim, options.gate);
  system->set_admission_gate(&gate);

  std::unique_ptr<sim::FaultInjector> injector;
  if (plan != nullptr) {
    sim::FaultInjector::Hooks hooks;
    hooks.crash_node = [system](int node) { system->CrashServerNode(node); };
    hooks.restart_node = [system](int node) {
      system->RestartServerNode(node);
    };
    injector = std::make_unique<sim::FaultInjector>(
        sim, cluster::FaultSurfaces(&sut.testbed->cluster), *plan,
        std::move(hooks));
    system->set_fault_injector(injector.get());
    injector->Arm();
  }

  StepState st;
  st.sim = sim;
  st.system = system;
  st.gen = &gen;
  SimTime start = sim->now();
  st.measure_start = start + driver.warmup;
  st.end = st.measure_start + driver.measure;
  st.mean_gap_us = static_cast<double>(options.arrival_streams) *
                   static_cast<double>(kSecond) /
                   static_cast<double>(offered_rate);
  for (int s = 0; s < options.arrival_streams; ++s) {
    ArrivalStream(&st, StreamSeed(driver.seed, offered_rate, s), s);
  }

  // Run to the window edges and difference the resource clocks there.
  sim->Run(st.measure_start);
  ResourceTotals r0 = SnapshotResources(sut.testbed.get(), system, &gate);
  sim->Run(st.end);
  ResourceTotals r1 = SnapshotResources(sut.testbed.get(), system, &gate);

  // Drain: give in-flight operations (including gate-queued ones) time
  // to finish, stop background machinery, then hold the step to the
  // harness's own rules — nothing stuck, every engine quiesced.
  sim->Run(st.end + kSecond);
  system->Stop();
  sim->Run();
  sim->CheckQuiescent();
  ELEPHANT_CHECK_OK(system->ValidateQuiesced());

  SweepStepResult result;
  result.offered_rate = static_cast<double>(offered_rate);
  result.arrivals = st.arrivals;
  result.completed = st.completed;
  result.shed = st.shed;
  result.failed = st.failed;
  result.crashed = system->Crashed();
  result.sim_events = sim->events_processed();
  result.achieved_rate =
      static_cast<double>(st.completed) / SimTimeToSeconds(driver.measure);
  Histogram::Quantiles q = st.latency.SummaryQuantiles();
  result.p50_us = q.p50;
  result.p95_us = q.p95;
  result.p99_us = q.p99;
  result.p999_us = q.p999;

  double window = static_cast<double>(driver.measure);
  cluster::Node& node0 = sut.testbed->server(0);  // homogeneous nodes
  const double nodes = OltpTestbed::kServerNodes;
  auto util = [&](SimTime delta, int capacity) {
    return static_cast<double>(delta) /
           (window * nodes * static_cast<double>(capacity));
  };
  result.util.cpu = util(r1.cpu - r0.cpu, node0.cpu().capacity());
  result.util.disk =
      util(r1.disk - r0.disk, node0.data_disks().server().capacity());
  result.util.log_disk =
      util(r1.log_disk - r0.log_disk, node0.log_disk().server().capacity());
  result.util.nic_tx =
      util(r1.nic_tx - r0.nic_tx, node0.nic_tx().server().capacity());
  result.util.nic_rx =
      util(r1.nic_rx - r0.nic_rx, node0.nic_rx().server().capacity());
  // Mean concurrent lock waiters, not a fraction of capacity.
  result.util.lock_wait =
      static_cast<double>(r1.lock_wait - r0.lock_wait) / window;

  result.peak_inflight = gate.peak_inflight();
  result.peak_queued = gate.peak_queued();
  result.queue_wait_ms =
      SimTimeToMillis(r1.gate_queue_wait - r0.gate_queue_wait);
  return result;
}

int DetectKnee(const std::vector<SweepStepResult>& steps,
               double knee_factor) {
  if (steps.empty()) return -1;
  double idle_p99 = static_cast<double>(steps[0].p99_us);
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].crashed || steps[i].shed > 0) return static_cast<int>(i);
    if (i > 0 && static_cast<double>(steps[i].p99_us) >
                     knee_factor * idle_p99) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

SweepCurve RunSaturationSweep(SystemKind kind, const SweepOptions& options) {
  SweepCurve curve;
  curve.system = SystemKindName(kind);
  size_t n = options.offered_rates.size();
  curve.steps.resize(n);
  // Steps are independent simulations written to per-step slots, so the
  // fan-out is thread-count invariant by construction.
  TaskPool::Global(std::max(DefaultThreadCount(), options.parallelism))
      .ParallelFor(
          0, n, 1,
          [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
              curve.steps[i] =
                  RunSweepStep(kind, options.offered_rates[i], options);
            }
          },
          options.parallelism);
  if (!curve.steps.empty()) {
    curve.idle_p99_ms = SimTimeToMillis(curve.steps[0].p99_us);
  }
  curve.knee_step = DetectKnee(curve.steps, options.knee_factor);
  if (curve.knee_step >= 0) {
    const SweepStepResult& knee =
        curve.steps[static_cast<size_t>(curve.knee_step)];
    curve.knee_offered_rate = knee.offered_rate;
    curve.p99_at_knee_ms = SimTimeToMillis(knee.p99_us);
  }
  return curve;
}

Status VerifySweepDeterminism(SystemKind kind, const SweepOptions& options) {
  SweepCurve first = RunSaturationSweep(kind, options);
  SweepCurve second = RunSaturationSweep(kind, options);
  if (first.Fingerprint() != second.Fingerprint()) {
    return Status::Internal(StrFormat(
        "nondeterministic sweep: fingerprints %llx vs %llx (knee %d vs %d)",
        (unsigned long long)first.Fingerprint(),
        (unsigned long long)second.Fingerprint(), first.knee_step,
        second.knee_step));
  }
  return Status::OK();
}

uint64_t SweepSeedFromEnv(uint64_t fallback) {
  const char* env = std::getenv("ELEPHANT_SWEEP_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 0);
}

}  // namespace elephant::ycsb
