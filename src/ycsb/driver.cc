#include "ycsb/driver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/fingerprint.h"
#include "common/string_util.h"

namespace elephant::ycsb {

SimTime RetryPolicy::BackoffFor(int attempt, Rng* rng) const {
  double backoff = static_cast<double>(initial_backoff);
  for (int i = 1; i < attempt; ++i) backoff *= multiplier;
  backoff = std::min(backoff, static_cast<double>(max_backoff));
  if (jitter > 0) {
    backoff *= 1.0 + jitter * (2.0 * rng->NextDouble() - 1.0);
  }
  SimTime t = static_cast<SimTime>(backoff);
  return t < 1 ? 1 : t;
}

uint64_t RunResult::Fingerprint() const {
  elephant::Fingerprint fp;
  fp.Mix(target)
      .Mix(achieved_ops_per_sec)
      .Mix(crashed)
      .Mix(ops_measured)
      .Mix(sim_events);
  // Mixed only when nonzero so every fault-free fingerprint matches the
  // values recorded before the fault-tolerance counters existed.
  if (transient_errors != 0 || retries != 0 || timeouts != 0) {
    fp.Mix(transient_errors).Mix(retries).Mix(timeouts);
  }
  for (const auto& [type, stats] : per_op) {
    fp.Mix(static_cast<int64_t>(type))
        .Mix(stats.count)
        .Mix(stats.mean_latency_ms)
        .Mix(stats.latency_stderr_ms)
        .Mix(stats.p99_latency_ms);
  }
  return fp.value();
}

uint64_t ChaosOutcome::Fingerprint() const {
  return elephant::Fingerprint()
      .Mix(result.Fingerprint())
      .Mix(plan_fingerprint)
      .Mix(injection_fingerprint)
      .Mix(faults_injected)
      .Mix(crashes_applied)
      .Mix(restarts_applied)
      .Mix(ledger.acknowledged)
      .Mix(ledger.lost_acknowledged)
      .Mix(ledger.unflushed)
      .Mix(ledger.crashes)
      .Mix(ledger.restarts)
      .Mix(ledger.max_loss_window)
      .value();
}

OpGenerator::OpGenerator(const WorkloadSpec& workload,
                         const DriverOptions& options)
    : workload_(workload), options_(options) {
  uint64_t n = static_cast<uint64_t>(options.record_count);
  switch (workload.distribution) {
    case Distribution::kUniform:
      key_chooser_ = std::make_unique<UniformGenerator>(0, n - 1);
      break;
    case Distribution::kZipfian:
      key_chooser_ = std::make_unique<ScrambledZipfianGenerator>(
          n, options.request_theta);
      break;
    case Distribution::kLatest:
      key_chooser_ = std::make_unique<LatestGenerator>(
          n, options.request_theta);
      break;
  }
  next_insert_key_ = n;
}

Op OpGenerator::Next(Rng* rng) {
  Op op;
  op.record_bytes = options_.record_bytes;
  op.field_bytes = options_.field_bytes;
  double u = rng->NextDouble();
  if (u < workload_.read) {
    op.type = OpType::kRead;
    op.key = key_chooser_->Next(rng);
  } else if (u < workload_.read + workload_.update) {
    op.type = OpType::kUpdate;
    op.key = key_chooser_->Next(rng);
  } else if (u < workload_.read + workload_.update + workload_.insert) {
    op.type = OpType::kInsert;
    op.key = next_insert_key_++;
  } else {
    op.type = OpType::kScan;
    op.key = key_chooser_->Next(rng);
    op.scan_len =
        1 + static_cast<int>(rng->Uniform(workload_.max_scan_len));
  }
  return op;
}

void OpGenerator::WarmCaches(DataServingSystem* system) {
  // The paper's runs last 30 minutes and are measured over the final
  // 10, long after the caches converge. Sample the request
  // distribution to reconstruct that steady-state resident set (the
  // short simulated warmup then only settles queues).
  Rng warm_rng(options_.seed ^ 0xCAFEF00D);
  bool scans = workload_.scan > 0;
  int64_t samples =
      std::min<int64_t>(options_.record_count * 2, scans ? 200000 : 800000);
  for (int64_t i = 0; i < samples; ++i) {
    uint64_t key = key_chooser_->Next(&warm_rng);
    if (scans) {
      for (int j = 0; j < workload_.max_scan_len / 2; j += 5) {
        system->TouchKey(key + j);
      }
    } else {
      system->TouchKey(key);
    }
  }
}

YcsbDriver::YcsbDriver(OltpTestbed* testbed, DataServingSystem* system,
                       const WorkloadSpec& workload,
                       const DriverOptions& options)
    : testbed_(testbed),
      system_(system),
      workload_(workload),
      options_(options),
      opgen_(workload, options) {}

Status YcsbDriver::Prepare() {
  ELEPHANT_RETURN_NOT_OK(
      system_->LoadDataset(options_.record_count, options_.record_bytes));
  opgen_.WarmCaches(system_);
  system_->Start();
  return Status::OK();
}

sim::Task YcsbDriver::ClientThread(int thread_id, SimTime start,
                                   SimTime end) {
  sim::Simulation* sim = &testbed_->sim;
  Rng rng(options_.seed ^ (0x9E3779B9u * (thread_id + 1)));
  int total_threads =
      OltpTestbed::kClientNodes * options_.threads_per_client_node;
  SimTime interval = static_cast<SimTime>(
      static_cast<double>(total_threads) * kSecond /
      static_cast<double>(options_.target_throughput));
  if (interval < 1) interval = 1;
  SimTime next = start + static_cast<SimTime>(
                             rng.Uniform(static_cast<uint64_t>(interval)));

  // One pooled latch per client thread, re-armed for every operation:
  // no allocation or Waitable-registry churn on the per-op path.
  sim::PooledLatch done(&sim->latch_pool(), 0);
  // With retries off (every benchmark run), this loop is event-for-event
  // the historical client: a crashed system stops the thread, the retry
  // branch is dead, and no extra random draws happen.
  const bool chaos = options_.retry.enabled();
  const int origin_node = OltpTestbed::kServerNodes +
                          thread_id / options_.threads_per_client_node;
  while (sim->now() < end && (chaos || !system_->Crashed())) {
    if (sim->now() < next) co_await sim->Delay(next - sim->now());
    if (sim->now() >= end) break;
    Op op = opgen_.Next(&rng);
    op.origin_node = origin_node;
    SimTime t0 = sim->now();
    sqlkv::OpOutcome outcome;
    int attempt = 0;
    for (;;) {
      outcome = sqlkv::OpOutcome();
      SimTime attempt_start = sim->now();
      done->Reset(1);
      system_->Execute(op, &outcome, done.get());
      co_await done->Wait();
      if (chaos && sim->now() - attempt_start > options_.retry.op_timeout) {
        // At-least-once: the server may have applied the op anyway;
        // loss accounting stays server-side.
        timeouts_++;
        outcome.ok = false;
        outcome.transient_error = true;
      }
      if (outcome.ok || !chaos || !outcome.transient_error ||
          attempt >= options_.retry.max_retries) {
        break;
      }
      attempt++;
      retries_++;
      co_await sim->Delay(options_.retry.BackoffFor(attempt, &rng));
    }
    SimTime completed = sim->now();
    if (op.type == OpType::kInsert && outcome.ok) {
      opgen_.NoteInsert(op.key);
    }
    bool record = chaos ? outcome.ok : (outcome.ok || !system_->Crashed());
    if (record) {
      ops_completed_++;
      if (completed >= measure_start_ && completed < end) {
        double ms = SimTimeToMillis(completed - t0);
        latency_[op.type].Record(completed - t0);
        size_t w = static_cast<size_t>((completed - measure_start_) /
                                       options_.window);
        if (w < windows_.size()) {
          windows_[w].ops++;
          auto& [sum, count] = windows_[w].latency[op.type];
          sum += ms;
          count++;
        }
      }
    } else {
      ops_failed_++;
      if (outcome.transient_error) transient_errors_++;
    }
    next += interval;
    if (next < sim->now()) next = sim->now();  // fell behind: catch up
  }
}

RunResult YcsbDriver::Run() {
  sim::Simulation* sim = &testbed_->sim;
  SimTime start = sim->now();
  measure_start_ = start + options_.warmup;
  SimTime end = measure_start_ + options_.measure;
  windows_.assign(
      static_cast<size_t>(options_.measure / options_.window + 1),
      WindowStats());

  int total_threads =
      OltpTestbed::kClientNodes * options_.threads_per_client_node;
  for (int t = 0; t < total_threads; ++t) ClientThread(t, start, end);
  sim->Run(end + kSecond);

  RunResult result;
  result.target = static_cast<double>(options_.target_throughput);
  result.crashed = system_->Crashed();
  int64_t measured_ops = 0;
  size_t full_windows = static_cast<size_t>(options_.measure /
                                            options_.window);
  for (size_t w = 0; w < full_windows && w < windows_.size(); ++w) {
    measured_ops += windows_[w].ops;
  }
  result.ops_measured = measured_ops;
  result.achieved_ops_per_sec = static_cast<double>(measured_ops) /
                                SimTimeToSeconds(options_.measure);

  for (auto& [type, hist] : latency_) {
    RunResult::OpStats stats;
    stats.count = hist.count();
    stats.mean_latency_ms = hist.Mean() / 1000.0;
    stats.p99_latency_ms = static_cast<double>(hist.Percentile(99)) / 1000.0;
    // Standard error across the per-window means (the paper's protocol).
    WindowedSeries series;
    for (size_t w = 0; w < full_windows && w < windows_.size(); ++w) {
      auto it = windows_[w].latency.find(type);
      if (it != windows_[w].latency.end() && it->second.second > 0) {
        series.AddWindow(it->second.first / it->second.second);
      }
    }
    stats.latency_stderr_ms = series.StdErrorOfLast(series.size());
    result.per_op[type] = stats;
  }
  result.sim_events = sim->events_processed();
  result.transient_errors = transient_errors_;
  result.retries = retries_;
  result.timeouts = timeouts_;

  // Online correctness gates: the engines' structural invariants must
  // hold after every run, and a drained event loop must not strand
  // parked coroutines (simulated deadlock).
  ELEPHANT_CHECK_OK(system_->ValidateInvariants());
  sim->CheckQuiescent();
  // When the lockset checker is armed, any data touch without its
  // isolation-mandated modeled lock fails the run outright.
  if (sim->lockset_checker().enabled()) {
    ELEPHANT_CHECK(sim->lockset_checker().total_violations() == 0)
        << "modeled-lock discipline violated:\n"
        << sim->lockset_checker().Report();
  }
  return result;
}

sim::Task YcsbDriver::LoaderThread(int thread_id, int loader_threads,
                                   sim::Latch* done) {
  Rng rng(options_.seed ^ (0x51ED2700u + thread_id));
  sim::PooledLatch op_done(&testbed_->sim.latch_pool(), 0);
  for (int64_t key = thread_id; key < options_.record_count;
       key += loader_threads) {
    Op op;
    op.type = OpType::kInsert;
    op.key = static_cast<uint64_t>(key);
    op.record_bytes = options_.record_bytes;
    op.field_bytes = options_.field_bytes;
    sqlkv::OpOutcome outcome;
    op_done->Reset(1);
    system_->Execute(op, &outcome, op_done.get());
    co_await op_done->Wait();
  }
  done->CountDown();
}

SimTime YcsbDriver::SimulateTimedLoad(int loader_threads) {
  sim::Simulation* sim = &testbed_->sim;
  SimTime start = sim->now();
  system_->Start();
  sim::Latch all_loaded(sim, loader_threads);
  for (int t = 0; t < loader_threads; ++t) {
    LoaderThread(t, loader_threads, &all_loaded);
  }
  // Record the exact instant the last loader finishes (asynchronous
  // writebacks keep the event queue busy afterwards).
  SimTime loaded_at = -1;
  auto watcher = [](sim::Simulation* s, sim::Latch* latch,
                    SimTime* out) -> sim::Task {
    co_await latch->Wait();
    *out = s->now();
  };
  watcher(sim, &all_loaded, &loaded_at);
  // Mongo-AS without pre-split needs the balancer during the load.
  auto* mongo_as = dynamic_cast<MongoAsSystem*>(system_);
  while (loaded_at < 0) {
    sim->Run(sim->now() + kSecond);
    if (mongo_as != nullptr && loaded_at < 0) {
      // No completion latch: the balancer can park on a contended
      // global lock and outlive this loop iteration, so a stack latch
      // here would dangle. The surrounding Run() loop drains it.
      mongo_as->RunBalancerOnce(nullptr);
      sim->Run(sim->now() + 100 * kMillisecond);
    }
    if (sim->Idle()) break;
  }
  return (loaded_at >= 0 ? loaded_at : sim->now()) - start;
}

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSqlCs:
      return "SQL-CS";
    case SystemKind::kMongoCs:
      return "Mongo-CS";
    case SystemKind::kMongoAs:
      return "Mongo-AS";
  }
  return "?";
}

SystemUnderTest MakeSystem(SystemKind kind, const DriverOptions& options,
                           bool read_uncommitted) {
  // Engine options preserve the paper's data:memory ratio of 2.5:1 at
  // the configured dataset size.
  SystemUnderTest sut;
  sut.testbed = std::make_unique<OltpTestbed>();
  OltpTestbed* testbed = sut.testbed.get();
  int64_t data_per_node = options.record_count * options.record_bytes /
                          OltpTestbed::kServerNodes;
  int64_t memory_per_node = static_cast<int64_t>(
      static_cast<double>(data_per_node) / options.data_to_memory_ratio);
  switch (kind) {
    case SystemKind::kSqlCs: {
      sqlkv::SqlEngineOptions sql;
      sql.memory_bytes = memory_per_node;
      sql.read_uncommitted = read_uncommitted;
      // Scaled checkpoint cadence so the WL B dips land inside the
      // shortened runs (the paper's SQL Server checkpoints minutes
      // apart in 30-minute runs).
      sql.checkpoint_interval = 5 * kSecond;
      sut.system = std::make_unique<SqlCsSystem>(testbed, sql);
      break;
    }
    case SystemKind::kMongoCs: {
      docstore::MongodOptions m;
      m.memory_bytes = memory_per_node / 16;
      if (options.mongo_flush_interval > 0) {
        m.flush_interval = options.mongo_flush_interval;
      }
      // mmap double-caching, per-connection buffers (800 clients) and
      // 16 process heaps shrink the memory left for data pages.
      sut.system = std::make_unique<MongoCsSystem>(
          testbed, m, 16,
          static_cast<int64_t>(memory_per_node *
                               options.mongo_cache_fraction_cs));
      break;
    }
    case SystemKind::kMongoAs: {
      MongoAsSystem::Options m;
      m.mongod.memory_bytes = memory_per_node / 16;
      if (options.mongo_flush_interval > 0) {
        m.mongod.flush_interval = options.mongo_flush_interval;
      }
      m.node_cache_bytes = static_cast<int64_t>(
          memory_per_node * options.mongo_cache_fraction_as);
      // Chunk size scaled with the dataset (64 MB over 640 GB in the
      // paper) so splits occur at a comparable per-run rate.
      m.config.max_chunk_bytes = 256 * 1024;
      sut.system = std::make_unique<MongoAsSystem>(testbed, m);
      break;
    }
  }
  return sut;
}

RunResult RunOnePoint(SystemKind kind, const WorkloadSpec& workload,
                      int64_t target_throughput,
                      const DriverOptions& base_options,
                      bool read_uncommitted) {
  DriverOptions options = base_options;
  options.target_throughput = target_throughput;
  SystemUnderTest sut = MakeSystem(kind, options, read_uncommitted);
  YcsbDriver driver(sut.testbed.get(), sut.system.get(), workload, options);
  ELEPHANT_CHECK_OK(driver.Prepare());
  return driver.Run();
}

Status VerifyDeterminism(SystemKind kind, const WorkloadSpec& workload,
                         int64_t target_throughput,
                         const DriverOptions& base_options) {
  RunResult first =
      RunOnePoint(kind, workload, target_throughput, base_options);
  RunResult second =
      RunOnePoint(kind, workload, target_throughput, base_options);
  if (first.Fingerprint() != second.Fingerprint()) {
    return Status::Internal(StrFormat(
        "nondeterministic simulation: fingerprints %llx vs %llx "
        "(events %llu vs %llu, ops %lld vs %lld)",
        (unsigned long long)first.Fingerprint(),
        (unsigned long long)second.Fingerprint(),
        (unsigned long long)first.sim_events,
        (unsigned long long)second.sim_events, (long long)first.ops_measured,
        (long long)second.ops_measured));
  }
  return Status::OK();
}

ChaosOutcome RunChaosPoint(SystemKind kind, const WorkloadSpec& workload,
                           int64_t target_throughput,
                           const DriverOptions& base_options,
                           const sim::FaultPlan& plan) {
  DriverOptions options = base_options;
  options.target_throughput = target_throughput;
  // Chaos clients must ride through faults rather than halt on the
  // first crashed process.
  if (!options.retry.enabled()) options.retry.max_retries = 4;
  SystemUnderTest sut = MakeSystem(kind, options, /*read_uncommitted=*/false);
  YcsbDriver driver(sut.testbed.get(), sut.system.get(), workload, options);
  ELEPHANT_CHECK_OK(driver.Prepare());

  DataServingSystem* system = sut.system.get();
  sim::FaultInjector::Hooks hooks;
  hooks.crash_node = [system](int node) { system->CrashServerNode(node); };
  hooks.restart_node = [system](int node) {
    system->RestartServerNode(node);
  };
  sim::FaultInjector injector(
      &sut.testbed->sim, cluster::FaultSurfaces(&sut.testbed->cluster), plan,
      std::move(hooks));
  system->set_fault_injector(&injector);
  injector.Arm();

  ChaosOutcome out;
  out.result = driver.Run();
  // Drain everything the measured window left behind — pending
  // restarts, background loops noticing Stop(), async writebacks — then
  // hold the harness to its own rules: nothing stuck, every engine
  // structurally sound and quiesced.
  system->Stop();
  sut.testbed->sim.Run();
  sut.testbed->sim.CheckQuiescent();
  ELEPHANT_CHECK_OK(system->ValidateQuiesced());
  // Chaos shards run with ELEPHANT_LOCKSET_CHECK=1: the post-measure
  // drain (restarts, balancer rounds) must obey lock discipline too.
  const sim::LocksetChecker& lockset = sut.testbed->sim.lockset_checker();
  if (lockset.enabled()) {
    ELEPHANT_CHECK(lockset.total_violations() == 0)
        << "modeled-lock discipline violated:\n" << lockset.Report();
  }

  out.ledger = system->Durability();
  out.plan_fingerprint = plan.Fingerprint();
  out.injection_fingerprint = injector.InjectionFingerprint();
  out.faults_injected = injector.injected();
  out.crashes_applied = injector.crashes_applied();
  out.restarts_applied = injector.restarts_applied();
  out.plan_description = plan.Describe();
  return out;
}

std::vector<SweepPoint> RunSweep(SystemKind kind,
                                 const WorkloadSpec& workload,
                                 const std::vector<int64_t>& targets,
                                 const DriverOptions& base_options) {
  std::vector<SweepPoint> points;
  for (int64_t target : targets) {
    SweepPoint p;
    p.target = static_cast<double>(target);
    p.result = RunOnePoint(kind, workload, target, base_options);
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace elephant::ycsb
